file(REMOVE_RECURSE
  "CMakeFiles/tg_core.dir/core/aging.cc.o"
  "CMakeFiles/tg_core.dir/core/aging.cc.o.d"
  "CMakeFiles/tg_core.dir/core/governor.cc.o"
  "CMakeFiles/tg_core.dir/core/governor.cc.o.d"
  "CMakeFiles/tg_core.dir/core/policies.cc.o"
  "CMakeFiles/tg_core.dir/core/policies.cc.o.d"
  "CMakeFiles/tg_core.dir/core/thermal_predictor.cc.o"
  "CMakeFiles/tg_core.dir/core/thermal_predictor.cc.o.d"
  "libtg_core.a"
  "libtg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
