
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aging.cc" "src/CMakeFiles/tg_core.dir/core/aging.cc.o" "gcc" "src/CMakeFiles/tg_core.dir/core/aging.cc.o.d"
  "/root/repo/src/core/governor.cc" "src/CMakeFiles/tg_core.dir/core/governor.cc.o" "gcc" "src/CMakeFiles/tg_core.dir/core/governor.cc.o.d"
  "/root/repo/src/core/policies.cc" "src/CMakeFiles/tg_core.dir/core/policies.cc.o" "gcc" "src/CMakeFiles/tg_core.dir/core/policies.cc.o.d"
  "/root/repo/src/core/thermal_predictor.cc" "src/CMakeFiles/tg_core.dir/core/thermal_predictor.cc.o" "gcc" "src/CMakeFiles/tg_core.dir/core/thermal_predictor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tg_floorplan.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tg_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tg_vreg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tg_pdn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tg_sensors.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
