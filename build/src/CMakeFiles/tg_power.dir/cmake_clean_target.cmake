file(REMOVE_RECURSE
  "libtg_power.a"
)
