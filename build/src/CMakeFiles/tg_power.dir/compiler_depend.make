# Empty compiler generated dependencies file for tg_power.
# This may be replaced when dependencies are built.
