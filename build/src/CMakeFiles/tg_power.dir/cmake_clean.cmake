file(REMOVE_RECURSE
  "CMakeFiles/tg_power.dir/power/model.cc.o"
  "CMakeFiles/tg_power.dir/power/model.cc.o.d"
  "libtg_power.a"
  "libtg_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tg_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
