file(REMOVE_RECURSE
  "CMakeFiles/tg_common.dir/common/interp.cc.o"
  "CMakeFiles/tg_common.dir/common/interp.cc.o.d"
  "CMakeFiles/tg_common.dir/common/logging.cc.o"
  "CMakeFiles/tg_common.dir/common/logging.cc.o.d"
  "CMakeFiles/tg_common.dir/common/matrix.cc.o"
  "CMakeFiles/tg_common.dir/common/matrix.cc.o.d"
  "CMakeFiles/tg_common.dir/common/stats.cc.o"
  "CMakeFiles/tg_common.dir/common/stats.cc.o.d"
  "CMakeFiles/tg_common.dir/common/table.cc.o"
  "CMakeFiles/tg_common.dir/common/table.cc.o.d"
  "libtg_common.a"
  "libtg_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tg_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
