# Empty dependencies file for tg_sensors.
# This may be replaced when dependencies are built.
