
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sensors/emergency_predictor.cc" "src/CMakeFiles/tg_sensors.dir/sensors/emergency_predictor.cc.o" "gcc" "src/CMakeFiles/tg_sensors.dir/sensors/emergency_predictor.cc.o.d"
  "/root/repo/src/sensors/thermal_sensor.cc" "src/CMakeFiles/tg_sensors.dir/sensors/thermal_sensor.cc.o" "gcc" "src/CMakeFiles/tg_sensors.dir/sensors/thermal_sensor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tg_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tg_floorplan.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
