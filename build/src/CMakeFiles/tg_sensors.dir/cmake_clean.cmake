file(REMOVE_RECURSE
  "CMakeFiles/tg_sensors.dir/sensors/emergency_predictor.cc.o"
  "CMakeFiles/tg_sensors.dir/sensors/emergency_predictor.cc.o.d"
  "CMakeFiles/tg_sensors.dir/sensors/thermal_sensor.cc.o"
  "CMakeFiles/tg_sensors.dir/sensors/thermal_sensor.cc.o.d"
  "libtg_sensors.a"
  "libtg_sensors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tg_sensors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
