file(REMOVE_RECURSE
  "libtg_sensors.a"
)
