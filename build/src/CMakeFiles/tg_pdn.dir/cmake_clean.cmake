file(REMOVE_RECURSE
  "CMakeFiles/tg_pdn.dir/pdn/domain_pdn.cc.o"
  "CMakeFiles/tg_pdn.dir/pdn/domain_pdn.cc.o.d"
  "CMakeFiles/tg_pdn.dir/pdn/global_grid.cc.o"
  "CMakeFiles/tg_pdn.dir/pdn/global_grid.cc.o.d"
  "CMakeFiles/tg_pdn.dir/pdn/placement.cc.o"
  "CMakeFiles/tg_pdn.dir/pdn/placement.cc.o.d"
  "libtg_pdn.a"
  "libtg_pdn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tg_pdn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
