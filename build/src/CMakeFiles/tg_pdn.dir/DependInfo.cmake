
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pdn/domain_pdn.cc" "src/CMakeFiles/tg_pdn.dir/pdn/domain_pdn.cc.o" "gcc" "src/CMakeFiles/tg_pdn.dir/pdn/domain_pdn.cc.o.d"
  "/root/repo/src/pdn/global_grid.cc" "src/CMakeFiles/tg_pdn.dir/pdn/global_grid.cc.o" "gcc" "src/CMakeFiles/tg_pdn.dir/pdn/global_grid.cc.o.d"
  "/root/repo/src/pdn/placement.cc" "src/CMakeFiles/tg_pdn.dir/pdn/placement.cc.o" "gcc" "src/CMakeFiles/tg_pdn.dir/pdn/placement.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tg_floorplan.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tg_vreg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
