# Empty compiler generated dependencies file for tg_pdn.
# This may be replaced when dependencies are built.
