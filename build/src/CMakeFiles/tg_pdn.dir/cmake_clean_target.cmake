file(REMOVE_RECURSE
  "libtg_pdn.a"
)
