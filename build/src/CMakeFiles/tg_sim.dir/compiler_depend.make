# Empty compiler generated dependencies file for tg_sim.
# This may be replaced when dependencies are built.
