file(REMOVE_RECURSE
  "CMakeFiles/tg_sim.dir/sim/simulation.cc.o"
  "CMakeFiles/tg_sim.dir/sim/simulation.cc.o.d"
  "CMakeFiles/tg_sim.dir/sim/sweep.cc.o"
  "CMakeFiles/tg_sim.dir/sim/sweep.cc.o.d"
  "libtg_sim.a"
  "libtg_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tg_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
