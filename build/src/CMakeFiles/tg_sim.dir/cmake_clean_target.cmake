file(REMOVE_RECURSE
  "libtg_sim.a"
)
