file(REMOVE_RECURSE
  "libtg_vreg.a"
)
