# Empty compiler generated dependencies file for tg_vreg.
# This may be replaced when dependencies are built.
