file(REMOVE_RECURSE
  "CMakeFiles/tg_vreg.dir/vreg/design.cc.o"
  "CMakeFiles/tg_vreg.dir/vreg/design.cc.o.d"
  "CMakeFiles/tg_vreg.dir/vreg/efficiency.cc.o"
  "CMakeFiles/tg_vreg.dir/vreg/efficiency.cc.o.d"
  "CMakeFiles/tg_vreg.dir/vreg/network.cc.o"
  "CMakeFiles/tg_vreg.dir/vreg/network.cc.o.d"
  "libtg_vreg.a"
  "libtg_vreg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tg_vreg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
