
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vreg/design.cc" "src/CMakeFiles/tg_vreg.dir/vreg/design.cc.o" "gcc" "src/CMakeFiles/tg_vreg.dir/vreg/design.cc.o.d"
  "/root/repo/src/vreg/efficiency.cc" "src/CMakeFiles/tg_vreg.dir/vreg/efficiency.cc.o" "gcc" "src/CMakeFiles/tg_vreg.dir/vreg/efficiency.cc.o.d"
  "/root/repo/src/vreg/network.cc" "src/CMakeFiles/tg_vreg.dir/vreg/network.cc.o" "gcc" "src/CMakeFiles/tg_vreg.dir/vreg/network.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
