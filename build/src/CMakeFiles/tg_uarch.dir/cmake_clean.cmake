file(REMOVE_RECURSE
  "CMakeFiles/tg_uarch.dir/uarch/core_model.cc.o"
  "CMakeFiles/tg_uarch.dir/uarch/core_model.cc.o.d"
  "libtg_uarch.a"
  "libtg_uarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tg_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
