file(REMOVE_RECURSE
  "libtg_uarch.a"
)
