# Empty compiler generated dependencies file for tg_uarch.
# This may be replaced when dependencies are built.
