# Empty dependencies file for tg_thermal.
# This may be replaced when dependencies are built.
