file(REMOVE_RECURSE
  "libtg_thermal.a"
)
