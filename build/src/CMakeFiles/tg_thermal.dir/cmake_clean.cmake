file(REMOVE_RECURSE
  "CMakeFiles/tg_thermal.dir/thermal/model.cc.o"
  "CMakeFiles/tg_thermal.dir/thermal/model.cc.o.d"
  "libtg_thermal.a"
  "libtg_thermal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tg_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
