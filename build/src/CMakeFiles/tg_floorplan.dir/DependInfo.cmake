
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/floorplan/floorplan.cc" "src/CMakeFiles/tg_floorplan.dir/floorplan/floorplan.cc.o" "gcc" "src/CMakeFiles/tg_floorplan.dir/floorplan/floorplan.cc.o.d"
  "/root/repo/src/floorplan/geometry.cc" "src/CMakeFiles/tg_floorplan.dir/floorplan/geometry.cc.o" "gcc" "src/CMakeFiles/tg_floorplan.dir/floorplan/geometry.cc.o.d"
  "/root/repo/src/floorplan/power8.cc" "src/CMakeFiles/tg_floorplan.dir/floorplan/power8.cc.o" "gcc" "src/CMakeFiles/tg_floorplan.dir/floorplan/power8.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
