file(REMOVE_RECURSE
  "CMakeFiles/tg_floorplan.dir/floorplan/floorplan.cc.o"
  "CMakeFiles/tg_floorplan.dir/floorplan/floorplan.cc.o.d"
  "CMakeFiles/tg_floorplan.dir/floorplan/geometry.cc.o"
  "CMakeFiles/tg_floorplan.dir/floorplan/geometry.cc.o.d"
  "CMakeFiles/tg_floorplan.dir/floorplan/power8.cc.o"
  "CMakeFiles/tg_floorplan.dir/floorplan/power8.cc.o.d"
  "libtg_floorplan.a"
  "libtg_floorplan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tg_floorplan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
