file(REMOVE_RECURSE
  "libtg_floorplan.a"
)
