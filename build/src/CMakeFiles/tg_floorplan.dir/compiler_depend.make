# Empty compiler generated dependencies file for tg_floorplan.
# This may be replaced when dependencies are built.
