file(REMOVE_RECURSE
  "libtg_workload.a"
)
