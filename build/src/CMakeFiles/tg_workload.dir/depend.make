# Empty dependencies file for tg_workload.
# This may be replaced when dependencies are built.
