file(REMOVE_RECURSE
  "CMakeFiles/tg_workload.dir/workload/cycles.cc.o"
  "CMakeFiles/tg_workload.dir/workload/cycles.cc.o.d"
  "CMakeFiles/tg_workload.dir/workload/demand.cc.o"
  "CMakeFiles/tg_workload.dir/workload/demand.cc.o.d"
  "CMakeFiles/tg_workload.dir/workload/profile.cc.o"
  "CMakeFiles/tg_workload.dir/workload/profile.cc.o.d"
  "libtg_workload.a"
  "libtg_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tg_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
