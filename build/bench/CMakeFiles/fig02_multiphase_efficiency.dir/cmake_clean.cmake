file(REMOVE_RECURSE
  "CMakeFiles/fig02_multiphase_efficiency.dir/fig02_multiphase_efficiency.cc.o"
  "CMakeFiles/fig02_multiphase_efficiency.dir/fig02_multiphase_efficiency.cc.o.d"
  "fig02_multiphase_efficiency"
  "fig02_multiphase_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_multiphase_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
