# Empty compiler generated dependencies file for fig02_multiphase_efficiency.
# This may be replaced when dependencies are built.
