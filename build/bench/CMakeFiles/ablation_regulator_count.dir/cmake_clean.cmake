file(REMOVE_RECURSE
  "CMakeFiles/ablation_regulator_count.dir/ablation_regulator_count.cc.o"
  "CMakeFiles/ablation_regulator_count.dir/ablation_regulator_count.cc.o.d"
  "ablation_regulator_count"
  "ablation_regulator_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_regulator_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
