# Empty compiler generated dependencies file for ablation_regulator_count.
# This may be replaced when dependencies are built.
