file(REMOVE_RECURSE
  "CMakeFiles/table2_voltage_emergencies.dir/table2_voltage_emergencies.cc.o"
  "CMakeFiles/table2_voltage_emergencies.dir/table2_voltage_emergencies.cc.o.d"
  "table2_voltage_emergencies"
  "table2_voltage_emergencies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_voltage_emergencies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
