# Empty compiler generated dependencies file for table2_voltage_emergencies.
# This may be replaced when dependencies are built.
