# Empty dependencies file for fig09_tmax.
# This may be replaced when dependencies are built.
