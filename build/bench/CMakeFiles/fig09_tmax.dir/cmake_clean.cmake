file(REMOVE_RECURSE
  "CMakeFiles/fig09_tmax.dir/fig09_tmax.cc.o"
  "CMakeFiles/fig09_tmax.dir/fig09_tmax.cc.o.d"
  "fig09_tmax"
  "fig09_tmax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_tmax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
