file(REMOVE_RECURSE
  "CMakeFiles/fig14_noise_trace.dir/fig14_noise_trace.cc.o"
  "CMakeFiles/fig14_noise_trace.dir/fig14_noise_trace.cc.o.d"
  "fig14_noise_trace"
  "fig14_noise_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_noise_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
