# Empty dependencies file for fig14_noise_trace.
# This may be replaced when dependencies are built.
