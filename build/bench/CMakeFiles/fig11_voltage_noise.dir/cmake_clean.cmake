file(REMOVE_RECURSE
  "CMakeFiles/fig11_voltage_noise.dir/fig11_voltage_noise.cc.o"
  "CMakeFiles/fig11_voltage_noise.dir/fig11_voltage_noise.cc.o.d"
  "fig11_voltage_noise"
  "fig11_voltage_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_voltage_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
