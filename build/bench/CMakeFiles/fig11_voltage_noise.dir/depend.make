# Empty dependencies file for fig11_voltage_noise.
# This may be replaced when dependencies are built.
