# Empty compiler generated dependencies file for fig05_calibrated_efficiency.
# This may be replaced when dependencies are built.
