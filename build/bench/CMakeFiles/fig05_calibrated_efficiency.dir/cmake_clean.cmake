file(REMOVE_RECURSE
  "CMakeFiles/fig05_calibrated_efficiency.dir/fig05_calibrated_efficiency.cc.o"
  "CMakeFiles/fig05_calibrated_efficiency.dir/fig05_calibrated_efficiency.cc.o.d"
  "fig05_calibrated_efficiency"
  "fig05_calibrated_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_calibrated_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
