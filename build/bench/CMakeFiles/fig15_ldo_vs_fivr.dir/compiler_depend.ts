# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig15_ldo_vs_fivr.
