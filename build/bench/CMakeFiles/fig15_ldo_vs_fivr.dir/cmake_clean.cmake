file(REMOVE_RECURSE
  "CMakeFiles/fig15_ldo_vs_fivr.dir/fig15_ldo_vs_fivr.cc.o"
  "CMakeFiles/fig15_ldo_vs_fivr.dir/fig15_ldo_vs_fivr.cc.o.d"
  "fig15_ldo_vs_fivr"
  "fig15_ldo_vs_fivr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_ldo_vs_fivr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
