# Empty dependencies file for fig15_ldo_vs_fivr.
# This may be replaced when dependencies are built.
