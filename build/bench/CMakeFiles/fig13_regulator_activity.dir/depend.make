# Empty dependencies file for fig13_regulator_activity.
# This may be replaced when dependencies are built.
