file(REMOVE_RECURSE
  "CMakeFiles/fig13_regulator_activity.dir/fig13_regulator_activity.cc.o"
  "CMakeFiles/fig13_regulator_activity.dir/fig13_regulator_activity.cc.o.d"
  "fig13_regulator_activity"
  "fig13_regulator_activity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_regulator_activity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
