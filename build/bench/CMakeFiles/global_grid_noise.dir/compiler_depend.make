# Empty compiler generated dependencies file for global_grid_noise.
# This may be replaced when dependencies are built.
