file(REMOVE_RECURSE
  "CMakeFiles/global_grid_noise.dir/global_grid_noise.cc.o"
  "CMakeFiles/global_grid_noise.dir/global_grid_noise.cc.o.d"
  "global_grid_noise"
  "global_grid_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/global_grid_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
