# Empty compiler generated dependencies file for fig12_heatmaps.
# This may be replaced when dependencies are built.
