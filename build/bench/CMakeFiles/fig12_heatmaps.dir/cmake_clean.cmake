file(REMOVE_RECURSE
  "CMakeFiles/fig12_heatmaps.dir/fig12_heatmaps.cc.o"
  "CMakeFiles/fig12_heatmaps.dir/fig12_heatmaps.cc.o.d"
  "fig12_heatmaps"
  "fig12_heatmaps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_heatmaps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
