file(REMOVE_RECURSE
  "CMakeFiles/ablation_decision_interval.dir/ablation_decision_interval.cc.o"
  "CMakeFiles/ablation_decision_interval.dir/ablation_decision_interval.cc.o.d"
  "ablation_decision_interval"
  "ablation_decision_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_decision_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
