# Empty dependencies file for ablation_decision_interval.
# This may be replaced when dependencies are built.
