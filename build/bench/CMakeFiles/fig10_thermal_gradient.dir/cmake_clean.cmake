file(REMOVE_RECURSE
  "CMakeFiles/fig10_thermal_gradient.dir/fig10_thermal_gradient.cc.o"
  "CMakeFiles/fig10_thermal_gradient.dir/fig10_thermal_gradient.cc.o.d"
  "fig10_thermal_gradient"
  "fig10_thermal_gradient.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_thermal_gradient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
