# Empty compiler generated dependencies file for fig10_thermal_gradient.
# This may be replaced when dependencies are built.
