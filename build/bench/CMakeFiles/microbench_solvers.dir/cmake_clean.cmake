file(REMOVE_RECURSE
  "CMakeFiles/microbench_solvers.dir/microbench_solvers.cc.o"
  "CMakeFiles/microbench_solvers.dir/microbench_solvers.cc.o.d"
  "microbench_solvers"
  "microbench_solvers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microbench_solvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
