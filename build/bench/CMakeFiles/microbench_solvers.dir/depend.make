# Empty dependencies file for microbench_solvers.
# This may be replaced when dependencies are built.
