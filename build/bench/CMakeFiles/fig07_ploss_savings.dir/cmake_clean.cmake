file(REMOVE_RECURSE
  "CMakeFiles/fig07_ploss_savings.dir/fig07_ploss_savings.cc.o"
  "CMakeFiles/fig07_ploss_savings.dir/fig07_ploss_savings.cc.o.d"
  "fig07_ploss_savings"
  "fig07_ploss_savings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_ploss_savings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
