# Empty dependencies file for fig07_ploss_savings.
# This may be replaced when dependencies are built.
