# Empty compiler generated dependencies file for ablation_emergency_threshold.
# This may be replaced when dependencies are built.
