file(REMOVE_RECURSE
  "CMakeFiles/ablation_emergency_threshold.dir/ablation_emergency_threshold.cc.o"
  "CMakeFiles/ablation_emergency_threshold.dir/ablation_emergency_threshold.cc.o.d"
  "ablation_emergency_threshold"
  "ablation_emergency_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_emergency_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
