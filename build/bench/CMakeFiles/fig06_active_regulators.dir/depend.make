# Empty dependencies file for fig06_active_regulators.
# This may be replaced when dependencies are built.
