file(REMOVE_RECURSE
  "CMakeFiles/fig06_active_regulators.dir/fig06_active_regulators.cc.o"
  "CMakeFiles/fig06_active_regulators.dir/fig06_active_regulators.cc.o.d"
  "fig06_active_regulators"
  "fig06_active_regulators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_active_regulators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
