file(REMOVE_RECURSE
  "CMakeFiles/fig01_isscc_efficiency.dir/fig01_isscc_efficiency.cc.o"
  "CMakeFiles/fig01_isscc_efficiency.dir/fig01_isscc_efficiency.cc.o.d"
  "fig01_isscc_efficiency"
  "fig01_isscc_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_isscc_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
