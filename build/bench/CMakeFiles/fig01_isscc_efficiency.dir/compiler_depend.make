# Empty compiler generated dependencies file for fig01_isscc_efficiency.
# This may be replaced when dependencies are built.
