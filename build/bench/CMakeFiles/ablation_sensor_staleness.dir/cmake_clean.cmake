file(REMOVE_RECURSE
  "CMakeFiles/ablation_sensor_staleness.dir/ablation_sensor_staleness.cc.o"
  "CMakeFiles/ablation_sensor_staleness.dir/ablation_sensor_staleness.cc.o.d"
  "ablation_sensor_staleness"
  "ablation_sensor_staleness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sensor_staleness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
