# Empty dependencies file for ablation_sensor_staleness.
# This may be replaced when dependencies are built.
