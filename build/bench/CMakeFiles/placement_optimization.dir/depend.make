# Empty dependencies file for placement_optimization.
# This may be replaced when dependencies are built.
