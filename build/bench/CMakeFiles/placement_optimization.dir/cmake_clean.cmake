file(REMOVE_RECURSE
  "CMakeFiles/placement_optimization.dir/placement_optimization.cc.o"
  "CMakeFiles/placement_optimization.dir/placement_optimization.cc.o.d"
  "placement_optimization"
  "placement_optimization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/placement_optimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
