file(REMOVE_RECURSE
  "CMakeFiles/fig08_naive_thermal_profile.dir/fig08_naive_thermal_profile.cc.o"
  "CMakeFiles/fig08_naive_thermal_profile.dir/fig08_naive_thermal_profile.cc.o.d"
  "fig08_naive_thermal_profile"
  "fig08_naive_thermal_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_naive_thermal_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
