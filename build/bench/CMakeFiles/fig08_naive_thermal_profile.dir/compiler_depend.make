# Empty compiler generated dependencies file for fig08_naive_thermal_profile.
# This may be replaced when dependencies are built.
