
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig08_naive_thermal_profile.cc" "bench/CMakeFiles/fig08_naive_thermal_profile.dir/fig08_naive_thermal_profile.cc.o" "gcc" "bench/CMakeFiles/fig08_naive_thermal_profile.dir/fig08_naive_thermal_profile.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tg_pdn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tg_vreg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tg_sensors.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tg_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tg_power.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tg_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tg_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tg_floorplan.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
