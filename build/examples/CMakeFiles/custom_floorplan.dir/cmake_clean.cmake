file(REMOVE_RECURSE
  "CMakeFiles/custom_floorplan.dir/custom_floorplan.cc.o"
  "CMakeFiles/custom_floorplan.dir/custom_floorplan.cc.o.d"
  "custom_floorplan"
  "custom_floorplan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_floorplan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
