# Empty dependencies file for custom_floorplan.
# This may be replaced when dependencies are built.
