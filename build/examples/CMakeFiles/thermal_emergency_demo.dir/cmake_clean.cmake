file(REMOVE_RECURSE
  "CMakeFiles/thermal_emergency_demo.dir/thermal_emergency_demo.cc.o"
  "CMakeFiles/thermal_emergency_demo.dir/thermal_emergency_demo.cc.o.d"
  "thermal_emergency_demo"
  "thermal_emergency_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thermal_emergency_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
