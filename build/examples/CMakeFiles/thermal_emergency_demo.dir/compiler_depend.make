# Empty compiler generated dependencies file for thermal_emergency_demo.
# This may be replaced when dependencies are built.
