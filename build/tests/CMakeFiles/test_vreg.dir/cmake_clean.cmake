file(REMOVE_RECURSE
  "CMakeFiles/test_vreg.dir/test_vreg.cc.o"
  "CMakeFiles/test_vreg.dir/test_vreg.cc.o.d"
  "test_vreg"
  "test_vreg.pdb"
  "test_vreg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vreg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
