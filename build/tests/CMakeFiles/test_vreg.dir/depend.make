# Empty dependencies file for test_vreg.
# This may be replaced when dependencies are built.
