file(REMOVE_RECURSE
  "CMakeFiles/test_thermal_predictor.dir/test_thermal_predictor.cc.o"
  "CMakeFiles/test_thermal_predictor.dir/test_thermal_predictor.cc.o.d"
  "test_thermal_predictor"
  "test_thermal_predictor.pdb"
  "test_thermal_predictor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_thermal_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
