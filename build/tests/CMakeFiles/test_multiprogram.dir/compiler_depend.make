# Empty compiler generated dependencies file for test_multiprogram.
# This may be replaced when dependencies are built.
