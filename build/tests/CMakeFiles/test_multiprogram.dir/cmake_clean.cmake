file(REMOVE_RECURSE
  "CMakeFiles/test_multiprogram.dir/test_multiprogram.cc.o"
  "CMakeFiles/test_multiprogram.dir/test_multiprogram.cc.o.d"
  "test_multiprogram"
  "test_multiprogram.pdb"
  "test_multiprogram[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multiprogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
