# Empty compiler generated dependencies file for test_global_grid.
# This may be replaced when dependencies are built.
