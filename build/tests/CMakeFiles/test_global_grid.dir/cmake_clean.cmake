file(REMOVE_RECURSE
  "CMakeFiles/test_global_grid.dir/test_global_grid.cc.o"
  "CMakeFiles/test_global_grid.dir/test_global_grid.cc.o.d"
  "test_global_grid"
  "test_global_grid.pdb"
  "test_global_grid[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_global_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
