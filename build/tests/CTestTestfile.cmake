# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_logging[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_matrix[1]_include.cmake")
include("/root/repo/build/tests/test_interp[1]_include.cmake")
include("/root/repo/build/tests/test_table[1]_include.cmake")
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_floorplan[1]_include.cmake")
include("/root/repo/build/tests/test_vreg[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_uarch[1]_include.cmake")
include("/root/repo/build/tests/test_power[1]_include.cmake")
include("/root/repo/build/tests/test_thermal[1]_include.cmake")
include("/root/repo/build/tests/test_pdn[1]_include.cmake")
include("/root/repo/build/tests/test_sensors[1]_include.cmake")
include("/root/repo/build/tests/test_thermal_predictor[1]_include.cmake")
include("/root/repo/build/tests/test_policies[1]_include.cmake")
include("/root/repo/build/tests/test_simulation[1]_include.cmake")
include("/root/repo/build/tests/test_sweep[1]_include.cmake")
include("/root/repo/build/tests/test_placement[1]_include.cmake")
include("/root/repo/build/tests/test_aging[1]_include.cmake")
include("/root/repo/build/tests/test_multiprogram[1]_include.cmake")
include("/root/repo/build/tests/test_global_grid[1]_include.cmake")
