/** @file Unit tests for the sensor models. */

#include <gtest/gtest.h>

#include <vector>

#include "sensors/emergency_predictor.hh"
#include "sensors/thermal_sensor.hh"

namespace tg {
namespace sensors {
namespace {

SensorParams
idealSensors()
{
    SensorParams p;
    p.delay = 100e-6;
    p.quantization = 0.25;
    p.noiseSigma = 0.0;  // deterministic readings for the tests
    return p;
}

TEST(ThermalSensor, ServesTheSampleOlderThanDelay)
{
    ThermalSensorBank bank(2, idealSensors(), 1);
    bank.record(0.0, {50.0, 60.0});
    bank.record(100e-6, {55.0, 65.0});
    bank.record(200e-6, {58.0, 68.0});

    // At t = 200 us the newest sample at least 100 us old is the one
    // from t = 100 us.
    auto r = bank.read(200e-6);
    EXPECT_NEAR(r[0], 55.0, 1e-9);
    EXPECT_NEAR(r[1], 65.0, 1e-9);

    // At t = 250 us it is still the 100 us sample.
    r = bank.read(250e-6);
    EXPECT_NEAR(r[0], 55.0, 1e-9);

    // At t = 300 us the 200 us sample becomes visible.
    r = bank.read(300e-6);
    EXPECT_NEAR(r[0], 58.0, 1e-9);
}

TEST(ThermalSensor, StartupServesOldestSample)
{
    ThermalSensorBank bank(1, idealSensors(), 1);
    bank.record(0.0, {42.0});
    auto r = bank.read(10e-6);  // younger than the delay
    EXPECT_NEAR(r[0], 42.0, 1e-9);
}

TEST(ThermalSensor, QuantisesReadings)
{
    ThermalSensorBank bank(1, idealSensors(), 1);
    bank.record(0.0, {50.13});
    auto r = bank.read(1.0);
    EXPECT_DOUBLE_EQ(r[0], 50.25);  // nearest 0.25 degC step
}

TEST(ThermalSensor, NoiseIsDeterministicPerSeed)
{
    SensorParams p = idealSensors();
    p.noiseSigma = 0.5;
    ThermalSensorBank a(1, p, 77);
    ThermalSensorBank b(1, p, 77);
    a.record(0.0, {60.0});
    b.record(0.0, {60.0});
    EXPECT_EQ(a.read(1.0)[0], b.read(1.0)[0]);
}

TEST(ThermalSensor, ResetDropsHistory)
{
    ThermalSensorBank bank(1, idealSensors(), 1);
    bank.record(0.0, {42.0});
    bank.reset();
    EXPECT_DEATH(bank.read(1.0), "empty sensor bank");
}

TEST(ThermalSensor, BufferPruningKeepsServableSamples)
{
    ThermalSensorBank bank(1, idealSensors(), 1);
    // Long recording: old unreachable samples must be pruned while
    // the semantics stay exact.
    for (int i = 0; i < 10000; ++i)
        bank.record(i * 10e-6, {40.0 + i * 0.01});
    auto r = bank.read(10000 * 10e-6);
    // Expected: the sample at t = 99.9 ms (delay 100 us earlier).
    EXPECT_NEAR(r[0], 40.0 + 9990 * 0.01, 0.25);
}

TEST(ThermalSensor, IrregularCadenceMatchesNaiveReference)
{
    // The recycling ring must serve exactly what a keep-everything
    // implementation would, even when record() arrives in bursts and
    // gaps that make the ring grow, wrap and prune unevenly.
    SensorParams p = idealSensors();
    p.quantization = 1e-9;  // effectively exact
    ThermalSensorBank bank(1, p, 1);

    struct Ref { Seconds t; Celsius v; };
    std::vector<Ref> all;
    auto naive_read = [&](Seconds now) {
        Celsius chosen = all.front().v;
        for (const auto &s : all)
            if (s.t <= now - p.delay + 1e-12)
                chosen = s.v;
            else
                break;
        return chosen;
    };

    // Bursty cadence: clusters of closely spaced samples separated by
    // long silences (multiples of the 100 us staleness horizon).
    Seconds t = 0.0;
    int i = 0;
    auto push = [&](Seconds dt) {
        t += dt;
        Celsius v = 40.0 + i++;
        bank.record(t, {v});
        all.push_back({t, v});
    };
    for (int burst = 0; burst < 8; ++burst) {
        for (int k = 0; k < 5; ++k)
            push(3e-6);
        push(burst % 2 == 0 ? 250e-6 : 90e-6);
        // Read inside the stream, between bursts and far ahead.
        for (Seconds probe : {t, t + 50e-6, t + 400e-6})
            EXPECT_NEAR(bank.read(probe)[0], naive_read(probe), 1e-6)
                << "probe at " << probe;
    }
}

TEST(ThermalSensor, ResetMidStreamStartsAFreshHistory)
{
    ThermalSensorBank bank(2, idealSensors(), 1);
    for (int i = 0; i < 50; ++i)
        bank.record(i * 20e-6, {50.0 + i, 60.0 + i});
    ASSERT_GT(bank.read(1e-3)[0], 50.0);

    bank.reset();
    // Post-reset the clock may restart: earlier timestamps are legal
    // again and none of the pre-reset samples may leak through.
    bank.record(0.0, {20.0, 21.0});
    auto r = bank.read(0.0);  // startup transient: oldest (only) one
    EXPECT_NEAR(r[0], 20.0, 1e-9);
    EXPECT_NEAR(r[1], 21.0, 1e-9);
    bank.record(100e-6, {25.0, 26.0});
    r = bank.read(200e-6);
    EXPECT_NEAR(r[0], 25.0, 1e-9);
}

TEST(ThermalSensor, StartupTransientServesOldestAmongYoungSamples)
{
    // Several samples, all younger than the delay: the oldest is the
    // closest thing to a sufficiently stale reading and must win.
    ThermalSensorBank bank(1, idealSensors(), 1);
    bank.record(0.0, {30.0});
    bank.record(10e-6, {31.0});
    bank.record(20e-6, {32.0});
    EXPECT_NEAR(bank.read(25e-6)[0], 30.0, 1e-9);
    // The moment the oldest crosses the horizon it is still the pick.
    EXPECT_NEAR(bank.read(100e-6)[0], 30.0, 1e-9);
    // And one step later the 10 us sample takes over.
    EXPECT_NEAR(bank.read(110e-6)[0], 31.0, 1e-9);
}

TEST(ThermalSensorDeath, OutOfOrderRecordPanics)
{
    ThermalSensorBank bank(1, idealSensors(), 1);
    bank.record(1.0, {50.0});
    EXPECT_DEATH(bank.record(0.5, {50.0}), "time order");
}

TEST(ThermalSensorDeath, SizeMismatchPanics)
{
    ThermalSensorBank bank(2, idealSensors(), 1);
    EXPECT_DEATH(bank.record(0.0, {50.0}), "size mismatch");
}

TEST(Predictor, DeterministicPerQuery)
{
    EmergencyPredictor a({0.9, 0.02}, 5);
    EmergencyPredictor b({0.9, 0.02}, 5);
    for (int d = 0; d < 4; ++d)
        for (long e = 0; e < 20; ++e)
            EXPECT_EQ(a.predict(d, e, true), b.predict(d, e, true));
}

TEST(Predictor, SensitivityNearConfigured)
{
    EmergencyPredictor p({0.9, 0.02}, 5);
    int hits = 0;
    const int n = 5000;
    for (long e = 0; e < n; ++e)
        if (p.predict(0, e, true))
            ++hits;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.9, 0.03);
}

TEST(Predictor, FalseAlarmRateNearConfigured)
{
    EmergencyPredictor p({0.9, 0.02}, 5);
    int alarms = 0;
    const int n = 5000;
    for (long e = 0; e < n; ++e)
        if (p.predict(0, e, false))
            ++alarms;
    EXPECT_NEAR(static_cast<double>(alarms) / n, 0.02, 0.01);
}

TEST(Predictor, DomainsAreIndependent)
{
    EmergencyPredictor p({0.5, 0.5}, 5);
    int same = 0;
    const int n = 2000;
    for (long e = 0; e < n; ++e)
        if (p.predict(0, e, true) == p.predict(1, e, true))
            ++same;
    // Two independent 50% coins agree about half the time.
    EXPECT_NEAR(static_cast<double>(same) / n, 0.5, 0.05);
}

TEST(Predictor, PerfectPredictorEchoesTruth)
{
    EmergencyPredictor p({1.0, 0.0}, 5);
    for (long e = 0; e < 50; ++e) {
        EXPECT_TRUE(p.predict(0, e, true));
        EXPECT_FALSE(p.predict(0, e, false));
    }
}

TEST(PredictorDeath, InvalidRatesRejected)
{
    EXPECT_DEATH(EmergencyPredictor p({1.5, 0.0}, 1), "sensitivity");
    EXPECT_DEATH(EmergencyPredictor p({0.9, -0.1}, 1), "false alarm");
}

} // namespace
} // namespace sensors
} // namespace tg
