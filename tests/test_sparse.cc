/** @file Unit tests for the sparse CSR / RCM / LDL^T layer. */

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/matrix.hh"
#include "common/rng.hh"
#include "common/sparse.hh"

namespace tg {
namespace {

/**
 * 5-point-stencil grid Laplacian with random edge conductances plus
 * a positive diagonal shift: the shape of every system matrix in the
 * thermal and PDN substrates.
 */
SparseMatrix
gridSystem(int w, int h, double shift, Rng &rng)
{
    std::vector<Triplet> t;
    auto node = [w](int r, int c) {
        return static_cast<std::size_t>(r * w + c);
    };
    auto couple = [&](std::size_t a, std::size_t b, double g) {
        t.push_back({a, a, g});
        t.push_back({b, b, g});
        t.push_back({a, b, -g});
        t.push_back({b, a, -g});
    };
    for (int r = 0; r < h; ++r)
        for (int c = 0; c < w; ++c) {
            if (c + 1 < w)
                couple(node(r, c), node(r, c + 1),
                       rng.uniform(0.5, 2.0));
            if (r + 1 < h)
                couple(node(r, c), node(r + 1, c),
                       rng.uniform(0.5, 2.0));
            t.push_back({node(r, c), node(r, c),
                         shift * rng.uniform(0.5, 1.5)});
        }
    std::size_t n = static_cast<std::size_t>(w * h);
    return SparseMatrix::fromTriplets(n, n, std::move(t));
}

TEST(SparseMatrixTest, TripletsSumAndSort)
{
    auto m = SparseMatrix::fromTriplets(
        3, 3,
        {{2, 1, 1.0}, {0, 0, 2.0}, {2, 1, 0.5}, {1, 2, -3.0}});
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_EQ(m.nonZeros(), 3u);  // (2,1) duplicates merged
    EXPECT_DOUBLE_EQ(m.at(2, 1), 1.5);
    EXPECT_DOUBLE_EQ(m.at(0, 0), 2.0);
    EXPECT_DOUBLE_EQ(m.at(1, 2), -3.0);
    EXPECT_DOUBLE_EQ(m.at(0, 2), 0.0);
}

TEST(SparseMatrixTest, EmptyRowsHandled)
{
    auto m = SparseMatrix::fromTriplets(4, 4, {{3, 3, 1.0}});
    EXPECT_DOUBLE_EQ(m.at(3, 3), 1.0);
    EXPECT_DOUBLE_EQ(m.at(1, 1), 0.0);
    auto y = m.multiply({1.0, 1.0, 1.0, 2.0});
    EXPECT_DOUBLE_EQ(y[0], 0.0);
    EXPECT_DOUBLE_EQ(y[3], 2.0);
}

TEST(SparseMatrixTest, MultiplyMatchesDense)
{
    Rng rng(3);
    auto m = gridSystem(5, 4, 0.3, rng);
    Matrix d = m.toDense();
    std::vector<double> x(m.cols());
    for (auto &v : x)
        v = rng.uniform(-1.0, 1.0);
    auto ys = m.multiply(x);
    auto yd = d.multiply(x);
    for (std::size_t i = 0; i < ys.size(); ++i)
        EXPECT_NEAR(ys[i], yd[i], 1e-12);
}

TEST(SparseMatrixTest, DeathOnBadTriplet)
{
    EXPECT_DEATH(SparseMatrix::fromTriplets(2, 2, {{2, 0, 1.0}}),
                 "out of range");
}

TEST(RcmTest, ProducesValidPermutation)
{
    Rng rng(5);
    auto m = gridSystem(7, 6, 0.2, rng);
    auto perm = rcmOrdering(m);
    ASSERT_EQ(perm.size(), m.rows());
    std::vector<std::size_t> sorted(perm);
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < sorted.size(); ++i)
        EXPECT_EQ(sorted[i], i);
}

TEST(RcmTest, ReducesGridBandwidth)
{
    // A w x h grid numbered row-major has bandwidth w; RCM renumbers
    // it diagonally, cutting the bandwidth to about min(w, h).
    Rng rng(7);
    auto m = gridSystem(24, 6, 0.2, rng);
    EXPECT_EQ(m.bandwidth(), 24u);
    SparseLdltSolver rcm(m, SparseLdltSolver::Ordering::Rcm);
    SparseLdltSolver nat(m, SparseLdltSolver::Ordering::Natural);
    EXPECT_LT(rcm.envelopeBandwidth(), nat.envelopeBandwidth());
    EXPECT_LE(rcm.envelopeBandwidth(), 12u);
}

TEST(RcmTest, HandlesDisconnectedComponents)
{
    // Two independent 2-node systems.
    auto m = SparseMatrix::fromTriplets(
        4, 4,
        {{0, 0, 2.0}, {2, 2, 2.0}, {0, 2, -1.0}, {2, 0, -1.0},
         {1, 1, 2.0}, {3, 3, 2.0}, {1, 3, -1.0}, {3, 1, -1.0}});
    auto perm = rcmOrdering(m);
    std::vector<std::size_t> sorted(perm);
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(sorted[i], i);
    SparseLdltSolver s(m);
    auto x = s.solve({1.0, 2.0, 3.0, 4.0});
    auto b = m.multiply(x);
    EXPECT_NEAR(b[0], 1.0, 1e-12);
    EXPECT_NEAR(b[3], 4.0, 1e-12);
}

class LdltOrderings
    : public ::testing::TestWithParam<SparseLdltSolver::Ordering>
{
};

TEST_P(LdltOrderings, MatchesDenseLuOnGridSystems)
{
    Rng rng(11);
    for (int trial = 0; trial < 4; ++trial) {
        int w = 3 + 5 * trial;
        int h = 4 + 3 * trial;
        auto m = gridSystem(w, h, 0.1 + 0.3 * trial, rng);
        SparseLdltSolver sparse(m, GetParam());
        LuSolver dense(m.toDense());
        std::vector<double> b(m.rows());
        for (auto &v : b)
            v = rng.uniform(-2.0, 2.0);
        auto xs = sparse.solve(b);
        auto xd = dense.solve(b);
        for (std::size_t i = 0; i < xs.size(); ++i)
            EXPECT_NEAR(xs[i], xd[i], 1e-9) << "node " << i;
    }
}

TEST_P(LdltOrderings, SolveInPlaceIsConsistent)
{
    Rng rng(13);
    auto m = gridSystem(9, 9, 0.4, rng);
    SparseLdltSolver s(m, GetParam());
    std::vector<double> b(m.rows(), 1.0);
    auto x = s.solve(b);
    s.solveInPlace(b);
    for (std::size_t i = 0; i < b.size(); ++i)
        EXPECT_DOUBLE_EQ(b[i], x[i]);
    // Residual check against the matrix itself.
    auto back = m.multiply(x);
    for (double v : back)
        EXPECT_NEAR(v, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Orderings, LdltOrderings,
    ::testing::Values(SparseLdltSolver::Ordering::Rcm,
                      SparseLdltSolver::Ordering::Natural));

TEST(LdltTest, BorderedBranchRowsFactorise)
{
    // Grid plus two bordered branch nodes attached to interior grid
    // nodes — the thermal model's VR-node shape.
    Rng rng(17);
    auto grid = gridSystem(6, 6, 0.2, rng);
    std::size_t n = grid.rows();
    std::vector<Triplet> t;
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t k = grid.rowPtr()[r];
             k < grid.rowPtr()[r + 1]; ++k)
            t.push_back({r, grid.colIdx()[k], grid.values()[k]});
    for (std::size_t b = 0; b < 2; ++b) {
        std::size_t host = 7 + 11 * b;
        std::size_t node = n + b;
        double g = 3.0;
        t.push_back({node, node, g + 0.05});
        t.push_back({host, host, g});
        t.push_back({node, host, -g});
        t.push_back({host, node, -g});
    }
    auto m = SparseMatrix::fromTriplets(n + 2, n + 2, std::move(t));
    SparseLdltSolver sparse(m);
    LuSolver dense(m.toDense());
    std::vector<double> b(n + 2, 0.5);
    b[3] = -1.0;
    auto xs = sparse.solve(b);
    auto xd = dense.solve(b);
    for (std::size_t i = 0; i < xs.size(); ++i)
        EXPECT_NEAR(xs[i], xd[i], 1e-9);
}

TEST(LdltTest, DeathOnIndefiniteMatrix)
{
    auto m = SparseMatrix::fromTriplets(
        2, 2, {{0, 0, 1.0}, {1, 1, 1.0}, {0, 1, 5.0}, {1, 0, 5.0}});
    EXPECT_DEATH(SparseLdltSolver s(m), "not positive definite");
}

TEST(LdltTest, DeathOnNonSquare)
{
    auto m = SparseMatrix::fromTriplets(2, 3, {{0, 0, 1.0}});
    EXPECT_DEATH(SparseLdltSolver s(m), "square");
}

} // namespace
} // namespace tg
