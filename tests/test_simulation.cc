/** @file Integration tests of the end-to-end simulation. */

#include <gtest/gtest.h>

#include "sim/simulation.hh"
#include "workload/profile.hh"

namespace tg {
namespace sim {
namespace {

/** A short synthetic benchmark to keep integration runs fast. */
workload::BenchmarkProfile
shortProfile(double mean_u, double didt)
{
    workload::BenchmarkProfile p = workload::profileByName("lu_ncb");
    p.name = "short";
    p.meanUtilization = mean_u;
    p.didtActivity = didt;
    p.roiDurationUs = 2000.0;
    return p;
}

/** Fast config: fewer noise samples and profiling epochs. */
SimConfig
fastConfig()
{
    SimConfig cfg;
    cfg.noiseSamples = 8;
    cfg.profilingEpochs = 12;
    return cfg;
}

class MiniSim : public ::testing::Test
{
  protected:
    MiniSim()
        : chip(floorplan::buildMiniChip(2)),
          simulation(chip, fastConfig())
    {
    }

    floorplan::Chip chip;
    Simulation simulation;
};

TEST_F(MiniSim, EveryPolicyCompletesWithSaneMetrics)
{
    auto profile = shortProfile(0.55, 0.5);
    for (auto kind : core::allPolicyKinds()) {
        auto r = simulation.run(profile, kind);
        SCOPED_TRACE(core::policyName(kind));
        EXPECT_GT(r.maxTmax, simulation.config().thermalParams.ambient);
        EXPECT_LT(r.maxTmax, 110.0);
        EXPECT_GE(r.maxGradient, 0.0);
        EXPECT_GE(r.maxNoiseFrac, 0.0);
        EXPECT_LT(r.maxNoiseFrac, 0.6);
        EXPECT_GE(r.emergencyFrac, 0.0);
        EXPECT_LE(r.emergencyFrac, 1.0);
        EXPECT_GT(r.meanPower, 0.0);
        EXPECT_LE(r.avgEta, 1.0);
    }
}

TEST_F(MiniSim, DeterministicAcrossRuns)
{
    auto profile = shortProfile(0.6, 0.6);
    auto a = simulation.run(profile, core::PolicyKind::PracVT);
    auto b = simulation.run(profile, core::PolicyKind::PracVT);
    EXPECT_EQ(a.maxTmax, b.maxTmax);
    EXPECT_EQ(a.maxGradient, b.maxGradient);
    EXPECT_EQ(a.maxNoiseFrac, b.maxNoiseFrac);
    EXPECT_EQ(a.emergencyFrac, b.emergencyFrac);
    EXPECT_EQ(a.avgRegulatorLoss, b.avgRegulatorLoss);
}

TEST_F(MiniSim, OffChipHasNoRegulatorFootprint)
{
    auto r = simulation.run(shortProfile(0.6, 0.4),
                            core::PolicyKind::OffChip);
    EXPECT_EQ(r.avgRegulatorLoss, 0.0);
    EXPECT_EQ(r.avgActiveVrs, 0.0);
    EXPECT_EQ(r.maxNoiseFrac, 0.0);
    EXPECT_EQ(r.avgEta, 1.0);
}

TEST_F(MiniSim, AllOnKeepsEveryRegulatorActive)
{
    auto r = simulation.run(shortProfile(0.6, 0.4),
                            core::PolicyKind::AllOn);
    EXPECT_DOUBLE_EQ(r.avgActiveVrs,
                     static_cast<double>(chip.plan.vrs().size()));
    for (double a : r.vrActivity)
        EXPECT_DOUBLE_EQ(a, 1.0);
}

TEST_F(MiniSim, GatingSavesConversionLossAndKeepsEta)
{
    auto profile = shortProfile(0.5, 0.4);
    auto all_on = simulation.run(profile, core::PolicyKind::AllOn);
    auto gated = simulation.run(profile, core::PolicyKind::OracT);
    EXPECT_LT(gated.avgRegulatorLoss, all_on.avgRegulatorLoss);
    EXPECT_GT(gated.avgEta, all_on.avgEta);
    EXPECT_LT(gated.avgActiveVrs, all_on.avgActiveVrs);
    // Gated operation stays near the 90% peak.
    EXPECT_GT(gated.avgEta, 0.85);
}

TEST_F(MiniSim, ThermallyAwareGatingBeatsNoiseAwareThermally)
{
    auto profile = shortProfile(0.55, 0.5);
    auto orac_t = simulation.run(profile, core::PolicyKind::OracT);
    auto orac_v = simulation.run(profile, core::PolicyKind::OracV);
    EXPECT_LE(orac_t.maxTmax, orac_v.maxTmax);
    EXPECT_LE(orac_t.maxGradient, orac_v.maxGradient);
    // ...and pays for it in voltage noise.
    EXPECT_GE(orac_t.maxNoiseFrac, orac_v.maxNoiseFrac);
}

TEST_F(MiniSim, RecordedSeriesHaveConsistentShapes)
{
    RecordOptions opts;
    opts.timeSeries = true;
    opts.trackVr = 3;
    opts.heatmap = true;
    auto r = simulation.run(shortProfile(0.6, 0.5),
                            core::PolicyKind::Naive, opts);
    EXPECT_EQ(r.timeUs.size(), r.totalPowerW.size());
    EXPECT_EQ(r.timeUs.size(), r.activeVrs.size());
    EXPECT_EQ(r.trackedVrTemp.size(), r.timeUs.size());
    EXPECT_EQ(r.trackedVrOn.size(), r.timeUs.size());
    EXPECT_EQ(r.heatmap.size(),
              static_cast<std::size_t>(r.heatmapW * r.heatmapH));
    EXPECT_FALSE(r.hottestSpot.empty());
    EXPECT_EQ(r.vrActivity.size(), chip.plan.vrs().size());
}

TEST_F(MiniSim, NoiseTraceRecordsWorstWindow)
{
    RecordOptions opts;
    opts.noiseTrace = true;
    auto r = simulation.run(shortProfile(0.6, 0.9),
                            core::PolicyKind::OracT, opts);
    ASSERT_FALSE(r.noiseTrace.empty());
    EXPECT_GE(r.noiseTraceDomain, 0);
    double peak = 0.0;
    for (double x : r.noiseTrace)
        peak = std::max(peak, x);
    EXPECT_NEAR(peak, r.maxNoiseFrac, 1e-12);
}

TEST_F(MiniSim, PredictorCalibrationReachesPaperQuality)
{
    // Eqn. 3 / Section 6.3: the linear VR model is accurate when
    // confined to regulator nodes; the paper keeps R^2 ~ 0.99.
    EXPECT_GT(simulation.predictorRSquared(), 0.95);
    const auto &pred = simulation.thermalPredictor();
    for (int v = 0; v < pred.size(); ++v)
        EXPECT_GT(pred.theta(v), 0.0) << "vr " << v;
}

TEST_F(MiniSim, EmergencyOverridesReduceNoise)
{
    auto profile = shortProfile(0.55, 0.95);
    auto prac_t = simulation.run(profile, core::PolicyKind::PracT);
    auto prac_vt = simulation.run(profile, core::PolicyKind::PracVT);
    EXPECT_LE(prac_vt.maxNoiseFrac, prac_t.maxNoiseFrac + 1e-9);
    EXPECT_LE(prac_vt.emergencyFrac, prac_t.emergencyFrac + 1e-9);
}

TEST_F(MiniSim, HigherUtilisationRaisesTemperatureAndPower)
{
    auto cool = simulation.run(shortProfile(0.3, 0.4),
                               core::PolicyKind::OracT);
    auto hot = simulation.run(shortProfile(0.85, 0.4),
                              core::PolicyKind::OracT);
    EXPECT_GT(hot.meanPower, cool.meanPower);
    EXPECT_GT(hot.maxTmax, cool.maxTmax);
    EXPECT_GT(hot.avgActiveVrs, cool.avgActiveVrs);
}

TEST(FullChipSim, PaperShapeAnchors)
{
    // A slower full-chip spot check of the paper's central
    // relationships on one high-power and one low-power benchmark.
    auto chip = floorplan::buildPower8Chip();
    SimConfig cfg;
    cfg.noiseSamples = 8;
    Simulation simulation(chip, cfg);

    const auto &chol = workload::profileByName("chol");
    const auto &rayt = workload::profileByName("rayt");

    auto chol_on = simulation.run(chol, core::PolicyKind::AllOn);
    auto chol_gate = simulation.run(chol, core::PolicyKind::OracT);
    auto rayt_on = simulation.run(rayt, core::PolicyKind::AllOn);
    auto rayt_gate = simulation.run(rayt, core::PolicyKind::OracT);

    double chol_save =
        1.0 - chol_gate.avgRegulatorLoss / chol_on.avgRegulatorLoss;
    double rayt_save =
        1.0 - rayt_gate.avgRegulatorLoss / rayt_on.avgRegulatorLoss;
    // Fig. 7: the busy benchmark saves least, the light one most.
    EXPECT_GT(chol_save, 0.02);
    EXPECT_LT(chol_save, 0.30);
    EXPECT_GT(rayt_save, 0.30);
    EXPECT_GT(rayt_save, chol_save + 0.15);

    // Off-chip regulation is the thermal floor (Fig. 9).
    auto chol_off = simulation.run(chol, core::PolicyKind::OffChip);
    EXPECT_GT(chol_on.maxTmax, chol_off.maxTmax + 2.0);
}

} // namespace
} // namespace sim
} // namespace tg
