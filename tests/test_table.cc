/** @file Unit tests for the aligned table printer. */

#include <sstream>

#include <gtest/gtest.h>

#include "common/table.hh"

namespace tg {
namespace {

TEST(Table, AlignsColumns)
{
    TextTable t({"name", "v"});
    t.addRow({"a", "1"});
    t.addRow({"longer", "22"});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    // Every line has the same width up to the newline.
    std::istringstream is(out);
    std::string line;
    std::size_t width = 0;
    bool first = true;
    while (std::getline(is, line)) {
        if (first) {
            width = line.size();
            first = false;
        } else {
            EXPECT_EQ(line.size(), width) << "line: '" << line << "'";
        }
    }
    EXPECT_NE(out.find("longer"), std::string::npos);
}

TEST(Table, CsvOutput)
{
    TextTable t({"a", "b"});
    t.addRow({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, NumFormatsPrecision)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::num(2.0, 0), "2");
    EXPECT_EQ(TextTable::num(-1.5, 1), "-1.5");
}

TEST(Table, SizeCountsRows)
{
    TextTable t({"x"});
    EXPECT_EQ(t.size(), 0u);
    t.addRow({"1"});
    t.addRow({"2"});
    EXPECT_EQ(t.size(), 2u);
}

TEST(TableDeath, RowWidthMismatchPanics)
{
    TextTable t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "width");
}

TEST(TableDeath, EmptyHeaderPanics)
{
    EXPECT_DEATH(TextTable t({}), "at least one column");
}

} // namespace
} // namespace tg
