/** @file Unit tests for piecewise-linear interpolation. */

#include <gtest/gtest.h>

#include "common/interp.hh"

namespace tg {
namespace {

TEST(Interp, LinearMidpoint)
{
    PiecewiseLinear c({{0.0, 0.0}, {2.0, 4.0}});
    EXPECT_DOUBLE_EQ(c(1.0), 2.0);
    EXPECT_DOUBLE_EQ(c(0.5), 1.0);
}

TEST(Interp, ClampsOutsideDomain)
{
    PiecewiseLinear c({{1.0, 10.0}, {2.0, 20.0}});
    EXPECT_DOUBLE_EQ(c(0.0), 10.0);
    EXPECT_DOUBLE_EQ(c(5.0), 20.0);
}

TEST(Interp, HitsSamplePointsExactly)
{
    PiecewiseLinear c({{1.0, 3.0}, {2.0, -1.0}, {4.0, 8.0}});
    EXPECT_DOUBLE_EQ(c(1.0), 3.0);
    EXPECT_DOUBLE_EQ(c(2.0), -1.0);
    EXPECT_DOUBLE_EQ(c(4.0), 8.0);
}

TEST(Interp, SortsUnorderedInput)
{
    PiecewiseLinear c({{3.0, 30.0}, {1.0, 10.0}, {2.0, 20.0}});
    EXPECT_DOUBLE_EQ(c(1.5), 15.0);
    EXPECT_DOUBLE_EQ(c(2.5), 25.0);
}

TEST(Interp, LogAxisGeometricMidpoint)
{
    // In log-x mode the halfway point between 1 and 100 is 10.
    PiecewiseLinear c({{1.0, 0.0}, {100.0, 1.0}}, true);
    EXPECT_NEAR(c(10.0), 0.5, 1e-12);
    // Linear interpolation would give ~0.09 at x = 10 instead.
    PiecewiseLinear lin({{1.0, 0.0}, {100.0, 1.0}}, false);
    EXPECT_NEAR(lin(10.0), 9.0 / 99.0, 1e-12);
}

TEST(Interp, ArgmaxAndMaxValue)
{
    PiecewiseLinear c({{1.0, 0.5}, {2.0, 0.9}, {3.0, 0.7}});
    EXPECT_DOUBLE_EQ(c.argmax(), 2.0);
    EXPECT_DOUBLE_EQ(c.maxValue(), 0.9);
}

TEST(Interp, DomainAccessors)
{
    PiecewiseLinear c({{2.0, 1.0}, {5.0, 2.0}});
    EXPECT_DOUBLE_EQ(c.minX(), 2.0);
    EXPECT_DOUBLE_EQ(c.maxX(), 5.0);
}

TEST(InterpDeath, TooFewPointsPanics)
{
    EXPECT_DEATH(PiecewiseLinear c({{1.0, 1.0}}), "two points");
}

TEST(InterpDeath, DuplicateXPanics)
{
    EXPECT_DEATH(PiecewiseLinear c({{1.0, 1.0}, {1.0, 2.0}}),
                 "distinct");
}

TEST(InterpDeath, NonPositiveXInLogModePanics)
{
    EXPECT_DEATH(PiecewiseLinear c({{0.0, 1.0}, {1.0, 2.0}}, true),
                 "positive");
}

} // namespace
} // namespace tg
