/** @file Unit tests for the core activity model. */

#include <gtest/gtest.h>

#include "floorplan/power8.hh"
#include "uarch/core_model.hh"
#include "workload/profile.hh"

namespace tg {
namespace uarch {
namespace {

TEST(CoreModel, IdleCoreIsQuiet)
{
    CoreModel m(8);
    auto a = m.evaluate(0.0, workload::profileByName("fft"));
    EXPECT_EQ(a.ifu, 0.0);
    EXPECT_EQ(a.exu, 0.0);
    EXPECT_EQ(a.lsu, 0.0);
    EXPECT_EQ(a.l2, 0.0);
    EXPECT_EQ(a.ipc, 0.0);
}

TEST(CoreModel, ActivitiesStayNormalised)
{
    CoreModel m(8);
    for (const auto &p : workload::splashProfiles()) {
        for (double u : {0.2, 0.5, 0.8, 1.0}) {
            auto a = m.evaluate(u, p);
            for (double v : {a.ifu, a.isu, a.exu, a.lsu, a.l2}) {
                EXPECT_GE(v, 0.0) << p.name;
                EXPECT_LE(v, 1.0) << p.name;
            }
            EXPECT_GE(a.ipc, 0.0);
            EXPECT_LE(a.ipc, 8.0);
        }
    }
}

TEST(CoreModel, ActivityGrowsWithUtilisation)
{
    CoreModel m(8);
    const auto &p = workload::profileByName("lu_ncb");
    auto lo = m.evaluate(0.3, p);
    auto hi = m.evaluate(0.9, p);
    EXPECT_GT(hi.exu, lo.exu);
    EXPECT_GT(hi.lsu, lo.lsu);
    EXPECT_GT(hi.ipc, lo.ipc);
    EXPECT_GT(hi.l3TrafficPerCycle, lo.l3TrafficPerCycle);
}

TEST(CoreModel, MissesThrottleIpc)
{
    CoreModel m(8);
    auto light = workload::profileByName("water_n");  // low misses
    auto heavy = workload::profileByName("oc_ncp");   // high misses
    EXPECT_GT(m.evaluate(0.8, light).ipc, m.evaluate(0.8, heavy).ipc);
}

TEST(CoreModel, MemoryMixDrivesLsu)
{
    CoreModel m(8);
    auto fp_heavy = workload::profileByName("water_n");
    auto mem_heavy = workload::profileByName("radix");
    auto a = m.evaluate(0.7, fp_heavy);
    auto b = m.evaluate(0.7, mem_heavy);
    EXPECT_GT(b.lsu, a.lsu);
    EXPECT_GT(a.exu, b.exu);  // fp mix keeps the EXU busier
}

TEST(CoreModelDeath, RejectsBadInputs)
{
    EXPECT_DEATH(CoreModel(0), "issue width");
    CoreModel m(8);
    EXPECT_DEATH(m.evaluate(1.5, workload::profileByName("fft")),
                 "utilisation");
}

TEST(ActivityTrace, CoversAllBlocksEveryFrame)
{
    auto chip = floorplan::buildMiniChip(2);
    const auto &p = workload::profileByName("fft");
    auto trace = buildActivityTrace(chip, p, 5);
    ASSERT_GT(trace.frames.size(), 0u);
    for (const auto &f : trace.frames) {
        ASSERT_EQ(f.block.size(), chip.plan.blocks().size());
        ASSERT_EQ(f.ipc.size(), 2u);
        for (double a : f.block) {
            EXPECT_GE(a, 0.0);
            EXPECT_LE(a, 1.0);
        }
    }
}

TEST(ActivityTrace, DeterministicForSeed)
{
    auto chip = floorplan::buildMiniChip(2);
    const auto &p = workload::profileByName("barnes");
    auto a = buildActivityTrace(chip, p, 9);
    auto b = buildActivityTrace(chip, p, 9);
    ASSERT_EQ(a.frames.size(), b.frames.size());
    EXPECT_EQ(a.frames[3].block, b.frames[3].block);
}

TEST(ActivityTrace, UncoreFloorsApply)
{
    // Even a almost-idle workload keeps the L3/NoC/MC above the
    // clocking floor.
    auto chip = floorplan::buildPower8Chip();
    auto p = workload::profileByName("rayt");
    auto trace = buildActivityTrace(chip, p, 17);
    auto l3s = chip.plan.blocksOfKind(floorplan::UnitKind::L3);
    for (int b : l3s)
        EXPECT_GE(trace.frames[0].block[static_cast<std::size_t>(b)],
                  0.15);
    auto noc = chip.plan.blocksOfKind(floorplan::UnitKind::Noc);
    EXPECT_GE(trace.frames[0].block[static_cast<std::size_t>(noc[0])],
              0.20);
}

TEST(ActivityTrace, LogicTracksDemandTrace)
{
    auto chip = floorplan::buildMiniChip(1);
    const auto &p = workload::profileByName("lu_ncb");
    auto demand = workload::generateDemandTrace(p, 1, 33);
    auto trace = buildActivityTrace(chip, p, demand);
    int exu = chip.plan.blockIndex("core0.exu");
    // Frame-by-frame: higher utilisation -> higher EXU activity.
    for (std::size_t f = 1; f < trace.frames.size(); ++f) {
        double du = demand.frames[f].coreUtil[0] -
                    demand.frames[f - 1].coreUtil[0];
        double da =
            trace.frames[f].block[static_cast<std::size_t>(exu)] -
            trace.frames[f - 1].block[static_cast<std::size_t>(exu)];
        if (du > 0.01) {
            EXPECT_GE(da, 0.0) << "frame " << f;
        }
        if (du < -0.01) {
            EXPECT_LE(da, 0.0) << "frame " << f;
        }
    }
}

} // namespace
} // namespace uarch
} // namespace tg
