/** @file Unit tests for the sweep helper. */

#include <gtest/gtest.h>

#include "sim/sweep.hh"
#include "workload/profile.hh"

namespace tg {
namespace sim {
namespace {

class SweepTest : public ::testing::Test
{
  protected:
    SweepTest()
        : chip(floorplan::buildMiniChip(1)), simulation(chip, config())
    {
    }

    static SimConfig
    config()
    {
        SimConfig cfg;
        cfg.noiseSamples = 4;
        cfg.profilingEpochs = 8;
        return cfg;
    }

    floorplan::Chip chip;
    Simulation simulation;
};

TEST_F(SweepTest, RunsRequestedGrid)
{
    auto sweep = runSweep(simulation, {"rayt", "fft"},
                          {core::PolicyKind::AllOn,
                           core::PolicyKind::OracT});
    EXPECT_EQ(sweep.benchmarks.size(), 2u);
    EXPECT_EQ(sweep.policies.size(), 2u);
    ASSERT_EQ(sweep.results.size(), 2u);
    ASSERT_EQ(sweep.results[0].size(), 2u);
    EXPECT_EQ(sweep.results[0][0].benchmark, "rayt");
    EXPECT_EQ(sweep.results[0][1].policy, core::PolicyKind::OracT);
}

TEST_F(SweepTest, AggregatesComputeCorrectly)
{
    auto sweep = runSweep(simulation, {"rayt", "fft"},
                          {core::PolicyKind::AllOn});
    auto metric = [](const RunResult &r) { return r.maxTmax; };
    double a = sweep.at("rayt", core::PolicyKind::AllOn).maxTmax;
    double b = sweep.at("fft", core::PolicyKind::AllOn).maxTmax;
    EXPECT_NEAR(sweep.average(core::PolicyKind::AllOn, metric),
                0.5 * (a + b), 1e-12);
    EXPECT_DOUBLE_EQ(sweep.maximum(core::PolicyKind::AllOn, metric),
                     std::max(a, b));
}

TEST_F(SweepTest, LookupFailuresAreFatal)
{
    auto sweep = runSweep(simulation, {"rayt"},
                          {core::PolicyKind::AllOn});
    EXPECT_EXIT(sweep.at("rayt", core::PolicyKind::OracV),
                ::testing::ExitedWithCode(1), "no sweep entry");
    EXPECT_DEATH(sweep.average(core::PolicyKind::OracV,
                               [](const RunResult &) { return 0.0; }),
                 "not part of the sweep");
}

} // namespace
} // namespace sim
} // namespace tg
