/** @file Unit tests for the sweep helper and its parallel engine. */

#include <gtest/gtest.h>

#include "common/exec.hh"
#include "sim/sweep.hh"
#include "workload/profile.hh"

namespace tg {
namespace sim {
namespace {

class SweepTest : public ::testing::Test
{
  protected:
    SweepTest()
        : chip(floorplan::buildMiniChip(1)), simulation(chip, config())
    {
    }

    static SimConfig
    config()
    {
        SimConfig cfg;
        cfg.noiseSamples = 4;
        cfg.profilingEpochs = 8;
        return cfg;
    }

    floorplan::Chip chip;
    Simulation simulation;
};

TEST_F(SweepTest, RunsRequestedGrid)
{
    auto sweep = runSweep(simulation, {"rayt", "fft"},
                          {core::PolicyKind::AllOn,
                           core::PolicyKind::OracT});
    EXPECT_EQ(sweep.benchmarks.size(), 2u);
    EXPECT_EQ(sweep.policies.size(), 2u);
    ASSERT_EQ(sweep.results.size(), 2u);
    ASSERT_EQ(sweep.results[0].size(), 2u);
    EXPECT_EQ(sweep.results[0][0].benchmark, "rayt");
    EXPECT_EQ(sweep.results[0][1].policy, core::PolicyKind::OracT);
}

TEST_F(SweepTest, AggregatesComputeCorrectly)
{
    auto sweep = runSweep(simulation, {"rayt", "fft"},
                          {core::PolicyKind::AllOn});
    auto metric = [](const RunResult &r) { return r.maxTmax; };
    double a = sweep.at("rayt", core::PolicyKind::AllOn).maxTmax;
    double b = sweep.at("fft", core::PolicyKind::AllOn).maxTmax;
    EXPECT_NEAR(sweep.average(core::PolicyKind::AllOn, metric),
                0.5 * (a + b), 1e-12);
    EXPECT_DOUBLE_EQ(sweep.maximum(core::PolicyKind::AllOn, metric),
                     std::max(a, b));
}

TEST_F(SweepTest, SingleBenchmarkSweepAggregates)
{
    auto sweep = runSweep(simulation, {"fft"},
                          {core::PolicyKind::AllOn,
                           core::PolicyKind::Naive});
    auto metric = [](const RunResult &r) { return r.maxTmax; };
    // With one benchmark, average == maximum == the run itself.
    double v = sweep.at("fft", core::PolicyKind::Naive).maxTmax;
    EXPECT_DOUBLE_EQ(sweep.average(core::PolicyKind::Naive, metric),
                     v);
    EXPECT_DOUBLE_EQ(sweep.maximum(core::PolicyKind::Naive, metric),
                     v);
    EXPECT_EQ(sweep.at("fft", core::PolicyKind::Naive).benchmark,
              "fft");
}

TEST_F(SweepTest, LookupFailuresAreFatal)
{
    auto sweep = runSweep(simulation, {"rayt"},
                          {core::PolicyKind::AllOn});
    // Benchmark row exists but was not swept under the policy: the
    // failure names the policy instead of falling through to the
    // generic missing-benchmark scan.
    EXPECT_EXIT(sweep.at("rayt", core::PolicyKind::OracV),
                ::testing::ExitedWithCode(1),
                "policy OracV not part of the sweep for benchmark "
                "rayt");
    // Unknown benchmark: generic missing-entry failure.
    EXPECT_EXIT(sweep.at("barnes", core::PolicyKind::AllOn),
                ::testing::ExitedWithCode(1),
                "no sweep entry for benchmark barnes");
    EXPECT_DEATH(sweep.average(core::PolicyKind::OracV,
                               [](const RunResult &) { return 0.0; }),
                 "not part of the sweep");
    EXPECT_DEATH(sweep.maximum(core::PolicyKind::OracV,
                               [](const RunResult &) { return 0.0; }),
                 "not part of the sweep");
}

/** Exact equality of every scalar metric two sweeps share. */
void
expectIdentical(const SweepResult &a, const SweepResult &b)
{
    ASSERT_EQ(a.benchmarks, b.benchmarks);
    ASSERT_EQ(a.policies, b.policies);
    for (const auto &bench : a.benchmarks) {
        for (auto kind : a.policies) {
            const auto &ra = a.at(bench, kind);
            const auto &rb = b.at(bench, kind);
            EXPECT_EQ(ra.benchmark, rb.benchmark);
            EXPECT_EQ(ra.policy, rb.policy);
            EXPECT_EQ(ra.maxTmax, rb.maxTmax) << bench;
            EXPECT_EQ(ra.maxGradient, rb.maxGradient) << bench;
            EXPECT_EQ(ra.maxNoiseFrac, rb.maxNoiseFrac) << bench;
            EXPECT_EQ(ra.emergencyFrac, rb.emergencyFrac) << bench;
            EXPECT_EQ(ra.avgRegulatorLoss, rb.avgRegulatorLoss);
            EXPECT_EQ(ra.avgEta, rb.avgEta) << bench;
            EXPECT_EQ(ra.avgActiveVrs, rb.avgActiveVrs) << bench;
            EXPECT_EQ(ra.meanPower, rb.meanPower) << bench;
            EXPECT_EQ(ra.overrideCount, rb.overrideCount) << bench;
            EXPECT_EQ(ra.hottestSpot, rb.hottestSpot) << bench;
            EXPECT_EQ(ra.vrActivity, rb.vrActivity) << bench;
            EXPECT_EQ(ra.vrAging, rb.vrAging) << bench;
            EXPECT_EQ(ra.agingImbalance, rb.agingImbalance) << bench;
        }
    }
}

TEST_F(SweepTest, ParallelMatchesSerialBitwise)
{
    // Cover a thermally-aware policy (shared adopted predictor), the
    // noise-aware one (PDN transfer-resistance reads) and an
    // emergency-override one (per-run noise windows) across workers.
    std::vector<std::string> benchmarks = {"rayt", "fft"};
    std::vector<core::PolicyKind> policies = {
        core::PolicyKind::AllOn, core::PolicyKind::OracT,
        core::PolicyKind::OracV, core::PolicyKind::PracVT};

    auto serial = runSweep(simulation, benchmarks, policies, false, 1);
    auto parallel =
        runSweep(simulation, benchmarks, policies, false, 4);
    expectIdentical(serial, parallel);
}

TEST_F(SweepTest, JobsFromConfigAndEnvironment)
{
    SimConfig cfg = config();
    cfg.jobs = 3;
    Simulation sim3(chip, cfg);
    auto viaConfig = runSweep(sim3, {"fft"},
                              {core::PolicyKind::AllOn,
                               core::PolicyKind::Naive});

    setenv("TG_JOBS", "2", 1);
    auto viaEnv = runSweep(simulation, {"fft"},
                           {core::PolicyKind::AllOn,
                            core::PolicyKind::Naive});
    unsetenv("TG_JOBS");
    expectIdentical(viaConfig, viaEnv);
}

TEST_F(SweepTest, RepeatedSweepsOnOneContextAgree)
{
    // run() must not depend on solver state left by earlier runs on
    // the same Simulation — the property that makes per-worker
    // context reuse (and the serial fallback) deterministic.
    auto first = runSweep(simulation, {"rayt"},
                          {core::PolicyKind::OracV,
                           core::PolicyKind::OracT},
                          false, 1);
    auto second = runSweep(simulation, {"rayt"},
                           {core::PolicyKind::OracV,
                            core::PolicyKind::OracT},
                           false, 1);
    expectIdentical(first, second);
}

} // namespace
} // namespace sim
} // namespace tg
