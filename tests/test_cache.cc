/**
 * @file
 * Tests of the content-addressed artifact cache (src/cache): the
 * fingerprint layer (golden digests + field sensitivity + knob
 * invariance), the sharded in-memory store, the bit-exact RunResult
 * serializer, the checksummed disk tier, and the end-to-end
 * cache-hit-equals-recompute contract of Simulation memoization.
 *
 * The golden digests pin the exact key derivation: a failure here
 * means the cache namespace silently moved (every existing disk
 * artifact orphaned) or — worse — aliased. Bump the version tag
 * inside the corresponding fingerprint function AND refresh the
 * golden together; never "fix" a golden alone.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

#include "cache/disk.hh"
#include "cache/fingerprint.hh"
#include "cache/serialize.hh"
#include "cache/store.hh"
#include "fault/scenario.hh"
#include "floorplan/power8.hh"
#include "sim/simulation.hh"
#include "workload/profile.hh"

namespace tg {
namespace cache {
namespace {

// ===================================================================
// Fingerprint layer
// ===================================================================

TEST(Fingerprint, GoldenDigestsArePinned)
{
    // Primitive-absorb goldens: any change to the mixing function,
    // the domain-separation tags, or the finalizer shows up here.
    EXPECT_EQ(Hasher{}.digest().hex(),
              "01a01e22fd94a4f69be933f0394ae9f6");
    EXPECT_EQ(Hasher{}.u64(0).digest().hex(),
              "0a36a8711484967db701f8afdddc8508");
    EXPECT_EQ(Hasher{}.u64(1).digest().hex(),
              "469d30cecf437c4dc5e09e6cf695a41a");
    EXPECT_EQ(Hasher{}.f64(1.0).digest().hex(),
              "5c4c4cbc83ba99e5e2c701448a19f345");
    EXPECT_EQ(Hasher{}.str("").digest().hex(),
              "7338c45bccdc4fad99f70e546244e3fb");
    EXPECT_EQ(Hasher{}.str("thermogater").digest().hex(),
              "209eef87d203f0f0c6a2ebffb358f1ef");
}

TEST(Fingerprint, GoldenContentKeysArePinned)
{
    // Whole-input goldens: these are the actual cache-key components,
    // so a drift here orphans (or aliases) every stored artifact.
    EXPECT_EQ(chipFingerprint(floorplan::buildMiniChip(2)).hex(),
              "5ef56da182bb32f7195a1a594c69f1b3");
    EXPECT_EQ(chipFingerprint(floorplan::buildPower8Chip()).hex(),
              "5bbfb9f39246898c93051dd47b342698");
    EXPECT_EQ(configFingerprint(sim::SimConfig{}).hex(),
              "c75c6ce7c69fa7aee7d65cc558a61549");
    EXPECT_EQ(powerParamsFingerprint(power::PowerParams{}).hex(),
              "aa763c21af940a79cd93b771018e4e64");
    EXPECT_EQ(
        profileFingerprint(workload::profileByName("fft")).hex(),
        "4c9303a7c6b2dcac1f673f9f19a57fbc");
    EXPECT_EQ(recordOptionsFingerprint(sim::RecordOptions{}).hex(),
              "b3710d344b37c65823cc11992e9528b7");
}

TEST(Fingerprint, TypeTagsAndBoundariesDoNotAlias)
{
    // Domain separation: same raw payload through different typed
    // absorbs must not collide.
    EXPECT_NE(Hasher{}.u64(0).digest(), Hasher{}.f64(0.0).digest());
    EXPECT_NE(Hasher{}.u64(0).digest(), Hasher{}.str("").digest());
    // boolean() encodes true/false as u64 1/2 (a deliberate alias);
    // the two truth values themselves must stay distinct.
    EXPECT_NE(Hasher{}.boolean(true).digest(),
              Hasher{}.boolean(false).digest());
    // Field boundaries: concatenation must not alias across fields.
    EXPECT_NE(Hasher{}.str("ab").str("c").digest(),
              Hasher{}.str("a").str("bc").digest());
    // Prefix of a stream never aliases the stream (length folded in).
    EXPECT_NE(Hasher{}.u64(7).digest(),
              Hasher{}.u64(7).u64(0).digest());
    // -0.0 and +0.0 are distinct bit patterns, distinct hashes.
    EXPECT_NE(Hasher{}.f64(0.0).digest(),
              Hasher{}.f64(-0.0).digest());
}

TEST(Fingerprint, ConfigFieldsChangeTheKey)
{
    sim::SimConfig base;
    const Fingerprint ref = configFingerprint(base);

    sim::SimConfig c = base;
    c.seed = base.seed + 1;
    EXPECT_NE(configFingerprint(c), ref);

    c = base;
    c.noiseSamples += 1;
    EXPECT_NE(configFingerprint(c), ref);

    c = base;
    c.decisionInterval *= 2.0;
    EXPECT_NE(configFingerprint(c), ref);

    c = base;
    c.thermalParams.ambient += 1.0;
    EXPECT_NE(configFingerprint(c), ref);

    c = base;
    c.powerParams.densityExu *= 1.01;
    EXPECT_NE(configFingerprint(c), ref);

    c = base;
    c.pdnParams.emergencyFrac *= 0.5;
    EXPECT_NE(configFingerprint(c), ref);

    c = base;
    c.healthParams.readmitReads += 1;
    EXPECT_NE(configFingerprint(c), ref);
}

TEST(Fingerprint, BitInvisibleKnobsDoNotChangeTheKey)
{
    // These knobs are proven (tests/test_run_determinism.cc,
    // test_epoch_coalescing.cc) not to move a single result bit, so
    // runs differing only in them must share cache entries.
    sim::SimConfig base;
    const Fingerprint ref = configFingerprint(base);

    sim::SimConfig c = base;
    c.jobs = 4;
    EXPECT_EQ(configFingerprint(c), ref);

    c = base;
    c.noiseBatchWidth = 2;
    EXPECT_EQ(configFingerprint(c), ref);

    c = base;
    c.coalesceNoiseEpochs = !base.coalesceNoiseEpochs;
    EXPECT_EQ(configFingerprint(c), ref);

    c = base;
    c.pdnParams.factorCacheCapacity += 7;
    EXPECT_EQ(configFingerprint(c), ref);

    c = base;
    c.cacheDir = "/somewhere/else";
    c.memoizeResults = !base.memoizeResults;
    EXPECT_EQ(configFingerprint(c), ref);
}

TEST(Fingerprint, ProfileContentsChangeTheKey)
{
    workload::BenchmarkProfile p = workload::profileByName("fft");
    const Fingerprint ref = profileFingerprint(p);
    p.meanUtilization += 0.01;
    EXPECT_NE(profileFingerprint(p), ref);

    // Two distinct profiles never share a key.
    EXPECT_NE(
        profileFingerprint(workload::profileByName("barnes")), ref);
}

TEST(Fingerprint, NullAndEmptyFaultScenarioHashAlike)
{
    // runMixed treats a null scenario and an empty one identically
    // (both take the clean path), so their record keys must match.
    sim::RecordOptions plain;
    fault::FaultScenario empty(1234);
    sim::RecordOptions with_empty;
    with_empty.faultScenario = &empty;
    EXPECT_EQ(recordOptionsFingerprint(plain),
              recordOptionsFingerprint(with_empty));

    fault::FaultScenario faulted(1234);
    fault::FaultEvent ev;
    ev.kind = fault::FaultKind::VrStuckOff;
    ev.target = 0;
    ev.start = 1e-4;
    ev.duration = 5e-4;
    faulted.add(ev);
    sim::RecordOptions with_fault;
    with_fault.faultScenario = &faulted;
    EXPECT_NE(recordOptionsFingerprint(plain),
              recordOptionsFingerprint(with_fault));
}

TEST(Fingerprint, HexIsStableAndParseable)
{
    Fingerprint fp{0x0123456789abcdefull, 0xfedcba9876543210ull};
    EXPECT_EQ(fp.hex(), "0123456789abcdeffedcba9876543210");
    EXPECT_EQ(Fingerprint{}.hex(),
              "0000000000000000""0000000000000000");
}

// ===================================================================
// In-memory store
// ===================================================================

Fingerprint
keyOf(std::uint64_t i)
{
    return Hasher{}.str("test-key").u64(i).digest();
}

TEST(ArtifactStore, PutGetHitMissAndClear)
{
    ArtifactStore s;
    const Fingerprint k = keyOf(1);
    EXPECT_EQ(s.get<int>(ArtifactKind::PowerTrace, k), nullptr);

    s.put<int>(ArtifactKind::PowerTrace, k,
               std::make_shared<const int>(42), sizeof(int));
    auto hit = s.get<int>(ArtifactKind::PowerTrace, k);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(*hit, 42);

    // Kinds are separate namespaces: same key, different kind, miss.
    EXPECT_EQ(s.get<int>(ArtifactKind::Predictor, k), nullptr);

    auto st = s.stats();
    EXPECT_EQ(st.kind[0].hits, 1u);
    EXPECT_EQ(st.kind[0].misses, 1u);
    EXPECT_EQ(st.kind[0].inserts, 1u);

    s.clear();
    EXPECT_EQ(s.get<int>(ArtifactKind::PowerTrace, k), nullptr);
    EXPECT_EQ(s.stats().bytesTotal(), 0u);
}

TEST(ArtifactStore, FirstWriteWinsOnDuplicateKeys)
{
    // Racing same-key builders are benign by determinism; the store
    // keeps the resident copy so outstanding readers stay coherent.
    ArtifactStore s;
    const Fingerprint k = keyOf(2);
    s.put<int>(ArtifactKind::RunResult, k,
               std::make_shared<const int>(1), sizeof(int));
    s.put<int>(ArtifactKind::RunResult, k,
               std::make_shared<const int>(2), sizeof(int));
    EXPECT_EQ(*s.get<int>(ArtifactKind::RunResult, k), 1);
}

TEST(ArtifactStore, DisabledStoreMissesAndDropsPuts)
{
    ArtifactStore s;
    s.setEnabled(false);
    const Fingerprint k = keyOf(3);
    s.put<int>(ArtifactKind::PdnBase, k,
               std::make_shared<const int>(9), sizeof(int));
    EXPECT_EQ(s.get<int>(ArtifactKind::PdnBase, k), nullptr);
    s.setEnabled(true);
    EXPECT_EQ(s.get<int>(ArtifactKind::PdnBase, k), nullptr);
}

TEST(ArtifactStore, EvictsLeastRecentlyUsedUnderPressure)
{
    // Tiny budget: entries land in per-key shards, each shard holds
    // at most its slice. Insert many large entries into one shard by
    // fixing the low fingerprint bits, then check older ones left.
    ArtifactStore s(1024); // 64 bytes per shard slice
    Fingerprint base = keyOf(4);
    auto shard_key = [&](std::uint64_t i) {
        Fingerprint f = keyOf(i);
        f.lo = (f.lo & ~0xfull); // all in shard 0
        return f;
    };
    for (std::uint64_t i = 0; i < 8; ++i)
        s.put<int>(ArtifactKind::PowerTrace, shard_key(i),
                   std::make_shared<const int>(int(i)), 48);
    (void)base;
    auto st = s.stats();
    EXPECT_GT(st.evictions, 0u);
    // The newest entry always survives (eviction keeps >= 1).
    EXPECT_NE(s.get<int>(ArtifactKind::PowerTrace, shard_key(7)),
              nullptr);
    // The oldest was evicted.
    EXPECT_EQ(s.get<int>(ArtifactKind::PowerTrace, shard_key(0)),
              nullptr);
}

TEST(ArtifactStore, GetOrBuildBuildsOnceThenHits)
{
    ArtifactStore s;
    const Fingerprint k = keyOf(5);
    int builds = 0;
    auto build = [&] {
        ++builds;
        return std::make_shared<const int>(7);
    };
    auto bytes = [](const int &) { return sizeof(int); };
    auto a = s.getOrBuild<int>(ArtifactKind::Predictor, k, build, bytes);
    auto b = s.getOrBuild<int>(ArtifactKind::Predictor, k, build, bytes);
    EXPECT_EQ(builds, 1);
    EXPECT_EQ(a.get(), b.get());
    EXPECT_EQ(*b, 7);
}

TEST(ArtifactStore, ConcurrentMixedAccessIsSafe)
{
    ArtifactStore s;
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
        threads.emplace_back([&s, t] {
            auto bytes = [](const int &) { return sizeof(int); };
            for (std::uint64_t i = 0; i < 200; ++i) {
                const Fingerprint k = keyOf(i % 37);
                auto v = s.getOrBuild<int>(
                    ArtifactKind::RunResult, k,
                    [&] {
                        return std::make_shared<const int>(
                            int(i % 37));
                    },
                    bytes);
                ASSERT_NE(v, nullptr);
                // Whoever built it, content follows the key.
                EXPECT_EQ(*v, int(i % 37));
            }
            (void)t;
        });
    }
    for (auto &th : threads)
        th.join();
    auto st = s.stats();
    EXPECT_EQ(st.kind[3].inserts, 37u);
}

// ===================================================================
// Serialization + disk tier
// ===================================================================

/** A RunResult with every field (series included) populated. */
sim::RunResult
denseResult()
{
    sim::RunResult r;
    r.benchmark = "fft+lu_cb";
    r.policy = core::PolicyKind::PracVT;
    r.maxTmax = 0x1.f6e04cf2063d9p+5;
    r.hottestSpot = "core0.vr8";
    r.maxGradient = 14.375;
    r.maxNoiseFrac = 0.031;
    r.emergencyFrac = 0.002;
    r.avgRegulatorLoss = 3.25;
    r.avgEta = 0.853;
    r.avgActiveVrs = 13.5;
    r.meanPower = 18.75;
    r.overrideCount = 3;
    r.timeUs = {0.0, 0.5, 1.0, -0.0};
    r.totalPowerW = {18.0, 19.5};
    r.activeVrs = {16.0, 12.0};
    r.trackedVrTemp = {55.5, 56.25};
    r.trackedVrOn = {1, 0, 1};
    r.heatmap = {50.0, 51.0, 52.0, 53.0};
    r.heatmapW = 2;
    r.heatmapH = 2;
    r.heatmapTimeUs = 123.5;
    r.noiseTrace = {0.01, 0.02, 0.005};
    r.noiseTraceDomain = 5;
    r.noiseTraceTimeUs = 77.25;
    r.vrActivity = {1.0, 0.5, 0.0};
    r.vrAging = {2.0, 1.0, 0.25};
    r.agingImbalance = 1.375;
    r.resilience.scheduledFaults = 2;
    r.resilience.faultedEpochs = 5;
    r.resilience.degradedDecisions = 4;
    r.resilience.floorEngagements = 1;
    r.resilience.underSuppliedDecisions = 1;
    r.resilience.quarantineEvents = 2;
    r.resilience.quarantinedEpochs = 3;
    r.resilience.peakQuarantined = 2;
    r.resilience.detectionLatency = 1.5e-4;
    r.resilience.alertsSuppressed = 1;
    r.resilience.alertsInjected = 2;
    r.resilience.emergencyCyclesFaulted = 12;
    r.resilience.emergencyCyclesClean = 7;
    return r;
}

void
expectFullyIdentical(const sim::RunResult &a, const sim::RunResult &b)
{
    EXPECT_EQ(a.benchmark, b.benchmark);
    EXPECT_EQ(a.policy, b.policy);
    EXPECT_EQ(a.maxTmax, b.maxTmax);
    EXPECT_EQ(a.hottestSpot, b.hottestSpot);
    EXPECT_EQ(a.maxGradient, b.maxGradient);
    EXPECT_EQ(a.maxNoiseFrac, b.maxNoiseFrac);
    EXPECT_EQ(a.emergencyFrac, b.emergencyFrac);
    EXPECT_EQ(a.avgRegulatorLoss, b.avgRegulatorLoss);
    EXPECT_EQ(a.avgEta, b.avgEta);
    EXPECT_EQ(a.avgActiveVrs, b.avgActiveVrs);
    EXPECT_EQ(a.meanPower, b.meanPower);
    EXPECT_EQ(a.overrideCount, b.overrideCount);
    EXPECT_EQ(a.timeUs, b.timeUs);
    EXPECT_EQ(a.totalPowerW, b.totalPowerW);
    EXPECT_EQ(a.activeVrs, b.activeVrs);
    EXPECT_EQ(a.trackedVrTemp, b.trackedVrTemp);
    EXPECT_EQ(a.trackedVrOn, b.trackedVrOn);
    EXPECT_EQ(a.heatmap, b.heatmap);
    EXPECT_EQ(a.heatmapW, b.heatmapW);
    EXPECT_EQ(a.heatmapH, b.heatmapH);
    EXPECT_EQ(a.heatmapTimeUs, b.heatmapTimeUs);
    EXPECT_EQ(a.noiseTrace, b.noiseTrace);
    EXPECT_EQ(a.noiseTraceDomain, b.noiseTraceDomain);
    EXPECT_EQ(a.noiseTraceTimeUs, b.noiseTraceTimeUs);
    EXPECT_EQ(a.vrActivity, b.vrActivity);
    EXPECT_EQ(a.vrAging, b.vrAging);
    EXPECT_EQ(a.agingImbalance, b.agingImbalance);
    EXPECT_EQ(a.resilience.scheduledFaults,
              b.resilience.scheduledFaults);
    EXPECT_EQ(a.resilience.faultedEpochs, b.resilience.faultedEpochs);
    EXPECT_EQ(a.resilience.degradedDecisions,
              b.resilience.degradedDecisions);
    EXPECT_EQ(a.resilience.floorEngagements,
              b.resilience.floorEngagements);
    EXPECT_EQ(a.resilience.underSuppliedDecisions,
              b.resilience.underSuppliedDecisions);
    EXPECT_EQ(a.resilience.quarantineEvents,
              b.resilience.quarantineEvents);
    EXPECT_EQ(a.resilience.quarantinedEpochs,
              b.resilience.quarantinedEpochs);
    EXPECT_EQ(a.resilience.peakQuarantined,
              b.resilience.peakQuarantined);
    EXPECT_EQ(a.resilience.detectionLatency,
              b.resilience.detectionLatency);
    EXPECT_EQ(a.resilience.alertsSuppressed,
              b.resilience.alertsSuppressed);
    EXPECT_EQ(a.resilience.alertsInjected,
              b.resilience.alertsInjected);
    EXPECT_EQ(a.resilience.emergencyCyclesFaulted,
              b.resilience.emergencyCyclesFaulted);
    EXPECT_EQ(a.resilience.emergencyCyclesClean,
              b.resilience.emergencyCyclesClean);
}

TEST(Serialize, RunResultRoundTripsBitExactly)
{
    const sim::RunResult r = denseResult();
    auto bytes = encodeRunResult(r);
    sim::RunResult back;
    ASSERT_TRUE(decodeRunResult(bytes.data(), bytes.size(), back));
    expectFullyIdentical(r, back);

    // Default-constructed (empty-series) result round-trips too.
    sim::RunResult empty;
    auto ebytes = encodeRunResult(empty);
    sim::RunResult eback;
    ASSERT_TRUE(decodeRunResult(ebytes.data(), ebytes.size(), eback));
    expectFullyIdentical(empty, eback);
}

TEST(Serialize, TruncationAndTrailingGarbageAreRejected)
{
    auto bytes = encodeRunResult(denseResult());
    sim::RunResult out;
    // Every truncation point must fail cleanly, never crash.
    for (std::size_t cut : {std::size_t(0), std::size_t(1),
                            std::size_t(4), bytes.size() / 2,
                            bytes.size() - 1})
        EXPECT_FALSE(decodeRunResult(bytes.data(), cut, out))
            << "truncated at " << cut;
    // Wrong magic.
    auto bad = bytes;
    bad[0] ^= 0xff;
    EXPECT_FALSE(decodeRunResult(bad.data(), bad.size(), out));
    // Trailing garbage (exhausted() check).
    auto longer = bytes;
    longer.push_back(0);
    EXPECT_FALSE(decodeRunResult(longer.data(), longer.size(), out));
}

TEST(Serialize, AbsurdVectorLengthIsRejectedNotAllocated)
{
    // A corrupt length prefix must fail the sanity cap, not attempt a
    // multi-gigabyte allocation.
    ByteWriter w;
    w.u32(0x54475231u); // kRunResultMagic
    w.str("x");
    w.u64(0);
    ByteReader probe(w.bytes().data(), w.bytes().size());
    (void)probe;
    std::vector<std::uint8_t> bytes = w.bytes();
    // Append a vector length far past the cap with no payload.
    ByteWriter tail;
    tail.u64(std::uint64_t(1) << 40);
    bytes.insert(bytes.end(), tail.bytes().begin(),
                 tail.bytes().end());
    sim::RunResult out;
    EXPECT_FALSE(decodeRunResult(bytes.data(), bytes.size(), out));
}

class DiskTierTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir = std::filesystem::path(::testing::TempDir()) /
              "tg-cache-test";
        std::filesystem::remove_all(dir);
        stats = std::make_unique<ArtifactStore>();
    }
    void TearDown() override { std::filesystem::remove_all(dir); }

    std::filesystem::path dir;
    std::unique_ptr<ArtifactStore> stats;
};

TEST_F(DiskTierTest, SaveEvictReloadRoundTripsBitExactly)
{
    DiskTier tier(dir.string(), stats.get());
    const sim::RunResult r = denseResult();
    const Fingerprint key = keyOf(100);

    ASSERT_TRUE(tier.save(ArtifactKind::RunResult, key,
                          encodeRunResult(r), "test provenance"));
    EXPECT_TRUE(std::filesystem::exists(
        tier.pathFor(ArtifactKind::RunResult, key)));

    // Simulate memory-tier eviction: reload purely from disk.
    std::vector<std::uint8_t> payload;
    ASSERT_TRUE(tier.load(ArtifactKind::RunResult, key, payload));
    sim::RunResult back;
    ASSERT_TRUE(decodeRunResult(payload.data(), payload.size(), back));
    expectFullyIdentical(r, back);

    auto st = stats->stats();
    EXPECT_EQ(st.diskWrites, 1u);
    EXPECT_EQ(st.diskHits, 1u);
    EXPECT_EQ(st.diskRejects, 0u);
}

TEST_F(DiskTierTest, MissingKindOrKeyMismatchMisses)
{
    DiskTier tier(dir.string(), stats.get());
    std::vector<std::uint8_t> payload;
    EXPECT_FALSE(
        tier.load(ArtifactKind::RunResult, keyOf(101), payload));
    EXPECT_EQ(stats->stats().diskMisses, 1u);

    // A file saved under one kind must not answer another (the file
    // header binds both kind and key).
    ASSERT_TRUE(tier.save(ArtifactKind::RunResult, keyOf(102),
                          encodeRunResult(denseResult()), "p"));
    std::filesystem::copy_file(
        tier.pathFor(ArtifactKind::RunResult, keyOf(102)),
        tier.pathFor(ArtifactKind::RunResult, keyOf(103)));
    EXPECT_FALSE(
        tier.load(ArtifactKind::RunResult, keyOf(103), payload));
    EXPECT_GT(stats->stats().diskRejects, 0u);
}

TEST_F(DiskTierTest, CorruptAndTruncatedFilesAreRejected)
{
    DiskTier tier(dir.string(), stats.get());
    const Fingerprint key = keyOf(104);
    ASSERT_TRUE(tier.save(ArtifactKind::RunResult, key,
                          encodeRunResult(denseResult()), "p"));
    const std::string path =
        tier.pathFor(ArtifactKind::RunResult, key);

    // Flip one payload byte: checksum must catch it.
    {
        std::fstream f(path, std::ios::in | std::ios::out |
                                 std::ios::binary);
        f.seekp(64);
        char c;
        f.seekg(64);
        f.get(c);
        c = static_cast<char>(c ^ 0x40);
        f.seekp(64);
        f.put(c);
    }
    std::vector<std::uint8_t> payload;
    EXPECT_FALSE(tier.load(ArtifactKind::RunResult, key, payload));

    // Truncate: length/checksum validation must catch it.
    ASSERT_TRUE(tier.save(ArtifactKind::RunResult, key,
                          encodeRunResult(denseResult()), "p"));
    std::filesystem::resize_file(
        path, std::filesystem::file_size(path) / 2);
    EXPECT_FALSE(tier.load(ArtifactKind::RunResult, key, payload));

    // Zero-length file.
    ASSERT_TRUE(tier.save(ArtifactKind::RunResult, key,
                          encodeRunResult(denseResult()), "p"));
    std::filesystem::resize_file(path, 0);
    EXPECT_FALSE(tier.load(ArtifactKind::RunResult, key, payload));

    EXPECT_GE(stats->stats().diskRejects, 3u);
}

TEST_F(DiskTierTest, InactiveTierNeverTouchesTheFilesystem)
{
    DiskTier tier("", stats.get());
    EXPECT_FALSE(tier.active());
    std::vector<std::uint8_t> payload;
    EXPECT_FALSE(
        tier.load(ArtifactKind::RunResult, keyOf(105), payload));
    EXPECT_FALSE(tier.save(ArtifactKind::RunResult, keyOf(105),
                           {1, 2, 3}, "p"));
}

// ===================================================================
// End-to-end: cache hit == recompute
// ===================================================================

sim::SimConfig
miniConfig()
{
    sim::SimConfig cfg;
    cfg.noiseSamples = 4;
    cfg.profilingEpochs = 8;
    return cfg;
}

class CacheDeterminism : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir = std::filesystem::path(::testing::TempDir()) /
              "tg-cache-determinism";
        std::filesystem::remove_all(dir);
        store().clear();
        store().setEnabled(true);
    }
    void TearDown() override
    {
        std::filesystem::remove_all(dir);
        store().clear();
        store().setEnabled(true);
    }

    std::filesystem::path dir;
};

TEST_F(CacheDeterminism, MemoHitEqualsRecomputeAcrossJobCounts)
{
    // The reference: caching fully disabled.
    auto chip = floorplan::buildMiniChip(2);
    store().setEnabled(false);
    sim::SimConfig plain = miniConfig();
    plain.memoizeResults = false;
    sim::Simulation ref(chip, plain);
    auto want = ref.run(workload::profileByName("fft"),
                        core::PolicyKind::PracVT);
    store().setEnabled(true);

    // Cold memoizing run at jobs=1 populates memory + disk; warm runs
    // at jobs=1 and jobs=4 must hit (jobs is excluded from the key)
    // and return every bit of the reference.
    sim::SimConfig memo = miniConfig();
    memo.cacheDir = dir.string();
    for (int jobs : {1, 4}) {
        sim::SimConfig cfg = memo;
        cfg.jobs = jobs;
        sim::Simulation s(chip, cfg);
        auto got = s.run(workload::profileByName("fft"),
                         core::PolicyKind::PracVT);
        expectFullyIdentical(want, got);
    }
    // The second loop iteration must have been served by the memo.
    auto st = store().stats();
    EXPECT_GT(st.kind[int(ArtifactKind::RunResult)].hits +
                  st.diskHits,
              0u);
}

TEST_F(CacheDeterminism, DiskTierSurvivesMemoryEviction)
{
    auto chip = floorplan::buildMiniChip(1);
    sim::SimConfig cfg = miniConfig();
    cfg.cacheDir = dir.string();

    sim::Simulation cold(chip, cfg);
    auto want = cold.run(workload::profileByName("rayt"),
                         core::PolicyKind::OracVT);

    // Drop the memory tier entirely: the rerun must reload the
    // RunResult from disk, bit-identically.
    store().clear();
    const auto disk_hits_before = store().stats().diskHits;
    sim::Simulation warm(chip, cfg);
    auto got = warm.run(workload::profileByName("rayt"),
                        core::PolicyKind::OracVT);
    expectFullyIdentical(want, got);
    EXPECT_GT(store().stats().diskHits, disk_hits_before);
}

TEST_F(CacheDeterminism, CorruptDiskArtifactFallsBackToRecompute)
{
    auto chip = floorplan::buildMiniChip(1);
    sim::SimConfig cfg = miniConfig();
    cfg.cacheDir = dir.string();

    sim::Simulation cold(chip, cfg);
    auto want = cold.run(workload::profileByName("fft"),
                         core::PolicyKind::AllOn);

    // Corrupt every cached file, drop the memory tier: the run must
    // reject the files, recompute, and still match bit for bit.
    for (const auto &e :
         std::filesystem::directory_iterator(dir)) {
        std::fstream f(e.path(), std::ios::in | std::ios::out |
                                     std::ios::binary);
        f.seekp(40);
        f.put('\x7f');
    }
    store().clear();
    const auto rejects_before = store().stats().diskRejects;
    sim::Simulation retry(chip, cfg);
    auto got = retry.run(workload::profileByName("fft"),
                         core::PolicyKind::AllOn);
    expectFullyIdentical(want, got);
    EXPECT_GT(store().stats().diskRejects, rejects_before);
}

TEST_F(CacheDeterminism, MemoizationOffStillMatchesAndDoesNotWrite)
{
    // memoizeResults=false (or no cache dir) must keep the disk tier
    // untouched while the prebuild caches stay bit-invisible.
    auto chip = floorplan::buildMiniChip(1);
    sim::SimConfig cfg = miniConfig();
    cfg.cacheDir = dir.string();
    cfg.memoizeResults = false;

    sim::Simulation a(chip, cfg);
    auto r1 = a.run(workload::profileByName("fft"),
                    core::PolicyKind::PracVT);
    EXPECT_FALSE(std::filesystem::exists(dir));

    sim::Simulation b(chip, cfg); // prebuild caches hit here
    auto r2 = b.run(workload::profileByName("fft"),
                    core::PolicyKind::PracVT);
    expectFullyIdentical(r1, r2);
}

} // namespace
} // namespace cache
} // namespace tg
