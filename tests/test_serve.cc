/**
 * @file
 * Pure tests of the sweep-server payload codecs and the shared
 * connection plumbing: round trips, truncation/garbage rejection,
 * and the socket-path resolution ladder. End-to-end server behaviour
 * lives in test_serve_run.cc.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "serve/protocol.hh"

namespace tg {
namespace serve {
namespace {

RunMsg sampleRun()
{
    RunMsg m;
    m.setup = {1, 2, 3, 4, 5};
    m.benchmark = "rayt";
    m.policy = 3;
    m.timeSeries = 1;
    m.heatmap = 0;
    m.noiseTrace = 1;
    m.trackVr = 17;
    m.noiseSamplesOverride = 9;
    m.deadlineMs = 2500;
    return m;
}

SweepMsg sampleSweep()
{
    SweepMsg m;
    m.setup = {9, 8, 7};
    m.benchmarks = {"rayt", "fft", "lu_ncb"};
    m.policies = {0, 2, 5};
    m.cells = {0, 4, 8};
    m.jobs = 4;
    m.heatmap = 1;
    m.trackVr = -1;
    m.noiseSamplesOverride = -1;
    m.deadlineMs = 60000;
    return m;
}

TEST(ServeProtocol, RunRoundTrip)
{
    const RunMsg in = sampleRun();
    RunMsg out;
    ASSERT_TRUE(decodeRun(encodeRun(in), out));
    EXPECT_EQ(out.setup, in.setup);
    EXPECT_EQ(out.benchmark, in.benchmark);
    EXPECT_EQ(out.policy, in.policy);
    EXPECT_EQ(out.timeSeries, in.timeSeries);
    EXPECT_EQ(out.heatmap, in.heatmap);
    EXPECT_EQ(out.noiseTrace, in.noiseTrace);
    EXPECT_EQ(out.trackVr, in.trackVr);
    EXPECT_EQ(out.noiseSamplesOverride, in.noiseSamplesOverride);
    EXPECT_EQ(out.deadlineMs, in.deadlineMs);
}

TEST(ServeProtocol, SweepRoundTrip)
{
    const SweepMsg in = sampleSweep();
    SweepMsg out;
    ASSERT_TRUE(decodeSweep(encodeSweep(in), out));
    EXPECT_EQ(out.setup, in.setup);
    EXPECT_EQ(out.benchmarks, in.benchmarks);
    EXPECT_EQ(out.policies, in.policies);
    EXPECT_EQ(out.cells, in.cells);
    EXPECT_EQ(out.jobs, in.jobs);
    EXPECT_EQ(out.heatmap, in.heatmap);
    EXPECT_EQ(out.trackVr, in.trackVr);
    EXPECT_EQ(out.deadlineMs, in.deadlineMs);
}

TEST(ServeProtocol, CellAndDoneRoundTrip)
{
    CellMsg cell;
    cell.cell = 42;
    cell.result = {0xDE, 0xAD, 0xBE, 0xEF};
    CellMsg cellOut;
    ASSERT_TRUE(decodeCell(encodeCell(cell), cellOut));
    EXPECT_EQ(cellOut.cell, cell.cell);
    EXPECT_EQ(cellOut.result, cell.result);

    DoneMsg done;
    done.ok = 0;
    done.status = static_cast<std::uint8_t>(DoneStatus::Busy);
    done.cells = 7;
    done.error = "unknown benchmark 'nope'";
    done.retryAfterMs = 125;
    DoneMsg doneOut;
    ASSERT_TRUE(decodeDone(encodeDone(done), doneOut));
    EXPECT_EQ(doneOut.ok, done.ok);
    EXPECT_EQ(doneOut.status, done.status);
    EXPECT_EQ(doneOut.cells, done.cells);
    EXPECT_EQ(doneOut.error, done.error);
    EXPECT_EQ(doneOut.retryAfterMs, done.retryAfterMs);
}

TEST(ServeProtocol, DoneStatusConsistencyIsEnforced)
{
    // ok=1 must mean status==Ok: any disagreement (or an unknown
    // status id) is a malformed reply, not something to half-trust.
    DoneMsg lying;
    lying.ok = 1;
    lying.status = static_cast<std::uint8_t>(DoneStatus::Busy);
    DoneMsg out;
    EXPECT_FALSE(decodeDone(encodeDone(lying), out));

    DoneMsg unknown;
    unknown.ok = 0;
    unknown.status = 250;
    EXPECT_FALSE(decodeDone(encodeDone(unknown), out));

    DoneMsg honest;
    honest.ok = 1;
    honest.status = static_cast<std::uint8_t>(DoneStatus::Ok);
    EXPECT_TRUE(decodeDone(encodeDone(honest), out));
}

TEST(ServeProtocol, StatsReplyRoundTripIncludesStoreSnapshot)
{
    StatsReplyMsg in;
    in.uptimeMicros = 1234567;
    in.requestsRun = 1;
    in.requestsSweep = 2;
    in.requestsPing = 3;
    in.requestsStats = 4;
    in.requestsRejected = 5;
    in.cellsServed = 6;
    in.contextsBuilt = 7;
    in.contextsReused = 8;
    in.queueDepth = 9;
    in.runMicros = 10;
    in.sweepMicros = 11;
    for (std::size_t k = 0; k < in.store.kind.size(); ++k) {
        in.store.kind[k].hits = 100 + k;
        in.store.kind[k].misses = 200 + k;
        in.store.kind[k].inserts = 300 + k;
        in.store.kind[k].bytes = 400 + k;
        in.store.kind[k].evictions = 500 + k;
    }
    in.requestsBusy = 12;
    in.requestsCancelled = 13;
    in.requestsDeadline = 14;
    in.activeRequests = 1;
    in.store.evictions = 2020;
    in.store.diskHits = 1;
    in.store.diskMisses = 2;
    in.store.diskWrites = 3;
    in.store.diskRejects = 4;
    in.store.diskTmpSwept = 5;

    StatsReplyMsg out;
    ASSERT_TRUE(decodeStatsReply(encodeStatsReply(in), out));
    EXPECT_EQ(out.uptimeMicros, in.uptimeMicros);
    EXPECT_EQ(out.requestsRejected, in.requestsRejected);
    EXPECT_EQ(out.contextsBuilt, in.contextsBuilt);
    EXPECT_EQ(out.contextsReused, in.contextsReused);
    EXPECT_EQ(out.queueDepth, in.queueDepth);
    EXPECT_EQ(out.sweepMicros, in.sweepMicros);
    for (std::size_t k = 0; k < in.store.kind.size(); ++k) {
        EXPECT_EQ(out.store.kind[k].hits, in.store.kind[k].hits);
        EXPECT_EQ(out.store.kind[k].bytes, in.store.kind[k].bytes);
        EXPECT_EQ(out.store.kind[k].evictions,
                  in.store.kind[k].evictions);
    }
    EXPECT_EQ(out.requestsBusy, in.requestsBusy);
    EXPECT_EQ(out.requestsCancelled, in.requestsCancelled);
    EXPECT_EQ(out.requestsDeadline, in.requestsDeadline);
    EXPECT_EQ(out.activeRequests, in.activeRequests);
    EXPECT_EQ(out.store.evictions, in.store.evictions);
    EXPECT_EQ(out.store.diskRejects, in.store.diskRejects);
    EXPECT_EQ(out.store.diskTmpSwept, in.store.diskTmpSwept);
}

TEST(ServeProtocol, TruncationIsRejectedAtEveryPrefix)
{
    const std::vector<std::uint8_t> runBytes =
        encodeRun(sampleRun());
    for (std::size_t cut = 0; cut < runBytes.size(); ++cut) {
        RunMsg out;
        const std::vector<std::uint8_t> prefix(
            runBytes.begin(),
            runBytes.begin() + static_cast<std::ptrdiff_t>(cut));
        EXPECT_FALSE(decodeRun(prefix, out)) << "cut=" << cut;
    }
    const std::vector<std::uint8_t> sweepBytes =
        encodeSweep(sampleSweep());
    for (std::size_t cut = 0; cut < sweepBytes.size(); ++cut) {
        SweepMsg out;
        const std::vector<std::uint8_t> prefix(
            sweepBytes.begin(),
            sweepBytes.begin() + static_cast<std::ptrdiff_t>(cut));
        EXPECT_FALSE(decodeSweep(prefix, out)) << "cut=" << cut;
    }
}

TEST(ServeProtocol, TrailingGarbageIsRejected)
{
    std::vector<std::uint8_t> bytes = encodeSweep(sampleSweep());
    bytes.push_back(0x00);
    SweepMsg out;
    EXPECT_FALSE(decodeSweep(bytes, out));

    std::vector<std::uint8_t> statsBytes =
        encodeStatsReply(StatsReplyMsg{});
    statsBytes.push_back(0xFF);
    StatsReplyMsg statsOut;
    EXPECT_FALSE(decodeStatsReply(statsBytes, statsOut));
}

TEST(ServeProtocol, AbsurdListLengthIsRejected)
{
    // Hand-craft a sweep whose benchmark count claims 2^32 entries.
    bytes::ByteWriter w;
    w.blob({1, 2, 3});
    w.u64(1ull << 32);
    const std::vector<std::uint8_t> p = w.take();
    SweepMsg out;
    EXPECT_FALSE(decodeSweep(p, out));
}

TEST(ServeProtocol, SocketPathLadder)
{
    // CLI value wins outright.
    EXPECT_EQ(resolveSocketPath("/tmp/explicit.sock"),
              "/tmp/explicit.sock");

    // Then the environment.
    ::setenv("TG_SERVE_SOCKET", "/tmp/from_env.sock", 1);
    EXPECT_EQ(resolveSocketPath(""), "/tmp/from_env.sock");
    ::unsetenv("TG_SERVE_SOCKET");

    // Then the per-user default.
    const std::string fallback = resolveSocketPath("");
    EXPECT_EQ(fallback.rfind("/tmp/tg_serve.", 0), 0u);
    EXPECT_NE(fallback.find(".sock"), std::string::npos);
}

TEST(ServeProtocol, ServeFrameTypesAreValidFrameTypes)
{
    // The serve extension registered its enumerators in the shard
    // frame registry; the parser must accept them all...
    for (auto t : {shard::FrameType::ServeRun,
                   shard::FrameType::ServeSweep,
                   shard::FrameType::ServeCell,
                   shard::FrameType::ServeDone,
                   shard::FrameType::ServeStats,
                   shard::FrameType::ServeStatsReply,
                   shard::FrameType::Ping, shard::FrameType::Pong,
                   shard::FrameType::ServeCancel})
        EXPECT_TRUE(shard::frameTypeValid(
            static_cast<std::uint32_t>(t)));
    // ...and still reject the first id past the extension.
    EXPECT_FALSE(shard::frameTypeValid(
        static_cast<std::uint32_t>(shard::FrameType::ServeCancel) +
        1));
}

} // namespace
} // namespace serve
} // namespace tg
