/**
 * @file
 * Bit-identity tests of cross-epoch noise-window coalescing.
 *
 * SimConfig::coalesceNoiseEpochs lets built windows ride across
 * epochs whose decision kept the active set, draining on a set
 * change, an emergency-truth decision boundary, the width cap, or
 * the end of the run. The contract under test: a coalesced run is
 * bit-identical (EXPECT_EQ on every double — hexfloat equality) to
 * the per-epoch drain path, at every worker count and batch width,
 * for a policy that never flushes mid-run (AllOn: maximal lanes),
 * for the paper's full policy (PracVT: the emergency-truth boundary
 * drains almost every sampled epoch), for a set-changing policy
 * without the override (OracT: the per-domain flush-before-rekey
 * path), and under an active fault scenario (per-sample fault
 * attribution recorded at queue time).
 */

#include <gtest/gtest.h>

#include "fault/scenario.hh"
#include "floorplan/power8.hh"
#include "sim/simulation.hh"
#include "workload/profile.hh"

namespace tg {
namespace sim {
namespace {

SimConfig
miniConfig(int jobs, int width, bool coalesce)
{
    SimConfig cfg;
    cfg.noiseSamples = 24;  // multiple windows per drain: real lanes
    cfg.profilingEpochs = 8;
    cfg.jobs = jobs;
    cfg.noiseBatchWidth = width;
    cfg.coalesceNoiseEpochs = coalesce;
    return cfg;
}

void
expectIdentical(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.benchmark, b.benchmark);
    EXPECT_EQ(a.policy, b.policy);
    EXPECT_EQ(a.maxTmax, b.maxTmax);
    EXPECT_EQ(a.hottestSpot, b.hottestSpot);
    EXPECT_EQ(a.maxGradient, b.maxGradient);
    EXPECT_EQ(a.maxNoiseFrac, b.maxNoiseFrac);
    EXPECT_EQ(a.emergencyFrac, b.emergencyFrac);
    EXPECT_EQ(a.avgRegulatorLoss, b.avgRegulatorLoss);
    EXPECT_EQ(a.avgEta, b.avgEta);
    EXPECT_EQ(a.avgActiveVrs, b.avgActiveVrs);
    EXPECT_EQ(a.meanPower, b.meanPower);
    EXPECT_EQ(a.overrideCount, b.overrideCount);
    EXPECT_EQ(a.agingImbalance, b.agingImbalance);
    EXPECT_EQ(a.vrActivity, b.vrActivity);
    EXPECT_EQ(a.vrAging, b.vrAging);
    EXPECT_EQ(a.resilience.emergencyCyclesFaulted,
              b.resilience.emergencyCyclesFaulted);
    EXPECT_EQ(a.resilience.emergencyCyclesClean,
              b.resilience.emergencyCyclesClean);
}

RunResult
runWith(const floorplan::Chip &chip, core::PolicyKind policy,
        int jobs, int width, bool coalesce,
        const fault::FaultScenario *scenario = nullptr)
{
    Simulation s(chip, miniConfig(jobs, width, coalesce));
    RecordOptions opts;
    if (scenario)
        opts.faultScenario = scenario;
    return s.run(workload::profileByName("fft"), policy, opts);
}

TEST(CoalesceDeterminism, MatchesPerEpochPathAcrossJobsAndWidths)
{
    // Reference: the per-epoch drain (the pre-coalescing behaviour)
    // at the default width. Every coalesced combination must equal
    // it bit for bit. AllOn never changes sets, so its windows only
    // drain at the width cap and the end of the run — maximal
    // coalescing; PracVT's emergency-truth boundary forces a drain
    // at the start of nearly every sampled epoch — frequent flushes.
    auto chip = floorplan::buildMiniChip(2);
    for (auto policy :
         {core::PolicyKind::AllOn, core::PolicyKind::PracVT}) {
        auto ref = runWith(chip, policy, 1, 4, false);
        for (int jobs : {1, 4})
            for (int width : {1, 4, 8})
                expectIdentical(
                    ref, runWith(chip, policy, jobs, width, true));
        // Per-epoch path itself is width/jobs-invariant too.
        expectIdentical(ref, runWith(chip, policy, 4, 8, false));
    }
}

TEST(CoalesceDeterminism, SetChangingPolicyFlushesBeforeRekey)
{
    // OracT re-selects active sets each epoch without the emergency
    // override, so pending windows hit the flush-before-setActive
    // path: they must solve under the factorisation of the epoch
    // that scheduled them, not the incoming one.
    auto chip = floorplan::buildMiniChip(2);
    auto ref = runWith(chip, core::PolicyKind::OracT, 1, 4, false);
    for (int width : {1, 8})
        expectIdentical(
            ref, runWith(chip, core::PolicyKind::OracT, 1, width,
                         true));
    expectIdentical(
        ref, runWith(chip, core::PolicyKind::OracT, 4, 4, true));
}

TEST(CoalesceDeterminism, FaultScenarioMatchesPerEpochPath)
{
    // Deferred reduction must attribute emergency cycles to the
    // epoch a sample was *scheduled* in (recorded at queue time),
    // exactly as the per-epoch path attributed them at its drain.
    auto chip = floorplan::buildMiniChip(2);
    int n_vrs = static_cast<int>(chip.plan.vrs().size());
    ASSERT_GE(n_vrs, 4);

    fault::FaultScenario scenario(0x5ce7a1ull);
    auto ev = [&](fault::FaultKind kind, int target, Seconds start,
                  Seconds duration, double magnitude) {
        fault::FaultEvent e;
        e.kind = kind;
        e.target = target;
        e.start = start;
        e.duration = duration;
        e.magnitude = magnitude;
        scenario.add(e);
    };
    ev(fault::FaultKind::SensorStuckAt, 0, 0.5e-3, fault::kForever,
       140.0);
    ev(fault::FaultKind::VrStuckOff, 1 % n_vrs, 1e-3, 1e-3, 0.0);
    ev(fault::FaultKind::VrDerated, 3 % n_vrs, 0.0, fault::kForever,
       2.0);
    ev(fault::FaultKind::AlertMissed, 0, 0.0, fault::kForever, 0.5);

    for (auto policy :
         {core::PolicyKind::AllOn, core::PolicyKind::PracVT}) {
        auto ref = runWith(chip, policy, 1, 4, false, &scenario);
        for (int jobs : {1, 4})
            for (int width : {4, 8})
                expectIdentical(ref, runWith(chip, policy, jobs,
                                             width, true, &scenario));
    }
}

TEST(CoalesceDeterminism, TracesAndTimeSeriesSurviveDeferral)
{
    // The deepest-droop trace and its timestamp come out of the
    // deferred reduction; they must match the per-epoch path's pick
    // (same strict-> comparison sequence in queue order).
    auto chip = floorplan::buildMiniChip(1);
    RecordOptions opts;
    opts.noiseTrace = true;
    Simulation per_epoch(chip, miniConfig(1, 4, false));
    Simulation coalesced(chip, miniConfig(1, 8, true));
    auto a = per_epoch.run(workload::profileByName("rayt"),
                           core::PolicyKind::AllOn, opts);
    auto b = coalesced.run(workload::profileByName("rayt"),
                           core::PolicyKind::AllOn, opts);
    expectIdentical(a, b);
    EXPECT_EQ(a.noiseTrace, b.noiseTrace);
    EXPECT_EQ(a.noiseTraceDomain, b.noiseTraceDomain);
    EXPECT_EQ(a.noiseTraceTimeUs, b.noiseTraceTimeUs);
}

} // namespace
} // namespace sim
} // namespace tg
