/** @file Unit tests for the C4-pad global grid. */

#include <gtest/gtest.h>

#include "pdn/global_grid.hh"

namespace tg {
namespace pdn {
namespace {

class GlobalGridTest : public ::testing::Test
{
  protected:
    GlobalGridTest()
        : chip(floorplan::buildPower8Chip()), grid(chip, {})
    {
    }

    std::vector<Watts>
    noBlocks() const
    {
        return std::vector<Watts>(chip.plan.blocks().size(), 0.0);
    }

    std::vector<Watts>
    uniformVrInput(Watts w) const
    {
        return std::vector<Watts>(chip.plan.vrs().size(), w);
    }

    floorplan::Chip chip;
    GlobalGrid grid;
};

TEST_F(GlobalGridTest, TopologySane)
{
    EXPECT_GT(grid.nodeCount(), 50);
    EXPECT_GT(grid.padCount(), 10);
    EXPECT_LT(grid.padCount(), grid.nodeCount());
}

TEST_F(GlobalGridTest, NoLoadNoDroop)
{
    auto i = grid.nodeCurrents(noBlocks(), uniformVrInput(0.0));
    auto d = grid.solve(i);
    EXPECT_NEAR(d.maxDroopFrac, 0.0, 1e-9);
    EXPECT_EQ(d.totalCurrent, 0.0);
}

TEST_F(GlobalGridTest, CurrentConservation)
{
    auto bp = noBlocks();
    bp[static_cast<std::size_t>(chip.plan.blockIndex("noc"))] = 3.0;
    auto i = grid.nodeCurrents(bp, uniformVrInput(1.2));
    auto d = grid.solve(i);
    double expected =
        (3.0 + 1.2 * static_cast<double>(chip.plan.vrs().size())) /
        grid.params().vin;
    EXPECT_NEAR(d.totalCurrent, expected, 1e-9);
}

TEST_F(GlobalGridTest, DroopScalesLinearly)
{
    auto i1 = grid.nodeCurrents(noBlocks(), uniformVrInput(1.0));
    auto i2 = grid.nodeCurrents(noBlocks(), uniformVrInput(2.0));
    auto d1 = grid.solve(i1);
    auto d2 = grid.solve(i2);
    EXPECT_NEAR(d2.maxDroopFrac, 2.0 * d1.maxDroopFrac, 1e-9);
}

TEST_F(GlobalGridTest, ConcentratedDrawDroopsMoreThanSpread)
{
    // Same total input power, drawn by 32 regulators vs all 96: the
    // concentrated configuration sees a deeper worst droop. This is
    // the input-side cost of gating.
    Watts total = 110.0;
    auto spread = uniformVrInput(total / 96.0);
    std::vector<Watts> concentrated(96, 0.0);
    for (int v = 0; v < 32; ++v)
        concentrated[static_cast<std::size_t>(v * 3)] = total / 32.0;
    auto d_spread =
        grid.solve(grid.nodeCurrents(noBlocks(), spread));
    auto d_conc =
        grid.solve(grid.nodeCurrents(noBlocks(), concentrated));
    EXPECT_GT(d_conc.maxDroopFrac, d_spread.maxDroopFrac);
}

TEST_F(GlobalGridTest, InputSideDroopIsSmall)
{
    // The justification for analysing local noise only: at full
    // chip power the global-grid droop stays below a few percent,
    // an order below the local-grid emergencies.
    auto bp = noBlocks();
    bp[static_cast<std::size_t>(chip.plan.blockIndex("noc"))] = 3.0;
    bp[static_cast<std::size_t>(chip.plan.blockIndex("mc0"))] = 2.0;
    bp[static_cast<std::size_t>(chip.plan.blockIndex("mc1"))] = 2.0;
    // ~120 W of regulator input power across the active set.
    auto d = grid.solve(
        grid.nodeCurrents(bp, uniformVrInput(120.0 / 96.0)));
    EXPECT_GT(d.maxDroopFrac, 0.0);
    EXPECT_LT(d.maxDroopFrac, 0.05);
}

TEST_F(GlobalGridTest, DeathOnBadSizes)
{
    std::vector<Watts> bad(3, 0.0);
    EXPECT_DEATH(grid.nodeCurrents(bad, uniformVrInput(1.0)),
                 "size mismatch");
    EXPECT_DEATH(grid.solve(bad), "size mismatch");
}

TEST_F(GlobalGridTest, NodeCurrentsIntoMatchesAllocatingForm)
{
    auto bp = noBlocks();
    bp[static_cast<std::size_t>(chip.plan.blockIndex("noc"))] = 3.0;
    auto expect = grid.nodeCurrents(bp, uniformVrInput(1.2));
    std::vector<Amperes> got(7, -1.0);  // wrong size: must reset
    grid.nodeCurrentsInto(bp, uniformVrInput(1.2), got);
    ASSERT_EQ(got.size(), expect.size());
    for (std::size_t n = 0; n < got.size(); ++n)
        EXPECT_EQ(got[n], expect[n]) << "node " << n;
}

TEST_F(GlobalGridTest, SolveBatchBitIdenticalToScalarSolves)
{
    // One factorization pass over a block of heterogeneous maps must
    // reproduce per-map solve() exactly — droop stats AND voltages.
    auto bp = noBlocks();
    bp[static_cast<std::size_t>(chip.plan.blockIndex("noc"))] = 3.0;
    std::vector<std::vector<Amperes>> maps;
    maps.push_back(grid.nodeCurrents(noBlocks(), uniformVrInput(0.0)));
    maps.push_back(grid.nodeCurrents(bp, uniformVrInput(1.2)));
    std::vector<Watts> concentrated(chip.plan.vrs().size(), 0.0);
    for (std::size_t v = 0; v < concentrated.size(); v += 3)
        concentrated[v] = 110.0 / 32.0;
    maps.push_back(grid.nodeCurrents(noBlocks(), concentrated));

    std::vector<GlobalDroop> batch;
    Matrix volts;
    grid.solveBatch(maps, batch, &volts);
    ASSERT_EQ(batch.size(), maps.size());
    ASSERT_EQ(volts.rows(), static_cast<std::size_t>(grid.nodeCount()));
    ASSERT_EQ(volts.cols(), maps.size());
    for (std::size_t j = 0; j < maps.size(); ++j) {
        auto scalar = grid.solve(maps[j]);
        EXPECT_EQ(batch[j].maxDroopFrac, scalar.maxDroopFrac)
            << "map " << j;
        EXPECT_EQ(batch[j].meanDroopFrac, scalar.meanDroopFrac)
            << "map " << j;
        EXPECT_EQ(batch[j].totalCurrent, scalar.totalCurrent)
            << "map " << j;
    }
    // Column symmetry: identical maps give identical voltages.
    std::vector<std::vector<Amperes>> twin = {maps[1], maps[1]};
    std::vector<GlobalDroop> twin_droop;
    Matrix twin_v;
    grid.solveBatch(twin, twin_droop, &twin_v);
    for (std::size_t n = 0; n < twin_v.rows(); ++n)
        EXPECT_EQ(twin_v(n, 0), twin_v(n, 1)) << "node " << n;
}

TEST_F(GlobalGridTest, SolveBatchHandlesEmptyAndBadSizes)
{
    std::vector<std::vector<Amperes>> none;
    std::vector<GlobalDroop> out(3);
    grid.solveBatch(none, out);
    EXPECT_TRUE(out.empty());
    std::vector<std::vector<Amperes>> bad = {
        std::vector<Amperes>(3, 0.0)};
    EXPECT_DEATH(grid.solveBatch(bad, out), "size mismatch");
}

} // namespace
} // namespace pdn
} // namespace tg
