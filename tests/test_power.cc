/** @file Unit tests for the power model. */

#include <gtest/gtest.h>

#include "floorplan/power8.hh"
#include "power/model.hh"
#include "uarch/core_model.hh"
#include "workload/profile.hh"

namespace tg {
namespace power {
namespace {

class PowerModelTest : public ::testing::Test
{
  protected:
    PowerModelTest() : chip(floorplan::buildPower8Chip()), pm(chip) {}

    floorplan::Chip chip;
    PowerModel pm;
};

TEST_F(PowerModelTest, PeakDynamicInPlausibleTdpRange)
{
    // Full-activity dynamic power must leave room for static power
    // and conversion loss within the 150 W TDP envelope.
    EXPECT_GT(pm.maxDynamic(), 80.0);
    EXPECT_LT(pm.maxDynamic(), 140.0);
    for (std::size_t b = 0; b < chip.plan.blocks().size(); ++b)
        EXPECT_GT(pm.peakDynamic(static_cast<int>(b)), 0.0);
}

TEST_F(PowerModelTest, HotUnitsHaveHighestDensity)
{
    // The EXU must out-dense the caches (hotspots on EXUs/LSUs in
    // the paper's Fig. 12).
    int exu = chip.plan.blockIndex("core0.exu");
    int l2 = chip.plan.blockIndex("core0.l2");
    double d_exu =
        pm.peakDynamic(exu) /
        chip.plan.blocks()[static_cast<std::size_t>(exu)].rect.area();
    double d_l2 =
        pm.peakDynamic(l2) /
        chip.plan.blocks()[static_cast<std::size_t>(l2)].rect.area();
    EXPECT_GT(d_exu, 3.0 * d_l2);
}

TEST_F(PowerModelTest, LeakageCalibrationAtEighty)
{
    // Paper Section 5: static share of total does not exceed 30% at
    // 80 degC; the model calibrates the share exactly.
    double share = pm.params().staticShareAt80C;
    Watts leak80 = pm.uniformLeakage(80.0);
    EXPECT_NEAR(leak80 / (leak80 + pm.maxDynamic()), share, 1e-9);
    EXPECT_LE(share, 0.30);
}

TEST_F(PowerModelTest, LeakageDoublesPerConfiguredDelta)
{
    double dbl = pm.params().leakageDoubling;
    Watts a = pm.uniformLeakage(60.0);
    Watts b = pm.uniformLeakage(60.0 + dbl);
    EXPECT_NEAR(b / a, 2.0, 1e-9);
}

TEST_F(PowerModelTest, LeakageIsMonotoneInTemperature)
{
    int b = chip.plan.blockIndex("core3.exu");
    double prev = 0.0;
    for (double t = 40.0; t <= 100.0; t += 5.0) {
        double leak = pm.leakage(b, t);
        EXPECT_GT(leak, prev);
        prev = leak;
    }
}

TEST_F(PowerModelTest, DynamicFrameScalesWithActivity)
{
    uarch::ActivityFrame idle;
    idle.block.assign(chip.plan.blocks().size(), 0.0);
    uarch::ActivityFrame half;
    half.block.assign(chip.plan.blocks().size(), 0.5);
    uarch::ActivityFrame full;
    full.block.assign(chip.plan.blocks().size(), 1.0);

    auto p0 = pm.dynamicFrame(idle);
    auto p5 = pm.dynamicFrame(half);
    auto p10 = pm.dynamicFrame(full);
    for (std::size_t b = 0; b < p0.size(); ++b) {
        EXPECT_EQ(p0[b], 0.0);
        EXPECT_NEAR(p5[b], 0.5 * p10[b], 1e-12);
    }
}

TEST_F(PowerModelTest, DomainCurrentIsPowerOverVdd)
{
    std::vector<Watts> bp(chip.plan.blocks().size(), 0.0);
    const auto &dom = chip.plan.domains()[0];
    Watts total = 0.0;
    for (int b : dom.blocks) {
        bp[static_cast<std::size_t>(b)] = 1.5;
        total += 1.5;
    }
    EXPECT_NEAR(pm.domainCurrent(bp, 0), total / chip.params.vdd,
                1e-12);
    // Blocks of other domains do not contribute.
    bp[static_cast<std::size_t>(chip.plan.blockIndex("core5.exu"))] =
        100.0;
    EXPECT_NEAR(pm.domainCurrent(bp, 0), total / chip.params.vdd,
                1e-12);
}

TEST_F(PowerModelTest, LeakageFrameMatchesPerBlockQueries)
{
    std::vector<Celsius> temps(chip.plan.blocks().size(), 65.0);
    temps[3] = 85.0;
    auto frame = pm.leakageFrame(temps);
    for (std::size_t b = 0; b < temps.size(); ++b)
        EXPECT_DOUBLE_EQ(frame[b],
                         pm.leakage(static_cast<int>(b), temps[b]));
}

TEST_F(PowerModelTest, LogicLeaksDenserThanMemory)
{
    int exu = chip.plan.blockIndex("core0.exu");
    int l3 = chip.plan.blockIndex("l3b0");
    double a_exu =
        chip.plan.blocks()[static_cast<std::size_t>(exu)].rect.area();
    double a_l3 =
        chip.plan.blocks()[static_cast<std::size_t>(l3)].rect.area();
    EXPECT_GT(pm.leakage(exu, 70.0) / a_exu,
              pm.leakage(l3, 70.0) / a_l3);
}

TEST_F(PowerModelTest, TypicalWorkloadPowerInPaperRange)
{
    // Fig. 6 shows total power demand between ~20 and ~100 W; a
    // mid-utilisation benchmark should land inside that band.
    auto trace = uarch::buildActivityTrace(
        chip, workload::profileByName("lu_ncb"), 42);
    auto dyn = pm.dynamicFrame(trace.frames[trace.frames.size() / 2]);
    Watts total = 0.0;
    for (double p : dyn)
        total += p;
    total += pm.uniformLeakage(62.0);
    EXPECT_GT(total, 20.0);
    EXPECT_LT(total, 110.0);
}

TEST_F(PowerModelTest, DeathOnBadDomain)
{
    std::vector<Watts> bp(chip.plan.blocks().size(), 1.0);
    EXPECT_DEATH(pm.domainCurrent(bp, 99), "bad domain");
}

} // namespace
} // namespace power
} // namespace tg
