/** @file Unit tests for the statistics helpers. */

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "common/stats.hh"

namespace tg {
namespace {

TEST(RunningStats, EmptyAccumulator)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_TRUE(std::isinf(s.min()));
    EXPECT_TRUE(std::isinf(s.max()));
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSeries)
{
    RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_NEAR(s.variance(), 4.0, 1e-12);
    EXPECT_NEAR(s.stddev(), 2.0, 1e-12);
}

TEST(RunningStats, MatchesNaiveTwoPassOnRandomData)
{
    Rng rng(99);
    std::vector<double> xs;
    RunningStats s;
    for (int i = 0; i < 1000; ++i) {
        double x = rng.gaussian(10.0, 3.0);
        xs.push_back(x);
        s.add(x);
    }
    double mean = 0.0;
    for (double x : xs)
        mean += x;
    mean /= xs.size();
    double var = 0.0;
    for (double x : xs)
        var += (x - mean) * (x - mean);
    var /= xs.size();
    EXPECT_NEAR(s.mean(), mean, 1e-9);
    EXPECT_NEAR(s.variance(), var, 1e-9);
}

TEST(RSquared, PerfectPredictionIsOne)
{
    std::vector<double> y = {1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(rSquared(y, y), 1.0);
}

TEST(RSquared, MeanPredictorIsZero)
{
    std::vector<double> y = {1.0, 2.0, 3.0};
    std::vector<double> p = {2.0, 2.0, 2.0};
    EXPECT_NEAR(rSquared(y, p), 0.0, 1e-12);
}

TEST(RSquared, WorseThanMeanIsNegative)
{
    std::vector<double> y = {1.0, 2.0, 3.0};
    std::vector<double> p = {3.0, 2.0, 1.0};
    EXPECT_LT(rSquared(y, p), 0.0);
}

TEST(RSquared, ConstantReferenceEdgeCases)
{
    std::vector<double> y = {2.0, 2.0};
    EXPECT_DOUBLE_EQ(rSquared(y, y), 1.0);
    std::vector<double> p = {2.1, 2.0};
    EXPECT_DOUBLE_EQ(rSquared(y, p), 0.0);
}

TEST(RSquaredDeath, MismatchedLengthsPanic)
{
    std::vector<double> a = {1.0, 2.0};
    std::vector<double> b = {1.0};
    EXPECT_DEATH(rSquared(a, b), "equal-length");
}

TEST(SlopeFit, RecoversExactSlope)
{
    std::vector<double> x = {1.0, 2.0, 3.0};
    std::vector<double> y = {2.5, 5.0, 7.5};
    EXPECT_NEAR(fitSlopeThroughOrigin(x, y), 2.5, 1e-12);
}

TEST(SlopeFit, LeastSquaresOnNoisyData)
{
    Rng rng(5);
    std::vector<double> x;
    std::vector<double> y;
    for (int i = 0; i < 500; ++i) {
        double xv = rng.uniform(-2.0, 2.0);
        x.push_back(xv);
        y.push_back(3.0 * xv + rng.gaussian(0.0, 0.05));
    }
    EXPECT_NEAR(fitSlopeThroughOrigin(x, y), 3.0, 0.02);
}

TEST(SlopeFit, AllZeroInputsGiveZero)
{
    std::vector<double> x = {0.0, 0.0};
    std::vector<double> y = {1.0, -1.0};
    EXPECT_EQ(fitSlopeThroughOrigin(x, y), 0.0);
}

TEST(Wma, EmptyHistoryPredictsZero)
{
    WmaForecaster w(3);
    EXPECT_EQ(w.predict(), 0.0);
}

TEST(Wma, SingleObservationIsIdentity)
{
    WmaForecaster w(3);
    w.observe(7.0);
    EXPECT_DOUBLE_EQ(w.predict(), 7.0);
}

TEST(Wma, LinearWeightsFavourRecent)
{
    WmaForecaster w(3);
    w.observe(1.0);
    w.observe(2.0);
    w.observe(3.0);
    // weights 1,2,3 -> (1*1 + 2*2 + 3*3) / 6 = 14/6
    EXPECT_NEAR(w.predict(), 14.0 / 6.0, 1e-12);
}

TEST(Wma, WindowSlides)
{
    WmaForecaster w(2);
    w.observe(10.0);
    w.observe(20.0);
    w.observe(30.0);  // evicts 10
    // weights 1,2 over {20, 30} -> (20 + 60) / 3
    EXPECT_NEAR(w.predict(), 80.0 / 3.0, 1e-12);
}

TEST(Wma, ConstantSignalIsFixedPoint)
{
    WmaForecaster w(3);
    for (int i = 0; i < 10; ++i)
        w.observe(4.2);
    EXPECT_NEAR(w.predict(), 4.2, 1e-12);
}

TEST(Wma, ResetClearsHistory)
{
    WmaForecaster w(3);
    w.observe(5.0);
    w.reset();
    EXPECT_EQ(w.predict(), 0.0);
}

} // namespace
} // namespace tg
