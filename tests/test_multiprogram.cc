/** @file Tests for multi-programmed (per-core heterogeneous) runs. */

#include <gtest/gtest.h>

#include "sim/simulation.hh"
#include "uarch/core_model.hh"
#include "workload/demand.hh"
#include "workload/profile.hh"

namespace tg {
namespace {

using workload::BenchmarkProfile;
using workload::profileByName;

TEST(MixedDemand, PerCoreCharacteristicsApply)
{
    const auto &busy = profileByName("chol");
    const auto &light = profileByName("rayt");
    std::vector<const BenchmarkProfile *> per_core = {&busy, &light};
    auto trace = workload::generateMixedDemandTrace(per_core, 11);

    double mean0 = 0.0;
    double mean1 = 0.0;
    for (const auto &f : trace.frames) {
        mean0 += f.coreUtil[0];
        mean1 += f.coreUtil[1];
    }
    mean0 /= trace.frames.size();
    mean1 /= trace.frames.size();
    // The cholesky core runs much hotter than the raytrace core.
    EXPECT_GT(mean0, mean1 + 0.3);
    EXPECT_NEAR(mean0, busy.meanUtilization,
                0.08 + busy.imbalance * busy.meanUtilization);
    EXPECT_NEAR(mean1, light.meanUtilization,
                0.08 + light.imbalance * light.meanUtilization);
}

TEST(MixedDemand, CoRunLastsShortestRoi)
{
    const auto &a = profileByName("fmm");   // long ROI
    const auto &b = profileByName("radix"); // short ROI
    std::vector<const BenchmarkProfile *> per_core = {&a, &b};
    auto trace = workload::generateMixedDemandTrace(per_core, 3);
    double shortest = std::min(a.roiDurationUs, b.roiDurationUs);
    EXPECT_NEAR(trace.duration(), shortest * 1e-6,
                trace.dt + 1e-12);
}

TEST(MixedDemand, HomogeneousMatchesSingleProfilePath)
{
    const auto &p = profileByName("fft");
    auto direct = workload::generateDemandTrace(p, 4, 21);
    std::vector<const BenchmarkProfile *> per_core(4, &p);
    auto mixed = workload::generateMixedDemandTrace(per_core, 21);
    ASSERT_EQ(direct.frames.size(), mixed.frames.size());
    EXPECT_EQ(direct.frames[5].coreUtil, mixed.frames[5].coreUtil);
}

TEST(MixedActivity, PerCoreMixDrivesUnits)
{
    auto chip = floorplan::buildMiniChip(2);
    const auto &fp_heavy = profileByName("water_n");
    const auto &mem_heavy = profileByName("radix");
    std::vector<const BenchmarkProfile *> per_core = {&fp_heavy,
                                                      &mem_heavy};
    auto demand = workload::generateMixedDemandTrace(per_core, 5);
    // Equalise the utilisation so only the mix differs.
    for (auto &f : demand.frames)
        f.coreUtil = {0.7, 0.7};
    auto trace = uarch::buildActivityTrace(chip, per_core, demand);

    int exu0 = chip.plan.blockIndex("core0.exu");
    int exu1 = chip.plan.blockIndex("core1.exu");
    int lsu0 = chip.plan.blockIndex("core0.lsu");
    int lsu1 = chip.plan.blockIndex("core1.lsu");
    const auto &f = trace.frames[10];
    // The fp-heavy core keeps its EXU busier; the memory-heavy one
    // its LSU.
    EXPECT_GT(f.block[static_cast<std::size_t>(exu0)],
              f.block[static_cast<std::size_t>(exu1)]);
    EXPECT_GT(f.block[static_cast<std::size_t>(lsu1)],
              f.block[static_cast<std::size_t>(lsu0)]);
}

TEST(MixedSim, RunMixedCompletesAndIsDeterministic)
{
    auto chip = floorplan::buildMiniChip(2);
    sim::SimConfig cfg;
    cfg.noiseSamples = 4;
    cfg.profilingEpochs = 8;
    sim::Simulation simulation(chip, cfg);

    auto busy = profileByName("chol");
    auto light = profileByName("rayt");
    busy.roiDurationUs = 2000.0;
    light.roiDurationUs = 2000.0;
    std::vector<const workload::BenchmarkProfile *> per_core = {
        &busy, &light};

    auto a = simulation.runMixed(per_core, "chol+rayt",
                                 core::PolicyKind::PracVT);
    auto b = simulation.runMixed(per_core, "chol+rayt",
                                 core::PolicyKind::PracVT);
    EXPECT_EQ(a.benchmark, "chol+rayt");
    EXPECT_EQ(a.maxTmax, b.maxTmax);
    EXPECT_EQ(a.maxNoiseFrac, b.maxNoiseFrac);
    EXPECT_GT(a.meanPower, 0.0);
}

TEST(MixedSim, BusyCoreDominatesActivity)
{
    auto chip = floorplan::buildMiniChip(2);
    sim::SimConfig cfg;
    cfg.noiseSamples = 0;
    cfg.profilingEpochs = 8;
    sim::Simulation simulation(chip, cfg);

    auto busy = profileByName("chol");
    auto light = profileByName("rayt");
    busy.roiDurationUs = 2000.0;
    light.roiDurationUs = 2000.0;
    std::vector<const workload::BenchmarkProfile *> per_core = {
        &busy, &light};
    auto r = simulation.runMixed(per_core, "mix",
                                 core::PolicyKind::OracT);

    // The governor keeps more regulators on in the busy core's
    // domain (domain 0) than in the light core's (domain 1).
    const auto &domains = chip.plan.domains();
    double on0 = 0.0;
    double on1 = 0.0;
    for (int v : domains[0].vrs)
        on0 += r.vrActivity[static_cast<std::size_t>(v)];
    for (int v : domains[1].vrs)
        on1 += r.vrActivity[static_cast<std::size_t>(v)];
    EXPECT_GT(on0, on1 + 1.0);
}

TEST(MixedSimDeath, WrongProfileCountPanics)
{
    auto chip = floorplan::buildMiniChip(2);
    sim::SimConfig cfg;
    cfg.profilingEpochs = 8;
    sim::Simulation simulation(chip, cfg);
    const auto &p = profileByName("fft");
    std::vector<const workload::BenchmarkProfile *> per_core = {&p};
    EXPECT_DEATH(simulation.runMixed(per_core, "x",
                                     core::PolicyKind::AllOn),
                 "one profile per core");
}

} // namespace
} // namespace tg
