/**
 * @file
 * Deterministic I/O chaos harness: the TG_IO_FAULTS spec grammar, the
 * seeded decision sequence, and the retry/recovery behaviour of every
 * consumer — writeAll, pumpFrames/FrameParser and the disk cache
 * tier — under each fault class.
 *
 * Chaos state is process-global, so every test installs its config
 * with chaosConfigure() and restores the disabled default on exit
 * (the ChaosGuard fixture); nothing here depends on TG_IO_FAULTS.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#ifdef __unix__
#include <unistd.h>
#endif

#include "cache/disk.hh"
#include "common/io.hh"
#include "shard/protocol.hh"

namespace tg {
namespace io {
namespace {

/** Install a config for the test body, restore "disabled" after. */
class IoChaos : public ::testing::Test
{
  protected:
    void SetUp() override
    {
#ifndef __unix__
        GTEST_SKIP() << "chaos I/O requires a POSIX host";
#endif
        chaosConfigure(ChaosConfig{});
        chaosResetCounters();
    }
    void TearDown() override
    {
        chaosConfigure(ChaosConfig{});
        chaosResetCounters();
    }

    static ChaosConfig recoverable(std::uint64_t seed)
    {
        ChaosConfig cfg;
        cfg.enabled = true;
        cfg.seed = seed;
        cfg.shortRead = 0.35;
        cfg.shortWrite = 0.35;
        cfg.eintr = 0.2;
        return cfg;
    }
};

TEST_F(IoChaos, ParseAcceptsTheFullGrammar)
{
    ChaosConfig cfg;
    std::string err;
    ASSERT_TRUE(chaosParse("seed=77,short-read=0.25,short-write=0.5,"
                           "eintr=0.1,reset=0.01,enospc=1",
                           cfg, &err))
        << err;
    EXPECT_TRUE(cfg.enabled);
    EXPECT_EQ(cfg.seed, 77u);
    EXPECT_DOUBLE_EQ(cfg.shortRead, 0.25);
    EXPECT_DOUBLE_EQ(cfg.shortWrite, 0.5);
    EXPECT_DOUBLE_EQ(cfg.eintr, 0.1);
    EXPECT_DOUBLE_EQ(cfg.reset, 0.01);
    EXPECT_DOUBLE_EQ(cfg.enospc, 1.0);

    // The empty spec (and a seed with no rates) parse as disabled.
    ChaosConfig off;
    ASSERT_TRUE(chaosParse("", off, &err));
    EXPECT_FALSE(off.enabled);
    ASSERT_TRUE(chaosParse("seed=5", off, &err));
    EXPECT_FALSE(off.enabled);
}

TEST_F(IoChaos, ParseRejectsMalformedSpecs)
{
    ChaosConfig cfg;
    cfg.seed = 123; // sentinel: a failed parse must not touch `out`
    std::string err;
    for (const char *bad : {
             "sed=1",              // unknown key
             "short-read",         // not key=value
             "seed=abc",           // seed not a number
             "eintr=zero",         // rate not a number
             "eintr=1.5",          // rate above 1
             "reset=-0.1",         // rate below 0
             "short-write=0.5x",   // trailing garbage
         }) {
        err.clear();
        EXPECT_FALSE(chaosParse(bad, cfg, &err)) << bad;
        EXPECT_FALSE(err.empty()) << bad;
        EXPECT_EQ(cfg.seed, 123u) << bad;
    }
}

#ifdef __unix__

/** Pipe with a reader thread draining into `sink` (raw read(2), so
 *  the reader consumes no chaos op indices). */
struct DrainedPipe
{
    int fds[2] = {-1, -1};
    std::vector<std::uint8_t> sink;
    std::thread reader;

    DrainedPipe()
    {
        EXPECT_EQ(::pipe(fds), 0);
        reader = std::thread([this] {
            std::uint8_t buf[4096];
            for (;;) {
                const long n = ::read(fds[0], buf, sizeof buf);
                if (n <= 0)
                    break;
                sink.insert(sink.end(), buf, buf + n);
            }
        });
    }
    void closeWriter()
    {
        if (fds[1] >= 0)
            ::close(fds[1]);
        fds[1] = -1;
    }
    ~DrainedPipe()
    {
        closeWriter();
        if (reader.joinable())
            reader.join();
        ::close(fds[0]);
    }
};

std::vector<std::uint8_t> patternBuffer(std::size_t n)
{
    std::vector<std::uint8_t> buf(n);
    for (std::size_t i = 0; i < n; ++i)
        buf[i] = static_cast<std::uint8_t>(i * 31 + (i >> 8));
    return buf;
}

TEST_F(IoChaos, WriteAllDeliversEveryByteUnderShortWritesAndEintr)
{
    const std::vector<std::uint8_t> payload = patternBuffer(1 << 18);
    chaosConfigure(recoverable(1));
    {
        DrainedPipe pipe;
        ASSERT_TRUE(
            writeAll(pipe.fds[1], payload.data(), payload.size()));
        pipe.closeWriter();
        pipe.reader.join();
        EXPECT_EQ(pipe.sink, payload);
    }
    // The storm actually happened: both recoverable classes fired.
    const ChaosCounters c = chaosCounters();
    EXPECT_GT(c.shortWrites, 0u);
    EXPECT_GT(c.eintrs, 0u);
    EXPECT_EQ(c.resets, 0u);
}

TEST_F(IoChaos, DecisionSequenceReplaysExactlyForAFixedSeed)
{
    const std::vector<std::uint8_t> payload = patternBuffer(1 << 16);
    auto storm = [&] {
        DrainedPipe pipe;
        EXPECT_TRUE(
            writeAll(pipe.fds[1], payload.data(), payload.size()));
        return chaosCounters();
    };

    chaosConfigure(recoverable(42)); // resets the op index
    chaosResetCounters();
    const ChaosCounters first = storm();

    chaosConfigure(recoverable(42));
    chaosResetCounters();
    const ChaosCounters again = storm();

    EXPECT_EQ(first.ops, again.ops);
    EXPECT_EQ(first.shortWrites, again.shortWrites);
    EXPECT_EQ(first.eintrs, again.eintrs);

    // A different seed draws a different storm (with overwhelming
    // probability for these rates and op counts).
    chaosConfigure(recoverable(43));
    chaosResetCounters();
    const ChaosCounters other = storm();
    EXPECT_TRUE(first.ops != other.ops ||
                first.shortWrites != other.shortWrites ||
                first.eintrs != other.eintrs);
}

TEST_F(IoChaos, PumpFramesDeliversIntactFramesUnderShortReadsAndEintr)
{
    // Write the frames with chaos off, then storm the read side.
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    std::vector<std::vector<std::uint8_t>> payloads;
    for (std::size_t i = 0; i < 8; ++i)
        payloads.push_back(patternBuffer(64 + i * 257));
    for (const auto &p : payloads)
        ASSERT_TRUE(
            shard::writeFrameToFd(fds[1], shard::FrameType::ServeCell,
                                  p));
    ::close(fds[1]);

    chaosConfigure(recoverable(7));
    shard::FrameParser parser;
    std::vector<shard::Frame> got;
    shard::PumpStatus st;
    do {
        st = shard::pumpFrames(fds[0], parser,
                               [&](const shard::Frame &f) {
                                   got.push_back(f);
                                   return true;
                               });
    } while (st == shard::PumpStatus::Ok);
    ::close(fds[0]);

    EXPECT_EQ(st, shard::PumpStatus::Eof);
    ASSERT_EQ(got.size(), payloads.size());
    for (std::size_t i = 0; i < payloads.size(); ++i) {
        EXPECT_EQ(got[i].type, shard::FrameType::ServeCell);
        EXPECT_EQ(got[i].payload, payloads[i]);
    }
    EXPECT_GT(chaosCounters().shortReads, 0u);
}

TEST_F(IoChaos, ResetSurfacesAsConnectionDeathNotACrash)
{
    ChaosConfig cfg;
    cfg.enabled = true;
    cfg.seed = 3;
    cfg.reset = 1.0;
    chaosConfigure(cfg);

    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    const std::vector<std::uint8_t> payload = patternBuffer(64);
    EXPECT_FALSE(writeAll(fds[1], payload.data(), payload.size()));

    shard::FrameParser parser;
    EXPECT_EQ(shard::pumpFrames(fds[0], parser,
                                [](const shard::Frame &) {
                                    return true;
                                }),
              shard::PumpStatus::Error);
    EXPECT_GE(chaosCounters().resets, 2u);
    ::close(fds[0]);
    ::close(fds[1]);
}

TEST_F(IoChaos, DisabledShimIsARawPassThrough)
{
    EXPECT_FALSE(chaosEnabled());
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    const std::vector<std::uint8_t> payload = patternBuffer(1 << 12);
    ASSERT_TRUE(writeAll(fds[1], payload.data(), payload.size()));
    EXPECT_TRUE(chaosDiskWriteAllowed());
    // No op indices are consumed when the shim is off.
    EXPECT_EQ(chaosCounters().ops, 0u);
    ::close(fds[0]);
    ::close(fds[1]);
}

#endif // __unix__

// ===================================================================
// Disk tier under chaos: ENOSPC rejection and crash-debris hygiene
// ===================================================================

class DiskChaos : public IoChaos
{
  protected:
    void SetUp() override
    {
        IoChaos::SetUp();
        static int counter = 0;
        // A unique root per test: the constructor's orphan auto-sweep
        // runs once per (process, directory).
        dir = std::filesystem::path(::testing::TempDir()) /
              ("tg-chaos-disk-" + std::to_string(++counter));
        std::filesystem::remove_all(dir);
        stats = std::make_unique<cache::ArtifactStore>();
    }
    void TearDown() override
    {
        std::filesystem::remove_all(dir);
        IoChaos::TearDown();
    }

    static cache::Fingerprint keyOf(std::uint64_t i)
    {
        return cache::Hasher{}.str("chaos-key").u64(i).digest();
    }

    std::filesystem::path dir;
    std::unique_ptr<cache::ArtifactStore> stats;
};

TEST_F(DiskChaos, EnospcFailsSaveThenRecoversWhenSpaceReturns)
{
    cache::DiskTier tier(dir.string(), stats.get());
    const cache::Fingerprint key = keyOf(1);
    const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};

    ChaosConfig cfg;
    cfg.enabled = true;
    cfg.seed = 9;
    cfg.enospc = 1.0;
    chaosConfigure(cfg);

    EXPECT_FALSE(
        tier.save(cache::ArtifactKind::RunResult, key, payload, "p"));
    EXPECT_FALSE(std::filesystem::exists(
        tier.pathFor(cache::ArtifactKind::RunResult, key)));
    EXPECT_GE(chaosCounters().enospcs, 1u);

    // The full-disk episode ends; the same save now lands and reads
    // back intact — the cache stayed best-effort throughout.
    chaosConfigure(ChaosConfig{});
    ASSERT_TRUE(
        tier.save(cache::ArtifactKind::RunResult, key, payload, "p"));
    std::vector<std::uint8_t> back;
    ASSERT_TRUE(
        tier.load(cache::ArtifactKind::RunResult, key, back));
    EXPECT_EQ(back, payload);
}

TEST_F(DiskChaos, OrphanTempFilesAreSweptAgedGatedAndCounted)
{
    namespace fs = std::filesystem;
    fs::create_directories(dir);
    const fs::path aged = dir / "runresult-feed.tmp-0123456789abcdef";
    const fs::path young = dir / "runresult-beef.tmp-fedcba9876543210";
    const fs::path keeper = dir / "runresult-cafe0123.tgc";
    for (const fs::path &p : {aged, young, keeper})
        std::ofstream(p) << "debris";
    // Age one orphan (and the published file) past the safety margin.
    const auto old_time =
        fs::file_time_type::clock::now() - std::chrono::hours(2);
    fs::last_write_time(aged, old_time);
    fs::last_write_time(keeper, old_time);

    // Opening the tier auto-sweeps: the aged orphan goes, the young
    // one (a concurrent writer's live temp file) and the published
    // artifact stay.
    cache::DiskTier tier(dir.string(), stats.get());
    EXPECT_FALSE(fs::exists(aged));
    EXPECT_TRUE(fs::exists(young));
    EXPECT_TRUE(fs::exists(keeper));
    EXPECT_EQ(stats->stats().diskTmpSwept, 1u);

    // An explicit zero-age sweep reclaims the young orphan too.
    EXPECT_EQ(tier.sweepOrphans(std::chrono::seconds(0)), 1u);
    EXPECT_FALSE(fs::exists(young));
    EXPECT_TRUE(fs::exists(keeper));
    EXPECT_EQ(stats->stats().diskTmpSwept, 2u);
}

} // namespace
} // namespace io
} // namespace tg
