/** @file Unit and property tests for the compact thermal model. */

#include <cmath>

#include <gtest/gtest.h>

#include "common/matrix.hh"
#include "floorplan/power8.hh"
#include "thermal/model.hh"

namespace tg {
namespace thermal {
namespace {

class ThermalTest : public ::testing::Test
{
  protected:
    ThermalTest() : chip(floorplan::buildMiniChip(2)), model(chip, {})
    {
    }

    std::vector<Watts>
    uniformBlockPower(Watts per_block) const
    {
        return std::vector<Watts>(chip.plan.blocks().size(),
                                  per_block);
    }

    std::vector<Watts>
    noVrLoss() const
    {
        return std::vector<Watts>(chip.plan.vrs().size(), 0.0);
    }

    floorplan::Chip chip;
    ThermalModel model;
};

TEST_F(ThermalTest, ZeroPowerSettlesAtAmbient)
{
    auto p = model.powerVector(uniformBlockPower(0.0), noVrLoss());
    auto temps = model.steadyState(p);
    for (double t : temps)
        EXPECT_NEAR(t, model.params().ambient, 1e-6);
}

TEST_F(ThermalTest, SteadyStateEnergyBalance)
{
    // In steady state every injected watt must leave through the
    // package: sum over nodes of G_amb * (T - T_amb) equals the
    // injected power. Verified indirectly: the area-weighted mean
    // rise equals P * R_total within the spreading tolerance.
    Watts per_block = 2.0;
    auto p = model.powerVector(uniformBlockPower(per_block),
                               noVrLoss());
    Watts total = 0.0;
    for (double v : p)
        total += v;
    auto temps = model.steadyState(p);
    double mean = 0.0;
    std::size_t n_die = static_cast<std::size_t>(
        model.params().gridW * model.params().gridH);
    for (std::size_t i = 0; i < n_die; ++i)
        mean += temps[i];
    mean /= static_cast<double>(n_die);

    double rise = mean - model.params().ambient;
    // R_total is bounded below by the convection resistance and
    // above by convection + the one-dimensional TIM/die stack over
    // the die area (lateral spreading only reduces it).
    double die_area = mm2ToM2(chip.plan.area());
    double r_stack =
        model.params().timThickness /
            (model.params().kTim * die_area) +
        model.params().dieThickness /
            (2.0 * model.params().kSilicon * die_area);
    // Heat entering the spreader under the (smaller) die must also
    // spread laterally through the copper before it can leave, which
    // adds a bounded constriction resistance.
    double r_spread_cu = 0.12;
    EXPECT_GT(rise, total * model.params().rConvection * 0.8);
    EXPECT_LT(rise, total * (model.params().rConvection + r_stack +
                             r_spread_cu) *
                        1.1);
}

TEST_F(ThermalTest, TransientConvergesToSteadyState)
{
    auto p = model.powerVector(uniformBlockPower(1.5), noVrLoss());
    auto steady = model.steadyState(p);
    auto temps = model.uniformState(model.params().ambient);
    for (int i = 0; i < 200000; ++i)
        model.advance(temps, p);
    for (std::size_t n = 0; n < temps.size(); ++n)
        EXPECT_NEAR(temps[n], steady[n], 0.05) << "node " << n;
}

TEST_F(ThermalTest, TransientIsMonotoneForStepInput)
{
    auto p = model.powerVector(uniformBlockPower(2.0), noVrLoss());
    auto temps = model.uniformState(model.params().ambient);
    double prev = model.maxDieTemp(temps);
    for (int i = 0; i < 50; ++i) {
        model.advance(temps, p);
        double now = model.maxDieTemp(temps);
        EXPECT_GE(now + 1e-9, prev);
        prev = now;
    }
}

TEST_F(ThermalTest, HotterBlockMakesHotterCells)
{
    auto bp = uniformBlockPower(0.5);
    int exu = chip.plan.blockIndex("core0.exu");
    bp[static_cast<std::size_t>(exu)] = 8.0;
    auto temps =
        model.steadyState(model.powerVector(bp, noVrLoss()));
    auto block_t = model.blockTemps(temps);
    int l3 = chip.plan.blockIndex("l3b1");
    EXPECT_GT(block_t[static_cast<std::size_t>(exu)],
              block_t[static_cast<std::size_t>(l3)] + 1.0);
}

TEST_F(ThermalTest, LoadedVrRunsHotterThanHost)
{
    auto vr_loss = noVrLoss();
    vr_loss[4] = 0.19;  // one loaded regulator
    auto temps = model.steadyState(
        model.powerVector(uniformBlockPower(1.0), vr_loss));
    const auto &vr = chip.plan.vrs()[4];
    double host_t = model.blockTemp(temps, vr.hostBlock);
    double vr_t = model.vrTemp(temps, 4);
    // The rise over the *block mean* combines the coupling
    // resistance with the host cell's own local heating, so it
    // exceeds R_vr * P but stays the same order of magnitude.
    double expected_rise =
        0.19 * model.params().vrCouplingResistance;
    EXPECT_GT(vr_t, host_t + 0.6 * expected_rise);
    EXPECT_LT(vr_t, host_t + 3.0 * expected_rise);
}

TEST_F(ThermalTest, UnloadedVrTracksHostCell)
{
    auto temps = model.steadyState(
        model.powerVector(uniformBlockPower(1.5), noVrLoss()));
    const auto &vr = chip.plan.vrs()[0];
    EXPECT_NEAR(model.vrTemp(temps, 0),
                model.blockTemp(temps, vr.hostBlock), 1.5);
}

TEST_F(ThermalTest, GradientAndMaxConsistent)
{
    auto bp = uniformBlockPower(0.2);
    bp[static_cast<std::size_t>(chip.plan.blockIndex("core1.exu"))] =
        6.0;
    auto temps =
        model.steadyState(model.powerVector(bp, noVrLoss()));
    double tmax = model.maxDieTemp(temps);
    double grad = model.gradient(temps);
    EXPECT_GT(grad, 0.0);
    EXPECT_LE(grad, tmax - model.params().ambient + 1e-9);
}

TEST_F(ThermalTest, PowerVectorConservesInput)
{
    auto bp = uniformBlockPower(1.0);
    auto vl = noVrLoss();
    vl[2] = 0.5;
    auto p = model.powerVector(bp, vl);
    double total_in = 0.0;
    for (double v : bp)
        total_in += v;
    total_in += 0.5;
    double total_out = 0.0;
    for (double v : p)
        total_out += v;
    EXPECT_NEAR(total_out, total_in, 1e-9);
}

TEST_F(ThermalTest, DieGridHasExpectedShape)
{
    auto temps = model.uniformState(50.0);
    auto grid = model.dieGrid(temps);
    EXPECT_EQ(grid.size(),
              static_cast<std::size_t>(model.params().gridW *
                                       model.params().gridH));
}

TEST_F(ThermalTest, HottestLocatesInjectedHotspot)
{
    auto bp = uniformBlockPower(0.1);
    int exu = chip.plan.blockIndex("core1.exu");
    bp[static_cast<std::size_t>(exu)] = 10.0;
    auto temps =
        model.steadyState(model.powerVector(bp, noVrLoss()));
    auto hs = model.hottest(temps);
    ASSERT_FALSE(hs.isVr);
    auto [cx, cy] = model.cellCentre(hs.row, hs.col);
    EXPECT_EQ(chip.plan.blockAt(cx, cy), exu);
}

TEST_F(ThermalTest, HottestFindsLoadedVr)
{
    auto vl = noVrLoss();
    vl[7] = 0.6;  // strongly loaded VR dominates a mild background
    auto temps = model.steadyState(
        model.powerVector(uniformBlockPower(0.3), vl));
    auto hs = model.hottest(temps);
    EXPECT_TRUE(hs.isVr);
    EXPECT_EQ(hs.vr, 7);
}

TEST_F(ThermalTest, DeathOnWrongSizes)
{
    std::vector<Watts> bad_blocks(3, 1.0);
    EXPECT_DEATH(model.powerVector(bad_blocks, noVrLoss()),
                 "size mismatch");
    auto temps = model.uniformState(50.0);
    std::vector<Watts> bad_p(5, 0.0);
    EXPECT_DEATH(model.advance(temps, bad_p), "size mismatch");
}

/** Discretisation robustness: the steady Tmax of a fixed scenario
 *  moves only slightly across grid resolutions. */
class GridResolution : public ::testing::TestWithParam<int>
{
};

TEST_P(GridResolution, SteadyTmaxStableAcrossGrids)
{
    auto chip = floorplan::buildMiniChip(2);
    ThermalParams params;
    params.gridW = GetParam();
    params.gridH = GetParam();
    ThermalModel m(chip, params);

    std::vector<Watts> bp(chip.plan.blocks().size(), 1.2);
    std::vector<Watts> vl(chip.plan.vrs().size(), 0.1);
    auto temps = m.steadyState(m.powerVector(bp, vl));
    double tmax = m.maxDieTemp(temps);

    // Reference at the default 28x28 resolution.
    ThermalModel ref(chip, {});
    auto ref_temps =
        ref.steadyState(ref.powerVector(bp, vl));
    EXPECT_NEAR(tmax, ref.maxDieTemp(ref_temps), 2.0);
}

INSTANTIATE_TEST_SUITE_P(Grids, GridResolution,
                         ::testing::Values(16, 20, 24, 32));

// ---- Sparse-vs-dense equivalence ----------------------------------------
// The production solver is the sparse envelope LDL^T; these tests
// rebuild the dense systems from the model's assembled matrices and
// check the two paths never diverge past solver round-off.

TEST_F(ThermalTest, SparseSteadyMatchesDenseReference)
{
    auto p = model.powerVector(uniformBlockPower(1.5), noVrLoss());
    auto sparse = model.steadyState(p);

    Matrix g = model.conductance().toDense();
    LuSolver dense(g);
    std::vector<double> rhs(model.nodeCount());
    const auto &amb = model.ambientInjection();
    for (std::size_t n = 0; n < rhs.size(); ++n)
        rhs[n] = p[n] + amb[n];
    auto ref = dense.solve(rhs);

    for (std::size_t n = 0; n < ref.size(); ++n)
        EXPECT_NEAR(sparse[n], ref[n], 1e-9) << "node " << n;
}

TEST_F(ThermalTest, SparseTransientMatchesDenseReference)
{
    std::size_t n = model.nodeCount();
    double dt = model.step();
    const auto &cap = model.heatCapacities();
    const auto &amb = model.ambientInjection();

    Matrix a = model.conductance().toDense();
    for (std::size_t i = 0; i < n; ++i)
        a(i, i) += cap[i] / dt;
    LuSolver dense(a);

    auto temps = model.uniformState(model.params().ambient);
    std::vector<Celsius> ref(temps);
    std::vector<double> rhs(n);
    for (int step = 0; step < 50; ++step) {
        // Power ramps over the window so every step solves a fresh
        // system, not a settled fixed point.
        auto p = model.powerVector(
            uniformBlockPower(0.5 + 0.05 * step), noVrLoss());
        model.advance(temps, p);
        for (std::size_t i = 0; i < n; ++i)
            rhs[i] = cap[i] / dt * ref[i] + p[i] + amb[i];
        dense.solveInPlace(rhs);
        ref = rhs;
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_NEAR(temps[i], ref[i], 1e-9)
                << "step " << step << " node " << i;
    }
}

} // namespace
} // namespace thermal
} // namespace tg
