/**
 * @file
 * Robustness tests of the sweep server: deadline expiry, client
 * cancellation (explicit ServeCancel and mid-sweep disconnect),
 * queue-bound admission control, and a chaos-storm leg — every
 * scenario must leave the daemon serviceable, proven by a ping plus
 * a fresh sweep that is bit-identical to a direct in-process run.
 *
 * Like test_serve_run.cc this suite races the server's real thread
 * structure over a real Unix-domain socket and runs under TSan in CI
 * (the Serve prefix is part of the TSan job's regex).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#ifdef __unix__
#include <unistd.h>
#endif

#include "cache/serialize.hh"
#include "common/io.hh"
#include "serve/client.hh"
#include "serve/server.hh"
#include "shard/protocol.hh"
#include "shard/worker.hh"
#include "sim/sweep.hh"
#include "workload/profile.hh"

namespace tg {
namespace serve {
namespace {

/** The fast mini-chip config every serve test sweeps. */
sim::SimConfig testConfig()
{
    sim::SimConfig cfg;
    cfg.noiseSamples = 4;
    cfg.profilingEpochs = 8;
    return cfg;
}

const std::vector<std::string> kBenchmarks = {"rayt", "fft",
                                              "lu_ncb", "water_s"};
const std::vector<core::PolicyKind> kPolicies = {
    core::PolicyKind::AllOn, core::PolicyKind::OracT};

std::vector<std::uint8_t> testSetup()
{
    return shard::encodeBasicSetup(shard::ChipKind::Mini, 1,
                                   testConfig());
}

SweepMsg testSweepRequest(int jobs)
{
    SweepMsg m;
    m.setup = testSetup();
    m.benchmarks = kBenchmarks;
    for (auto pk : kPolicies)
        m.policies.push_back(static_cast<std::uint32_t>(pk));
    m.jobs = static_cast<std::uint32_t>(jobs);
    return m;
}

/** Byte-level equality via the bit-exact RunResult codec. */
void expectBitIdentical(const sim::SweepResult &a,
                        const sim::SweepResult &b)
{
    ASSERT_EQ(a.benchmarks, b.benchmarks);
    ASSERT_EQ(a.policies, b.policies);
    for (std::size_t i = 0; i < a.benchmarks.size(); ++i)
        for (std::size_t j = 0; j < a.policies.size(); ++j)
            EXPECT_EQ(cache::encodeRunResult(a.results[i][j]),
                      cache::encodeRunResult(b.results[i][j]))
                << a.benchmarks[i] << " / "
                << core::policyName(a.policies[j]);
}

class ServeRobust : public ::testing::Test
{
  protected:
    void SetUp() override
    {
#ifndef __unix__
        GTEST_SKIP() << "the sweep server requires a POSIX host";
#endif
    }

    void TearDown() override
    {
        io::chaosConfigure(io::ChaosConfig{});
        if (server) {
            server->requestStop();
            server->wait();
        }
    }

    /** Boot a server with the scenario's options. */
    void boot(ServerOptions options)
    {
        options.socketPath = "/tmp/tg_serve_robust." +
                             std::to_string(::getpid()) + ".sock";
        if (options.jobs == 0)
            options.jobs = 2;
        server = std::make_unique<Server>(options);
        std::string err;
        ASSERT_TRUE(server->start(&err)) << err;
    }

    /** The single-process reference grid, computed once per suite. */
    static const sim::SweepResult &reference()
    {
        static sim::SweepResult ref = [] {
            floorplan::Chip chip = floorplan::buildMiniChip(1);
            sim::Simulation simulation(chip, testConfig());
            return sim::runSweep(simulation, kBenchmarks, kPolicies,
                                 false, 1);
        }();
        return ref;
    }

    /** The daemon still works: Pong plus a verified fresh sweep. */
    void expectServiceable()
    {
        Client client;
        std::string err;
        ASSERT_TRUE(client.connect(server->socketPath(), &err)) << err;
        EXPECT_TRUE(client.ping(&err)) << err;
        sim::SweepResult out;
        ASSERT_TRUE(client.sweep(testSweepRequest(2), out, &err))
            << err;
        expectBitIdentical(reference(), out);
    }

    /** Poll the server's counters until `done` says stop (bounded). */
    template <typename Pred> bool waitFor(Pred done)
    {
        for (int i = 0; i < 2000; ++i) {
            if (done(server->statsSnapshot()))
                return true;
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
        return false;
    }

    std::unique_ptr<Server> server;
};

TEST_F(ServeRobust, ExpiredDeadlineAbortsTheSweepMidFlight)
{
    boot(ServerOptions{});

    // A 1 ms budget (armed at admission) is gone before the first
    // cell finishes: the executor's next cancellation point unwinds
    // the request into a DeadlineExpired completion.
    Client client;
    std::string err;
    ASSERT_TRUE(client.connect(server->socketPath(), &err)) << err;
    SweepMsg req = testSweepRequest(2);
    req.deadlineMs = 1;
    sim::SweepResult out;
    DoneMsg done;
    ASSERT_FALSE(client.sweep(req, out, &err, &done));
    EXPECT_EQ(static_cast<DoneStatus>(done.status),
              DoneStatus::DeadlineExpired)
        << err;
    EXPECT_EQ(done.ok, 0u);

    // The slot was freed and nothing partial was published: a fresh
    // full-budget sweep still matches the direct computation.
    expectServiceable();
    const StatsReplyMsg stats = server->statsSnapshot();
    EXPECT_EQ(stats.requestsDeadline, 1u);
    EXPECT_EQ(stats.activeRequests, 0u);
}

TEST_F(ServeRobust, MidSweepDisconnectCancelsAndFreesTheExecutor)
{
    boot(ServerOptions{});

    // Submit a sweep over a raw socket, confirm it is executing, then
    // vanish: the poll thread trips the request's token, the executor
    // unwinds at the next cell boundary and the context returns to
    // the LRU.
    const int doomed = io::connectUnix(server->socketPath());
    ASSERT_GE(doomed, 0);
    ASSERT_TRUE(shard::writeFrameToFd(
        doomed, shard::FrameType::ServeSweep,
        encodeSweep(testSweepRequest(1))));
    ASSERT_TRUE(waitFor([](const StatsReplyMsg &s) {
        return s.activeRequests == 1;
    }));
    ::close(doomed); // hang up with the sweep in flight

    ASSERT_TRUE(waitFor([](const StatsReplyMsg &s) {
        return s.requestsCancelled == 1 && s.activeRequests == 0;
    }));
    expectServiceable();
}

TEST_F(ServeRobust, ServeCancelAbortsAnInFlightSweep)
{
    boot(ServerOptions{});

    Client client;
    std::string err;
    ASSERT_TRUE(client.connect(server->socketPath(), &err)) << err;

    sim::SweepResult out;
    DoneMsg done;
    std::string sweepErr;
    std::atomic<bool> accepted{false};
    std::thread sweeper([&] {
        accepted.store(client.sweep(testSweepRequest(1), out,
                                    &sweepErr, &done));
    });
    ASSERT_TRUE(waitFor([](const StatsReplyMsg &s) {
        return s.activeRequests == 1;
    }));
    ASSERT_TRUE(client.cancel(&err)) << err;
    sweeper.join();

    // The cancel raced the sweep's tail: almost always it lands
    // mid-flight and the sweep fails Cancelled; if the sweep already
    // finished, its success is the correct outcome and the cancel was
    // a silent no-op.
    if (!accepted.load()) {
        EXPECT_EQ(static_cast<DoneStatus>(done.status),
                  DoneStatus::Cancelled)
            << sweepErr;
        EXPECT_EQ(server->statsSnapshot().requestsCancelled, 1u);
    }
    expectServiceable();
}

TEST_F(ServeRobust, CancellingQueuedRequestsNeverRunsThem)
{
    ServerOptions options;
    options.jobs = 1;
    boot(options);

    // Occupy the executor (raw socket, reply never drained) so the
    // victim stays queued.
    const int blocker = io::connectUnix(server->socketPath());
    ASSERT_GE(blocker, 0);
    ASSERT_TRUE(shard::writeFrameToFd(
        blocker, shard::FrameType::ServeSweep,
        encodeSweep(testSweepRequest(1))));
    std::string err;
    ASSERT_TRUE(waitFor([](const StatsReplyMsg &s) {
        return s.activeRequests == 1;
    }));

    Client victim;
    ASSERT_TRUE(victim.connect(server->socketPath(), &err)) << err;
    sim::SweepResult out;
    DoneMsg done;
    std::string sweepErr;
    std::thread sweeper([&] {
        victim.sweep(testSweepRequest(1), out, &sweepErr, &done);
    });
    ASSERT_TRUE(waitFor([](const StatsReplyMsg &s) {
        return s.queueDepth == 1;
    }));

    // Cancelling a *queued* request is answered straight from the
    // poll thread: it never reaches the executor.
    ASSERT_TRUE(victim.cancel(&err)) << err;
    sweeper.join();
    EXPECT_EQ(static_cast<DoneStatus>(done.status),
              DoneStatus::Cancelled)
        << sweepErr;

    // The blocker's sweep is undisturbed by its neighbour's death:
    // wait for it to finish server-side, then prove serviceability.
    ASSERT_TRUE(waitFor([](const StatsReplyMsg &s) {
        return s.activeRequests == 0 && s.queueDepth == 0;
    }));
    ::close(blocker);
    expectServiceable();
    EXPECT_GE(server->statsSnapshot().requestsCancelled, 1u);
}

TEST_F(ServeRobust, QueueBoundOverloadGetsBusyRepliesNotDeaths)
{
    ServerOptions options;
    options.jobs = 1;
    options.maxQueueDepth = 1;
    options.busyRetryMs = 125;
    boot(options);

    // A executes, B waits in the single queue slot...
    Client a, b;
    std::string err;
    ASSERT_TRUE(a.connect(server->socketPath(), &err)) << err;
    ASSERT_TRUE(b.connect(server->socketPath(), &err)) << err;

    sim::SweepResult gridA, gridB;
    std::string errA, errB;
    std::thread ta([&] {
        EXPECT_TRUE(a.sweep(testSweepRequest(1), gridA, &errA))
            << errA;
    });
    ASSERT_TRUE(waitFor([](const StatsReplyMsg &s) {
        return s.activeRequests == 1;
    }));
    std::thread tb([&] {
        EXPECT_TRUE(b.sweep(testSweepRequest(1), gridB, &errB))
            << errB;
    });
    ASSERT_TRUE(waitFor([](const StatsReplyMsg &s) {
        return s.queueDepth == 1;
    }));

    // ...so C is over the bound and bounces immediately with the
    // configured retry hint — admission control, not a hang.
    Client c;
    ASSERT_TRUE(c.connect(server->socketPath(), &err)) << err;
    sim::SweepResult gridC;
    DoneMsg done;
    std::string errC;
    EXPECT_FALSE(c.sweep(testSweepRequest(1), gridC, &errC, &done));
    EXPECT_EQ(static_cast<DoneStatus>(done.status), DoneStatus::Busy)
        << errC;
    EXPECT_EQ(done.retryAfterMs, 125u);

    // The admitted requests are untouched by the overload.
    ta.join();
    tb.join();
    expectBitIdentical(reference(), gridA);
    expectBitIdentical(reference(), gridB);
    const StatsReplyMsg stats = server->statsSnapshot();
    EXPECT_EQ(stats.requestsBusy, 1u);
    expectServiceable();
}

TEST_F(ServeRobust, ServedSweepSurvivesARecoverableChaosStorm)
{
    boot(ServerOptions{});

    // Short transfers and EINTR on every socket in the process: the
    // frame plumbing on both sides must retry its way to the same
    // bit-identical grid.
    io::ChaosConfig cfg;
    cfg.enabled = true;
    cfg.seed = 2026;
    cfg.shortRead = 0.25;
    cfg.shortWrite = 0.25;
    cfg.eintr = 0.1;
    io::chaosConfigure(cfg);

    Client client;
    std::string err;
    ASSERT_TRUE(client.connect(server->socketPath(), &err)) << err;
    sim::SweepResult out;
    ASSERT_TRUE(client.sweep(testSweepRequest(2), out, &err)) << err;

    io::chaosConfigure(io::ChaosConfig{});
    expectBitIdentical(reference(), out);
    EXPECT_GT(io::chaosCounters().shortReads +
                  io::chaosCounters().shortWrites,
              0u);
}

TEST_F(ServeRobust, ConnectWithRetryRidesOutALateBoot)
{
    // Start connecting before the server exists; boot it ~80 ms
    // later. The retry loop must land once the daemon answers pings.
    const std::string path = "/tmp/tg_serve_robust." +
                             std::to_string(::getpid()) + ".sock";
    std::thread booter([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(80));
        boot(ServerOptions{});
    });
    Client client;
    std::string err;
    const bool up = client.connectWithRetry(path, 10000, &err);
    booter.join();
    ASSERT_TRUE(up) << err;
    EXPECT_TRUE(client.ping(&err)) << err;

    // And a bounded wait against nothing gives up with an error.
    Client nobody;
    EXPECT_FALSE(nobody.connectWithRetry(
        path + ".nothing-listens-here", 30, &err));
    EXPECT_NE(err.find("not ready"), std::string::npos);
}

} // namespace
} // namespace serve
} // namespace tg
