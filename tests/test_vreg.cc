/** @file Unit and property tests for the regulator models. */

#include <gtest/gtest.h>

#include "vreg/design.hh"
#include "vreg/efficiency.hh"
#include "vreg/network.hh"

namespace tg {
namespace vreg {
namespace {

TEST(Efficiency, PeaksAtDesignPoint)
{
    EfficiencyCurve c(1.5, 0.90);
    EXPECT_NEAR(c.etaAt(1.5), 0.90, 1e-12);
    EXPECT_LT(c.etaAt(0.75), 0.90);
    EXPECT_LT(c.etaAt(3.0), 0.90);
}

TEST(Efficiency, MonotoneRiseBelowPeak)
{
    EfficiencyCurve c(1.5, 0.90);
    double prev = 0.0;
    for (double i = 0.01; i <= 1.5; i *= 1.3) {
        double eta = c.etaAt(i);
        EXPECT_GE(eta, prev) << "at I=" << i;
        prev = eta;
    }
}

TEST(Efficiency, ZeroLoadIsZeroEta)
{
    EfficiencyCurve c(1.5, 0.90);
    EXPECT_EQ(c.etaAt(0.0), 0.0);
    EXPECT_EQ(c.etaAt(-1.0), 0.0);
}

TEST(Efficiency, PlossMatchesEquationOne)
{
    // P_loss = V * I * (1/eta - 1) (paper Eqn. 1)
    EfficiencyCurve c(1.5, 0.90);
    double eta = c.etaAt(1.5);
    EXPECT_NEAR(c.plossAt(1.03, 1.5), 1.03 * 1.5 * (1.0 / eta - 1.0),
                1e-12);
    EXPECT_EQ(c.plossAt(1.03, 0.0), 0.0);
}

TEST(Efficiency, ScalesWithPeakParameters)
{
    EfficiencyCurve a(1.0, 0.90);
    EfficiencyCurve b(2.0, 0.90);
    // Same normalised shape: eta at half-load matches.
    EXPECT_NEAR(a.etaAt(0.5), b.etaAt(1.0), 1e-12);
}

TEST(Designs, FivrAndLdoMatchPaperCalibration)
{
    auto fivr = fivrDesign();
    EXPECT_NEAR(fivr.curve.peakCurrent(), 1.5, 1e-12);
    EXPECT_NEAR(fivr.curve.peakEta(), 0.90, 1e-12);
    EXPECT_NEAR(fivr.areaMm2, 0.04, 1e-12);

    auto ldo = ldoDesign();
    EXPECT_NEAR(ldo.curve.peakEta(), 0.905, 1e-12);
    // The LDO responds faster and has a less inductive output.
    EXPECT_LT(ldo.responseTime, fivr.responseTime);
    EXPECT_LT(ldo.outputInductance, fivr.outputInductance);
}

TEST(Designs, SurveyHasEightEntriesWithSanePeaks)
{
    auto survey = isscc2015Survey();
    ASSERT_EQ(survey.size(), 8u);
    for (const auto &e : survey) {
        EXPECT_FALSE(e.label.empty());
        double peak = e.curve.maxValue();
        EXPECT_GT(peak, 0.70) << e.label;
        EXPECT_LT(peak, 0.95) << e.label;
    }
}

TEST(Network, RequiredActiveBounds)
{
    RegulatorNetwork net(fivrDesign(), 9);
    EXPECT_EQ(net.requiredActive(0.0), 1);
    EXPECT_GE(net.requiredActive(0.1), 1);
    EXPECT_LE(net.requiredActive(100.0), 9);
    EXPECT_EQ(net.requiredActive(100.0), 9);  // overload: all on
}

TEST(Network, RequiredActiveIsMonotoneInDemand)
{
    RegulatorNetwork net(fivrDesign(), 9);
    int prev = 1;
    for (double i = 0.1; i <= 14.0; i += 0.1) {
        int non = net.requiredActive(i);
        EXPECT_GE(non, prev) << "at I=" << i;
        prev = non;
    }
}

TEST(Network, GatedOperatesNearPeakOverWideRange)
{
    // The effective envelope of Fig. 5: demand-driven gating keeps
    // the network within a few percent of eta_peak over 2.5..13 A.
    RegulatorNetwork net(fivrDesign(), 9);
    for (double i = 2.5; i <= 13.0; i += 0.25) {
        auto op = net.evaluateGated(i);
        EXPECT_GT(op.eta, 0.865) << "at I=" << i;
        EXPECT_LE(op.eta, 0.90 + 1e-9);
    }
}

TEST(Network, GatingBeatsAllOnAtLightLoad)
{
    RegulatorNetwork net(fivrDesign(), 9);
    for (double i : {1.0, 2.0, 4.0, 6.0}) {
        auto gated = net.evaluateGated(i);
        auto all_on = net.evaluate(i, 9);
        EXPECT_GE(gated.eta, all_on.eta) << "at I=" << i;
        EXPECT_LE(gated.plossTotal, all_on.plossTotal + 1e-12);
    }
}

TEST(Network, EqualCurrentSharing)
{
    RegulatorNetwork net(fivrDesign(), 9);
    auto op = net.evaluate(6.0, 4);
    EXPECT_EQ(op.active, 4);
    EXPECT_NEAR(op.perVr, 1.5, 1e-12);
    EXPECT_FALSE(op.overloaded);
}

TEST(Network, OverloadFlagged)
{
    RegulatorNetwork net(fivrDesign(), 9);
    auto op = net.evaluate(30.0, 9);
    EXPECT_TRUE(op.overloaded);
}

TEST(Network, ZeroDemandIdlesAtPeakEta)
{
    RegulatorNetwork net(fivrDesign(), 9);
    auto op = net.evaluate(0.0, 3);
    EXPECT_EQ(op.plossTotal, 0.0);
    EXPECT_NEAR(op.eta, 0.90, 1e-12);
}

TEST(Network, PlossScalesWithVout)
{
    RegulatorNetwork net(fivrDesign(), 9);
    net.setVout(1.0);
    auto a = net.evaluate(6.0, 4);
    net.setVout(2.0);
    auto b = net.evaluate(6.0, 4);
    EXPECT_NEAR(b.plossTotal, 2.0 * a.plossTotal, 1e-12);
}

TEST(NetworkDeath, InvalidConfigurationsRejected)
{
    EXPECT_EXIT(RegulatorNetwork(fivrDesign(), 0),
                ::testing::ExitedWithCode(1), "at least one");
    RegulatorNetwork net(fivrDesign(), 4);
    EXPECT_DEATH(net.evaluate(1.0, 0), "active count");
    EXPECT_DEATH(net.evaluate(1.0, 5), "active count");
}

/** Envelope property across network sizes: gating never loses to a
 *  fixed active count. */
class NetworkSize : public ::testing::TestWithParam<int>
{
};

TEST_P(NetworkSize, GatedEtaDominatesEveryFixedCount)
{
    int n = GetParam();
    RegulatorNetwork net(fivrDesign(), n);
    for (double frac = 0.1; frac <= 1.0; frac += 0.1) {
        double demand = frac * net.maxCurrent() * 0.75;
        auto gated = net.evaluateGated(demand);
        for (int k = 1; k <= n; ++k) {
            auto fixed = net.evaluate(demand, k);
            if (!fixed.overloaded) {
                EXPECT_GE(gated.eta + 1e-12, fixed.eta)
                    << "n=" << n << " demand=" << demand
                    << " k=" << k;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, NetworkSize,
                         ::testing::Values(1, 2, 3, 6, 9, 16));

} // namespace
} // namespace vreg
} // namespace tg
