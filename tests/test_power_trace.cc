/**
 * @file
 * Tests of the precomputed dynamic-power trace: every stored frame
 * row and per-epoch reduction must reproduce the on-the-fly values
 * the run loop historically computed, including the partial final
 * epoch, so swapping evaluation for trace reads is bit-identical.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "floorplan/power8.hh"
#include "power/model.hh"
#include "power/trace.hh"
#include "uarch/core_model.hh"
#include "workload/demand.hh"
#include "workload/profile.hh"

namespace tg {
namespace power {
namespace {

class PowerTraceTest : public ::testing::Test
{
  protected:
    PowerTraceTest() : chip(floorplan::buildMiniChip(2)), pm(chip)
    {
        std::vector<const workload::BenchmarkProfile *> per_core(
            static_cast<std::size_t>(chip.params.cores),
            &workload::profileByName("fft"));
        per_core.back() = &workload::profileByName("radix");
        auto demand = workload::generateMixedDemandTrace(
            per_core, 0x9e11u, 100e-6);
        activity = uarch::buildActivityTrace(chip, per_core, demand);
    }

    /** A frames-per-epoch that leaves the last epoch partial. */
    int partialFpe() const
    {
        std::size_t n = activity.frames.size();
        for (int fpe = 7; fpe < static_cast<int>(n); ++fpe)
            if (n % static_cast<std::size_t>(fpe) != 0)
                return fpe;
        return static_cast<int>(n) + 1;
    }

    floorplan::Chip chip;
    PowerModel pm;
    uarch::ActivityTrace activity;
};

TEST_F(PowerTraceTest, FrameRowsMatchDynamicFrameExactly)
{
    int fpe = partialFpe();
    PowerTrace trace(pm, activity, fpe);
    ASSERT_EQ(trace.frames(), activity.frames.size());
    ASSERT_EQ(trace.blocks(), chip.plan.blocks().size());

    for (std::size_t f = 0; f < trace.frames(); ++f) {
        auto ref = pm.dynamicFrame(activity.frames[f]);
        const Watts *row = trace.frame(f);
        for (std::size_t b = 0; b < trace.blocks(); ++b) {
            ASSERT_EQ(row[b], ref[b])
                << "frame " << f << " block " << b;
            ASSERT_NEAR(row[b], ref[b], 1e-12);
        }
    }
}

TEST_F(PowerTraceTest, EpochReductionsMatchReferenceFold)
{
    // Reference: the run loop's historical per-epoch fold — sum and
    // running peak in frame order, then 0.5 * (mean + peak) — which
    // the trace's build-time reduction must reproduce bit for bit,
    // including over the trailing partial epoch.
    int fpe = partialFpe();
    PowerTrace trace(pm, activity, fpe);
    std::size_t n_frames = activity.frames.size();
    ASSERT_NE(n_frames % static_cast<std::size_t>(fpe), 0u)
        << "fixture must exercise a partial last epoch";
    ASSERT_EQ(trace.epochs(),
              (static_cast<long>(n_frames) + fpe - 1) / fpe);

    for (long e = 0; e < trace.epochs(); ++e) {
        std::vector<Watts> mean(trace.blocks(), 0.0);
        std::vector<Watts> peak(trace.blocks(), 0.0);
        std::size_t f0 = static_cast<std::size_t>(e) *
                         static_cast<std::size_t>(fpe);
        std::size_t f1 =
            std::min(n_frames, f0 + static_cast<std::size_t>(fpe));
        for (std::size_t f = f0; f < f1; ++f) {
            auto dyn = pm.dynamicFrame(activity.frames[f]);
            for (std::size_t b = 0; b < mean.size(); ++b) {
                mean[b] += dyn[b];
                peak[b] = std::max(peak[b], dyn[b]);
            }
        }
        double inv = 1.0 / static_cast<double>(f1 - f0);
        for (std::size_t b = 0; b < trace.blocks(); ++b) {
            ASSERT_EQ(trace.epochDynamic(e)[b],
                      0.5 * (mean[b] * inv + peak[b]))
                << "epoch " << e << " block " << b;
            ASSERT_EQ(trace.epochMean(e)[b], mean[b] * inv);
            ASSERT_EQ(trace.epochPeak(e)[b], peak[b]);
        }
    }
}

TEST_F(PowerTraceTest, RebuildReusesBuffersAndMatchesFresh)
{
    PowerTrace trace(pm, activity, partialFpe());
    // Rebuilding with a different epoch length must fully refresh the
    // reductions (no stale accumulator state from the first build).
    trace.rebuild(pm, activity, 3);
    PowerTrace fresh(pm, activity, 3);
    ASSERT_EQ(trace.epochs(), fresh.epochs());
    for (long e = 0; e < trace.epochs(); ++e)
        for (std::size_t b = 0; b < trace.blocks(); ++b) {
            ASSERT_EQ(trace.epochDynamic(e)[b],
                      fresh.epochDynamic(e)[b]);
            ASSERT_EQ(trace.epochMean(e)[b], fresh.epochMean(e)[b]);
            ASSERT_EQ(trace.epochPeak(e)[b], fresh.epochPeak(e)[b]);
        }
}

} // namespace
} // namespace power
} // namespace tg
