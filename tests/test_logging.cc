/** @file Unit tests for the logging/error helpers. */

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace tg {
namespace {

TEST(Logging, ConcatFormatsMixedArguments)
{
    EXPECT_EQ(detail::concat("x=", 3, ", y=", 2.5), "x=3, y=2.5");
    EXPECT_EQ(detail::concat("plain"), "plain");
    EXPECT_EQ(detail::concat(1, 2, 3), "123");
}

TEST(Logging, WarnAndInformDoNotTerminate)
{
    warn("test warning ", 42);
    inform("test info ", 43);
    SUCCEED();
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(panic("boom ", 1), "boom 1");
}

TEST(LoggingDeath, FatalExitsWithError)
{
    EXPECT_EXIT(fatal("bad config"),
                ::testing::ExitedWithCode(1), "bad config");
}

TEST(LoggingDeath, AssertFiresWithLocation)
{
    EXPECT_DEATH(TG_ASSERT(1 == 2, "math broke"), "math broke");
}

TEST(Logging, AssertPassesSilently)
{
    TG_ASSERT(1 + 1 == 2, "never shown");
    SUCCEED();
}

} // namespace
} // namespace tg
