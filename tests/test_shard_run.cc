/**
 * @file
 * End-to-end tests of the sharded multi-process sweep: the merged
 * grid must be bit-identical to a single-process runSweep() at every
 * worker count and shard sizing, including when a worker is killed
 * mid-shard and its cells are reassigned.
 *
 * This suite has a custom main(): the coordinator re-execs *this*
 * binary as its workers, so main() must route --tg-worker invocations
 * into workerMain() before gtest sees argv.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "shard/coordinator.hh"
#include "shard/worker.hh"
#include "sim/sweep.hh"

namespace tg {
namespace shard {
namespace {

/** The fast mini-chip config shared by coordinator and workers. */
sim::SimConfig
testConfig()
{
    sim::SimConfig cfg;
    cfg.noiseSamples = 4;
    cfg.profilingEpochs = 8;
    return cfg;
}

/** Exact equality of every metric two sweeps share. */
void
expectIdentical(const sim::SweepResult &a, const sim::SweepResult &b)
{
    ASSERT_EQ(a.benchmarks, b.benchmarks);
    ASSERT_EQ(a.policies, b.policies);
    for (const auto &bench : a.benchmarks) {
        for (auto kind : a.policies) {
            const auto &ra = a.at(bench, kind);
            const auto &rb = b.at(bench, kind);
            EXPECT_EQ(ra.benchmark, rb.benchmark);
            EXPECT_EQ(ra.policy, rb.policy);
            EXPECT_EQ(ra.maxTmax, rb.maxTmax) << bench;
            EXPECT_EQ(ra.maxGradient, rb.maxGradient) << bench;
            EXPECT_EQ(ra.maxNoiseFrac, rb.maxNoiseFrac) << bench;
            EXPECT_EQ(ra.emergencyFrac, rb.emergencyFrac) << bench;
            EXPECT_EQ(ra.avgRegulatorLoss, rb.avgRegulatorLoss);
            EXPECT_EQ(ra.avgEta, rb.avgEta) << bench;
            EXPECT_EQ(ra.avgActiveVrs, rb.avgActiveVrs) << bench;
            EXPECT_EQ(ra.meanPower, rb.meanPower) << bench;
            EXPECT_EQ(ra.overrideCount, rb.overrideCount) << bench;
            EXPECT_EQ(ra.hottestSpot, rb.hottestSpot) << bench;
            EXPECT_EQ(ra.vrActivity, rb.vrActivity) << bench;
            EXPECT_EQ(ra.vrAging, rb.vrAging) << bench;
            EXPECT_EQ(ra.agingImbalance, rb.agingImbalance) << bench;
        }
    }
}

class ShardDeterminism : public ::testing::Test
{
  protected:
    ShardDeterminism()
        : benchmarks({"rayt", "fft", "lu_ncb", "water_s"}),
          policies({core::PolicyKind::AllOn, core::PolicyKind::OracT})
    {
    }

    /** The single-process reference grid, computed once per suite. */
    const sim::SweepResult &
    reference()
    {
        static sim::SweepResult ref = [this] {
            floorplan::Chip chip = floorplan::buildMiniChip(1);
            sim::Simulation simulation(chip, testConfig());
            return sim::runSweep(simulation, benchmarks, policies,
                                 false, 1);
        }();
        return ref;
    }

    ShardedSweepOptions
    options(int processes)
    {
        ShardedSweepOptions sopt;
        sopt.benchmarks = benchmarks;
        sopt.policies = policies;
        sopt.processes = processes;
        sopt.jobsPerWorker = 1;
        sopt.setup = encodeBasicSetup(ChipKind::Mini, 1, testConfig());
        return sopt;
    }

    std::vector<std::string> benchmarks;
    std::vector<core::PolicyKind> policies;
};

TEST_F(ShardDeterminism, MatchesSingleProcessAcrossWorkerCounts)
{
    for (int processes : {1, 2, 4}) {
        ShardedSweepStats stats;
        sim::SweepResult merged =
            runShardedSweep(options(processes), &stats);
        expectIdentical(reference(), merged);
        EXPECT_EQ(stats.workersSpawned, processes);
        EXPECT_EQ(stats.cellsTotal,
                  benchmarks.size() * policies.size());
        EXPECT_EQ(stats.workerDeaths, 0) << processes << " workers";
        EXPECT_EQ(stats.duplicateCells, 0u);
        EXPECT_GT(stats.shardsDispatched, 0);
    }
}

TEST_F(ShardDeterminism, MatchesAcrossShardSizings)
{
    // Coarse shards (the whole grid in one dispatch) and the guided
    // default must merge to the same bits.
    for (std::size_t min_cells : {std::size_t(3), std::size_t(100)}) {
        ShardedSweepOptions sopt = options(2);
        sopt.minShardCells = min_cells;
        ShardedSweepStats stats;
        sim::SweepResult merged = runShardedSweep(sopt, &stats);
        expectIdentical(reference(), merged);
    }
}

TEST_F(ShardDeterminism, RecordOptionsTravelToWorkers)
{
    sim::RecordOptions opts;
    opts.noiseSamplesOverride = 2;

    floorplan::Chip chip = floorplan::buildMiniChip(1);
    sim::Simulation simulation(chip, testConfig());
    sim::SweepResult ref = sim::runSweep(
        simulation, benchmarks, policies, false, 1, opts);

    ShardedSweepOptions sopt = options(2);
    sopt.opts = opts;
    sim::SweepResult merged = runShardedSweep(sopt);
    expectIdentical(ref, merged);
}

TEST_F(ShardDeterminism, IntraWorkerThreadsKeepIdentity)
{
    ShardedSweepOptions sopt = options(2);
    sopt.jobsPerWorker = 2; // processes x threads
    sim::SweepResult merged = runShardedSweep(sopt);
    expectIdentical(reference(), merged);
}

TEST_F(ShardDeterminism, KilledWorkerCellsAreReassignedBitIdentically)
{
    // Worker 1 _exit()s right before sending its second cell result;
    // the coordinator must detect the death, re-queue the
    // unacknowledged remainder of its shard, and still merge a grid
    // bit-identical to the single-process reference.
    ::setenv("TG_SHARD_TEST_DIE", "1:1", 1);
    ShardedSweepStats stats;
    sim::SweepResult merged = runShardedSweep(options(2), &stats);
    ::unsetenv("TG_SHARD_TEST_DIE");

    expectIdentical(reference(), merged);
    EXPECT_GE(stats.workerDeaths, 1);
    EXPECT_GE(stats.shardsReassigned, 1);
}

TEST_F(ShardDeterminism, ImmediateWorkerDeathStillCompletes)
{
    // Worker 1 dies before emitting anything: its whole shard moves
    // to the survivor.
    ::setenv("TG_SHARD_TEST_DIE", "1:0", 1);
    ShardedSweepStats stats;
    sim::SweepResult merged = runShardedSweep(options(2), &stats);
    ::unsetenv("TG_SHARD_TEST_DIE");

    expectIdentical(reference(), merged);
    EXPECT_GE(stats.workerDeaths, 1);
}

} // namespace
} // namespace shard
} // namespace tg

int
main(int argc, char **argv)
{
    // Spawned by a coordinator under test: act as the worker binary.
    if (tg::shard::isWorkerInvocation(argc, argv))
        return tg::shard::workerMain(tg::shard::basicSetupFactory());
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
