/**
 * @file
 * Determinism and allocation-discipline tests of the run loop.
 *
 * The noise windows of a sample frame are evaluated concurrently
 * across domains when SimConfig::jobs allows it; results must be
 * bit-identical to the serial path at every worker count, and
 * independent of whether droop traces are kept. The steady-state
 * per-frame kernel must not touch the heap: a counting global
 * operator new verifies both the individual *Into primitives and a
 * whole warmed-up run.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "common/rng.hh"
#include "floorplan/power8.hh"
#include "sim/simulation.hh"
#include "workload/cycles.hh"
#include "workload/profile.hh"

namespace {

std::atomic<long> g_allocCount{0};

} // namespace

void *
operator new(std::size_t size)
{
    g_allocCount.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    g_allocCount.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace tg {
namespace sim {
namespace {

SimConfig
miniConfig(int jobs)
{
    SimConfig cfg;
    cfg.noiseSamples = 4;
    cfg.profilingEpochs = 8;
    cfg.jobs = jobs;
    return cfg;
}

void
expectIdentical(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.benchmark, b.benchmark);
    EXPECT_EQ(a.policy, b.policy);
    EXPECT_EQ(a.maxTmax, b.maxTmax);
    EXPECT_EQ(a.hottestSpot, b.hottestSpot);
    EXPECT_EQ(a.maxGradient, b.maxGradient);
    EXPECT_EQ(a.maxNoiseFrac, b.maxNoiseFrac);
    EXPECT_EQ(a.emergencyFrac, b.emergencyFrac);
    EXPECT_EQ(a.avgRegulatorLoss, b.avgRegulatorLoss);
    EXPECT_EQ(a.avgEta, b.avgEta);
    EXPECT_EQ(a.avgActiveVrs, b.avgActiveVrs);
    EXPECT_EQ(a.meanPower, b.meanPower);
    EXPECT_EQ(a.overrideCount, b.overrideCount);
    EXPECT_EQ(a.agingImbalance, b.agingImbalance);
    EXPECT_EQ(a.vrActivity, b.vrActivity);
    EXPECT_EQ(a.vrAging, b.vrAging);
}

TEST(RunDeterminism, SerialAndPooledNoiseWindowsBitIdentical)
{
    // jobs=1 evaluates every domain's noise window inline; jobs=4
    // fans them out across a pool. The RNG streams are functions of
    // (run_seed, epoch, sample, domain) and the reduction is serial
    // in domain order, so every field must match bit for bit.
    auto chip = floorplan::buildMiniChip(2);
    Simulation serial(chip, miniConfig(1));
    Simulation pooled(chip, miniConfig(4));

    for (auto policy :
         {core::PolicyKind::AllOn, core::PolicyKind::OracVT,
          core::PolicyKind::PracVT}) {
        auto a = serial.run(workload::profileByName("fft"), policy);
        auto b = pooled.run(workload::profileByName("fft"), policy);
        expectIdentical(a, b);
    }
}

TEST(RunDeterminism, BatchWidthSweepBitIdenticalAcrossJobs)
{
    // The lockstep batching of a domain's per-epoch noise windows is
    // a pure throughput knob: widths 1 (scalar solves), 2, 4 and 8
    // must produce bit-identical RunResults, at any worker count.
    auto chip = floorplan::buildMiniChip(2);
    SimConfig base = miniConfig(1);
    base.noiseSamples = 24;  // 4 windows per epoch: real batches

    for (auto policy :
         {core::PolicyKind::AllOn, core::PolicyKind::PracVT}) {
        RunResult ref;
        bool have_ref = false;
        for (int jobs : {1, 4}) {
            for (int width : {1, 2, 4, 8}) {
                SimConfig cfg = base;
                cfg.jobs = jobs;
                cfg.noiseBatchWidth = width;
                Simulation s(chip, cfg);
                auto r =
                    s.run(workload::profileByName("fft"), policy);
                if (!have_ref) {
                    ref = r;
                    have_ref = true;
                } else {
                    expectIdentical(ref, r);
                }
            }
        }
    }
}

TEST(RunDeterminism, GoldenResultsMatchPreBatchingScalarPath)
{
    // Full-precision goldens captured from the tree BEFORE the
    // batched transient kernel existed (per-window scalar solves,
    // immediate evaluation at the sample frame). The batched sampler
    // must reproduce them bit for bit; a drift here means the
    // "bit-identical at every width" contract broke, not that a
    // tolerance needs loosening.
    struct Golden
    {
        core::PolicyKind policy;
        double maxTmax;
        double maxGradient;
        double maxNoiseFrac;
        double avgRegulatorLoss;
        double avgEta;
        double avgActiveVrs;
        double meanPower;
        double agingImbalance;
        long overrideCount;
        const char *hottestSpot;
    };
    const Golden goldens[] = {
        {core::PolicyKind::AllOn, 0x1.f6e04cf2063d9p+5,
         0x1.cb9628139c82p+3, 0x1.91a559199e6c2p-5,
         0x1.9eb022a2f6572p+1, 0x1.b4b8e56353779p-1, 0x1.8p+4,
         0x1.2be39b60c59cbp+4, 0x1.40d3b16183bd1p+0, 0,
         "core0.vr8"},
        {core::PolicyKind::OracVT, 0x1.ecc81346d6dap+5,
         0x1.a40c8aac6f22cp+3, 0x1.06045784fa272p-4,
         0x1.2e3e4e8b8003p+1, 0x1.c6b05a56b5db7p-1,
         0x1.baaaaaaaaaaa7p+3, 0x1.2b0468e36b51dp+4,
         0x1.9be351c636f6ep+0, 0, "core0.vr4"},
        {core::PolicyKind::PracVT, 0x1.ec72adb46772ep+5,
         0x1.a2b3b234839b4p+3, 0x1.2966db34f5acp-4,
         0x1.587b32b6dabd1p+1, 0x1.bfdd61564727dp-1,
         0x1.0d55555555549p+4, 0x1.2b40d60d2ea86p+4,
         0x1.608b943f395dfp+0, 0, "core0.vr7"},
    };

    auto chip = floorplan::buildMiniChip(2);
    SimConfig cfg = miniConfig(1);
    cfg.noiseSamples = 24;
    Simulation s(chip, cfg);
    for (const auto &g : goldens) {
        auto r = s.run(workload::profileByName("fft"), g.policy);
        EXPECT_EQ(r.maxTmax, g.maxTmax);
        EXPECT_EQ(r.maxGradient, g.maxGradient);
        EXPECT_EQ(r.maxNoiseFrac, g.maxNoiseFrac);
        EXPECT_EQ(r.emergencyFrac, 0.0);
        EXPECT_EQ(r.avgRegulatorLoss, g.avgRegulatorLoss);
        EXPECT_EQ(r.avgEta, g.avgEta);
        EXPECT_EQ(r.avgActiveVrs, g.avgActiveVrs);
        EXPECT_EQ(r.meanPower, g.meanPower);
        EXPECT_EQ(r.agingImbalance, g.agingImbalance);
        EXPECT_EQ(r.overrideCount, g.overrideCount);
        EXPECT_EQ(r.hottestSpot, g.hottestSpot);
    }
}

TEST(RunDeterminism, KeepingDroopTracesDoesNotChangeMetrics)
{
    auto chip = floorplan::buildMiniChip(1);
    Simulation s(chip, miniConfig(1));

    RecordOptions plain;
    RecordOptions traced;
    traced.noiseTrace = true;
    auto a =
        s.run(workload::profileByName("rayt"),
              core::PolicyKind::OracVT, plain);
    auto b =
        s.run(workload::profileByName("rayt"),
              core::PolicyKind::OracVT, traced);
    expectIdentical(a, b);
    EXPECT_TRUE(a.noiseTrace.empty());
    EXPECT_FALSE(b.noiseTrace.empty());
    EXPECT_GE(b.noiseTraceDomain, 0);
}

TEST(RunDeterminism, RepeatedRunsOnOneInstanceBitIdentical)
{
    // Scratch buffers (frame kernel, noise sampler, sensor ring) are
    // reused across runs; stale contents must never leak into a
    // later run's results.
    auto chip = floorplan::buildMiniChip(1);
    Simulation s(chip, miniConfig(1));
    auto a = s.run(workload::profileByName("fft"),
                   core::PolicyKind::PracVT);
    s.run(workload::profileByName("lu_cb"),
          core::PolicyKind::AllOn);
    auto b = s.run(workload::profileByName("fft"),
                   core::PolicyKind::PracVT);
    expectIdentical(a, b);
}

TEST(AllocationDiscipline, WarmKernelPrimitivesDoNotAllocate)
{
    auto chip = floorplan::buildMiniChip(1);
    SimConfig cfg = miniConfig(1);
    Simulation s(chip, cfg);

    const auto &tm = s.thermalModel();
    const auto &pm = s.powerModel();
    const auto &pdn = s.domainPdn(0);

    auto temps = tm.uniformState(55.0);
    std::vector<Celsius> block_t;
    std::vector<Watts> leak;
    std::vector<Watts> vr_loss(chip.plan.vrs().size(), 0.05);
    std::vector<Watts> nodal;
    std::vector<Amperes> currents;
    std::vector<double> mult;
    Rng rng(17);

    // Warm-up pass sizes every buffer (and the solver scratches).
    tm.blockTempsInto(temps, block_t);
    pm.leakageFrameInto(block_t, leak);
    tm.powerVectorInto(leak, vr_loss, nodal);
    tm.advance(temps, nodal);
    pdn.nodeCurrentsInto(leak, currents);
    workload::synthesizeCycleMultipliersInto(0.5, 256, rng, mult);
    std::vector<Amperes> window(
        256 * static_cast<std::size_t>(pdn.nodeCount()));
    for (std::size_t c = 0; c < 256; ++c)
        for (std::size_t i = 0;
             i < static_cast<std::size_t>(pdn.nodeCount()); ++i)
            window[c * static_cast<std::size_t>(pdn.nodeCount()) + i] =
                currents[i] * mult[c];
    pdn.transientWindow(window.data(), 256,
                        static_cast<std::size_t>(pdn.nodeCount()), 64);
    // Batched kernel warm-up: 4 lanes over the same cycle buffer
    // sizes every n x W scratch.
    pdn::DomainPdn::WindowSpec specs[4] = {
        {window.data(), static_cast<std::size_t>(pdn.nodeCount())},
        {window.data(), static_cast<std::size_t>(pdn.nodeCount())},
        {window.data(), static_cast<std::size_t>(pdn.nodeCount())},
        {window.data(), static_cast<std::size_t>(pdn.nodeCount())}};
    pdn::NoiseResult batch_out[4];
    pdn.transientWindowBatch(specs, 4, 256, 64, false, batch_out);

    long before = g_allocCount.load(std::memory_order_relaxed);
    for (int it = 0; it < 3; ++it) {
        tm.blockTempsInto(temps, block_t);
        pm.leakageFrameInto(block_t, leak);
        tm.powerVectorInto(leak, vr_loss, nodal);
        tm.advance(temps, nodal);
        pdn.nodeCurrentsInto(leak, currents);
        workload::synthesizeCycleMultipliersInto(0.5, 256, rng, mult);
        pdn.transientWindow(window.data(), 256,
                            static_cast<std::size_t>(pdn.nodeCount()),
                            64);
        pdn.transientWindowBatch(specs, 4, 256, 64, false, batch_out);
    }
    long after = g_allocCount.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0)
        << "warm per-frame primitives must not touch the heap";
}

TEST(AllocationDiscipline, WarmRunAllocationsAreBounded)
{
    // A full warmed-up run still allocates for genuinely per-run
    // products (the demand/activity traces, the power trace growth on
    // first use, per-epoch decision vectors) but must stay far below
    // the historical per-frame/per-cycle churn: the old loop paid ~6
    // vector allocations per frame plus one row vector per transient
    // cycle (hundreds per noise window).
    auto chip = floorplan::buildMiniChip(1);
    Simulation s(chip, miniConfig(1));
    const auto &profile = workload::profileByName("fft");
    s.run(profile, core::PolicyKind::PracVT);  // warm-up

    RecordOptions series;
    series.timeSeries = true;
    auto probe = s.run(profile, core::PolicyKind::PracVT, series);
    long n_frames = static_cast<long>(probe.timeUs.size());
    ASSERT_GT(n_frames, 0);

    long before = g_allocCount.load(std::memory_order_relaxed);
    s.run(profile, core::PolicyKind::PracVT);
    long after = g_allocCount.load(std::memory_order_relaxed);
    long per_frame_budget = 5;  // activity/demand trace construction
    EXPECT_LT(after - before, 4096 + per_frame_budget * n_frames)
        << "warm run allocated " << (after - before) << " times over "
        << n_frames << " frames";
}

} // namespace
} // namespace sim
} // namespace tg
