/** @file Unit tests for the gating policies and the governor. */

#include <algorithm>

#include <gtest/gtest.h>

#include "core/governor.hh"
#include "core/policy.hh"
#include "floorplan/power8.hh"
#include "pdn/domain_pdn.hh"
#include "vreg/design.hh"
#include "vreg/network.hh"

namespace tg {
namespace core {
namespace {

/** Shared fixtures: domain 0 of the evaluation chip. */
class PolicyTest : public ::testing::Test
{
  protected:
    PolicyTest()
        : chip(floorplan::buildPower8Chip()),
          pdn(chip, 0, vreg::fivrDesign(), {}),
          net(vreg::fivrDesign(), 9), thetas(9, 28.0)
    {
        kit.pdn = &pdn;
        kit.network = &net;
        kit.thetas = &thetas;

        state.domain = 0;
        state.demandNow = 7.0;
        state.demandNext = 7.0;
        state.vrTemps = {60, 61, 60.5, 63, 64, 63.5, 65, 66, 65.5};
        state.vrLossNow.assign(9, 0.0);
        state.vrLossNextPerActive = 0.19;
        state.nodeCurrents.assign(
            static_cast<std::size_t>(pdn.nodeCount()), 0.1);
        state.didt = 0.4;
    }

    floorplan::Chip chip;
    pdn::DomainPdn pdn;
    vreg::RegulatorNetwork net;
    std::vector<double> thetas;
    PolicyToolkit kit;
    DomainState state;
};

TEST(PolicyMeta, NamesAndClassification)
{
    EXPECT_STREQ(policyName(PolicyKind::OracVT), "OracVT");
    EXPECT_STREQ(policyName(PolicyKind::AllOn), "all-on");
    EXPECT_TRUE(isOracular(PolicyKind::OracV));
    EXPECT_FALSE(isOracular(PolicyKind::PracT));
    EXPECT_TRUE(hasEmergencyOverride(PolicyKind::PracVT));
    EXPECT_FALSE(hasEmergencyOverride(PolicyKind::OracT));
    EXPECT_TRUE(isThermallyAware(PolicyKind::Naive));
    EXPECT_FALSE(isThermallyAware(PolicyKind::AllOn));
    EXPECT_EQ(allPolicyKinds().size(), 8u);
}

TEST(PolicyMeta, FactoryCreatesEveryKind)
{
    for (auto kind : allPolicyKinds()) {
        auto p = makePolicy(kind);
        ASSERT_NE(p, nullptr);
        EXPECT_EQ(p->kind(), kind);
        EXPECT_FALSE(p->name().empty());
    }
}

TEST_F(PolicyTest, AllOnSelectsEverything)
{
    auto p = makePolicy(PolicyKind::AllOn);
    auto set = p->select(state, 3, kit);
    EXPECT_EQ(set.size(), 9u);
}

TEST_F(PolicyTest, NaivePicksInstantaneousCoolest)
{
    auto p = makePolicy(PolicyKind::Naive);
    auto set = p->select(state, 3, kit);
    std::sort(set.begin(), set.end());
    // Coolest three of the fixture: indices 0, 2, 1 (60, 60.5, 61).
    EXPECT_EQ(set, (std::vector<int>{0, 1, 2}));
}

TEST_F(PolicyTest, AnticipationPenalisesColdStartHeating)
{
    // VRs 0..2 are coolest now but off (loss 0) and would jump by
    // theta * lossNext once activated; VRs 3..5 are warmer but
    // already on at the next interval's load, so they stay put.
    state.vrLossNow = {0, 0, 0, 0.19, 0.19, 0.19, 0, 0, 0};
    state.vrTemps = {62.5, 62.6, 62.7, 64, 64.1, 64.2, 70, 70, 70};
    auto p = makePolicy(PolicyKind::OracT);
    auto set = p->select(state, 3, kit);
    std::sort(set.begin(), set.end());
    // anticipated off->on: 62.5 + 28*0.19 = 67.8 > anticipated
    // stay-on: 64 + 0 -> keeps 3..5 on.
    EXPECT_EQ(set, (std::vector<int>{3, 4, 5}));
}

TEST_F(PolicyTest, AnticipationWithZeroThetaEqualsNaive)
{
    std::fill(thetas.begin(), thetas.end(), 0.0);
    auto orac = makePolicy(PolicyKind::OracT);
    auto naive = makePolicy(PolicyKind::Naive);
    auto a = orac->select(state, 4, kit);
    auto b = naive->select(state, 4, kit);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
}

TEST_F(PolicyTest, NoiseAwareStaysNearTheLoad)
{
    // Put all the current at the node of VR 8's attach point: the
    // policy must keep VR 8 (and neighbours) on.
    std::fill(state.nodeCurrents.begin(), state.nodeCurrents.end(),
              0.0);
    state.nodeCurrents[static_cast<std::size_t>(
        pdn.vrAttachNode(8))] = 5.0;
    auto p = makePolicy(PolicyKind::OracV);
    auto set = p->select(state, 3, kit);
    EXPECT_NE(std::find(set.begin(), set.end(), 8), set.end());
}

TEST_F(PolicyTest, SelectionsReturnExactlyNon)
{
    for (auto kind : {PolicyKind::Naive, PolicyKind::OracT,
                      PolicyKind::OracV, PolicyKind::PracT}) {
        auto p = makePolicy(kind);
        for (int non = 1; non <= 9; ++non) {
            auto set = p->select(state, non, kit);
            EXPECT_EQ(set.size(), static_cast<std::size_t>(non));
            std::sort(set.begin(), set.end());
            EXPECT_EQ(std::unique(set.begin(), set.end()), set.end());
            EXPECT_GE(set.front(), 0);
            EXPECT_LT(set.back(), 9);
        }
    }
}

TEST_F(PolicyTest, GovernorSizesActiveSetFromDemand)
{
    Governor g(PolicyKind::OracT, 16);
    auto d = g.decide(state, kit, false);
    EXPECT_EQ(d.non, net.requiredActive(state.demandNext));
    EXPECT_EQ(static_cast<int>(d.active.size()), d.non);
    EXPECT_FALSE(d.overridden);
}

TEST_F(PolicyTest, GovernorAppliesPracticalHeadroom)
{
    Governor g(PolicyKind::PracT, 16);
    state.headroomVrs = 1;
    auto d = g.decide(state, kit, false);
    EXPECT_EQ(d.non, net.requiredActive(state.demandNext) + 1);
    state.headroomVrs = 100;  // clamped at the network size
    d = g.decide(state, kit, false);
    EXPECT_EQ(d.non, 9);
}

TEST_F(PolicyTest, GovernorEmergencyOverrideGoesAllOn)
{
    Governor g(PolicyKind::OracVT, 16);
    auto d = g.decide(state, kit, true);
    EXPECT_TRUE(d.overridden);
    EXPECT_EQ(d.active.size(), 9u);
    EXPECT_EQ(g.overrideCount(), 1);

    // Non-VT policies ignore the alert.
    Governor g2(PolicyKind::OracT, 16);
    auto d2 = g2.decide(state, kit, true);
    EXPECT_FALSE(d2.overridden);
    EXPECT_LT(d2.active.size(), 9u);
}

TEST_F(PolicyTest, GovernorOffChipSelectsNothing)
{
    Governor g(PolicyKind::OffChip, 16);
    auto d = g.decide(state, kit, false);
    EXPECT_TRUE(d.active.empty());
    EXPECT_EQ(d.non, 0);
}

TEST_F(PolicyTest, GovernorTracksActivityRates)
{
    Governor g(PolicyKind::OracT, 16);
    g.recordActivity(0, {0, 1}, 9, 1.0);
    g.recordActivity(0, {1, 2}, 9, 1.0);
    EXPECT_DOUBLE_EQ(g.activityRate(0, 0), 0.5);
    EXPECT_DOUBLE_EQ(g.activityRate(0, 1), 1.0);
    EXPECT_DOUBLE_EQ(g.activityRate(0, 2), 0.5);
    EXPECT_DOUBLE_EQ(g.activityRate(0, 5), 0.0);
    EXPECT_DOUBLE_EQ(g.activityRate(3, 0), 0.0);  // unaccounted
}

TEST_F(PolicyTest, DecisionCountIncrements)
{
    Governor g(PolicyKind::Naive, 16);
    EXPECT_EQ(g.decisionCount(), 0);
    g.decide(state, kit, false);
    g.decide(state, kit, false);
    EXPECT_EQ(g.decisionCount(), 2);
}

} // namespace
} // namespace core
} // namespace tg
