/** @file Unit and property tests for the workload models. */

#include <set>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "workload/cycles.hh"
#include "workload/demand.hh"
#include "workload/profile.hh"

namespace tg {
namespace workload {
namespace {

TEST(Profiles, AllFourteenSplashBenchmarks)
{
    const auto &ps = splashProfiles();
    ASSERT_EQ(ps.size(), 14u);
    std::set<std::string> names;
    for (const auto &p : ps)
        names.insert(p.name);
    EXPECT_EQ(names.size(), 14u);
    for (const char *n :
         {"barnes", "chol", "fft", "fmm", "lu_cb", "lu_ncb", "oc_cp",
          "oc_ncp", "radio", "radix", "rayt", "volr", "water_n",
          "water_s"})
        EXPECT_EQ(names.count(n), 1u) << n;
}

TEST(Profiles, FieldsWithinPhysicalRanges)
{
    for (const auto &p : splashProfiles()) {
        EXPECT_GT(p.meanUtilization, 0.0) << p.name;
        EXPECT_LT(p.meanUtilization, 1.0) << p.name;
        EXPECT_GE(p.phaseAmplitude, 0.0) << p.name;
        EXPECT_LT(p.phaseAmplitude, 1.0) << p.name;
        EXPECT_GT(p.phasePeriodUs, 0.0) << p.name;
        EXPECT_GE(p.didtActivity, 0.0) << p.name;
        EXPECT_LE(p.didtActivity, 1.0) << p.name;
        EXPECT_GT(p.roiDurationUs, 1000.0) << p.name;
        double mix = p.mix.fracInt + p.mix.fracFp + p.mix.fracLoad +
                     p.mix.fracStore + p.mix.fracBranch;
        EXPECT_NEAR(mix, 1.0, 1e-9) << p.name;
    }
}

TEST(Profiles, PaperCalibrationAnchors)
{
    // cholesky is the busiest (least gating headroom, Fig. 7);
    // raytrace the lightest; barnes the most di/dt aggressive
    // (Table 2); the lu kernels and water_n the least.
    const auto &chol = profileByName("chol");
    const auto &rayt = profileByName("rayt");
    const auto &barnes = profileByName("barnes");
    for (const auto &p : splashProfiles()) {
        EXPECT_LE(p.meanUtilization, chol.meanUtilization) << p.name;
        EXPECT_GE(p.meanUtilization, rayt.meanUtilization) << p.name;
        EXPECT_LE(p.didtActivity, barnes.didtActivity) << p.name;
    }
    EXPECT_LT(profileByName("lu_cb").didtActivity, 0.4);
    EXPECT_LT(profileByName("water_n").didtActivity, 0.4);
}

TEST(ProfilesDeath, UnknownNameIsFatal)
{
    EXPECT_EXIT(profileByName("quake3"),
                ::testing::ExitedWithCode(1), "unknown benchmark");
}

TEST(Demand, DeterministicForSeed)
{
    const auto &p = profileByName("fft");
    auto a = generateDemandTrace(p, 8, 123);
    auto b = generateDemandTrace(p, 8, 123);
    ASSERT_EQ(a.frames.size(), b.frames.size());
    for (std::size_t f = 0; f < a.frames.size(); ++f)
        EXPECT_EQ(a.frames[f].coreUtil, b.frames[f].coreUtil);

    auto c = generateDemandTrace(p, 8, 124);
    EXPECT_NE(a.frames[10].coreUtil, c.frames[10].coreUtil);
}

TEST(Demand, CoversRoiDuration)
{
    const auto &p = profileByName("lu_ncb");
    auto t = generateDemandTrace(p, 8, 1);
    EXPECT_NEAR(t.duration(), p.roiDurationUs * 1e-6, t.dt + 1e-12);
}

TEST(Demand, UtilisationStaysClamped)
{
    const auto &p = profileByName("barnes");
    auto t = generateDemandTrace(p, 8, 7);
    for (const auto &f : t.frames)
        for (double u : f.coreUtil) {
            EXPECT_GE(u, 0.02);
            EXPECT_LE(u, 1.0);
        }
}

TEST(Demand, MeanTracksProfile)
{
    for (const char *name : {"chol", "rayt", "lu_ncb"}) {
        const auto &p = profileByName(name);
        auto t = generateDemandTrace(p, 8, 42);
        EXPECT_NEAR(t.meanUtilization(), p.meanUtilization,
                    0.06 + p.imbalance * p.meanUtilization)
            << name;
    }
}

TEST(Demand, PhaseStructureCreatesVariation)
{
    const auto &p = profileByName("lu_ncb");  // large amplitude
    auto t = generateDemandTrace(p, 8, 9);
    double lo = 1.0;
    double hi = 0.0;
    for (const auto &f : t.frames) {
        lo = std::min(lo, f.coreUtil[0]);
        hi = std::max(hi, f.coreUtil[0]);
    }
    EXPECT_GT(hi - lo, p.meanUtilization * p.phaseAmplitude);
}

TEST(Cycles, MeanNearUnity)
{
    Rng rng(3);
    auto m = synthesizeCycleMultipliers(0.5, 50000, rng);
    double mean = 0.0;
    for (double x : m)
        mean += x;
    mean /= m.size();
    EXPECT_NEAR(mean, 1.0, 0.06);
}

TEST(Cycles, NonNegativeAndDeterministic)
{
    Rng a(11);
    Rng b(11);
    auto ma = synthesizeCycleMultipliers(0.8, 2000, a);
    auto mb = synthesizeCycleMultipliers(0.8, 2000, b);
    EXPECT_EQ(ma, mb);
    for (double x : ma)
        EXPECT_GE(x, 0.0);
}

TEST(Cycles, DidtScalesExcursionDepth)
{
    // Higher di/dt activity must produce deeper worst-case swings.
    auto depth = [](double didt) {
        Rng rng(21);
        auto m = synthesizeCycleMultipliers(didt, 200000, rng);
        double lo = 1.0;
        for (double x : m)
            lo = std::min(lo, x);
        return 1.0 - lo;
    };
    EXPECT_GT(depth(1.0), depth(0.0) + 0.1);
}

TEST(CyclesDeath, InvalidArgumentsPanic)
{
    Rng rng(1);
    EXPECT_DEATH(synthesizeCycleMultipliers(1.5, 10, rng), "didt");
    EXPECT_DEATH(synthesizeCycleMultipliers(0.5, 0, rng), "empty");
}

/** Every profile yields a generatable, in-range demand trace. */
class AllProfiles : public ::testing::TestWithParam<int>
{
};

TEST_P(AllProfiles, GeneratesValidTrace)
{
    const auto &p = splashProfiles()[static_cast<std::size_t>(
        GetParam())];
    auto t = generateDemandTrace(p, 8, 77);
    EXPECT_GE(t.frames.size(), 100u);
    EXPECT_GT(t.meanUtilization(), 0.05);
    EXPECT_LT(t.meanUtilization(), 0.95);
}

INSTANTIATE_TEST_SUITE_P(Splash, AllProfiles, ::testing::Range(0, 14));

} // namespace
} // namespace workload
} // namespace tg
