/**
 * @file
 * Pure unit tests of the sharded sweep's building blocks: the
 * deterministic partitioner and the length-prefixed frame protocol.
 * No processes are spawned here — the end-to-end coordinator/worker
 * determinism and crash-reassignment tests live in
 * test_shard_run.cc (which needs a custom main for worker mode).
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/bytes.hh"
#include "shard/partition.hh"
#include "shard/protocol.hh"

using namespace tg;
using shard::Frame;
using shard::FrameParser;
using shard::FrameType;

// --- partitioner -----------------------------------------------------

TEST(ShardPartition, EveryCellExactlyOnce)
{
    for (std::size_t n : {std::size_t(0), std::size_t(1),
                          std::size_t(2), std::size_t(3),
                          std::size_t(7), std::size_t(12),
                          std::size_t(16), std::size_t(100),
                          std::size_t(112), std::size_t(1000)}) {
        for (int workers : {1, 2, 3, 4, 8, 16}) {
            auto shards = shard::partitionCells(n, workers);
            std::vector<int> seen(n, 0);
            for (const auto &s : shards) {
                EXPECT_FALSE(s.empty());
                for (auto c : s) {
                    ASSERT_LT(c, n);
                    ++seen[c];
                }
            }
            for (std::size_t c = 0; c < n; ++c)
                EXPECT_EQ(seen[c], 1)
                    << "cell " << c << " at n=" << n
                    << " workers=" << workers;
        }
    }
}

TEST(ShardPartition, ContiguousAndOrdered)
{
    auto shards = shard::partitionCells(100, 4);
    std::uint64_t next = 0;
    for (const auto &s : shards)
        for (auto c : s)
            EXPECT_EQ(c, next++);
    EXPECT_EQ(next, 100u);
}

TEST(ShardPartition, GuidedSizesNonIncreasing)
{
    auto shards = shard::partitionCells(112, 4);
    ASSERT_FALSE(shards.empty());
    // First shard: ceil(112 / (2*4)) = 14 cells.
    EXPECT_EQ(shards.front().size(), 14u);
    for (std::size_t i = 1; i < shards.size(); ++i)
        EXPECT_LE(shards[i].size(), shards[i - 1].size());
    // Tail decays: the guided schedule ends in single-cell shards.
    EXPECT_EQ(shards.back().size(), 1u);
}

TEST(ShardPartition, MinCellsFloor)
{
    auto shards = shard::partitionCells(100, 8, 5);
    for (std::size_t i = 0; i + 1 < shards.size(); ++i)
        EXPECT_GE(shards[i].size(), 5u);
    // Only the final remnant may dip below the floor.
    EXPECT_GE(shards.back().size(), 1u);
}

TEST(ShardPartition, Deterministic)
{
    EXPECT_EQ(shard::partitionCells(250, 3),
              shard::partitionCells(250, 3));
    EXPECT_EQ(shard::partitionCells(250, 3, 4),
              shard::partitionCells(250, 3, 4));
}

TEST(ShardPartition, DegenerateInputsClamp)
{
    EXPECT_TRUE(shard::partitionCells(0, 4).empty());
    // workers and min_cells clamp to >= 1.
    auto shards = shard::partitionCells(5, 0, 0);
    std::size_t total = 0;
    for (const auto &s : shards)
        total += s.size();
    EXPECT_EQ(total, 5u);
    // One worker, one cell: exactly one singleton shard.
    auto one = shard::partitionCells(1, 1);
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one[0], std::vector<std::uint64_t>{0});
}

// --- frame layer -----------------------------------------------------

namespace {

/** Feed a byte buffer into a parser in one go. */
FrameParser::Status
feedAll(FrameParser &p, const std::vector<std::uint8_t> &bytes,
        Frame &out)
{
    p.feed(bytes.data(), bytes.size());
    return p.next(out);
}

} // namespace

TEST(ShardProtocol, FrameRoundTrip)
{
    const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
    auto bytes = shard::encodeFrame(FrameType::CellResult, payload);

    FrameParser parser;
    Frame frame;
    ASSERT_EQ(feedAll(parser, bytes, frame),
              FrameParser::Status::Frame);
    EXPECT_EQ(frame.type, FrameType::CellResult);
    EXPECT_EQ(frame.payload, payload);
    EXPECT_EQ(parser.next(frame), FrameParser::Status::NeedMore);
}

TEST(ShardProtocol, EmptyPayloadFrame)
{
    auto bytes = shard::encodeFrame(FrameType::Heartbeat, {});
    FrameParser parser;
    Frame frame;
    ASSERT_EQ(feedAll(parser, bytes, frame),
              FrameParser::Status::Frame);
    EXPECT_EQ(frame.type, FrameType::Heartbeat);
    EXPECT_TRUE(frame.payload.empty());
}

TEST(ShardProtocol, ByteAtATimeReassembly)
{
    const std::vector<std::uint8_t> payload(300, 0xAB);
    auto bytes = shard::encodeFrame(FrameType::ShardDone, payload);

    FrameParser parser;
    Frame frame;
    for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
        parser.feed(&bytes[i], 1);
        ASSERT_EQ(parser.next(frame), FrameParser::Status::NeedMore)
            << "frame completed early at byte " << i;
    }
    parser.feed(&bytes.back(), 1);
    ASSERT_EQ(parser.next(frame), FrameParser::Status::Frame);
    EXPECT_EQ(frame.payload, payload);
}

TEST(ShardProtocol, BackToBackFrames)
{
    auto a = shard::encodeFrame(FrameType::Heartbeat, {});
    auto b = shard::encodeFrame(FrameType::ShardDone, {9, 9});
    std::vector<std::uint8_t> stream = a;
    stream.insert(stream.end(), b.begin(), b.end());

    FrameParser parser;
    Frame frame;
    ASSERT_EQ(feedAll(parser, stream, frame),
              FrameParser::Status::Frame);
    EXPECT_EQ(frame.type, FrameType::Heartbeat);
    ASSERT_EQ(parser.next(frame), FrameParser::Status::Frame);
    EXPECT_EQ(frame.type, FrameType::ShardDone);
    EXPECT_EQ(parser.next(frame), FrameParser::Status::NeedMore);
}

TEST(ShardProtocol, BadMagicIsStickyCorrupt)
{
    auto bytes = shard::encodeFrame(FrameType::Heartbeat, {});
    bytes[0] ^= 0xFF;

    FrameParser parser;
    Frame frame;
    EXPECT_EQ(feedAll(parser, bytes, frame),
              FrameParser::Status::Corrupt);
    EXPECT_TRUE(parser.corrupt());

    // A later good frame cannot resurrect the stream.
    auto good = shard::encodeFrame(FrameType::Heartbeat, {});
    EXPECT_EQ(feedAll(parser, good, frame),
              FrameParser::Status::Corrupt);
}

TEST(ShardProtocol, ChecksumMismatchIsCorrupt)
{
    auto bytes = shard::encodeFrame(FrameType::CellResult,
                                    {10, 20, 30, 40});
    bytes[bytes.size() - 9] ^= 0x01; // last payload byte

    FrameParser parser;
    Frame frame;
    EXPECT_EQ(feedAll(parser, bytes, frame),
              FrameParser::Status::Corrupt);
}

TEST(ShardProtocol, UnknownFrameTypeIsCorrupt)
{
    bytes::ByteWriter w;
    w.u32(shard::kFrameMagic);
    w.u32(0xDEAD); // not a FrameType
    w.u64(0);
    auto header = w.take();

    FrameParser parser;
    Frame frame;
    EXPECT_EQ(feedAll(parser, header, frame),
              FrameParser::Status::Corrupt);
    EXPECT_FALSE(shard::frameTypeValid(0));
    EXPECT_FALSE(shard::frameTypeValid(0xDEAD));
    EXPECT_TRUE(shard::frameTypeValid(
        static_cast<std::uint32_t>(FrameType::Hello)));
}

TEST(ShardProtocol, AbsurdPayloadLengthIsCorrupt)
{
    bytes::ByteWriter w;
    w.u32(shard::kFrameMagic);
    w.u32(static_cast<std::uint32_t>(FrameType::CellResult));
    w.u64(shard::kMaxFramePayload + 1);
    auto header = w.take();

    FrameParser parser;
    Frame frame;
    EXPECT_EQ(feedAll(parser, header, frame),
              FrameParser::Status::Corrupt);
}

// --- message payloads ------------------------------------------------

TEST(ShardProtocol, HelloRoundTrip)
{
    shard::HelloMsg in;
    in.version = shard::kProtocolVersion;
    in.pid = 424242;
    shard::HelloMsg out;
    ASSERT_TRUE(decodeHello(shard::encodeHello(in), out));
    EXPECT_EQ(out.version, in.version);
    EXPECT_EQ(out.pid, in.pid);
}

TEST(ShardProtocol, SweepRequestRoundTrip)
{
    shard::SweepRequestMsg in;
    in.workerId = 3;
    in.jobs = 4;
    in.heartbeatMs = 250;
    in.setup = {0xDE, 0xAD, 0xBE, 0xEF};
    in.benchmarks = {"barnes", "fft", "water_s"};
    in.policies = {0, 2, 7};
    in.timeSeries = 1;
    in.heatmap = 0;
    in.noiseTrace = 1;
    in.trackVr = 12;
    in.noiseSamplesOverride = -1;

    shard::SweepRequestMsg out;
    ASSERT_TRUE(decodeSweepRequest(shard::encodeSweepRequest(in), out));
    EXPECT_EQ(out.workerId, in.workerId);
    EXPECT_EQ(out.jobs, in.jobs);
    EXPECT_EQ(out.heartbeatMs, in.heartbeatMs);
    EXPECT_EQ(out.setup, in.setup);
    EXPECT_EQ(out.benchmarks, in.benchmarks);
    EXPECT_EQ(out.policies, in.policies);
    EXPECT_EQ(out.timeSeries, in.timeSeries);
    EXPECT_EQ(out.heatmap, in.heatmap);
    EXPECT_EQ(out.noiseTrace, in.noiseTrace);
    EXPECT_EQ(out.trackVr, in.trackVr);
    EXPECT_EQ(out.noiseSamplesOverride, in.noiseSamplesOverride);
}

TEST(ShardProtocol, ShardAssignmentRoundTrip)
{
    shard::ShardAssignmentMsg in;
    in.shard = 7;
    in.cells = {0, 5, 11, 95};
    shard::ShardAssignmentMsg out;
    ASSERT_TRUE(
        decodeShardAssignment(shard::encodeShardAssignment(in), out));
    EXPECT_EQ(out.shard, in.shard);
    EXPECT_EQ(out.cells, in.cells);
}

TEST(ShardProtocol, CellResultRoundTrip)
{
    shard::CellResultMsg in;
    in.shard = 2;
    in.cell = 17;
    in.result.assign(1000, 0x5A);
    shard::CellResultMsg out;
    ASSERT_TRUE(decodeCellResult(shard::encodeCellResult(in), out));
    EXPECT_EQ(out.shard, in.shard);
    EXPECT_EQ(out.cell, in.cell);
    EXPECT_EQ(out.result, in.result);
}

TEST(ShardProtocol, DecodersRejectTruncation)
{
    shard::SweepRequestMsg req;
    req.benchmarks = {"barnes"};
    req.policies = {1};
    auto p = shard::encodeSweepRequest(req);
    for (std::size_t keep = 0; keep < p.size(); ++keep) {
        std::vector<std::uint8_t> cut(p.begin(), p.begin() + keep);
        shard::SweepRequestMsg out;
        EXPECT_FALSE(decodeSweepRequest(cut, out))
            << "truncated payload of " << keep
            << " bytes decoded successfully";
    }
}

TEST(ShardProtocol, DecodersRejectTrailingGarbage)
{
    shard::ShardDoneMsg done;
    done.shard = 1;
    auto p = shard::encodeShardDone(done);
    p.push_back(0x00);
    shard::ShardDoneMsg out;
    EXPECT_FALSE(decodeShardDone(p, out));

    shard::HelloMsg hello;
    auto h = shard::encodeHello(hello);
    h.push_back(0xFF);
    shard::HelloMsg hout;
    EXPECT_FALSE(decodeHello(h, hout));
}
