/**
 * @file
 * End-to-end tests of the persistent sweep server: results served
 * over a real Unix-domain socket must be bit-identical to a direct
 * in-process runSweep()/run() at every jobs count, from concurrent
 * clients, and across warm repeats; invalid requests must produce
 * error replies without killing the daemon; Shutdown must drain.
 *
 * The suite runs under TSan in CI (the Serve group is part of the
 * TSan job's regex), so the server's three-way thread structure —
 * poll thread, executor, sweep pool — is raced here deliberately.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#ifdef __unix__
#include <unistd.h>
#endif

#include "cache/serialize.hh"
#include "serve/client.hh"
#include "serve/server.hh"
#include "shard/worker.hh"
#include "sim/sweep.hh"
#include "workload/profile.hh"

namespace tg {
namespace serve {
namespace {

/** The fast mini-chip config every serve test sweeps. */
sim::SimConfig testConfig()
{
    sim::SimConfig cfg;
    cfg.noiseSamples = 4;
    cfg.profilingEpochs = 8;
    return cfg;
}

const std::vector<std::string> kBenchmarks = {"rayt", "fft",
                                              "lu_ncb", "water_s"};
const std::vector<core::PolicyKind> kPolicies = {
    core::PolicyKind::AllOn, core::PolicyKind::OracT};

std::vector<std::uint8_t> testSetup()
{
    return shard::encodeBasicSetup(shard::ChipKind::Mini, 1,
                                   testConfig());
}

SweepMsg testSweepRequest(int jobs)
{
    SweepMsg m;
    m.setup = testSetup();
    m.benchmarks = kBenchmarks;
    for (auto pk : kPolicies)
        m.policies.push_back(static_cast<std::uint32_t>(pk));
    m.jobs = static_cast<std::uint32_t>(jobs);
    return m;
}

/** Byte-level equality via the bit-exact RunResult codec. */
void expectBitIdentical(const sim::SweepResult &a,
                        const sim::SweepResult &b)
{
    ASSERT_EQ(a.benchmarks, b.benchmarks);
    ASSERT_EQ(a.policies, b.policies);
    for (std::size_t i = 0; i < a.benchmarks.size(); ++i)
        for (std::size_t j = 0; j < a.policies.size(); ++j)
            EXPECT_EQ(cache::encodeRunResult(a.results[i][j]),
                      cache::encodeRunResult(b.results[i][j]))
                << a.benchmarks[i] << " / "
                << core::policyName(a.policies[j]);
}

class ServeDeterminism : public ::testing::Test
{
  protected:
    void SetUp() override
    {
#ifndef __unix__
        GTEST_SKIP() << "the sweep server requires a POSIX host";
#endif
        ServerOptions options;
        options.socketPath = "/tmp/tg_serve_test." +
                             std::to_string(::getpid()) + ".sock";
        options.jobs = 4;
        server = std::make_unique<Server>(options);
        std::string err;
        ASSERT_TRUE(server->start(&err)) << err;
    }

    void TearDown() override
    {
        if (server) {
            server->requestStop();
            server->wait();
        }
    }

    /** The single-process reference grid, computed once per suite. */
    static const sim::SweepResult &reference()
    {
        static sim::SweepResult ref = [] {
            floorplan::Chip chip = floorplan::buildMiniChip(1);
            sim::Simulation simulation(chip, testConfig());
            return sim::runSweep(simulation, kBenchmarks, kPolicies,
                                 false, 1);
        }();
        return ref;
    }

    sim::SweepResult served(int jobs)
    {
        Client client;
        std::string err;
        EXPECT_TRUE(client.connect(server->socketPath(), &err))
            << err;
        sim::SweepResult out;
        EXPECT_TRUE(client.sweep(testSweepRequest(jobs), out, &err))
            << err;
        return out;
    }

    std::unique_ptr<Server> server;
};

TEST_F(ServeDeterminism, ServedSweepMatchesDirectAtEveryJobsCount)
{
    for (int jobs : {1, 4}) {
        sim::SweepResult grid = served(jobs);
        expectBitIdentical(reference(), grid);
    }
}

TEST_F(ServeDeterminism, WarmRepeatIsBitIdenticalAndReusesContext)
{
    const sim::SweepResult cold = served(4);
    const sim::SweepResult warm = served(4);
    expectBitIdentical(cold, warm);
    expectBitIdentical(reference(), warm);

    const StatsReplyMsg stats = server->statsSnapshot();
    EXPECT_EQ(stats.requestsSweep, 2u);
    EXPECT_EQ(stats.cellsServed,
              2 * kBenchmarks.size() * kPolicies.size());
    EXPECT_EQ(stats.contextsBuilt, 1u);  // one setup blob
    EXPECT_EQ(stats.contextsReused, 1u); // the warm repeat
}

TEST_F(ServeDeterminism, ConcurrentClientsBothGetIdenticalGrids)
{
    sim::SweepResult a, b;
    std::thread ta([&] { a = served(4); });
    std::thread tb([&] { b = served(1); });
    ta.join();
    tb.join();
    expectBitIdentical(reference(), a);
    expectBitIdentical(reference(), b);
}

TEST_F(ServeDeterminism, ServedSingleRunMatchesDirect)
{
    RunMsg req;
    req.setup = testSetup();
    req.benchmark = "fft";
    req.policy = static_cast<std::uint32_t>(core::PolicyKind::OracT);

    Client client;
    std::string err;
    ASSERT_TRUE(client.connect(server->socketPath(), &err)) << err;
    sim::RunResult servedRun;
    ASSERT_TRUE(client.run(req, servedRun, &err)) << err;

    floorplan::Chip chip = floorplan::buildMiniChip(1);
    sim::Simulation simulation(chip, testConfig());
    sim::RunResult direct =
        simulation.run(workload::profileByName("fft"),
                       core::PolicyKind::OracT, {});
    EXPECT_EQ(cache::encodeRunResult(servedRun),
              cache::encodeRunResult(direct));
}

TEST_F(ServeDeterminism, InvalidRequestsGetErrorsNotACrash)
{
    Client client;
    std::string err;
    ASSERT_TRUE(client.connect(server->socketPath(), &err)) << err;

    // Unknown benchmark.
    RunMsg bad;
    bad.setup = testSetup();
    bad.benchmark = "no_such_benchmark";
    bad.policy = 0;
    sim::RunResult out;
    EXPECT_FALSE(client.run(bad, out, &err));
    EXPECT_NE(err.find("no_such_benchmark"), std::string::npos);

    // Garbage setup blob.
    RunMsg badSetup;
    badSetup.setup = {1, 2, 3};
    badSetup.benchmark = "fft";
    badSetup.policy = 0;
    EXPECT_FALSE(client.run(badSetup, out, &err));

    // Cell index past the grid.
    SweepMsg badCells = testSweepRequest(1);
    badCells.cells = {999};
    sim::SweepResult sweepOut;
    EXPECT_FALSE(client.sweep(badCells, sweepOut, &err));

    // The daemon survived all of it and still serves correctly.
    EXPECT_TRUE(client.ping(&err)) << err;
    expectBitIdentical(reference(), served(1));

    EXPECT_EQ(server->statsSnapshot().requestsRejected, 3u);
}

TEST_F(ServeDeterminism, SweepCellSubsetFillsOnlyThoseSlots)
{
    SweepMsg req = testSweepRequest(1);
    req.cells = {0, 3}; // (rayt, all-on) and (fft, oracT)

    Client client;
    std::string err;
    ASSERT_TRUE(client.connect(server->socketPath(), &err)) << err;
    sim::SweepResult out;
    ASSERT_TRUE(client.sweep(req, out, &err)) << err;

    const sim::SweepResult &ref = reference();
    EXPECT_EQ(cache::encodeRunResult(out.results[0][0]),
              cache::encodeRunResult(ref.results[0][0]));
    EXPECT_EQ(cache::encodeRunResult(out.results[1][1]),
              cache::encodeRunResult(ref.results[1][1]));
    // Unswept slot stays default-constructed.
    EXPECT_TRUE(out.results[2][0].benchmark.empty());
}

TEST_F(ServeDeterminism, ShutdownFrameDrainsTheServer)
{
    // Queue a sweep, then a shutdown from a second client: the
    // request must complete (drain semantics), then the server must
    // exit and release the socket. Both clients connect before the
    // drain starts (a draining server stops accepting).
    Client stopper;
    std::string err;
    ASSERT_TRUE(stopper.connect(server->socketPath(), &err)) << err;

    sim::SweepResult grid;
    std::string sweepErr;
    std::thread sweeper([&] {
        Client client;
        std::string cerr;
        if (!client.connect(server->socketPath(), &cerr)) {
            sweepErr = cerr;
            return;
        }
        if (!client.sweep(testSweepRequest(4), grid, &cerr))
            sweepErr = cerr;
    });

    // Give the sweep time to reach the server's queue so the drain
    // actually has something pending (either outcome of the race is
    // correct; this just makes the interesting path the common one).
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    ASSERT_TRUE(stopper.shutdownServer(&err)) << err;

    sweeper.join();
    server->wait();
    EXPECT_TRUE(sweepErr.empty()) << sweepErr;
    expectBitIdentical(reference(), grid);

    // The socket is gone: a fresh connect must fail.
    Client late;
    EXPECT_FALSE(late.connect(server->socketPath(), &err));
    server.reset();
}

} // namespace
} // namespace serve
} // namespace tg
