/** @file Unit and property tests for the dense matrix / LU solver. */

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/matrix.hh"
#include "common/rng.hh"

namespace tg {
namespace {

TEST(Matrix, IdentityAndAccess)
{
    auto m = Matrix::identity(3);
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_EQ(m.at(0, 0), 1.0);
    EXPECT_EQ(m.at(0, 1), 0.0);
    m.at(1, 2) = 5.0;
    EXPECT_EQ(m(1, 2), 5.0);
}

TEST(Matrix, MultiplyKnownSystem)
{
    Matrix m(2, 3, 0.0);
    m(0, 0) = 1.0;
    m(0, 1) = 2.0;
    m(0, 2) = 3.0;
    m(1, 0) = 4.0;
    m(1, 1) = 5.0;
    m(1, 2) = 6.0;
    auto y = m.multiply({1.0, 1.0, 1.0});
    ASSERT_EQ(y.size(), 2u);
    EXPECT_DOUBLE_EQ(y[0], 6.0);
    EXPECT_DOUBLE_EQ(y[1], 15.0);
}

TEST(Matrix, MaxAbsDiff)
{
    auto a = Matrix::identity(2);
    auto b = Matrix::identity(2);
    b(1, 0) = 0.25;
    EXPECT_DOUBLE_EQ(a.maxAbsDiff(b), 0.25);
}

TEST(MatrixDeath, OutOfRangeAccessPanics)
{
    auto m = Matrix::identity(2);
    EXPECT_DEATH(m.at(2, 0), "out of range");
}

TEST(Lu, SolvesKnownSystem)
{
    // [2 1; 1 3] x = [5; 10] -> x = [1; 3]
    Matrix a(2, 2);
    a(0, 0) = 2.0;
    a(0, 1) = 1.0;
    a(1, 0) = 1.0;
    a(1, 1) = 3.0;
    LuSolver lu(a);
    auto x = lu.solve({5.0, 10.0});
    EXPECT_NEAR(x[0], 1.0, 1e-12);
    EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, RequiresPivoting)
{
    // Zero on the leading diagonal forces a row swap.
    Matrix a(2, 2);
    a(0, 0) = 0.0;
    a(0, 1) = 1.0;
    a(1, 0) = 1.0;
    a(1, 1) = 0.0;
    LuSolver lu(a);
    auto x = lu.solve({3.0, 7.0});
    EXPECT_NEAR(x[0], 7.0, 1e-12);
    EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, IdentitySolveIsIdentity)
{
    LuSolver lu(Matrix::identity(5));
    std::vector<double> b = {1, 2, 3, 4, 5};
    auto x = lu.solve(b);
    for (std::size_t i = 0; i < b.size(); ++i)
        EXPECT_DOUBLE_EQ(x[i], b[i]);
}

TEST(Lu, SolveInPlaceMatchesSolve)
{
    Rng rng(1);
    Matrix a(4, 4);
    for (std::size_t r = 0; r < 4; ++r) {
        for (std::size_t c = 0; c < 4; ++c)
            a(r, c) = rng.uniform(-1.0, 1.0);
        a(r, r) += 5.0;
    }
    LuSolver lu(a);
    std::vector<double> b = {1.0, -2.0, 0.5, 3.0};
    auto x1 = lu.solve(b);
    auto x2 = b;
    lu.solveInPlace(x2);
    for (std::size_t i = 0; i < b.size(); ++i)
        EXPECT_DOUBLE_EQ(x1[i], x2[i]);
}

TEST(LuDeath, SingularMatrixPanics)
{
    Matrix a(2, 2, 0.0);
    a(0, 0) = 1.0;
    a(0, 1) = 2.0;
    a(1, 0) = 2.0;
    a(1, 1) = 4.0;  // rank 1
    EXPECT_DEATH(LuSolver lu(a), "singular");
}

TEST(LuDeath, NonSquareIsFatal)
{
    Matrix a(2, 3, 1.0);
    EXPECT_EXIT(LuSolver lu(a), ::testing::ExitedWithCode(1),
                "square");
}

TEST(LuDeath, WrongRhsSizePanics)
{
    LuSolver lu(Matrix::identity(3));
    std::vector<double> b = {1.0, 2.0};
    EXPECT_DEATH(lu.solve(b), "rhs size");
}

/** Property sweep: random diagonally-dominant systems solve to
 *  machine-precision residuals across sizes. */
class LuResidual : public ::testing::TestWithParam<int>
{
};

TEST_P(LuResidual, RandomSystemResidualIsTiny)
{
    int n = GetParam();
    Rng rng(static_cast<std::uint64_t>(n) * 7919u);
    Matrix a(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) {
        for (int c = 0; c < n; ++c)
            a(static_cast<std::size_t>(r),
              static_cast<std::size_t>(c)) = rng.uniform(-1.0, 1.0);
        a(static_cast<std::size_t>(r), static_cast<std::size_t>(r)) +=
            n;
    }
    std::vector<double> x_true(static_cast<std::size_t>(n));
    for (auto &v : x_true)
        v = rng.uniform(-10.0, 10.0);
    auto b = a.multiply(x_true);

    LuSolver lu(a);
    auto x = lu.solve(b);
    auto b_check = a.multiply(x);
    double scale = 0.0;
    for (double v : b)
        scale = std::max(scale, std::fabs(v));
    for (int i = 0; i < n; ++i)
        EXPECT_NEAR(b_check[static_cast<std::size_t>(i)],
                    b[static_cast<std::size_t>(i)],
                    1e-10 * std::max(1.0, scale));
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuResidual,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 33, 64,
                                           129));

} // namespace
} // namespace tg
