/** @file Unit and property tests for the floorplan model. */

#include <set>
#include <utility>

#include <gtest/gtest.h>

#include "floorplan/floorplan.hh"
#include "floorplan/power8.hh"

namespace tg {
namespace floorplan {
namespace {

TEST(Rect, ContainsAndOverlap)
{
    Rect r{1.0, 2.0, 3.0, 4.0};
    EXPECT_TRUE(r.contains(1.0, 2.0));   // closed lower/left
    EXPECT_FALSE(r.contains(4.0, 2.0));  // open upper/right
    EXPECT_TRUE(r.contains(2.5, 5.9));
    EXPECT_FALSE(r.contains(0.9, 3.0));

    Rect o{3.5, 5.0, 2.0, 2.0};
    EXPECT_TRUE(r.overlaps(o));
    Rect far{10.0, 10.0, 1.0, 1.0};
    EXPECT_FALSE(r.overlaps(far));
    Rect touching{4.0, 2.0, 1.0, 1.0};  // shares an edge only
    EXPECT_FALSE(r.overlaps(touching));
}

TEST(Rect, AreaCentreDistance)
{
    Rect a{0.0, 0.0, 2.0, 2.0};
    Rect b{3.0, 4.0, 2.0, 2.0};
    EXPECT_DOUBLE_EQ(a.area(), 4.0);
    EXPECT_DOUBLE_EQ(a.cx(), 1.0);
    EXPECT_DOUBLE_EQ(a.cy(), 1.0);
    EXPECT_DOUBLE_EQ(a.centreDistance(b), 5.0);
}

TEST(UnitKind, NamesAndLogicClassification)
{
    EXPECT_STREQ(unitKindName(UnitKind::Exu), "EXU");
    EXPECT_STREQ(unitKindName(UnitKind::L3), "L3");
    EXPECT_TRUE(isLogicUnit(UnitKind::Ifu));
    EXPECT_TRUE(isLogicUnit(UnitKind::Lsu));
    EXPECT_FALSE(isLogicUnit(UnitKind::L2));
    EXPECT_FALSE(isLogicUnit(UnitKind::Mc));
}

TEST(Builder, MinimalValidPlan)
{
    FloorplanBuilder b(10.0, 10.0);
    b.addDomain("d0", DomainKind::Core);
    b.addBlock("blk", UnitKind::Exu, {0.0, 0.0, 10.0, 10.0}, 0, 0);
    b.addVr("vr", {4.9, 4.9, 0.2, 0.2}, 0);
    auto fp = b.build();
    EXPECT_EQ(fp.blocks().size(), 1u);
    EXPECT_EQ(fp.vrs().size(), 1u);
    EXPECT_EQ(fp.vrs()[0].hostBlock, 0);
    EXPECT_FALSE(fp.vrs()[0].memorySide);
    EXPECT_EQ(fp.domains()[0].blocks.size(), 1u);
}

TEST(BuilderDeath, OverlappingBlocksAreFatal)
{
    FloorplanBuilder b(10.0, 10.0);
    b.addDomain("d0", DomainKind::Core);
    b.addBlock("a", UnitKind::Exu, {0.0, 0.0, 6.0, 10.0}, 0);
    b.addBlock("b", UnitKind::Lsu, {5.0, 0.0, 5.0, 10.0}, 0);
    b.addVr("vr", {1.0, 1.0, 0.2, 0.2}, 0);
    EXPECT_EXIT(b.build(), ::testing::ExitedWithCode(1), "overlap");
}

TEST(BuilderDeath, BlockOutsideDieIsFatal)
{
    FloorplanBuilder b(10.0, 10.0);
    b.addDomain("d0", DomainKind::Core);
    b.addBlock("a", UnitKind::Exu, {5.0, 5.0, 6.0, 2.0}, 0);
    EXPECT_EXIT(b.build(), ::testing::ExitedWithCode(1), "beyond");
}

TEST(BuilderDeath, VrOverNothingIsFatal)
{
    FloorplanBuilder b(10.0, 10.0);
    b.addDomain("d0", DomainKind::Core);
    b.addBlock("a", UnitKind::Exu, {0.0, 0.0, 5.0, 5.0}, 0);
    b.addVr("vr", {8.0, 8.0, 0.2, 0.2}, 0);
    EXPECT_EXIT(b.build(), ::testing::ExitedWithCode(1), "no block");
}

TEST(BuilderDeath, VrOverForeignDomainIsFatal)
{
    FloorplanBuilder b(10.0, 10.0);
    b.addDomain("d0", DomainKind::Core);
    b.addDomain("d1", DomainKind::Core);
    b.addBlock("a", UnitKind::Exu, {0.0, 0.0, 5.0, 10.0}, 0);
    b.addBlock("b", UnitKind::Exu, {5.0, 0.0, 5.0, 10.0}, 1);
    b.addVr("vr0", {1.0, 1.0, 0.2, 0.2}, 0);
    b.addVr("vr1", {1.0, 2.0, 0.2, 0.2}, 1);  // over domain-0 silicon
    EXPECT_EXIT(b.build(), ::testing::ExitedWithCode(1),
                "different Vdd-domain");
}

TEST(BuilderDeath, EmptyDomainIsFatal)
{
    FloorplanBuilder b(10.0, 10.0);
    b.addDomain("d0", DomainKind::Core);
    b.addDomain("empty", DomainKind::L3);
    b.addBlock("a", UnitKind::Exu, {0.0, 0.0, 10.0, 10.0}, 0);
    b.addVr("vr", {1.0, 1.0, 0.2, 0.2}, 0);
    EXPECT_EXIT(b.build(), ::testing::ExitedWithCode(1), "no blocks");
}

TEST(Power8, MatchesPaperConfiguration)
{
    auto chip = buildPower8Chip();
    const auto &fp = chip.plan;

    EXPECT_EQ(fp.vrs().size(), 96u);
    EXPECT_EQ(fp.domains().size(), 16u);
    EXPECT_DOUBLE_EQ(fp.area(), 441.0);
    EXPECT_EQ(chip.params.cores, 8);
    EXPECT_DOUBLE_EQ(chip.params.vdd, 1.03);

    int core_domains = 0;
    int l3_domains = 0;
    for (const auto &d : fp.domains()) {
        if (d.kind == DomainKind::Core) {
            ++core_domains;
            EXPECT_EQ(d.vrs.size(), 9u);
            EXPECT_EQ(d.blocks.size(), 5u);  // 4 logic units + L2
        } else {
            ++l3_domains;
            EXPECT_EQ(d.vrs.size(), 3u);
            EXPECT_EQ(d.blocks.size(), 1u);
        }
    }
    EXPECT_EQ(core_domains, 8);
    EXPECT_EQ(l3_domains, 8);
}

TEST(Power8, BlocksTileTheDieExactly)
{
    auto chip = buildPower8Chip();
    EXPECT_NEAR(chip.plan.blockArea(), chip.plan.area(), 1e-9);
}

TEST(Power8, EveryVrHasHostAndSide)
{
    auto chip = buildPower8Chip();
    int memory_side = 0;
    for (const auto &vr : chip.plan.vrs()) {
        EXPECT_GE(vr.hostBlock, 0);
        EXPECT_GE(vr.domain, 0);
        if (vr.memorySide)
            ++memory_side;
    }
    // 3 of 9 per core domain sit over the L2 (24) and every L3-bank
    // VR is memory-side (24).
    EXPECT_EQ(memory_side, 48);
}

TEST(Power8, BlockLookupsWork)
{
    auto chip = buildPower8Chip();
    const auto &fp = chip.plan;
    int idx = fp.blockIndex("core0.exu");
    EXPECT_EQ(fp.blocks()[static_cast<std::size_t>(idx)].kind,
              UnitKind::Exu);
    EXPECT_EQ(fp.blocksOfKind(UnitKind::L3).size(), 8u);
    EXPECT_EQ(fp.blocksOfKind(UnitKind::Exu).size(), 8u);
    EXPECT_EQ(fp.blocksOfKind(UnitKind::Mc).size(), 2u);

    // Point lookups: the centre of the die sits in the NoC spine.
    int centre = fp.blockAt(10.5, 10.5);
    ASSERT_GE(centre, 0);
    EXPECT_EQ(fp.blocks()[static_cast<std::size_t>(centre)].kind,
              UnitKind::Noc);
}

TEST(Power8, UniqueNames)
{
    auto chip = buildPower8Chip();
    std::set<std::string> names;
    for (const auto &b : chip.plan.blocks())
        EXPECT_TRUE(names.insert(b.name).second) << b.name;
    for (const auto &vr : chip.plan.vrs())
        EXPECT_TRUE(names.insert(vr.name).second) << vr.name;
}

TEST(Power8Death, UnknownBlockNameIsFatal)
{
    auto chip = buildPower8Chip();
    EXPECT_EXIT(chip.plan.blockIndex("nope"),
                ::testing::ExitedWithCode(1), "no block");
}

/** Mini chips across supported core counts stay structurally sound. */
class MiniChip : public ::testing::TestWithParam<int>
{
};

TEST_P(MiniChip, StructureScalesWithCores)
{
    int cores = GetParam();
    auto chip = buildMiniChip(cores);
    EXPECT_EQ(chip.params.cores, cores);
    EXPECT_EQ(chip.plan.domains().size(),
              static_cast<std::size_t>(2 * cores));
    EXPECT_EQ(chip.plan.vrs().size(),
              static_cast<std::size_t>(12 * cores));
    EXPECT_NEAR(chip.plan.blockArea(), chip.plan.area(), 1e-9);
    EXPECT_GT(chip.params.tdp, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Cores, MiniChip, ::testing::Values(1, 2, 3, 4));

/** Chip variants used by the regulator-count ablation. */
class ChipVariant : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(ChipVariant, VrCountsScale)
{
    auto [per_core, per_l3] = GetParam();
    auto chip = buildPower8ChipVariant(per_core, per_l3);
    EXPECT_EQ(chip.plan.vrs().size(),
              static_cast<std::size_t>(8 * (per_core + per_l3)));
    EXPECT_EQ(chip.plan.domains().size(), 16u);
    for (const auto &d : chip.plan.domains()) {
        if (d.kind == DomainKind::Core)
            EXPECT_EQ(d.vrs.size(),
                      static_cast<std::size_t>(per_core));
        else
            EXPECT_EQ(d.vrs.size(),
                      static_cast<std::size_t>(per_l3));
    }
    EXPECT_NEAR(chip.plan.blockArea(), chip.plan.area(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Counts, ChipVariant,
    ::testing::Values(std::make_pair(4, 2), std::make_pair(6, 2),
                      std::make_pair(9, 3), std::make_pair(12, 4),
                      std::make_pair(16, 5)));

TEST(ChipVariantDeath, RejectsZeroVrs)
{
    EXPECT_EXIT(buildPower8ChipVariant(0, 3),
                ::testing::ExitedWithCode(1), "at least one VR");
}

TEST(MiniChipDeath, RejectsBadCoreCounts)
{
    EXPECT_EXIT(buildMiniChip(0), ::testing::ExitedWithCode(1),
                "1..4");
    EXPECT_EXIT(buildMiniChip(5), ::testing::ExitedWithCode(1),
                "1..4");
}

} // namespace
} // namespace floorplan
} // namespace tg
