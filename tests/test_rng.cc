/** @file Unit tests for the deterministic random source. */

#include <gtest/gtest.h>

#include "common/rng.hh"

namespace tg {
namespace {

TEST(Rng, SameSeedSameStream)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.uniform() == b.uniform())
            ++same;
    EXPECT_LT(same, 5);
}

TEST(Rng, UniformRangeRespected)
{
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        double x = rng.uniform(2.0, 5.0);
        EXPECT_GE(x, 2.0);
        EXPECT_LT(x, 5.0);
    }
}

TEST(Rng, UniformIntInclusiveBounds)
{
    Rng rng(4);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        int v = rng.uniformInt(1, 4);
        EXPECT_GE(v, 1);
        EXPECT_LE(v, 4);
        saw_lo |= v == 1;
        saw_hi |= v == 4;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(5);
    double sum = 0.0;
    double sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double x = rng.gaussian(3.0, 2.0);
        sum += x;
        sq += x * x;
    }
    double mean = sum / n;
    double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 3.0, 0.1);
    EXPECT_NEAR(var, 4.0, 0.25);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(6);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        if (rng.bernoulli(0.3))
            ++hits;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ForkedChildrenAreIndependent)
{
    Rng parent(7);
    Rng c1 = parent.fork(1);
    Rng c2 = parent.fork(1);  // same salt, later parent state
    // Children from different fork calls should not produce the
    // same stream.
    int same = 0;
    for (int i = 0; i < 50; ++i)
        if (c1.uniform() == c2.uniform())
            ++same;
    EXPECT_LT(same, 3);
}

TEST(Rng, ForkIsDeterministicGivenParentState)
{
    Rng p1(11);
    Rng p2(11);
    Rng c1 = p1.fork(9);
    Rng c2 = p2.fork(9);
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(c1.uniform(), c2.uniform());
}

} // namespace
} // namespace tg
