/** @file Unit tests for the placement optimiser. */

#include <gtest/gtest.h>

#include "pdn/placement.hh"
#include "power/model.hh"
#include "vreg/design.hh"

namespace tg {
namespace pdn {
namespace {

class PlacementTest : public ::testing::Test
{
  protected:
    PlacementTest() : chip(floorplan::buildMiniChip(1)), pm(chip) {}

    /** A logic-heavy load map for domain 0. */
    std::vector<Watts>
    logicLoad() const
    {
        std::vector<Watts> bp(chip.plan.blocks().size(), 0.0);
        for (int b : chip.plan.domains()[0].blocks) {
            const auto &blk =
                chip.plan.blocks()[static_cast<std::size_t>(b)];
            bp[static_cast<std::size_t>(b)] =
                floorplan::isLogicUnit(blk.kind) ? 3.0 : 0.5;
        }
        return bp;
    }

    floorplan::Chip chip;
    power::PowerModel pm;
};

TEST_F(PlacementTest, NeverWorseThanUniform)
{
    auto res = optimizePlacement(chip, 0, vreg::fivrDesign(),
                                 logicLoad());
    EXPECT_LE(res.finalNoise, res.initialNoise + 1e-12);
    EXPECT_GE(res.iterations, 1);
}

TEST_F(PlacementTest, FindsImprovementForSkewedLoad)
{
    // A strongly skewed load leaves room to improve on the uniform
    // lattice; the optimiser must find some of it.
    auto res = optimizePlacement(chip, 0, vreg::fivrDesign(),
                                 logicLoad());
    EXPECT_GT(res.acceptedMoves, 0);
    EXPECT_LT(res.finalNoise, res.initialNoise);
    EXPECT_GT(res.meanDisplacementMm, 0.0);
}

TEST_F(PlacementTest, KeepsSiteCountAndFootprint)
{
    auto res = optimizePlacement(chip, 0, vreg::fivrDesign(),
                                 logicLoad());
    const auto &dom = chip.plan.domains()[0];
    ASSERT_EQ(res.sites.size(), dom.vrs.size());
    double edge = chip.plan.vrs()[0].rect.w;
    for (const auto &s : res.sites) {
        EXPECT_NEAR(s.w, edge, 1e-12);
        EXPECT_NEAR(s.h, edge, 1e-12);
    }
}

TEST_F(PlacementTest, OptimisedSitesEvaluateToReportedNoise)
{
    auto bp = logicLoad();
    auto res =
        optimizePlacement(chip, 0, vreg::fivrDesign(), bp);
    DomainPdn pdn(chip, 0, vreg::fivrDesign(), {}, res.sites);
    EXPECT_NEAR(pdn.steadyMaxNoise(pdn.nodeCurrents(bp)),
                res.finalNoise, 1e-9);
}

TEST_F(PlacementTest, DeterministicResult)
{
    auto a = optimizePlacement(chip, 0, vreg::fivrDesign(),
                               logicLoad());
    auto b = optimizePlacement(chip, 0, vreg::fivrDesign(),
                               logicLoad());
    EXPECT_EQ(a.finalNoise, b.finalNoise);
    EXPECT_EQ(a.acceptedMoves, b.acceptedMoves);
}

TEST_F(PlacementTest, CustomSitesRejectWrongCount)
{
    std::vector<floorplan::Rect> bad(3, {1.0, 1.0, 0.2, 0.2});
    EXPECT_EXIT(DomainPdn(chip, 0, vreg::fivrDesign(), {}, bad),
                ::testing::ExitedWithCode(1), "site count");
}

TEST(PlacementFullChip, UniformNearOptimalOnEvaluationChip)
{
    // The paper's Section-5 observation: the uniform lattice is
    // within a fraction of a percent of the optimised layout.
    auto chip = floorplan::buildPower8Chip();
    power::PowerModel pm(chip);
    std::vector<Watts> bp(chip.plan.blocks().size());
    for (std::size_t b = 0; b < bp.size(); ++b)
        bp[b] = 0.8 * pm.peakDynamic(static_cast<int>(b));
    auto res =
        optimizePlacement(chip, 0, vreg::fivrDesign(), bp);
    EXPECT_LT(res.initialNoise - res.finalNoise, 0.01);
}

} // namespace
} // namespace pdn
} // namespace tg
