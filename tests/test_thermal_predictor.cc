/** @file Unit tests for the linear thermal predictor (Eqns. 2-3). */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/thermal_predictor.hh"

namespace tg {
namespace core {
namespace {

TEST(Predictor, RecoversExactSlope)
{
    ThermalPredictor p(2);
    for (double d_p : {-0.2, -0.1, 0.1, 0.2}) {
        p.addSample(0, d_p, 25.0 * d_p);
        p.addSample(1, d_p, 31.0 * d_p);
    }
    p.fit();
    EXPECT_NEAR(p.theta(0), 25.0, 1e-9);
    EXPECT_NEAR(p.theta(1), 31.0, 1e-9);
    EXPECT_NEAR(p.rSquared(), 1.0, 1e-12);
}

TEST(Predictor, HighRSquaredWithSmallNoise)
{
    // The paper calibrates the thetas to keep R^2 around 0.99; the
    // fit must reach that on mildly noisy linear data.
    Rng rng(17);
    ThermalPredictor p(4);
    for (int vr = 0; vr < 4; ++vr) {
        double slope = 20.0 + 3.0 * vr;
        for (int s = 0; s < 200; ++s) {
            double d_p = rng.uniform(-0.25, 0.25);
            double d_t = slope * d_p + rng.gaussian(0.0, 0.08);
            p.addSample(vr, d_p, d_t);
        }
    }
    p.fit();
    EXPECT_GT(p.rSquared(), 0.98);
}

TEST(Predictor, AnticipateAppliesLinearModel)
{
    ThermalPredictor p(1);
    p.setTheta(0, 28.0);
    EXPECT_NEAR(p.anticipate(0, 60.0, 0.1), 62.8, 1e-12);
    EXPECT_NEAR(p.anticipate(0, 60.0, -0.1), 57.2, 1e-12);
}

TEST(Predictor, SetThetaOverridesFit)
{
    ThermalPredictor p(1);
    p.addSample(0, 0.1, 2.0);
    p.fit();
    p.setTheta(0, 99.0);
    EXPECT_EQ(p.theta(0), 99.0);
}

TEST(Predictor, MissingSamplesWarnButSurvive)
{
    ThermalPredictor p(2);
    p.addSample(0, 0.1, 2.5);
    p.fit();  // regulator 1 has no samples -> warn, theta stays 0
    EXPECT_NEAR(p.theta(0), 25.0, 1e-9);
    EXPECT_EQ(p.theta(1), 0.0);
}

TEST(PredictorDeath, ValidationBeforeFitPanics)
{
    ThermalPredictor p(1);
    p.addSample(0, 0.1, 2.0);
    EXPECT_DEATH(p.rSquared(), "fit");
}

TEST(PredictorDeath, BadIndicesThrow)
{
    ThermalPredictor p(2);
    EXPECT_ANY_THROW(p.addSample(5, 0.1, 1.0));
    EXPECT_ANY_THROW(p.theta(-1));
}

} // namespace
} // namespace core
} // namespace tg
