/** @file Unit tests for the exec work-scheduling layer. */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <stdexcept>
#include <vector>

#include "common/exec.hh"

namespace tg {
namespace exec {
namespace {

TEST(ExecResolveJobs, ExplicitRequestWins)
{
    setenv("TG_JOBS", "7", 1);
    EXPECT_EQ(resolveJobs(3), 3);
    unsetenv("TG_JOBS");
}

TEST(ExecResolveJobs, EnvOverrideApplies)
{
    setenv("TG_JOBS", "5", 1);
    EXPECT_EQ(resolveJobs(0), 5);
    EXPECT_EQ(resolveJobs(-1), 5);
    unsetenv("TG_JOBS");
}

TEST(ExecResolveJobs, InvalidEnvFallsBackToHardware)
{
    setenv("TG_JOBS", "banana", 1);
    EXPECT_EQ(resolveJobs(0), hardwareThreads());
    setenv("TG_JOBS", "-3", 1);
    EXPECT_EQ(resolveJobs(0), hardwareThreads());
    unsetenv("TG_JOBS");
    EXPECT_EQ(resolveJobs(0), hardwareThreads());
    EXPECT_GE(hardwareThreads(), 1);
}

TEST(ExecResolveJobs, NonNumericEnvFallsBackToHardware)
{
    for (const char *bad : {"", " ", "4x", "x4", "1.5", "0b10"}) {
        setenv("TG_JOBS", bad, 1);
        EXPECT_EQ(resolveJobs(0), hardwareThreads())
            << "TG_JOBS='" << bad << "'";
    }
    unsetenv("TG_JOBS");
}

TEST(ExecResolveJobs, NonPositiveEnvFallsBackToHardware)
{
    for (const char *bad : {"0", "-1", "-4096"}) {
        setenv("TG_JOBS", bad, 1);
        EXPECT_EQ(resolveJobs(0), hardwareThreads())
            << "TG_JOBS='" << bad << "'";
    }
    unsetenv("TG_JOBS");
}

TEST(ExecResolveJobs, AbsurdlyLargeEnvIsClamped)
{
    // Just past the cap, a fat-fingered value, and a strtol overflow:
    // all clamp to the 4096 ceiling instead of spawning that many
    // threads (or silently doing something else).
    for (const char *huge : {"4097", "400000", "99999999999999999999"}) {
        setenv("TG_JOBS", huge, 1);
        EXPECT_EQ(resolveJobs(0), 4096) << "TG_JOBS='" << huge << "'";
    }
    setenv("TG_JOBS", "4096", 1);
    EXPECT_EQ(resolveJobs(0), 4096);  // exactly at the cap: no clamp
    unsetenv("TG_JOBS");
}

TEST(ExecTaskSeed, DistinctPerTaskAndBase)
{
    std::set<std::uint64_t> seen;
    for (std::uint64_t base : {1ull, 2ull, 0x7469ull})
        for (std::uint64_t task = 0; task < 64; ++task)
            seen.insert(taskSeed(base, task));
    EXPECT_EQ(seen.size(), 3u * 64u);
    EXPECT_NE(taskSeed(1, 0), 1u);
}

TEST(ExecThreadPool, RunsEveryTask)
{
    std::atomic<int> sum{0};
    {
        ThreadPool pool(4);
        for (int i = 0; i < 100; ++i)
            pool.submit([&sum, i] { sum += i; });
        pool.wait();
        EXPECT_EQ(sum.load(), 4950);
    }
}

TEST(ExecThreadPool, BoundedQueueCompletesEverything)
{
    // Capacity 1 forces the submitter to block and hand off work in
    // lock-step; every task must still run exactly once.
    std::vector<std::atomic<int>> hits(64);
    ThreadPool pool(2, 1);
    for (std::size_t i = 0; i < hits.size(); ++i)
        pool.submit([&hits, i] { hits[i]++; });
    pool.wait();
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ExecThreadPool, WorkerIndexIsStableAndInRange)
{
    ThreadPool pool(3);
    EXPECT_EQ(ThreadPool::workerIndex(), -1); // not a pool thread
    std::atomic<bool> bad{false};
    for (int i = 0; i < 200; ++i)
        pool.submit([&bad] {
            int w = ThreadPool::workerIndex();
            if (w < 0 || w >= 3)
                bad = true;
        });
    pool.wait();
    EXPECT_FALSE(bad.load());
}

TEST(ExecThreadPool, WaitRethrowsFirstTaskError)
{
    ThreadPool pool(2);
    for (int i = 0; i < 8; ++i)
        pool.submit([i] {
            if (i == 3)
                throw std::runtime_error("task 3 failed");
        });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // The pool stays usable after the error is consumed.
    std::atomic<int> ran{0};
    pool.submit([&ran] { ran++; });
    pool.wait();
    EXPECT_EQ(ran.load(), 1);
}

TEST(ExecParallelFor, CoversEachIndexOnceWithValidWorker)
{
    std::vector<std::atomic<int>> hits(257);
    std::atomic<bool> bad_worker{false};
    parallelFor(hits.size(), 4, [&](int worker, std::size_t i) {
        if (worker < 0 || worker >= 4)
            bad_worker = true;
        hits[i]++;
    });
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
    EXPECT_FALSE(bad_worker.load());
}

TEST(ExecParallelFor, SingleJobRunsInlineInOrder)
{
    std::vector<std::size_t> order;
    parallelFor(5, 1, [&](int worker, std::size_t i) {
        EXPECT_EQ(worker, 0);
        order.push_back(i);
    });
    EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ExecParallelFor, EmptyRangeAndErrorPropagation)
{
    parallelFor(0, 8, [](int, std::size_t) { FAIL(); });
    EXPECT_THROW(parallelFor(16, 4,
                             [](int, std::size_t i) {
                                 if (i == 9)
                                     throw std::runtime_error("boom");
                             }),
                 std::runtime_error);
}

TEST(ExecProgressSink, CountsCompletionsQuietly)
{
    ProgressSink sink(false, 10);
    parallelFor(10, 4,
                [&](int, std::size_t) { sink.completed("line"); });
    EXPECT_EQ(sink.done(), 10u);
}

TEST(ExecStatsSink, AccumulatesFromManyThreads)
{
    StatsSink sink;
    parallelFor(1000, 8, [&](int, std::size_t i) {
        sink.add(static_cast<double>(i % 10));
    });
    auto stats = sink.snapshot();
    EXPECT_EQ(stats.count(), 1000u);
    // Welford folds samples in completion order, so the mean only
    // matches up to accumulated rounding.
    EXPECT_NEAR(stats.mean(), 4.5, 1e-9);
    EXPECT_DOUBLE_EQ(stats.min(), 0.0);
    EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

} // namespace
} // namespace exec
} // namespace tg
