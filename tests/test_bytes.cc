/**
 * @file
 * Edge cases of the common/bytes.hh codec primitives: zero-length
 * payloads, the maximum-length rejection boundary, and ByteReader's
 * sticky-fail contract after a short read. The round-trip happy path
 * is exercised constantly by the cache and protocol suites; this
 * file pins the failure-mode behaviour those layers rely on.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "common/bytes.hh"

namespace tg {
namespace bytes {
namespace {

TEST(Bytes, ZeroLengthStringRoundTrips)
{
    ByteWriter w;
    w.str("");
    w.u32(0xABCDu); // trailing field proves the cursor is right
    const std::vector<std::uint8_t> buf = w.take();
    EXPECT_EQ(buf.size(), 8u + 4u); // length prefix + no payload

    ByteReader r(buf.data(), buf.size());
    EXPECT_EQ(r.str(), "");
    EXPECT_EQ(r.u32(), 0xABCDu);
    EXPECT_TRUE(r.exhausted());
}

TEST(Bytes, ZeroLengthBlobAndVectorsRoundTrip)
{
    ByteWriter w;
    w.blob({});
    w.f64vec({});
    w.i32vec({});
    const std::vector<std::uint8_t> buf = w.take();

    ByteReader r(buf.data(), buf.size());
    std::vector<std::uint8_t> blob{1, 2, 3};
    EXPECT_TRUE(r.blob(blob));
    EXPECT_TRUE(blob.empty()); // previous contents replaced
    std::vector<double> dv{1.0};
    EXPECT_TRUE(r.f64vec(dv));
    EXPECT_TRUE(dv.empty());
    std::vector<int> iv{7};
    EXPECT_TRUE(r.i32vec(iv));
    EXPECT_TRUE(iv.empty());
    EXPECT_TRUE(r.exhausted());
}

TEST(Bytes, EmptyBufferReaderIsExhaustedButOk)
{
    ByteReader r(nullptr, 0);
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.exhausted());
    // First read past the end flips to failed.
    EXPECT_EQ(r.u8(), 0u);
    EXPECT_FALSE(r.ok());
    EXPECT_FALSE(r.exhausted()); // exhausted() requires ok()
}

/** A buffer holding only a length prefix claiming `len` elements. */
std::vector<std::uint8_t> lengthPrefixOnly(std::uint64_t len)
{
    ByteWriter w;
    w.u64(len);
    return w.take();
}

TEST(Bytes, StringAtMaxDecodedLenBoundaryIsRejected)
{
    // One past the cap must fail *before* any allocation attempt —
    // the length word alone decides.
    const std::vector<std::uint8_t> over =
        lengthPrefixOnly(kMaxDecodedLen + 1);
    ByteReader r(over.data(), over.size());
    (void)r.str();
    EXPECT_FALSE(r.ok());

    // Exactly the cap passes the length check and then fails the
    // bounds check (no payload bytes follow), never the cap check.
    const std::vector<std::uint8_t> at =
        lengthPrefixOnly(kMaxDecodedLen);
    ByteReader r2(at.data(), at.size());
    (void)r2.str();
    EXPECT_FALSE(r2.ok()); // short read, not cap rejection
}

TEST(Bytes, BlobOverMaxDecodedLenIsRejected)
{
    const std::vector<std::uint8_t> over =
        lengthPrefixOnly(kMaxDecodedLen + 1);
    ByteReader r(over.data(), over.size());
    std::vector<std::uint8_t> out;
    EXPECT_FALSE(r.blob(out));
    EXPECT_FALSE(r.ok());
}

TEST(Bytes, VectorLengthOverflowCannotPassBoundsCheck)
{
    // A huge element count whose byte size would overflow 64 bits
    // must still be rejected: the cap check fires before the
    // (len * 8) arithmetic could wrap.
    const std::vector<std::uint8_t> huge =
        lengthPrefixOnly(~0ull / 2);
    ByteReader r(huge.data(), huge.size());
    std::vector<double> out;
    EXPECT_FALSE(r.f64vec(out));
    EXPECT_FALSE(r.ok());
}

TEST(Bytes, ShortReadIsSticky)
{
    ByteWriter w;
    w.u32(7);
    const std::vector<std::uint8_t> buf = w.take();

    ByteReader r(buf.data(), buf.size());
    EXPECT_EQ(r.u32(), 7u);
    // The u64 read needs 8 bytes; none remain.
    EXPECT_EQ(r.u64(), 0u);
    EXPECT_FALSE(r.ok());

    // Sticky: every subsequent read fails and returns the zero
    // value, even ones that would fit a fresh reader.
    EXPECT_EQ(r.u8(), 0u);
    EXPECT_EQ(r.u32(), 0u);
    EXPECT_EQ(r.f64(), 0.0);
    EXPECT_EQ(r.str(), "");
    std::vector<std::uint8_t> blob;
    EXPECT_FALSE(r.blob(blob));
    EXPECT_FALSE(r.ok());
    EXPECT_FALSE(r.exhausted());
}

TEST(Bytes, StickyFailSurvivesAvailableData)
{
    // Fail mid-buffer (oversized string length), then confirm the
    // remaining valid bytes are unreachable: a decoder must never
    // resync inside a message it has already rejected.
    ByteWriter w;
    w.u64(kMaxDecodedLen + 1); // poisoned string length
    w.u32(42);                 // perfectly readable otherwise
    const std::vector<std::uint8_t> buf = w.take();

    ByteReader r(buf.data(), buf.size());
    (void)r.str();
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.u32(), 0u); // not 42: reader stays failed
}

TEST(Bytes, F64BitPatternRoundTrip)
{
    // The codec carries doubles as raw bit patterns; -0.0 and NaN
    // payload bits must survive exactly.
    ByteWriter w;
    w.f64(-0.0);
    const double nan = std::nan("0x5bad");
    w.f64(nan);
    const std::vector<std::uint8_t> buf = w.take();

    ByteReader r(buf.data(), buf.size());
    const double negzero = r.f64();
    std::uint64_t bits = 0;
    std::memcpy(&bits, &negzero, sizeof bits);
    EXPECT_EQ(bits, 0x8000000000000000ull);
    const double back = r.f64();
    std::uint64_t nanBitsIn = 0, nanBitsOut = 0;
    std::memcpy(&nanBitsIn, &nan, sizeof nanBitsIn);
    std::memcpy(&nanBitsOut, &back, sizeof nanBitsOut);
    EXPECT_EQ(nanBitsIn, nanBitsOut);
    EXPECT_TRUE(r.exhausted());
}

} // namespace
} // namespace bytes
} // namespace tg
