/**
 * @file
 * Unit tests for the fault subsystem: scenario schedules, the live
 * injector, the sensor-health monitor, and the governor's degraded
 * decision path under regulator faults.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "core/governor.hh"
#include "core/policy.hh"
#include "fault/injector.hh"
#include "fault/scenario.hh"
#include "floorplan/power8.hh"
#include "pdn/domain_pdn.hh"
#include "sensors/health.hh"
#include "vreg/design.hh"
#include "vreg/network.hh"

namespace tg {
namespace fault {
namespace {

FaultEvent
event(FaultKind kind, int target, Seconds start,
      Seconds duration = kForever, double magnitude = 0.0)
{
    FaultEvent e;
    e.kind = kind;
    e.target = target;
    e.start = start;
    e.duration = duration;
    e.magnitude = magnitude;
    return e;
}

// ---------------------------------------------------------------------
// FaultScenario

TEST(FaultScenario, KindNamesAndClassification)
{
    EXPECT_STREQ(faultKindName(FaultKind::SensorStuckAt),
                 "sensor-stuck-at");
    EXPECT_STREQ(faultKindName(FaultKind::VrStuckOff), "vr-stuck-off");
    EXPECT_TRUE(isSensorFault(FaultKind::SensorDropout));
    EXPECT_FALSE(isSensorFault(FaultKind::VrDerated));
    EXPECT_TRUE(isVrFault(FaultKind::VrStuckOn));
    EXPECT_FALSE(isVrFault(FaultKind::AlertMissed));
    EXPECT_TRUE(isAlertFault(FaultKind::AlertSpurious));
    EXPECT_FALSE(isAlertFault(FaultKind::SensorFrozen));
}

TEST(FaultScenario, AddKeepsEventsSortedByStart)
{
    FaultScenario s;
    s.add(event(FaultKind::VrStuckOff, 1, 2e-3))
        .add(event(FaultKind::SensorDropout, 0, 0.5e-3))
        .add(event(FaultKind::AlertMissed, 0, 1e-3, kForever, 1.0));
    ASSERT_EQ(s.events().size(), 3u);
    EXPECT_EQ(s.events()[0].kind, FaultKind::SensorDropout);
    EXPECT_EQ(s.events()[1].kind, FaultKind::AlertMissed);
    EXPECT_EQ(s.events()[2].kind, FaultKind::VrStuckOff);
    EXPECT_FALSE(s.empty());
    EXPECT_TRUE(FaultScenario().empty());
}

TEST(FaultScenario, EventsForFiltersKindAndTarget)
{
    FaultScenario s;
    s.add(event(FaultKind::VrStuckOff, 3, 1e-3))
        .add(event(FaultKind::VrStuckOff, 4, 2e-3))
        .add(event(FaultKind::VrStuckOn, 3, 0.0));
    auto hits = s.eventsFor(FaultKind::VrStuckOff, 3);
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].start, 1e-3);
    EXPECT_TRUE(s.eventsFor(FaultKind::SensorFrozen, 3).empty());
}

TEST(FaultScenario, ActiveWindowIsHalfOpen)
{
    auto e = event(FaultKind::SensorStuckAt, 0, 1e-3, 1e-3, 90.0);
    EXPECT_FALSE(e.activeAt(0.999e-3));
    EXPECT_TRUE(e.activeAt(1e-3));
    EXPECT_TRUE(e.activeAt(1.999e-3));
    EXPECT_FALSE(e.activeAt(2e-3));

    auto p = event(FaultKind::SensorStuckAt, 0, 1e-3);  // permanent
    EXPECT_TRUE(std::isinf(p.end()));
    EXPECT_TRUE(p.activeAt(1e6));
}

TEST(FaultScenarioDeath, InvalidEventsRejected)
{
    FaultScenario s;
    EXPECT_DEATH(s.add(event(FaultKind::VrStuckOff, -1, 0.0)),
                 "target must be non-negative");
    EXPECT_DEATH(s.add(event(FaultKind::VrStuckOff, 0, -1.0)),
                 "start must be non-negative");
    EXPECT_DEATH(s.add(event(FaultKind::VrStuckOff, 0, 0.0, 0.0)),
                 "duration must be positive");
    EXPECT_DEATH(
        s.add(event(FaultKind::VrDerated, 0, 0.0, kForever, 0.5)),
        "loss multiplier");
    EXPECT_DEATH(
        s.add(event(FaultKind::AlertMissed, 0, 0.0, kForever, 1.5)),
        "probability must be <= 1");
    EXPECT_DEATH(
        s.add(event(FaultKind::SensorNoisy, 0, 0.0, kForever, -1.0)),
        "sigma must be non-negative");
}

TEST(FaultScenario, RandomScenarioIsDeterministicInSeed)
{
    RandomScenarioSpec spec;
    spec.faultsPerSecond = 4000.0;
    spec.sensors = 8;
    spec.vrs = 8;
    spec.domains = 2;

    auto a = randomScenario(17, spec);
    auto b = randomScenario(17, spec);
    ASSERT_EQ(a.events().size(), b.events().size());
    EXPECT_FALSE(a.empty());
    for (std::size_t i = 0; i < a.events().size(); ++i) {
        EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
        EXPECT_EQ(a.events()[i].target, b.events()[i].target);
        EXPECT_EQ(a.events()[i].start, b.events()[i].start);
        EXPECT_EQ(a.events()[i].duration, b.events()[i].duration);
        EXPECT_EQ(a.events()[i].magnitude, b.events()[i].magnitude);
    }
    EXPECT_EQ(a.seed(), b.seed());
}

TEST(FaultScenario, RandomScenarioRespectsRateAndTargets)
{
    RandomScenarioSpec spec;
    spec.faultsPerSecond = 0.0;
    spec.sensors = 4;
    spec.vrs = 4;
    spec.domains = 1;
    EXPECT_TRUE(randomScenario(3, spec).empty());

    spec.faultsPerSecond = 5000.0;
    spec.vrs = 0;       // no regulator population:
    spec.domains = 0;   // every draw must fall back to sensor faults
    auto s = randomScenario(5, spec);
    ASSERT_FALSE(s.empty());
    for (const auto &e : s.events()) {
        EXPECT_TRUE(isSensorFault(e.kind)) << faultKindName(e.kind);
        EXPECT_GE(e.target, 0);
        EXPECT_LT(e.target, spec.sensors);
        EXPECT_GE(e.start, 0.0);
        EXPECT_LT(e.start, spec.horizon);
    }
}

// ---------------------------------------------------------------------
// FaultInjector

TEST(FaultInjector, ActivationTracksTheScheduleWindows)
{
    FaultScenario s;
    s.add(event(FaultKind::VrStuckOff, 2, 1e-3, 1e-3));
    FaultInjector inj(s, {0, 0, 0, 0}, 4, 9);

    inj.advanceTo(0.0);
    EXPECT_FALSE(inj.anyActive());
    EXPECT_FALSE(inj.anyVrFault());
    EXPECT_FALSE(inj.vrFailed(2));

    inj.advanceTo(1e-3);
    EXPECT_TRUE(inj.anyActive());
    EXPECT_TRUE(inj.anyVrFault());
    EXPECT_TRUE(inj.vrFailed(2));
    EXPECT_FALSE(inj.vrFailed(1));

    inj.advanceTo(2.1e-3);  // past the window: fault clears
    EXPECT_FALSE(inj.anyActive());
    EXPECT_FALSE(inj.vrFailed(2));

    EXPECT_EQ(inj.vrCount(), 4);
    EXPECT_EQ(inj.sensorCount(), 4);
    EXPECT_EQ(inj.domainCount(), 1);
}

TEST(FaultInjectorDeath, TimeMustBeMonotonic)
{
    FaultScenario s;
    FaultInjector inj(s, {0}, 1, 1);
    inj.advanceTo(1e-3);
    EXPECT_DEATH(inj.advanceTo(0.5e-3), "monotonic");
}

TEST(FaultInjectorDeath, TargetsOutsideThePopulationRejected)
{
    FaultScenario bad_sensor;
    bad_sensor.add(event(FaultKind::SensorFrozen, 7, 0.0));
    EXPECT_DEATH(FaultInjector(bad_sensor, {0, 0}, 2, 1),
                 "sensor fault target");

    FaultScenario bad_vr;
    bad_vr.add(event(FaultKind::VrStuckOn, 2, 0.0));
    EXPECT_DEATH(FaultInjector(bad_vr, {0, 0}, 2, 1),
                 "VR fault target");

    FaultScenario bad_domain;
    bad_domain.add(event(FaultKind::AlertMissed, 5, 0.0, kForever, 1.0));
    EXPECT_DEATH(FaultInjector(bad_domain, {0, 0}, 2, 1),
                 "alert fault target");
}

TEST(FaultInjector, StuckOffWinsOverStuckOnAndDerate)
{
    FaultScenario s;
    s.add(event(FaultKind::VrStuckOn, 1, 0.0))
        .add(event(FaultKind::VrDerated, 1, 0.0, kForever, 2.0))
        .add(event(FaultKind::VrStuckOff, 1, 0.0));
    FaultInjector inj(s, {0, 0, 0}, 3, 1);
    inj.advanceTo(0.0);
    EXPECT_TRUE(inj.vrFailed(1));
    EXPECT_FALSE(inj.vrStuckOn(1));
    EXPECT_EQ(inj.vrLossMultiplier(1), 1.0);
}

TEST(FaultInjector, OverlappingDeratesCombineByMax)
{
    FaultScenario s;
    s.add(event(FaultKind::VrDerated, 0, 0.0, kForever, 1.5))
        .add(event(FaultKind::VrDerated, 0, 0.0, kForever, 2.5));
    FaultInjector inj(s, {0, 0}, 2, 1);
    inj.advanceTo(0.0);
    EXPECT_EQ(inj.vrLossMultiplier(0), 2.5);
    EXPECT_EQ(inj.vrLossMultiplier(1), 1.0);
}

TEST(FaultInjector, LastSurvivorRuleKeepsOneVrPerDomain)
{
    // Kill every VR of domain 0; leave domain 1 healthy. The
    // lowest-indexed VR of the dark domain must be revived.
    FaultScenario s;
    s.add(event(FaultKind::VrStuckOff, 0, 0.0))
        .add(event(FaultKind::VrStuckOff, 1, 0.0))
        .add(event(FaultKind::VrStuckOff, 2, 0.0));
    FaultInjector inj(s, {0, 0, 0, 1, 1}, 5, 1);
    inj.advanceTo(0.0);
    EXPECT_FALSE(inj.vrFailed(0));  // revived
    EXPECT_TRUE(inj.vrFailed(1));
    EXPECT_TRUE(inj.vrFailed(2));
    EXPECT_FALSE(inj.vrFailed(3));
    EXPECT_FALSE(inj.vrFailed(4));
}

TEST(FaultInjector, StuckAtDriftAndDropoutCorruptions)
{
    FaultScenario s;
    s.add(event(FaultKind::SensorStuckAt, 0, 0.0, kForever, 95.0))
        .add(event(FaultKind::SensorDrift, 1, 1e-3, kForever, 4e3))
        .add(event(FaultKind::SensorDropout, 2, 0.0));
    FaultInjector inj(s, {0, 0, 0, 0}, 4, 1);

    inj.advanceTo(2e-3);
    std::vector<Celsius> r = {60.0, 61.0, 62.0, 63.0};
    inj.corruptSensors(2e-3, 0, r);
    EXPECT_EQ(r[0], 95.0);
    // Drift: 4000 degC/s over the 1 ms since onset = +4 degC.
    EXPECT_NEAR(r[1], 61.0 + 4.0, 1e-9);
    EXPECT_TRUE(std::isnan(r[2]));
    EXPECT_EQ(r[3], 63.0);  // untargeted sensor untouched
}

TEST(FaultInjector, FrozenLatchesFirstReadingAndReArms)
{
    FaultScenario s;
    s.add(event(FaultKind::SensorFrozen, 0, 1e-3, 1e-3));
    FaultInjector inj(s, {0}, 1, 1);

    inj.advanceTo(1e-3);
    std::vector<Celsius> r = {55.0};
    inj.corruptSensors(1e-3, 0, r);
    EXPECT_EQ(r[0], 55.0);  // first corrupted read latches itself

    r[0] = 70.0;
    inj.corruptSensors(1.5e-3, 1, r);
    EXPECT_EQ(r[0], 55.0);  // truth moved; the reading did not

    // Past the window the latch re-arms; a later window of the same
    // event would latch the then-current value afresh.
    inj.advanceTo(3e-3);
    r[0] = 80.0;
    inj.corruptSensors(3e-3, 2, r);
    EXPECT_EQ(r[0], 80.0);
}

TEST(FaultInjector, NoisyCorruptionIsDeterministicPerEpoch)
{
    FaultScenario s;
    s.add(event(FaultKind::SensorNoisy, 0, 0.0, kForever, 3.0));

    FaultInjector a(s, {0}, 1, 42);
    FaultInjector b(s, {0}, 1, 42);
    a.advanceTo(0.0);
    b.advanceTo(0.0);

    std::vector<Celsius> ra = {60.0}, rb = {60.0};
    a.corruptSensors(0.0, 5, ra);
    b.corruptSensors(0.0, 5, rb);
    EXPECT_EQ(ra[0], rb[0]);  // bit-identical across injectors
    EXPECT_NE(ra[0], 60.0);   // and genuinely perturbed

    // A different epoch draws from a different stream.
    std::vector<Celsius> r2 = {60.0};
    a.corruptSensors(0.0, 6, r2);
    EXPECT_NE(r2[0], ra[0]);

    // A different run seed forks the whole stream family.
    FaultInjector c(s, {0}, 1, 43);
    c.advanceTo(0.0);
    std::vector<Celsius> rc = {60.0};
    c.corruptSensors(0.0, 5, rc);
    EXPECT_NE(rc[0], ra[0]);
}

TEST(FaultInjector, AlertFaultsSuppressAndInjectPerDomain)
{
    FaultScenario s;
    // magnitude <= 0 means probability 1 (every alert affected).
    s.add(event(FaultKind::AlertMissed, 0, 0.0, kForever, 0.0))
        .add(event(FaultKind::AlertSpurious, 1, 0.0, kForever, 1.0));
    FaultInjector inj(s, {0, 1}, 2, 1);
    inj.advanceTo(0.0);

    long suppressed = 0, injected = 0;
    EXPECT_FALSE(inj.perturbAlert(0, 0, true, &suppressed, &injected));
    EXPECT_EQ(suppressed, 1);
    EXPECT_FALSE(inj.perturbAlert(0, 1, false, &suppressed, &injected));
    EXPECT_EQ(suppressed, 1);  // nothing to suppress

    EXPECT_TRUE(inj.perturbAlert(1, 0, false, &suppressed, &injected));
    EXPECT_EQ(injected, 1);
    EXPECT_TRUE(inj.perturbAlert(1, 1, true, &suppressed, &injected));
    EXPECT_EQ(injected, 1);  // already alerting: nothing to inject

    // The faults are per-domain: domain 1 alerts pass unsuppressed.
    EXPECT_TRUE(inj.perturbAlert(1, 2, true, nullptr, nullptr));

    // Before the injector advances into the window nothing fires.
    FaultScenario late;
    late.add(event(FaultKind::AlertMissed, 0, 1e-3, kForever, 1.0));
    FaultInjector linj(late, {0}, 1, 1);
    linj.advanceTo(0.0);
    EXPECT_TRUE(linj.perturbAlert(0, 0, true, nullptr, nullptr));
}

TEST(FaultInjector, ProbabilisticAlertFaultIsDeterministic)
{
    FaultScenario s;
    s.add(event(FaultKind::AlertMissed, 0, 0.0, kForever, 0.5));
    FaultInjector a(s, {0}, 1, 7);
    FaultInjector b(s, {0}, 1, 7);
    a.advanceTo(0.0);
    b.advanceTo(0.0);

    int suppressed = 0;
    for (long d = 0; d < 200; ++d) {
        bool ra = a.perturbAlert(0, d, true, nullptr, nullptr);
        bool rb = b.perturbAlert(0, d, true, nullptr, nullptr);
        EXPECT_EQ(ra, rb);
        if (!ra)
            ++suppressed;
    }
    // p = 0.5 over 200 decisions: loose 4-sigma band.
    EXPECT_GT(suppressed, 60);
    EXPECT_LT(suppressed, 140);
}

TEST(FaultInjector, SensorFaultOnsetTracksEarliestActiveEvent)
{
    FaultScenario s;
    s.add(event(FaultKind::SensorDrift, 0, 2e-3, kForever, 1e3))
        .add(event(FaultKind::SensorStuckAt, 0, 1e-3, 0.5e-3, 90.0));
    FaultInjector inj(s, {0}, 1, 1);

    inj.advanceTo(0.0);
    EXPECT_LT(inj.sensorFaultOnset(0), 0.0);  // nothing active yet

    inj.advanceTo(1.2e-3);  // only the stuck-at window
    EXPECT_EQ(inj.sensorFaultOnset(0), 1e-3);

    inj.advanceTo(2.5e-3);  // stuck-at lapsed, drift active
    EXPECT_EQ(inj.sensorFaultOnset(0), 2e-3);
}

} // namespace
} // namespace fault

// ---------------------------------------------------------------------
// SensorHealthMonitor

namespace sensors {
namespace {

/** Four sensors on a 1 mm pitch line: neighbour of i is i +- 1. */
std::vector<std::pair<double, double>>
linePositions(int n = 4)
{
    std::vector<std::pair<double, double>> pos;
    for (int i = 0; i < n; ++i)
        pos.emplace_back(static_cast<double>(i), 0.0);
    return pos;
}

TEST(SensorHealth, HealthyReadingsPassThroughUntouched)
{
    SensorHealthMonitor mon(linePositions());
    for (int e = 0; e < 5; ++e) {
        std::vector<Celsius> r = {60.0 + e, 61.0 + e, 62.0 + e,
                                  63.0 + e};
        auto expect = r;
        mon.filter(e * 1e-3, r);
        EXPECT_EQ(r, expect);
    }
    EXPECT_EQ(mon.quarantinedCount(), 0);
    EXPECT_EQ(mon.quarantineEvents(), 0);
}

TEST(SensorHealth, OutOfRangeReadingQuarantinedAndSubstituted)
{
    SensorHealthMonitor mon(linePositions());
    std::vector<Celsius> r = {60.0, 61.0, 62.0, 63.0};
    mon.filter(0.0, r);

    r = {60.0, 61.0, 200.0, 63.0};  // far outside [0, 150]
    mon.filter(1e-3, r);
    EXPECT_TRUE(mon.quarantined(2));
    EXPECT_EQ(mon.quarantinedCount(), 1);
    EXPECT_EQ(mon.quarantineEvents(), 1);
    // Substitute: the nearest healthy neighbour's accepted reading.
    EXPECT_GE(r[2], 61.0);
    EXPECT_LE(r[2], 63.0);
}

TEST(SensorHealth, NonFiniteReadingQuarantined)
{
    SensorHealthMonitor mon(linePositions());
    std::vector<Celsius> r = {60.0, 61.0, 62.0, 63.0};
    mon.filter(0.0, r);
    r = {60.0, std::numeric_limits<double>::quiet_NaN(), 62.0, 63.0};
    mon.filter(1e-3, r);
    EXPECT_TRUE(mon.quarantined(1));
    EXPECT_TRUE(std::isfinite(r[1]));
}

TEST(SensorHealth, ImplausibleJumpQuarantined)
{
    SensorHealthMonitor mon(linePositions());
    std::vector<Celsius> r = {60.0, 61.0, 62.0, 63.0};
    mon.filter(0.0, r);
    // 30 degC in one decision interval: beyond the 25 degC rate bound
    // (but inside the plausible absolute range).
    r = {90.0, 61.0, 62.0, 63.0};
    mon.filter(1e-3, r);
    EXPECT_TRUE(mon.quarantined(0));
    EXPECT_EQ(r[0], 61.0);  // nearest healthy neighbour's value
}

TEST(SensorHealth, FrozenSensorQuarantinedOnlyWhenFieldMoves)
{
    // Sensor 0 freezes at 60 while the rest of the field heats 2 degC
    // per epoch: after freezeReads unchanged reads AND >1 degC of
    // neighbour movement the freeze check must fire.
    SensorHealthMonitor mon(linePositions());
    std::vector<Celsius> r = {60.0, 60.0, 60.0, 60.0};
    mon.filter(0.0, r);

    int caught_at = -1;
    for (int e = 1; e <= 6 && caught_at < 0; ++e) {
        Celsius hot = 60.0 + 2.0 * e;
        r = {60.0, hot, hot, hot};
        mon.filter(e * 1e-3, r);
        if (mon.quarantined(0))
            caught_at = e;
    }
    ASSERT_GT(caught_at, 0) << "freeze never caught";
    EXPECT_LE(caught_at, mon.params().freezeReads + 1);
    EXPECT_GE(mon.quarantineEvents(), 1);

    // A genuinely steady field keeps every (equally static) sensor.
    SensorHealthMonitor steady(linePositions());
    for (int e = 0; e < 10; ++e) {
        std::vector<Celsius> flat = {55.0, 55.0, 55.0, 55.0};
        steady.filter(e * 1e-3, flat);
    }
    EXPECT_EQ(steady.quarantinedCount(), 0);
}

TEST(SensorHealth, ReadmissionAfterSustainedAgreement)
{
    SensorHealthMonitor mon(linePositions());
    std::vector<Celsius> r = {60.0, 61.0, 62.0, 63.0};
    mon.filter(0.0, r);

    r = {60.0, 61.0, 200.0, 63.0};
    mon.filter(1e-3, r);
    ASSERT_TRUE(mon.quarantined(2));

    // The raw stream recovers and re-agrees with the neighbourhood;
    // after readmitReads in-band reads the sensor is released and its
    // raw reading passes through again.
    int probation = mon.params().readmitReads;
    for (int k = 1; k <= probation; ++k) {
        r = {60.0, 61.0, 61.5, 63.0};
        mon.filter((1 + k) * 1e-3, r);
        if (k < probation) {
            EXPECT_TRUE(mon.quarantined(2)) << "epoch " << k;
            EXPECT_NE(r[2], 61.5);  // still substituted
        }
    }
    EXPECT_FALSE(mon.quarantined(2));
    EXPECT_EQ(r[2], 61.5);
    EXPECT_EQ(mon.quarantineEvents(), 1);

    // A relapse counts as a fresh quarantine event.
    r = {60.0, 61.0, 200.0, 63.0};
    mon.filter(10e-3, r);
    EXPECT_TRUE(mon.quarantined(2));
    EXPECT_EQ(mon.quarantineEvents(), 2);
}

TEST(SensorHealthDeath, InvalidConfigurationsRejected)
{
    EXPECT_DEATH(SensorHealthMonitor({}, {}), "needs sensors");
    HealthParams bad;
    bad.maxPlausible = bad.minPlausible;
    EXPECT_DEATH(SensorHealthMonitor(linePositions(), bad),
                 "plausible temperature range");
}

} // namespace
} // namespace sensors

// ---------------------------------------------------------------------
// Governor degraded path

namespace core {
namespace {

/** Domain 0 of the evaluation chip, as in test_policies.cc. */
class DegradedGovernorTest : public ::testing::Test
{
  protected:
    DegradedGovernorTest()
        : chip(floorplan::buildPower8Chip()),
          pdn(chip, 0, vreg::fivrDesign(), {}),
          net(vreg::fivrDesign(), 9), thetas(9, 28.0)
    {
        kit.pdn = &pdn;
        kit.network = &net;
        kit.thetas = &thetas;

        state.domain = 0;
        state.demandNow = 7.0;
        state.demandNext = 7.0;
        state.vrTemps = {60, 61, 60.5, 63, 64, 63.5, 65, 66, 65.5};
        state.vrLossNow.assign(9, 0.0);
        state.vrLossNextPerActive = 0.19;
        state.nodeCurrents.assign(
            static_cast<std::size_t>(pdn.nodeCount()), 0.1);
        state.didt = 0.4;
    }

    bool
    contains(const std::vector<int> &set, int vr) const
    {
        return std::find(set.begin(), set.end(), vr) != set.end();
    }

    floorplan::Chip chip;
    pdn::DomainPdn pdn;
    vreg::RegulatorNetwork net;
    std::vector<double> thetas;
    PolicyToolkit kit;
    DomainState state;
};

TEST_F(DegradedGovernorTest, AllZeroMasksMatchTheHealthyDecision)
{
    Governor healthy(PolicyKind::Naive, 1);
    Governor masked(PolicyKind::Naive, 1);

    auto a = healthy.decide(state, kit, false);
    state.vrUnavailable.assign(9, 0);
    state.vrForcedOn.assign(9, 0);
    auto b = masked.decide(state, kit, false);

    std::sort(a.active.begin(), a.active.end());
    EXPECT_EQ(a.active, b.active);  // degraded path pre-sorts
    EXPECT_EQ(a.non, b.non);
    // All-zero masks are not a degraded condition.
    EXPECT_EQ(masked.degradedDecisionCount(), 0);
    EXPECT_EQ(masked.floorEngagementCount(), 0);
    EXPECT_EQ(masked.underSuppliedCount(), 0);
}

TEST_F(DegradedGovernorTest, FailedVrsNeverSelected)
{
    Governor gov(PolicyKind::Naive, 1);
    // Fail the two coolest VRs -- exactly the ones Naive prefers.
    state.vrUnavailable.assign(9, 0);
    state.vrUnavailable[0] = 1;
    state.vrUnavailable[2] = 1;

    auto d = gov.decide(state, kit, false);
    EXPECT_FALSE(contains(d.active, 0));
    EXPECT_FALSE(contains(d.active, 2));
    EXPECT_EQ(static_cast<int>(d.active.size()), d.non);
    EXPECT_GE(d.non, net.minFeasibleActive(7.0));
    EXPECT_EQ(gov.degradedDecisionCount(), 1);
    EXPECT_EQ(gov.underSuppliedCount(), 0);
}

TEST_F(DegradedGovernorTest, StuckOnVrIsAlwaysInTheActiveSet)
{
    Governor gov(PolicyKind::Naive, 1);
    // Force the hottest VR on: Naive would never choose it.
    state.vrForcedOn.assign(9, 0);
    state.vrForcedOn[7] = 1;

    auto d = gov.decide(state, kit, false);
    EXPECT_TRUE(contains(d.active, 7));
    EXPECT_EQ(static_cast<int>(d.active.size()), d.non);
    // The forced VR displaces one policy pick, not adds to the count.
    Governor ref(PolicyKind::Naive, 1);
    DomainState clean = state;
    clean.vrForcedOn.clear();
    EXPECT_EQ(d.non, ref.decide(clean, kit, false).non);
    EXPECT_EQ(gov.degradedDecisionCount(), 1);
}

TEST_F(DegradedGovernorTest, FloorBindsOnAFallingForecast)
{
    // Present demand 10 A, forecast 2 A: healthy provisioning would
    // follow the forecast, but a degraded domain must not ride a
    // falling forecast below the present feasibility floor.
    Governor gov(PolicyKind::Naive, 1);
    state.demandNow = 10.0;
    state.demandNext = 2.0;
    state.vrUnavailable.assign(9, 0);
    state.vrUnavailable[4] = 1;

    int floor_need = net.minFeasibleActive(10.0);  // ceil(10/2) = 5
    ASSERT_EQ(floor_need, 5);
    int want = std::min(net.size(), net.requiredActive(2.0));
    ASSERT_LT(want, floor_need);  // the floor genuinely binds

    auto d = gov.decide(state, kit, false);
    EXPECT_EQ(d.non, floor_need);
    EXPECT_EQ(static_cast<int>(d.active.size()), floor_need);
    EXPECT_FALSE(contains(d.active, 4));
    EXPECT_EQ(gov.floorEngagementCount(), 1);
    EXPECT_EQ(gov.underSuppliedCount(), 0);
}

TEST_F(DegradedGovernorTest, UnderSuppliedWhenSurvivorsBelowFloor)
{
    Governor gov(PolicyKind::Naive, 1);
    state.demandNow = 10.0;
    state.demandNext = 10.0;
    // Only three survivors against a 5-VR floor.
    state.vrUnavailable.assign(9, 1);
    state.vrUnavailable[1] = 0;
    state.vrUnavailable[5] = 0;
    state.vrUnavailable[8] = 0;

    auto d = gov.decide(state, kit, false);
    EXPECT_EQ(gov.underSuppliedCount(), 1);
    // Everything that still works is on.
    std::vector<int> survivors = {1, 5, 8};
    EXPECT_EQ(d.active, survivors);
}

TEST_F(DegradedGovernorTest, FullyDarkDomainYieldsEmptyDecision)
{
    // Unreachable through the injector (last-survivor rule) but legal
    // for a hand-built state: the governor must not crash or select.
    Governor gov(PolicyKind::Naive, 1);
    state.vrUnavailable.assign(9, 1);
    auto d = gov.decide(state, kit, false);
    EXPECT_TRUE(d.active.empty());
    EXPECT_EQ(d.non, 0);
    EXPECT_EQ(gov.underSuppliedCount(), 1);
    EXPECT_EQ(gov.degradedDecisionCount(), 1);
}

TEST_F(DegradedGovernorTest, AllOnExcludesFailedRegulators)
{
    Governor gov(PolicyKind::AllOn, 1);
    state.vrUnavailable.assign(9, 0);
    state.vrUnavailable[4] = 1;
    auto d = gov.decide(state, kit, false);
    EXPECT_EQ(d.active.size(), 8u);
    EXPECT_FALSE(contains(d.active, 4));
    EXPECT_FALSE(d.overridden);
}

TEST_F(DegradedGovernorTest, EmergencyOverrideUsesEverySurvivor)
{
    Governor gov(PolicyKind::PracVT, 1);
    state.vrUnavailable.assign(9, 0);
    state.vrUnavailable[1] = 1;
    state.vrForcedOn.assign(9, 0);
    state.vrForcedOn[5] = 1;

    auto d = gov.decide(state, kit, true);
    EXPECT_TRUE(d.overridden);
    EXPECT_EQ(d.active.size(), 8u);
    EXPECT_FALSE(contains(d.active, 1));
    EXPECT_TRUE(contains(d.active, 5));
    EXPECT_EQ(gov.overrideCount(), 1);
    EXPECT_EQ(gov.degradedDecisionCount(), 1);
}

} // namespace
} // namespace core
} // namespace tg
