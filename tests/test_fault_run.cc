/**
 * @file
 * Integration tests of fault injection through the run loop.
 *
 * The two contracts under test: an EMPTY scenario must leave every
 * result bit-identical to a run without the option (the clean path
 * takes the exact same code), and a NON-EMPTY scenario must itself be
 * deterministic — bit-identical across worker counts, noise batch
 * widths and re-runs. On top of that, the degradation behaviours the
 * paper's robustness story needs: a killed regulator disappears from
 * the active sets within one decision interval, and a faulted sensor
 * is quarantined with a measured detection latency.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "fault/scenario.hh"
#include "floorplan/power8.hh"
#include "sim/simulation.hh"
#include "workload/profile.hh"

namespace tg {
namespace sim {
namespace {

SimConfig
miniConfig(int jobs, int width = 4)
{
    SimConfig cfg;
    cfg.noiseSamples = 8;
    cfg.profilingEpochs = 8;
    cfg.jobs = jobs;
    cfg.noiseBatchWidth = width;
    return cfg;
}

void
expectSameRun(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.benchmark, b.benchmark);
    EXPECT_EQ(a.policy, b.policy);
    EXPECT_EQ(a.maxTmax, b.maxTmax);
    EXPECT_EQ(a.hottestSpot, b.hottestSpot);
    EXPECT_EQ(a.maxGradient, b.maxGradient);
    EXPECT_EQ(a.maxNoiseFrac, b.maxNoiseFrac);
    EXPECT_EQ(a.emergencyFrac, b.emergencyFrac);
    EXPECT_EQ(a.avgRegulatorLoss, b.avgRegulatorLoss);
    EXPECT_EQ(a.avgEta, b.avgEta);
    EXPECT_EQ(a.avgActiveVrs, b.avgActiveVrs);
    EXPECT_EQ(a.meanPower, b.meanPower);
    EXPECT_EQ(a.overrideCount, b.overrideCount);
    EXPECT_EQ(a.agingImbalance, b.agingImbalance);
    EXPECT_EQ(a.vrActivity, b.vrActivity);
    EXPECT_EQ(a.vrAging, b.vrAging);

    EXPECT_EQ(a.resilience.scheduledFaults,
              b.resilience.scheduledFaults);
    EXPECT_EQ(a.resilience.faultedEpochs, b.resilience.faultedEpochs);
    EXPECT_EQ(a.resilience.degradedDecisions,
              b.resilience.degradedDecisions);
    EXPECT_EQ(a.resilience.floorEngagements,
              b.resilience.floorEngagements);
    EXPECT_EQ(a.resilience.underSuppliedDecisions,
              b.resilience.underSuppliedDecisions);
    EXPECT_EQ(a.resilience.quarantineEvents,
              b.resilience.quarantineEvents);
    EXPECT_EQ(a.resilience.quarantinedEpochs,
              b.resilience.quarantinedEpochs);
    EXPECT_EQ(a.resilience.peakQuarantined,
              b.resilience.peakQuarantined);
    EXPECT_EQ(a.resilience.detectionLatency,
              b.resilience.detectionLatency);
    EXPECT_EQ(a.resilience.alertsSuppressed,
              b.resilience.alertsSuppressed);
    EXPECT_EQ(a.resilience.alertsInjected,
              b.resilience.alertsInjected);
    EXPECT_EQ(a.resilience.emergencyCyclesFaulted,
              b.resilience.emergencyCyclesFaulted);
    EXPECT_EQ(a.resilience.emergencyCyclesClean,
              b.resilience.emergencyCyclesClean);
}

/** A bit of everything, sized for the 2-core mini chip. */
fault::FaultScenario
mixedScenario(const floorplan::Chip &chip)
{
    using fault::FaultEvent;
    using fault::FaultKind;
    int n_vrs = static_cast<int>(chip.plan.vrs().size());
    EXPECT_GE(n_vrs, 4);

    fault::FaultScenario s(0x5ce7a1ull);
    auto ev = [&](FaultKind kind, int target, Seconds start,
                  Seconds duration, double magnitude) {
        FaultEvent e;
        e.kind = kind;
        e.target = target;
        e.start = start;
        e.duration = duration;
        e.magnitude = magnitude;
        s.add(e);
    };
    ev(FaultKind::SensorStuckAt, 0, 0.5e-3, fault::kForever, 140.0);
    ev(FaultKind::SensorNoisy, 1 % n_vrs, 0.0, fault::kForever, 4.0);
    ev(FaultKind::VrStuckOff, 1 % n_vrs, 1e-3, 1e-3, 0.0);
    ev(FaultKind::VrStuckOn, 2 % n_vrs, 0.0, fault::kForever, 0.0);
    ev(FaultKind::VrDerated, 3 % n_vrs, 0.0, fault::kForever, 2.0);
    ev(FaultKind::AlertMissed, 0, 0.0, fault::kForever, 0.5);
    ev(FaultKind::AlertSpurious, 1, 0.0, fault::kForever, 0.1);
    return s;
}

TEST(FaultDeterminism, EmptyScenarioBitIdenticalToCleanRun)
{
    // An empty scenario must be indistinguishable from no scenario at
    // all — same code paths, same RNG draws — at every worker count
    // and batch width.
    auto chip = floorplan::buildMiniChip(2);
    fault::FaultScenario empty;
    const auto &profile = workload::profileByName("fft");

    for (int jobs : {1, 4}) {
        for (int width : {1, 4}) {
            Simulation s(chip, miniConfig(jobs, width));
            auto clean =
                s.run(profile, core::PolicyKind::PracVT);
            RecordOptions opts;
            opts.faultScenario = &empty;
            auto faulted =
                s.run(profile, core::PolicyKind::PracVT, opts);
            expectSameRun(clean, faulted);
            EXPECT_EQ(faulted.resilience.scheduledFaults, 0);
            EXPECT_EQ(faulted.resilience.faultedEpochs, 0);
            EXPECT_EQ(faulted.resilience.detectionLatency, -1.0);
        }
    }
}

TEST(FaultDeterminism, FaultedRunBitIdenticalAcrossJobsAndWidth)
{
    auto chip = floorplan::buildMiniChip(2);
    auto scenario = mixedScenario(chip);
    const auto &profile = workload::profileByName("fft");
    RecordOptions opts;
    opts.faultScenario = &scenario;

    RunResult ref;
    bool have_ref = false;
    for (int jobs : {1, 4}) {
        for (int width : {1, 4}) {
            Simulation s(chip, miniConfig(jobs, width));
            auto r = s.run(profile, core::PolicyKind::PracVT, opts);
            if (!have_ref) {
                ref = r;
                have_ref = true;
            } else {
                expectSameRun(ref, r);
            }
        }
    }

    // The scenario genuinely engaged.
    EXPECT_EQ(ref.resilience.scheduledFaults,
              static_cast<long>(scenario.events().size()));
    EXPECT_GT(ref.resilience.faultedEpochs, 0);
    EXPECT_GT(ref.resilience.degradedDecisions, 0);
    EXPECT_GE(ref.resilience.quarantineEvents, 1);
}

TEST(FaultDeterminism, RepeatedFaultedRunsOnOneInstanceBitIdentical)
{
    // Injector and health-monitor state is per-run; a second faulted
    // run (with a clean run in between) must replay exactly.
    auto chip = floorplan::buildMiniChip(2);
    auto scenario = mixedScenario(chip);
    const auto &profile = workload::profileByName("fft");
    RecordOptions opts;
    opts.faultScenario = &scenario;

    Simulation s(chip, miniConfig(1));
    auto a = s.run(profile, core::PolicyKind::PracVT, opts);
    s.run(profile, core::PolicyKind::PracVT);  // interleaved clean run
    auto b = s.run(profile, core::PolicyKind::PracVT, opts);
    expectSameRun(a, b);
}

TEST(FaultRun, KilledVrLeavesTheActiveSetWithinOneInterval)
{
    // Kill chip VR 0 mid-run under AllOn (which would otherwise keep
    // every VR on for the whole run): the governor must drop it from
    // the next decision on, without ever under-supplying the domain.
    auto chip = floorplan::buildMiniChip(2);
    fault::FaultScenario scenario;
    fault::FaultEvent kill;
    kill.kind = fault::FaultKind::VrStuckOff;
    kill.target = 0;
    kill.start = 1e-3;  // exactly the second decision epoch
    scenario.add(kill);

    Simulation s(chip, miniConfig(1));
    RecordOptions opts;
    opts.faultScenario = &scenario;
    opts.trackVr = 0;
    opts.timeSeries = true;
    auto r = s.run(workload::profileByName("fft"),
                   core::PolicyKind::AllOn, opts);

    ASSERT_EQ(r.trackedVrOn.size(), r.timeUs.size());
    ASSERT_GT(r.trackedVrOn.size(), 0u);
    bool saw_pre = false, saw_post = false;
    for (std::size_t f = 0; f < r.trackedVrOn.size(); ++f) {
        // timeUs records the post-step frame time (f + 1) * dt; the
        // kill lands at the epoch boundary, so every frame strictly
        // inside t >= 1 ms runs under the degraded decision.
        if (r.timeUs[f] <= 1000.0) {
            EXPECT_EQ(r.trackedVrOn[f], 1) << "frame " << f;
            saw_pre = true;
        } else {
            EXPECT_EQ(r.trackedVrOn[f], 0) << "frame " << f;
            saw_post = true;
        }
    }
    EXPECT_TRUE(saw_pre);
    EXPECT_TRUE(saw_post);
    EXPECT_GT(r.resilience.degradedDecisions, 0);
    EXPECT_EQ(r.resilience.underSuppliedDecisions, 0);
    EXPECT_EQ(r.resilience.floorEngagements, 0);  // AllOn needs none
}

TEST(FaultRun, FrozenSensorIsQuarantinedWithMeasuredLatency)
{
    // Freeze one sensor early, while the post-startup thermal
    // transient still moves the field: the health monitor must
    // quarantine it and record how long detection took. The stuck
    // reading is plausible in isolation — only the frozen-while-
    // neighbours-move check can catch it.
    auto chip = floorplan::buildMiniChip(2);
    fault::FaultScenario scenario;
    fault::FaultEvent freeze;
    freeze.kind = fault::FaultKind::SensorFrozen;
    freeze.target = 0;
    freeze.start = 0.5e-3;
    scenario.add(freeze);

    SimConfig cfg = miniConfig(1);
    // The mini chip's per-epoch drift is gentle; tighten the
    // neighbour-movement gate (default 1 degC) so the freeze check
    // fires within the run while staying above the 0.25 degC sensor
    // quantisation step.
    cfg.healthParams.freezeNeighbourMove = 0.3;
    Simulation s(chip, cfg);
    RecordOptions opts;
    opts.faultScenario = &scenario;
    auto r = s.run(workload::profileByName("fft"),
                   core::PolicyKind::PracVT, opts);

    EXPECT_GE(r.resilience.quarantineEvents, 1);
    EXPECT_GT(r.resilience.quarantinedEpochs, 0);
    EXPECT_GE(r.resilience.peakQuarantined, 1);
    // Latency: measured from the fault's onset to the first
    // quarantine, a whole number of decision intervals away from the
    // 0.5 ms onset offset.
    EXPECT_GE(r.resilience.detectionLatency, 0.0);
    double intervals =
        (r.resilience.detectionLatency + 0.5e-3) / 1e-3;
    EXPECT_NEAR(intervals, std::round(intervals), 1e-9);
}

} // namespace
} // namespace sim
} // namespace tg
