/**
 * @file
 * Bit-identity tests of the lockstep batching layer: DoubleBatch lane
 * semantics, the batched/multi-RHS sparse solves against the scalar
 * solver, and DomainPdn::transientWindowBatch against the scalar
 * transient window — all compared with EXPECT_EQ on doubles, because
 * the batched paths promise the *same bits*, not just the same values.
 */

#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "common/matrix.hh"
#include "common/rng.hh"
#include "common/simd.hh"
#include "common/sparse.hh"
#include "floorplan/power8.hh"
#include "pdn/domain_pdn.hh"
#include "vreg/design.hh"

namespace tg {
namespace {

// ---- DoubleBatch lane semantics -----------------------------------------

TEST(DoubleBatch, LanesAreIndependentScalarOps)
{
    double a[4] = {1.5, -2.25, 3.0e-7, 8.75e12};
    double b[4] = {-0.5, 7.125, -1.0e3, 2.5e-9};
    auto ba = DoubleBatch<4>::load(a);
    auto bb = DoubleBatch<4>::load(b);
    for (int l = 0; l < 4; ++l) {
        EXPECT_EQ((ba + bb)[l], a[l] + b[l]);
        EXPECT_EQ((ba - bb)[l], a[l] - b[l]);
        EXPECT_EQ((ba * bb)[l], a[l] * b[l]);
        EXPECT_EQ((ba / bb)[l], a[l] / b[l]);
        EXPECT_EQ((ba * 3.25)[l], a[l] * 3.25);
        EXPECT_EQ((3.25 * ba)[l], a[l] * 3.25);
        EXPECT_EQ((ba / 3.25)[l], a[l] / 3.25);
        EXPECT_EQ(DoubleBatch<4>::max(ba, bb)[l],
                  std::max(a[l], b[l]));
    }
}

TEST(DoubleBatch, BroadcastLoadStoreRoundTrip)
{
    auto c = DoubleBatch<8>::broadcast(0.1);
    for (int l = 0; l < 8; ++l)
        EXPECT_EQ(c[l], 0.1);
    double src[8] = {0, 1, 2, 3, 4, 5, 6, 7};
    double dst[8] = {};
    DoubleBatch<8>::load(src).store(dst);
    for (int l = 0; l < 8; ++l)
        EXPECT_EQ(dst[l], src[l]);
}

TEST(DoubleBatch, CompoundOpsMatchBinaryOps)
{
    double a[2] = {1.0 / 3.0, -7.5};
    double b[2] = {2.0 / 7.0, 0.125};
    auto x = DoubleBatch<2>::load(a);
    x += DoubleBatch<2>::load(b);
    for (int l = 0; l < 2; ++l)
        EXPECT_EQ(x[l], a[l] + b[l]);
    x = DoubleBatch<2>::load(a);
    x *= DoubleBatch<2>::load(b);
    for (int l = 0; l < 2; ++l)
        EXPECT_EQ(x[l], a[l] * b[l]);
}

// ---- Batched sparse solves ----------------------------------------------

/** PDN-like SPD grid matrix: Laplacian plus a few diagonal boosts. */
SparseMatrix
gridSpd(int w, int h)
{
    auto node = [&](int r, int c) {
        return static_cast<std::size_t>(r * w + c);
    };
    std::vector<Triplet> t;
    for (int r = 0; r < h; ++r)
        for (int c = 0; c < w; ++c) {
            if (c + 1 < w) {
                t.push_back({node(r, c), node(r, c), 2.0});
                t.push_back({node(r, c + 1), node(r, c + 1), 2.0});
                t.push_back({node(r, c), node(r, c + 1), -2.0});
                t.push_back({node(r, c + 1), node(r, c), -2.0});
            }
            if (r + 1 < h) {
                t.push_back({node(r, c), node(r, c), 0.7});
                t.push_back({node(r + 1, c), node(r + 1, c), 0.7});
                t.push_back({node(r, c), node(r + 1, c), -0.7});
                t.push_back({node(r + 1, c), node(r, c), -0.7});
            }
        }
    std::size_t n = static_cast<std::size_t>(w * h);
    for (std::size_t i = 0; i < n; i += 5)
        t.push_back({i, i, 3.1});
    t.push_back({0, 0, 1.0});  // pin: strictly SPD
    return SparseMatrix::fromTriplets(n, n, std::move(t));
}

class BatchSolveTest : public ::testing::Test
{
  protected:
    BatchSolveTest() : a(gridSpd(13, 9)), solver(a) {}

    /** Deterministic pseudo-random right-hand side number k. */
    std::vector<double>
    rhs(int k) const
    {
        Rng rng(mixSeed(0x51u, static_cast<std::uint64_t>(k)));
        std::vector<double> b(a.rows());
        for (double &v : b)
            v = rng.uniform(-2.0, 2.0);
        return b;
    }

    SparseMatrix a;
    SparseLdltSolver solver;
};

TEST_F(BatchSolveTest, BatchLanesMatchScalarBitwise)
{
    std::size_t n = solver.size();
    for (std::size_t width : {1u, 2u, 3u, 4u, 5u, 8u}) {
        // Scalar references first, then the batched solve — and once
        // more in the opposite order, so neither path's scratch
        // warm-up can mask a mismatch.
        for (int order = 0; order < 2; ++order) {
            std::vector<std::vector<double>> ref;
            for (std::size_t l = 0; l < width; ++l) {
                ref.push_back(rhs(static_cast<int>(l)));
                solver.solveInPlace(ref.back());
            }
            std::vector<double> lanes(n * width);
            for (std::size_t l = 0; l < width; ++l) {
                auto b = rhs(static_cast<int>(l));
                for (std::size_t i = 0; i < n; ++i)
                    lanes[i * width + l] = b[i];
            }
            solver.solveBatchInPlace(lanes.data(), width);
            for (std::size_t l = 0; l < width; ++l)
                for (std::size_t i = 0; i < n; ++i)
                    ASSERT_EQ(lanes[i * width + l], ref[l][i])
                        << "width " << width << " lane " << l
                        << " row " << i;
        }
    }
}

TEST_F(BatchSolveTest, MultiRhsMatrixSolveMatchesScalarBitwise)
{
    std::size_t n = solver.size();
    for (std::size_t k : {1u, 2u, 4u, 7u}) {
        Matrix bx(n, k, 0.0);
        std::vector<std::vector<double>> ref;
        for (std::size_t j = 0; j < k; ++j) {
            auto b = rhs(static_cast<int>(j) + 100);
            for (std::size_t i = 0; i < n; ++i)
                bx(i, j) = b[i];
            ref.push_back(std::move(b));
            solver.solveInPlace(ref.back());
        }
        solver.solveInPlace(bx);
        for (std::size_t j = 0; j < k; ++j)
            for (std::size_t i = 0; i < n; ++i)
                ASSERT_EQ(bx(i, j), ref[j][i])
                    << "cols " << k << " col " << j << " row " << i;
    }
}

TEST_F(BatchSolveTest, BatchSolvesTheSystem)
{
    // Sanity beyond self-consistency: the batched result actually
    // satisfies A x = b.
    std::size_t n = solver.size();
    std::size_t width = 4;
    std::vector<std::vector<double>> bs;
    std::vector<double> lanes(n * width);
    for (std::size_t l = 0; l < width; ++l) {
        bs.push_back(rhs(static_cast<int>(l) + 200));
        for (std::size_t i = 0; i < n; ++i)
            lanes[i * width + l] = bs[l][i];
    }
    solver.solveBatchInPlace(lanes.data(), width);
    for (std::size_t l = 0; l < width; ++l) {
        std::vector<double> x(n);
        for (std::size_t i = 0; i < n; ++i)
            x[i] = lanes[i * width + l];
        auto ax = a.multiply(x);
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_NEAR(ax[i], bs[l][i], 1e-9) << "lane " << l;
    }
}

// ---- Lockstep transient windows -----------------------------------------

class WindowBatchTest : public ::testing::Test
{
  protected:
    WindowBatchTest()
        : chip(floorplan::buildPower8Chip()),
          dp(chip, 0, vreg::fivrDesign(), {})
    {
    }

    std::vector<Amperes>
    domainLoad(Watts per_block) const
    {
        std::vector<Watts> bp(chip.plan.blocks().size(), 0.0);
        for (int b : chip.plan.domains()[0].blocks)
            bp[static_cast<std::size_t>(b)] = per_block;
        return dp.nodeCurrents(bp);
    }

    /**
     * Flat window w: load stepping from `low` to `high` at midway,
     * with levels varied per window so every lane solves a different
     * problem.
     */
    std::vector<Amperes>
    makeWindow(int w, std::size_t cycles) const
    {
        double low = 0.3 + 0.1 * w;
        double high = 1.2 + 0.15 * w;
        auto l = domainLoad(low);
        auto h = domainLoad(high);
        std::size_t n = static_cast<std::size_t>(dp.nodeCount());
        std::vector<Amperes> win(cycles * n);
        for (std::size_t c = 0; c < cycles; ++c) {
            const auto &src = c < cycles / 2 ? l : h;
            std::copy(src.begin(), src.end(),
                      win.begin() + static_cast<std::ptrdiff_t>(c * n));
        }
        return win;
    }

    floorplan::Chip chip;
    pdn::DomainPdn dp;
};

TEST_F(WindowBatchTest, BatchMatchesScalarAtEveryCount)
{
    const std::size_t cycles = 160;
    const int warmup = 40;
    std::size_t n = static_cast<std::size_t>(dp.nodeCount());

    std::vector<std::vector<Amperes>> wins;
    for (int w = 0; w < 8; ++w)
        wins.push_back(makeWindow(w, cycles));

    for (int count : {1, 2, 3, 4, 5, 7, 8}) {
        std::vector<pdn::DomainPdn::WindowSpec> specs;
        std::vector<pdn::NoiseResult> out(
            static_cast<std::size_t>(count));
        for (int w = 0; w < count; ++w)
            specs.push_back(
                {wins[static_cast<std::size_t>(w)].data(), n});
        dp.transientWindowBatch(specs.data(), count, cycles, warmup,
                                true, out.data());
        for (int w = 0; w < count; ++w) {
            auto ref = dp.transientWindow(
                wins[static_cast<std::size_t>(w)].data(), cycles, n,
                warmup, true);
            const auto &got = out[static_cast<std::size_t>(w)];
            EXPECT_EQ(got.maxNoiseFrac, ref.maxNoiseFrac)
                << "count " << count << " window " << w;
            EXPECT_EQ(got.emergencyCycles, ref.emergencyCycles);
            EXPECT_EQ(got.analysedCycles, ref.analysedCycles);
            ASSERT_EQ(got.trace.size(), ref.trace.size());
            for (std::size_t c = 0; c < ref.trace.size(); ++c)
                ASSERT_EQ(got.trace[c], ref.trace[c])
                    << "count " << count << " window " << w
                    << " cycle " << c;
        }
    }
}

TEST_F(WindowBatchTest, BatchMatchesScalarOnWoodburySubsets)
{
    // An active subset exercises the rank-r correction inside every
    // batched solve; a singleton drives the deepest downdate.
    const std::size_t cycles = 120;
    const int warmup = 30;
    std::size_t n = static_cast<std::size_t>(dp.nodeCount());
    std::vector<std::vector<Amperes>> wins;
    for (int w = 0; w < 4; ++w)
        wins.push_back(makeWindow(w, cycles));

    for (const auto &set :
         std::vector<std::vector<int>>{{0, 4, 8}, {3}}) {
        dp.setActive(set);
        std::vector<pdn::DomainPdn::WindowSpec> specs;
        for (const auto &w : wins)
            specs.push_back({w.data(), n});
        std::vector<pdn::NoiseResult> out(wins.size());
        dp.transientWindowBatch(specs.data(),
                                static_cast<int>(wins.size()), cycles,
                                warmup, false, out.data());
        for (std::size_t w = 0; w < wins.size(); ++w) {
            auto ref = dp.transientWindow(wins[w].data(), cycles, n,
                                          warmup, false);
            EXPECT_EQ(out[w].maxNoiseFrac, ref.maxNoiseFrac)
                << "set size " << set.size() << " window " << w;
            EXPECT_EQ(out[w].emergencyCycles, ref.emergencyCycles);
            EXPECT_EQ(out[w].analysedCycles, ref.analysedCycles);
        }
    }
}

TEST_F(WindowBatchTest, RepeatedBatchedWindowIsIdempotent)
{
    // Scratch reuse across calls must not leak state between runs.
    const std::size_t cycles = 100;
    std::size_t n = static_cast<std::size_t>(dp.nodeCount());
    auto win = makeWindow(2, cycles);
    pdn::DomainPdn::WindowSpec specs[4] = {
        {win.data(), n}, {win.data(), n}, {win.data(), n},
        {win.data(), n}};
    pdn::NoiseResult out[4];
    dp.transientWindowBatch(specs, 4, cycles, 20, false, out);
    // All four lanes solved the same window: identical bits.
    for (int w = 1; w < 4; ++w)
        EXPECT_EQ(out[w].maxNoiseFrac, out[0].maxNoiseFrac);
    double first = out[0].maxNoiseFrac;
    dp.transientWindowBatch(specs, 4, cycles, 20, false, out);
    EXPECT_EQ(out[0].maxNoiseFrac, first);
}

TEST_F(WindowBatchTest, DeathOnBadBatchInputs)
{
    std::size_t n = static_cast<std::size_t>(dp.nodeCount());
    auto win = makeWindow(0, 10);
    pdn::DomainPdn::WindowSpec spec = {win.data(), n};
    pdn::NoiseResult out;
    EXPECT_DEATH(
        dp.transientWindowBatch(&spec, 0, 10, 2, false, &out),
        "empty window batch");
    EXPECT_DEATH(
        dp.transientWindowBatch(&spec, 1, 10, 10, false, &out),
        "warmup");
    pdn::DomainPdn::WindowSpec bad = {win.data(), n - 1};
    EXPECT_DEATH(
        dp.transientWindowBatch(&bad, 1, 10, 2, false, &out),
        "stride");
}

} // namespace
} // namespace tg
