/** @file Unit and property tests for the power-delivery network. */

#include <cmath>

#include <gtest/gtest.h>

#include "common/matrix.hh"
#include "floorplan/power8.hh"
#include "pdn/domain_pdn.hh"
#include "vreg/design.hh"

namespace tg {
namespace pdn {
namespace {

class PdnTest : public ::testing::Test
{
  protected:
    PdnTest()
        : chip(floorplan::buildPower8Chip()),
          dp(chip, 0, vreg::fivrDesign(), {})
    {
    }

    /** Node currents for a uniform power draw on domain 0. */
    std::vector<Amperes>
    domainLoad(Watts per_block) const
    {
        std::vector<Watts> bp(chip.plan.blocks().size(), 0.0);
        for (int b : chip.plan.domains()[0].blocks)
            bp[static_cast<std::size_t>(b)] = per_block;
        return dp.nodeCurrents(bp);
    }

    std::vector<int>
    allVrs() const
    {
        std::vector<int> v(static_cast<std::size_t>(dp.vrCount()));
        for (std::size_t i = 0; i < v.size(); ++i)
            v[i] = static_cast<int>(i);
        return v;
    }

    /**
     * Dense bordered reference matrix [[G, -B], [B^T, R]] the
     * production solver no longer assembles: the equivalence tests
     * rebuild it from the exported topology and solve it with the
     * dense LU.
     */
    Matrix
    borderedMatrix(const std::vector<int> &active,
                   bool transient) const
    {
        std::size_t n = static_cast<std::size_t>(dp.nodeCount());
        std::size_t m = active.size();
        Matrix a(n + m, n + m, 0.0);
        Matrix g = dp.gridConductance().toDense();
        for (std::size_t r = 0; r < n; ++r)
            for (std::size_t c = 0; c < n; ++c)
                a(r, c) = g(r, c);
        double r_out = vreg::fivrDesign().outputResistance;
        double dt = dp.params().cycleTime;
        for (std::size_t k = 0; k < m; ++k) {
            std::size_t node = static_cast<std::size_t>(
                dp.vrAttachNode(active[k]));
            a(node, n + k) = -1.0;
            a(n + k, node) = 1.0;
            a(n + k, n + k) = r_out;
            if (transient)
                a(n + k, n + k) +=
                    dp.branchInductance(active[k]) / dt;
        }
        if (transient)
            for (std::size_t i = 0; i < n; ++i)
                a(i, i) += dp.nodeDecaps()[i] / dt;
        return a;
    }

    floorplan::Chip chip;
    DomainPdn dp;
};

TEST_F(PdnTest, TopologyMatchesDomain)
{
    EXPECT_EQ(dp.vrCount(), 9);
    EXPECT_GT(dp.nodeCount(), 20);
    EXPECT_EQ(dp.domainId(), 0);
}

TEST_F(PdnTest, NoLoadMeansNoDroop)
{
    std::vector<Amperes> none(
        static_cast<std::size_t>(dp.nodeCount()), 0.0);
    auto v = dp.steadyVoltages(none);
    for (double volt : v)
        EXPECT_NEAR(volt, chip.params.vdd, 1e-9);
    EXPECT_NEAR(dp.steadyMaxNoise(none), 0.0, 1e-9);
}

TEST_F(PdnTest, LoadProducesDroop)
{
    auto load = domainLoad(1.0);
    double noise = dp.steadyMaxNoise(load);
    EXPECT_GT(noise, 0.0);
    EXPECT_LT(noise, 0.2);
}

TEST_F(PdnTest, SteadySolveIsLinear)
{
    auto l1 = domainLoad(0.5);
    auto l2 = domainLoad(1.0);
    auto v1 = dp.steadyVoltages(l1);
    auto v2 = dp.steadyVoltages(l2);
    double vdd = chip.params.vdd;
    for (std::size_t n = 0; n < v1.size(); ++n)
        EXPECT_NEAR(vdd - v2[n], 2.0 * (vdd - v1[n]), 1e-9);
}

TEST_F(PdnTest, MoreActiveVrsReduceSteadyNoise)
{
    auto load = domainLoad(1.0);
    dp.setActive({0});
    double one = dp.steadyMaxNoise(load);
    dp.setActive({0, 4, 8});
    double three = dp.steadyMaxNoise(load);
    dp.setActive(allVrs());
    double nine = dp.steadyMaxNoise(load);
    EXPECT_GT(one, three);
    EXPECT_GT(three, nine);
}

TEST_F(PdnTest, CurrentConservationAtSteadyState)
{
    // Sum of node currents equals the total the blocks draw.
    auto load = domainLoad(1.0);
    double total = 0.0;
    for (double i : load)
        total += i;
    Watts domain_power = 0.0;
    for (int b : chip.plan.domains()[0].blocks)
        (void)b, domain_power += 1.0;
    EXPECT_NEAR(total, domain_power / chip.params.vdd, 1e-9);
}

TEST_F(PdnTest, TransferResistancePositiveAndDistanceOrdered)
{
    // The droop a node sees from a far VR exceeds the droop from the
    // VR attached to it.
    for (int k = 0; k < dp.vrCount(); ++k) {
        int own = dp.vrAttachNode(k);
        double self = dp.transferResistance(own, k);
        EXPECT_GT(self, 0.0);
        for (int j = 0; j < dp.vrCount(); ++j) {
            if (j == k)
                continue;
            EXPECT_GE(dp.transferResistance(dp.vrAttachNode(j), k),
                      self - 1e-12);
        }
    }
}

TEST_F(PdnTest, TransientConstantLoadMatchesSteady)
{
    auto load = domainLoad(1.0);
    std::vector<std::vector<Amperes>> window(400, load);
    auto res = dp.transientWindow(window, 200);
    EXPECT_NEAR(res.maxNoiseFrac, dp.steadyMaxNoise(load), 5e-3);
    EXPECT_EQ(res.analysedCycles, 200);
}

TEST_F(PdnTest, LoadStepCausesTransientDroop)
{
    auto low = domainLoad(0.4);
    auto high = domainLoad(1.6);
    std::vector<std::vector<Amperes>> window(600, low);
    for (std::size_t c = 300; c < 600; ++c)
        window[c] = high;
    auto res = dp.transientWindow(window, 100, true);
    double steady_high = dp.steadyMaxNoise(high);
    // The inductive branch forces an excursion past the new steady
    // level right after the step.
    EXPECT_GT(res.maxNoiseFrac, steady_high * 1.2);
    ASSERT_EQ(res.trace.size(), 600u);
    // ...and the worst cycle sits shortly after the step.
    std::size_t worst = 0;
    for (std::size_t c = 1; c < res.trace.size(); ++c)
        if (res.trace[c] > res.trace[worst])
            worst = c;
    EXPECT_GE(worst, 300u);
    EXPECT_LT(worst, 450u);
}

TEST_F(PdnTest, EmergencyCyclesCounted)
{
    // Drive a load big enough to exceed the 10% threshold at steady
    // state: every analysed cycle is an emergency.
    dp.setActive({0});
    auto load = domainLoad(4.0);
    std::vector<std::vector<Amperes>> window(300, load);
    auto res = dp.transientWindow(window, 100);
    EXPECT_GT(dp.steadyMaxNoise(load), dp.params().emergencyFrac);
    EXPECT_EQ(res.emergencyCycles, res.analysedCycles);
}

TEST_F(PdnTest, FewerActiveBranchesDroopMoreOnSteps)
{
    auto low = domainLoad(0.5);
    auto high = domainLoad(1.5);
    std::vector<std::vector<Amperes>> window(500, low);
    for (std::size_t c = 250; c < 500; ++c)
        window[c] = high;

    dp.setActive(allVrs());
    double nine = dp.transientWindow(window, 100).maxNoiseFrac;
    dp.setActive({0, 1, 2});  // memory-side row only
    double three = dp.transientWindow(window, 100).maxNoiseFrac;
    EXPECT_GT(three, nine);
}

TEST_F(PdnTest, MemorySideSelectionIsNoisier)
{
    // Logic draws the current; supplying it from the far (memory)
    // row must droop more than from the logic rows.
    auto load = domainLoad(1.2);
    dp.setActive({0, 1, 2});  // bottom row (over the L2)
    double mem = dp.steadyMaxNoise(load);
    dp.setActive({6, 7, 8});  // top row (over ISU/EXU)
    double logic = dp.steadyMaxNoise(load);
    EXPECT_GT(mem, logic);
}

TEST_F(PdnTest, EstimateRanksSelectionsLikeTheSolver)
{
    auto load = domainLoad(1.2);
    std::vector<std::vector<int>> sets = {
        {0, 1, 2}, {6, 7, 8}, {0, 4, 8}, allVrs()};
    std::vector<double> est;
    std::vector<double> exact;
    for (const auto &s : sets) {
        est.push_back(dp.estimateNoise(s, load, 0.3));
        dp.setActive(s);
        exact.push_back(dp.steadyMaxNoise(load));
    }
    for (std::size_t a = 0; a < sets.size(); ++a)
        for (std::size_t b = 0; b < sets.size(); ++b)
            if (exact[a] > exact[b] * 1.15) {
                EXPECT_GT(est[a], est[b])
                    << "sets " << a << " vs " << b;
            }
}

TEST_F(PdnTest, LdoDesignLessTransientNoiseThanBuck)
{
    DomainPdn ldo(chip, 0, vreg::ldoDesign(), {});
    auto low = domainLoad(0.5);
    auto high = domainLoad(1.5);
    std::vector<std::vector<Amperes>> window(500, low);
    for (std::size_t c = 250; c < 500; ++c)
        window[c] = high;
    auto buck_res = dp.transientWindow(window, 100);
    auto ldo_res = ldo.transientWindow(window, 100);
    EXPECT_LT(ldo_res.maxNoiseFrac, buck_res.maxNoiseFrac);
}

// ---- Sparse-vs-dense equivalence ----------------------------------------
// The production path never assembles the bordered matrices; these
// tests do, and check the Schur/Woodbury solver against the dense LU.

TEST_F(PdnTest, SteadyMatchesDenseBorderedReference)
{
    auto load = domainLoad(1.3);
    double vdd = chip.params.vdd;
    std::vector<std::vector<int>> sets = {{0}, {0, 4, 8}, allVrs()};
    for (const auto &s : sets) {
        dp.setActive(s);
        auto sparse = dp.steadyVoltages(load);

        std::size_t n = static_cast<std::size_t>(dp.nodeCount());
        LuSolver dense(borderedMatrix(s, false));
        std::vector<double> rhs(n + s.size(), vdd);
        for (std::size_t i = 0; i < n; ++i)
            rhs[i] = -load[i];
        dense.solveInPlace(rhs);
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_NEAR(sparse[i], rhs[i], 1e-9)
                << "set size " << s.size() << " node " << i;
    }
}

TEST_F(PdnTest, TransientMatchesDenseBorderedReference)
{
    std::vector<int> set = {0, 4, 8};
    dp.setActive(set);
    auto low = domainLoad(0.4);
    auto high = domainLoad(1.6);
    std::vector<std::vector<Amperes>> window(240, low);
    for (std::size_t c = 120; c < 240; ++c)
        window[c] = high;
    auto sparse = dp.transientWindow(window, 40, true);

    // Dense bordered implicit Euler, state x = (V, I_branch).
    std::size_t n = static_cast<std::size_t>(dp.nodeCount());
    std::size_t m = set.size();
    double vdd = chip.params.vdd;
    double dt = dp.params().cycleTime;
    LuSolver steady(borderedMatrix(set, false));
    LuSolver trans(borderedMatrix(set, true));
    std::vector<double> x(n + m, vdd);
    for (std::size_t i = 0; i < n; ++i)
        x[i] = -window[0][i];
    steady.solveInPlace(x);
    std::vector<double> rhs(n + m);
    for (std::size_t cyc = 0; cyc < window.size(); ++cyc) {
        for (std::size_t i = 0; i < n; ++i)
            rhs[i] = dp.nodeDecaps()[i] / dt * x[i] - window[cyc][i];
        for (std::size_t k = 0; k < m; ++k)
            rhs[n + k] =
                dp.branchInductance(set[k]) / dt * x[n + k] + vdd;
        trans.solveInPlace(rhs);
        x = rhs;
        // The trace maxes over load nodes; those are exactly the
        // nodes the uniform domain load maps current onto.
        double droop = 0.0;
        for (std::size_t i = 0; i < n; ++i)
            if (high[i] > 0.0)
                droop = std::max(droop, (vdd - x[i]) / vdd);
        ASSERT_NEAR(sparse.trace[cyc], droop, 1e-9)
            << "cycle " << cyc;
    }
}

TEST_F(PdnTest, TransferResistancesMatchDenseBorderedReference)
{
    std::size_t n = static_cast<std::size_t>(dp.nodeCount());
    double vdd = chip.params.vdd;
    for (int k = 0; k < dp.vrCount(); ++k) {
        LuSolver dense(borderedMatrix({k}, false));
        std::vector<double> rhs(n + 1);
        for (std::size_t j = 0; j < n; ++j) {
            std::fill(rhs.begin(), rhs.end(), 0.0);
            rhs[j] = -1.0;  // 1 A drawn at node j
            rhs[n] = vdd;
            auto v = dense.solve(rhs);
            ASSERT_NEAR(dp.transferResistance(static_cast<int>(j), k),
                        vdd - v[j], 1e-9)
                << "node " << j << " vr " << k;
        }
    }
}

TEST_F(PdnTest, CachedFactorisationMatchesFresh)
{
    auto load = domainLoad(1.1);
    std::vector<std::vector<Amperes>> window(120, load);

    dp.setActive({0, 4, 8});  // cache miss: built from scratch
    auto fresh_v = dp.steadyVoltages(load);
    double fresh_noise = dp.transientWindow(window, 40).maxNoiseFrac;

    std::uint64_t hits = dp.factorCacheHits();
    dp.setActive(allVrs());   // hit: cached since construction
    dp.setActive({0, 4, 8});  // hit
    EXPECT_EQ(dp.factorCacheHits(), hits + 2);
    auto cached_v = dp.steadyVoltages(load);
    for (std::size_t i = 0; i < cached_v.size(); ++i)
        EXPECT_EQ(cached_v[i], fresh_v[i]) << "node " << i;
    EXPECT_EQ(dp.transientWindow(window, 40).maxNoiseFrac,
              fresh_noise);

    // Rebuilding after a cache flush reproduces the factorisation
    // bit for bit (the determinism the parallel sweep relies on).
    std::uint64_t misses = dp.factorCacheMisses();
    dp.clearFactorCache();
    dp.setActive({0, 4, 8});
    EXPECT_EQ(dp.factorCacheMisses(), misses + 1);
    auto rebuilt_v = dp.steadyVoltages(load);
    for (std::size_t i = 0; i < rebuilt_v.size(); ++i)
        EXPECT_EQ(rebuilt_v[i], fresh_v[i]) << "node " << i;
}

TEST_F(PdnTest, ZeroCacheCapacityDisablesCachingCleanly)
{
    // factorCacheCapacity <= 0 must mean "no caching", not "cache of
    // size one": every distinct set is a miss, revisiting a set is a
    // miss again, and the solves still work (the live factorisation
    // is held outside the LRU so nothing evicts it mid-use).
    PdnParams prm;
    prm.factorCacheCapacity = 0;
    DomainPdn uncached(chip, 0, vreg::fivrDesign(), prm);
    auto load = domainLoad(1.1);

    EXPECT_EQ(uncached.factorCacheHits(), 0u);
    std::uint64_t misses = uncached.factorCacheMisses();
    uncached.setActive({0, 4, 8});
    auto v1 = uncached.steadyVoltages(load);
    uncached.setActive({0, 1, 2});
    uncached.setActive({0, 4, 8});  // revisit: rebuilt, not served
    EXPECT_EQ(uncached.factorCacheHits(), 0u);
    EXPECT_EQ(uncached.factorCacheMisses(), misses + 3);
    auto v2 = uncached.steadyVoltages(load);
    for (std::size_t i = 0; i < v1.size(); ++i)
        EXPECT_EQ(v2[i], v1[i]) << "node " << i;

    // ...and matches the cached instance bit for bit.
    dp.setActive({0, 4, 8});
    auto v_cached = dp.steadyVoltages(load);
    for (std::size_t i = 0; i < v1.size(); ++i)
        EXPECT_EQ(v1[i], v_cached[i]) << "node " << i;

    // Unchanged sets still short-circuit without cache traffic.
    misses = uncached.factorCacheMisses();
    uncached.setActive({8, 4, 0});
    EXPECT_EQ(uncached.factorCacheMisses(), misses);

    // Negative capacity behaves like zero.
    prm.factorCacheCapacity = -3;
    DomainPdn negative(chip, 0, vreg::fivrDesign(), prm);
    negative.setActive({0, 4, 8});
    negative.setActive({1, 5});
    EXPECT_EQ(negative.factorCacheHits(), 0u);
    auto v3 = negative.steadyVoltages(load);
    negative.setActive({0, 4, 8});
    auto v4 = negative.steadyVoltages(load);
    EXPECT_NE(v3, v4);  // different active sets: different field
    for (std::size_t i = 0; i < v1.size(); ++i)
        EXPECT_EQ(v4[i], v1[i]) << "node " << i;
}

TEST_F(PdnTest, LruEvictionKeepsRecentAndRebuildsExactly)
{
    PdnParams prm;
    prm.factorCacheCapacity = 3;
    DomainPdn small(chip, 0, vreg::fivrDesign(), prm);
    auto load = domainLoad(1.2);

    // Drive more distinct sets than the capacity holds; remember each
    // set's first-build solution.
    std::vector<std::vector<int>> sets = {
        {0}, {1}, {2}, {3}, {4}, {0, 4, 8}};
    std::vector<std::vector<Volts>> fresh;
    std::uint64_t misses0 = small.factorCacheMisses();
    for (const auto &s : sets) {
        small.setActive(s);
        fresh.push_back(small.steadyVoltages(load));
    }
    EXPECT_EQ(small.factorCacheMisses(), misses0 + sets.size());
    EXPECT_EQ(small.factorCacheHits(), 0u);

    // The last `capacity` sets — {4}, {3}, {0,4,8} — are resident:
    // revisiting them serves hits. (sets[5] is still the active set,
    // so touch the others first; recency after this block is
    // {0,4,8} > {3} > {4}.)
    small.setActive(sets[4]);
    small.setActive(sets[3]);
    small.setActive(sets[5]);
    EXPECT_EQ(small.factorCacheHits(), 3u);
    EXPECT_EQ(small.factorCacheMisses(), misses0 + sets.size());

    // A new insertion evicts exactly the least-recently-used entry:
    // {4} goes, {3} survives.
    small.setActive(sets[0]);  // miss: evicts sets[4]
    small.setActive(sets[3]);  // still resident: hit
    EXPECT_EQ(small.factorCacheHits(), 4u);
    EXPECT_EQ(small.factorCacheMisses(), misses0 + sets.size() + 1);
    small.setActive(sets[4]);  // evicted above: miss, rebuilt
    EXPECT_EQ(small.factorCacheMisses(), misses0 + sets.size() + 2);

    // Rebuilt-after-eviction entries reproduce the first build bit
    // for bit — eviction can cost time but never changes results.
    auto rebuilt = small.steadyVoltages(load);
    for (std::size_t i = 0; i < rebuilt.size(); ++i)
        EXPECT_EQ(rebuilt[i], fresh[4][i]) << "node " << i;
    small.setActive(sets[0]);  // resident from two inserts ago
    auto rebuilt0 = small.steadyVoltages(load);
    for (std::size_t i = 0; i < rebuilt0.size(); ++i)
        EXPECT_EQ(rebuilt0[i], fresh[0][i]) << "node " << i;
}

TEST_F(PdnTest, SetActiveShortCircuitsUnchangedSets)
{
    dp.setActive({0, 4, 8});
    std::uint64_t hits = dp.factorCacheHits();
    std::uint64_t misses = dp.factorCacheMisses();
    // Same set, permuted and with a duplicate: no cache traffic.
    dp.setActive({8, 0, 4, 4});
    EXPECT_EQ(dp.factorCacheHits(), hits);
    EXPECT_EQ(dp.factorCacheMisses(), misses);
    std::vector<int> expect = {0, 4, 8};
    EXPECT_EQ(dp.active(), expect);
}

TEST_F(PdnTest, TransferResistanceIsFloored)
{
    // The accessor promises a strictly positive value so the noise
    // estimators may divide freely.
    for (int j = 0; j < dp.nodeCount(); ++j)
        for (int k = 0; k < dp.vrCount(); ++k)
            EXPECT_GE(dp.transferResistance(j, k),
                      DomainPdn::kTransferRFloor);
}

TEST_F(PdnTest, DeathOnBadInputs)
{
    EXPECT_DEATH(dp.setActive({}), "at least one");
    EXPECT_DEATH(dp.setActive({42}), "bad local VR");
    std::vector<Amperes> bad(3, 0.0);
    EXPECT_DEATH(dp.steadyVoltages(bad), "size mismatch");
}

/** Every domain of the chip builds a solvable PDN. */
class AllDomains : public ::testing::TestWithParam<int>
{
};

TEST_P(AllDomains, BuildsAndSolves)
{
    auto chip = floorplan::buildPower8Chip();
    DomainPdn pdn(chip, GetParam(), vreg::fivrDesign(), {});
    std::vector<Watts> bp(chip.plan.blocks().size(), 1.0);
    auto load = pdn.nodeCurrents(bp);
    double noise = pdn.steadyMaxNoise(load);
    EXPECT_GE(noise, 0.0);
    EXPECT_LT(noise, 0.5);
}

INSTANTIATE_TEST_SUITE_P(Domains, AllDomains,
                         ::testing::Values(0, 3, 7, 8, 12, 15));

} // namespace
} // namespace pdn
} // namespace tg
