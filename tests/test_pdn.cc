/** @file Unit and property tests for the power-delivery network. */

#include <cmath>

#include <gtest/gtest.h>

#include "floorplan/power8.hh"
#include "pdn/domain_pdn.hh"
#include "vreg/design.hh"

namespace tg {
namespace pdn {
namespace {

class PdnTest : public ::testing::Test
{
  protected:
    PdnTest()
        : chip(floorplan::buildPower8Chip()),
          dp(chip, 0, vreg::fivrDesign(), {})
    {
    }

    /** Node currents for a uniform power draw on domain 0. */
    std::vector<Amperes>
    domainLoad(Watts per_block) const
    {
        std::vector<Watts> bp(chip.plan.blocks().size(), 0.0);
        for (int b : chip.plan.domains()[0].blocks)
            bp[static_cast<std::size_t>(b)] = per_block;
        return dp.nodeCurrents(bp);
    }

    std::vector<int>
    allVrs() const
    {
        std::vector<int> v(static_cast<std::size_t>(dp.vrCount()));
        for (std::size_t i = 0; i < v.size(); ++i)
            v[i] = static_cast<int>(i);
        return v;
    }

    floorplan::Chip chip;
    DomainPdn dp;
};

TEST_F(PdnTest, TopologyMatchesDomain)
{
    EXPECT_EQ(dp.vrCount(), 9);
    EXPECT_GT(dp.nodeCount(), 20);
    EXPECT_EQ(dp.domainId(), 0);
}

TEST_F(PdnTest, NoLoadMeansNoDroop)
{
    std::vector<Amperes> none(
        static_cast<std::size_t>(dp.nodeCount()), 0.0);
    auto v = dp.steadyVoltages(none);
    for (double volt : v)
        EXPECT_NEAR(volt, chip.params.vdd, 1e-9);
    EXPECT_NEAR(dp.steadyMaxNoise(none), 0.0, 1e-9);
}

TEST_F(PdnTest, LoadProducesDroop)
{
    auto load = domainLoad(1.0);
    double noise = dp.steadyMaxNoise(load);
    EXPECT_GT(noise, 0.0);
    EXPECT_LT(noise, 0.2);
}

TEST_F(PdnTest, SteadySolveIsLinear)
{
    auto l1 = domainLoad(0.5);
    auto l2 = domainLoad(1.0);
    auto v1 = dp.steadyVoltages(l1);
    auto v2 = dp.steadyVoltages(l2);
    double vdd = chip.params.vdd;
    for (std::size_t n = 0; n < v1.size(); ++n)
        EXPECT_NEAR(vdd - v2[n], 2.0 * (vdd - v1[n]), 1e-9);
}

TEST_F(PdnTest, MoreActiveVrsReduceSteadyNoise)
{
    auto load = domainLoad(1.0);
    dp.setActive({0});
    double one = dp.steadyMaxNoise(load);
    dp.setActive({0, 4, 8});
    double three = dp.steadyMaxNoise(load);
    dp.setActive(allVrs());
    double nine = dp.steadyMaxNoise(load);
    EXPECT_GT(one, three);
    EXPECT_GT(three, nine);
}

TEST_F(PdnTest, CurrentConservationAtSteadyState)
{
    // Sum of node currents equals the total the blocks draw.
    auto load = domainLoad(1.0);
    double total = 0.0;
    for (double i : load)
        total += i;
    Watts domain_power = 0.0;
    for (int b : chip.plan.domains()[0].blocks)
        (void)b, domain_power += 1.0;
    EXPECT_NEAR(total, domain_power / chip.params.vdd, 1e-9);
}

TEST_F(PdnTest, TransferResistancePositiveAndDistanceOrdered)
{
    // The droop a node sees from a far VR exceeds the droop from the
    // VR attached to it.
    for (int k = 0; k < dp.vrCount(); ++k) {
        int own = dp.vrAttachNode(k);
        double self = dp.transferResistance(own, k);
        EXPECT_GT(self, 0.0);
        for (int j = 0; j < dp.vrCount(); ++j) {
            if (j == k)
                continue;
            EXPECT_GE(dp.transferResistance(dp.vrAttachNode(j), k),
                      self - 1e-12);
        }
    }
}

TEST_F(PdnTest, TransientConstantLoadMatchesSteady)
{
    auto load = domainLoad(1.0);
    std::vector<std::vector<Amperes>> window(400, load);
    auto res = dp.transientWindow(window, 200);
    EXPECT_NEAR(res.maxNoiseFrac, dp.steadyMaxNoise(load), 5e-3);
    EXPECT_EQ(res.analysedCycles, 200);
}

TEST_F(PdnTest, LoadStepCausesTransientDroop)
{
    auto low = domainLoad(0.4);
    auto high = domainLoad(1.6);
    std::vector<std::vector<Amperes>> window(600, low);
    for (std::size_t c = 300; c < 600; ++c)
        window[c] = high;
    auto res = dp.transientWindow(window, 100, true);
    double steady_high = dp.steadyMaxNoise(high);
    // The inductive branch forces an excursion past the new steady
    // level right after the step.
    EXPECT_GT(res.maxNoiseFrac, steady_high * 1.2);
    ASSERT_EQ(res.trace.size(), 600u);
    // ...and the worst cycle sits shortly after the step.
    std::size_t worst = 0;
    for (std::size_t c = 1; c < res.trace.size(); ++c)
        if (res.trace[c] > res.trace[worst])
            worst = c;
    EXPECT_GE(worst, 300u);
    EXPECT_LT(worst, 450u);
}

TEST_F(PdnTest, EmergencyCyclesCounted)
{
    // Drive a load big enough to exceed the 10% threshold at steady
    // state: every analysed cycle is an emergency.
    dp.setActive({0});
    auto load = domainLoad(4.0);
    std::vector<std::vector<Amperes>> window(300, load);
    auto res = dp.transientWindow(window, 100);
    EXPECT_GT(dp.steadyMaxNoise(load), dp.params().emergencyFrac);
    EXPECT_EQ(res.emergencyCycles, res.analysedCycles);
}

TEST_F(PdnTest, FewerActiveBranchesDroopMoreOnSteps)
{
    auto low = domainLoad(0.5);
    auto high = domainLoad(1.5);
    std::vector<std::vector<Amperes>> window(500, low);
    for (std::size_t c = 250; c < 500; ++c)
        window[c] = high;

    dp.setActive(allVrs());
    double nine = dp.transientWindow(window, 100).maxNoiseFrac;
    dp.setActive({0, 1, 2});  // memory-side row only
    double three = dp.transientWindow(window, 100).maxNoiseFrac;
    EXPECT_GT(three, nine);
}

TEST_F(PdnTest, MemorySideSelectionIsNoisier)
{
    // Logic draws the current; supplying it from the far (memory)
    // row must droop more than from the logic rows.
    auto load = domainLoad(1.2);
    dp.setActive({0, 1, 2});  // bottom row (over the L2)
    double mem = dp.steadyMaxNoise(load);
    dp.setActive({6, 7, 8});  // top row (over ISU/EXU)
    double logic = dp.steadyMaxNoise(load);
    EXPECT_GT(mem, logic);
}

TEST_F(PdnTest, EstimateRanksSelectionsLikeTheSolver)
{
    auto load = domainLoad(1.2);
    std::vector<std::vector<int>> sets = {
        {0, 1, 2}, {6, 7, 8}, {0, 4, 8}, allVrs()};
    std::vector<double> est;
    std::vector<double> exact;
    for (const auto &s : sets) {
        est.push_back(dp.estimateNoise(s, load, 0.3));
        dp.setActive(s);
        exact.push_back(dp.steadyMaxNoise(load));
    }
    for (std::size_t a = 0; a < sets.size(); ++a)
        for (std::size_t b = 0; b < sets.size(); ++b)
            if (exact[a] > exact[b] * 1.15) {
                EXPECT_GT(est[a], est[b])
                    << "sets " << a << " vs " << b;
            }
}

TEST_F(PdnTest, LdoDesignLessTransientNoiseThanBuck)
{
    DomainPdn ldo(chip, 0, vreg::ldoDesign(), {});
    auto low = domainLoad(0.5);
    auto high = domainLoad(1.5);
    std::vector<std::vector<Amperes>> window(500, low);
    for (std::size_t c = 250; c < 500; ++c)
        window[c] = high;
    auto buck_res = dp.transientWindow(window, 100);
    auto ldo_res = ldo.transientWindow(window, 100);
    EXPECT_LT(ldo_res.maxNoiseFrac, buck_res.maxNoiseFrac);
}

TEST_F(PdnTest, DeathOnBadInputs)
{
    EXPECT_DEATH(dp.setActive({}), "at least one");
    EXPECT_DEATH(dp.setActive({42}), "bad local VR");
    std::vector<Amperes> bad(3, 0.0);
    EXPECT_DEATH(dp.steadyVoltages(bad), "size mismatch");
}

/** Every domain of the chip builds a solvable PDN. */
class AllDomains : public ::testing::TestWithParam<int>
{
};

TEST_P(AllDomains, BuildsAndSolves)
{
    auto chip = floorplan::buildPower8Chip();
    DomainPdn pdn(chip, GetParam(), vreg::fivrDesign(), {});
    std::vector<Watts> bp(chip.plan.blocks().size(), 1.0);
    auto load = pdn.nodeCurrents(bp);
    double noise = pdn.steadyMaxNoise(load);
    EXPECT_GE(noise, 0.0);
    EXPECT_LT(noise, 0.5);
}

INSTANTIATE_TEST_SUITE_P(Domains, AllDomains,
                         ::testing::Values(0, 3, 7, 8, 12, 15));

} // namespace
} // namespace pdn
} // namespace tg
