/** @file Unit tests for the aging model. */

#include <gtest/gtest.h>

#include "core/aging.hh"

namespace tg {
namespace core {
namespace {

TEST(Aging, ReferenceRateIsUnity)
{
    AgingModel m(2);
    m.accumulate(0, m.params().refTemp, true, 1.0);
    EXPECT_NEAR(m.damage(0), 1.0, 1e-12);
    EXPECT_EQ(m.damage(1), 0.0);
}

TEST(Aging, RateDoublesPerActivationDelta)
{
    AgingModel m(1);
    double ref = m.params().refTemp;
    double delta = m.params().activationDelta;
    m.accumulate(0, ref + delta, true, 1.0);
    EXPECT_NEAR(m.damage(0), 2.0, 1e-12);
    m.accumulate(0, ref + 2.0 * delta, true, 1.0);
    EXPECT_NEAR(m.damage(0), 6.0, 1e-12);
}

TEST(Aging, IdleStressIsReduced)
{
    AgingModel m(2);
    double ref = m.params().refTemp;
    m.accumulate(0, ref, true, 1.0);
    m.accumulate(1, ref, false, 1.0);
    EXPECT_NEAR(m.damage(1),
                m.params().idleStressFraction * m.damage(0), 1e-12);
}

TEST(Aging, DamageAccumulatesMonotonically)
{
    AgingModel m(1);
    double prev = 0.0;
    for (int i = 0; i < 10; ++i) {
        m.accumulate(0, 60.0 + i, i % 2 == 0, 0.5);
        EXPECT_GT(m.damage(0), prev);
        prev = m.damage(0);
    }
}

TEST(Aging, ImbalanceMetrics)
{
    AgingModel m(4);
    for (int v = 0; v < 4; ++v)
        m.accumulate(v, m.params().refTemp, true, 1.0 + v);
    // damages: 1, 2, 3, 4 -> mean 2.5, max 4.
    EXPECT_NEAR(m.meanDamage(), 2.5, 1e-12);
    EXPECT_NEAR(m.maxDamage(), 4.0, 1e-12);
    EXPECT_NEAR(m.imbalance(), 1.6, 1e-12);
}

TEST(Aging, FreshModelBalanced)
{
    AgingModel m(3);
    EXPECT_EQ(m.imbalance(), 1.0);
    EXPECT_EQ(m.maxDamage(), 0.0);
}

TEST(Aging, HotterRegulatorAgesFasterThanCooler)
{
    // The Section-7 mechanism: a regulator used heavily but kept in
    // a cool region can out-live a lightly-used hot one.
    AgingModel m(2);
    double ref = m.params().refTemp;
    // VR 0: 100% duty at ref; VR 1: 50% duty but 2.2 deltas hotter.
    for (int i = 0; i < 100; ++i) {
        m.accumulate(0, ref, true, 1e-3);
        m.accumulate(1, ref + 2.2 * m.params().activationDelta,
                     i % 2 == 0, 1e-3);
    }
    EXPECT_GT(m.damage(1), m.damage(0));
}

TEST(AgingDeath, InvalidInputs)
{
    EXPECT_DEATH(AgingModel m(0), "needs regulators");
    AgingModel m(1);
    EXPECT_DEATH(m.accumulate(0, 60.0, true, -1.0), "negative");
    EXPECT_ANY_THROW(m.damage(5));
}

} // namespace
} // namespace core
} // namespace tg
