/**
 * @file
 * Quickstart: simulate one SPLASH-2x benchmark on the paper's 8-core
 * evaluation chip under the practical thermally- and voltage-noise-
 * aware ThermoGater policy (PracVT), and print the headline metrics.
 *
 *   ./quickstart [benchmark]      (default: lu_ncb)
 */

#include <cstdio>

#include "floorplan/power8.hh"
#include "sim/simulation.hh"
#include "workload/profile.hh"

using namespace tg;

int
main(int argc, char **argv)
{
    const char *bench = argc > 1 ? argv[1] : "lu_ncb";

    // 1. The evaluation platform: POWER8-like 8-core chip, 16
    //    Vdd-domains, 96 distributed FIVR-like regulators.
    auto chip = floorplan::buildPower8Chip();

    // 2. A simulation context: thermal RC model, per-domain PDNs,
    //    power model, and the theta-profiling pass for the practical
    //    policies (run lazily on first use).
    sim::Simulation simulation(chip, sim::SimConfig{});

    // 3. Run the benchmark under PracVT: demand-driven gating that
    //    keeps conversion efficiency at its peak, selects the
    //    coolest-to-be regulators, and overrides to all-on when a
    //    voltage emergency is predicted.
    const auto &profile = workload::profileByName(bench);
    auto r = simulation.run(profile, core::PolicyKind::PracVT);

    std::printf("benchmark        : %s (%s)\n", profile.name.c_str(),
                profile.fullName.c_str());
    std::printf("policy           : PracVT\n");
    std::printf("mean chip power  : %.1f W\n", r.meanPower);
    std::printf("max temperature  : %.1f degC (at %s)\n", r.maxTmax,
                r.hottestSpot.c_str());
    std::printf("max gradient     : %.1f degC\n", r.maxGradient);
    std::printf("max voltage noise: %.1f %% of Vdd\n",
                r.maxNoiseFrac * 100.0);
    std::printf("emergency time   : %.3f %% of cycles\n",
                r.emergencyFrac * 100.0);
    std::printf("conversion eta   : %.2f %% (peak %.1f %%)\n",
                r.avgEta * 100.0,
                simulation.design().curve.peakEta() * 100.0);
    std::printf("regulator loss   : %.2f W avg over %.1f active VRs\n",
                r.avgRegulatorLoss, r.avgActiveVrs);
    std::printf("all-on overrides : %ld\n", r.overrideCount);
    std::printf("predictor R^2    : %.4f (paper calibrates ~0.99)\n",
                simulation.predictorRSquared());
    return 0;
}
