/**
 * @file
 * Compare all eight gating schemes of the paper on one benchmark:
 * the thermal / voltage-noise / efficiency trade-off of Section 6 in
 * a single table. The eight runs fan out across the parallel sweep
 * engine — one worker context per hardware thread by default.
 *
 *   ./policy_comparison [benchmark] [--jobs N]    (default: fft)
 */

#include <cstdlib>
#include <cstring>
#include <iostream>

#include "common/table.hh"
#include "floorplan/power8.hh"
#include "sim/sweep.hh"
#include "workload/profile.hh"

using namespace tg;

int
main(int argc, char **argv)
{
    const char *bench = "fft";
    int jobs = 0;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--jobs") && i + 1 < argc)
            jobs = std::atoi(argv[++i]);
        else
            bench = argv[i];
    }

    auto chip = floorplan::buildPower8Chip();
    sim::Simulation simulation(chip, sim::SimConfig{});
    const auto &profile = workload::profileByName(bench);

    std::cout << "policy comparison on " << profile.name << " ("
              << profile.fullName << ")\n\n";

    auto sweep = sim::runSweep(simulation, {profile.name}, {},
                               false, jobs);

    TextTable t({"policy", "Tmax (C)", "gradient (C)", "noise (%)",
                 "emerg (%)", "eta (%)", "VR loss (W)",
                 "avg active"});
    for (auto kind : sweep.policies) {
        const auto &r = sweep.at(profile.name, kind);
        t.addRow({core::policyName(kind), TextTable::num(r.maxTmax, 1),
                  TextTable::num(r.maxGradient, 1),
                  TextTable::num(r.maxNoiseFrac * 100.0, 1),
                  TextTable::num(r.emergencyFrac * 100.0, 3),
                  TextTable::num(r.avgEta * 100.0, 1),
                  TextTable::num(r.avgRegulatorLoss, 2),
                  TextTable::num(r.avgActiveVrs, 1)});
    }
    t.print(std::cout);

    std::cout << "\nreading guide: OracT/PracT minimise temperature "
                 "but inflate noise;\nOracV does the opposite; "
                 "OracVT/PracVT keep OracT's thermal profile while\n"
                 "snapping emergency-prone domains to all-on "
                 "(Section 6.2.4/6.3 of the paper).\n";
    return 0;
}
