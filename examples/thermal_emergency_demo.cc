/**
 * @file
 * Why on-chip regulators are a thermal hazard (paper Section 2), in
 * one runnable scenario: the same chip and workload, with power
 * conversion off-chip vs. all 96 regulators active on-chip. The
 * regulators' conversion loss (~4 W/mm^2 at their tiny footprint)
 * creates localised hot spots that push the hottest regulator far
 * above the silicon around it — and a gating governor (OracT) pulls
 * most of that back.
 */

#include <cstdio>

#include "floorplan/power8.hh"
#include "sim/simulation.hh"
#include "workload/profile.hh"

using namespace tg;

int
main()
{
    auto chip = floorplan::buildPower8Chip();
    sim::Simulation simulation(chip, sim::SimConfig{});
    const auto &profile = workload::profileByName("chol");

    sim::RecordOptions opts;
    opts.noiseSamplesOverride = 0;

    auto off = simulation.run(profile, core::PolicyKind::OffChip,
                              opts);
    auto on = simulation.run(profile, core::PolicyKind::AllOn, opts);
    auto gated = simulation.run(profile, core::PolicyKind::OracT,
                                opts);

    // The paper's motivating arithmetic (Section 2): P_loss density
    // at peak efficiency for the calibrated design.
    const auto &design = simulation.design();
    double i_pk = design.curve.peakCurrent();
    double ploss =
        design.curve.plossAt(chip.params.vdd, i_pk);
    std::printf("one regulator at peak efficiency: %.2f W loss on "
                "%.2f mm^2 = %.1f W/mm^2\n",
                ploss, design.areaMm2, ploss / design.areaMm2);
    std::printf("(air-cooling limit is ~1.5 W/mm^2 -> regulators are "
                "thermally dangerous)\n\n");

    std::printf("cholesky, mean chip power %.0f W:\n", on.meanPower);
    std::printf("  off-chip regulation : Tmax %.1f degC at %-12s "
                "gradient %.1f degC\n",
                off.maxTmax, off.hottestSpot.c_str(),
                off.maxGradient);
    std::printf("  all 96 VRs on       : Tmax %.1f degC at %-12s "
                "gradient %.1f degC\n",
                on.maxTmax, on.hottestSpot.c_str(), on.maxGradient);
    std::printf("  ThermoGater (OracT) : Tmax %.1f degC at %-12s "
                "gradient %.1f degC\n",
                gated.maxTmax, gated.hottestSpot.c_str(),
                gated.maxGradient);

    std::printf("\non-chip regulation costs %+.1f degC; "
                "thermally-aware gating recovers %+.1f degC while "
                "still converting at %.1f%% efficiency (all-on: "
                "%.1f%%)\n",
                on.maxTmax - off.maxTmax, gated.maxTmax - on.maxTmax,
                gated.avgEta * 100.0, on.avgEta * 100.0);
    return 0;
}
