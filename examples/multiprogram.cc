/**
 * @file
 * Multi-programmed workloads (paper Section 7): every core runs a
 * different program, and because ThermoGater governs each Vdd-domain
 * independently and tracks each domain's own conversion-efficiency
 * evolution, the heterogeneous mix needs no special handling.
 *
 * This example co-runs four busy cholesky instances with four light
 * raytrace instances and shows how the governor provisions the busy
 * domains with many active regulators while gating most of the
 * light ones — and what that asymmetry does to the chip's corners.
 */

#include <cstdio>

#include "floorplan/power8.hh"
#include "sim/simulation.hh"
#include "workload/profile.hh"

using namespace tg;

int
main()
{
    auto chip = floorplan::buildPower8Chip();
    sim::Simulation simulation(chip, sim::SimConfig{});

    const auto &busy = workload::profileByName("chol");
    const auto &light = workload::profileByName("rayt");

    // Cores 0-3 run cholesky, cores 4-7 run raytrace.
    std::vector<const workload::BenchmarkProfile *> per_core;
    for (int c = 0; c < 8; ++c)
        per_core.push_back(c < 4 ? &busy : &light);

    for (auto kind : {core::PolicyKind::AllOn,
                      core::PolicyKind::OracT,
                      core::PolicyKind::PracVT}) {
        auto r = simulation.runMixed(per_core, "4xchol+4xrayt", kind,
                                     {});
        std::printf("%-7s: power %5.1f W, Tmax %.1f degC (%s), "
                    "gradient %.1f, noise %.1f%%, eta %.1f%%\n",
                    core::policyName(kind), r.meanPower, r.maxTmax,
                    r.hottestSpot.c_str(), r.maxGradient,
                    r.maxNoiseFrac * 100.0, r.avgEta * 100.0);

        // Per-domain regulator provisioning under this policy.
        if (kind == core::PolicyKind::PracVT) {
            std::printf("\n  per-domain mean active VRs (PracVT):\n");
            for (const auto &dom : chip.plan.domains()) {
                if (dom.kind != floorplan::DomainKind::Core)
                    continue;
                double on = 0.0;
                for (int v : dom.vrs)
                    on += r.vrActivity[static_cast<std::size_t>(v)];
                std::printf("    %-6s (%s): %.1f of %zu\n",
                            dom.name.c_str(),
                            dom.id < 4 ? "chol" : "rayt", on,
                            dom.vrs.size());
            }
        }
    }
    return 0;
}
