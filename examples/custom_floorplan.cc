/**
 * @file
 * Build a custom chip with the floorplan API and govern it.
 *
 * ThermoGater is not tied to the paper's 8-core POWER8-like die: any
 * floorplan with Vdd-domains and regulator sites works. This example
 * assembles a little 2-core / 1-L3 asymmetric chip with 14 VRs,
 * wires up the thermal model, PDNs and regulator networks by hand,
 * and drives one governor decision per domain — the minimal "bring
 * your own chip" integration.
 */

#include <cstdio>
#include <numeric>

#include "core/governor.hh"
#include "core/thermal_predictor.hh"
#include "floorplan/floorplan.hh"
#include "floorplan/power8.hh"
#include "pdn/domain_pdn.hh"
#include "power/model.hh"
#include "thermal/model.hh"
#include "vreg/design.hh"
#include "vreg/network.hh"

using namespace tg;

namespace {

floorplan::Chip
buildCustomChip()
{
    // A 12 x 8 mm die: two cores side by side on top of a shared L3.
    floorplan::FloorplanBuilder b(12.0, 8.0);
    int d_big = b.addDomain("big-core", floorplan::DomainKind::Core);
    int d_small = b.addDomain("small-core",
                              floorplan::DomainKind::Core);
    int d_l3 = b.addDomain("l3", floorplan::DomainKind::L3);

    // Big core: 7 x 5 mm with an L2 strip.
    b.addBlock("big.exu", floorplan::UnitKind::Exu,
               {0.0, 5.5, 3.5, 2.5}, d_big, 0);
    b.addBlock("big.lsu", floorplan::UnitKind::Lsu,
               {3.5, 5.5, 3.5, 2.5}, d_big, 0);
    b.addBlock("big.ifu", floorplan::UnitKind::Ifu,
               {0.0, 3.0, 3.5, 2.5}, d_big, 0);
    b.addBlock("big.isu", floorplan::UnitKind::Isu,
               {3.5, 3.0, 3.5, 2.5}, d_big, 0);

    // Small core: 5 x 5 mm, two blocks only.
    b.addBlock("small.exu", floorplan::UnitKind::Exu,
               {7.0, 5.5, 5.0, 2.5}, d_small, 1);
    b.addBlock("small.ifu", floorplan::UnitKind::Ifu,
               {7.0, 3.0, 5.0, 2.5}, d_small, 1);

    // Shared L3 across the bottom.
    b.addBlock("l3", floorplan::UnitKind::L3, {0.0, 0.0, 12.0, 3.0},
               d_l3);

    // Regulator sites: 6 over the big core, 4 over the small one,
    // 4 over the L3.
    auto vr = [&](const char *name, double x, double y, int dom) {
        b.addVr(name, {x - 0.1, y - 0.1, 0.2, 0.2}, dom);
    };
    vr("big.vr0", 1.2, 4.2, d_big);
    vr("big.vr1", 3.5, 4.2, d_big);
    vr("big.vr2", 5.8, 4.2, d_big);
    vr("big.vr3", 1.2, 6.8, d_big);
    vr("big.vr4", 3.5, 6.8, d_big);
    vr("big.vr5", 5.8, 6.8, d_big);
    vr("small.vr0", 8.2, 4.2, d_small);
    vr("small.vr1", 10.8, 4.2, d_small);
    vr("small.vr2", 8.2, 6.8, d_small);
    vr("small.vr3", 10.8, 6.8, d_small);
    vr("l3.vr0", 1.5, 1.5, d_l3);
    vr("l3.vr1", 4.5, 1.5, d_l3);
    vr("l3.vr2", 7.5, 1.5, d_l3);
    vr("l3.vr3", 10.5, 1.5, d_l3);

    floorplan::Chip chip;
    chip.plan = b.build();
    chip.params = floorplan::ChipParams{};
    chip.params.cores = 2;
    chip.params.areaMm2 = chip.plan.area();
    chip.params.tdp = 40.0;
    return chip;
}

} // namespace

int
main()
{
    auto chip = buildCustomChip();
    std::printf("custom chip: %.0f mm^2, %zu blocks, %zu VRs, %zu "
                "domains\n\n",
                chip.plan.area(), chip.plan.blocks().size(),
                chip.plan.vrs().size(), chip.plan.domains().size());

    // Substrate models for the custom chip.
    auto design = vreg::fivrDesign();
    thermal::ThermalModel tm(chip, {});
    power::PowerModel pm(chip);

    // Steady thermal state for a busy big core and idle small core.
    std::vector<Watts> block_power(chip.plan.blocks().size());
    for (std::size_t b = 0; b < block_power.size(); ++b) {
        double act =
            chip.plan.blocks()[b].coreId == 0 ? 0.9 : 0.25;
        block_power[b] = pm.peakDynamic(static_cast<int>(b)) * act;
    }
    std::vector<Watts> vr_loss(chip.plan.vrs().size(), 0.0);
    auto temps = tm.steadyState(tm.powerVector(block_power, vr_loss));

    // One governor decision per domain under PracT-style inputs.
    core::Governor governor(core::PolicyKind::PracT,
                            static_cast<int>(
                                chip.plan.domains().size()));
    for (const auto &dom : chip.plan.domains()) {
        vreg::RegulatorNetwork net(design,
                                   static_cast<int>(dom.vrs.size()));
        net.setVout(chip.params.vdd);
        pdn::DomainPdn dp(chip, dom.id, design, {});

        core::DomainState st;
        st.domain = dom.id;
        st.demandNow = pm.domainCurrent(block_power, dom.id);
        st.demandNext = st.demandNow;
        st.didt = 0.5;
        st.headroomVrs = 1;
        for (int v : dom.vrs) {
            st.vrTemps.push_back(tm.vrTemp(temps, v));
            st.vrLossNow.push_back(0.0);
        }
        int non = net.requiredActive(st.demandNext);
        st.vrLossNextPerActive =
            net.evaluate(st.demandNext, non).plossTotal / non;
        st.nodeCurrents = dp.nodeCurrents(block_power);

        std::vector<double> thetas(dom.vrs.size(), 28.0);
        core::PolicyToolkit kit;
        kit.pdn = &dp;
        kit.network = &net;
        kit.thetas = &thetas;

        auto d = governor.decide(st, kit, false);
        std::printf("domain %-10s demand %5.2f A -> n_on %d of %zu, "
                    "active {",
                    dom.name.c_str(), st.demandNext, d.non,
                    dom.vrs.size());
        for (std::size_t i = 0; i < d.active.size(); ++i)
            std::printf("%s%d", i ? "," : "", d.active[i]);
        auto op = net.evaluate(st.demandNext,
                               static_cast<int>(d.active.size()));
        std::printf("} at eta %.1f%%\n", op.eta * 100.0);
    }

    std::printf("\nhottest spot: %.1f degC; gradient %.1f degC\n",
                tm.maxDieTemp(temps), tm.gradient(temps));
    return 0;
}
