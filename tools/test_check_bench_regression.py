#!/usr/bin/env python3
"""Self-test for check_bench_regression.py.

The script gates every CI run, so its behaviours are pinned here with
synthetic google-benchmark JSON fixtures: a within-threshold pass, a
beyond-threshold failure, benchmarks present on only one side (never
fatal), a missing calibration probe (falls back to raw times), a
missing baseline file (skip with exit 0), and the probe cancelling a
uniform machine-speed difference.

Run directly (python3 tools/test_check_bench_regression.py -v) or via
the gcc CI leg.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "check_bench_regression.py")
CAL = "BM_MachineCalibration"


def bench_json(times, aggregates=None):
    """Benchmark-JSON document from {name: real_time_ns}."""
    entries = [{"name": name, "real_time": t, "time_unit": "ns"}
               for name, t in times.items()]
    for name, t in (aggregates or {}).items():
        entries.append({"name": name, "real_time": t,
                        "time_unit": "ns", "run_type": "aggregate"})
    return {"context": {"note": "synthetic fixture"},
            "benchmarks": entries}


class CheckerTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)

    def write(self, name, doc):
        path = os.path.join(self.dir.name, name)
        with open(path, "w") as fh:
            json.dump(doc, fh)
        return path

    def run_check(self, current, baseline, *extra):
        return subprocess.run(
            [sys.executable, SCRIPT, current, baseline, *extra],
            capture_output=True, text=True)

    def test_within_threshold_passes(self):
        base = self.write("b.json", bench_json(
            {"BM_Run": 100.0, CAL: 50.0}))
        cur = self.write("c.json", bench_json(
            {"BM_Run": 110.0, CAL: 50.0}))
        r = self.run_check(cur, base, "--threshold", "0.25",
                           "--normalize-by", CAL)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("within regression threshold", r.stdout)

    def test_beyond_threshold_fails(self):
        base = self.write("b.json", bench_json(
            {"BM_Run": 100.0, CAL: 50.0}))
        cur = self.write("c.json", bench_json(
            {"BM_Run": 140.0, CAL: 50.0}))
        r = self.run_check(cur, base, "--threshold", "0.25",
                           "--normalize-by", CAL)
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("REGRESSED", r.stdout)
        self.assertIn("BM_Run", r.stdout)

    def test_missing_benchmark_is_reported_not_fatal(self):
        # Retired and newly-added benchmarks must not force a
        # baseline refresh in the same change.
        base = self.write("b.json", bench_json(
            {"BM_Old": 100.0, "BM_Run": 100.0, CAL: 50.0}))
        cur = self.write("c.json", bench_json(
            {"BM_New": 10.0, "BM_Run": 100.0, CAL: 50.0}))
        r = self.run_check(cur, base, "--normalize-by", CAL)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("[gone]", r.stdout)
        self.assertIn("BM_Old", r.stdout)
        self.assertIn("[new]", r.stdout)
        self.assertIn("BM_New", r.stdout)

    def test_missing_calibration_probe_falls_back_to_raw(self):
        base = self.write("b.json", bench_json({"BM_Run": 100.0}))
        cur = self.write("c.json", bench_json({"BM_Run": 100.0}))
        r = self.run_check(cur, base, "--normalize-by", CAL)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("comparing raw times", r.stdout)

    def test_missing_baseline_file_skips_with_success(self):
        cur = self.write("c.json", bench_json({"BM_Run": 100.0}))
        r = self.run_check(cur,
                           os.path.join(self.dir.name, "absent.json"))
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("skipping regression check", r.stdout)

    def test_probe_cancels_machine_speed(self):
        # Everything (probe included) 3x slower — a slower runner,
        # not a regression. Raw comparison would fail; normalized
        # must pass.
        base = self.write("b.json", bench_json(
            {"BM_Run": 100.0, CAL: 50.0}))
        cur = self.write("c.json", bench_json(
            {"BM_Run": 300.0, CAL: 150.0}))
        raw = self.run_check(cur, base, "--threshold", "0.25")
        self.assertEqual(raw.returncode, 1, raw.stdout + raw.stderr)
        norm = self.run_check(cur, base, "--threshold", "0.25",
                              "--normalize-by", CAL)
        self.assertEqual(norm.returncode, 0,
                         norm.stdout + norm.stderr)

    def test_probe_itself_never_fails(self):
        # The probe is fixed arithmetic; if IT drifts the runner
        # changed, which is exactly what normalization absorbs.
        base = self.write("b.json", bench_json(
            {"BM_Run": 100.0, CAL: 50.0}))
        cur = self.write("c.json", bench_json(
            {"BM_Run": 100.0, CAL: 500.0}))
        r = self.run_check(cur, base, "--threshold", "0.25")
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("BM_Run", r.stdout)  # raw: both 10x apart…
        r = self.run_check(cur, base, "--threshold", "0.25",
                           "--normalize-by", CAL)
        # …but normalized, BM_Run improved 10x and the probe's own
        # 10x excursion is reported as [cal], never failed.
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("[cal", r.stdout)

    def test_aggregates_are_ignored(self):
        base = self.write("b.json", bench_json(
            {"BM_Run": 100.0, CAL: 50.0}))
        cur = self.write("c.json", bench_json(
            {"BM_Run": 100.0, CAL: 50.0},
            aggregates={"BM_Run_mean": 900.0}))
        r = self.run_check(cur, base, "--threshold", "0.25")
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertNotIn("BM_Run_mean", r.stdout)


if __name__ == "__main__":
    unittest.main()
