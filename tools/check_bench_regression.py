#!/usr/bin/env python3
"""Compare a google-benchmark JSON result against a checked-in baseline.

Usage: check_bench_regression.py CURRENT.json BASELINE.json
           [--threshold 0.25] [--normalize-by NAME]

Fails (exit 1) when any benchmark shared by both files is slower than
baseline by more than the threshold fraction of real_time. Benchmarks
present in only one file are reported but never fail the check, so
adding or retiring benchmarks does not require touching the baseline
in the same change. When the baseline file does not exist the check is
skipped with exit 0.

--normalize-by NAME divides every benchmark's time by NAME's time
from the same file before comparing (a ratio of ratios). With a
machine-speed probe such as BM_MachineCalibration — fixed arithmetic
that never changes with the repo — this cancels the absolute speed of
the host, so a baseline recorded on one machine class still gates a
faster or slower CI runner; only a benchmark that got slower relative
to the calibration workload trips the check. The normalizer itself is
reported but never failed. Without --normalize-by, raw real_time is
compared, which is only meaningful when baseline and current ran on
the same runner class.
"""

import argparse
import json
import os
import sys


def load_times(path):
    """Map benchmark name -> (real_time, unit) from benchmark JSON."""
    with open(path) as fh:
        doc = json.load(fh)
    times = {}
    for entry in doc.get("benchmarks", []):
        if entry.get("run_type", "iteration") == "aggregate":
            continue
        times[entry["name"]] = (float(entry["real_time"]),
                                entry.get("time_unit", "ns"))
    return times


def normalize(times, name, label):
    """Divide every time by `name`'s time; unit becomes a ratio."""
    if name not in times:
        print(f"normalizer {name} missing from {label}; "
              "comparing raw times")
        return times
    ref = times[name][0]
    if ref <= 0:
        print(f"normalizer {name} has non-positive time in {label}; "
              "comparing raw times")
        return times
    return {k: (t / ref, "x-cal") for k, (t, _) in times.items()}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("current")
    ap.add_argument("baseline")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="allowed slowdown fraction (default 0.25)")
    ap.add_argument("--normalize-by", metavar="NAME", default=None,
                    help="benchmark whose time divides all others "
                         "before comparison (machine-speed probe)")
    args = ap.parse_args()

    if not os.path.exists(args.baseline):
        print(f"no baseline at {args.baseline}; skipping regression "
              "check")
        return 0

    current = load_times(args.current)
    baseline = load_times(args.baseline)
    if args.normalize_by:
        current = normalize(current, args.normalize_by, "current")
        baseline = normalize(baseline, args.normalize_by, "baseline")

    failures = []
    for name in sorted(baseline):
        if name not in current:
            print(f"  [gone]    {name} (baseline only)")
            continue
        base, base_unit = baseline[name]
        cur, unit = current[name]
        ratio = cur / base if base > 0 else float("inf")
        marker = "ok"
        if unit != base_unit:
            marker = "UNIT?"  # incomparable; report, never fail
        elif name == args.normalize_by:
            marker = "cal"  # the probe itself: reported, never failed
        elif ratio > 1.0 + args.threshold:
            marker = "REGRESSED"
            failures.append((name, ratio))
        print(f"  [{marker:9s}] {name}: {cur:.3g} {unit} vs "
              f"{base:.3g} {base_unit} ({ratio:.2f}x)")
    for name in sorted(set(current) - set(baseline)):
        print(f"  [new]     {name} (no baseline)")

    if failures:
        worst = max(failures, key=lambda f: f[1])
        print(f"FAIL: {len(failures)} benchmark(s) regressed more "
              f"than {args.threshold:.0%} (worst: {worst[0]} at "
              f"{worst[1]:.2f}x)")
        return 1
    print("benchmarks within regression threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
