#!/usr/bin/env python3
"""Compare a google-benchmark JSON result against a checked-in baseline.

Usage: check_bench_regression.py CURRENT.json BASELINE.json [--threshold 0.25]

Fails (exit 1) when any benchmark shared by both files is slower than
baseline by more than the threshold fraction of real_time. Benchmarks
present in only one file are reported but never fail the check, so
adding or retiring benchmarks does not require touching the baseline
in the same change. When the baseline file does not exist the check is
skipped with exit 0: CI machines vary enough that a baseline is only
meaningful once a maintainer records one from the same runner class
(copy a CI BENCH_run_*.json artifact to bench/baselines/).
"""

import argparse
import json
import os
import sys


def load_times(path):
    """Map benchmark name -> (real_time, unit) from benchmark JSON."""
    with open(path) as fh:
        doc = json.load(fh)
    times = {}
    for entry in doc.get("benchmarks", []):
        if entry.get("run_type", "iteration") == "aggregate":
            continue
        times[entry["name"]] = (float(entry["real_time"]),
                                entry.get("time_unit", "ns"))
    return times


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("current")
    ap.add_argument("baseline")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="allowed slowdown fraction (default 0.25)")
    args = ap.parse_args()

    if not os.path.exists(args.baseline):
        print(f"no baseline at {args.baseline}; skipping regression "
              "check")
        return 0

    current = load_times(args.current)
    baseline = load_times(args.baseline)

    failures = []
    for name in sorted(baseline):
        if name not in current:
            print(f"  [gone]    {name} (baseline only)")
            continue
        base, base_unit = baseline[name]
        cur, unit = current[name]
        ratio = cur / base if base > 0 else float("inf")
        marker = "ok"
        if unit != base_unit:
            marker = "UNIT?"  # incomparable; report, never fail
        elif ratio > 1.0 + args.threshold:
            marker = "REGRESSED"
            failures.append((name, ratio))
        print(f"  [{marker:9s}] {name}: {cur:.0f} {unit} vs "
              f"{base:.0f} {base_unit} ({ratio:.2f}x)")
    for name in sorted(set(current) - set(baseline)):
        print(f"  [new]     {name} (no baseline)")

    if failures:
        worst = max(failures, key=lambda f: f[1])
        print(f"FAIL: {len(failures)} benchmark(s) regressed more "
              f"than {args.threshold:.0%} (worst: {worst[0]} at "
              f"{worst[1]:.2f}x)")
        return 1
    print("benchmarks within regression threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
