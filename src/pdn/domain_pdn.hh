/**
 * @file
 * Per-Vdd-domain power-delivery-network model (the VoltSpot stand-in).
 *
 * Each Vdd-domain's local power grid is an R-mesh of nodes with
 * decoupling capacitance; the load circuit blocks are current sinks
 * spread over the mesh by footprint overlap; each *active* VR is an
 * ideal source behind its output resistance and inductance attached
 * to the nearest mesh node. Gated VRs are disconnected entirely.
 *
 * Two solvers share the topology:
 *  - a steady-state solve giving the IR-drop map for a constant load
 *    (used for initial conditions and the policy-facing estimates);
 *  - a cycle-resolution transient solve (implicit Euler at the core
 *    clock) giving the droop waveform the noise figures report. The
 *    inductive branch is what makes load steps ring: a buck phase's
 *    ~1.5 nH output inductor produces the large droops of Fig. 11,
 *    while the LDO's near-resistive output explains the Fig. 15
 *    advantage.
 *
 * Solver structure: the bordered systems [[G, -B], [B^T, R]] are
 * never assembled. Eliminating the m branch rows reduces them to the
 * n-node SPD system (G + B R^{-1} B^T) V = f + B R^{-1} g, i.e. the
 * grid Laplacian with a diagonal conductance boost at each active
 * VR's attach node. The grid block is factored ONCE per domain (all
 * branches in, sparse envelope LDL^T under an RCM ordering); a
 * specific active set is then a low-rank diagonal downdate handled
 * with the Woodbury identity, so setActive() never refactors the
 * grid. The per-active-set Woodbury data (a handful of solved
 * columns plus a tiny dense capacitance-matrix inverse) is kept in
 * an LRU cache keyed by the active-set bitmask: a governor flipping
 * among a small set of configurations pays the build cost once.
 *
 * Voltage noise is reported as the paper reports it: the maximum of
 * (Vdd - V_node)/Vdd over the domain's load nodes, with a voltage
 * emergency flagged when it exceeds 10% of nominal.
 *
 * Solves reuse internal scratch buffers (no per-cycle heap
 * allocation), so one DomainPdn must not be driven concurrently from
 * multiple threads; the sweep engine builds one Simulation — hence
 * one PDN set — per worker.
 */

#ifndef TG_PDN_DOMAIN_PDN_HH
#define TG_PDN_DOMAIN_PDN_HH

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/matrix.hh"
#include "common/sparse.hh"
#include "common/units.hh"
#include "floorplan/power8.hh"
#include "vreg/design.hh"

namespace tg {
namespace pdn {

/** Electrical parameters of a domain's local grid. */
struct PdnParams
{
    Metres nodePitch = 0.9e-3;   //!< mesh node pitch [m]
    double sheetResistance = 0.008; //!< grid sheet resistance [ohm/sq]
    double decapPerMm2 = 4e-9;   //!< decoupling capacitance [F/mm^2]
    /**
     * Loop inductance per metre of separation between a VR and the
     * domain's logic centroid [H/m]: supplying the load from farther
     * away closes a larger current loop through the grid, which is
     * the transient analogue of the IR-drop distance penalty that
     * makes thermally-driven (memory-side) selections noisy.
     */
    double gridInductancePerM = 2.5e-7;
    Seconds cycleTime = 0.25e-9; //!< transient step = clock period [s]
    double emergencyFrac = 0.10; //!< voltage-emergency threshold
    /**
     * Active-set factorisations kept alive (LRU). The governor flips
     * among a handful of configurations per domain, so a small cache
     * removes nearly all Woodbury rebuilds; each entry costs a few
     * n-vectors of memory. Zero (or negative) cleanly disables
     * caching: every new active set is built and discarded when the
     * next one replaces it, and every non-short-circuited
     * setActive() counts as a miss.
     */
    int factorCacheCapacity = 16;
};

/** Result of one transient noise window. */
struct NoiseResult
{
    double maxNoiseFrac = 0.0; //!< max droop as a fraction of Vdd
    int emergencyCycles = 0;   //!< analysed cycles above threshold
    int analysedCycles = 0;    //!< cycles contributing to the stats
    /** Per-cycle max droop fraction (only when requested). */
    std::vector<double> trace;
};

/**
 * The PDN of one Vdd-domain.
 *
 * setActive() selects the active-VR configuration; the solvers then
 * run against it. Local VR indices are positions within the domain's
 * VR list (0 .. vrCount()-1).
 */
class DomainPdn
{
  public:
    /**
     * Transfer resistances are bounded below by the VR output
     * resistance (~1e-2 ohm); this floor only guards a degenerate
     * entry from being divided to infinity in the noise estimators.
     */
    static constexpr double kTransferRFloor = 1e-9;

    /**
     * @param custom_vr_sites when non-empty, overrides the floorplan
     *        VR positions of this domain (same count required) —
     *        used by the placement optimiser to evaluate candidate
     *        layouts without rebuilding the floorplan
     */
    DomainPdn(const floorplan::Chip &chip, int domain,
              const vreg::VrDesign &design, PdnParams params = {},
              std::vector<floorplan::Rect> custom_vr_sites = {});

    int nodeCount() const { return nNodes; }
    int vrCount() const { return static_cast<int>(vrNodes.size()); }
    int domainId() const { return domain; }

    /**
     * Map per-block power [W] (indexed like Floorplan::blocks()) to
     * per-node load current [A] for this domain's blocks.
     */
    std::vector<Amperes>
    nodeCurrents(const std::vector<Watts> &block_power) const;

    /** nodeCurrents() into a caller-owned (resized) buffer. */
    void nodeCurrentsInto(const std::vector<Watts> &block_power,
                          std::vector<Amperes> &out) const;

    /**
     * Select the active VR set (local indices; duplicates are
     * collapsed). Reuses a cached factorisation when this
     * configuration was seen recently, and short-circuits entirely
     * when the set is unchanged.
     */
    void setActive(const std::vector<int> &active_local);

    /** Currently active local VR indices (sorted, unique). */
    const std::vector<int> &active() const { return activeSet; }

    /** Active-set factorisations served from the LRU cache. */
    std::uint64_t factorCacheHits() const { return cacheHits; }
    /** Active-set factorisations built from scratch. */
    std::uint64_t factorCacheMisses() const { return cacheMisses; }
    /** Drop all cached factorisations (benchmarks / tests). */
    void clearFactorCache();

    /** Steady-state node voltages for constant node currents [V]. */
    std::vector<Volts>
    steadyVoltages(const std::vector<Amperes> &node_currents) const;

    /** Steady-state max droop fraction for constant node currents. */
    double steadyMaxNoise(const std::vector<Amperes> &node_currents) const;

    /**
     * Transient window: `cycle_currents[c]` holds per-node load
     * currents at cycle c. The first `warmup` cycles settle the state
     * (initialised from the steady solution of cycle 0) and are
     * excluded from the statistics.
     */
    NoiseResult
    transientWindow(const std::vector<std::vector<Amperes>> &cycle_currents,
                    int warmup, bool keep_trace = false) const;

    /**
     * transientWindow() over a flat row-major cycle buffer: the load
     * currents of cycle c are the `nodeCount()` values starting at
     * `currents + c * stride` (stride >= nodeCount()). The run loop's
     * noise sampler builds one contiguous window per domain and hands
     * a strided view here, so no per-cycle row vectors exist; the
     * vector-of-rows overload packs into this form.
     */
    NoiseResult transientWindow(const Amperes *currents,
                                std::size_t cycles, std::size_t stride,
                                int warmup,
                                bool keep_trace = false) const;

    /** One window of a lockstep batch: a flat strided cycle buffer. */
    struct WindowSpec
    {
        const Amperes *currents = nullptr; //!< cycle-major load rows
        std::size_t stride = 0;            //!< row stride >= nodeCount()
    };

    /** Widest lockstep kernel instantiated (see common/simd.hh). */
    static constexpr int kMaxWindowBatch = 8;

    /**
     * Advance `count` independent transient windows through the
     * current factorisation in SIMD lockstep: per-cycle base solve,
     * Woodbury rank-r correction, branch update, and droop scan all
     * execute once per cycle for the whole batch, with each window
     * occupying one lane. Lane arithmetic preserves the exact scalar
     * operation order, so out[i] is bit-identical to
     * transientWindow(windows[i].currents, cycles, windows[i].stride,
     * warmup, keep_trace) at every batch width. `count` is chunked
     * internally into fixed widths (8/4/2) with a scalar ragged
     * tail; all windows share cycles/warmup. No heap allocation
     * after the first call at a given width (trace buffers aside).
     */
    void transientWindowBatch(const WindowSpec *windows, int count,
                              std::size_t cycles, int warmup,
                              bool keep_trace, NoiseResult *out) const;

    /**
     * Steady-state transfer resistance from mesh node `node` to VR
     * `vr_local` [ohm]: the droop at `node` per ampere drawn there
     * when `vr_local` is the only active VR (includes the VR output
     * resistance). Policies use these to estimate the noise impact
     * of a candidate active set without a transient solve. Values
     * are floored at kTransferRFloor so callers may divide freely.
     */
    double transferResistance(int node, int vr_local) const;

    /**
     * Fast policy-facing noise estimate for a candidate active set:
     * treats the paths to the active VRs as parallel resistances per
     * node (exact for a star topology, a good ranking proxy on a
     * mesh) and adds the inductive droop of redistributing each
     * node's current step through the active branches.
     */
    double estimateNoise(const std::vector<int> &active_local,
                         const std::vector<Amperes> &node_currents,
                         double didt) const;

    /** Mesh node nearest to a VR site (local VR index). */
    int vrAttachNode(int vr_local) const { return vrNodes[vr_local]; }

    /** Branch loop inductance of a VR [H] (tests / benches). */
    double branchInductance(int vr_local) const
    {
        return vrLoopL[static_cast<std::size_t>(vr_local)];
    }

    /** Mesh conductance matrix G (tests / dense reference). */
    const SparseMatrix &gridConductance() const { return gGrid; }

    /** Per-node decoupling capacitance [F] (tests / benches). */
    const std::vector<double> &nodeDecaps() const { return decap; }

    /** Centre of mesh node `node` in floorplan coordinates [mm]. */
    std::pair<double, double> nodePosition(int node) const;

    /** VR sites in use (floorplan or custom override). */
    const std::vector<floorplan::Rect> &sites() const
    {
        return vrSites;
    }

    const PdnParams &params() const { return prm; }

  private:
    const floorplan::Chip &chipRef;
    int domain;
    vreg::VrDesign design;
    PdnParams prm;
    std::vector<floorplan::Rect> vrSites;  //!< VR positions in use

    int gridW = 0;
    int gridH = 0;
    int nNodes = 0;
    double cellW = 0.0;  //!< mesh cell width [mm]
    double cellH = 0.0;  //!< mesh cell height [mm]
    double originX = 0.0;  //!< domain bounding box origin [mm]
    double originY = 0.0;
    double pitchMm = 0.0;

    SparseMatrix gGrid;               //!< mesh conductances (n x n)
    std::vector<double> decap;        //!< per-node capacitance [F]
    std::vector<int> vrNodes;         //!< attach node per local VR
    std::vector<double> vrLoopL;      //!< per-VR branch inductance [H]
    std::vector<bool> loadNode;       //!< nodes with load current
    std::vector<int> loadIdx;         //!< load nodes, ascending
    /** Per block: (node, weight) pairs, weights summing to 1. */
    std::vector<std::vector<std::pair<int, double>>> blockNodes;

    /**
     * Base factorisations with EVERY branch connected: the reduced
     * steady matrix G + sum_k (1/R_out) e_k e_k^T and the reduced
     * implicit-Euler matrix G + C/dt + sum_k (1/(L_k/dt + R_out))
     * e_k e_k^T. Factored once; active subsets are downdates.
     */
    std::unique_ptr<SparseLdltSolver> steadyBase;
    std::unique_ptr<SparseLdltSolver> transientBase;

    /**
     * Woodbury downdate removing the inactive branches from a base
     * factorisation: M_S = M0 - E D E^T with E the attach-node
     * columns and D the removed branch conductances. A solve against
     * M_S is one base solve plus a rank-r correction through the
     * precomputed capacitance-matrix inverse:
     *   M_S^{-1} x = t + W (D^{-1} - E^T W)^{-1} E^T t,
     * where t = M0^{-1} x and W = M0^{-1} E.
     */
    struct Downdate
    {
        std::vector<int> nodes; //!< attach nodes of removed branches
        Matrix w;               //!< n x r solved columns M0^{-1} E
        Matrix capInverse;      //!< r x r (D^{-1} - E^T W)^{-1}
    };

    /** Cached per-active-set solver state. */
    struct Factorization
    {
        Downdate steady;
        Downdate transient;
    };

    /** LRU cache of factorisations keyed by active-set bitmask. */
    std::list<std::pair<std::uint64_t, Factorization>> cacheList;
    std::unordered_map<
        std::uint64_t,
        std::list<std::pair<std::uint64_t, Factorization>>::iterator>
        cacheMap;
    /**
     * Build-and-discard slot used when factorCacheCapacity <= 0:
     * holds the one live factorisation outside the LRU structures so
     * `current` stays valid without any insert/evict bookkeeping.
     */
    Factorization uncached;
    const Factorization *current = nullptr;
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;

    std::vector<int> activeSet;

    Matrix transferR;  //!< nodeCount x vrCount transfer resistances

    // Reusable solve workspaces (see thread-safety note above).
    mutable std::vector<double> voltScratch;   //!< node voltages
    mutable std::vector<double> rhsScratch;    //!< reduced-system rhs
    mutable std::vector<double> branchScratch; //!< branch currents
    mutable std::vector<double> branchRhs;     //!< branch rhs g_k
    mutable std::vector<double> branchR;       //!< branch R (L/dt+R)
    mutable std::vector<double> smallScratch;  //!< rank-r correction
    mutable std::vector<double> windowScratch; //!< packed cycle rows
    mutable std::vector<double> batchVolt;     //!< n x W lane voltages
    mutable std::vector<double> batchRhs;      //!< n x W lane rhs
    mutable std::vector<double> batchBranch;   //!< m x W lane currents
    mutable std::vector<double> batchBranchRhs; //!< m x W lane g_k

    void buildTopology();
    void buildBaseFactors();
    void buildTransferResistances();
    Downdate makeDowndate(const SparseLdltSolver &base,
                          const std::vector<int> &removed,
                          const std::vector<double> &removed_r) const;
    void solveReduced(const SparseLdltSolver &base, const Downdate &dd,
                      std::vector<double> &x) const;
    template <int W>
    void solveReducedBatch(const SparseLdltSolver &base,
                           const Downdate &dd, double *x) const;
    template <int W>
    void transientWindowLockstep(const WindowSpec *windows,
                                 std::size_t cycles, int warmup,
                                 bool keep_trace,
                                 NoiseResult *out) const;
};

} // namespace pdn
} // namespace tg

#endif // TG_PDN_DOMAIN_PDN_HH
