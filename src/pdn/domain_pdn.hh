/**
 * @file
 * Per-Vdd-domain power-delivery-network model (the VoltSpot stand-in).
 *
 * Each Vdd-domain's local power grid is an R-mesh of nodes with
 * decoupling capacitance; the load circuit blocks are current sinks
 * spread over the mesh by footprint overlap; each *active* VR is an
 * ideal source behind its output resistance and inductance attached
 * to the nearest mesh node. Gated VRs are disconnected entirely.
 *
 * Two solvers share the topology:
 *  - a steady-state solve giving the IR-drop map for a constant load
 *    (used for initial conditions and the policy-facing estimates);
 *  - a cycle-resolution transient solve (implicit Euler at the core
 *    clock, cached LU per active set) giving the droop waveform the
 *    noise figures report. The inductive branch is what makes load
 *    steps ring: a buck phase's ~1.5 nH output inductor produces the
 *    large droops of Fig. 11, while the LDO's near-resistive output
 *    explains the Fig. 15 advantage.
 *
 * Voltage noise is reported as the paper reports it: the maximum of
 * (Vdd - V_node)/Vdd over the domain's load nodes, with a voltage
 * emergency flagged when it exceeds 10% of nominal.
 */

#ifndef TG_PDN_DOMAIN_PDN_HH
#define TG_PDN_DOMAIN_PDN_HH

#include <memory>
#include <utility>
#include <vector>

#include "common/matrix.hh"
#include "common/units.hh"
#include "floorplan/power8.hh"
#include "vreg/design.hh"

namespace tg {
namespace pdn {

/** Electrical parameters of a domain's local grid. */
struct PdnParams
{
    Metres nodePitch = 0.9e-3;   //!< mesh node pitch [m]
    double sheetResistance = 0.008; //!< grid sheet resistance [ohm/sq]
    double decapPerMm2 = 4e-9;   //!< decoupling capacitance [F/mm^2]
    /**
     * Loop inductance per metre of separation between a VR and the
     * domain's logic centroid [H/m]: supplying the load from farther
     * away closes a larger current loop through the grid, which is
     * the transient analogue of the IR-drop distance penalty that
     * makes thermally-driven (memory-side) selections noisy.
     */
    double gridInductancePerM = 2.5e-7;
    Seconds cycleTime = 0.25e-9; //!< transient step = clock period [s]
    double emergencyFrac = 0.10; //!< voltage-emergency threshold
};

/** Result of one transient noise window. */
struct NoiseResult
{
    double maxNoiseFrac = 0.0; //!< max droop as a fraction of Vdd
    int emergencyCycles = 0;   //!< analysed cycles above threshold
    int analysedCycles = 0;    //!< cycles contributing to the stats
    /** Per-cycle max droop fraction (only when requested). */
    std::vector<double> trace;
};

/**
 * The PDN of one Vdd-domain.
 *
 * setActive() selects and factors the active-VR configuration; the
 * solvers then run against it. Local VR indices are positions within
 * the domain's VR list (0 .. vrCount()-1).
 */
class DomainPdn
{
  public:
    /**
     * @param custom_vr_sites when non-empty, overrides the floorplan
     *        VR positions of this domain (same count required) —
     *        used by the placement optimiser to evaluate candidate
     *        layouts without rebuilding the floorplan
     */
    DomainPdn(const floorplan::Chip &chip, int domain,
              const vreg::VrDesign &design, PdnParams params = {},
              std::vector<floorplan::Rect> custom_vr_sites = {});

    int nodeCount() const { return nNodes; }
    int vrCount() const { return static_cast<int>(vrNodes.size()); }
    int domainId() const { return domain; }

    /**
     * Map per-block power [W] (indexed like Floorplan::blocks()) to
     * per-node load current [A] for this domain's blocks.
     */
    std::vector<Amperes>
    nodeCurrents(const std::vector<Watts> &block_power) const;

    /** Select the active VR set (local indices) and factor it. */
    void setActive(const std::vector<int> &active_local);

    /** Currently active local VR indices. */
    const std::vector<int> &active() const { return activeSet; }

    /** Steady-state node voltages for constant node currents [V]. */
    std::vector<Volts>
    steadyVoltages(const std::vector<Amperes> &node_currents) const;

    /** Steady-state max droop fraction for constant node currents. */
    double steadyMaxNoise(const std::vector<Amperes> &node_currents) const;

    /**
     * Transient window: `cycle_currents[c]` holds per-node load
     * currents at cycle c. The first `warmup` cycles settle the state
     * (initialised from the steady solution of cycle 0) and are
     * excluded from the statistics.
     */
    NoiseResult
    transientWindow(const std::vector<std::vector<Amperes>> &cycle_currents,
                    int warmup, bool keep_trace = false) const;

    /**
     * Steady-state transfer resistance from mesh node `node` to VR
     * `vr_local` [ohm]: the droop at `node` per ampere drawn there
     * when `vr_local` is the only active VR (includes the VR output
     * resistance). Policies use these to estimate the noise impact
     * of a candidate active set without a transient solve.
     */
    double transferResistance(int node, int vr_local) const;

    /**
     * Fast policy-facing noise estimate for a candidate active set:
     * treats the paths to the active VRs as parallel resistances per
     * node (exact for a star topology, a good ranking proxy on a
     * mesh) and adds the inductive droop of redistributing each
     * node's current step through the active branches.
     */
    double estimateNoise(const std::vector<int> &active_local,
                         const std::vector<Amperes> &node_currents,
                         double didt) const;

    /** Mesh node nearest to a VR site (local VR index). */
    int vrAttachNode(int vr_local) const { return vrNodes[vr_local]; }

    /** Centre of mesh node `node` in floorplan coordinates [mm]. */
    std::pair<double, double> nodePosition(int node) const;

    /** VR sites in use (floorplan or custom override). */
    const std::vector<floorplan::Rect> &sites() const
    {
        return vrSites;
    }

    const PdnParams &params() const { return prm; }

  private:
    const floorplan::Chip &chipRef;
    int domain;
    vreg::VrDesign design;
    PdnParams prm;
    std::vector<floorplan::Rect> vrSites;  //!< VR positions in use

    int gridW = 0;
    int gridH = 0;
    int nNodes = 0;
    double cellW = 0.0;  //!< mesh cell width [mm]
    double cellH = 0.0;  //!< mesh cell height [mm]
    double originX = 0.0;  //!< domain bounding box origin [mm]
    double originY = 0.0;
    double pitchMm = 0.0;

    Matrix gGrid;                     //!< mesh conductances (n x n)
    std::vector<double> decap;        //!< per-node capacitance [F]
    std::vector<int> vrNodes;         //!< attach node per local VR
    std::vector<double> vrLoopL;      //!< per-VR branch inductance [H]
    std::vector<bool> loadNode;       //!< nodes with load current
    /** Per block: (node, weight) pairs, weights summing to 1. */
    std::vector<std::vector<std::pair<int, double>>> blockNodes;

    std::vector<int> activeSet;
    std::unique_ptr<LuSolver> luSteady;    //!< [[G,-B],[B^T,R]]
    std::unique_ptr<LuSolver> luTransient; //!< implicit-Euler matrix

    Matrix transferR;  //!< nodeCount x vrCount transfer resistances

    void buildTopology();
    void buildTransferResistances();
};

} // namespace pdn
} // namespace tg

#endif // TG_PDN_DOMAIN_PDN_HH
