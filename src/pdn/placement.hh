/**
 * @file
 * Voltage-noise-driven regulator placement optimisation.
 *
 * The paper (Section 5) derives its regulator layout with the
 * methodology of Wang et al.'s "Walking Pads" C4-placement work:
 * starting from the regulators in the immediate vicinity of the
 * voltage-noise peak, attempt to move regulators one by one and
 * accept a move only when it reduces the maximum (steady-state)
 * voltage noise, iterating to convergence. The paper reports the
 * optimised layout deviates only slightly from the uniform one
 * (within 0.4% of Vdd), which justifies evaluating on the regular
 * uniform placement; the `placement_optimization` bench reproduces
 * that comparison.
 */

#ifndef TG_PDN_PLACEMENT_HH
#define TG_PDN_PLACEMENT_HH

#include <vector>

#include "floorplan/power8.hh"
#include "pdn/domain_pdn.hh"
#include "vreg/design.hh"

namespace tg {
namespace pdn {

/** Knobs of the placement search. */
struct PlacementParams
{
    int maxIterations = 12;   //!< full passes over the VR set
    /** Candidate-site lattice resolution across the domain box. */
    int latticeW = 8;
    int latticeH = 8;
    /** Minimum noise improvement to accept a move (fraction of
     *  Vdd); guards against float-level oscillation. */
    double minGain = 1e-5;
};

/** Outcome of one domain's placement optimisation. */
struct PlacementResult
{
    /** Final VR sites (same order as the domain's VR list). */
    std::vector<floorplan::Rect> sites;
    double initialNoise = 0.0;  //!< max steady droop, uniform layout
    double finalNoise = 0.0;    //!< max steady droop, optimised
    int iterations = 0;         //!< passes executed
    int acceptedMoves = 0;      //!< position changes kept
    /** Mean displacement of the VRs from their uniform sites [mm]. */
    double meanDisplacementMm = 0.0;
};

/**
 * Optimise the VR placement of one Vdd-domain for the given load.
 *
 * @param block_power per-block power [W] defining the load map the
 *        layout is optimised against (typically the domain's
 *        worst-case demand)
 */
PlacementResult
optimizePlacement(const floorplan::Chip &chip, int domain,
                  const vreg::VrDesign &design,
                  const std::vector<Watts> &block_power,
                  PdnParams pdn_params = {},
                  PlacementParams params = {});

} // namespace pdn
} // namespace tg

#endif // TG_PDN_PLACEMENT_HH
