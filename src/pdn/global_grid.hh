/**
 * @file
 * Chip-level (input-side) power-delivery grid.
 *
 * An off-chip voltage converter feeds the on-chip regulators over
 * the *global* power grid through the C4 pad array (paper Section 1
 * and footnotes 3-4: C4 pads feed the global grid, on-chip VRs the
 * local grids; the paper's placement methodology descends from C4
 * placement work). The on-chip regulators are the global grid's
 * loads: each active VR draws its input current
 * I_in = P_out / (eta * V_in); unregulated blocks (NoC, MCs) draw
 * directly.
 *
 * The model is a resistive mesh with an area array of C4 pads (ideal
 * supply behind a per-pad resistance). It answers two questions the
 * local-grid analysis cannot: how much droop the regulator *inputs*
 * see, and how regulator gating redistributes the input-side current
 * (fewer active VRs draw more each). The evaluation shows the
 * input-side droop stays well below the local-grid noise, which is
 * what justifies the paper analysing local noise only.
 */

#ifndef TG_PDN_GLOBAL_GRID_HH
#define TG_PDN_GLOBAL_GRID_HH

#include <memory>
#include <vector>

#include "common/sparse.hh"
#include "common/units.hh"
#include "floorplan/power8.hh"
#include "vreg/network.hh"

namespace tg {
namespace pdn {

/** Electrical parameters of the global grid. */
struct GlobalGridParams
{
    Metres nodePitch = 1.5e-3;      //!< mesh node pitch [m]
    double sheetResistance = 0.004; //!< global grid [ohm/sq]
    int padPitchNodes = 2;          //!< C4 pad every N mesh nodes
    double padResistance = 0.04;    //!< per-C4-pad resistance [ohm]
    Volts vin = 1.8;                //!< global supply voltage [V]
};

/** Result of a global-grid solve. */
struct GlobalDroop
{
    double maxDroopFrac = 0.0;  //!< worst droop / V_in
    double meanDroopFrac = 0.0; //!< load-weighted mean droop / V_in
    Amperes totalCurrent = 0.0; //!< total current drawn [A]
};

/**
 * The chip-wide input grid with its C4 pad array.
 */
class GlobalGrid
{
  public:
    GlobalGrid(const floorplan::Chip &chip,
               GlobalGridParams params = {});

    int nodeCount() const { return nNodes; }
    int padCount() const { return static_cast<int>(padNodes.size()); }
    int gridWidth() const { return gridW; }
    int gridHeight() const { return gridH; }
    const GlobalGridParams &params() const { return prm; }

    /**
     * Input current map for a gating configuration: every *active*
     * VR draws P_out_share / (eta * V_in) at its site; unregulated
     * blocks draw their power directly from the global grid.
     *
     * @param block_power  per-block power [W]
     * @param vr_input     per chip-VR input power [W] (0 when gated)
     */
    std::vector<Amperes>
    nodeCurrents(const std::vector<Watts> &block_power,
                 const std::vector<Watts> &vr_input) const;

    /**
     * nodeCurrents() without the allocation: writes the map into
     * `out` (resized to nodeCount()), for callers assembling many
     * maps into a solveBatch() block.
     */
    void nodeCurrentsInto(const std::vector<Watts> &block_power,
                          const std::vector<Watts> &vr_input,
                          std::vector<Amperes> &out) const;

    /** Steady droop of the global grid for the given currents. */
    GlobalDroop solve(const std::vector<Amperes> &node_currents) const;

    /**
     * Blocked droop evaluation: push every current map through ONE
     * multi-RHS pass of the shared factorization instead of one
     * envelope traversal per map. Column j of the block is
     * bit-identical to solve(maps[j]) — SparseLdltSolver's multi-RHS
     * path keeps columns independent, and the droop reduction here
     * mirrors the scalar loop order exactly.
     *
     * @param maps      per-scenario node-current maps (each
     *                  nodeCount() long)
     * @param out       one GlobalDroop per map (resized to fit)
     * @param voltages  optional: node voltages, nodeCount() rows x
     *                  maps.size() columns (for heatmap rendering)
     */
    void solveBatch(const std::vector<std::vector<Amperes>> &maps,
                    std::vector<GlobalDroop> &out,
                    Matrix *voltages = nullptr) const;

  private:
    const floorplan::Chip &chipRef;
    GlobalGridParams prm;

    int gridW = 0;
    int gridH = 0;
    int nNodes = 0;
    double cellW = 0.0;  //!< [mm]
    double cellH = 0.0;  //!< [mm]

    std::vector<int> padNodes;          //!< nodes with a C4 pad
    std::vector<int> vrNode;            //!< node per chip VR
    /** Per block: (node, weight) pairs for unregulated blocks. */
    std::vector<std::vector<std::pair<int, double>>> blockNodes;

    /** Sparse factor of G with pad conductances (SPD mesh). */
    std::unique_ptr<SparseLdltSolver> lu;

    int nodeAt(double x_mm, double y_mm) const;
};

} // namespace pdn
} // namespace tg

#endif // TG_PDN_GLOBAL_GRID_HH
