#include "pdn/domain_pdn.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "cache/fingerprint.hh"
#include "cache/store.hh"
#include "common/logging.hh"
#include "common/simd.hh"

namespace tg {
namespace pdn {

namespace {

/**
 * Cached construction product of one DomainPdn: the two all-branch
 * base factorisations plus the transfer-resistance matrix (whose
 * n+m batched unit solves dominate construction). The artifact is
 * immutable; each DomainPdn COPIES the solvers out of it, because a
 * SparseLdltSolver carries mutable per-instance solve scratch that
 * must not be shared across threads — the copy reuses the factor
 * numerics (the expensive part) and gets fresh scratch.
 */
struct PdnBaseArtifact
{
    SparseLdltSolver steady;
    SparseLdltSolver transient;
    Matrix transferR;
};

std::size_t
solverBytes(const SparseLdltSolver &s)
{
    // factor envelope + diag + permutation/pointer arrays
    return sizeof(double) * (s.profileNonZeros() + s.size()) +
           4 * sizeof(std::size_t) * s.size();
}

/**
 * Everything the base factors and transfer resistances depend on:
 * this domain's slice of the chip, the VR sites in use, the
 * electrical design values the PDN reads, and the grid parameters
 * (minus the bit-invisible factorCacheCapacity).
 */
cache::Fingerprint
pdnBaseKey(const floorplan::Chip &chip, int domain,
           const vreg::VrDesign &design, const PdnParams &prm,
           const std::vector<floorplan::Rect> &sites)
{
    cache::Hasher h;
    h.str("tg.key.pdn-base.v1");
    h.fp(cache::chipFingerprint(chip));
    h.i64(domain);
    h.str(design.name)
        .u64(static_cast<std::uint64_t>(design.topology))
        .f64(design.curve.peakCurrent())
        .f64(design.curve.peakEta())
        .f64(design.areaMm2)
        .f64(design.iMax)
        .f64(design.responseTime)
        .f64(design.outputResistance)
        .f64(design.outputInductance);
    h.f64(prm.nodePitch)
        .f64(prm.sheetResistance)
        .f64(prm.decapPerMm2)
        .f64(prm.gridInductancePerM)
        .f64(prm.cycleTime)
        .f64(prm.emergencyFrac);
    h.u64(sites.size());
    for (const auto &r : sites)
        h.f64(r.x).f64(r.y).f64(r.w).f64(r.h);
    return h.digest();
}

} // namespace

DomainPdn::DomainPdn(const floorplan::Chip &chip, int domain,
                     const vreg::VrDesign &design, PdnParams params,
                     std::vector<floorplan::Rect> custom_vr_sites)
    : chipRef(chip), domain(domain), design(design), prm(params),
      vrSites(std::move(custom_vr_sites))
{
    const auto &domains = chip.plan.domains();
    if (domain < 0 || domain >= static_cast<int>(domains.size()))
        fatal("bad domain id ", domain);
    const auto &dom = domains[static_cast<std::size_t>(domain)];
    if (vrSites.empty()) {
        for (int v : dom.vrs)
            vrSites.push_back(
                chip.plan.vrs()[static_cast<std::size_t>(v)].rect);
    } else if (vrSites.size() != dom.vrs.size()) {
        fatal("custom VR site count ", vrSites.size(),
              " != domain VR count ", dom.vrs.size());
    }
    buildTopology();
    if (vrCount() > 64)
        fatal("factorisation cache keys active sets as a 64-bit mask; "
              "domain has ", vrCount(), " VRs");

    // Base factors + transfer resistances are a pure function of the
    // key below, so fresh instances (one per sweep worker, one per
    // bench process iteration) clone the cached artifact instead of
    // re-factoring and re-solving the n+m transfer columns.
    const cache::Fingerprint key =
        pdnBaseKey(chip, domain, design, prm, vrSites);
    if (auto hit = cache::store().get<PdnBaseArtifact>(
            cache::ArtifactKind::PdnBase, key)) {
        steadyBase = std::make_unique<SparseLdltSolver>(hit->steady);
        transientBase =
            std::make_unique<SparseLdltSolver>(hit->transient);
        transferR = hit->transferR;
    } else {
        buildBaseFactors();
        buildTransferResistances();
        auto made = std::make_shared<const PdnBaseArtifact>(
            PdnBaseArtifact{*steadyBase, *transientBase, transferR});
        cache::store().put<PdnBaseArtifact>(
            cache::ArtifactKind::PdnBase, key, made,
            solverBytes(made->steady) + solverBytes(made->transient) +
                sizeof(double) * made->transferR.rows() *
                    made->transferR.cols());
    }

    // Default: everything on.
    std::vector<int> all(vrNodes.size());
    for (std::size_t i = 0; i < all.size(); ++i)
        all[i] = static_cast<int>(i);
    setActive(all);
}

void
DomainPdn::buildTopology()
{
    const auto &plan = chipRef.plan;
    const auto &dom =
        plan.domains()[static_cast<std::size_t>(domain)];

    // Domain bounding box [mm].
    double x0 = std::numeric_limits<double>::infinity();
    double y0 = x0;
    double x1 = -x0;
    double y1 = -x0;
    for (int b : dom.blocks) {
        const auto &r = plan.blocks()[static_cast<std::size_t>(b)].rect;
        x0 = std::min(x0, r.x);
        y0 = std::min(y0, r.y);
        x1 = std::max(x1, r.x + r.w);
        y1 = std::max(y1, r.y + r.h);
    }
    originX = x0;
    originY = y0;
    pitchMm = prm.nodePitch * 1e3;
    gridW = std::max(2, static_cast<int>(std::round((x1 - x0) /
                                                    pitchMm)));
    gridH = std::max(2, static_cast<int>(std::round((y1 - y0) /
                                                    pitchMm)));
    nNodes = gridW * gridH;
    cellW = (x1 - x0) / gridW;  // actual pitch after rounding
    cellH = (y1 - y0) / gridH;
    double cell_w = cellW;
    double cell_h = cellH;

    auto node_at = [&](int r, int c) { return r * gridW + c; };

    // R-mesh conductances, stamped as triplets and assembled in CSR.
    std::vector<Triplet> stamps;
    stamps.reserve(static_cast<std::size_t>(nNodes) * 8);
    auto couple = [&](int a, int b, double cond) {
        std::size_t ua = static_cast<std::size_t>(a);
        std::size_t ub = static_cast<std::size_t>(b);
        stamps.push_back({ua, ua, cond});
        stamps.push_back({ub, ub, cond});
        stamps.push_back({ua, ub, -cond});
        stamps.push_back({ub, ua, -cond});
    };
    for (int r = 0; r < gridH; ++r) {
        for (int c = 0; c < gridW; ++c) {
            if (c + 1 < gridW)
                couple(node_at(r, c), node_at(r, c + 1),
                       (cell_w / cell_h) / prm.sheetResistance);
            if (r + 1 < gridH)
                couple(node_at(r, c), node_at(r + 1, c),
                       (cell_h / cell_w) / prm.sheetResistance);
        }
    }
    gGrid = SparseMatrix::fromTriplets(static_cast<std::size_t>(nNodes),
                                       static_cast<std::size_t>(nNodes),
                                       std::move(stamps));

    // Decap per node.
    decap.assign(static_cast<std::size_t>(nNodes),
                 prm.decapPerMm2 * cell_w * cell_h);

    // Attach each of the domain's VRs to the nearest mesh node.
    vrNodes.clear();
    for (const auto &site : vrSites) {
        int c = std::clamp(
            static_cast<int>((site.cx() - originX) / cell_w), 0,
            gridW - 1);
        int r = std::clamp(
            static_cast<int>((site.cy() - originY) / cell_h), 0,
            gridH - 1);
        vrNodes.push_back(node_at(r, c));
    }

    // Per-VR loop inductance: output inductance plus grid loop
    // inductance growing with the distance to the logic centroid
    // (the domain's current hot spot).
    {
        double cx = 0.0;
        double cy = 0.0;
        double wsum = 0.0;
        for (int b : dom.blocks) {
            const auto &blk = plan.blocks()[static_cast<std::size_t>(b)];
            if (!floorplan::isLogicUnit(blk.kind))
                continue;
            double w = blk.rect.area();
            cx += w * blk.rect.cx();
            cy += w * blk.rect.cy();
            wsum += w;
        }
        if (wsum == 0.0) {
            // Memory-only domain (L3 bank): centre of the domain box.
            cx = originX + 0.5 * gridW * cell_w;
            cy = originY + 0.5 * gridH * cell_h;
        } else {
            cx /= wsum;
            cy /= wsum;
        }
        vrLoopL.clear();
        for (const auto &site : vrSites) {
            double dx = (site.cx() - cx) * 1e-3;
            double dy = (site.cy() - cy) * 1e-3;
            double dist = std::sqrt(dx * dx + dy * dy);
            vrLoopL.push_back(design.outputInductance +
                              prm.gridInductancePerM * dist);
        }
    }

    // Map each domain block onto mesh nodes by rectangle overlap.
    blockNodes.assign(plan.blocks().size(), {});
    loadNode.assign(static_cast<std::size_t>(nNodes), false);
    for (int b : dom.blocks) {
        const auto &rect =
            plan.blocks()[static_cast<std::size_t>(b)].rect;
        double total = 0.0;
        auto &list = blockNodes[static_cast<std::size_t>(b)];
        for (int r = 0; r < gridH; ++r) {
            for (int c = 0; c < gridW; ++c) {
                double nx0 = originX + c * cell_w;
                double ny0 = originY + r * cell_h;
                double ox = std::max(
                    0.0, std::min(rect.x + rect.w, nx0 + cell_w) -
                             std::max(rect.x, nx0));
                double oy = std::max(
                    0.0, std::min(rect.y + rect.h, ny0 + cell_h) -
                             std::max(rect.y, ny0));
                double w = ox * oy;
                if (w > 0.0) {
                    list.push_back({node_at(r, c), w});
                    total += w;
                }
            }
        }
        TG_ASSERT(total > 0.0, "domain block maps to no PDN node");
        for (auto &[node, w] : list) {
            w /= total;
            loadNode[static_cast<std::size_t>(node)] = true;
        }
    }
    loadIdx.clear();
    for (int i = 0; i < nNodes; ++i)
        if (loadNode[static_cast<std::size_t>(i)])
            loadIdx.push_back(i);
}

void
DomainPdn::buildBaseFactors()
{
    std::size_t n = static_cast<std::size_t>(nNodes);
    double dt = prm.cycleTime;
    double r_out = design.outputResistance;

    // Reduced matrices with EVERY branch connected: eliminating the
    // branch row of VR k folds it into a diagonal conductance 1/R_k
    // at its attach node (R_k = R_out steady, L_k/dt + R_out
    // transient).
    std::vector<Triplet> steady;
    steady.reserve(gGrid.nonZeros() + vrNodes.size());
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t p = gGrid.rowPtr()[r]; p < gGrid.rowPtr()[r + 1];
             ++p)
            steady.push_back({r, gGrid.colIdx()[p], gGrid.values()[p]});
    std::vector<Triplet> transient(steady);
    for (std::size_t i = 0; i < n; ++i)
        transient.push_back({i, i, decap[i] / dt});
    for (std::size_t k = 0; k < vrNodes.size(); ++k) {
        std::size_t node = static_cast<std::size_t>(vrNodes[k]);
        steady.push_back({node, node, 1.0 / r_out});
        transient.push_back({node, node,
                             1.0 / (vrLoopL[k] / dt + r_out)});
    }
    steadyBase = std::make_unique<SparseLdltSolver>(
        SparseMatrix::fromTriplets(n, n, std::move(steady)));
    transientBase = std::make_unique<SparseLdltSolver>(
        SparseMatrix::fromTriplets(n, n, std::move(transient)));
}

DomainPdn::Downdate
DomainPdn::makeDowndate(const SparseLdltSolver &base,
                        const std::vector<int> &removed,
                        const std::vector<double> &removed_r) const
{
    std::size_t n = static_cast<std::size_t>(nNodes);
    std::size_t r = removed.size();
    Downdate dd;
    dd.nodes.reserve(r);
    for (int k : removed)
        dd.nodes.push_back(vrNodes[static_cast<std::size_t>(k)]);
    if (r == 0)
        return dd;

    // W = M0^{-1} E: all removed-branch columns advance through one
    // multi-RHS envelope traversal, each column bit-identical to the
    // per-column scalar solves this replaces.
    dd.w = Matrix(n, r, 0.0);
    for (std::size_t j = 0; j < r; ++j)
        dd.w(static_cast<std::size_t>(dd.nodes[j]), j) = 1.0;
    base.solveInPlace(dd.w);

    // Capacitance matrix (D^{-1} - E^T W), inverted once; it is r x r
    // with r <= vrCount, so a dense LU is cheap.
    Matrix cap(r, r, 0.0);
    for (std::size_t i = 0; i < r; ++i)
        for (std::size_t j = 0; j < r; ++j)
            cap(i, j) = (i == j ? removed_r[i] : 0.0) -
                        dd.w(static_cast<std::size_t>(dd.nodes[i]), j);
    LuSolver lu(cap);
    dd.capInverse = Matrix(r, r, 0.0);
    std::vector<double> unit(r);
    for (std::size_t j = 0; j < r; ++j) {
        std::fill(unit.begin(), unit.end(), 0.0);
        unit[j] = 1.0;
        lu.solveInPlace(unit);
        for (std::size_t i = 0; i < r; ++i)
            dd.capInverse(i, j) = unit[i];
    }
    return dd;
}

void
DomainPdn::solveReduced(const SparseLdltSolver &base, const Downdate &dd,
                        std::vector<double> &x) const
{
    base.solveInPlace(x);
    std::size_t r = dd.nodes.size();
    if (r == 0)
        return;
    // Woodbury correction: x += W capInverse (E^T x).
    std::size_t n = static_cast<std::size_t>(nNodes);
    smallScratch.resize(2 * r);
    double *s = smallScratch.data();
    double *u = s + r;
    for (std::size_t a = 0; a < r; ++a)
        s[a] = x[static_cast<std::size_t>(dd.nodes[a])];
    for (std::size_t a = 0; a < r; ++a) {
        const double *ca = dd.capInverse.row(a);
        double acc = 0.0;
        for (std::size_t b = 0; b < r; ++b)
            acc += ca[b] * s[b];
        u[a] = acc;
    }
    for (std::size_t i = 0; i < n; ++i) {
        const double *wi = dd.w.row(i);
        double acc = 0.0;
        for (std::size_t a = 0; a < r; ++a)
            acc += wi[a] * u[a];
        x[i] += acc;
    }
}

void
DomainPdn::setActive(const std::vector<int> &active_local)
{
    TG_ASSERT(!active_local.empty(),
              "a domain must keep at least one VR active");
    for (int k : active_local)
        TG_ASSERT(k >= 0 && k < vrCount(), "bad local VR index ", k);
    std::vector<int> sorted(active_local);
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()),
                 sorted.end());
    if (current != nullptr && sorted == activeSet)
        return;  // unchanged configuration: keep the factorisation
    activeSet = std::move(sorted);

    std::uint64_t key = 0;
    for (int k : activeSet)
        key |= std::uint64_t{1} << k;
    auto hit = cacheMap.find(key);
    if (hit != cacheMap.end()) {
        ++cacheHits;
        cacheList.splice(cacheList.begin(), cacheList, hit->second);
        current = &cacheList.front().second;
        return;
    }

    ++cacheMisses;
    double dt = prm.cycleTime;
    double r_out = design.outputResistance;
    std::vector<int> removed;
    std::vector<double> r_steady;
    std::vector<double> r_transient;
    for (int k = 0; k < vrCount(); ++k) {
        if (std::binary_search(activeSet.begin(), activeSet.end(), k))
            continue;
        removed.push_back(k);
        r_steady.push_back(r_out);
        r_transient.push_back(
            vrLoopL[static_cast<std::size_t>(k)] / dt + r_out);
    }
    Factorization f;
    f.steady = makeDowndate(*steadyBase, removed, r_steady);
    f.transient = makeDowndate(*transientBase, removed, r_transient);
    if (prm.factorCacheCapacity <= 0) {
        // Caching disabled: build-and-discard. The factorisation
        // lives in a dedicated slot outside the LRU structures so it
        // cannot be evicted from under `current` and no insert/evict
        // bookkeeping runs at all.
        uncached = std::move(f);
        current = &uncached;
        return;
    }
    cacheList.emplace_front(key, std::move(f));
    cacheMap[key] = cacheList.begin();
    current = &cacheList.front().second;

    std::size_t cap =
        static_cast<std::size_t>(prm.factorCacheCapacity);
    while (cacheList.size() > cap) {
        cacheMap.erase(cacheList.back().first);
        cacheList.pop_back();
    }
}

void
DomainPdn::clearFactorCache()
{
    cacheList.clear();
    cacheMap.clear();
    current = nullptr;
}

std::vector<Amperes>
DomainPdn::nodeCurrents(const std::vector<Watts> &block_power) const
{
    std::vector<Amperes> out;
    nodeCurrentsInto(block_power, out);
    return out;
}

void
DomainPdn::nodeCurrentsInto(const std::vector<Watts> &block_power,
                            std::vector<Amperes> &out) const
{
    TG_ASSERT(block_power.size() == blockNodes.size(),
              "block power size mismatch");
    out.assign(static_cast<std::size_t>(nNodes), 0.0);
    double vdd = chipRef.params.vdd;
    for (std::size_t b = 0; b < blockNodes.size(); ++b) {
        if (blockNodes[b].empty() || block_power[b] == 0.0)
            continue;
        double i = block_power[b] / vdd;
        for (const auto &[node, w] : blockNodes[b])
            out[static_cast<std::size_t>(node)] += w * i;
    }
}

std::vector<Volts>
DomainPdn::steadyVoltages(const std::vector<Amperes> &node_currents) const
{
    TG_ASSERT(static_cast<int>(node_currents.size()) == nNodes,
              "node current size mismatch");
    TG_ASSERT(current != nullptr, "setActive() must precede solves");
    std::size_t n = static_cast<std::size_t>(nNodes);
    // Reduced rhs: f + B R^{-1} g with g_k = Vdd for every active
    // branch.
    std::vector<double> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = -node_currents[i];
    double inj = chipRef.params.vdd / design.outputResistance;
    for (int k : activeSet)
        v[static_cast<std::size_t>(
            vrNodes[static_cast<std::size_t>(k)])] += inj;
    solveReduced(*steadyBase, current->steady, v);
    return v;
}

double
DomainPdn::steadyMaxNoise(const std::vector<Amperes> &node_currents) const
{
    auto v = steadyVoltages(node_currents);
    double vdd = chipRef.params.vdd;
    double worst = 0.0;
    for (std::size_t i = 0; i < v.size(); ++i)
        if (loadNode[i])
            worst = std::max(worst, (vdd - v[i]) / vdd);
    return worst;
}

NoiseResult
DomainPdn::transientWindow(
    const std::vector<std::vector<Amperes>> &cycle_currents, int warmup,
    bool keep_trace) const
{
    TG_ASSERT(!cycle_currents.empty(), "empty transient window");
    std::size_t n = static_cast<std::size_t>(nNodes);
    windowScratch.resize(cycle_currents.size() * n);
    for (std::size_t cyc = 0; cyc < cycle_currents.size(); ++cyc) {
        const auto &load = cycle_currents[cyc];
        TG_ASSERT(load.size() == n, "cycle current size mismatch");
        std::copy(load.begin(), load.end(),
                  windowScratch.begin() +
                      static_cast<std::ptrdiff_t>(cyc * n));
    }
    return transientWindow(windowScratch.data(), cycle_currents.size(),
                           n, warmup, keep_trace);
}

NoiseResult
DomainPdn::transientWindow(const Amperes *currents, std::size_t cycles,
                           std::size_t stride, int warmup,
                           bool keep_trace) const
{
    TG_ASSERT(cycles > 0, "empty transient window");
    TG_ASSERT(stride >= static_cast<std::size_t>(nNodes),
              "cycle stride below node count");
    TG_ASSERT(warmup >= 0 && warmup < static_cast<int>(cycles),
              "warmup must leave analysis cycles");
    TG_ASSERT(current != nullptr, "setActive() must precede solves");

#ifdef TG_DEBUG_CHECKS
    for (std::size_t cyc = 0; cyc < cycles; ++cyc)
        for (int i = 0; i < nNodes; ++i)
            TG_DEBUG_ASSERT(
                std::isfinite(currents[cyc * stride +
                                       static_cast<std::size_t>(i)]),
                "non-finite load current at cycle ", cyc, " node ", i);
#endif

    std::size_t n = static_cast<std::size_t>(nNodes);
    std::size_t m = activeSet.size();
    double vdd = chipRef.params.vdd;
    double dt = prm.cycleTime;
    double r_out = design.outputResistance;

    // Per-branch transient resistance R_k = L_k/dt + R_out.
    branchR.resize(m);
    for (std::size_t k = 0; k < m; ++k)
        branchR[k] =
            vrLoopL[static_cast<std::size_t>(activeSet[k])] / dt + r_out;

    // Initial condition: steady state at the first cycle's load; the
    // branch currents follow from Vdd = V_node + R_out I.
    voltScratch.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        voltScratch[i] = -currents[i];
    for (std::size_t k = 0; k < m; ++k)
        voltScratch[static_cast<std::size_t>(
            vrNodes[static_cast<std::size_t>(activeSet[k])])] +=
            vdd / r_out;
    solveReduced(*steadyBase, current->steady, voltScratch);
    branchScratch.resize(m);
    for (std::size_t k = 0; k < m; ++k)
        branchScratch[k] =
            (vdd - voltScratch[static_cast<std::size_t>(
                       vrNodes[static_cast<std::size_t>(
                           activeSet[k])])]) /
            r_out;

    NoiseResult res;
    if (keep_trace)
        res.trace.reserve(cycles);

    // Implicit Euler in reduced form:
    //   (C/dt + G + sum 1/R_k) V' = C/dt V - I_load + sum g_k/R_k e_k
    //   I'_k = (g_k - V'_{node_k}) / R_k,  g_k = L_k/dt I_k + Vdd.
    rhsScratch.resize(n);
    branchRhs.resize(m);
    for (std::size_t cyc = 0; cyc < cycles; ++cyc) {
        const Amperes *load = currents + cyc * stride;
        for (std::size_t i = 0; i < n; ++i)
            rhsScratch[i] = decap[i] / dt * voltScratch[i] - load[i];
        for (std::size_t k = 0; k < m; ++k) {
            branchRhs[k] =
                vrLoopL[static_cast<std::size_t>(activeSet[k])] / dt *
                    branchScratch[k] +
                vdd;
            rhsScratch[static_cast<std::size_t>(
                vrNodes[static_cast<std::size_t>(activeSet[k])])] +=
                branchRhs[k] / branchR[k];
        }
        solveReduced(*transientBase, current->transient, rhsScratch);
        voltScratch.swap(rhsScratch);
        for (std::size_t k = 0; k < m; ++k)
            branchScratch[k] =
                (branchRhs[k] -
                 voltScratch[static_cast<std::size_t>(
                     vrNodes[static_cast<std::size_t>(activeSet[k])])]) /
                branchR[k];

        double droop = 0.0;
        for (int i : loadIdx)
            droop = std::max(
                droop,
                (vdd - voltScratch[static_cast<std::size_t>(i)]) / vdd);
        if (keep_trace)
            res.trace.push_back(droop);
        if (static_cast<int>(cyc) >= warmup) {
            ++res.analysedCycles;
            res.maxNoiseFrac = std::max(res.maxNoiseFrac, droop);
            if (droop > prm.emergencyFrac)
                ++res.emergencyCycles;
        }
    }
    TG_DEBUG_ASSERT(std::isfinite(res.maxNoiseFrac),
                    "non-finite max droop from transient window");
    return res;
}

/**
 * Woodbury-corrected solve for W interleaved lanes (lane l of row i
 * at x[i*W + l]): one batched base solve, then the rank-r correction
 * applied lane-wise in the exact scalar operation order.
 */
template <int W>
void
DomainPdn::solveReducedBatch(const SparseLdltSolver &base,
                             const Downdate &dd, double *x) const
{
    base.solveBatchInPlace(x, W);
    std::size_t r = dd.nodes.size();
    if (r == 0)
        return;
    using B = DoubleBatch<W>;
    std::size_t n = static_cast<std::size_t>(nNodes);
    smallScratch.resize(2 * r * W);
    double *s = smallScratch.data();
    double *u = s + r * W;
    for (std::size_t a = 0; a < r; ++a)
        B::load(x + static_cast<std::size_t>(dd.nodes[a]) * W)
            .store(s + a * W);
    for (std::size_t a = 0; a < r; ++a) {
        const double *ca = dd.capInverse.row(a);
        B acc = B::broadcast(0.0);
        for (std::size_t b = 0; b < r; ++b)
            acc += B::load(s + b * W) * ca[b];
        acc.store(u + a * W);
    }
    for (std::size_t i = 0; i < n; ++i) {
        const double *wi = dd.w.row(i);
        B acc = B::broadcast(0.0);
        for (std::size_t a = 0; a < r; ++a)
            acc += B::load(u + a * W) * wi[a];
        (B::load(x + i * W) + acc).store(x + i * W);
    }
}

/**
 * Fixed-width lockstep transient kernel: W independent cycle-current
 * windows advance through the shared factorisation, one lane each.
 * Every per-cycle step mirrors the scalar transientWindow() loop
 * with the lane dimension innermost, so lane l's floating-point
 * op sequence — rhs assembly, solve, branch update, droop max — is
 * the scalar sequence exactly.
 */
template <int W>
void
DomainPdn::transientWindowLockstep(const WindowSpec *windows,
                                   std::size_t cycles, int warmup,
                                   bool keep_trace,
                                   NoiseResult *out) const
{
    using B = DoubleBatch<W>;
    std::size_t n = static_cast<std::size_t>(nNodes);
    std::size_t m = activeSet.size();
    double vdd = chipRef.params.vdd;
    double dt = prm.cycleTime;
    double r_out = design.outputResistance;

    branchR.resize(m);
    for (std::size_t k = 0; k < m; ++k)
        branchR[k] =
            vrLoopL[static_cast<std::size_t>(activeSet[k])] / dt + r_out;

    // Initial condition per lane: steady state at the lane's first
    // cycle, branch currents from Vdd = V_node + R_out I.
    batchVolt.resize(n * W);
    for (std::size_t i = 0; i < n; ++i)
        for (int l = 0; l < W; ++l)
            batchVolt[i * W + l] = -windows[l].currents[i];
    for (std::size_t k = 0; k < m; ++k) {
        std::size_t node = static_cast<std::size_t>(
            vrNodes[static_cast<std::size_t>(activeSet[k])]);
        for (int l = 0; l < W; ++l)
            batchVolt[node * W + l] += vdd / r_out;
    }
    solveReducedBatch<W>(*steadyBase, current->steady,
                         batchVolt.data());
    batchBranch.resize(m * W);
    for (std::size_t k = 0; k < m; ++k) {
        std::size_t node = static_cast<std::size_t>(
            vrNodes[static_cast<std::size_t>(activeSet[k])]);
        for (int l = 0; l < W; ++l)
            batchBranch[k * W + l] =
                (vdd - batchVolt[node * W + l]) / r_out;
    }

    for (int l = 0; l < W; ++l) {
        out[l].maxNoiseFrac = 0.0;
        out[l].emergencyCycles = 0;
        out[l].analysedCycles = 0;
        out[l].trace.clear();
        if (keep_trace)
            out[l].trace.reserve(cycles);
    }

    batchRhs.resize(n * W);
    batchBranchRhs.resize(m * W);
    for (std::size_t cyc = 0; cyc < cycles; ++cyc) {
        const Amperes *rows[W];
        for (int l = 0; l < W; ++l)
            rows[l] = windows[l].currents + cyc * windows[l].stride;
        for (std::size_t i = 0; i < n; ++i) {
            const double g = decap[i] / dt;
            double cur[W];
            for (int l = 0; l < W; ++l)
                cur[l] = rows[l][i];
            // Lane l: g * volt - current, the scalar rhs expression
            // (batch * scalar multiplies lane-first, bit-commutative).
            (B::load(batchVolt.data() + i * W) * g - B::load(cur))
                .store(batchRhs.data() + i * W);
        }
        for (std::size_t k = 0; k < m; ++k) {
            const double l_dt =
                vrLoopL[static_cast<std::size_t>(activeSet[k])] / dt;
            std::size_t node = static_cast<std::size_t>(
                vrNodes[static_cast<std::size_t>(activeSet[k])]);
            B g_k = B::load(batchBranch.data() + k * W) * l_dt +
                    B::broadcast(vdd);
            g_k.store(batchBranchRhs.data() + k * W);
            (B::load(batchRhs.data() + node * W) + g_k / branchR[k])
                .store(batchRhs.data() + node * W);
        }
        solveReducedBatch<W>(*transientBase, current->transient,
                             batchRhs.data());
        batchVolt.swap(batchRhs);
        for (std::size_t k = 0; k < m; ++k) {
            std::size_t node = static_cast<std::size_t>(
                vrNodes[static_cast<std::size_t>(activeSet[k])]);
            ((B::load(batchBranchRhs.data() + k * W) -
              B::load(batchVolt.data() + node * W)) /
             branchR[k])
                .store(batchBranch.data() + k * W);
        }

        B droop = B::broadcast(0.0);
        for (int i : loadIdx) {
            B v = B::load(batchVolt.data() +
                          static_cast<std::size_t>(i) * W);
            droop = B::max(droop, (B::broadcast(vdd) - v) / vdd);
        }
        for (int l = 0; l < W; ++l) {
            const double d = droop[l];
            if (keep_trace)
                out[l].trace.push_back(d);
            if (static_cast<int>(cyc) >= warmup) {
                ++out[l].analysedCycles;
                out[l].maxNoiseFrac = std::max(out[l].maxNoiseFrac, d);
                if (d > prm.emergencyFrac)
                    ++out[l].emergencyCycles;
            }
        }
    }
}

void
DomainPdn::transientWindowBatch(const WindowSpec *windows, int count,
                                std::size_t cycles, int warmup,
                                bool keep_trace,
                                NoiseResult *out) const
{
    TG_ASSERT(count > 0, "empty window batch");
    TG_ASSERT(cycles > 0, "empty transient window");
    TG_ASSERT(warmup >= 0 && warmup < static_cast<int>(cycles),
              "warmup must leave analysis cycles");
    TG_ASSERT(current != nullptr, "setActive() must precede solves");
    for (int i = 0; i < count; ++i)
        TG_ASSERT(windows[i].stride >=
                      static_cast<std::size_t>(nNodes),
                  "cycle stride below node count");

    // Chunk into the widest fixed kernels, scalar ragged tail. Any
    // chunking yields the same bits: lanes never interact.
    int done = 0;
    while (done < count) {
        int left = count - done;
        if (left >= 8) {
            transientWindowLockstep<8>(windows + done, cycles, warmup,
                                       keep_trace, out + done);
            done += 8;
        } else if (left >= 4) {
            transientWindowLockstep<4>(windows + done, cycles, warmup,
                                       keep_trace, out + done);
            done += 4;
        } else if (left >= 2) {
            transientWindowLockstep<2>(windows + done, cycles, warmup,
                                       keep_trace, out + done);
            done += 2;
        } else {
            out[done] = transientWindow(windows[done].currents, cycles,
                                        windows[done].stride, warmup,
                                        keep_trace);
            ++done;
        }
    }

#ifdef TG_DEBUG_CHECKS
    for (int i = 0; i < count; ++i)
        TG_DEBUG_ASSERT(std::isfinite(out[i].maxNoiseFrac),
                        "non-finite max droop from window batch lane ",
                        i);
#endif
}

std::pair<double, double>
DomainPdn::nodePosition(int node) const
{
    TG_ASSERT(node >= 0 && node < nNodes, "bad node index");
    int r = node / gridW;
    int c = node % gridW;
    return {originX + (c + 0.5) * cellW, originY + (r + 0.5) * cellH};
}

void
DomainPdn::buildTransferResistances()
{
    std::size_t n = static_cast<std::size_t>(nNodes);
    std::size_t m = vrNodes.size();
    transferR = Matrix(n, m, 0.0);
    double r_out = design.outputResistance;

    // transferR(j, k) is the droop at node j per ampere drawn there
    // when VR k alone is active: with rhs (-e_j, Vdd) the bordered
    // solve gives Vdd - v_j = (M_k^{-1})_{jj} for the single-branch
    // reduced matrix M_k (G 1 = 0 makes Vdd*1 absorb the source
    // term). M_k is the all-branches base M0 minus the other m-1
    // branch conductances, so every column is a Woodbury downdate of
    // shared work: one base factorisation, n solves for
    // diag(M0^{-1}), and m solves for the branch columns Z — instead
    // of the m full factorisations and n*m solves of the dense path.
    // diag(M0^{-1}): n unit solves advanced kMaxWindowBatch lanes at
    // a time through one envelope traversal per chunk (the dominant
    // construction cost; per-lane bit-identical to scalar solves).
    std::vector<double> d0(n);
    {
        constexpr std::size_t kW =
            static_cast<std::size_t>(kMaxWindowBatch);
        std::vector<double> cols(n * kW);
        for (std::size_t j0 = 0; j0 < n; j0 += kW) {
            std::size_t w = std::min(kW, n - j0);
            std::fill(cols.begin(),
                      cols.begin() + static_cast<std::ptrdiff_t>(n * w),
                      0.0);
            for (std::size_t l = 0; l < w; ++l)
                cols[(j0 + l) * w + l] = 1.0;
            steadyBase->solveBatchInPlace(cols.data(), w);
            for (std::size_t l = 0; l < w; ++l)
                d0[j0 + l] = cols[(j0 + l) * w + l];
        }
    }
    // Branch columns Z = M0^{-1} E, one multi-RHS traversal.
    Matrix z(n, m, 0.0);
    for (std::size_t k = 0; k < m; ++k)
        z(static_cast<std::size_t>(vrNodes[k]), k) = 1.0;
    if (m > 0)
        steadyBase->solveInPlace(z);

    std::vector<std::size_t> others(m > 0 ? m - 1 : 0);
    for (std::size_t k = 0; k < m; ++k) {
        std::size_t r = 0;
        for (std::size_t i = 0; i < m; ++i)
            if (i != k)
                others[r++] = i;
        if (r == 0) {
            for (std::size_t j = 0; j < n; ++j)
                transferR(j, k) = d0[j];
            continue;
        }
        // (M_k^{-1})_{jj} = d0[j] + w_j^T cap^{-1} w_j with
        // w_j[a] = z(j, others[a]) and cap = R_out I - E^T Z_others.
        Matrix cap(r, r, 0.0);
        for (std::size_t a = 0; a < r; ++a)
            for (std::size_t b = 0; b < r; ++b)
                cap(a, b) =
                    (a == b ? r_out : 0.0) -
                    z(static_cast<std::size_t>(vrNodes[others[a]]),
                      others[b]);
        LuSolver lu(cap);
        Matrix cap_inv(r, r, 0.0);
        std::vector<double> unit(r);
        for (std::size_t b = 0; b < r; ++b) {
            std::fill(unit.begin(), unit.end(), 0.0);
            unit[b] = 1.0;
            lu.solveInPlace(unit);
            for (std::size_t a = 0; a < r; ++a)
                cap_inv(a, b) = unit[a];
        }
        for (std::size_t j = 0; j < n; ++j) {
            double quad = 0.0;
            for (std::size_t a = 0; a < r; ++a) {
                const double *ca = cap_inv.row(a);
                double acc = 0.0;
                for (std::size_t b = 0; b < r; ++b)
                    acc += ca[b] * z(j, others[b]);
                quad += z(j, others[a]) * acc;
            }
            transferR(j, k) = d0[j] + quad;
        }
    }
}

double
DomainPdn::transferResistance(int node, int vr_local) const
{
    double r = transferR.at(static_cast<std::size_t>(node),
                            static_cast<std::size_t>(vr_local));
    TG_ASSERT(r > -1e-12, "negative transfer resistance at node ",
              node, " vr ", vr_local);
    // Floor to keep 1/r finite for callers; see kTransferRFloor.
    return std::max(r, kTransferRFloor);
}

double
DomainPdn::estimateNoise(const std::vector<int> &active_local,
                         const std::vector<Amperes> &node_currents,
                         double didt) const
{
    TG_ASSERT(!active_local.empty(), "empty candidate active set");
    std::size_t n = static_cast<std::size_t>(nNodes);
    double vdd = chipRef.params.vdd;

    // Characteristic impedance of the step response: the active
    // branches' inductance in parallel against the domain decap.
    double c_total = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        c_total += decap[i];
    double inv_l = 0.0;
    for (int k : active_local)
        inv_l += 1.0 / vrLoopL[static_cast<std::size_t>(k)];
    double z_char = std::sqrt(1.0 / (inv_l * c_total));

    double worst = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
        if (!loadNode[j] || node_currents[j] <= 0.0)
            continue;
        double inv_sum = 0.0;
        for (int k : active_local)
            inv_sum += 1.0 / transferResistance(static_cast<int>(j), k);
        double r_eff = 1.0 / inv_sum;
        double steady = node_currents[j] * r_eff;
        double transient = didt * node_currents[j] * z_char;
        worst = std::max(worst, (steady + transient) / vdd);
    }
    return worst;
}

} // namespace pdn
} // namespace tg
