#include "pdn/domain_pdn.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace tg {
namespace pdn {

DomainPdn::DomainPdn(const floorplan::Chip &chip, int domain,
                     const vreg::VrDesign &design, PdnParams params,
                     std::vector<floorplan::Rect> custom_vr_sites)
    : chipRef(chip), domain(domain), design(design), prm(params),
      vrSites(std::move(custom_vr_sites))
{
    const auto &domains = chip.plan.domains();
    if (domain < 0 || domain >= static_cast<int>(domains.size()))
        fatal("bad domain id ", domain);
    const auto &dom = domains[static_cast<std::size_t>(domain)];
    if (vrSites.empty()) {
        for (int v : dom.vrs)
            vrSites.push_back(
                chip.plan.vrs()[static_cast<std::size_t>(v)].rect);
    } else if (vrSites.size() != dom.vrs.size()) {
        fatal("custom VR site count ", vrSites.size(),
              " != domain VR count ", dom.vrs.size());
    }
    buildTopology();
    buildTransferResistances();
    // Default: everything on.
    std::vector<int> all(vrNodes.size());
    for (std::size_t i = 0; i < all.size(); ++i)
        all[i] = static_cast<int>(i);
    setActive(all);
}

void
DomainPdn::buildTopology()
{
    const auto &plan = chipRef.plan;
    const auto &dom =
        plan.domains()[static_cast<std::size_t>(domain)];

    // Domain bounding box [mm].
    double x0 = std::numeric_limits<double>::infinity();
    double y0 = x0;
    double x1 = -x0;
    double y1 = -x0;
    for (int b : dom.blocks) {
        const auto &r = plan.blocks()[static_cast<std::size_t>(b)].rect;
        x0 = std::min(x0, r.x);
        y0 = std::min(y0, r.y);
        x1 = std::max(x1, r.x + r.w);
        y1 = std::max(y1, r.y + r.h);
    }
    originX = x0;
    originY = y0;
    pitchMm = prm.nodePitch * 1e3;
    gridW = std::max(2, static_cast<int>(std::round((x1 - x0) /
                                                    pitchMm)));
    gridH = std::max(2, static_cast<int>(std::round((y1 - y0) /
                                                    pitchMm)));
    nNodes = gridW * gridH;
    cellW = (x1 - x0) / gridW;  // actual pitch after rounding
    cellH = (y1 - y0) / gridH;
    double cell_w = cellW;
    double cell_h = cellH;

    auto node_at = [&](int r, int c) { return r * gridW + c; };

    // R-mesh conductances.
    gGrid = Matrix(static_cast<std::size_t>(nNodes),
                   static_cast<std::size_t>(nNodes), 0.0);
    auto couple = [&](int a, int b, double cond) {
        std::size_t ua = static_cast<std::size_t>(a);
        std::size_t ub = static_cast<std::size_t>(b);
        gGrid(ua, ua) += cond;
        gGrid(ub, ub) += cond;
        gGrid(ua, ub) -= cond;
        gGrid(ub, ua) -= cond;
    };
    for (int r = 0; r < gridH; ++r) {
        for (int c = 0; c < gridW; ++c) {
            if (c + 1 < gridW)
                couple(node_at(r, c), node_at(r, c + 1),
                       (cell_w / cell_h) / prm.sheetResistance);
            if (r + 1 < gridH)
                couple(node_at(r, c), node_at(r + 1, c),
                       (cell_h / cell_w) / prm.sheetResistance);
        }
    }

    // Decap per node.
    decap.assign(static_cast<std::size_t>(nNodes),
                 prm.decapPerMm2 * cell_w * cell_h);

    // Attach each of the domain's VRs to the nearest mesh node.
    vrNodes.clear();
    for (const auto &site : vrSites) {
        int c = std::clamp(
            static_cast<int>((site.cx() - originX) / cell_w), 0,
            gridW - 1);
        int r = std::clamp(
            static_cast<int>((site.cy() - originY) / cell_h), 0,
            gridH - 1);
        vrNodes.push_back(node_at(r, c));
    }

    // Per-VR loop inductance: output inductance plus grid loop
    // inductance growing with the distance to the logic centroid
    // (the domain's current hot spot).
    {
        double cx = 0.0;
        double cy = 0.0;
        double wsum = 0.0;
        for (int b : dom.blocks) {
            const auto &blk = plan.blocks()[static_cast<std::size_t>(b)];
            if (!floorplan::isLogicUnit(blk.kind))
                continue;
            double w = blk.rect.area();
            cx += w * blk.rect.cx();
            cy += w * blk.rect.cy();
            wsum += w;
        }
        if (wsum == 0.0) {
            // Memory-only domain (L3 bank): centre of the domain box.
            cx = originX + 0.5 * gridW * cell_w;
            cy = originY + 0.5 * gridH * cell_h;
        } else {
            cx /= wsum;
            cy /= wsum;
        }
        vrLoopL.clear();
        for (const auto &site : vrSites) {
            double dx = (site.cx() - cx) * 1e-3;
            double dy = (site.cy() - cy) * 1e-3;
            double dist = std::sqrt(dx * dx + dy * dy);
            vrLoopL.push_back(design.outputInductance +
                              prm.gridInductancePerM * dist);
        }
    }

    // Map each domain block onto mesh nodes by rectangle overlap.
    blockNodes.assign(plan.blocks().size(), {});
    loadNode.assign(static_cast<std::size_t>(nNodes), false);
    for (int b : dom.blocks) {
        const auto &rect =
            plan.blocks()[static_cast<std::size_t>(b)].rect;
        double total = 0.0;
        auto &list = blockNodes[static_cast<std::size_t>(b)];
        for (int r = 0; r < gridH; ++r) {
            for (int c = 0; c < gridW; ++c) {
                double nx0 = originX + c * cell_w;
                double ny0 = originY + r * cell_h;
                double ox = std::max(
                    0.0, std::min(rect.x + rect.w, nx0 + cell_w) -
                             std::max(rect.x, nx0));
                double oy = std::max(
                    0.0, std::min(rect.y + rect.h, ny0 + cell_h) -
                             std::max(rect.y, ny0));
                double w = ox * oy;
                if (w > 0.0) {
                    list.push_back({node_at(r, c), w});
                    total += w;
                }
            }
        }
        TG_ASSERT(total > 0.0, "domain block maps to no PDN node");
        for (auto &[node, w] : list) {
            w /= total;
            loadNode[static_cast<std::size_t>(node)] = true;
        }
    }
}

namespace {

/**
 * Assemble the bordered steady-state matrix [[G, -B], [B^T, R]] for
 * the given active branches.
 */
Matrix
steadyMatrix(const Matrix &g_grid, const std::vector<int> &vr_nodes,
             const std::vector<int> &active, double r_out)
{
    std::size_t n = g_grid.rows();
    std::size_t m = active.size();
    Matrix a(n + m, n + m, 0.0);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c)
            a(r, c) = g_grid(r, c);
    for (std::size_t k = 0; k < m; ++k) {
        std::size_t node = static_cast<std::size_t>(
            vr_nodes[static_cast<std::size_t>(active[k])]);
        a(node, n + k) = -1.0;   // branch current into the node
        a(n + k, node) = 1.0;    // branch voltage equation
        a(n + k, n + k) = r_out;
    }
    return a;
}

} // namespace

void
DomainPdn::setActive(const std::vector<int> &active_local)
{
    TG_ASSERT(!active_local.empty(),
              "a domain must keep at least one VR active");
    for (int k : active_local)
        TG_ASSERT(k >= 0 && k < vrCount(), "bad local VR index ", k);
    activeSet = active_local;
    std::sort(activeSet.begin(), activeSet.end());

    std::size_t n = static_cast<std::size_t>(nNodes);

    luSteady = std::make_unique<LuSolver>(steadyMatrix(
        gGrid, vrNodes, activeSet, design.outputResistance));

    // Implicit-Euler transient matrix:
    //   rows 0..n-1:   (C/dt + G) V' - B I' = C/dt V - I_load
    //   rows n..n+m-1: B^T V' + (L_k/dt + R) I' = L_k/dt I + Vdd
    double dt = prm.cycleTime;
    Matrix a = steadyMatrix(gGrid, vrNodes, activeSet,
                            design.outputResistance);
    for (std::size_t i = 0; i < n; ++i)
        a(i, i) += decap[i] / dt;
    for (std::size_t k = 0; k < activeSet.size(); ++k)
        a(n + k, n + k) +=
            vrLoopL[static_cast<std::size_t>(activeSet[k])] / dt;
    luTransient = std::make_unique<LuSolver>(a);
}

std::vector<Amperes>
DomainPdn::nodeCurrents(const std::vector<Watts> &block_power) const
{
    TG_ASSERT(block_power.size() == blockNodes.size(),
              "block power size mismatch");
    std::vector<Amperes> out(static_cast<std::size_t>(nNodes), 0.0);
    double vdd = chipRef.params.vdd;
    for (std::size_t b = 0; b < blockNodes.size(); ++b) {
        if (blockNodes[b].empty() || block_power[b] == 0.0)
            continue;
        double i = block_power[b] / vdd;
        for (const auto &[node, w] : blockNodes[b])
            out[static_cast<std::size_t>(node)] += w * i;
    }
    return out;
}

std::vector<Volts>
DomainPdn::steadyVoltages(const std::vector<Amperes> &node_currents) const
{
    TG_ASSERT(static_cast<int>(node_currents.size()) == nNodes,
              "node current size mismatch");
    std::size_t n = static_cast<std::size_t>(nNodes);
    std::size_t m = activeSet.size();
    std::vector<double> rhs(n + m);
    for (std::size_t i = 0; i < n; ++i)
        rhs[i] = -node_currents[i];
    double vdd = chipRef.params.vdd;
    for (std::size_t k = 0; k < m; ++k)
        rhs[n + k] = vdd;
    luSteady->solveInPlace(rhs);
    rhs.resize(n);
    return rhs;
}

double
DomainPdn::steadyMaxNoise(const std::vector<Amperes> &node_currents) const
{
    auto v = steadyVoltages(node_currents);
    double vdd = chipRef.params.vdd;
    double worst = 0.0;
    for (std::size_t i = 0; i < v.size(); ++i)
        if (loadNode[i])
            worst = std::max(worst, (vdd - v[i]) / vdd);
    return worst;
}

NoiseResult
DomainPdn::transientWindow(
    const std::vector<std::vector<Amperes>> &cycle_currents, int warmup,
    bool keep_trace) const
{
    TG_ASSERT(!cycle_currents.empty(), "empty transient window");
    TG_ASSERT(warmup >= 0 &&
                  warmup < static_cast<int>(cycle_currents.size()),
              "warmup must leave analysis cycles");

    std::size_t n = static_cast<std::size_t>(nNodes);
    std::size_t m = activeSet.size();
    double vdd = chipRef.params.vdd;
    double dt = prm.cycleTime;

    // Initial condition: steady state at the first cycle's load.
    std::vector<double> x(n + m);
    {
        std::vector<double> rhs(n + m);
        for (std::size_t i = 0; i < n; ++i)
            rhs[i] = -cycle_currents[0][i];
        for (std::size_t k = 0; k < m; ++k)
            rhs[n + k] = vdd;
        x = luSteady->solve(rhs);
    }

    NoiseResult res;
    if (keep_trace)
        res.trace.reserve(cycle_currents.size());

    std::vector<double> rhs(n + m);
    for (std::size_t cyc = 0; cyc < cycle_currents.size(); ++cyc) {
        const auto &load = cycle_currents[cyc];
        TG_ASSERT(load.size() == n, "cycle current size mismatch");
        for (std::size_t i = 0; i < n; ++i)
            rhs[i] = decap[i] / dt * x[i] - load[i];
        for (std::size_t k = 0; k < m; ++k)
            rhs[n + k] =
                vrLoopL[static_cast<std::size_t>(activeSet[k])] / dt *
                    x[n + k] +
                vdd;
        luTransient->solveInPlace(rhs);
        x = rhs;

        double droop = 0.0;
        for (std::size_t i = 0; i < n; ++i)
            if (loadNode[i])
                droop = std::max(droop, (vdd - x[i]) / vdd);
        if (keep_trace)
            res.trace.push_back(droop);
        if (static_cast<int>(cyc) >= warmup) {
            ++res.analysedCycles;
            res.maxNoiseFrac = std::max(res.maxNoiseFrac, droop);
            if (droop > prm.emergencyFrac)
                ++res.emergencyCycles;
        }
    }
    return res;
}

std::pair<double, double>
DomainPdn::nodePosition(int node) const
{
    TG_ASSERT(node >= 0 && node < nNodes, "bad node index");
    int r = node / gridW;
    int c = node % gridW;
    return {originX + (c + 0.5) * cellW, originY + (r + 0.5) * cellH};
}

void
DomainPdn::buildTransferResistances()
{
    std::size_t n = static_cast<std::size_t>(nNodes);
    transferR = Matrix(n, vrNodes.size(), 0.0);
    double vdd = chipRef.params.vdd;
    for (std::size_t k = 0; k < vrNodes.size(); ++k) {
        LuSolver lu(steadyMatrix(gGrid, vrNodes,
                                 {static_cast<int>(k)},
                                 design.outputResistance));
        std::vector<double> rhs(n + 1);
        for (std::size_t j = 0; j < n; ++j) {
            std::fill(rhs.begin(), rhs.end(), 0.0);
            rhs[j] = -1.0;  // 1 A drawn at node j
            rhs[n] = vdd;
            auto v = lu.solve(rhs);
            transferR(j, k) = vdd - v[j];
        }
    }
}

double
DomainPdn::transferResistance(int node, int vr_local) const
{
    return transferR.at(static_cast<std::size_t>(node),
                        static_cast<std::size_t>(vr_local));
}

double
DomainPdn::estimateNoise(const std::vector<int> &active_local,
                         const std::vector<Amperes> &node_currents,
                         double didt) const
{
    TG_ASSERT(!active_local.empty(), "empty candidate active set");
    std::size_t n = static_cast<std::size_t>(nNodes);
    double vdd = chipRef.params.vdd;

    // Characteristic impedance of the step response: the active
    // branches' inductance in parallel against the domain decap.
    double c_total = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        c_total += decap[i];
    double inv_l = 0.0;
    for (int k : active_local)
        inv_l += 1.0 / vrLoopL[static_cast<std::size_t>(k)];
    double z_char = std::sqrt(1.0 / (inv_l * c_total));

    double worst = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
        if (!loadNode[j] || node_currents[j] <= 0.0)
            continue;
        double inv_sum = 0.0;
        for (int k : active_local)
            inv_sum += 1.0 / transferR.at(
                                 j, static_cast<std::size_t>(k));
        double r_eff = 1.0 / inv_sum;
        double steady = node_currents[j] * r_eff;
        double transient = didt * node_currents[j] * z_char;
        worst = std::max(worst, (steady + transient) / vdd);
    }
    return worst;
}

} // namespace pdn
} // namespace tg
