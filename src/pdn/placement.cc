#include "pdn/placement.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace tg {
namespace pdn {

namespace {

/** Bounding box of a domain's blocks [mm]. */
floorplan::Rect
domainBox(const floorplan::Chip &chip, int domain)
{
    const auto &dom =
        chip.plan.domains()[static_cast<std::size_t>(domain)];
    double x0 = std::numeric_limits<double>::infinity();
    double y0 = x0;
    double x1 = -x0;
    double y1 = -x0;
    for (int b : dom.blocks) {
        const auto &r =
            chip.plan.blocks()[static_cast<std::size_t>(b)].rect;
        x0 = std::min(x0, r.x);
        y0 = std::min(y0, r.y);
        x1 = std::max(x1, r.x + r.w);
        y1 = std::max(y1, r.y + r.h);
    }
    return {x0, y0, x1 - x0, y1 - y0};
}

/** Steady max droop of a candidate layout under the load map. */
double
layoutNoise(const floorplan::Chip &chip, int domain,
            const vreg::VrDesign &design, const PdnParams &pdn_params,
            const std::vector<floorplan::Rect> &sites,
            const std::vector<Watts> &block_power)
{
    DomainPdn pdn(chip, domain, design, pdn_params, sites);
    return pdn.steadyMaxNoise(pdn.nodeCurrents(block_power));
}

} // namespace

PlacementResult
optimizePlacement(const floorplan::Chip &chip, int domain,
                  const vreg::VrDesign &design,
                  const std::vector<Watts> &block_power,
                  PdnParams pdn_params, PlacementParams params)
{
    TG_ASSERT(params.latticeW >= 2 && params.latticeH >= 2,
              "placement lattice too small");
    const auto &dom =
        chip.plan.domains()[static_cast<std::size_t>(domain)];
    auto box = domainBox(chip, domain);

    // Start from the floorplan's (uniform) sites.
    std::vector<floorplan::Rect> sites;
    for (int v : dom.vrs)
        sites.push_back(
            chip.plan.vrs()[static_cast<std::size_t>(v)].rect);
    const std::vector<floorplan::Rect> uniform = sites;

    PlacementResult res;
    res.initialNoise = layoutNoise(chip, domain, design, pdn_params,
                                   sites, block_power);
    double best = res.initialNoise;

    // Candidate lattice of legal sites across the domain box
    // (inset by half a site so every candidate stays on silicon).
    std::vector<std::pair<double, double>> lattice;
    double edge = sites.front().w;
    for (int iy = 0; iy < params.latticeH; ++iy) {
        for (int ix = 0; ix < params.latticeW; ++ix) {
            double cx = box.x + box.w * (2 * ix + 1) /
                                    (2.0 * params.latticeW);
            double cy = box.y + box.h * (2 * iy + 1) /
                                    (2.0 * params.latticeH);
            lattice.push_back({cx, cy});
        }
    }

    // Locate the noise peak of the current layout so the walk starts
    // with the regulators nearest it (as the methodology dictates).
    auto peak_xy = [&]() -> std::pair<double, double> {
        DomainPdn pdn(chip, domain, design, pdn_params, sites);
        auto load = pdn.nodeCurrents(block_power);
        auto v = pdn.steadyVoltages(load);
        std::size_t worst = 0;
        for (std::size_t n = 1; n < v.size(); ++n)
            if (v[n] < v[worst])
                worst = n;
        return pdn.nodePosition(static_cast<int>(worst));
    };
    auto [px, py] = peak_xy();

    // Walk order: VRs nearest the noise peak first.
    std::vector<std::size_t> order(sites.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  double da = std::hypot(sites[a].cx() - px,
                                         sites[a].cy() - py);
                  double db = std::hypot(sites[b].cx() - px,
                                         sites[b].cy() - py);
                  return da < db;
              });

    for (int it = 0; it < params.maxIterations; ++it) {
        ++res.iterations;
        bool improved = false;
        for (std::size_t vi : order) {
            floorplan::Rect original = sites[vi];
            floorplan::Rect best_site = original;
            double best_here = best;
            for (const auto &[cx, cy] : lattice) {
                // Skip candidates colliding with another VR site.
                bool taken = false;
                for (std::size_t o = 0; o < sites.size(); ++o) {
                    if (o == vi)
                        continue;
                    if (std::hypot(sites[o].cx() - cx,
                                   sites[o].cy() - cy) < edge)
                        taken = true;
                }
                if (taken)
                    continue;
                sites[vi] = {cx - 0.5 * edge, cy - 0.5 * edge, edge,
                             edge};
                double noise =
                    layoutNoise(chip, domain, design, pdn_params,
                                sites, block_power);
                if (noise < best_here - params.minGain) {
                    best_here = noise;
                    best_site = sites[vi];
                }
            }
            sites[vi] = best_site;
            if (best_here < best - params.minGain) {
                best = best_here;
                ++res.acceptedMoves;
                improved = true;
            }
        }
        if (!improved)
            break;
    }

    res.sites = sites;
    res.finalNoise = best;
    double disp = 0.0;
    for (std::size_t i = 0; i < sites.size(); ++i)
        disp += std::hypot(sites[i].cx() - uniform[i].cx(),
                           sites[i].cy() - uniform[i].cy());
    res.meanDisplacementMm = disp / static_cast<double>(sites.size());
    return res;
}

} // namespace pdn
} // namespace tg
