#include "pdn/global_grid.hh"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.hh"

namespace tg {
namespace pdn {

GlobalGrid::GlobalGrid(const floorplan::Chip &chip,
                       GlobalGridParams params)
    : chipRef(chip), prm(params)
{
    TG_ASSERT(prm.padPitchNodes >= 1, "bad pad pitch");
    const auto &plan = chip.plan;
    double pitch_mm = prm.nodePitch * 1e3;
    gridW = std::max(2, static_cast<int>(
                            std::round(plan.width() / pitch_mm)));
    gridH = std::max(2, static_cast<int>(
                            std::round(plan.height() / pitch_mm)));
    nNodes = gridW * gridH;
    cellW = plan.width() / gridW;
    cellH = plan.height() / gridH;

    std::vector<Triplet> stamps;
    stamps.reserve(static_cast<std::size_t>(nNodes) * 8);
    auto couple = [&](int a, int b, double cond) {
        std::size_t ua = static_cast<std::size_t>(a);
        std::size_t ub = static_cast<std::size_t>(b);
        stamps.push_back({ua, ua, cond});
        stamps.push_back({ub, ub, cond});
        stamps.push_back({ua, ub, -cond});
        stamps.push_back({ub, ua, -cond});
    };
    for (int r = 0; r < gridH; ++r) {
        for (int c = 0; c < gridW; ++c) {
            int n = r * gridW + c;
            if (c + 1 < gridW)
                couple(n, n + 1,
                       (cellW / cellH) / prm.sheetResistance);
            if (r + 1 < gridH)
                couple(n, n + gridW,
                       (cellH / cellW) / prm.sheetResistance);
        }
    }

    // C4 pad array: one pad every padPitchNodes nodes, offset so the
    // array is centred. A pad grounds its node to the supply through
    // the pad resistance (diagonal term; the supply offset enters
    // the right-hand side).
    for (int r = prm.padPitchNodes / 2; r < gridH;
         r += prm.padPitchNodes) {
        for (int c = prm.padPitchNodes / 2; c < gridW;
             c += prm.padPitchNodes) {
            int n = r * gridW + c;
            padNodes.push_back(n);
            stamps.push_back({static_cast<std::size_t>(n),
                              static_cast<std::size_t>(n),
                              1.0 / prm.padResistance});
        }
    }
    TG_ASSERT(!padNodes.empty(), "no C4 pads on the grid");
    lu = std::make_unique<SparseLdltSolver>(SparseMatrix::fromTriplets(
        static_cast<std::size_t>(nNodes),
        static_cast<std::size_t>(nNodes), std::move(stamps)));

    // VR sites -> nodes.
    for (const auto &vr : plan.vrs())
        vrNode.push_back(nodeAt(vr.rect.cx(), vr.rect.cy()));

    // Unregulated blocks -> nodes by overlap.
    blockNodes.assign(plan.blocks().size(), {});
    for (std::size_t b = 0; b < plan.blocks().size(); ++b) {
        const auto &blk = plan.blocks()[b];
        if (blk.domain >= 0)
            continue;  // supplied by on-chip VRs, not this grid
        double total = 0.0;
        for (int r = 0; r < gridH; ++r) {
            for (int c = 0; c < gridW; ++c) {
                double nx0 = c * cellW;
                double ny0 = r * cellH;
                double ox = std::max(
                    0.0,
                    std::min(blk.rect.x + blk.rect.w, nx0 + cellW) -
                        std::max(blk.rect.x, nx0));
                double oy = std::max(
                    0.0,
                    std::min(blk.rect.y + blk.rect.h, ny0 + cellH) -
                        std::max(blk.rect.y, ny0));
                double w = ox * oy;
                if (w > 0.0) {
                    blockNodes[b].push_back({r * gridW + c, w});
                    total += w;
                }
            }
        }
        TG_ASSERT(total > 0.0, "unregulated block off-grid");
        for (auto &[node, w] : blockNodes[b])
            w /= total;
    }
}

int
GlobalGrid::nodeAt(double x_mm, double y_mm) const
{
    int c = std::clamp(static_cast<int>(x_mm / cellW), 0, gridW - 1);
    int r = std::clamp(static_cast<int>(y_mm / cellH), 0, gridH - 1);
    return r * gridW + c;
}

std::vector<Amperes>
GlobalGrid::nodeCurrents(const std::vector<Watts> &block_power,
                         const std::vector<Watts> &vr_input) const
{
    std::vector<Amperes> out;
    nodeCurrentsInto(block_power, vr_input, out);
    return out;
}

void
GlobalGrid::nodeCurrentsInto(const std::vector<Watts> &block_power,
                             const std::vector<Watts> &vr_input,
                             std::vector<Amperes> &out) const
{
    TG_ASSERT(block_power.size() == chipRef.plan.blocks().size(),
              "block power size mismatch");
    TG_ASSERT(vr_input.size() == vrNode.size(),
              "VR input size mismatch");
    out.assign(static_cast<std::size_t>(nNodes), 0.0);
    for (std::size_t v = 0; v < vrNode.size(); ++v)
        out[static_cast<std::size_t>(vrNode[v])] +=
            vr_input[v] / prm.vin;
    for (std::size_t b = 0; b < blockNodes.size(); ++b)
        for (const auto &[node, w] : blockNodes[b])
            out[static_cast<std::size_t>(node)] +=
                w * block_power[b] / prm.vin;
}

GlobalDroop
GlobalGrid::solve(const std::vector<Amperes> &node_currents) const
{
    TG_ASSERT(static_cast<int>(node_currents.size()) == nNodes,
              "node current size mismatch");

    // Node equation: G V = -I_load + (pad conductance) * V_in at pad
    // nodes. Solve for V, report droop relative to V_in.
    std::vector<double> rhs(static_cast<std::size_t>(nNodes));
    for (int n = 0; n < nNodes; ++n)
        rhs[static_cast<std::size_t>(n)] =
            -node_currents[static_cast<std::size_t>(n)];
    for (int pad : padNodes)
        rhs[static_cast<std::size_t>(pad)] +=
            prm.vin / prm.padResistance;
    auto v = lu->solve(rhs);

    GlobalDroop res;
    double weighted = 0.0;
    for (int n = 0; n < nNodes; ++n) {
        double droop =
            (prm.vin - v[static_cast<std::size_t>(n)]) / prm.vin;
        double i = node_currents[static_cast<std::size_t>(n)];
        res.totalCurrent += i;
        if (i > 0.0) {
            res.maxDroopFrac = std::max(res.maxDroopFrac, droop);
            weighted += droop * i;
        }
    }
    if (res.totalCurrent > 0.0)
        res.meanDroopFrac = weighted / res.totalCurrent;
    return res;
}

void
GlobalGrid::solveBatch(const std::vector<std::vector<Amperes>> &maps,
                       std::vector<GlobalDroop> &out,
                       Matrix *voltages) const
{
    out.assign(maps.size(), {});
    if (maps.empty()) {
        if (voltages)
            *voltages = Matrix();
        return;
    }

    // Same node equation as solve(), one column per map: the
    // factorization is traversed once for the whole block instead of
    // once per map.
    std::size_t k = maps.size();
    Matrix rhs(static_cast<std::size_t>(nNodes), k);
    for (std::size_t j = 0; j < k; ++j) {
        TG_ASSERT(static_cast<int>(maps[j].size()) == nNodes,
                  "node current size mismatch");
        for (int n = 0; n < nNodes; ++n)
            rhs(static_cast<std::size_t>(n), j) =
                -maps[j][static_cast<std::size_t>(n)];
    }
    for (int pad : padNodes)
        for (std::size_t j = 0; j < k; ++j)
            rhs(static_cast<std::size_t>(pad), j) +=
                prm.vin / prm.padResistance;
    lu->solveInPlace(rhs);

    // Per-column droop reduction in the exact order of the scalar
    // solve() loop, so batched results match it bit for bit.
    for (std::size_t j = 0; j < k; ++j) {
        GlobalDroop &res = out[j];
        double weighted = 0.0;
        for (int n = 0; n < nNodes; ++n) {
            double droop =
                (prm.vin - rhs(static_cast<std::size_t>(n), j)) /
                prm.vin;
            double i = maps[j][static_cast<std::size_t>(n)];
            res.totalCurrent += i;
            if (i > 0.0) {
                res.maxDroopFrac = std::max(res.maxDroopFrac, droop);
                weighted += droop * i;
            }
        }
        if (res.totalCurrent > 0.0)
            res.meanDroopFrac = weighted / res.totalCurrent;
    }
    if (voltages)
        *voltages = std::move(rhs);
}

} // namespace pdn
} // namespace tg
