/**
 * @file
 * Compact RC thermal model of the die + package (the HotSpot 6.0
 * stand-in).
 *
 * Node structure:
 *  - the die is gridded into gridW x gridH cells with silicon heat
 *    capacity, lateral silicon conductances, and a vertical path
 *    (bulk silicon + TIM) into the heat spreader;
 *  - every VR site gets a dedicated low-thermal-mass node riding on
 *    its host die cell, so the tiny (0.04 mm^2) regulator footprint
 *    and its concentrated conversion-loss heat are resolved without
 *    a micrometre-scale global grid (the paper's central thermal
 *    concern, Section 2);
 *  - the copper heat spreader is a coarser grid, each cell convecting
 *    to ambient through its share of the package-to-air resistance
 *    (the default package mimics the POWER7+-like HotSpot default the
 *    paper adapts).
 *
 * The network C dT/dt = -G T + P(t) + G_amb T_amb is integrated with
 * unconditionally-stable implicit Euler; the system matrix for a
 * fixed step is assembled in CSR form, factored once with the sparse
 * envelope LDL^T solver under an RCM ordering, and back-substituted
 * every step (the matrix is a 5-point die/spreader stencil plus
 * rank-1 VR borders, so the sparse factor is ~100x cheaper than the
 * dense LU it replaces). A steady-state solve (G T = P + b) shares
 * the machinery.
 */

#ifndef TG_THERMAL_MODEL_HH
#define TG_THERMAL_MODEL_HH

#include <memory>
#include <utility>
#include <vector>

#include "common/sparse.hh"
#include "common/units.hh"
#include "floorplan/power8.hh"

namespace tg {
namespace thermal {

/** Physical and discretisation parameters of the thermal model. */
struct ThermalParams
{
    int gridW = 28;               //!< die grid columns
    int gridH = 28;               //!< die grid rows
    int spreaderN = 8;            //!< spreader grid edge (N x N)

    Metres dieThickness = 0.12e-3;   //!< silicon thickness [m]
    double kSilicon = 120.0;         //!< silicon conductivity [W/mK]
    double cvSilicon = 1.75e6;       //!< silicon heat cap [J/m^3 K]
    Metres timThickness = 50e-6;     //!< TIM thickness [m]
    double kTim = 3.5;               //!< TIM conductivity [W/mK]
    Metres spreaderThickness = 1e-3; //!< copper thickness [m]
    double kCopper = 400.0;          //!< copper conductivity [W/mK]
    double cvCopper = 3.45e6;        //!< copper heat cap [J/m^3 K]
    Metres spreaderSide = 30e-3;     //!< spreader edge length [m]

    double rConvection = 0.06;       //!< package-to-air R [K/W]
    /**
     * Effective thermal resistance between a VR node and its host
     * die cell [K/W]. The 0.2 mm regulator footprint couples through
     * its whole metal stack and the surrounding silicon, so the
     * effective value sits well below the bare spreading resistance
     * of a point source; it controls how much hotter than its
     * neighbourhood a loaded regulator runs (paper Fig. 8 shows
     * ~5 degC swings at cell level).
     */
    double vrCouplingResistance = 20.0;
    Celsius ambient = 45.0;          //!< ambient temperature [degC]

    Seconds step = 10e-6;            //!< transient step [s]
};

/**
 * Assembled thermal network with cached factorisations.
 *
 * Temperature state lives in caller-owned vectors indexed by node; a
 * fresh state comes from uniformState() or steadyState().
 */
class ThermalModel
{
  public:
    ThermalModel(const floorplan::Chip &chip, ThermalParams params = {});

    /** Total node count (die cells + VR nodes + spreader cells). */
    std::size_t nodeCount() const { return nNodes; }
    /** Transient step the model was factored for [s]. */
    Seconds step() const { return prm.step; }
    const ThermalParams &params() const { return prm; }

    /** Node index of die cell (row, col). */
    int cellNode(int row, int col) const;
    /** Node index of VR `vr` (floorplan VR index). */
    int vrNode(int vr) const;

    /**
     * Assemble the nodal power vector from per-block powers [W] and
     * per-VR conversion-loss powers [W]. Block power is distributed
     * over die cells by exact rectangle-overlap area; VR loss goes to
     * the VR's own node.
     */
    std::vector<Watts>
    powerVector(const std::vector<Watts> &block_power,
                const std::vector<Watts> &vr_loss) const;

    /**
     * powerVector() into a caller-owned buffer (resized to the node
     * count): lets the per-frame simulation loop reuse one vector
     * instead of allocating a fresh one every step.
     */
    void powerVectorInto(const std::vector<Watts> &block_power,
                         const std::vector<Watts> &vr_loss,
                         std::vector<Watts> &out) const;

    /** State with every node at temperature `t`. */
    std::vector<Celsius> uniformState(Celsius t) const;

    /**
     * Advance `temps` by one step under nodal power `p`. Reuses an
     * internal right-hand-side scratch buffer, so stepping performs
     * no heap allocation; a single model must therefore not advance
     * concurrently from multiple threads (the sweep engine builds one
     * model per worker).
     */
    void advance(std::vector<Celsius> &temps,
                 const std::vector<Watts> &p) const;

    /** Steady-state temperatures under nodal power `p`. */
    std::vector<Celsius> steadyState(const std::vector<Watts> &p) const;

    /** Area-weighted mean temperature of a block [degC]. */
    Celsius blockTemp(const std::vector<Celsius> &temps, int block) const;
    /** Temperatures of every block [degC]. */
    std::vector<Celsius>
    blockTemps(const std::vector<Celsius> &temps) const;

    /** blockTemps() into a caller-owned (resized) buffer. */
    void blockTempsInto(const std::vector<Celsius> &temps,
                        std::vector<Celsius> &out) const;
    /** Temperature of a VR node [degC]. */
    Celsius vrTemp(const std::vector<Celsius> &temps, int vr) const;

    /** Hottest on-die temperature (die cells and VR nodes) [degC]. */
    Celsius maxDieTemp(const std::vector<Celsius> &temps) const;

    /** Location of the hottest on-die node. */
    struct HotSpot
    {
        bool isVr = false; //!< true when a VR node is hottest
        int vr = -1;       //!< floorplan VR index when isVr
        int row = -1;      //!< die cell row otherwise
        int col = -1;      //!< die cell column otherwise
        Celsius temp = 0.0;
    };
    HotSpot hottest(const std::vector<Celsius> &temps) const;

    /** Centre of die cell (row, col) in floorplan coordinates [mm]. */
    std::pair<double, double> cellCentre(int row, int col) const;
    /** Max spatial temperature difference across the die [degC]. */
    Celsius gradient(const std::vector<Celsius> &temps) const;

    /** Die-cell temperature grid row-major (for heat maps) [degC]. */
    std::vector<Celsius>
    dieGrid(const std::vector<Celsius> &temps) const;

    /** Assembled conductance matrix G (tests / dense reference). */
    const SparseMatrix &conductance() const { return g; }
    /** Per-node heat capacities [J/K] (tests / dense reference). */
    const std::vector<double> &heatCapacities() const
    {
        return capacitance;
    }
    /** Per-node ambient injection G_amb * T_amb [W]. */
    const std::vector<double> &ambientInjection() const
    {
        return ambientIn;
    }

  private:
    const floorplan::Chip &chipRef;
    ThermalParams prm;

    std::size_t nDie = 0;      //!< die cells, nodes [0, nDie)
    std::size_t nVr = 0;       //!< VR nodes, [nDie, nDie + nVr)
    std::size_t nSpread = 0;   //!< spreader cells, rest
    std::size_t nNodes = 0;

    SparseMatrix g;                  //!< conductance matrix (CSR)
    std::vector<double> capacitance; //!< per-node heat capacity [J/K]
    std::vector<double> ambientIn;   //!< G_amb * T_amb injection [W]
    std::unique_ptr<SparseLdltSolver> luTransient; //!< (C/dt + G)
    std::unique_ptr<SparseLdltSolver> luSteady;    //!< G
    mutable std::vector<double> rhsScratch; //!< advance() workspace

    /** Per block: list of (cell node, weight) with weights summing 1. */
    std::vector<std::vector<std::pair<int, double>>> blockCells;

    void assemble();
};

} // namespace thermal
} // namespace tg

#endif // TG_THERMAL_MODEL_HH
