#include "thermal/model.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace tg {
namespace thermal {

ThermalModel::ThermalModel(const floorplan::Chip &chip,
                           ThermalParams params)
    : chipRef(chip), prm(params)
{
    TG_ASSERT(prm.gridW >= 2 && prm.gridH >= 2, "die grid too small");
    TG_ASSERT(prm.spreaderN >= 1, "need at least one spreader cell");
    TG_ASSERT(prm.step > 0.0, "step must be positive");
    assemble();
}

int
ThermalModel::cellNode(int row, int col) const
{
    TG_ASSERT(row >= 0 && row < prm.gridH && col >= 0 &&
                  col < prm.gridW,
              "die cell out of range");
    return row * prm.gridW + col;
}

int
ThermalModel::vrNode(int vr) const
{
    TG_ASSERT(vr >= 0 && vr < static_cast<int>(nVr), "bad VR index");
    return static_cast<int>(nDie) + vr;
}

void
ThermalModel::assemble()
{
    const auto &plan = chipRef.plan;
    nDie = static_cast<std::size_t>(prm.gridW) * prm.gridH;
    nVr = plan.vrs().size();
    nSpread = static_cast<std::size_t>(prm.spreaderN) * prm.spreaderN;
    nNodes = nDie + nVr + nSpread;

    std::vector<Triplet> stamps;
    stamps.reserve(8 * nNodes);
    capacitance.assign(nNodes, 0.0);
    ambientIn.assign(nNodes, 0.0);

    const double die_w = mmToM(plan.width());
    const double die_h = mmToM(plan.height());
    const double cell_w = die_w / prm.gridW;
    const double cell_h = die_h / prm.gridH;
    const double cell_area = cell_w * cell_h;

    auto couple = [&](std::size_t a, std::size_t b, double cond) {
        stamps.push_back({a, a, cond});
        stamps.push_back({b, b, cond});
        stamps.push_back({a, b, -cond});
        stamps.push_back({b, a, -cond});
    };

    // --- Die cells -----------------------------------------------------
    const double t_die = prm.dieThickness;
    for (int r = 0; r < prm.gridH; ++r) {
        for (int c = 0; c < prm.gridW; ++c) {
            std::size_t n = static_cast<std::size_t>(cellNode(r, c));
            capacitance[n] = prm.cvSilicon * cell_area * t_die;
            // Lateral conduction through the silicon slab.
            if (c + 1 < prm.gridW) {
                double cond = prm.kSilicon * t_die * cell_h / cell_w;
                couple(n, static_cast<std::size_t>(cellNode(r, c + 1)),
                       cond);
            }
            if (r + 1 < prm.gridH) {
                double cond = prm.kSilicon * t_die * cell_w / cell_h;
                couple(n, static_cast<std::size_t>(cellNode(r + 1, c)),
                       cond);
            }
        }
    }

    // --- VR nodes ------------------------------------------------------
    // Each VR is a tiny silicon volume riding on its host die cell;
    // the small coupling conductance (spreading + constriction of the
    // 0.2 mm footprint) reproduces the large local deltaT per watt
    // that makes miniature regulators thermally dangerous (Section 2).
    for (std::size_t v = 0; v < nVr; ++v) {
        const auto &vr = plan.vrs()[v];
        double vr_area = mm2ToM2(vr.rect.area());
        std::size_t n = nDie + v;
        capacitance[n] = prm.cvSilicon * vr_area * t_die;
        int col = std::min<int>(
            prm.gridW - 1,
            static_cast<int>(mmToM(vr.rect.cx()) / cell_w));
        int row = std::min<int>(
            prm.gridH - 1,
            static_cast<int>(mmToM(vr.rect.cy()) / cell_h));
        double cond = 1.0 / prm.vrCouplingResistance;
        couple(n, static_cast<std::size_t>(cellNode(row, col)), cond);
    }

    // --- Spreader ------------------------------------------------------
    const double sp_side = prm.spreaderSide;
    const double sp_cell = sp_side / prm.spreaderN;
    const double sp_area = sp_cell * sp_cell;
    auto spread_node = [&](int r, int c) {
        return nDie + nVr +
               static_cast<std::size_t>(r) * prm.spreaderN + c;
    };
    double g_amb = 1.0 / (prm.rConvection * static_cast<double>(nSpread));
    for (int r = 0; r < prm.spreaderN; ++r) {
        for (int c = 0; c < prm.spreaderN; ++c) {
            std::size_t n = spread_node(r, c);
            capacitance[n] =
                prm.cvCopper * sp_area * prm.spreaderThickness;
            if (c + 1 < prm.spreaderN) {
                double cond = prm.kCopper * prm.spreaderThickness;
                couple(n, spread_node(r, c + 1), cond);
            }
            if (r + 1 < prm.spreaderN) {
                double cond = prm.kCopper * prm.spreaderThickness;
                couple(n, spread_node(r + 1, c), cond);
            }
            // Convection to ambient: diagonal term plus injection.
            stamps.push_back({n, n, g_amb});
            ambientIn[n] = g_amb * prm.ambient;
        }
    }

    // --- Die cell -> spreader vertical path ----------------------------
    // Half the die thickness of silicon in series with the TIM, into
    // the spreader cell under the die cell's centre (the die sits
    // centred on the larger spreader).
    double r_si = (0.5 * t_die) / (prm.kSilicon * cell_area);
    double r_tim = prm.timThickness / (prm.kTim * cell_area);
    double g_vert = 1.0 / (r_si + r_tim);
    double off_x = 0.5 * (sp_side - die_w);
    double off_y = 0.5 * (sp_side - die_h);
    for (int r = 0; r < prm.gridH; ++r) {
        for (int c = 0; c < prm.gridW; ++c) {
            double x = off_x + (c + 0.5) * cell_w;
            double y = off_y + (r + 0.5) * cell_h;
            int sc = std::clamp(static_cast<int>(x / sp_cell), 0,
                                prm.spreaderN - 1);
            int sr = std::clamp(static_cast<int>(y / sp_cell), 0,
                                prm.spreaderN - 1);
            couple(static_cast<std::size_t>(cellNode(r, c)),
                   spread_node(sr, sc), g_vert);
        }
    }

    // --- Block -> die-cell power mapping (exact overlap) ---------------
    const auto &blocks = plan.blocks();
    blockCells.assign(blocks.size(), {});
    double cw_mm = plan.width() / prm.gridW;
    double ch_mm = plan.height() / prm.gridH;
    for (std::size_t b = 0; b < blocks.size(); ++b) {
        const auto &rect = blocks[b].rect;
        int c0 = std::clamp(static_cast<int>(rect.x / cw_mm), 0,
                            prm.gridW - 1);
        int c1 = std::clamp(
            static_cast<int>(std::ceil((rect.x + rect.w) / cw_mm)), 1,
            prm.gridW);
        int r0 = std::clamp(static_cast<int>(rect.y / ch_mm), 0,
                            prm.gridH - 1);
        int r1 = std::clamp(
            static_cast<int>(std::ceil((rect.y + rect.h) / ch_mm)), 1,
            prm.gridH);
        double total = 0.0;
        for (int r = r0; r < r1; ++r) {
            for (int c = c0; c < c1; ++c) {
                double ox = std::max(
                    0.0, std::min(rect.x + rect.w, (c + 1) * cw_mm) -
                             std::max(rect.x, c * cw_mm));
                double oy = std::max(
                    0.0, std::min(rect.y + rect.h, (r + 1) * ch_mm) -
                             std::max(rect.y, r * ch_mm));
                double w = ox * oy;
                if (w > 0.0) {
                    blockCells[b].push_back({cellNode(r, c), w});
                    total += w;
                }
            }
        }
        TG_ASSERT(total > 0.0, "block '", blocks[b].name,
                  "' maps to no die cell");
        for (auto &[node, w] : blockCells[b])
            w /= total;
    }

    // --- Factorisations ------------------------------------------------
    // Both systems are SPD (the spreader's ambient conductances
    // ground the network), so the sparse envelope LDL^T with an RCM
    // ordering factors them with fill confined to a narrow band.
    std::vector<Triplet> transient(stamps);
    for (std::size_t n = 0; n < nNodes; ++n)
        transient.push_back({n, n, capacitance[n] / prm.step});
    g = SparseMatrix::fromTriplets(nNodes, nNodes, std::move(stamps));
    luTransient = std::make_unique<SparseLdltSolver>(
        SparseMatrix::fromTriplets(nNodes, nNodes,
                                   std::move(transient)));
    luSteady = std::make_unique<SparseLdltSolver>(g);
}

std::vector<Watts>
ThermalModel::powerVector(const std::vector<Watts> &block_power,
                          const std::vector<Watts> &vr_loss) const
{
    std::vector<Watts> p;
    powerVectorInto(block_power, vr_loss, p);
    return p;
}

void
ThermalModel::powerVectorInto(const std::vector<Watts> &block_power,
                              const std::vector<Watts> &vr_loss,
                              std::vector<Watts> &out) const
{
    TG_ASSERT(block_power.size() == blockCells.size(),
              "block power size mismatch");
    TG_ASSERT(vr_loss.size() == nVr, "VR loss size mismatch");
    out.assign(nNodes, 0.0);
    for (std::size_t b = 0; b < blockCells.size(); ++b)
        for (const auto &[node, w] : blockCells[b])
            out[static_cast<std::size_t>(node)] += w * block_power[b];
    for (std::size_t v = 0; v < nVr; ++v)
        out[nDie + v] += vr_loss[v];
}

std::vector<Celsius>
ThermalModel::uniformState(Celsius t) const
{
    return std::vector<Celsius>(nNodes, t);
}

void
ThermalModel::advance(std::vector<Celsius> &temps,
                      const std::vector<Watts> &p) const
{
    TG_ASSERT(temps.size() == nNodes && p.size() == nNodes,
              "state/power size mismatch");
    // (C/dt + G) T' = C/dt T + P + b_amb
    rhsScratch.resize(nNodes);
    for (std::size_t n = 0; n < nNodes; ++n)
        rhsScratch[n] =
            capacitance[n] / prm.step * temps[n] + p[n] + ambientIn[n];
    luTransient->solveInPlace(rhsScratch);
    temps.swap(rhsScratch);
}

std::vector<Celsius>
ThermalModel::steadyState(const std::vector<Watts> &p) const
{
    TG_ASSERT(p.size() == nNodes, "power size mismatch");
    std::vector<double> rhs(nNodes);
    for (std::size_t n = 0; n < nNodes; ++n)
        rhs[n] = p[n] + ambientIn[n];
    luSteady->solveInPlace(rhs);
    return rhs;
}

Celsius
ThermalModel::blockTemp(const std::vector<Celsius> &temps,
                        int block) const
{
    const auto &cells =
        blockCells.at(static_cast<std::size_t>(block));
    double t = 0.0;
    for (const auto &[node, w] : cells)
        t += w * temps[static_cast<std::size_t>(node)];
    return t;
}

std::vector<Celsius>
ThermalModel::blockTemps(const std::vector<Celsius> &temps) const
{
    std::vector<Celsius> out;
    blockTempsInto(temps, out);
    return out;
}

void
ThermalModel::blockTempsInto(const std::vector<Celsius> &temps,
                             std::vector<Celsius> &out) const
{
    out.resize(blockCells.size());
    for (std::size_t b = 0; b < blockCells.size(); ++b)
        out[b] = blockTemp(temps, static_cast<int>(b));
}

Celsius
ThermalModel::vrTemp(const std::vector<Celsius> &temps, int vr) const
{
    return temps[static_cast<std::size_t>(vrNode(vr))];
}

Celsius
ThermalModel::maxDieTemp(const std::vector<Celsius> &temps) const
{
    Celsius m = temps[0];
    for (std::size_t n = 0; n < nDie + nVr; ++n)
        m = std::max(m, temps[n]);
    return m;
}

Celsius
ThermalModel::gradient(const std::vector<Celsius> &temps) const
{
    Celsius lo = temps[0];
    Celsius hi = temps[0];
    for (std::size_t n = 0; n < nDie + nVr; ++n) {
        lo = std::min(lo, temps[n]);
        hi = std::max(hi, temps[n]);
    }
    return hi - lo;
}

ThermalModel::HotSpot
ThermalModel::hottest(const std::vector<Celsius> &temps) const
{
    HotSpot h;
    std::size_t best = 0;
    for (std::size_t n = 1; n < nDie + nVr; ++n)
        if (temps[n] > temps[best])
            best = n;
    h.temp = temps[best];
    if (best >= nDie) {
        h.isVr = true;
        h.vr = static_cast<int>(best - nDie);
    } else {
        h.row = static_cast<int>(best) / prm.gridW;
        h.col = static_cast<int>(best) % prm.gridW;
    }
    return h;
}

std::pair<double, double>
ThermalModel::cellCentre(int row, int col) const
{
    double cw = chipRef.plan.width() / prm.gridW;
    double ch = chipRef.plan.height() / prm.gridH;
    return {(col + 0.5) * cw, (row + 0.5) * ch};
}

std::vector<Celsius>
ThermalModel::dieGrid(const std::vector<Celsius> &temps) const
{
    return std::vector<Celsius>(temps.begin(),
                                temps.begin() +
                                    static_cast<long>(nDie));
}

} // namespace thermal
} // namespace tg
