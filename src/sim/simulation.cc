#include "sim/simulation.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>

#include "cache/disk.hh"
#include "cache/serialize.hh"
#include "cache/store.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "core/aging.hh"
#include "fault/injector.hh"
#include "sensors/emergency_predictor.hh"
#include "sensors/health.hh"
#include "sensors/thermal_sensor.hh"
#include "uarch/core_model.hh"
#include "vreg/design.hh"
#include "workload/cycles.hh"
#include "workload/demand.hh"

namespace tg {
namespace sim {

using core::PolicyKind;

namespace {

vreg::VrDesign
designFor(RegulatorChoice choice)
{
    switch (choice) {
      case RegulatorChoice::Fivr: return vreg::fivrDesign();
      case RegulatorChoice::Ldo: return vreg::ldoDesign();
    }
    panic("unknown regulator choice");
}

/** Cached thermal-predictor fit (keyed by chip x config). */
struct PredictorArtifact
{
    core::ThermalPredictor fitted;
    double r2 = 0.0;
};

std::size_t
powerTraceBytes(const power::PowerTrace &t)
{
    return sizeof(power::PowerTrace) +
           sizeof(Watts) * t.blocks() *
               (t.frames() +
                3 * static_cast<std::size_t>(t.epochs()));
}

} // namespace

Simulation::Simulation(const floorplan::Chip &chip, SimConfig cfg_in)
    : chipRef(chip), cfg(cfg_in), vrDesign(designFor(cfg.regulator)),
      tm(chip, cfg.thermalParams), pm(chip, cfg.powerParams)
{
    const auto &domains = chip.plan.domains();
    networks.reserve(domains.size());
    for (const auto &d : domains) {
        networks.emplace_back(vrDesign,
                              static_cast<int>(d.vrs.size()));
        networks.back().setVout(chip.params.vdd);
        pdns.push_back(std::make_unique<pdn::DomainPdn>(
            chip, d.id, vrDesign, cfg.pdnParams));
    }

    vrLocal.assign(chip.plan.vrs().size(), {-1, -1});
    for (const auto &d : domains)
        for (std::size_t l = 0; l < d.vrs.size(); ++l)
            vrLocal[static_cast<std::size_t>(d.vrs[l])] = {
                d.id, static_cast<int>(l)};
    for (std::size_t v = 0; v < vrLocal.size(); ++v)
        TG_ASSERT(vrLocal[v].first >= 0, "VR ", v, " has no domain");

    chipFp = cache::chipFingerprint(chip);
    cfgFp = cache::configFingerprint(cfg);
    if (!cfg.cacheDir.empty()) {
        cacheDirResolved = cfg.cacheDir;
    } else if (const char *dir = std::getenv("TG_CACHE_DIR")) {
        cacheDirResolved = dir;
    }
}

bool
Simulation::memoActive() const
{
    return cfg.memoizeResults && !cacheDirResolved.empty() &&
           cache::store().enabled();
}

cache::Fingerprint
Simulation::runKey(
    const std::vector<const workload::BenchmarkProfile *> &per_core,
    const std::string &label, PolicyKind policy,
    const RecordOptions &opts) const
{
    cache::Hasher h;
    h.str("tg.key.run-result.v1");
    h.fp(chipFp).fp(cfgFp);
    h.u64(static_cast<std::uint64_t>(policy)).str(label);
    h.u64(per_core.size());
    for (const auto *p : per_core)
        h.fp(cache::profileFingerprint(*p));
    h.fp(cache::recordOptionsFingerprint(opts));
    return h.digest();
}

const vreg::RegulatorNetwork &
Simulation::network(int domain) const
{
    return networks.at(static_cast<std::size_t>(domain));
}

const pdn::DomainPdn &
Simulation::domainPdn(int domain) const
{
    return *pdns.at(static_cast<std::size_t>(domain));
}

const core::ThermalPredictor &
Simulation::thermalPredictor()
{
    if (!predictor)
        calibrateThetas();
    return *predictor;
}

double
Simulation::predictorRSquared()
{
    if (!predictor)
        calibrateThetas();
    return predictorR2;
}

void
Simulation::adoptPredictor(const core::ThermalPredictor &fitted,
                           double r_squared)
{
    TG_ASSERT(fitted.size() ==
                  static_cast<int>(chipRef.plan.vrs().size()),
              "adopted predictor covers ", fitted.size(),
              " VRs, chip has ", chipRef.plan.vrs().size());
    predictor = std::make_unique<core::ThermalPredictor>(fitted);
    predictorR2 = r_squared;
}

void
Simulation::calibrateThetas()
{
    // Profiling pass (Section 6.3): drive the chip through large
    // demand steps under randomised gating so every regulator sees
    // on->off and off->on transitions, then fit deltaT = theta_i *
    // deltaP_i from epoch-to-epoch observations against the full RC
    // model.
    // The pass is a pure function of (chip, config), so its fit is a
    // cacheable artifact: sibling contexts of a sweep — and any later
    // Simulation with the same inputs in this process — adopt the
    // cached fit instead of re-running the profiling epochs.
    const cache::Fingerprint fit_key = cache::Hasher{}
                                           .str("tg.key.predictor.v1")
                                           .fp(chipFp)
                                           .fp(cfgFp)
                                           .digest();
    if (auto hit = cache::store().get<PredictorArtifact>(
            cache::ArtifactKind::Predictor, fit_key)) {
        predictor =
            std::make_unique<core::ThermalPredictor>(hit->fitted);
        predictorR2 = hit->r2;
        return;
    }

    const auto &plan = chipRef.plan;
    const auto &domains = plan.domains();
    int n_vrs = static_cast<int>(plan.vrs().size());
    predictor = std::make_unique<core::ThermalPredictor>(n_vrs);

    Rng rng(mixSeed(cfg.seed, 0x7075u));
    Seconds dt = tm.step();
    int fpe = std::max(
        1, static_cast<int>(std::round(cfg.decisionInterval / dt)));

    // Mid-level uniform activity as the block-power background.
    std::vector<Watts> block_dyn(plan.blocks().size());
    auto block_power_at = [&](double u) {
        for (std::size_t b = 0; b < block_dyn.size(); ++b) {
            bool logic = floorplan::isLogicUnit(plan.blocks()[b].kind);
            block_dyn[b] = pm.peakDynamic(static_cast<int>(b)) *
                           (logic ? u : 0.5 * u);
        }
        return block_dyn;
    };

    auto temps = tm.uniformState(cfg.thermalParams.ambient + 12.0);
    std::vector<Watts> vr_loss(static_cast<std::size_t>(n_vrs), 0.0);
    std::vector<Watts> prev_loss;
    std::vector<Celsius> prev_temp;

    for (int e = 0; e < cfg.profilingEpochs; ++e) {
        // Demand square wave with jitter: big deltaP between epochs.
        double u = (e % 2 == 0 ? 0.35 : 0.8) + rng.uniform(-0.05, 0.05);
        auto block_power = block_power_at(u);

        std::fill(vr_loss.begin(), vr_loss.end(), 0.0);
        for (const auto &d : domains) {
            Amperes demand = pm.domainCurrent(block_power, d.id);
            auto &net = networks[static_cast<std::size_t>(d.id)];
            int non = net.requiredActive(demand);
            // Random subset of size non.
            std::vector<int> order(d.vrs.size());
            for (std::size_t i = 0; i < order.size(); ++i)
                order[i] = static_cast<int>(i);
            for (std::size_t i = order.size(); i-- > 1;)
                std::swap(order[i],
                          order[static_cast<std::size_t>(
                              rng.uniformInt(0, static_cast<int>(i)))]);
            auto op = net.evaluate(demand, non);
            for (int l = 0; l < non; ++l)
                vr_loss[static_cast<std::size_t>(
                    d.vrs[static_cast<std::size_t>(order[
                        static_cast<std::size_t>(l)])])] =
                    op.plossTotal / non;
        }

        auto pv = tm.powerVector(block_power, vr_loss);
        for (int f = 0; f < fpe; ++f)
            tm.advance(temps, pv);

        std::vector<Celsius> vr_temp(static_cast<std::size_t>(n_vrs));
        for (int v = 0; v < n_vrs; ++v)
            vr_temp[static_cast<std::size_t>(v)] = tm.vrTemp(temps, v);

        if (e >= 2) {
            // Skip the first epochs: the global state is still
            // settling and would contaminate the per-VR fit.
            for (int v = 0; v < n_vrs; ++v) {
                double d_p = vr_loss[static_cast<std::size_t>(v)] -
                             prev_loss[static_cast<std::size_t>(v)];
                double d_t = vr_temp[static_cast<std::size_t>(v)] -
                             prev_temp[static_cast<std::size_t>(v)];
                predictor->addSample(v, d_p, d_t);
            }
        }
        prev_loss = vr_loss;
        prev_temp = vr_temp;
    }
    predictor->fit();
    predictorR2 = predictor->rSquared();

    cache::store().put<PredictorArtifact>(
        cache::ArtifactKind::Predictor, fit_key,
        std::make_shared<const PredictorArtifact>(
            PredictorArtifact{*predictor, predictorR2}),
        sizeof(PredictorArtifact) +
            3 * sizeof(double) * static_cast<std::size_t>(n_vrs));
}

int
Simulation::noiseBatchWidth() const
{
    return std::clamp(cfg.noiseBatchWidth, 1,
                      pdn::DomainPdn::kMaxWindowBatch);
}

void
Simulation::buildNoiseWindowInto(int domain, long epoch, int sample,
                                 const std::vector<Watts> &block_power,
                                 double didt, std::uint64_t run_seed,
                                 NoiseScratch &scratch,
                                 std::uint64_t power_stamp,
                                 Amperes *dst) const
{
    const auto &plan = chipRef.plan;
    const auto &pdn = *pdns[static_cast<std::size_t>(domain)];
    const auto &dom = plan.domains()[static_cast<std::size_t>(domain)];

    // Split the domain's power into logic and memory groups (they
    // fluctuate with different depths) and project each onto the PDN
    // nodes. The split depends only on the power vector, so repeated
    // windows against the same power reuse the cached base currents.
    if (scratch.stamp != power_stamp || scratch.baseLogic.empty()) {
        scratch.pLogic.assign(block_power.size(), 0.0);
        scratch.pMem.assign(block_power.size(), 0.0);
        for (int b : dom.blocks) {
            std::size_t ub = static_cast<std::size_t>(b);
            if (floorplan::isLogicUnit(plan.blocks()[ub].kind))
                scratch.pLogic[ub] = block_power[ub];
            else
                scratch.pMem[ub] = block_power[ub];
        }
        pdn.nodeCurrentsInto(scratch.pLogic, scratch.baseLogic);
        pdn.nodeCurrentsInto(scratch.pMem, scratch.baseMem);
        scratch.stamp = power_stamp;
    }
    const auto &base_logic = scratch.baseLogic;
    const auto &base_mem = scratch.baseMem;

    int cycles = cfg.noiseCyclesTotal;
    Rng rng(mixSeed(mixSeed(run_seed, static_cast<std::uint64_t>(
                                          epoch * 1315423911ll)),
                    mixSeed(static_cast<std::uint64_t>(sample),
                            static_cast<std::uint64_t>(domain))));
    workload::synthesizeCycleMultipliersInto(
        didt, static_cast<std::size_t>(cycles), rng, scratch.mult);

    std::size_t n = static_cast<std::size_t>(pdn.nodeCount());
    for (int c = 0; c < cycles; ++c) {
        double ml = scratch.mult[static_cast<std::size_t>(c)];
        double mm = 1.0 + 0.35 * (ml - 1.0);  // caches swing less
        Amperes *row = dst + static_cast<std::size_t>(c) * n;
        for (std::size_t i = 0; i < n; ++i)
            row[i] = base_logic[i] * ml + base_mem[i] * mm;
    }
}

bool
Simulation::epochEmergencyTruth(int domain, long epoch,
                                const std::vector<int> &samples,
                                const std::vector<Watts> &block_power,
                                double didt, std::uint64_t run_seed,
                                NoiseScratch &scratch,
                                std::uint64_t power_stamp) const
{
    const auto &pdn = *pdns[static_cast<std::size_t>(domain)];
    std::size_t n = static_cast<std::size_t>(pdn.nodeCount());
    std::size_t cycles =
        static_cast<std::size_t>(cfg.noiseCyclesTotal);
    std::size_t win = cycles * n;
    int width = noiseBatchWidth();
    int k = static_cast<int>(samples.size());
    std::size_t uw = static_cast<std::size_t>(width);
    if (scratch.queue.size() < uw * win)
        scratch.queue.resize(uw * win);
    if (scratch.specs.size() < uw)
        scratch.specs.resize(uw);
    if (scratch.results.size() < uw)
        scratch.results.resize(uw);
    for (int q0 = 0; q0 < k; q0 += width) {
        int cnt = std::min(width, k - q0);
        for (int j = 0; j < cnt; ++j) {
            Amperes *dst =
                scratch.queue.data() + static_cast<std::size_t>(j) * win;
            buildNoiseWindowInto(domain, epoch,
                                 samples[static_cast<std::size_t>(
                                     q0 + j)],
                                 block_power, didt, run_seed, scratch,
                                 power_stamp, dst);
            scratch.specs[static_cast<std::size_t>(j)] = {dst, n};
        }
        pdn.transientWindowBatch(scratch.specs.data(), cnt, cycles,
                                 cfg.noiseWarmupCycles, false,
                                 scratch.results.data());
        for (int j = 0; j < cnt; ++j)
            if (scratch.results[static_cast<std::size_t>(j)]
                    .emergencyCycles > 0)
                return true;
    }
    return false;
}

RunResult
Simulation::run(const workload::BenchmarkProfile &profile,
                PolicyKind policy, RecordOptions opts)
{
    std::vector<const workload::BenchmarkProfile *> per_core(
        static_cast<std::size_t>(chipRef.params.cores), &profile);
    return runMixed(per_core, profile.name, policy, opts);
}

RunResult
Simulation::runMixed(
    const std::vector<const workload::BenchmarkProfile *> &per_core,
    const std::string &label, PolicyKind policy, RecordOptions opts)
{
    TG_ASSERT(static_cast<int>(per_core.size()) ==
                  chipRef.params.cores,
              "need one profile per core");

    // --- Whole-run memoization -------------------------------------------
    // The full tuple (chip, config, profiles, policy, record options)
    // determines every bit of the result, so with memoization opted in
    // (a cache directory + memoizeResults) a warm query returns the
    // stored RunResult: first from the in-memory store, then from the
    // disk tier (verified + promoted into memory). A corrupt or
    // truncated disk entry is rejected and the run recomputes.
    const bool memo = memoActive();
    cache::Fingerprint memo_key{};
    if (memo) {
        memo_key = runKey(per_core, label, policy, opts);
        if (auto hit = cache::store().get<RunResult>(
                cache::ArtifactKind::RunResult, memo_key))
            return *hit;
        cache::DiskTier disk(cacheDirResolved);
        std::vector<std::uint8_t> payload;
        if (disk.load(cache::ArtifactKind::RunResult, memo_key,
                      payload)) {
            auto loaded = std::make_shared<RunResult>();
            if (cache::decodeRunResult(payload.data(), payload.size(),
                                       *loaded)) {
                cache::store().put<RunResult>(
                    cache::ArtifactKind::RunResult, memo_key,
                    std::shared_ptr<const RunResult>(loaded),
                    cache::runResultBytes(*loaded));
                return *loaded;
            }
        }
    }

    const auto &plan = chipRef.plan;
    const auto &domains = plan.domains();
    const int n_domains = static_cast<int>(domains.size());
    const int n_vrs = static_cast<int>(plan.vrs().size());

    if (core::isThermallyAware(policy))
        thermalPredictor();  // ensure thetas exist

    std::uint64_t run_seed = mixSeed(cfg.seed, hashString(label));

    // Per-domain di/dt intensity: a core domain inherits its own
    // program's character; an L3 bank sees the dampened average.
    double didt_avg = 0.0;
    for (const auto *p : per_core)
        didt_avg += p->didtActivity;
    didt_avg /= static_cast<double>(per_core.size());
    auto domain_didt = [&](int d) {
        const auto &dom =
            plan.domains()[static_cast<std::size_t>(d)];
        if (dom.kind == floorplan::DomainKind::Core) {
            // Core domain ids coincide with core ids on the canned
            // chips; fall back to the average otherwise.
            if (d < static_cast<int>(per_core.size()))
                return per_core[static_cast<std::size_t>(d)]
                    ->didtActivity;
            return didt_avg;
        }
        return 0.5 * didt_avg;
    };
    const Seconds dt = tm.step();
    const int fpe = std::max(
        1, static_cast<int>(std::round(cfg.decisionInterval / dt)));

    // --- Workload -> activity -> power trace (policy-independent) -------
    // The whole demand/activity/dynamic-power pipeline depends on
    // (chip, power model, step, frames-per-epoch, profiles, run seed)
    // but NOT on the policy, so its product — the PowerTrace with its
    // per-epoch mean/peak reductions — is a shared artifact: a sweep
    // builds it once per benchmark row and every policy cell (and
    // every worker context) reads the same immutable trace. On a hit
    // the demand and activity synthesis is skipped entirely.
    const cache::Fingerprint trace_key = [&] {
        cache::Hasher h;
        h.str("tg.key.power-trace.v1");
        h.fp(chipFp)
            .fp(cache::powerParamsFingerprint(cfg.powerParams))
            .f64(dt)
            .i64(fpe)
            .u64(run_seed);
        h.u64(per_core.size());
        for (const auto *p : per_core)
            h.fp(cache::profileFingerprint(*p));
        return h.digest();
    }();
    std::shared_ptr<const power::PowerTrace> trace =
        cache::store().getOrBuild<power::PowerTrace>(
            cache::ArtifactKind::PowerTrace, trace_key,
            [&] {
                auto demand = workload::generateMixedDemandTrace(
                    per_core, run_seed, dt);
                auto activity = uarch::buildActivityTrace(
                    chipRef, per_core, demand);
                return std::make_shared<const power::PowerTrace>(
                    pm, activity, fpe);
            },
            powerTraceBytes);

    const std::size_t n_frames = trace->frames();
    const long n_epochs =
        (static_cast<long>(n_frames) + fpe - 1) / fpe;
    const std::size_t n_blocks = plan.blocks().size();

    // --- Noise sample schedule -----------------------------------------
    int n_samples = opts.noiseSamplesOverride >= 0
                        ? opts.noiseSamplesOverride
                        : cfg.noiseSamples;
    if (policy == PolicyKind::OffChip)
        n_samples = 0;
    std::vector<std::vector<int>> samples_of_epoch(
        static_cast<std::size_t>(n_epochs));
    std::vector<int> sample_frame(static_cast<std::size_t>(n_samples));
    for (int s = 0; s < n_samples; ++s) {
        int f = static_cast<int>((s + 0.5) * static_cast<double>(
                                                 n_frames) /
                                 n_samples);
        f = std::min<int>(f, static_cast<int>(n_frames) - 1);
        sample_frame[static_cast<std::size_t>(s)] = f;
        samples_of_epoch[static_cast<std::size_t>(f / fpe)].push_back(
            s);
    }

    // --- Infrastructure -------------------------------------------------
    // Noise windows are independent across domains (per-domain PDN
    // scratch, per-domain NoiseScratch, RNG streams keyed by
    // (run_seed, epoch, sample, domain)), so window synthesis and the
    // end-of-epoch batched drain fan out across a long-lived pool.
    // Results are reduced serially in (sample, domain) order, so any
    // worker count is bit-identical to the serial path. Sweep workers
    // (already on a pool thread) stay serial instead of
    // oversubscribing the machine.
    noiseScratch.resize(static_cast<std::size_t>(n_domains));
    noiseQueue.clear();
    for (auto &sc : noiseScratch)
        sc.solved = 0;
    if (!noisePool && n_samples > 0 && n_domains > 1 &&
        exec::ThreadPool::workerIndex() < 0) {
        int noise_jobs =
            std::min(exec::resolveJobs(cfg.jobs), n_domains);
        if (noise_jobs > 1)
            noisePool =
                std::make_unique<exec::ThreadPool>(noise_jobs);
    }

    core::Governor governor(policy, n_domains);
    core::AgingModel aging(n_vrs);
    sensors::ThermalSensorBank sensor_bank(
        n_vrs, cfg.sensorParams, mixSeed(run_seed, 0x5eb5u));
    sensors::EmergencyPredictor em_predictor(
        cfg.predictorParams, mixSeed(run_seed, 0xe456u));
    std::vector<WmaForecaster> wma(static_cast<std::size_t>(n_domains),
                                   WmaForecaster(3));

    // --- Fault injection (optional) --------------------------------------
    // An empty (or absent) scenario takes the exact code paths of a
    // clean run: every fault hook below is gated on `injector`, so
    // results stay bit-identical to a run without the option.
    const fault::FaultScenario *scenario =
        (opts.faultScenario && !opts.faultScenario->empty())
            ? opts.faultScenario
            : nullptr;
    std::unique_ptr<fault::FaultInjector> injector;
    std::unique_ptr<sensors::SensorHealthMonitor> health;
    if (scenario) {
        std::vector<int> vr_domain(vrLocal.size());
        for (std::size_t v = 0; v < vrLocal.size(); ++v)
            vr_domain[v] = vrLocal[v].first;
        injector = std::make_unique<fault::FaultInjector>(
            *scenario, std::move(vr_domain), n_vrs, run_seed);
        std::vector<std::pair<double, double>> positions;
        positions.reserve(plan.vrs().size());
        for (const auto &site : plan.vrs())
            positions.emplace_back(site.rect.cx(), site.rect.cy());
        health = std::make_unique<sensors::SensorHealthMonitor>(
            std::move(positions), cfg.healthParams);
    }
    long faulted_epochs = 0;
    long quarantined_epochs = 0;
    int peak_quarantined = 0;
    long alerts_suppressed = 0;
    long alerts_injected = 0;
    long em_cycles_faulted = 0;
    long em_cycles_clean = 0;

    const bool oracular_inputs = core::isOracular(policy) ||
                                 policy == PolicyKind::Naive ||
                                 policy == PolicyKind::AllOn;
    const bool off_chip = policy == PolicyKind::OffChip;

    // --- Initial condition ----------------------------------------------
    std::vector<Watts> vr_loss(static_cast<std::size_t>(n_vrs), 0.0);
    std::vector<std::vector<int>> active_sets(
        static_cast<std::size_t>(n_domains));
    if (!off_chip) {
        for (int d = 0; d < n_domains; ++d) {
            auto &set = active_sets[static_cast<std::size_t>(d)];
            set.resize(domains[static_cast<std::size_t>(d)].vrs.size());
            for (std::size_t i = 0; i < set.size(); ++i)
                set[i] = static_cast<int>(i);
        }
    }

    std::vector<Celsius> temps;
    {
        const Watts *dyn0 = trace->frame(0);
        temps = tm.uniformState(cfg.thermalParams.ambient + 12.0);
        for (int it = 0; it < 4; ++it) {
            tm.blockTempsInto(temps, fs.blockT);
            pm.leakageFrameInto(fs.blockT, fs.leak);
            std::vector<Watts> block_power(dyn0, dyn0 + n_blocks);
            for (std::size_t b = 0; b < block_power.size(); ++b)
                block_power[b] += fs.leak[b];
            std::fill(vr_loss.begin(), vr_loss.end(), 0.0);
            if (!off_chip) {
                for (int d = 0; d < n_domains; ++d) {
                    Amperes i_d = pm.domainCurrent(block_power, d);
                    const auto &set =
                        active_sets[static_cast<std::size_t>(d)];
                    auto op = networks[static_cast<std::size_t>(d)]
                                  .evaluate(i_d,
                                            static_cast<int>(
                                                set.size()));
                    for (int l : set)
                        vr_loss[static_cast<std::size_t>(
                            domains[static_cast<std::size_t>(d)]
                                .vrs[static_cast<std::size_t>(l)])] =
                            op.plossTotal / set.size();
                }
            }
            temps = tm.steadyState(tm.powerVector(block_power,
                                                  vr_loss));
        }
    }
    {
        fs.vrT.resize(static_cast<std::size_t>(n_vrs));
        for (int v = 0; v < n_vrs; ++v)
            fs.vrT[static_cast<std::size_t>(v)] = tm.vrTemp(temps, v);
        sensor_bank.record(0.0, fs.vrT);
    }

    // --- Result accumulators ---------------------------------------------
    RunResult res;
    res.benchmark = label;
    res.policy = policy;

    RunningStats ploss_stats;
    RunningStats power_stats;
    RunningStats active_stats;
    double eta_weighted = 0.0;
    double eta_weight = 0.0;
    long emergency_cycles = 0;
    long analysed_cycles = 0;
    double best_trace_noise = -1.0;

    std::vector<Watts> last_block_power(
        trace->frame(0), trace->frame(0) + n_blocks);
    {
        tm.blockTempsInto(temps, fs.blockT);
        pm.leakageFrameInto(fs.blockT, fs.leak);
        for (std::size_t b = 0; b < last_block_power.size(); ++b)
            last_block_power[b] += fs.leak[b];
    }

    // --- Noise queue flush/drain ----------------------------------------
    // The queue of built-but-unsolved windows (one buffer per domain,
    // indexed by the shared noiseQueue) drains in two stages.
    // flush_domain(d) solves d's pending windows in lockstep chunks —
    // called early when d's active set is about to change, so the
    // solves still run under the factorisation the windows were
    // scheduled against. drain_all() completes every domain's solves
    // and reduces all results serially in global (sample, domain)
    // order: the reduction executes the exact max/sum/compare
    // sequence of the per-epoch path, so coalescing windows across
    // epochs (cfg.coalesceNoiseEpochs) is bit-invisible. Lanes of a
    // lockstep batch never interact, so chunk boundaries — which do
    // shift when windows coalesce or flush early — are bit-irrelevant
    // too.
    const bool coalesce = cfg.coalesceNoiseEpochs;
    const bool want_trace = opts.noiseTrace;
    const std::size_t win_cycles =
        static_cast<std::size_t>(cfg.noiseCyclesTotal);
    const int width = noiseBatchWidth();

    auto flush_domain = [&](int d) {
        auto &sc = noiseScratch[static_cast<std::size_t>(d)];
        const int k = static_cast<int>(noiseQueue.size());
        if (static_cast<int>(sc.solved) >= k)
            return;
        const auto &pdn = *pdns[static_cast<std::size_t>(d)];
        std::size_t n = static_cast<std::size_t>(pdn.nodeCount());
        std::size_t win = win_cycles * n;
        std::size_t uk = static_cast<std::size_t>(k);
        if (sc.specs.size() < uk)
            sc.specs.resize(uk);
        if (sc.results.size() < uk)
            sc.results.resize(uk);
        for (int q = static_cast<int>(sc.solved); q < k; ++q)
            sc.specs[static_cast<std::size_t>(q)] = {
                sc.queue.data() + static_cast<std::size_t>(q) * win,
                n};
        for (int q0 = static_cast<int>(sc.solved); q0 < k;
             q0 += width)
            pdn.transientWindowBatch(
                sc.specs.data() + q0, std::min(width, k - q0),
                win_cycles, cfg.noiseWarmupCycles, want_trace,
                sc.results.data() + q0);
        sc.solved = uk;
    };

    auto drain_all = [&]() {
        if (noiseQueue.empty())
            return;
        if (noisePool) {
            exec::parallelForOn(
                *noisePool, static_cast<std::size_t>(n_domains),
                [&](int, std::size_t d) {
                    flush_domain(static_cast<int>(d));
                });
        } else {
            for (int d = 0; d < n_domains; ++d)
                flush_domain(d);
        }
        const int k = static_cast<int>(noiseQueue.size());
        for (int q = 0; q < k; ++q) {
            int em_max = 0;
            int analysed = 0;
            for (int d = 0; d < n_domains; ++d) {
                auto &w = noiseScratch[static_cast<std::size_t>(d)]
                              .results[static_cast<std::size_t>(q)];
                double max_noise = w.maxNoiseFrac;
                if (core::hasEmergencyOverride(policy)) {
                    // Even when the *predictive* path missed
                    // (PracVT's 90% sensitivity), the runtime
                    // emergency detector fires on the first
                    // threshold crossing and snaps the domain to
                    // all-on within the droop, capping the
                    // excursion shortly past the threshold.
                    double cap = cfg.pdnParams.emergencyFrac * 1.32;
                    if (max_noise > cap)
                        max_noise = cap;
                }
                res.maxNoiseFrac =
                    std::max(res.maxNoiseFrac, max_noise);
                em_max = std::max(em_max, w.emergencyCycles);
                analysed = w.analysedCycles;
                if (want_trace && max_noise > best_trace_noise) {
                    best_trace_noise = max_noise;
                    res.noiseTrace = std::move(w.trace);
                    res.noiseTraceDomain = d;
                    res.noiseTraceTimeUs =
                        noiseQueue[static_cast<std::size_t>(q)]
                            .timeUs;
                }
            }
            emergency_cycles += em_max;
            analysed_cycles += analysed;
            if (injector) {
                // Attributed to the epoch the sample was *scheduled*
                // in (recorded at queue time), which is where the
                // per-epoch path reduced it.
                if (noiseQueue[static_cast<std::size_t>(q)].faulted)
                    em_cycles_faulted += em_max;
                else
                    em_cycles_clean += em_max;
            }
        }
        noiseQueue.clear();
        for (auto &sc : noiseScratch)
            sc.solved = 0;
    };

    // =====================================================================
    // Main loop: one gating decision per epoch, thermal steps per
    // frame, noise windows at the scheduled sample frames.
    // =====================================================================
    for (long e = 0; e < n_epochs; ++e) {
        // Cancellation point: one check per decision epoch. Aborting
        // here publishes nothing — the memo store/disk save only run
        // after the loop completes — so a cancelled run leaves no
        // partial artifact, and the next run() on this instance
        // resets every scratch buffer it could have dirtied.
        if (opts.cancel)
            opts.cancel->throwIfCancelled();
        std::size_t f0 = static_cast<std::size_t>(e) *
                         static_cast<std::size_t>(fpe);
        std::size_t f1 =
            std::min(n_frames, f0 + static_cast<std::size_t>(fpe));
        Seconds epoch_t = static_cast<double>(f0) * dt;

        // Fault state advances at decision granularity and stays
        // fixed for the whole epoch.
        bool epoch_faulted = false;
        if (injector) {
            injector->advanceTo(epoch_t);
            epoch_faulted = injector->anyActive();
            if (epoch_faulted)
                ++faulted_epochs;
        }

        // ---- Decisions ---------------------------------------------------
        if (!off_chip) {
            // Emergency-truth epochs re-key the factorisation and
            // reuse the queue buffers, so coalesced windows from
            // earlier epochs must fully drain first (the flush rule's
            // "decision boundary" case). Epochs the truth loop skips
            // keep their queues pending.
            if (coalesce && core::hasEmergencyOverride(policy) &&
                !samples_of_epoch[static_cast<std::size_t>(e)]
                     .empty())
                drain_all();

            // Epoch provisioning power: the trace's blended mean/peak
            // row (oracular policies provision n_on for the epoch's
            // demand *excursions*, not just its mean) plus leakage at
            // the current temperatures.
            const Watts *mean_dyn = trace->epochDynamic(e);
            tm.blockTempsInto(temps, fs.blockT);
            pm.leakageFrameInto(fs.blockT, fs.leak);
            fs.meanPower.resize(n_blocks);
            for (std::size_t b = 0; b < n_blocks; ++b)
                fs.meanPower[b] = mean_dyn[b] + fs.leak[b];
            const std::vector<Watts> &mean_power = fs.meanPower;
            const std::uint64_t mean_stamp = ++powerStamp;

            std::vector<Celsius> &vr_true = fs.vrT;
            vr_true.resize(static_cast<std::size_t>(n_vrs));
            for (int v = 0; v < n_vrs; ++v)
                vr_true[static_cast<std::size_t>(v)] =
                    tm.vrTemp(temps, v);
            sensor_bank.readInto(epoch_t, fs.vrSensor);
            if (injector) {
                // Corrupt what the control loop observes, then let the
                // health monitor quarantine and substitute. Ground
                // truth (fs.vrT, the thermal model) is untouched.
                injector->corruptSensors(epoch_t, e, fs.vrSensor);
                health->filter(epoch_t, fs.vrSensor);
                int qn = health->quarantinedCount();
                if (qn > 0)
                    ++quarantined_epochs;
                peak_quarantined = std::max(peak_quarantined, qn);
                if (res.resilience.detectionLatency < 0.0 && qn > 0) {
                    // First quarantine: latency from the earliest
                    // still-active fault on a quarantined sensor.
                    for (int v = 0; v < n_vrs; ++v) {
                        if (!health->quarantined(v))
                            continue;
                        Seconds onset = injector->sensorFaultOnset(v);
                        if (onset >= 0.0 && epoch_t >= onset) {
                            res.resilience.detectionLatency =
                                epoch_t - onset;
                            break;
                        }
                    }
                }
            }
            const std::vector<Celsius> &vr_sensor = fs.vrSensor;

            for (int d = 0; d < n_domains; ++d) {
                const auto &dom =
                    domains[static_cast<std::size_t>(d)];
                auto &net = networks[static_cast<std::size_t>(d)];
                auto &pdn = *pdns[static_cast<std::size_t>(d)];

                Amperes demand_now =
                    pm.domainCurrent(last_block_power, d);
                Amperes true_next =
                    pm.domainCurrent(mean_power, d);
                auto &forecaster =
                    wma[static_cast<std::size_t>(d)];
                forecaster.observe(demand_now);
                Amperes wma_next = forecaster.predict();

                core::DomainState &st = fs.st;
                st.domain = d;
                st.decision = e;
                st.demandNow = demand_now;
                st.demandNext =
                    oracular_inputs
                        ? true_next
                        : std::max(wma_next, demand_now) *
                              (1.0 + cfg.practicalDemandMargin);
                st.didt = domain_didt(d);
                st.headroomVrs = 0;
                if (!oracular_inputs &&
                    policy != PolicyKind::OffChip)
                    st.headroomVrs = cfg.practicalHeadroomVrs;

                st.vrTemps.resize(dom.vrs.size());
                st.vrLossNow.resize(dom.vrs.size());
                for (std::size_t l = 0; l < dom.vrs.size(); ++l) {
                    std::size_t v = static_cast<std::size_t>(
                        dom.vrs[l]);
                    st.vrTemps[l] = oracular_inputs ? vr_true[v]
                                                    : vr_sensor[v];
                    st.vrLossNow[l] = vr_loss[v];
                }
                // Regulator-fault masks (fs.st is reused, so the
                // clean path must leave them empty).
                if (injector && injector->anyVrFault()) {
                    st.vrUnavailable.resize(dom.vrs.size());
                    st.vrForcedOn.resize(dom.vrs.size());
                    for (std::size_t l = 0; l < dom.vrs.size();
                         ++l) {
                        int v = dom.vrs[l];
                        st.vrUnavailable[l] =
                            injector->vrFailed(v) ? 1 : 0;
                        st.vrForcedOn[l] =
                            injector->vrStuckOn(v) ? 1 : 0;
                    }
                } else {
                    st.vrUnavailable.clear();
                    st.vrForcedOn.clear();
                }
                int non_next = net.requiredActive(st.demandNext);
                auto op_next = net.evaluate(st.demandNext, non_next);
                st.vrLossNextPerActive = op_next.plossTotal /
                                         non_next;

                pdn.nodeCurrentsInto(
                    oracular_inputs ? mean_power : last_block_power,
                    st.nodeCurrents);

                core::PolicyToolkit kit;
                kit.pdn = &pdn;
                kit.network = &net;
                if (predictor) {
                    fs.thetas.resize(dom.vrs.size());
                    for (std::size_t l = 0; l < dom.vrs.size(); ++l)
                        fs.thetas[l] = predictor->theta(dom.vrs[l]);
                } else {
                    fs.thetas.clear();
                }
                kit.thetas = &fs.thetas;

                core::Decision decision =
                    governor.decide(st, kit, false);
                if (core::hasEmergencyOverride(policy) &&
                    !decision.overridden &&
                    !samples_of_epoch[static_cast<std::size_t>(e)]
                         .empty()) {
                    // Determine the ground truth: would this
                    // selection suffer an emergency this epoch?
                    // (The decision-boundary drain above already
                    // emptied the queue; the flush is a no-op kept
                    // for the invariant that no setActive() ever
                    // strands an unsolved window.)
                    if (decision.active != pdn.active()) {
                        flush_domain(d);
                        pdn.setActive(decision.active);
                    }
                    bool truth = epochEmergencyTruth(
                        d, e,
                        samples_of_epoch[static_cast<std::size_t>(e)],
                        mean_power, st.didt, run_seed,
                        noiseScratch[static_cast<std::size_t>(d)],
                        mean_stamp);
                    bool alert =
                        policy == PolicyKind::OracVT
                            ? truth
                            : em_predictor.predict(d, e, truth);
                    if (injector)
                        alert = injector->perturbAlert(
                            d, e, alert, &alerts_suppressed,
                            &alerts_injected);
                    if (alert)
                        decision = governor.decide(st, kit, true);
                }

                active_sets[static_cast<std::size_t>(d)] =
                    decision.active;
                // Unchanged selections keep the cached factorisation
                // AND any coalesced windows pending against it; a
                // change solves this domain's pending windows under
                // the outgoing set before re-keying.
                if (decision.active != pdn.active()) {
                    flush_domain(d);
                    pdn.setActive(decision.active);
                }
                governor.recordActivity(
                    d, decision.active,
                    static_cast<int>(dom.vrs.size()),
                    static_cast<double>(f1 - f0) * dt);
            }
            res.overrideCount = governor.overrideCount();

            // Policy-consistent warm start: the ROI is entered from
            // preceding execution under the same gating policy, so
            // re-derive the initial thermal state from the first
            // decision's configuration instead of the all-on
            // bootstrap state (otherwise every policy would inherit
            // the all-on maximum).
            if (e == 0) {
                for (int it = 0; it < 3; ++it) {
                    tm.blockTempsInto(temps, fs.blockT);
                    pm.leakageFrameInto(fs.blockT, fs.leak);
                    const Watts *dyn0 = trace->frame(0);
                    std::vector<Watts> block_power(dyn0,
                                                   dyn0 + n_blocks);
                    for (std::size_t b = 0; b < block_power.size();
                         ++b)
                        block_power[b] += fs.leak[b];
                    std::fill(vr_loss.begin(), vr_loss.end(), 0.0);
                    for (int d = 0; d < n_domains; ++d) {
                        const auto &dom =
                            domains[static_cast<std::size_t>(d)];
                        const auto &set = active_sets[
                            static_cast<std::size_t>(d)];
                        if (set.empty())
                            continue;
                        Amperes i_d =
                            pm.domainCurrent(block_power, d);
                        auto op =
                            networks[static_cast<std::size_t>(d)]
                                .evaluate(i_d, static_cast<int>(
                                                   set.size()));
                        for (int l : set)
                            vr_loss[static_cast<std::size_t>(
                                dom.vrs[static_cast<std::size_t>(
                                    l)])] = op.plossTotal /
                                            set.size();
                    }
                    temps = tm.steadyState(
                        tm.powerVector(block_power, vr_loss));
                }
                const Watts *dyn0 = trace->frame(0);
                last_block_power.assign(dyn0, dyn0 + n_blocks);
                tm.blockTempsInto(temps, fs.blockT);
                pm.leakageFrameInto(fs.blockT, fs.leak);
                for (std::size_t b = 0;
                     b < last_block_power.size(); ++b)
                    last_block_power[b] += fs.leak[b];
            }
        }

        // ---- Frames ---------------------------------------------------
        for (std::size_t f = f0; f < f1; ++f) {
            Seconds now = static_cast<double>(f) * dt;
            tm.blockTempsInto(temps, fs.blockT);
            const Watts *dyn = trace->frame(f);
            pm.leakageFrameInto(fs.blockT, fs.leak);
            std::vector<Watts> &block_power = fs.blockPower;
            block_power.resize(n_blocks);
            Watts total_load = 0.0;
            for (std::size_t b = 0; b < block_power.size(); ++b) {
                block_power[b] = dyn[b] + fs.leak[b];
                total_load += block_power[b];
            }
            const std::uint64_t frame_stamp = ++powerStamp;
            last_block_power = block_power;
            power_stats.add(total_load);

            std::fill(vr_loss.begin(), vr_loss.end(), 0.0);
            int active_total = 0;
            Watts ploss_total = 0.0;
            if (!off_chip) {
                for (int d = 0; d < n_domains; ++d) {
                    const auto &dom =
                        domains[static_cast<std::size_t>(d)];
                    const auto &set =
                        active_sets[static_cast<std::size_t>(d)];
                    if (set.empty())
                        continue;  // dark domain (total VR loss)
                    Amperes i_d = pm.domainCurrent(block_power, d);
                    auto op =
                        networks[static_cast<std::size_t>(d)]
                            .evaluate(i_d,
                                      static_cast<int>(set.size()));
                    if (injector && injector->anyVrFault()) {
                        // A derated VR dissipates a multiple of its
                        // nominal share; the physics sees the extra
                        // heat even though the governor does not.
                        for (int l : set) {
                            std::size_t v = static_cast<std::size_t>(
                                dom.vrs[static_cast<std::size_t>(l)]);
                            vr_loss[v] =
                                (op.plossTotal / set.size()) *
                                injector->vrLossMultiplier(
                                    static_cast<int>(v));
                        }
                    } else {
                        for (int l : set)
                            vr_loss[static_cast<std::size_t>(
                                dom.vrs[static_cast<std::size_t>(
                                    l)])] = op.plossTotal / set.size();
                    }
                    ploss_total += op.plossTotal;
                    active_total += static_cast<int>(set.size());
                    eta_weighted += op.eta * i_d;
                    eta_weight += i_d;
                }
            }
            ploss_stats.add(ploss_total);
            active_stats.add(active_total);

            tm.powerVectorInto(block_power, vr_loss, fs.nodalPower);
            tm.advance(temps, fs.nodalPower);

            Celsius tmax = tm.maxDieTemp(temps);
            Celsius grad = tm.gradient(temps);
            if (tmax > res.maxTmax) {
                res.maxTmax = tmax;
                auto hs = tm.hottest(temps);
                if (hs.isVr) {
                    res.hottestSpot =
                        plan.vrs()[static_cast<std::size_t>(hs.vr)]
                            .name;
                } else {
                    auto [cx, cy] = tm.cellCentre(hs.row, hs.col);
                    int b = plan.blockAt(cx, cy);
                    res.hottestSpot =
                        b >= 0 ? plan.blocks()
                                     [static_cast<std::size_t>(b)]
                                         .name
                               : "?";
                }
                if (opts.heatmap) {
                    res.heatmap = tm.dieGrid(temps);
                    res.heatmapW = tm.params().gridW;
                    res.heatmapH = tm.params().gridH;
                    res.heatmapTimeUs = now * 1e6;
                }
            }
            res.maxGradient = std::max(res.maxGradient, grad);

            std::vector<Celsius> &vr_t = fs.vrT;
            vr_t.resize(static_cast<std::size_t>(n_vrs));
            for (int v = 0; v < n_vrs; ++v)
                vr_t[static_cast<std::size_t>(v)] =
                    tm.vrTemp(temps, v);
            sensor_bank.record(now + dt, vr_t);

            // Wear-out accounting (Section 7): loss while active
            // stresses the regulator at a temperature-exponential
            // rate.
            for (int v = 0; v < n_vrs; ++v)
                aging.accumulate(
                    v, vr_t[static_cast<std::size_t>(v)],
                    vr_loss[static_cast<std::size_t>(v)] > 0.0, dt);

            if (opts.timeSeries) {
                res.timeUs.push_back((now + dt) * 1e6);
                res.totalPowerW.push_back(total_load);
                res.activeVrs.push_back(active_total);
            }
            if (opts.trackVr >= 0) {
                auto [td, tl] = vrLocal[static_cast<std::size_t>(
                    opts.trackVr)];
                bool on = false;
                if (!off_chip)
                    for (int l :
                         active_sets[static_cast<std::size_t>(td)])
                        if (l == tl)
                            on = true;
                res.trackedVrTemp.push_back(
                    vr_t[static_cast<std::size_t>(opts.trackVr)]);
                res.trackedVrOn.push_back(on ? 1 : 0);
            }

            // ---- Noise windows scheduled at this frame -------------
            // Each window's load waveform is synthesised HERE, against
            // this frame's block power, but its transient solve is
            // deferred to the end-of-epoch batched drain below (the
            // active set only changes at epoch decisions, so the
            // deferred solves run against the same factorisation the
            // immediate ones did).
            if (!off_chip) {
                std::size_t cycles =
                    static_cast<std::size_t>(cfg.noiseCyclesTotal);
                for (int s :
                     samples_of_epoch[static_cast<std::size_t>(e)]) {
                    if (sample_frame[static_cast<std::size_t>(s)] !=
                        static_cast<int>(f))
                        continue;
                    std::size_t q = noiseQueue.size();
                    noiseQueue.push_back({s, now * 1e6,
                                          epoch_faulted});
                    // Synthesis is concurrent across domains; each
                    // worker touches only its own domain's scratch,
                    // and the RNG stream is a pure function of
                    // (run_seed, epoch, sample, domain).
                    auto build_domain = [&](std::size_t d) {
                        const auto &pdn = *pdns[d];
                        auto &sc = noiseScratch[d];
                        std::size_t win =
                            cycles * static_cast<std::size_t>(
                                         pdn.nodeCount());
                        if (sc.queue.size() < (q + 1) * win)
                            sc.queue.resize((q + 1) * win);
                        buildNoiseWindowInto(
                            static_cast<int>(d), e, s, block_power,
                            domain_didt(static_cast<int>(d)),
                            run_seed, sc, frame_stamp,
                            sc.queue.data() + q * win);
                    };
                    if (noisePool) {
                        exec::parallelForOn(
                            *noisePool,
                            static_cast<std::size_t>(n_domains),
                            [&](int, std::size_t d) {
                                build_domain(d);
                            });
                    } else {
                        for (int d = 0; d < n_domains; ++d)
                            build_domain(static_cast<std::size_t>(d));
                    }
                    // Width cap: coalescing never queues more than
                    // one full lockstep dispatch, bounding the
                    // window buffers at width * windowSize per
                    // domain (the per-epoch path's high-water mark
                    // is the densest epoch instead).
                    if (coalesce &&
                        static_cast<int>(noiseQueue.size()) >= width)
                        drain_all();
                }
            }
        }

        // ---- Per-epoch drain (coalescing off) --------------------------
        // The PR 4 behaviour: every epoch's windows solve and reduce
        // at its end. With coalescing the queue instead rides into
        // the next epoch until a flush rule fires.
        if (!off_chip && !coalesce)
            drain_all();
    }

    // Whatever still rides the queue at the end of the run.
    if (!off_chip)
        drain_all();

    res.avgRegulatorLoss = ploss_stats.mean();
    res.meanPower = power_stats.mean();
    res.avgActiveVrs = active_stats.mean();
    res.avgEta =
        off_chip ? 1.0
                 : (eta_weight > 0.0 ? eta_weighted / eta_weight
                                     : 0.0);
    res.emergencyFrac =
        analysed_cycles > 0
            ? static_cast<double>(emergency_cycles) /
                  static_cast<double>(analysed_cycles)
            : 0.0;

    if (scenario) {
        auto &rs = res.resilience;
        rs.scheduledFaults =
            static_cast<long>(scenario->events().size());
        rs.faultedEpochs = faulted_epochs;
        rs.degradedDecisions = governor.degradedDecisionCount();
        rs.floorEngagements = governor.floorEngagementCount();
        rs.underSuppliedDecisions = governor.underSuppliedCount();
        rs.quarantineEvents = health->quarantineEvents();
        rs.quarantinedEpochs = quarantined_epochs;
        rs.peakQuarantined = peak_quarantined;
        rs.alertsSuppressed = alerts_suppressed;
        rs.alertsInjected = alerts_injected;
        rs.emergencyCyclesFaulted = em_cycles_faulted;
        rs.emergencyCyclesClean = em_cycles_clean;
    }

    res.vrAging = aging.damages();
    res.agingImbalance = aging.imbalance();
    res.vrActivity.resize(static_cast<std::size_t>(n_vrs), 0.0);
    if (!off_chip)
        for (int v = 0; v < n_vrs; ++v) {
            auto [d, l] = vrLocal[static_cast<std::size_t>(v)];
            res.vrActivity[static_cast<std::size_t>(v)] =
                governor.activityRate(d, l);
        }

    if (memo) {
        cache::store().put<RunResult>(
            cache::ArtifactKind::RunResult, memo_key,
            std::make_shared<const RunResult>(res),
            cache::runResultBytes(res));
        cache::DiskTier disk(cacheDirResolved);
        disk.save(cache::ArtifactKind::RunResult, memo_key,
                  cache::encodeRunResult(res),
                  "tg run-result v1 " + label + " policy=" +
                      core::policyName(policy) +
                      " key=" + memo_key.hex());
    }

    return res;
}

} // namespace sim
} // namespace tg
