/**
 * @file
 * Policy x benchmark sweeps shared by the figure benches.
 *
 * Figs. 9, 10 and 11 plot the same 14-benchmark x 8-policy grid of
 * runs; runSweep() executes it once against a shared Simulation and
 * the benches format the metric they report. Helper aggregation and
 * formatting utilities keep bench binaries small.
 */

#ifndef TG_SIM_SWEEP_HH
#define TG_SIM_SWEEP_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/exec.hh"
#include "sim/simulation.hh"

namespace tg {
namespace sim {

/** Results of a benchmark x policy sweep. */
struct SweepResult
{
    std::vector<std::string> benchmarks;      //!< row labels
    std::vector<core::PolicyKind> policies;   //!< column labels
    /** results[b][p] for benchmark b under policy p. */
    std::vector<std::vector<RunResult>> results;

    /** Column average of an extracted metric. */
    double average(core::PolicyKind policy,
                   const std::function<double(const RunResult &)>
                       &metric) const;

    /** Column maximum of an extracted metric. */
    double maximum(core::PolicyKind policy,
                   const std::function<double(const RunResult &)>
                       &metric) const;

    /**
     * The run of (benchmark, policy); fatals when absent, with a
     * policy-specific message when the benchmark row exists but was
     * not swept under that policy.
     */
    const RunResult &at(const std::string &benchmark,
                        core::PolicyKind policy) const;
};

/**
 * Reusable per-worker Simulation contexts of runSweepCells(). A
 * caller that issues many cell batches against the same grid (the
 * shard engine's worker loop) passes one instance across calls so
 * per-context construction (thermal/PDN factorisations, predictor
 * adoption) is paid once, not per batch. Contexts are only valid for
 * the (chip, config) of the Simulation they were built from.
 */
struct SweepContexts
{
    std::vector<std::unique_ptr<Simulation>> sims;
};

/** The progress line runSweep prints for one finished run; shared
 *  with the shard coordinator so multi-process progress output is
 *  indistinguishable from the single-process sweep's. */
std::string progressLine(const RunResult &r);

/**
 * Run an arbitrary subset of the benchmark x policy grid. Cell index
 * `c` addresses benchmark `c / policies.size()` under policy
 * `c % policies.size()` — the canonical grid key every layer of the
 * sweep engine (thread fan-out, shard protocol, merge) shares.
 *
 * emit(cell, result) is called exactly once per requested cell; with
 * more than one job it may be called concurrently from different
 * workers (always for distinct cells), so the callback must be
 * thread-safe. Results are bit-identical at any worker count: each
 * cell is a deterministic function of (chip, config, benchmark,
 * policy, opts) alone.
 *
 * Cancellation: with opts.cancel set, the engine checks the token
 * before every cell (and each run checks per epoch) and aborts by
 * throwing exec::CancelledError. emit() is then called only for the
 * cells that completed before the trip — always whole cells; the
 * exactly-once contract holds for them and the rest are never
 * started.
 *
 * @param reuse optional cross-call context pool (see SweepContexts);
 *              nullptr builds fresh per-worker contexts per call.
 * @param pool  optional long-lived thread pool to fan out on instead
 *              of spawning threads per call (the sweep server keeps
 *              one for its process lifetime). Worker ids — and hence
 *              `reuse` slots — are then the pool's stable worker
 *              indices, so pass a `reuse` sized to the same pool.
 *              Ignored when the resolved job count is 1. Must not be
 *              called from one of `pool`'s own workers.
 */
void runSweepCells(Simulation &simulation,
                   const std::vector<std::string> &benchmarks,
                   const std::vector<core::PolicyKind> &policies,
                   const std::vector<std::size_t> &cells, int jobs,
                   const RecordOptions &opts,
                   const std::function<void(std::size_t cell,
                                            RunResult &&r)> &emit,
                   SweepContexts *reuse = nullptr,
                   exec::ThreadPool *pool = nullptr);

/**
 * Run every (benchmark, policy) combination. Benchmarks default to
 * all 14 SPLASH-2x profiles, policies to the paper's full set.
 *
 * The grid fans out across a worker pool (see common/exec.hh): each
 * worker owns a private Simulation context built from `simulation`'s
 * chip and config, and every (benchmark, policy) cell lands in its
 * pre-assigned slot, so the returned SweepResult is bit-identical at
 * any worker count — `--jobs 8` and `--jobs 1` agree exactly.
 *
 * @param progress when true, prints one line per completed run so
 *                 long sweeps show liveness (completion order under
 *                 parallel execution).
 * @param jobs     worker count; 0 defers to simulation.config().jobs
 *                 and the TG_JOBS / hardware-concurrency ladder of
 *                 exec::resolveJobs().
 * @param opts     RecordOptions applied to every run of the grid
 *                 (e.g. a fault scenario for the resilience sweeps;
 *                 any referenced scenario must outlive the call).
 */
SweepResult
runSweep(Simulation &simulation,
         std::vector<std::string> benchmarks = {},
         std::vector<core::PolicyKind> policies = {},
         bool progress = false, int jobs = 0,
         const RecordOptions &opts = {});

} // namespace sim
} // namespace tg

#endif // TG_SIM_SWEEP_HH
