/**
 * @file
 * Policy x benchmark sweeps shared by the figure benches.
 *
 * Figs. 9, 10 and 11 plot the same 14-benchmark x 8-policy grid of
 * runs; runSweep() executes it once against a shared Simulation and
 * the benches format the metric they report. Helper aggregation and
 * formatting utilities keep bench binaries small.
 */

#ifndef TG_SIM_SWEEP_HH
#define TG_SIM_SWEEP_HH

#include <functional>
#include <string>
#include <vector>

#include "sim/simulation.hh"

namespace tg {
namespace sim {

/** Results of a benchmark x policy sweep. */
struct SweepResult
{
    std::vector<std::string> benchmarks;      //!< row labels
    std::vector<core::PolicyKind> policies;   //!< column labels
    /** results[b][p] for benchmark b under policy p. */
    std::vector<std::vector<RunResult>> results;

    /** Column average of an extracted metric. */
    double average(core::PolicyKind policy,
                   const std::function<double(const RunResult &)>
                       &metric) const;

    /** Column maximum of an extracted metric. */
    double maximum(core::PolicyKind policy,
                   const std::function<double(const RunResult &)>
                       &metric) const;

    /** The run of (benchmark, policy); fatals when absent. */
    const RunResult &at(const std::string &benchmark,
                        core::PolicyKind policy) const;
};

/**
 * Run every (benchmark, policy) combination. Benchmarks default to
 * all 14 SPLASH-2x profiles, policies to the paper's full set.
 *
 * @param progress when true, prints one line per completed run so
 *                 long sweeps show liveness.
 */
SweepResult
runSweep(Simulation &simulation,
         std::vector<std::string> benchmarks = {},
         std::vector<core::PolicyKind> policies = {},
         bool progress = false);

} // namespace sim
} // namespace tg

#endif // TG_SIM_SWEEP_HH
