/**
 * @file
 * Simulation configuration: timing, solver, sampling and sensor
 * parameters with defaults matching the paper's setup (Section 5).
 */

#ifndef TG_SIM_CONFIG_HH
#define TG_SIM_CONFIG_HH

#include <cstdint>
#include <string>

#include "pdn/domain_pdn.hh"
#include "power/model.hh"
#include "sensors/emergency_predictor.hh"
#include "sensors/health.hh"
#include "sensors/thermal_sensor.hh"
#include "thermal/model.hh"

namespace tg {
namespace sim {

/** Which regulator design populates the 96 VR sites. */
enum class RegulatorChoice
{
    Fivr, //!< Intel-FIVR-like buck phases (main evaluation)
    Ldo,  //!< POWER8-like digital LDOs (Section 6.4)
};

/** Top-level simulation knobs. */
struct SimConfig
{
    RegulatorChoice regulator = RegulatorChoice::Fivr;

    /** Gating decision interval [s] (paper: 1 ms). */
    Seconds decisionInterval = 1e-3;

    /**
     * Voltage-noise sampling (paper: 200 windows of 2K cycles with
     * 1K warm-up; the defaults here are scaled down to keep the
     * 112-run figure sweeps fast — tests exercise the full setting).
     */
    int noiseSamples = 32;       //!< windows per run
    int noiseCyclesTotal = 600;  //!< cycles per window
    int noiseWarmupCycles = 200; //!< leading cycles excluded

    /**
     * Lockstep lanes of the batched transient kernel: a domain's
     * noise windows of one epoch advance through the shared
     * factorisation up to this many at a time (1 = scalar window
     * solves; clamped to pdn::DomainPdn::kMaxWindowBatch). Purely a
     * throughput knob — results are bit-identical at every width.
     */
    int noiseBatchWidth = 4;

    /**
     * Coalesce noise windows across consecutive epochs whose gating
     * decision left the active set unchanged, draining only on a
     * set change, an emergency-truth decision boundary, the batch
     * width cap, or the end of the run. AllOn-style policies never
     * change sets, so their windows always fill noiseBatchWidth
     * lanes. Purely a throughput knob: results are bit-identical to
     * the per-epoch drain (`false` restores it exactly).
     */
    bool coalesceNoiseEpochs = true;

    /** Epochs of the theta-profiling pass (Section 6.3). */
    int profilingEpochs = 24;

    /**
     * Demand guardband of the practical policies: PracT/PracVT
     * provision n_on for max(WMA forecast, current demand) plus this
     * margin, the firmware-style guardband that keeps a lagging
     * forecast from under-supplying a rising phase (the efficiency
     * cost stays within the paper's 0.5%-of-peak envelope).
     */
    double practicalDemandMargin = 0.10;

    /**
     * Extra regulators the practical policies keep active beyond the
     * forecast-optimal count. At small n_on one regulator of
     * headroom is what keeps a forecast miss from dragging the
     * remaining actives deep past their peak-efficiency load (whose
     * conversion-loss penalty is exactly the thermal hazard the
     * paper's Section 6.1 warns about).
     */
    int practicalHeadroomVrs = 1;

    /** Master seed; all stochastic streams fork from it. */
    std::uint64_t seed = 0x7469;

    /**
     * Worker threads for sweep/grid execution (runSweep and the
     * drivers built on it). Positive values are used as-is; 0 defers
     * to the TG_JOBS environment variable and then to the hardware
     * thread count (see exec::resolveJobs). Results are bit-identical
     * at every worker count.
     */
    int jobs = 0;

    /**
     * On-disk artifact-cache directory. Empty defers to the
     * TG_CACHE_DIR environment variable; when both are empty the disk
     * tier is off and whole-run memoization (memoizeResults) stays
     * inactive too. Purely a performance knob: cached artifacts are
     * keyed by content fingerprints over every result-bit-relevant
     * input (see cache/fingerprint.hh), so a hit is bit-identical to
     * a recompute.
     */
    std::string cacheDir;

    /**
     * Memoize whole RunResults (in memory and, through cacheDir /
     * TG_CACHE_DIR, on disk) keyed by the full run tuple. Only takes
     * effect when a cache directory is configured — the explicit
     * opt-in keeps timing benches and determinism cross-checks, which
     * re-run identical tuples on purpose, measuring real work. The
     * policy-independent prebuild caches (power trace, predictor
     * fit, PDN base factors) are unaffected by this flag.
     */
    bool memoizeResults = true;

    thermal::ThermalParams thermalParams;
    power::PowerParams powerParams;
    pdn::PdnParams pdnParams;
    sensors::SensorParams sensorParams;
    sensors::PredictorParams predictorParams;
    /** Sensor quarantine heuristics, used only when a run injects a
     *  fault scenario (RecordOptions::faultScenario). */
    sensors::HealthParams healthParams;
};

} // namespace sim
} // namespace tg

#endif // TG_SIM_CONFIG_HH
