/**
 * @file
 * Per-run metrics and optional recorded series for the figure benches.
 */

#ifndef TG_SIM_RESULT_HH
#define TG_SIM_RESULT_HH

#include <string>
#include <vector>

#include "common/units.hh"
#include "core/policy.hh"

namespace tg {

namespace fault {
class FaultScenario;
}

namespace exec {
class CancelToken;
}

namespace sim {

/** What extra data a run should record beyond the scalar metrics. */
struct RecordOptions
{
    /** Record per-frame total power and active-VR count (Fig. 6). */
    bool timeSeries = false;
    /** Track one VR's temperature and state (Fig. 8): chip VR id. */
    int trackVr = -1;
    /** Capture the die heat map at the hottest frame (Fig. 12). */
    bool heatmap = false;
    /** Keep the per-cycle droop trace of the worst sample (Fig. 14). */
    bool noiseTrace = false;
    /** Override SimConfig::noiseSamples; <0 keeps the default and 0
     *  disables noise sampling entirely (thermal-only studies). */
    int noiseSamplesOverride = -1;
    /** Fault schedule to inject (nullptr or empty = clean run; the
     *  clean path is bit-identical to a run without this option).
     *  The scenario must outlive the run. */
    const fault::FaultScenario *faultScenario = nullptr;
    /**
     * Cooperative cancellation: when set, the run polls the token at
     * every decision epoch (and the sweep engine before every cell)
     * and aborts by throwing exec::CancelledError. Execution control
     * only — it never changes a completed run's bytes, so it is
     * excluded from the memoization fingerprint, and a cancelled run
     * publishes no partial artifacts (results are only stored after
     * the final epoch). The token must outlive the run.
     */
    const exec::CancelToken *cancel = nullptr;
};

/** Resilience accounting of a (possibly) fault-injected run. */
struct ResilienceStats
{
    /** Scheduled fault events in the scenario (0 = clean run). */
    long scheduledFaults = 0;
    /** Decision epochs during which at least one fault was active. */
    long faultedEpochs = 0;
    /** Governor decisions taken with a faulted regulator set. */
    long degradedDecisions = 0;
    /** Decisions where the minimum-supply floor raised the target. */
    long floorEngagements = 0;
    /** Decisions where even every surviving VR missed the floor. */
    long underSuppliedDecisions = 0;

    /** Sensor quarantine entries over the run. */
    long quarantineEvents = 0;
    /** Decision epochs with at least one sensor quarantined. */
    long quarantinedEpochs = 0;
    /** Peak simultaneous quarantined sensor count. */
    int peakQuarantined = 0;
    /** Seconds from first sensor-fault onset to first quarantine;
     *  negative when nothing was (or needed to be) detected. */
    Seconds detectionLatency = -1.0;

    /** True emergency alerts suppressed by an AlertMissed fault. */
    long alertsSuppressed = 0;
    /** Spurious alerts raised by an AlertSpurious fault. */
    long alertsInjected = 0;

    /** Emergency cycles split by whether any fault was active during
     *  the epoch they occurred in (thermal/noise cost attribution). */
    long emergencyCyclesFaulted = 0;
    long emergencyCyclesClean = 0;
};

/** Everything one simulated (benchmark, policy) run produces. */
struct RunResult
{
    std::string benchmark;
    core::PolicyKind policy{};

    // --- headline metrics (Figs. 9, 10, 11; Table 2) ---------------
    Celsius maxTmax = 0.0;      //!< temporal max of chip-wide Tmax
    std::string hottestSpot;    //!< where the temporal max occurred
    Celsius maxGradient = 0.0;  //!< temporal max thermal gradient
    double maxNoiseFrac = 0.0;  //!< max droop fraction of Vdd
    double emergencyFrac = 0.0; //!< fraction of cycles in emergency

    // --- efficiency metrics (Figs. 5/7, Section 6.3) ---------------
    Watts avgRegulatorLoss = 0.0; //!< time-avg total VR loss [W]
    double avgEta = 0.0;          //!< P_out-weighted conversion eff.
    double avgActiveVrs = 0.0;    //!< time-avg active VR count
    Watts meanPower = 0.0;        //!< time-avg chip load power [W]
    long overrideCount = 0;       //!< all-on emergency overrides

    // --- optional series --------------------------------------------
    std::vector<double> timeUs;       //!< frame timestamps [us]
    std::vector<double> totalPowerW;  //!< per-frame load power
    std::vector<double> activeVrs;    //!< per-frame active VR count

    std::vector<double> trackedVrTemp; //!< tracked VR T per frame
    std::vector<int> trackedVrOn;      //!< tracked VR state per frame

    std::vector<double> heatmap;  //!< row-major die grid [degC]
    int heatmapW = 0;
    int heatmapH = 0;
    double heatmapTimeUs = 0.0;   //!< when Tmax peaked

    std::vector<double> noiseTrace; //!< per-cycle droop fraction
    int noiseTraceDomain = -1;
    double noiseTraceTimeUs = 0.0;

    /** Per chip-VR activity rate (fraction of time on), Fig. 13. */
    std::vector<double> vrActivity;

    /** Per chip-VR wear-out damage (equivalent stress-seconds at
     *  the aging reference temperature; Section 7 discussion). */
    std::vector<double> vrAging;
    /** Max-over-mean aging damage: 1.0 = perfectly balanced wear. */
    double agingImbalance = 1.0;

    /** Fault-injection / graceful-degradation accounting. All zeros
     *  (and detectionLatency = -1) on a clean run. */
    ResilienceStats resilience;
};

} // namespace sim
} // namespace tg

#endif // TG_SIM_RESULT_HH
