#include "sim/sweep.hh"

#include <cstdio>

#include "common/logging.hh"
#include "workload/profile.hh"

namespace tg {
namespace sim {

double
SweepResult::average(core::PolicyKind policy,
                     const std::function<double(const RunResult &)>
                         &metric) const
{
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t b = 0; b < benchmarks.size(); ++b) {
        for (std::size_t p = 0; p < policies.size(); ++p) {
            if (policies[p] != policy)
                continue;
            sum += metric(results[b][p]);
            ++n;
        }
    }
    TG_ASSERT(n > 0, "policy not part of the sweep");
    return sum / static_cast<double>(n);
}

double
SweepResult::maximum(core::PolicyKind policy,
                     const std::function<double(const RunResult &)>
                         &metric) const
{
    bool seen = false;
    double best = 0.0;
    for (std::size_t b = 0; b < benchmarks.size(); ++b) {
        for (std::size_t p = 0; p < policies.size(); ++p) {
            if (policies[p] != policy)
                continue;
            double v = metric(results[b][p]);
            if (!seen || v > best) {
                best = v;
                seen = true;
            }
        }
    }
    TG_ASSERT(seen, "policy not part of the sweep");
    return best;
}

const RunResult &
SweepResult::at(const std::string &benchmark,
                core::PolicyKind policy) const
{
    for (std::size_t b = 0; b < benchmarks.size(); ++b) {
        if (benchmarks[b] != benchmark)
            continue;
        for (std::size_t p = 0; p < policies.size(); ++p)
            if (policies[p] == policy)
                return results[b][p];
    }
    fatal("no sweep entry for (", benchmark, ", ",
          core::policyName(policy), ")");
}

SweepResult
runSweep(Simulation &simulation, std::vector<std::string> benchmarks,
         std::vector<core::PolicyKind> policies, bool progress)
{
    if (benchmarks.empty())
        for (const auto &p : workload::splashProfiles())
            benchmarks.push_back(p.name);
    if (policies.empty())
        policies = core::allPolicyKinds();

    SweepResult sweep;
    sweep.benchmarks = benchmarks;
    sweep.policies = policies;
    sweep.results.resize(benchmarks.size());

    for (std::size_t b = 0; b < benchmarks.size(); ++b) {
        const auto &profile = workload::profileByName(benchmarks[b]);
        for (auto kind : policies) {
            sweep.results[b].push_back(simulation.run(profile, kind));
            if (progress) {
                const auto &r = sweep.results[b].back();
                std::fprintf(stderr,
                             "  [%s / %s] Tmax=%.1f grad=%.1f "
                             "noise=%.1f%%\n",
                             benchmarks[b].c_str(),
                             core::policyName(kind), r.maxTmax,
                             r.maxGradient, r.maxNoiseFrac * 100.0);
            }
        }
    }
    return sweep;
}

} // namespace sim
} // namespace tg
