#include "sim/sweep.hh"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <sstream>

#include "common/exec.hh"
#include "common/logging.hh"
#include "workload/profile.hh"

namespace tg {
namespace sim {

double
SweepResult::average(core::PolicyKind policy,
                     const std::function<double(const RunResult &)>
                         &metric) const
{
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t b = 0; b < benchmarks.size(); ++b) {
        for (std::size_t p = 0; p < policies.size(); ++p) {
            if (policies[p] != policy)
                continue;
            sum += metric(results[b][p]);
            ++n;
        }
    }
    TG_ASSERT(n > 0, "policy not part of the sweep");
    return sum / static_cast<double>(n);
}

double
SweepResult::maximum(core::PolicyKind policy,
                     const std::function<double(const RunResult &)>
                         &metric) const
{
    bool seen = false;
    double best = 0.0;
    for (std::size_t b = 0; b < benchmarks.size(); ++b) {
        for (std::size_t p = 0; p < policies.size(); ++p) {
            if (policies[p] != policy)
                continue;
            double v = metric(results[b][p]);
            if (!seen || v > best) {
                best = v;
                seen = true;
            }
        }
    }
    TG_ASSERT(seen, "policy not part of the sweep");
    return best;
}

const RunResult &
SweepResult::at(const std::string &benchmark,
                core::PolicyKind policy) const
{
    for (std::size_t b = 0; b < benchmarks.size(); ++b) {
        if (benchmarks[b] != benchmark)
            continue;
        // The benchmark row is found: resolve the policy within it
        // and report a policy-specific failure when it is absent,
        // instead of falling through to scan the remaining rows (a
        // duplicate row later in the sweep would otherwise shadow
        // the miss).
        for (std::size_t p = 0; p < policies.size(); ++p)
            if (policies[p] == policy)
                return results[b][p];
        fatal("policy ", core::policyName(policy),
              " not part of the sweep for benchmark ", benchmark);
    }
    fatal("no sweep entry for benchmark ", benchmark);
}

std::string
progressLine(const RunResult &r)
{
    std::ostringstream line;
    char buf[96];
    std::snprintf(buf, sizeof buf, "Tmax=%.1f grad=%.1f noise=%.1f%%",
                  r.maxTmax, r.maxGradient, r.maxNoiseFrac * 100.0);
    line << "[" << r.benchmark << " / " << core::policyName(r.policy)
         << "] " << buf;
    return line.str();
}

void
runSweepCells(Simulation &simulation,
              const std::vector<std::string> &benchmarks,
              const std::vector<core::PolicyKind> &policies,
              const std::vector<std::size_t> &cells, int jobs,
              const RecordOptions &opts,
              const std::function<void(std::size_t cell,
                                       RunResult &&r)> &emit,
              SweepContexts *reuse, exec::ThreadPool *thread_pool)
{
    const std::size_t n_tasks = cells.size();
    std::size_t want = static_cast<std::size_t>(exec::resolveJobs(
        jobs > 0 ? jobs : simulation.config().jobs));
    const int n_jobs =
        static_cast<int>(std::min(std::max<std::size_t>(n_tasks, 1),
                                  want));

    // Thermally-aware policies need the fitted theta predictor.
    // Calibrate it once on the caller's context and hand the fit to
    // every worker below, instead of paying the profiling pass once
    // per worker (the pass is deterministic in the config, so this
    // does not change any result). Only policies actually present in
    // the requested cells count.
    const bool want_predictor = std::any_of(
        cells.begin(), cells.end(), [&](std::size_t c) {
            return core::isThermallyAware(
                policies[c % policies.size()]);
        });
    if (want_predictor)
        simulation.thermalPredictor();

    // Resolve every benchmark name once up front: profileByName is a
    // linear scan, and the task lambda would otherwise repeat it for
    // all |policies| cells of a row (and re-validate names mid-sweep
    // instead of failing before any work is queued). Profiles are
    // stable storage (splashProfiles' static vector), so the pointers
    // stay valid across the whole fan-out.
    std::vector<const workload::BenchmarkProfile *> row_profiles;
    row_profiles.reserve(benchmarks.size());
    for (const auto &name : benchmarks)
        row_profiles.push_back(&workload::profileByName(name));

    for (std::size_t c : cells)
        TG_ASSERT(c < benchmarks.size() * policies.size(),
                  "sweep cell index out of range");

    auto run_one = [&](Simulation &ctx, std::size_t task) {
        // Cancellation point: once per cell, before any work. Each
        // in-flight cell also checks per epoch (via opts.cancel), so
        // a cancel lands within one epoch on every worker; the first
        // CancelledError aborts the fan-out and is rethrown to the
        // caller. Cells already emitted are complete — a cancelled
        // sweep streams whole cells or nothing, never a torn one.
        if (opts.cancel)
            opts.cancel->throwIfCancelled();
        const std::size_t cell = cells[task];
        std::size_t b = cell / policies.size();
        std::size_t p = cell % policies.size();
        RunResult r = ctx.run(*row_profiles[b], policies[p], opts);
        emit(cell, std::move(r));
    };

    if (n_jobs <= 1) {
        for (std::size_t task = 0; task < n_tasks; ++task)
            run_one(simulation, task);
        return;
    }

    // One Simulation per worker: run() is deterministic in (chip,
    // config, profile, policy) but mutates per-instance solver state
    // (PDN active-set factorisations, lazy predictor), so concurrent
    // runs must not share an instance. Each worker builds its own
    // context lazily on its first task — construction (thermal and
    // PDN factorisations) then overlaps across workers. Results land
    // in pre-assigned (benchmark, policy) slots, so the grid comes
    // back in the same order as the serial path, bit-identical at
    // any worker count. A caller-owned SweepContexts keeps the
    // contexts (and their solver caches) alive across batches.
    SweepContexts local;
    SweepContexts &pool = reuse ? *reuse : local;
    // On an external pool, worker ids span its full thread count (the
    // pool's stable workerIndex), so the context array must cover it
    // even when this call uses fewer jobs than the pool has threads.
    const std::size_t slots = thread_pool
        ? static_cast<std::size_t>(thread_pool->threadCount())
        : static_cast<std::size_t>(n_jobs);
    if (pool.sims.size() < slots)
        pool.sims.resize(slots);
    auto body = [&](int worker, std::size_t task) {
        auto &ctx = pool.sims[static_cast<std::size_t>(worker)];
        if (!ctx) {
            ctx = std::make_unique<Simulation>(simulation.chip(),
                                               simulation.config());
            if (want_predictor)
                ctx->adoptPredictor(simulation.thermalPredictor(),
                                    simulation.predictorRSquared());
        } else if (want_predictor && !ctx->hasPredictor()) {
            ctx->adoptPredictor(simulation.thermalPredictor(),
                                simulation.predictorRSquared());
        }
        run_one(*ctx, task);
    };
    if (thread_pool)
        exec::parallelForOn(*thread_pool, n_tasks, body);
    else
        exec::parallelFor(n_tasks, n_jobs, body);
}

SweepResult
runSweep(Simulation &simulation, std::vector<std::string> benchmarks,
         std::vector<core::PolicyKind> policies, bool progress,
         int jobs, const RecordOptions &opts)
{
    if (benchmarks.empty())
        for (const auto &p : workload::splashProfiles())
            benchmarks.push_back(p.name);
    if (policies.empty())
        policies = core::allPolicyKinds();

    SweepResult sweep;
    sweep.benchmarks = benchmarks;
    sweep.policies = policies;
    sweep.results.assign(benchmarks.size(),
                         std::vector<RunResult>(policies.size()));

    const std::size_t n_tasks = benchmarks.size() * policies.size();
    std::vector<std::size_t> cells(n_tasks);
    for (std::size_t c = 0; c < n_tasks; ++c)
        cells[c] = c;

    exec::ProgressSink sink(progress, n_tasks);
    runSweepCells(
        simulation, benchmarks, policies, cells, jobs, opts,
        [&](std::size_t cell, RunResult &&r) {
            std::string line = progressLine(r);
            sweep.results[cell / policies.size()]
                         [cell % policies.size()] = std::move(r);
            sink.completed(line);
        });
    return sweep;
}

} // namespace sim
} // namespace tg
