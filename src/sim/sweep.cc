#include "sim/sweep.hh"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <sstream>

#include "common/exec.hh"
#include "common/logging.hh"
#include "workload/profile.hh"

namespace tg {
namespace sim {

double
SweepResult::average(core::PolicyKind policy,
                     const std::function<double(const RunResult &)>
                         &metric) const
{
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t b = 0; b < benchmarks.size(); ++b) {
        for (std::size_t p = 0; p < policies.size(); ++p) {
            if (policies[p] != policy)
                continue;
            sum += metric(results[b][p]);
            ++n;
        }
    }
    TG_ASSERT(n > 0, "policy not part of the sweep");
    return sum / static_cast<double>(n);
}

double
SweepResult::maximum(core::PolicyKind policy,
                     const std::function<double(const RunResult &)>
                         &metric) const
{
    bool seen = false;
    double best = 0.0;
    for (std::size_t b = 0; b < benchmarks.size(); ++b) {
        for (std::size_t p = 0; p < policies.size(); ++p) {
            if (policies[p] != policy)
                continue;
            double v = metric(results[b][p]);
            if (!seen || v > best) {
                best = v;
                seen = true;
            }
        }
    }
    TG_ASSERT(seen, "policy not part of the sweep");
    return best;
}

const RunResult &
SweepResult::at(const std::string &benchmark,
                core::PolicyKind policy) const
{
    for (std::size_t b = 0; b < benchmarks.size(); ++b) {
        if (benchmarks[b] != benchmark)
            continue;
        // The benchmark row is found: resolve the policy within it
        // and report a policy-specific failure when it is absent,
        // instead of falling through to scan the remaining rows (a
        // duplicate row later in the sweep would otherwise shadow
        // the miss).
        for (std::size_t p = 0; p < policies.size(); ++p)
            if (policies[p] == policy)
                return results[b][p];
        fatal("policy ", core::policyName(policy),
              " not part of the sweep for benchmark ", benchmark);
    }
    fatal("no sweep entry for benchmark ", benchmark);
}

SweepResult
runSweep(Simulation &simulation, std::vector<std::string> benchmarks,
         std::vector<core::PolicyKind> policies, bool progress,
         int jobs, const RecordOptions &opts)
{
    if (benchmarks.empty())
        for (const auto &p : workload::splashProfiles())
            benchmarks.push_back(p.name);
    if (policies.empty())
        policies = core::allPolicyKinds();

    SweepResult sweep;
    sweep.benchmarks = benchmarks;
    sweep.policies = policies;
    sweep.results.assign(benchmarks.size(),
                         std::vector<RunResult>(policies.size()));

    const std::size_t n_tasks = benchmarks.size() * policies.size();
    std::size_t want = static_cast<std::size_t>(exec::resolveJobs(
        jobs > 0 ? jobs : simulation.config().jobs));
    const int n_jobs = static_cast<int>(std::min(want, n_tasks));

    // Thermally-aware policies need the fitted theta predictor.
    // Calibrate it once on the caller's context and hand the fit to
    // every worker below, instead of paying the profiling pass once
    // per worker (the pass is deterministic in the config, so this
    // does not change any result).
    const bool want_predictor =
        std::any_of(policies.begin(), policies.end(),
                    core::isThermallyAware);
    if (want_predictor)
        simulation.thermalPredictor();

    // Resolve every benchmark name once up front: profileByName is a
    // linear scan, and the task lambda would otherwise repeat it for
    // all |policies| cells of a row (and re-validate names mid-sweep
    // instead of failing before any work is queued). Profiles are
    // stable storage (splashProfiles' static vector), so the pointers
    // stay valid across the whole fan-out.
    std::vector<const workload::BenchmarkProfile *> row_profiles;
    row_profiles.reserve(benchmarks.size());
    for (const auto &name : benchmarks)
        row_profiles.push_back(&workload::profileByName(name));

    exec::ProgressSink sink(progress, n_tasks);
    auto run_one = [&](Simulation &ctx, std::size_t task) {
        std::size_t b = task / policies.size();
        std::size_t p = task % policies.size();
        const auto &profile = *row_profiles[b];
        RunResult r = ctx.run(profile, policies[p], opts);
        std::ostringstream line;
        char buf[96];
        std::snprintf(buf, sizeof buf,
                      "Tmax=%.1f grad=%.1f noise=%.1f%%", r.maxTmax,
                      r.maxGradient, r.maxNoiseFrac * 100.0);
        line << "[" << benchmarks[b] << " / "
             << core::policyName(policies[p]) << "] " << buf;
        sweep.results[b][p] = std::move(r);
        sink.completed(line.str());
    };

    if (n_jobs <= 1) {
        for (std::size_t task = 0; task < n_tasks; ++task)
            run_one(simulation, task);
        return sweep;
    }

    // One Simulation per worker: run() is deterministic in (chip,
    // config, profile, policy) but mutates per-instance solver state
    // (PDN active-set factorisations, lazy predictor), so concurrent
    // runs must not share an instance. Each worker builds its own
    // context lazily on its first task — construction (thermal and
    // PDN factorisations) then overlaps across workers. Results land
    // in pre-assigned (benchmark, policy) slots, so the grid comes
    // back in the same order as the serial path, bit-identical at
    // any worker count.
    std::vector<std::unique_ptr<Simulation>> contexts(
        static_cast<std::size_t>(n_jobs));
    exec::parallelFor(n_tasks, n_jobs,
                      [&](int worker, std::size_t task) {
        auto &ctx = contexts[static_cast<std::size_t>(worker)];
        if (!ctx) {
            ctx = std::make_unique<Simulation>(simulation.chip(),
                                               simulation.config());
            if (want_predictor)
                ctx->adoptPredictor(simulation.thermalPredictor(),
                                    simulation.predictorRSquared());
        }
        run_one(*ctx, task);
    });
    return sweep;
}

} // namespace sim
} // namespace tg
