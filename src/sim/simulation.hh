/**
 * @file
 * End-to-end ThermoGater simulation (paper Section 5's toolchain,
 * rebuilt): workload demand -> microarchitectural activity -> power
 * -> (governor + regulator network + thermal RC loop with leakage
 * feedback) -> sampled PDN voltage-noise analysis.
 *
 * A Simulation owns the heavyweight per-chip state (thermal model
 * factorisations, PDNs, regulator networks, fitted thermal
 * predictor) and can run many (benchmark, policy) combinations
 * against it; the figure sweeps reuse one instance.
 */

#ifndef TG_SIM_SIMULATION_HH
#define TG_SIM_SIMULATION_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/fingerprint.hh"
#include "common/exec.hh"
#include "core/governor.hh"
#include "core/thermal_predictor.hh"
#include "floorplan/power8.hh"
#include "pdn/domain_pdn.hh"
#include "power/model.hh"
#include "power/trace.hh"
#include "sim/config.hh"
#include "sim/result.hh"
#include "thermal/model.hh"
#include "vreg/network.hh"
#include "workload/profile.hh"

namespace tg {
namespace sim {

/**
 * Reusable simulation context for one chip + configuration.
 *
 * Threading: run()/runMixed() are deterministic functions of (chip,
 * config, profiles, policy, opts) — results never depend on what ran
 * before on the same instance — but they mutate instance state (the
 * per-domain PDN active-set factorisations and the lazily-fitted
 * thermal predictor), so concurrent runs must use one Simulation per
 * thread. sim::runSweep() arranges exactly that.
 */
class Simulation
{
  public:
    Simulation(const floorplan::Chip &chip, SimConfig cfg = {});

    /** Simulate one benchmark under one policy. */
    RunResult run(const workload::BenchmarkProfile &profile,
                  core::PolicyKind policy, RecordOptions opts = {});

    /**
     * Multi-programmed run: one benchmark per core (paper Section 7
     * — per-domain governance accommodates heterogeneous and
     * multi-programmed workloads). The co-run lasts as long as the
     * shortest program's ROI.
     *
     * @param label name recorded in the result
     */
    RunResult
    runMixed(const std::vector<const workload::BenchmarkProfile *>
                 &per_core,
             const std::string &label, core::PolicyKind policy,
             RecordOptions opts = {});

    /**
     * The fitted deltaT = theta * deltaP predictor (Eqn. 2);
     * triggers the profiling pass on first use.
     */
    const core::ThermalPredictor &thermalPredictor();

    /** R^2 (Eqn. 3) of the fitted predictor over profiling data. */
    double predictorRSquared();

    /**
     * Adopt an already-fitted predictor (from a sibling context with
     * the same chip and config) instead of re-running the profiling
     * pass. The fit is copied, so the source can be discarded; the
     * parallel sweep uses this to calibrate once and share the
     * result with every worker context.
     */
    void adoptPredictor(const core::ThermalPredictor &fitted,
                        double r_squared);

    /** Whether a fitted predictor exists (profiled or adopted). */
    bool hasPredictor() const { return predictor != nullptr; }

    const floorplan::Chip &chip() const { return chipRef; }
    const SimConfig &config() const { return cfg; }
    const thermal::ThermalModel &thermalModel() const { return tm; }
    const power::PowerModel &powerModel() const { return pm; }
    const vreg::VrDesign &design() const { return vrDesign; }
    const vreg::RegulatorNetwork &network(int domain) const;
    const pdn::DomainPdn &domainPdn(int domain) const;

  private:
    const floorplan::Chip &chipRef;
    SimConfig cfg;
    vreg::VrDesign vrDesign;
    thermal::ThermalModel tm;
    power::PowerModel pm;
    std::vector<vreg::RegulatorNetwork> networks;  //!< per domain
    std::vector<std::unique_ptr<pdn::DomainPdn>> pdns;

    std::unique_ptr<core::ThermalPredictor> predictor;
    double predictorR2 = 0.0;

    /** chip VR index -> (domain, local index). */
    std::vector<std::pair<int, int>> vrLocal;

    /**
     * Content fingerprints of the immutable per-instance inputs,
     * computed once in the constructor: every cache key below is a
     * cheap combination of these with per-run inputs.
     */
    cache::Fingerprint chipFp;
    cache::Fingerprint cfgFp;

    /** cfg.cacheDir, else $TG_CACHE_DIR, else "" (disk tier off). */
    std::string cacheDirResolved;

    /** Whether whole-RunResult memoization applies (see SimConfig). */
    bool memoActive() const;

    /** Full-tuple key of one runMixed invocation. */
    cache::Fingerprint
    runKey(const std::vector<const workload::BenchmarkProfile *>
               &per_core,
           const std::string &label, core::PolicyKind policy,
           const RecordOptions &opts) const;

    void calibrateThetas();

    /**
     * Per-domain reusable buffers of the noise sampler. The
     * logic/memory base-current split depends only on the block-power
     * vector, so it is cached and keyed by `powerStamp`: repeated
     * windows against the same power (the emergency ground-truth loop,
     * multiple samples in one frame) skip the recompute. One scratch
     * per domain also makes the per-sample fan-out across domains
     * race-free without locks.
     *
     * `queue` holds built-but-unsolved windows back-to-back (window q
     * at offset q * cycles * nodeCount): each window is synthesised
     * at its scheduled frame, against that frame's block power, and
     * drains through the PDN's lockstep transientWindowBatch() later.
     * With cfg.coalesceNoiseEpochs the queue rides across epochs
     * whose decision left the domain's active set unchanged, so
     * rarely-gating policies fill maximally wide lanes; `solved`
     * counts the leading windows already solved by an early
     * per-domain flush (a setActive() with pending windows solves
     * them under the outgoing factorisation first). `results`
     * receives one NoiseResult per queued window and survives until
     * the global reduction.
     */
    struct NoiseScratch
    {
        std::uint64_t stamp = 0;          //!< powerStamp of the split
        std::vector<Watts> pLogic;        //!< domain logic power
        std::vector<Watts> pMem;          //!< domain memory power
        std::vector<Amperes> baseLogic;   //!< node currents, logic
        std::vector<Amperes> baseMem;     //!< node currents, memory
        std::vector<double> mult;         //!< cycle multipliers
        std::vector<Amperes> queue;       //!< queued window buffers
        std::vector<pdn::DomainPdn::WindowSpec> specs; //!< batch views
        std::vector<pdn::NoiseResult> results; //!< per-window results
        std::size_t solved = 0; //!< windows already solved (flushes)
    };

    /** One queued noise sample (possibly from an earlier epoch). */
    struct QueuedNoiseSample
    {
        int sample = 0;     //!< global sample index
        double timeUs = 0.0; //!< scheduled frame time [us] (traces)
        bool faulted = false; //!< scheduling epoch had active faults
    };

    /**
     * Reusable buffers of the per-epoch/per-frame kernel, so the
     * steady-state run loop performs no heap allocation: every vector
     * reaches its final size during the first epoch and is refilled
     * in place afterwards.
     */
    struct FrameScratch
    {
        std::vector<Celsius> blockT;    //!< per-block temperatures
        std::vector<Watts> leak;        //!< per-block leakage
        std::vector<Watts> blockPower;  //!< dynamic + leakage
        std::vector<Watts> meanPower;   //!< epoch provisioning power
        std::vector<Celsius> vrT;       //!< true per-VR temperatures
        std::vector<Celsius> vrSensor;  //!< sensed per-VR temperatures
        std::vector<Watts> nodalPower;  //!< thermal-grid power vector
        std::vector<double> thetas;     //!< per-local-VR theta slice
        core::DomainState st;           //!< reused decision inputs
    };

    FrameScratch fs;
    std::vector<NoiseScratch> noiseScratch;   //!< one per domain
    std::vector<QueuedNoiseSample> noiseQueue; //!< epoch batch queue
    std::uint64_t powerStamp = 0;  //!< bumped per power recompute

    /**
     * Pool for the per-sample noise fan-out across domains; created
     * lazily on first use, only on threads that are not already pool
     * workers (sweep workers stay serial instead of oversubscribing).
     */
    std::unique_ptr<exec::ThreadPool> noisePool;

    /** cfg.noiseBatchWidth clamped to [1, kMaxWindowBatch]. */
    int noiseBatchWidth() const;

    /**
     * Synthesise the load waveform of noise window (epoch, sample)
     * for `domain` into `dst` (noiseCyclesTotal x nodeCount rows).
     * The waveform is seeded independently of the policy so all
     * policies see the same workload; `power_stamp` identifies the
     * content of `block_power` for the scratch's base-current cache.
     */
    void buildNoiseWindowInto(int domain, long epoch, int sample,
                              const std::vector<Watts> &block_power,
                              double didt, std::uint64_t run_seed,
                              NoiseScratch &scratch,
                              std::uint64_t power_stamp,
                              Amperes *dst) const;

    /**
     * Ground truth for the emergency-override path: would `domain`'s
     * current active set suffer a voltage emergency in any of the
     * epoch's scheduled sample windows? Windows advance through
     * transientWindowBatch() noiseBatchWidth() at a time with an
     * early exit between chunks — the OR over windows is what the
     * per-window early-exit loop computed, bit-identically.
     */
    bool epochEmergencyTruth(int domain, long epoch,
                             const std::vector<int> &samples,
                             const std::vector<Watts> &block_power,
                             double didt, std::uint64_t run_seed,
                             NoiseScratch &scratch,
                             std::uint64_t power_stamp) const;
};

} // namespace sim
} // namespace tg

#endif // TG_SIM_SIMULATION_HH
