/**
 * @file
 * Per-core utilisation demand traces.
 *
 * A DemandTrace is the time-varying core-utilisation signal of one
 * benchmark's region of interest, sampled at a fixed frame interval.
 * SPLASH-2x kernels are barrier-synchronised, so cores swing through
 * compute/communicate phases largely together with small per-core
 * offsets and a static imbalance; a slow periodic phase component
 * plus fast AR(1) jitter reproduces the power-demand evolution the
 * paper shows in Fig. 6.
 */

#ifndef TG_WORKLOAD_DEMAND_HH
#define TG_WORKLOAD_DEMAND_HH

#include <cstdint>
#include <vector>

#include "common/units.hh"
#include "workload/profile.hh"

namespace tg {
namespace workload {

/** Utilisation of every core during one frame. */
struct DemandFrame
{
    /** Per-core utilisation in [0, 1]. */
    std::vector<double> coreUtil;
};

/** A fixed-interval sequence of demand frames. */
struct DemandTrace
{
    Seconds dt = 10e-6;               //!< frame interval [s]
    std::vector<DemandFrame> frames;  //!< ROI frames in time order

    /** ROI duration [s]. */
    Seconds duration() const { return dt * frames.size(); }

    /** Mean utilisation across all cores and frames. */
    double meanUtilization() const;
};

/**
 * Synthesise the demand trace of `profile` for an `n_cores`-thread
 * run. Deterministic for a given (profile, n_cores, seed) triple.
 *
 * @param frame_dt frame interval [s]; the default 10 us matches the
 *                 thermal solver step
 */
DemandTrace generateDemandTrace(const BenchmarkProfile &profile,
                                int n_cores, std::uint64_t seed,
                                Seconds frame_dt = 10e-6);

/**
 * Multi-programmed demand: every core runs its own benchmark (paper
 * Section 7 notes ThermoGater accommodates workload heterogeneity
 * including multi-programming, because each Vdd-domain is governed
 * independently). The co-run region lasts as long as the shortest
 * ROI among the programs.
 *
 * @param per_core one profile per core (non-null)
 */
DemandTrace
generateMixedDemandTrace(const std::vector<const BenchmarkProfile *>
                             &per_core,
                         std::uint64_t seed, Seconds frame_dt = 10e-6);

} // namespace workload
} // namespace tg

#endif // TG_WORKLOAD_DEMAND_HH
