/**
 * @file
 * Synthetic workload profiles for the 14 SPLASH-2x benchmarks the
 * paper evaluates (Section 5).
 *
 * The paper's policies never observe instructions; they observe the
 * spatio-temporal power-demand signal each benchmark's region of
 * interest produces. Each profile therefore captures the benchmark
 * characteristics that shape that signal: mean core utilisation
 * (which sets total power and hence the P_loss savings headroom of
 * Fig. 7), phase structure and variability (Fig. 6), the logic vs.
 * memory balance (which drives where heat and voltage noise appear),
 * and the high-frequency activity fluctuation that excites Ldi/dt
 * noise (Table 2 / Fig. 11). Values are calibrated so the benches
 * reproduce the paper's per-benchmark shapes.
 */

#ifndef TG_WORKLOAD_PROFILE_HH
#define TG_WORKLOAD_PROFILE_HH

#include <string>
#include <vector>

#include "common/units.hh"

namespace tg {
namespace workload {

/** Dynamic instruction mix of a benchmark (fractions sum to 1). */
struct InstructionMix
{
    double fracInt = 0.35;    //!< integer ALU ops
    double fracFp = 0.20;     //!< floating-point ops
    double fracLoad = 0.22;   //!< loads
    double fracStore = 0.10;  //!< stores
    double fracBranch = 0.13; //!< branches
};

/** Cache miss behaviour (misses per access at each level). */
struct MissRates
{
    double l1 = 0.03;  //!< L1-D miss ratio
    double l2 = 0.30;  //!< L2 miss ratio (of L1 misses)
    double l3 = 0.20;  //!< L3 miss ratio (of L2 misses)
};

/** Everything the generator needs to synthesise one benchmark. */
struct BenchmarkProfile
{
    std::string name;        //!< short name used in the figures
    std::string fullName;    //!< SPLASH-2x program name

    /** Mean per-core utilisation of the ROI in [0, 1]. */
    double meanUtilization = 0.6;
    /** Relative amplitude of the periodic phase swing in [0, 1). */
    double phaseAmplitude = 0.2;
    /** Period of the dominant compute/communicate phase cycle [us]. */
    double phasePeriodUs = 400.0;
    /** Std-dev of the fast AR(1) utilisation jitter. */
    double jitterSigma = 0.05;
    /** Cross-core imbalance in [0, 1): per-core mean spread. */
    double imbalance = 0.1;
    /** Memory intensity in [0, 1]: share of activity in caches/L3. */
    double memoryIntensity = 0.35;
    /**
     * High-frequency current-fluctuation intensity in [0, 1]. Scales
     * the step/burst events that excite Ldi/dt voltage noise; the
     * benchmarks with non-zero voltage-emergency residency in the
     * paper's Table 2 (barnes, fft, oc_cp, ...) sit at the top.
     */
    double didtActivity = 0.4;
    /** Region-of-interest duration [us]. */
    double roiDurationUs = 3000.0;

    InstructionMix mix;
    MissRates misses;
};

/** All 14 SPLASH-2x profiles, in the paper's figure order. */
const std::vector<BenchmarkProfile> &splashProfiles();

/** Look up a profile by short name; fatals when absent. */
const BenchmarkProfile &profileByName(const std::string &name);

} // namespace workload
} // namespace tg

#endif // TG_WORKLOAD_PROFILE_HH
