#include "workload/demand.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"

namespace tg {
namespace workload {

double
DemandTrace::meanUtilization() const
{
    if (frames.empty())
        return 0.0;
    double sum = 0.0;
    std::size_t n = 0;
    for (const auto &f : frames) {
        for (double u : f.coreUtil) {
            sum += u;
            ++n;
        }
    }
    return n ? sum / static_cast<double>(n) : 0.0;
}

DemandTrace
generateMixedDemandTrace(
    const std::vector<const BenchmarkProfile *> &per_core,
    std::uint64_t seed, Seconds frame_dt)
{
    int n_cores = static_cast<int>(per_core.size());
    TG_ASSERT(n_cores >= 1, "need at least one core");
    TG_ASSERT(frame_dt > 0.0, "frame interval must be positive");
    for (const auto *p : per_core)
        TG_ASSERT(p != nullptr, "null profile in mixed demand");

    Rng rng(seed);
    const double two_pi = 6.283185307179586;

    // Static per-core properties: mean offset (imbalance) and phase
    // offset (barrier skew, a small fraction of the phase period),
    // each drawn from the core's own program characteristics.
    std::vector<double> core_mean(n_cores);
    std::vector<double> core_phi(n_cores);
    double roi_us = per_core[0]->roiDurationUs;
    for (int c = 0; c < n_cores; ++c) {
        const auto &p = *per_core[static_cast<std::size_t>(c)];
        double skew = rng.uniform(-1.0, 1.0) * p.imbalance;
        core_mean[c] = p.meanUtilization * (1.0 + skew);
        core_phi[c] = rng.uniform(-0.1, 0.1) * two_pi;
        roi_us = std::min(roi_us, p.roiDurationUs);
    }

    std::size_t n_frames = static_cast<std::size_t>(
        std::ceil(roi_us * 1e-6 / frame_dt));
    TG_ASSERT(n_frames >= 2, "ROI shorter than two frames");

    // AR(1) jitter per core: x' = rho x + sqrt(1-rho^2) sigma eps.
    const double rho = 0.9;
    std::vector<double> jitter(n_cores, 0.0);

    DemandTrace trace;
    trace.dt = frame_dt;
    trace.frames.resize(n_frames);

    for (std::size_t f = 0; f < n_frames; ++f) {
        double t = f * frame_dt;
        DemandFrame &frame = trace.frames[f];
        frame.coreUtil.resize(n_cores);
        for (int c = 0; c < n_cores; ++c) {
            const auto &p = *per_core[static_cast<std::size_t>(c)];
            double period_s = p.phasePeriodUs * 1e-6;
            double phase =
                std::sin(two_pi * t / period_s + core_phi[c]);
            jitter[c] = rho * jitter[c] +
                        std::sqrt(1.0 - rho * rho) *
                            rng.gaussian(0.0, p.jitterSigma);
            double u =
                core_mean[c] * (1.0 + p.phaseAmplitude * phase) +
                jitter[c];
            frame.coreUtil[c] = std::clamp(u, 0.02, 1.0);
        }
    }
    return trace;
}

DemandTrace
generateDemandTrace(const BenchmarkProfile &profile, int n_cores,
                    std::uint64_t seed, Seconds frame_dt)
{
    std::vector<const BenchmarkProfile *> per_core(
        static_cast<std::size_t>(n_cores), &profile);
    return generateMixedDemandTrace(per_core, seed, frame_dt);
}

} // namespace workload
} // namespace tg
