/**
 * @file
 * Cycle-resolution load-current synthesis for voltage-noise sampling.
 *
 * VoltSpot-style transient noise analysis needs cycle-accurate current
 * waveforms (paper Section 5). Generating them for whole executions is
 * far too expensive, so — following the paper's sampling methodology —
 * short windows are synthesised on demand around a frame's mean
 * current: a fast AR(1) ripple plus two-state burst/stall switching
 * whose intensity scales with the benchmark's di/dt activity. The
 * step edges of the burst process are what ring the package/grid RLC
 * and produce the droops of Figs. 11/14.
 */

#ifndef TG_WORKLOAD_CYCLES_HH
#define TG_WORKLOAD_CYCLES_HH

#include <cstddef>
#include <vector>

#include "common/rng.hh"

namespace tg {
namespace workload {

/**
 * Synthesise a per-cycle current-multiplier window.
 *
 * The returned vector has `n_cycles` entries with mean approximately
 * 1.0; multiply by a block's mean current to obtain its waveform.
 *
 * @param didt workload di/dt intensity in [0, 1]
 * @param rng  deterministic random source (forked per window)
 */
std::vector<double> synthesizeCycleMultipliers(double didt,
                                               std::size_t n_cycles,
                                               Rng &rng);

/**
 * synthesizeCycleMultipliers() into a caller-owned (resized) buffer:
 * the noise-window sampler reuses one buffer per domain instead of
 * allocating a window-sized vector per sample. Draws the identical
 * random stream as the allocating form.
 */
void synthesizeCycleMultipliersInto(double didt, std::size_t n_cycles,
                                    Rng &rng, std::vector<double> &out);

} // namespace workload
} // namespace tg

#endif // TG_WORKLOAD_CYCLES_HH
