#include "workload/profile.hh"

#include "common/logging.hh"

namespace tg {
namespace workload {

namespace {

BenchmarkProfile
make(const std::string &name, const std::string &full, double mean_u,
     double amp, double period_us, double jitter, double imbalance,
     double mem, double didt, double roi_us, InstructionMix mix,
     MissRates miss)
{
    BenchmarkProfile p;
    p.name = name;
    p.fullName = full;
    p.meanUtilization = mean_u;
    p.phaseAmplitude = amp;
    p.phasePeriodUs = period_us;
    p.jitterSigma = jitter;
    p.imbalance = imbalance;
    p.memoryIntensity = mem;
    p.didtActivity = didt;
    p.roiDurationUs = roi_us;
    p.mix = mix;
    p.misses = miss;
    return p;
}

std::vector<BenchmarkProfile>
buildProfiles()
{
    // Mean utilisations are calibrated against the P_loss savings of
    // Fig. 7 (cholesky stays busy => least headroom, ~10%; raytrace is
    // light => ~50%); didtActivity ranks follow the voltage-emergency
    // residencies of Table 2 (barnes worst, then oc_cp/fft; the lu
    // kernels and water_nsquared never trip emergencies).
    std::vector<BenchmarkProfile> v;
    v.push_back(make("barnes", "barnes-hut n-body",
                     0.66, 0.22, 520, 0.06, 0.12, 0.32, 0.97, 8000,
                     {0.30, 0.32, 0.20, 0.08, 0.10},
                     {0.035, 0.30, 0.25}));
    v.push_back(make("chol", "cholesky factorization",
                     0.88, 0.06, 700, 0.04, 0.08, 0.30, 0.42, 7000,
                     {0.28, 0.38, 0.20, 0.08, 0.06},
                     {0.030, 0.28, 0.22}));
    v.push_back(make("fft", "1D fast Fourier transform",
                     0.50, 0.30, 350, 0.07, 0.08, 0.45, 0.93, 6000,
                     {0.24, 0.34, 0.24, 0.12, 0.06},
                     {0.060, 0.45, 0.35}));
    v.push_back(make("fmm", "fast multipole method",
                     0.68, 0.18, 600, 0.05, 0.10, 0.30, 0.62, 9000,
                     {0.28, 0.36, 0.20, 0.08, 0.08},
                     {0.030, 0.28, 0.20}));
    v.push_back(make("lu_cb", "LU, contiguous blocks",
                     0.70, 0.25, 450, 0.04, 0.08, 0.28, 0.30, 6400,
                     {0.26, 0.40, 0.20, 0.08, 0.06},
                     {0.025, 0.25, 0.18}));
    v.push_back(make("lu_ncb", "LU, non-contiguous blocks",
                     0.55, 0.35, 1600, 0.05, 0.08, 0.38, 0.30, 6000,
                     {0.26, 0.38, 0.22, 0.08, 0.06},
                     {0.050, 0.40, 0.30}));
    v.push_back(make("oc_cp", "ocean, contiguous partitions",
                     0.50, 0.28, 380, 0.06, 0.09, 0.48, 0.92, 7200,
                     {0.24, 0.32, 0.26, 0.12, 0.06},
                     {0.070, 0.50, 0.40}));
    v.push_back(make("oc_ncp", "ocean, non-contiguous partitions",
                     0.48, 0.28, 380, 0.06, 0.09, 0.52, 0.50, 7200,
                     {0.24, 0.30, 0.28, 0.12, 0.06},
                     {0.080, 0.55, 0.42}));
    v.push_back(make("radio", "radiosity",
                     0.80, 0.12, 650, 0.05, 0.10, 0.28, 0.52, 8400,
                     {0.32, 0.30, 0.20, 0.08, 0.10},
                     {0.030, 0.28, 0.20}));
    v.push_back(make("radix", "radix sort",
                     0.60, 0.24, 300, 0.06, 0.06, 0.50, 0.68, 5600,
                     {0.40, 0.08, 0.28, 0.16, 0.08},
                     {0.090, 0.55, 0.45}));
    v.push_back(make("rayt", "raytrace",
                     0.20, 0.18, 550, 0.05, 0.16, 0.34, 0.64, 7600,
                     {0.30, 0.28, 0.24, 0.08, 0.10},
                     {0.045, 0.35, 0.30}));
    v.push_back(make("volr", "volrend",
                     0.47, 0.20, 480, 0.05, 0.12, 0.36, 0.48, 6800,
                     {0.30, 0.26, 0.26, 0.08, 0.10},
                     {0.050, 0.38, 0.28}));
    v.push_back(make("water_n", "water, n-squared",
                     0.63, 0.20, 560, 0.04, 0.08, 0.26, 0.28, 7200,
                     {0.26, 0.42, 0.18, 0.08, 0.06},
                     {0.020, 0.22, 0.15}));
    v.push_back(make("water_s", "water, spatial",
                     0.57, 0.22, 520, 0.05, 0.08, 0.28, 0.78, 7200,
                     {0.26, 0.40, 0.20, 0.08, 0.06},
                     {0.025, 0.24, 0.16}));
    return v;
}

} // namespace

const std::vector<BenchmarkProfile> &
splashProfiles()
{
    static const std::vector<BenchmarkProfile> profiles = buildProfiles();
    return profiles;
}

const BenchmarkProfile &
profileByName(const std::string &name)
{
    for (const auto &p : splashProfiles())
        if (p.name == name || p.fullName == name)
            return p;
    fatal("unknown benchmark '", name, "'");
}

} // namespace workload
} // namespace tg
