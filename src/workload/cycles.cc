#include "workload/cycles.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace tg {
namespace workload {

std::vector<double>
synthesizeCycleMultipliers(double didt, std::size_t n_cycles, Rng &rng)
{
    std::vector<double> out;
    synthesizeCycleMultipliersInto(didt, n_cycles, rng, out);
    return out;
}

void
synthesizeCycleMultipliersInto(double didt, std::size_t n_cycles,
                               Rng &rng, std::vector<double> &out)
{
    TG_ASSERT(didt >= 0.0 && didt <= 1.0, "didt outside [0, 1]");
    TG_ASSERT(n_cycles > 0, "empty cycle window");

    out.resize(n_cycles);

    // Rare Poisson load-step events ride on a small AR(1) ripple.
    // Event *depth* is randomised so the noise is heavy-tailed in
    // time: typical droops stay moderate, the deepest few events set
    // the window maximum, and only their first ringing cycles cross
    // the 10% emergency threshold — which is what keeps emergency
    // residency below 1% of cycles (paper Table 2) even where the
    // maximum noise is well above threshold (Fig. 11).
    double event_rate = (0.30 + 0.30 * didt) / 1000.0;  // per cycle
    double depth_max = 0.26 + 0.20 * didt;              // deepest stall
    // Probability that an event is a *major* one (full-depth pipeline
    // flush / barrier release); grows superlinearly with di/dt
    // activity so the emergency-residency ordering of Table 2 tracks
    // the benchmarks' di/dt character.
    double deep_prob = 0.008 + 0.03 * didt * didt;

    const double rho = 0.85;
    double ripple_sigma = 0.010 + 0.012 * didt;
    double ripple = 0.0;

    double level = 1.0;      // current event level offset target
    std::size_t remain = 0;  // cycles left in the current event

    for (std::size_t c = 0; c < n_cycles; ++c) {
        if (remain > 0) {
            --remain;
            if (remain == 0)
                level = 1.0;  // step back up: the recovery edge
        } else if (rng.bernoulli(event_rate)) {
            double depth = rng.bernoulli(deep_prob)
                               ? depth_max
                               : 0.18 * rng.uniform() * depth_max;
            bool stall = rng.bernoulli(0.70);
            level = stall ? 1.0 - depth : 1.0 + 0.5 * depth;
            remain = 8 + static_cast<std::size_t>(
                             -60.0 * std::log(1.0 - rng.uniform()));
        }
        ripple = rho * ripple + std::sqrt(1.0 - rho * rho) *
                                    rng.gaussian(0.0, ripple_sigma);
        out[c] = std::max(0.0, level + ripple);
    }
}

} // namespace workload
} // namespace tg
