#include "serve/client.hh"

#include <algorithm>
#include <chrono>
#include <thread>

#ifdef __unix__
#include <unistd.h>
#endif

#include "cache/serialize.hh"
#include "common/bytes.hh"
#include "common/io.hh"

namespace tg {
namespace serve {

using shard::Frame;
using shard::FrameParser;
using shard::FrameType;
using shard::PumpStatus;

namespace {

void setErr(std::string *err, const char *what)
{
    if (err)
        *err = what;
}

} // namespace

Client::~Client()
{
    close();
}

void Client::close()
{
#ifdef __unix__
    if (fd >= 0)
        ::close(fd);
#endif
    fd = -1;
    parser = FrameParser();
    pending.clear();
}

bool Client::connect(const std::string &socketPath, std::string *err)
{
    close();
    fd = io::connectUnix(socketPath);
    if (fd < 0) {
        if (err)
            *err = "cannot connect to " + socketPath;
        return false;
    }
    return true;
}

bool Client::connectWithRetry(const std::string &socketPath,
                              std::uint64_t waitMs, std::string *err)
{
    using Clock = std::chrono::steady_clock;
    const Clock::time_point give_up =
        Clock::now() + std::chrono::milliseconds(waitMs);
    std::uint64_t pid = 0;
#ifdef __unix__
    pid = static_cast<std::uint64_t>(::getpid());
#endif
    std::uint64_t delayMs = 10;
    for (unsigned attempt = 0;; ++attempt) {
        // An accepted connection is not enough: the listening socket
        // may outlive a dying server, or the daemon may not be
        // serving yet. Only a Pong proves the loop is live.
        if (connect(socketPath, err) && ping(err))
            return true;
        close();
        if (Clock::now() >= give_up) {
            if (err)
                *err = "server at " + socketPath + " not ready after " +
                       std::to_string(waitMs) + " ms (" + *err + ")";
            return false;
        }
        // Deterministic per-process jitter (up to +25%) so a fleet
        // of clients retrying in lockstep spreads out.
        std::uint8_t jkey[16];
        for (int i = 0; i < 8; ++i) {
            jkey[i] = static_cast<std::uint8_t>(pid >> (8 * i));
            jkey[8 + i] = static_cast<std::uint8_t>(attempt >> (8 * i));
        }
        const std::uint64_t jitter =
            bytes::fnv1a(jkey, sizeof jkey) % (delayMs / 4 + 1);
        std::this_thread::sleep_for(
            std::chrono::milliseconds(delayMs + jitter));
        delayMs = std::min<std::uint64_t>(delayMs * 2, 500);
    }
}

bool Client::send(FrameType type,
                  const std::vector<std::uint8_t> &payload,
                  std::string *err)
{
    if (fd < 0) {
        setErr(err, "not connected");
        return false;
    }
    if (!shard::writeFrameToFd(fd, type, payload)) {
        setErr(err, "server connection lost mid-send");
        return false;
    }
    return true;
}

bool Client::recv(Frame &out, std::string *err)
{
    if (fd < 0) {
        setErr(err, "not connected");
        return false;
    }
    while (pending.empty()) {
        // Blocking socket: pumpFrames parks in read() until data.
        switch (shard::pumpFrames(fd, parser,
                                  [&](const Frame &frame) {
                                      pending.push_back(frame);
                                      return true;
                                  })) {
        case PumpStatus::Ok:
            break;
        case PumpStatus::Eof:
            setErr(err, "server closed the connection");
            return false;
        case PumpStatus::Corrupt:
            setErr(err, "corrupt frame stream from server");
            return false;
        case PumpStatus::Rejected:
        case PumpStatus::Error:
            setErr(err, "read from server failed");
            return false;
        }
    }
    out = std::move(pending.front());
    pending.erase(pending.begin());
    return true;
}

bool Client::ping(std::string *err)
{
    if (!send(FrameType::Ping, {}, err))
        return false;
    Frame frame;
    if (!recv(frame, err))
        return false;
    if (frame.type != FrameType::Pong) {
        setErr(err, "unexpected reply to Ping");
        return false;
    }
    return true;
}

bool Client::stats(StatsReplyMsg &out, std::string *err)
{
    if (!send(FrameType::ServeStats, {}, err))
        return false;
    Frame frame;
    if (!recv(frame, err))
        return false;
    if (frame.type != FrameType::ServeStatsReply ||
        !decodeStatsReply(frame.payload, out)) {
        setErr(err, "malformed stats reply");
        return false;
    }
    return true;
}

bool Client::shutdownServer(std::string *err)
{
    if (!send(FrameType::Shutdown, {}, err))
        return false;
    Frame frame;
    if (!recv(frame, err))
        return false;
    DoneMsg done;
    if (frame.type != FrameType::ServeDone ||
        !decodeDone(frame.payload, done) || !done.ok) {
        setErr(err, "server refused the shutdown request");
        return false;
    }
    return true;
}

bool Client::cancel(std::string *err)
{
    return send(FrameType::ServeCancel, {}, err);
}

bool Client::run(const RunMsg &request, sim::RunResult &out,
                 std::string *err, DoneMsg *doneOut)
{
    if (!send(FrameType::ServeRun, encodeRun(request), err))
        return false;
    bool haveCell = false;
    for (;;) {
        Frame frame;
        if (!recv(frame, err))
            return false;
        if (frame.type == FrameType::ServeCell) {
            CellMsg cell;
            if (!decodeCell(frame.payload, cell) ||
                !cache::decodeRunResult(cell.result.data(),
                                        cell.result.size(), out)) {
                setErr(err, "malformed cell result");
                return false;
            }
            haveCell = true;
            continue;
        }
        if (frame.type == FrameType::ServeDone) {
            DoneMsg done;
            if (!decodeDone(frame.payload, done)) {
                setErr(err, "malformed completion frame");
                return false;
            }
            if (doneOut)
                *doneOut = done;
            if (!done.ok) {
                if (err)
                    *err = std::string("run ") +
                           doneStatusName(static_cast<DoneStatus>(
                               done.status)) +
                           ": " + done.error;
                return false;
            }
            if (!haveCell) {
                setErr(err, "completion without a result cell");
                return false;
            }
            return true;
        }
        setErr(err, "unexpected frame during run");
        return false;
    }
}

bool Client::sweep(const SweepMsg &request, sim::SweepResult &out,
                   std::string *err, DoneMsg *doneOut)
{
    if (!send(FrameType::ServeSweep, encodeSweep(request), err))
        return false;

    out = sim::SweepResult{};
    out.benchmarks = request.benchmarks;
    out.policies.reserve(request.policies.size());
    for (auto pk : request.policies)
        out.policies.push_back(static_cast<core::PolicyKind>(pk));
    out.results.assign(
        request.benchmarks.size(),
        std::vector<sim::RunResult>(request.policies.size()));
    const std::uint64_t n_cells =
        static_cast<std::uint64_t>(request.benchmarks.size()) *
        request.policies.size();

    for (;;) {
        Frame frame;
        if (!recv(frame, err))
            return false;
        if (frame.type == FrameType::ServeCell) {
            CellMsg cell;
            sim::RunResult r;
            if (!decodeCell(frame.payload, cell) ||
                cell.cell >= n_cells ||
                !cache::decodeRunResult(cell.result.data(),
                                        cell.result.size(), r)) {
                setErr(err, "malformed cell result");
                return false;
            }
            const std::size_t b = static_cast<std::size_t>(
                cell.cell / request.policies.size());
            const std::size_t p = static_cast<std::size_t>(
                cell.cell % request.policies.size());
            out.results[b][p] = std::move(r);
            continue;
        }
        if (frame.type == FrameType::ServeDone) {
            DoneMsg done;
            if (!decodeDone(frame.payload, done)) {
                setErr(err, "malformed completion frame");
                return false;
            }
            if (doneOut)
                *doneOut = done;
            if (!done.ok) {
                if (err)
                    *err = std::string("sweep ") +
                           doneStatusName(static_cast<DoneStatus>(
                               done.status)) +
                           ": " + done.error;
                return false;
            }
            return true;
        }
        setErr(err, "unexpected frame during sweep");
        return false;
    }
}

} // namespace serve
} // namespace tg
