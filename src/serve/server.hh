/**
 * @file
 * The persistent sweep server (`tg::serve`).
 *
 * A daemon process pays the expensive per-process warm-up — thermal
 * and PDN factorisations, predictor calibration, the in-memory
 * ArtifactStore — once, then answers Run/Sweep requests over a
 * Unix-domain socket for its whole lifetime. A repeat sweep against
 * a warm daemon skips straight to cache hits, which is the entire
 * point: the cold-start cost that dominates short CLI invocations
 * amortises to zero (bench/serve_latency measures the ladder).
 *
 * Architecture: two threads plus the sweep worker pool.
 *
 *   poll thread     owns every descriptor: the listening socket, a
 *                   self-pipe for wake-ups, and one non-blocking fd
 *                   per client with an outbound buffer. It decodes
 *                   frames, answers Ping/Stats inline, and enqueues
 *                   Run/Sweep work for the executor.
 *   executor thread pops requests FIFO, resolves a warm simulation
 *                   context (LRU cache keyed by the setup blob), and
 *                   runs cells on the process-lifetime ThreadPool,
 *                   posting result frames back through the poll
 *                   thread's completion queue.
 *
 * Scheduling is deliberately FIFO one-request-at-a-time: requests
 * parallelise internally across the pool, so interleaving two sweeps
 * would only thrash the context cache without adding throughput.
 *
 * Bit-identity: a served result is produced by the same
 * Simulation::run/runSweepCells code path as a direct in-process
 * call, and every run is a deterministic function of (chip, config,
 * benchmark, policy, opts) — so the bytes streamed back are
 * bit-identical to a local computation at any jobs count
 * (tests/test_serve_run.cc asserts this end to end).
 *
 * A malformed or invalid request gets an error DoneMsg (or, for a
 * corrupt frame stream, a dropped connection) — never a daemon
 * abort: all client input is handled by non-fatal decoders.
 *
 * Robustness: every accepted Run/Sweep carries a CancelToken. The
 * token trips when the client disconnects, sends ServeCancel, or the
 * request's deadlineMs (armed at admission, so queue wait counts)
 * expires; the executing sweep observes it at the next cell/epoch
 * boundary, unwinds via exec::CancelledError, and the worker
 * contexts return to the LRU intact — the daemon then serves the
 * next request bit-identically. Admission control bounds the queue
 * (maxQueueDepth): an over-limit request is answered immediately
 * with DoneStatus::Busy plus a retry hint, from the poll thread, so
 * overload degrades to fast rejections instead of unbounded memory.
 * A connection whose outbound buffer exceeds maxOutboundBytes (a
 * reader that stopped reading mid-stream) is dropped and its request
 * cancelled.
 */

#ifndef TG_SERVE_SERVER_HH
#define TG_SERVE_SERVER_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "serve/protocol.hh"

namespace tg {
namespace serve {

struct ServerOptions
{
    std::string socketPath; //!< required (resolveSocketPath helps)
    /** Sweep pool width; 0 = exec::resolveJobs ladder (TG_JOBS,
     *  hardware concurrency). */
    int jobs = 0;
    /** Warm simulation contexts kept (LRU); each holds a chip's
     *  factorisations, predictor fit and per-worker Simulations. */
    int contextCacheSize = 4;
    /** Admission bound: Run/Sweep requests waiting for the executor
     *  beyond this get an immediate DoneStatus::Busy. */
    int maxQueueDepth = 64;
    /** Drop a connection whose unsent outbound bytes exceed this (a
     *  client that stopped reading mid-stream). */
    std::size_t maxOutboundBytes = std::size_t(256) << 20;
    /** Retry hint carried in Busy replies. */
    std::uint64_t busyRetryMs = 200;
    bool verbose = false;
};

class Server
{
  public:
    explicit Server(const ServerOptions &options);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind, listen and spawn the service threads. False (with a
     *  message in *err) when the socket cannot be claimed — e.g. a
     *  live server already owns the path. */
    bool start(std::string *err);

    /**
     * Begin a graceful drain: stop accepting connections, finish
     * every queued request, flush outbound buffers, then shut down.
     * Async-signal-safe (an atomic store plus a pipe write), so
     * SIGINT/SIGTERM handlers may call it directly.
     */
    void requestStop();

    /** Block until the drain completes and both threads have exited. */
    void wait();

    const std::string &socketPath() const;

    /** Counters snapshot (same data the wire Stats reply carries). */
    StatsReplyMsg statsSnapshot() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl;
};

} // namespace serve
} // namespace tg

#endif // TG_SERVE_SERVER_HH
