/**
 * @file
 * Payload codecs of the persistent sweep server.
 *
 * The server speaks the shard layer's TGS1 frame protocol over a
 * Unix-domain socket (shard/protocol.hh owns the frame layer and the
 * FrameType registry; this header owns the serve-side payloads). A
 * session is request/response:
 *
 *     client -> server : ServeRun | ServeSweep | ServeStats | Ping
 *                        | Shutdown
 *     server -> client : ServeCell*  (streamed as cells finish)
 *     server -> client : ServeDone   (ok or an error string)
 *     server -> client : ServeStatsReply / Pong
 *
 * Every decoder is bounds-checked and rejects trailing garbage, same
 * rules as the shard messages. Results travel as
 * cache::encodeRunResult bytes, so a served cell is byte-comparable
 * against a locally computed one — the bit-identity contract the
 * serve tests assert.
 */

#ifndef TG_SERVE_PROTOCOL_HH
#define TG_SERVE_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cache/store.hh"
#include "shard/protocol.hh"

namespace tg {
namespace serve {

/**
 * Client -> server: one simulation run. `setup` is a
 * shard::encodeBasicSetup blob (chip kind + SimConfig scalars); the
 * RecordOptions scalars ride explicitly, like the shard protocol's
 * SweepRequest.
 */
struct RunMsg
{
    std::vector<std::uint8_t> setup;
    std::string benchmark;
    std::uint32_t policy = 0;
    // RecordOptions scalars (see sim/result.hh).
    std::uint8_t timeSeries = 0;
    std::uint8_t heatmap = 0;
    std::uint8_t noiseTrace = 0;
    std::int64_t trackVr = -1;
    std::int64_t noiseSamplesOverride = -1;
};

/**
 * Client -> server: a benchmark x policy sweep (the full grid, or an
 * arbitrary cell subset in the canonical `b * policies.size() + p`
 * indexing). `jobs` requests intra-request parallelism; the server
 * clamps it to its own pool width. Results are bit-identical at any
 * jobs value, so the clamp cannot change a byte.
 */
struct SweepMsg
{
    std::vector<std::uint8_t> setup;
    std::vector<std::string> benchmarks;
    std::vector<std::uint32_t> policies;
    std::vector<std::uint64_t> cells; //!< empty = every grid cell
    std::uint32_t jobs = 1;
    std::uint8_t timeSeries = 0;
    std::uint8_t heatmap = 0;
    std::uint8_t noiseTrace = 0;
    std::int64_t trackVr = -1;
    std::int64_t noiseSamplesOverride = -1;
};

/** Server -> client: one finished cell (cache::encodeRunResult). */
struct CellMsg
{
    std::uint64_t cell = 0;
    std::vector<std::uint8_t> result;
};

/** Server -> client: request complete (after the last CellMsg). */
struct DoneMsg
{
    std::uint8_t ok = 0;
    std::uint64_t cells = 0; //!< cells streamed for this request
    std::string error;       //!< empty when ok
};

/**
 * Server -> client: counters snapshot. Request-side counters come
 * from the scheduler; the embedded cache::StoreStats is the shared
 * warm ArtifactStore the daemon exists to keep alive.
 */
struct StatsReplyMsg
{
    std::uint64_t uptimeMicros = 0;
    std::uint64_t requestsRun = 0;
    std::uint64_t requestsSweep = 0;
    std::uint64_t requestsPing = 0;
    std::uint64_t requestsStats = 0;
    std::uint64_t requestsRejected = 0; //!< malformed/invalid requests
    std::uint64_t cellsServed = 0;
    std::uint64_t contextsBuilt = 0;  //!< warm-context cache misses
    std::uint64_t contextsReused = 0; //!< warm-context cache hits
    std::uint64_t queueDepth = 0;     //!< requests waiting at snapshot
    std::uint64_t runMicros = 0;   //!< cumulative Run execution time
    std::uint64_t sweepMicros = 0; //!< cumulative Sweep execution time
    cache::StoreStats store;
};

std::vector<std::uint8_t> encodeRun(const RunMsg &m);
std::vector<std::uint8_t> encodeSweep(const SweepMsg &m);
std::vector<std::uint8_t> encodeCell(const CellMsg &m);
std::vector<std::uint8_t> encodeDone(const DoneMsg &m);
std::vector<std::uint8_t> encodeStatsReply(const StatsReplyMsg &m);

/** Decoders reject truncated, malformed and trailing-garbage input. */
bool decodeRun(const std::vector<std::uint8_t> &p, RunMsg &out);
bool decodeSweep(const std::vector<std::uint8_t> &p, SweepMsg &out);
bool decodeCell(const std::vector<std::uint8_t> &p, CellMsg &out);
bool decodeDone(const std::vector<std::uint8_t> &p, DoneMsg &out);
bool decodeStatsReply(const std::vector<std::uint8_t> &p,
                      StatsReplyMsg &out);

/**
 * Socket-path ladder shared by tg_serve and tg_client: a non-empty
 * `cliValue` wins, else $TG_SERVE_SOCKET, else a per-user default
 * (/tmp/tg_serve.<uid>.sock).
 */
std::string resolveSocketPath(const std::string &cliValue);

} // namespace serve
} // namespace tg

#endif // TG_SERVE_PROTOCOL_HH
