/**
 * @file
 * Payload codecs of the persistent sweep server.
 *
 * The server speaks the shard layer's TGS1 frame protocol over a
 * Unix-domain socket (shard/protocol.hh owns the frame layer and the
 * FrameType registry; this header owns the serve-side payloads). A
 * session is request/response:
 *
 *     client -> server : ServeRun | ServeSweep | ServeStats | Ping
 *                        | ServeCancel | Shutdown
 *     server -> client : ServeCell*  (streamed as cells finish)
 *     server -> client : ServeDone   (status + optional error string)
 *     server -> client : ServeStatsReply / Pong
 *
 * Robustness semantics (v3): Run/Sweep carry an optional deadlineMs
 * the server enforces mid-execution; ServeCancel (empty payload)
 * aborts the connection's queued or in-flight request; ServeDone
 * reports a DoneStatus so a client can tell apart success, request
 * errors, admission-control rejection (Busy, with a retry hint) and
 * cancellation/deadline abort.
 *
 * Every decoder is bounds-checked and rejects trailing garbage, same
 * rules as the shard messages. Results travel as
 * cache::encodeRunResult bytes, so a served cell is byte-comparable
 * against a locally computed one — the bit-identity contract the
 * serve tests assert.
 */

#ifndef TG_SERVE_PROTOCOL_HH
#define TG_SERVE_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cache/store.hh"
#include "shard/protocol.hh"

namespace tg {
namespace serve {

/**
 * Client -> server: one simulation run. `setup` is a
 * shard::encodeBasicSetup blob (chip kind + SimConfig scalars); the
 * RecordOptions scalars ride explicitly, like the shard protocol's
 * SweepRequest.
 */
struct RunMsg
{
    std::vector<std::uint8_t> setup;
    std::string benchmark;
    std::uint32_t policy = 0;
    // RecordOptions scalars (see sim/result.hh).
    std::uint8_t timeSeries = 0;
    std::uint8_t heatmap = 0;
    std::uint8_t noiseTrace = 0;
    std::int64_t trackVr = -1;
    std::int64_t noiseSamplesOverride = -1;
    /** Wall-clock budget in ms; 0 = none. The server arms it when the
     *  request is accepted (queue wait counts against it) and aborts
     *  the execution mid-sweep once it passes. */
    std::uint64_t deadlineMs = 0;
};

/**
 * Client -> server: a benchmark x policy sweep (the full grid, or an
 * arbitrary cell subset in the canonical `b * policies.size() + p`
 * indexing). `jobs` requests intra-request parallelism; the server
 * clamps it to its own pool width. Results are bit-identical at any
 * jobs value, so the clamp cannot change a byte.
 */
struct SweepMsg
{
    std::vector<std::uint8_t> setup;
    std::vector<std::string> benchmarks;
    std::vector<std::uint32_t> policies;
    std::vector<std::uint64_t> cells; //!< empty = every grid cell
    std::uint32_t jobs = 1;
    std::uint8_t timeSeries = 0;
    std::uint8_t heatmap = 0;
    std::uint8_t noiseTrace = 0;
    std::int64_t trackVr = -1;
    std::int64_t noiseSamplesOverride = -1;
    std::uint64_t deadlineMs = 0; //!< see RunMsg::deadlineMs
};

/** Server -> client: one finished cell (cache::encodeRunResult). */
struct CellMsg
{
    std::uint64_t cell = 0;
    std::vector<std::uint8_t> result;
};

/** How a request ended (DoneMsg::status). */
enum class DoneStatus : std::uint8_t
{
    Ok = 0,        //!< executed; every requested cell streamed
    Error,         //!< invalid request or execution failure
    Busy,          //!< rejected at admission (queue full); retry later
    Cancelled,     //!< aborted by ServeCancel or client disconnect
    DeadlineExpired, //!< aborted because deadlineMs elapsed
};

/** True when `s` names a DoneStatus enumerator. */
bool doneStatusValid(std::uint8_t s);

/** Human-readable status tag ("ok", "busy", ...). */
const char *doneStatusName(DoneStatus s);

/** Server -> client: request complete (after the last CellMsg). */
struct DoneMsg
{
    std::uint8_t ok = 0; //!< 1 iff status == Ok (kept for callers
                         //!< that only care about success)
    std::uint8_t status =
        static_cast<std::uint8_t>(DoneStatus::Error);
    std::uint64_t cells = 0; //!< cells streamed for this request
    std::string error;       //!< empty when ok
    /** With status == Busy: the server's suggested retry delay. */
    std::uint64_t retryAfterMs = 0;
};

/**
 * Server -> client: counters snapshot. Request-side counters come
 * from the scheduler; the embedded cache::StoreStats is the shared
 * warm ArtifactStore the daemon exists to keep alive.
 */
struct StatsReplyMsg
{
    std::uint64_t uptimeMicros = 0;
    std::uint64_t requestsRun = 0;
    std::uint64_t requestsSweep = 0;
    std::uint64_t requestsPing = 0;
    std::uint64_t requestsStats = 0;
    std::uint64_t requestsRejected = 0; //!< malformed/invalid requests
    std::uint64_t cellsServed = 0;
    std::uint64_t contextsBuilt = 0;  //!< warm-context cache misses
    std::uint64_t contextsReused = 0; //!< warm-context cache hits
    std::uint64_t queueDepth = 0;     //!< requests waiting at snapshot
    std::uint64_t runMicros = 0;   //!< cumulative Run execution time
    std::uint64_t sweepMicros = 0; //!< cumulative Sweep execution time
    std::uint64_t requestsBusy = 0;      //!< admission rejections
    std::uint64_t requestsCancelled = 0; //!< cancel/disconnect aborts
    std::uint64_t requestsDeadline = 0;  //!< deadline-expiry aborts
    std::uint64_t activeRequests = 0;    //!< executing at snapshot
    cache::StoreStats store;
};

std::vector<std::uint8_t> encodeRun(const RunMsg &m);
std::vector<std::uint8_t> encodeSweep(const SweepMsg &m);
std::vector<std::uint8_t> encodeCell(const CellMsg &m);
std::vector<std::uint8_t> encodeDone(const DoneMsg &m);
std::vector<std::uint8_t> encodeStatsReply(const StatsReplyMsg &m);

/** Decoders reject truncated, malformed and trailing-garbage input. */
bool decodeRun(const std::vector<std::uint8_t> &p, RunMsg &out);
bool decodeSweep(const std::vector<std::uint8_t> &p, SweepMsg &out);
bool decodeCell(const std::vector<std::uint8_t> &p, CellMsg &out);
bool decodeDone(const std::vector<std::uint8_t> &p, DoneMsg &out);
bool decodeStatsReply(const std::vector<std::uint8_t> &p,
                      StatsReplyMsg &out);

/**
 * Socket-path ladder shared by tg_serve and tg_client: a non-empty
 * `cliValue` wins, else $TG_SERVE_SOCKET, else a per-user default
 * (/tmp/tg_serve.<uid>.sock).
 */
std::string resolveSocketPath(const std::string &cliValue);

} // namespace serve
} // namespace tg

#endif // TG_SERVE_PROTOCOL_HH
