#include "serve/server.hh"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstring>
#include <deque>
#include <list>
#include <map>
#include <mutex>

#ifdef __unix__
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

#include "cache/serialize.hh"
#include "common/exec.hh"
#include "common/io.hh"
#include "common/logging.hh"
#include "core/policy.hh"
#include "shard/worker.hh"
#include "sim/sweep.hh"
#include "workload/profile.hh"

namespace tg {
namespace serve {

#ifdef __unix__

namespace {

using shard::Frame;
using shard::FrameParser;
using shard::FrameType;
using shard::PumpStatus;

using Clock = std::chrono::steady_clock;

std::uint64_t microsSince(Clock::time_point t0)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            Clock::now() - t0)
            .count());
}

bool benchmarkExists(const std::string &name)
{
    for (const auto &p : workload::splashProfiles())
        if (p.name == name)
            return true;
    return false;
}

bool policyExists(std::uint32_t v)
{
    for (auto pk : core::allPolicyKinds())
        if (static_cast<std::uint32_t>(pk) == v)
            return true;
    return false;
}

/** One accepted client connection (poll-thread state). */
struct Conn
{
    int fd = -1;
    std::uint64_t id = 0;
    FrameParser parser;
    std::vector<std::uint8_t> out; //!< unsent outbound bytes
    std::size_t outOff = 0;
    bool closing = false; //!< close once `out` drains
};

/** A Run/Sweep waiting for the executor. */
struct PendingRequest
{
    std::uint64_t connId = 0;
    bool isRun = false;
    RunMsg run;
    SweepMsg sweep;
    /** Trips on client disconnect, ServeCancel, or deadline expiry
     *  (armed at admission). shared_ptr: the poll thread must reach
     *  the token of the request the executor currently owns. */
    std::shared_ptr<exec::CancelToken> cancel;
};

/** Executor-posted bytes bound for one connection. */
struct Completion
{
    std::uint64_t connId = 0;
    std::vector<std::uint8_t> bytes;
};

/** Warm simulation context: everything rebuilt on a cold start. */
struct Ctx
{
    std::uint64_t key = 0; //!< fnv1a over the setup blob
    floorplan::Chip chip;  //!< owned: Simulation keeps a reference
    sim::SimConfig cfg;
    std::unique_ptr<sim::Simulation> sim;
    sim::SweepContexts contexts; //!< per-pool-worker Simulations
};

} // namespace

struct Server::Impl
{
    explicit Impl(const ServerOptions &o)
        : options(o), pool(exec::resolveJobs(o.jobs))
    {
    }

    ServerOptions options;

    int listenFd = -1;
    int wakeRead = -1;
    int wakeWrite = -1;
    bool running = false;

    std::thread pollThread;
    std::thread execThread;

    std::atomic<bool> stopping{false};
    std::atomic<bool> execFinished{false};

    // Request queue (poll thread -> executor). activeConnId/token
    // describe the request the executor currently runs, so the poll
    // thread can cancel it on disconnect or ServeCancel.
    std::mutex reqMu;
    std::condition_variable reqCv;
    std::deque<PendingRequest> queue;
    std::uint64_t activeConnId = 0; //!< 0 = executor idle
    std::shared_ptr<exec::CancelToken> activeToken;

    // Completion queue (executor -> poll thread).
    std::mutex compMu;
    std::vector<Completion> completions;

    // Process-lifetime sweep pool; requests with jobs > 1 fan out on
    // it so no request pays thread creation.
    exec::ThreadPool pool;

    // Warm-context LRU, touched only by the executor thread. std::list
    // because a Ctx must never relocate: its Simulation holds a
    // reference to its sibling chip member.
    std::list<Ctx> ctxCache;

    Clock::time_point startTime = Clock::now();

    // Counters (relaxed: snapshots are advisory, like StoreStats).
    std::atomic<std::uint64_t> requestsRun{0};
    std::atomic<std::uint64_t> requestsSweep{0};
    std::atomic<std::uint64_t> requestsPing{0};
    std::atomic<std::uint64_t> requestsStats{0};
    std::atomic<std::uint64_t> requestsRejected{0};
    std::atomic<std::uint64_t> cellsServed{0};
    std::atomic<std::uint64_t> contextsBuilt{0};
    std::atomic<std::uint64_t> contextsReused{0};
    std::atomic<std::uint64_t> queueDepth{0};
    std::atomic<std::uint64_t> runMicros{0};
    std::atomic<std::uint64_t> sweepMicros{0};
    std::atomic<std::uint64_t> requestsBusy{0};
    std::atomic<std::uint64_t> requestsCancelled{0};
    std::atomic<std::uint64_t> requestsDeadline{0};
    std::atomic<std::uint64_t> activeRequests{0};

    // --- shared plumbing ---------------------------------------------

    void wake()
    {
        const std::uint8_t b = 0;
        // Best-effort: a full pipe already guarantees a pending wake.
        (void)!::write(wakeWrite, &b, 1);
    }

    void post(std::uint64_t connId, FrameType type,
              const std::vector<std::uint8_t> &payload)
    {
        Completion c;
        c.connId = connId;
        c.bytes = shard::encodeFrame(type, payload);
        {
            std::lock_guard<std::mutex> lock(compMu);
            completions.push_back(std::move(c));
        }
        wake();
    }

    static DoneMsg makeDone(DoneStatus status, std::uint64_t cells,
                            const std::string &error,
                            std::uint64_t retryAfterMs = 0)
    {
        DoneMsg m;
        m.ok = status == DoneStatus::Ok ? 1 : 0;
        m.status = static_cast<std::uint8_t>(status);
        m.cells = cells;
        m.error = error;
        m.retryAfterMs = retryAfterMs;
        return m;
    }

    void postDone(std::uint64_t connId, DoneStatus status,
                  std::uint64_t cells, const std::string &error)
    {
        post(connId, FrameType::ServeDone,
             encodeDone(makeDone(status, cells, error)));
    }

    StatsReplyMsg snapshot() const
    {
        StatsReplyMsg s;
        s.uptimeMicros = microsSince(startTime);
        s.requestsRun = requestsRun.load();
        s.requestsSweep = requestsSweep.load();
        s.requestsPing = requestsPing.load();
        s.requestsStats = requestsStats.load();
        s.requestsRejected = requestsRejected.load();
        s.cellsServed = cellsServed.load();
        s.contextsBuilt = contextsBuilt.load();
        s.contextsReused = contextsReused.load();
        s.queueDepth = queueDepth.load();
        s.runMicros = runMicros.load();
        s.sweepMicros = sweepMicros.load();
        s.requestsBusy = requestsBusy.load();
        s.requestsCancelled = requestsCancelled.load();
        s.requestsDeadline = requestsDeadline.load();
        s.activeRequests = activeRequests.load();
        s.store = cache::store().stats();
        return s;
    }

    // --- executor thread ---------------------------------------------

    /** Resolve the warm context for a setup blob; null + error when
     *  the blob is invalid. */
    Ctx *contextFor(const std::vector<std::uint8_t> &setup,
                    std::string *err)
    {
        const std::uint64_t key =
            bytes::fnv1a(setup.data(), setup.size());
        for (auto it = ctxCache.begin(); it != ctxCache.end(); ++it) {
            if (it->key != key)
                continue;
            ctxCache.splice(ctxCache.begin(), ctxCache, it);
            contextsReused.fetch_add(1, std::memory_order_relaxed);
            return &ctxCache.front();
        }
        shard::ChipKind kind{};
        int chip_arg = 0;
        sim::SimConfig cfg;
        if (!shard::decodeBasicSetup(setup, kind, chip_arg, cfg)) {
            *err = "invalid setup blob";
            return nullptr;
        }
        if (kind == shard::ChipKind::Mini &&
            (chip_arg < 1 || chip_arg > 64)) {
            *err = "mini chip core count out of range";
            return nullptr;
        }
        ctxCache.emplace_front();
        Ctx &ctx = ctxCache.front();
        ctx.key = key;
        ctx.cfg = cfg;
        ctx.chip = kind == shard::ChipKind::Power8
                       ? floorplan::buildPower8Chip()
                       : floorplan::buildMiniChip(chip_arg);
        ctx.sim = std::make_unique<sim::Simulation>(ctx.chip, ctx.cfg);
        contextsBuilt.fetch_add(1, std::memory_order_relaxed);
        const std::size_t cap = static_cast<std::size_t>(
            std::max(1, options.contextCacheSize));
        while (ctxCache.size() > cap)
            ctxCache.pop_back();
        return &ctx;
    }

    static sim::RecordOptions decodeOpts(std::uint8_t timeSeries,
                                         std::uint8_t heatmap,
                                         std::uint8_t noiseTrace,
                                         std::int64_t trackVr,
                                         std::int64_t samples)
    {
        sim::RecordOptions opts;
        opts.timeSeries = timeSeries != 0;
        opts.heatmap = heatmap != 0;
        opts.noiseTrace = noiseTrace != 0;
        opts.trackVr = static_cast<int>(trackVr);
        opts.noiseSamplesOverride = static_cast<int>(samples);
        return opts;
    }

    void executeRun(const PendingRequest &req)
    {
        const Clock::time_point t0 = Clock::now();
        const RunMsg &m = req.run;
        std::string err;
        if (!benchmarkExists(m.benchmark)) {
            err = "unknown benchmark '" + m.benchmark + "'";
        } else if (!policyExists(m.policy)) {
            err = "unknown policy kind";
        }
        Ctx *ctx = err.empty() ? contextFor(m.setup, &err) : nullptr;
        if (!ctx) {
            requestsRejected.fetch_add(1, std::memory_order_relaxed);
            postDone(req.connId, DoneStatus::Error, 0, err);
            return;
        }
        sim::RecordOptions opts =
            decodeOpts(m.timeSeries, m.heatmap, m.noiseTrace,
                       m.trackVr, m.noiseSamplesOverride);
        opts.cancel = req.cancel.get();
        sim::RunResult r = ctx->sim->run(
            workload::profileByName(m.benchmark),
            static_cast<core::PolicyKind>(m.policy), opts);
        CellMsg cell;
        cell.cell = 0;
        cell.result = cache::encodeRunResult(r);
        post(req.connId, FrameType::ServeCell, encodeCell(cell));
        postDone(req.connId, DoneStatus::Ok, 1, {});
        requestsRun.fetch_add(1, std::memory_order_relaxed);
        cellsServed.fetch_add(1, std::memory_order_relaxed);
        runMicros.fetch_add(microsSince(t0),
                            std::memory_order_relaxed);
    }

    void executeSweep(const PendingRequest &req)
    {
        const Clock::time_point t0 = Clock::now();
        const SweepMsg &m = req.sweep;
        std::string err;
        if (m.benchmarks.empty() || m.policies.empty()) {
            err = "empty benchmark or policy list";
        } else {
            for (const auto &b : m.benchmarks)
                if (!benchmarkExists(b)) {
                    err = "unknown benchmark '" + b + "'";
                    break;
                }
            for (auto pk : m.policies)
                if (err.empty() && !policyExists(pk))
                    err = "unknown policy kind";
        }
        const std::uint64_t n_cells =
            static_cast<std::uint64_t>(m.benchmarks.size()) *
            m.policies.size();
        if (err.empty())
            for (auto c : m.cells)
                if (c >= n_cells) {
                    err = "sweep cell index out of range";
                    break;
                }
        Ctx *ctx = err.empty() ? contextFor(m.setup, &err) : nullptr;
        if (!ctx) {
            requestsRejected.fetch_add(1, std::memory_order_relaxed);
            postDone(req.connId, DoneStatus::Error, 0, err);
            return;
        }

        std::vector<core::PolicyKind> policies;
        policies.reserve(m.policies.size());
        for (auto pk : m.policies)
            policies.push_back(static_cast<core::PolicyKind>(pk));
        std::vector<std::size_t> cells;
        if (m.cells.empty()) {
            cells.resize(static_cast<std::size_t>(n_cells));
            for (std::size_t c = 0; c < cells.size(); ++c)
                cells[c] = c;
        } else {
            cells.assign(m.cells.begin(), m.cells.end());
        }

        const int jobs = static_cast<int>(
            std::min<std::uint32_t>(m.jobs, 4096));
        sim::RecordOptions opts =
            decodeOpts(m.timeSeries, m.heatmap, m.noiseTrace,
                       m.trackVr, m.noiseSamplesOverride);
        opts.cancel = req.cancel.get();
        std::atomic<std::uint64_t> streamed{0};
        // On cancellation runSweepCells throws after the completed
        // cells were emitted; the catch in execLoop posts the final
        // status. Cells streamed before the trip still count.
        try {
            sim::runSweepCells(
                *ctx->sim, m.benchmarks, policies, cells, jobs, opts,
                [&](std::size_t cell, sim::RunResult &&r) {
                    CellMsg out;
                    out.cell = cell;
                    out.result = cache::encodeRunResult(r);
                    post(req.connId, FrameType::ServeCell,
                         encodeCell(out));
                    streamed.fetch_add(1, std::memory_order_relaxed);
                },
                &ctx->contexts, jobs > 1 ? &pool : nullptr);
        } catch (...) {
            cellsServed.fetch_add(streamed.load(),
                                  std::memory_order_relaxed);
            sweepMicros.fetch_add(microsSince(t0),
                                  std::memory_order_relaxed);
            throw;
        }
        postDone(req.connId, DoneStatus::Ok, streamed.load(), {});
        requestsSweep.fetch_add(1, std::memory_order_relaxed);
        cellsServed.fetch_add(streamed.load(),
                              std::memory_order_relaxed);
        sweepMicros.fetch_add(microsSince(t0),
                              std::memory_order_relaxed);
    }

    void execLoop()
    {
        for (;;) {
            PendingRequest req;
            {
                std::unique_lock<std::mutex> lock(reqMu);
                reqCv.wait(lock, [&] {
                    return !queue.empty() || stopping.load();
                });
                if (queue.empty())
                    break; // stopping, and nothing left to drain
                req = std::move(queue.front());
                queue.pop_front();
                queueDepth.store(queue.size(),
                                 std::memory_order_relaxed);
                activeConnId = req.connId;
                activeToken = req.cancel;
            }
            activeRequests.store(1, std::memory_order_relaxed);
            try {
                if (req.isRun)
                    executeRun(req);
                else
                    executeSweep(req);
            } catch (const exec::CancelledError &e) {
                // The sweep unwound at a cell/epoch boundary; the
                // contexts in the LRU are intact (each run resets
                // its scratch on entry), so the daemon keeps
                // serving. Tell the client — if it is still there —
                // why its stream ended early.
                const bool deadline = e.deadlineExpired();
                (deadline ? requestsDeadline : requestsCancelled)
                    .fetch_add(1, std::memory_order_relaxed);
                postDone(req.connId,
                         deadline ? DoneStatus::DeadlineExpired
                                  : DoneStatus::Cancelled,
                         0, e.what());
            } catch (const std::exception &e) {
                // A request must never take the daemon down.
                requestsRejected.fetch_add(1,
                                           std::memory_order_relaxed);
                postDone(req.connId, DoneStatus::Error, 0, e.what());
            }
            activeRequests.store(0, std::memory_order_relaxed);
            {
                std::lock_guard<std::mutex> lock(reqMu);
                activeConnId = 0;
                activeToken.reset();
            }
        }
        execFinished.store(true);
        wake();
    }

    // --- poll thread -------------------------------------------------

    void appendOut(Conn &c, FrameType type,
                   const std::vector<std::uint8_t> &payload)
    {
        const std::vector<std::uint8_t> frame =
            shard::encodeFrame(type, payload);
        c.out.insert(c.out.end(), frame.begin(), frame.end());
    }

    /** Non-blocking outbound flush; false when the peer is gone. */
    bool flushOut(Conn &c)
    {
        while (c.outOff < c.out.size()) {
            const long n =
                io::chaosWrite(c.fd, c.out.data() + c.outOff,
                               c.out.size() - c.outOff);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                if (errno == EAGAIN || errno == EWOULDBLOCK)
                    return true;
                return false;
            }
            c.outOff += static_cast<std::size_t>(n);
        }
        c.out.clear();
        c.outOff = 0;
        return true;
    }

    /** Unsent outbound bytes beyond the cap = a reader that stopped
     *  reading mid-stream; the connection is pathological. */
    bool overOutboundCap(const Conn &c) const
    {
        return c.out.size() - c.outOff > options.maxOutboundBytes;
    }

    /**
     * Admission control: accept the request (arming its deadline so
     * queue wait counts against it), or reject when the queue is at
     * maxQueueDepth. The reject happens here on the poll thread —
     * overload answers in microseconds, it never waits in line.
     */
    bool enqueueRequest(PendingRequest &&req, std::uint64_t deadlineMs)
    {
        req.cancel = std::make_shared<exec::CancelToken>();
        if (deadlineMs > 0)
            req.cancel->setDeadlineIn(deadlineMs);
        {
            std::lock_guard<std::mutex> lock(reqMu);
            if (queue.size() >=
                static_cast<std::size_t>(
                    std::max(0, options.maxQueueDepth))) {
                requestsBusy.fetch_add(1, std::memory_order_relaxed);
                return false;
            }
            queue.push_back(std::move(req));
            queueDepth.store(queue.size(), std::memory_order_relaxed);
        }
        reqCv.notify_one();
        return true;
    }

    /**
     * Trip every request of one connection: queued ones are removed
     * here (count returned), an in-flight one has its token
     * cancelled and unwinds through the executor. Poll thread only.
     */
    std::size_t cancelRequestsFor(std::uint64_t connId,
                                  bool *activeTripped)
    {
        std::size_t removed = 0;
        bool tripped = false;
        {
            std::lock_guard<std::mutex> lock(reqMu);
            for (auto it = queue.begin(); it != queue.end();) {
                if (it->connId == connId) {
                    it->cancel->cancel();
                    it = queue.erase(it);
                    ++removed;
                } else {
                    ++it;
                }
            }
            queueDepth.store(queue.size(), std::memory_order_relaxed);
            if (activeConnId == connId && activeToken) {
                activeToken->cancel();
                tripped = true;
            }
        }
        requestsCancelled.fetch_add(removed,
                                    std::memory_order_relaxed);
        if (activeTripped)
            *activeTripped = tripped;
        return removed;
    }

    /** Poll-thread frame dispatch; false drops the connection. */
    bool handleFrame(Conn &c, const Frame &frame)
    {
        switch (frame.type) {
        case FrameType::Ping:
            requestsPing.fetch_add(1, std::memory_order_relaxed);
            appendOut(c, FrameType::Pong, {});
            return true;
        case FrameType::ServeStats:
            requestsStats.fetch_add(1, std::memory_order_relaxed);
            appendOut(c, FrameType::ServeStatsReply,
                      encodeStatsReply(snapshot()));
            return true;
        case FrameType::Shutdown: {
            // Ack before draining so the client's blocking wait ends
            // as soon as the drain is scheduled.
            appendOut(c, FrameType::ServeDone,
                      encodeDone(makeDone(DoneStatus::Ok, 0, {})));
            c.closing = true;
            stopping.store(true);
            return true;
        }
        case FrameType::ServeCancel: {
            bool activeTripped = false;
            const std::size_t removed =
                cancelRequestsFor(c.id, &activeTripped);
            // A removed queued request never reaches the executor, so
            // its Done comes from here; an in-flight one unwinds and
            // the executor posts its own. Nothing to cancel is a
            // silent no-op — the request may just have finished, and
            // its real Done is already on the wire; an extra reply
            // would desync the client's request/response pairing.
            (void)activeTripped;
            for (std::size_t i = 0; i < removed; ++i)
                appendOut(c, FrameType::ServeDone,
                          encodeDone(makeDone(DoneStatus::Cancelled,
                                              0, "cancelled")));
            return true;
        }
        case FrameType::ServeRun: {
            PendingRequest req;
            req.connId = c.id;
            req.isRun = true;
            if (!decodeRun(frame.payload, req.run)) {
                requestsRejected.fetch_add(1,
                                           std::memory_order_relaxed);
                appendOut(c, FrameType::ServeDone,
                          encodeDone(makeDone(
                              DoneStatus::Error, 0,
                              "malformed ServeRun payload")));
                return true;
            }
            const std::uint64_t deadlineMs = req.run.deadlineMs;
            if (!enqueueRequest(std::move(req), deadlineMs))
                appendOut(c, FrameType::ServeDone,
                          encodeDone(makeDone(
                              DoneStatus::Busy, 0, "queue full",
                              options.busyRetryMs)));
            return true;
        }
        case FrameType::ServeSweep: {
            PendingRequest req;
            req.connId = c.id;
            if (!decodeSweep(frame.payload, req.sweep)) {
                requestsRejected.fetch_add(1,
                                           std::memory_order_relaxed);
                appendOut(c, FrameType::ServeDone,
                          encodeDone(makeDone(
                              DoneStatus::Error, 0,
                              "malformed ServeSweep payload")));
                return true;
            }
            const std::uint64_t deadlineMs = req.sweep.deadlineMs;
            if (!enqueueRequest(std::move(req), deadlineMs))
                appendOut(c, FrameType::ServeDone,
                          encodeDone(makeDone(
                              DoneStatus::Busy, 0, "queue full",
                              options.busyRetryMs)));
            return true;
        }
        default:
            // Server-bound streams carry nothing else; a client that
            // speaks another message is broken.
            return false;
        }
    }

    void pollLoop()
    {
        std::map<std::uint64_t, Conn> conns;
        std::uint64_t nextId = 1;
        // Grace period for flushing replies once the drain finishes:
        // a client that stopped reading must not wedge shutdown.
        Clock::time_point drainDeadline{};

        auto dropConn = [&](std::uint64_t id) {
            auto it = conns.find(id);
            if (it == conns.end())
                return;
            // A vanished client must not keep burning executor time:
            // trip its queued and in-flight requests. The executor's
            // Done for the tripped one lands in the completion drain
            // and is discarded there (connection gone).
            cancelRequestsFor(id, nullptr);
            ::close(it->second.fd);
            conns.erase(it);
            if (options.verbose)
                inform("tg_serve: client ", id, " dropped");
        };

        for (;;) {
            const bool draining = stopping.load();
            if (draining) {
                // The executor may be parked waiting for work; make
                // sure it observes the stop and drains out.
                reqCv.notify_all();
            }

            std::vector<pollfd> fds;
            std::vector<std::uint64_t> fdConn;
            fds.push_back({wakeRead, POLLIN, 0});
            fdConn.push_back(0);
            if (!draining) {
                fds.push_back({listenFd, POLLIN, 0});
                fdConn.push_back(0);
            }
            for (auto &entry : conns) {
                short events = POLLIN;
                if (entry.second.outOff < entry.second.out.size())
                    events |= POLLOUT;
                fds.push_back({entry.second.fd, events, 0});
                fdConn.push_back(entry.first);
            }

            const int rv = ::poll(
                fds.data(), static_cast<nfds_t>(fds.size()), 100);
            if (rv < 0 && errno != EINTR) {
                warn("tg_serve: poll() failed: ",
                     std::strerror(errno));
                break;
            }

            // Drain the wake pipe (level-triggered; contents are
            // meaningless, the wake itself is the message).
            if (fds[0].revents & POLLIN) {
                std::uint8_t buf[256];
                while (::read(wakeRead, buf, sizeof buf) > 0) {
                }
            }

            // Move executor completions into connection buffers.
            {
                std::vector<Completion> batch;
                {
                    std::lock_guard<std::mutex> lock(compMu);
                    batch.swap(completions);
                }
                for (auto &comp : batch) {
                    auto it = conns.find(comp.connId);
                    if (it == conns.end())
                        continue; // client left mid-request
                    it->second.out.insert(it->second.out.end(),
                                          comp.bytes.begin(),
                                          comp.bytes.end());
                }
                // Backpressure of last resort: a connection that
                // stopped reading while a sweep streams at it grows
                // without bound — drop it (which also cancels its
                // request) instead of buffering forever.
                std::vector<std::uint64_t> overCap;
                for (auto &entry : conns)
                    if (overOutboundCap(entry.second))
                        overCap.push_back(entry.first);
                for (std::uint64_t id : overCap)
                    dropConn(id);
            }

            // Accept new clients.
            if (!draining)
                for (;;) {
                    const int cfd = ::accept(listenFd, nullptr,
                                             nullptr);
                    if (cfd < 0)
                        break;
                    io::setNonBlocking(cfd, true);
                    const std::uint64_t id = nextId++;
                    Conn c;
                    c.fd = cfd;
                    c.id = id;
                    conns.emplace(id, std::move(c));
                    if (options.verbose)
                        inform("tg_serve: client ", id,
                               " connected");
                }

            // Service ready connections.
            const std::size_t firstConn = draining ? 1 : 2;
            for (std::size_t k = firstConn; k < fds.size(); ++k) {
                auto it = conns.find(fdConn[k]);
                if (it == conns.end())
                    continue;
                Conn &c = it->second;
                if (fds[k].revents & POLLOUT) {
                    if (!flushOut(c)) {
                        dropConn(c.id);
                        continue;
                    }
                }
                if (fds[k].revents & (POLLIN | POLLHUP | POLLERR)) {
                    const PumpStatus st = shard::pumpFrames(
                        c.fd, c.parser, [&](const Frame &frame) {
                            return handleFrame(c, frame);
                        });
                    if (st != PumpStatus::Ok) {
                        // Flush whatever is buffered (e.g. the error
                        // reply preceding a rejection) best-effort,
                        // then drop.
                        flushOut(c);
                        dropConn(c.id);
                        continue;
                    }
                }
                // Opportunistic flush: most replies fit the socket
                // buffer, so this usually completes inline and the
                // next poll() round needs no POLLOUT at all.
                if (!flushOut(c)) {
                    dropConn(c.id);
                    continue;
                }
                if (c.closing && c.out.empty())
                    dropConn(c.id);
            }

            if (draining && execFinished.load()) {
                if (drainDeadline == Clock::time_point{})
                    drainDeadline =
                        Clock::now() + std::chrono::seconds(5);
                bool pendingOut = false;
                {
                    std::lock_guard<std::mutex> lock(compMu);
                    pendingOut = !completions.empty();
                }
                for (auto &entry : conns)
                    pendingOut =
                        pendingOut || !entry.second.out.empty();
                if (!pendingOut || Clock::now() > drainDeadline)
                    break;
            }
        }

        for (auto &entry : conns)
            ::close(entry.second.fd);
    }
};

Server::Server(const ServerOptions &options)
    : impl(std::make_unique<Impl>(options))
{
}

Server::~Server()
{
    requestStop();
    wait();
    if (impl->listenFd >= 0)
        ::close(impl->listenFd);
    if (impl->wakeRead >= 0)
        ::close(impl->wakeRead);
    if (impl->wakeWrite >= 0)
        ::close(impl->wakeWrite);
}

bool Server::start(std::string *err)
{
    // A client vanishing mid-reply must surface as a failed write,
    // not a process-killing SIGPIPE.
    std::signal(SIGPIPE, SIG_IGN);

    impl->listenFd = io::listenUnix(impl->options.socketPath, 16, err);
    if (impl->listenFd < 0)
        return false;
    io::setNonBlocking(impl->listenFd, true);

    int pipefd[2] = {-1, -1};
    if (::pipe(pipefd) != 0) {
        if (err)
            *err = "pipe() failed";
        ::close(impl->listenFd);
        impl->listenFd = -1;
        return false;
    }
    impl->wakeRead = pipefd[0];
    impl->wakeWrite = pipefd[1];
    io::setNonBlocking(impl->wakeRead, true);
    io::setNonBlocking(impl->wakeWrite, true);

    impl->startTime = Clock::now();
    impl->pollThread = std::thread([this] { impl->pollLoop(); });
    impl->execThread = std::thread([this] { impl->execLoop(); });
    impl->running = true;
    if (impl->options.verbose)
        inform("tg_serve: listening on ", impl->options.socketPath,
               " (pool width ", impl->pool.threadCount(), ")");
    return true;
}

void Server::requestStop()
{
    impl->stopping.store(true);
    if (impl->wakeWrite >= 0)
        impl->wake();
}

void Server::wait()
{
    if (!impl->running)
        return;
    if (impl->pollThread.joinable())
        impl->pollThread.join();
    if (impl->execThread.joinable())
        impl->execThread.join();
    impl->running = false;
    ::unlink(impl->options.socketPath.c_str());
}

const std::string &Server::socketPath() const
{
    return impl->options.socketPath;
}

StatsReplyMsg Server::statsSnapshot() const
{
    return impl->snapshot();
}

#else // !__unix__

struct Server::Impl
{
    explicit Impl(const ServerOptions &o) : options(o) {}
    ServerOptions options;
};

Server::Server(const ServerOptions &options)
    : impl(std::make_unique<Impl>(options))
{
}

Server::~Server() = default;

bool Server::start(std::string *err)
{
    if (err)
        *err = "the sweep server requires a POSIX host";
    return false;
}

void Server::requestStop() {}
void Server::wait() {}

const std::string &Server::socketPath() const
{
    return impl->options.socketPath;
}

StatsReplyMsg Server::statsSnapshot() const
{
    return StatsReplyMsg{};
}

#endif // __unix__

} // namespace serve
} // namespace tg
