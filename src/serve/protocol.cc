#include "serve/protocol.hh"

#include <cstdio>
#include <cstdlib>

#ifdef __unix__
#include <unistd.h>
#endif

namespace tg {
namespace serve {

namespace {

using bytes::ByteReader;
using bytes::ByteWriter;

/** Cap on list element counts inside serve messages. */
constexpr std::uint64_t kMaxListLen = 1ull << 24;

void writeOpts(ByteWriter &w, std::uint8_t timeSeries,
               std::uint8_t heatmap, std::uint8_t noiseTrace,
               std::int64_t trackVr, std::int64_t noiseSamplesOverride)
{
    w.u8(timeSeries);
    w.u8(heatmap);
    w.u8(noiseTrace);
    w.i64(trackVr);
    w.i64(noiseSamplesOverride);
}

} // namespace

bool doneStatusValid(std::uint8_t s)
{
    return s <= static_cast<std::uint8_t>(DoneStatus::DeadlineExpired);
}

const char *doneStatusName(DoneStatus s)
{
    switch (s) {
    case DoneStatus::Ok:
        return "ok";
    case DoneStatus::Error:
        return "error";
    case DoneStatus::Busy:
        return "busy";
    case DoneStatus::Cancelled:
        return "cancelled";
    case DoneStatus::DeadlineExpired:
        return "deadline-expired";
    }
    return "unknown";
}

std::vector<std::uint8_t> encodeRun(const RunMsg &m)
{
    ByteWriter w;
    w.blob(m.setup);
    w.str(m.benchmark);
    w.u32(m.policy);
    writeOpts(w, m.timeSeries, m.heatmap, m.noiseTrace, m.trackVr,
              m.noiseSamplesOverride);
    w.u64(m.deadlineMs);
    return w.take();
}

bool decodeRun(const std::vector<std::uint8_t> &p, RunMsg &out)
{
    ByteReader r(p.data(), p.size());
    if (!r.blob(out.setup))
        return false;
    out.benchmark = r.str();
    out.policy = r.u32();
    out.timeSeries = r.u8();
    out.heatmap = r.u8();
    out.noiseTrace = r.u8();
    out.trackVr = r.i64();
    out.noiseSamplesOverride = r.i64();
    out.deadlineMs = r.u64();
    return r.exhausted();
}

std::vector<std::uint8_t> encodeSweep(const SweepMsg &m)
{
    ByteWriter w;
    w.blob(m.setup);
    w.u64(m.benchmarks.size());
    for (const auto &b : m.benchmarks)
        w.str(b);
    w.u64(m.policies.size());
    for (auto pk : m.policies)
        w.u32(pk);
    w.u64(m.cells.size());
    for (auto c : m.cells)
        w.u64(c);
    w.u32(m.jobs);
    writeOpts(w, m.timeSeries, m.heatmap, m.noiseTrace, m.trackVr,
              m.noiseSamplesOverride);
    w.u64(m.deadlineMs);
    return w.take();
}

bool decodeSweep(const std::vector<std::uint8_t> &p, SweepMsg &out)
{
    ByteReader r(p.data(), p.size());
    if (!r.blob(out.setup))
        return false;
    const std::uint64_t nb = r.u64();
    if (!r.ok() || nb > kMaxListLen)
        return false;
    out.benchmarks.resize(static_cast<std::size_t>(nb));
    for (auto &b : out.benchmarks)
        b = r.str();
    const std::uint64_t np = r.u64();
    if (!r.ok() || np > kMaxListLen)
        return false;
    out.policies.resize(static_cast<std::size_t>(np));
    for (auto &pk : out.policies)
        pk = r.u32();
    const std::uint64_t nc = r.u64();
    if (!r.ok() || nc > kMaxListLen)
        return false;
    out.cells.resize(static_cast<std::size_t>(nc));
    for (auto &c : out.cells)
        c = r.u64();
    out.jobs = r.u32();
    out.timeSeries = r.u8();
    out.heatmap = r.u8();
    out.noiseTrace = r.u8();
    out.trackVr = r.i64();
    out.noiseSamplesOverride = r.i64();
    out.deadlineMs = r.u64();
    return r.exhausted();
}

std::vector<std::uint8_t> encodeCell(const CellMsg &m)
{
    ByteWriter w;
    w.u64(m.cell);
    w.blob(m.result);
    return w.take();
}

bool decodeCell(const std::vector<std::uint8_t> &p, CellMsg &out)
{
    ByteReader r(p.data(), p.size());
    out.cell = r.u64();
    if (!r.blob(out.result))
        return false;
    return r.exhausted();
}

std::vector<std::uint8_t> encodeDone(const DoneMsg &m)
{
    ByteWriter w;
    w.u8(m.ok);
    w.u8(m.status);
    w.u64(m.cells);
    w.str(m.error);
    w.u64(m.retryAfterMs);
    return w.take();
}

bool decodeDone(const std::vector<std::uint8_t> &p, DoneMsg &out)
{
    ByteReader r(p.data(), p.size());
    out.ok = r.u8();
    out.status = r.u8();
    out.cells = r.u64();
    out.error = r.str();
    out.retryAfterMs = r.u64();
    if (!r.exhausted())
        return false;
    // An unknown status (a newer server?) or an ok/status mismatch is
    // a malformed reply, not something to half-trust.
    if (!doneStatusValid(out.status))
        return false;
    const bool statusOk =
        out.status == static_cast<std::uint8_t>(DoneStatus::Ok);
    return (out.ok != 0) == statusOk;
}

std::vector<std::uint8_t> encodeStatsReply(const StatsReplyMsg &m)
{
    ByteWriter w;
    w.u64(m.uptimeMicros);
    w.u64(m.requestsRun);
    w.u64(m.requestsSweep);
    w.u64(m.requestsPing);
    w.u64(m.requestsStats);
    w.u64(m.requestsRejected);
    w.u64(m.cellsServed);
    w.u64(m.contextsBuilt);
    w.u64(m.contextsReused);
    w.u64(m.queueDepth);
    w.u64(m.runMicros);
    w.u64(m.sweepMicros);
    w.u64(m.requestsBusy);
    w.u64(m.requestsCancelled);
    w.u64(m.requestsDeadline);
    w.u64(m.activeRequests);
    // ArtifactStore snapshot: kind count first so a reader can reject
    // a build with a different kind set instead of misparsing it.
    w.u64(cache::kArtifactKinds);
    for (const auto &k : m.store.kind) {
        w.u64(k.hits);
        w.u64(k.misses);
        w.u64(k.inserts);
        w.u64(k.bytes);
        w.u64(k.evictions);
    }
    w.u64(m.store.evictions);
    w.u64(m.store.diskHits);
    w.u64(m.store.diskMisses);
    w.u64(m.store.diskWrites);
    w.u64(m.store.diskRejects);
    w.u64(m.store.diskTmpSwept);
    return w.take();
}

bool decodeStatsReply(const std::vector<std::uint8_t> &p,
                      StatsReplyMsg &out)
{
    ByteReader r(p.data(), p.size());
    out.uptimeMicros = r.u64();
    out.requestsRun = r.u64();
    out.requestsSweep = r.u64();
    out.requestsPing = r.u64();
    out.requestsStats = r.u64();
    out.requestsRejected = r.u64();
    out.cellsServed = r.u64();
    out.contextsBuilt = r.u64();
    out.contextsReused = r.u64();
    out.queueDepth = r.u64();
    out.runMicros = r.u64();
    out.sweepMicros = r.u64();
    out.requestsBusy = r.u64();
    out.requestsCancelled = r.u64();
    out.requestsDeadline = r.u64();
    out.activeRequests = r.u64();
    if (r.u64() != cache::kArtifactKinds || !r.ok())
        return false;
    for (auto &k : out.store.kind) {
        k.hits = r.u64();
        k.misses = r.u64();
        k.inserts = r.u64();
        k.bytes = r.u64();
        k.evictions = r.u64();
    }
    out.store.evictions = r.u64();
    out.store.diskHits = r.u64();
    out.store.diskMisses = r.u64();
    out.store.diskWrites = r.u64();
    out.store.diskRejects = r.u64();
    out.store.diskTmpSwept = r.u64();
    return r.exhausted();
}

std::string resolveSocketPath(const std::string &cliValue)
{
    if (!cliValue.empty())
        return cliValue;
    if (const char *env = std::getenv("TG_SERVE_SOCKET"))
        if (*env)
            return env;
    char buf[64];
#ifdef __unix__
    std::snprintf(buf, sizeof buf, "/tmp/tg_serve.%lu.sock",
                  static_cast<unsigned long>(::getuid()));
#else
    std::snprintf(buf, sizeof buf, "/tmp/tg_serve.sock");
#endif
    return std::string(buf);
}

} // namespace serve
} // namespace tg
