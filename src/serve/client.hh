/**
 * @file
 * Blocking client of the persistent sweep server.
 *
 * One Client wraps one connected Unix-domain socket. Calls are
 * synchronous request/response: sweep() streams ServeCell frames
 * into a SweepResult until the terminating ServeDone. The decoded
 * results are bit-identical to a local runSweep() against the same
 * setup — the transport is cache::encodeRunResult's bit-exact codec
 * end to end.
 *
 * Every method returns false on failure with a human-readable reason
 * in *err (when non-null); the connection should then be considered
 * dead (frame streams cannot be resynced).
 *
 * Resilience: connectWithRetry() rides out a server that is still
 * booting (or briefly restarting) with bounded exponential backoff —
 * each attempt must also answer a Ping before the connection counts,
 * so a half-up listener never passes for ready. run()/sweep() can
 * surface the final DoneMsg so callers distinguish Busy (retry
 * later) from request errors and cancellation.
 */

#ifndef TG_SERVE_CLIENT_HH
#define TG_SERVE_CLIENT_HH

#include <string>
#include <vector>

#include "serve/protocol.hh"
#include "sim/sweep.hh"

namespace tg {
namespace serve {

class Client
{
  public:
    Client() = default;
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /** Connect to a server socket. */
    bool connect(const std::string &socketPath, std::string *err);

    /**
     * Connect with bounded exponential backoff (10 ms doubling to a
     * 500 ms ceiling, pid-keyed jitter so a fleet of clients spreads
     * out), pinging after each connect so only a *serving* daemon
     * counts as ready. Gives up once `waitMs` elapses.
     */
    bool connectWithRetry(const std::string &socketPath,
                          std::uint64_t waitMs, std::string *err);

    bool connected() const { return fd >= 0; }
    void close();

    /** Ping -> Pong round trip. */
    bool ping(std::string *err);

    /** Fetch the server's counters snapshot. */
    bool stats(StatsReplyMsg &out, std::string *err);

    /** Ask the server to drain and exit; returns once acknowledged. */
    bool shutdownServer(std::string *err);

    /**
     * Ask the server to cancel this connection's queued or in-flight
     * request. Fire-and-forget at the frame level: the outcome
     * arrives as the original request's DoneMsg (Cancelled), which
     * the in-progress run()/sweep() call observes.
     */
    bool cancel(std::string *err);

    /**
     * Execute one run on the server. A non-null `doneOut` receives
     * the final DoneMsg even on failure, so callers can tell Busy
     * (retry after doneOut->retryAfterMs) from a request error or a
     * cancellation/deadline abort.
     */
    bool run(const RunMsg &request, sim::RunResult &out,
             std::string *err, DoneMsg *doneOut = nullptr);

    /**
     * Execute a sweep on the server. `out` gets the request's
     * benchmark/policy grid with every streamed cell decoded into
     * its canonical slot; with a cell subset the untouched slots stay
     * default-constructed, exactly like a local partial sweep.
     * `doneOut` as in run().
     */
    bool sweep(const SweepMsg &request, sim::SweepResult &out,
               std::string *err, DoneMsg *doneOut = nullptr);

  private:
    /** Send one frame; false when the server is gone. */
    bool send(shard::FrameType type,
              const std::vector<std::uint8_t> &payload,
              std::string *err);

    /** Block until the next frame arrives. */
    bool recv(shard::Frame &out, std::string *err);

    int fd = -1;
    shard::FrameParser parser;
    std::vector<shard::Frame> pending; //!< decoded, not yet consumed
};

} // namespace serve
} // namespace tg

#endif // TG_SERVE_CLIENT_HH
