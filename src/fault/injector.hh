/**
 * @file
 * Fault injector: interprets a FaultScenario against a live run.
 *
 * The injector sits between the simulated ground truth and its
 * consumers. It never perturbs the physics — the thermal RC model,
 * the PDN and the power model keep simulating reality — it corrupts
 * what the *control loop* observes and what the hardware can still
 * do:
 *
 *  - thermal-sensor readings are corrupted in place right after
 *    ThermalSensorBank::readInto() (stuck-at, frozen, drift, dropout,
 *    inflated noise);
 *  - failed (stuck-off) regulators are masked out of the feasible set
 *    handed to Governor::decide(), stuck-on regulators are forced
 *    into every active set, and derated regulators dissipate a
 *    multiple of their nominal conversion loss;
 *  - the voltage-emergency alert line is suppressed or spuriously
 *    raised per the alert fault events.
 *
 * Determinism: all mutable state advances monotonically with
 * simulation time through advanceTo(), and every stochastic
 * corruption draws from an Rng that is a pure function of
 * (scenario seed, run seed, epoch, target) — never of call order —
 * so a faulted run is bit-identical across worker counts, batch
 * widths and re-runs.
 */

#ifndef TG_FAULT_INJECTOR_HH
#define TG_FAULT_INJECTOR_HH

#include <cstdint>
#include <vector>

#include "common/units.hh"
#include "fault/scenario.hh"

namespace tg {
namespace fault {

/** Live interpretation of one FaultScenario during one run. */
class FaultInjector
{
  public:
    /**
     * @param scenario  schedule to interpret (referenced, not copied;
     *                  must outlive the injector)
     * @param vr_domain owning domain id per chip VR index (defines
     *                  the VR population and the domain count)
     * @param n_sensors thermal-sensor count (one per VR here)
     * @param run_seed  per-run fork for the stochastic corruptions
     */
    FaultInjector(const FaultScenario &scenario,
                  std::vector<int> vr_domain, int n_sensors,
                  std::uint64_t run_seed);

    /**
     * Advance the active-event state to time `now` [s]. Faults are
     * sampled at decision granularity: the caller invokes this once
     * per decision epoch, and the per-VR masks stay fixed until the
     * next call. Time must be monotonically non-decreasing.
     *
     * Degradation guarantee (last-survivor rule): if every VR of a
     * domain would be stuck-off simultaneously, the lowest-indexed
     * one is kept available (with a one-time warning) so the domain
     * is never left entirely unsupplied — total-domain loss is a
     * chip-death scenario outside this model's scope.
     */
    void advanceTo(Seconds now);

    /** Any fault event active as of the last advanceTo(). */
    bool anyActive() const { return activeCount > 0; }
    /** Any regulator fault active as of the last advanceTo(). */
    bool anyVrFault() const { return vrFaultCount > 0; }

    /**
     * Corrupt a sensor reading vector in place. `epoch` indexes the
     * decision point (for the per-epoch noise streams); `now` is the
     * read time used by drift faults.
     */
    void corruptSensors(Seconds now, long epoch,
                        std::vector<Celsius> &readings);

    /** Whether chip VR `vr` is stuck-off (failed, unavailable). */
    bool vrFailed(int vr) const
    {
        return failedNow[static_cast<std::size_t>(vr)];
    }

    /** Whether chip VR `vr` is stuck-on (ungateable). */
    bool vrStuckOn(int vr) const
    {
        return stuckOnNow[static_cast<std::size_t>(vr)];
    }

    /** Conversion-loss multiplier of chip VR `vr` (>= 1). */
    double vrLossMultiplier(int vr) const
    {
        return lossMult[static_cast<std::size_t>(vr)];
    }

    /**
     * Apply the active alert faults to a predicted emergency alert
     * for `domain` at decision `decision`. Returns the perturbed
     * alert; `suppressed`/`injected` (may be null) are incremented
     * when a true alert was masked or a false one raised.
     */
    bool perturbAlert(int domain, long decision, bool alert,
                      long *suppressed, long *injected) const;

    /**
     * Onset time of the earliest *active* sensor fault on `sensor`,
     * or a negative value when none is active. Drives the
     * detection-latency accounting in RunResult.
     */
    Seconds sensorFaultOnset(int sensor) const
    {
        return sensorOnset[static_cast<std::size_t>(sensor)];
    }

    int vrCount() const { return static_cast<int>(vrDomain.size()); }
    int sensorCount() const { return nSensors; }
    int domainCount() const { return nDomains; }

  private:
    const FaultScenario &scen;
    std::vector<int> vrDomain;  //!< chip VR -> owning domain
    int nSensors;
    int nDomains;
    std::uint64_t noiseSeed;  //!< fork for stochastic corruptions

    Seconds clock = -1.0;  //!< last advanceTo() time
    int activeCount = 0;   //!< events active at `clock`
    int vrFaultCount = 0;  //!< VR events active at `clock`

    std::vector<char> activeEvent;     //!< per scenario event
    std::vector<double> frozenLatch;   //!< per event: latched value
    std::vector<char> frozenValid;     //!< per event: latch filled
    std::vector<char> failedNow;       //!< per chip VR
    std::vector<char> stuckOnNow;      //!< per chip VR
    std::vector<double> lossMult;      //!< per chip VR
    std::vector<Seconds> sensorOnset;  //!< per sensor; < 0 = none
    std::vector<char> survivorWarned;  //!< per domain
};

} // namespace fault
} // namespace tg

#endif // TG_FAULT_INJECTOR_HH
