#include "fault/scenario.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"

namespace tg {
namespace fault {

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::SensorStuckAt: return "sensor-stuck-at";
      case FaultKind::SensorFrozen: return "sensor-frozen";
      case FaultKind::SensorDrift: return "sensor-drift";
      case FaultKind::SensorDropout: return "sensor-dropout";
      case FaultKind::SensorNoisy: return "sensor-noisy";
      case FaultKind::VrStuckOff: return "vr-stuck-off";
      case FaultKind::VrStuckOn: return "vr-stuck-on";
      case FaultKind::VrDerated: return "vr-derated";
      case FaultKind::AlertMissed: return "alert-missed";
      case FaultKind::AlertSpurious: return "alert-spurious";
    }
    panic("unknown fault kind");
}

bool
isSensorFault(FaultKind kind)
{
    switch (kind) {
      case FaultKind::SensorStuckAt:
      case FaultKind::SensorFrozen:
      case FaultKind::SensorDrift:
      case FaultKind::SensorDropout:
      case FaultKind::SensorNoisy:
        return true;
      default:
        return false;
    }
}

bool
isVrFault(FaultKind kind)
{
    return kind == FaultKind::VrStuckOff ||
           kind == FaultKind::VrStuckOn ||
           kind == FaultKind::VrDerated;
}

bool
isAlertFault(FaultKind kind)
{
    return kind == FaultKind::AlertMissed ||
           kind == FaultKind::AlertSpurious;
}

FaultScenario &
FaultScenario::add(const FaultEvent &event)
{
    TG_ASSERT(event.target >= 0, "fault target must be non-negative");
    TG_ASSERT(event.start >= 0.0, "fault start must be non-negative");
    TG_ASSERT(event.duration > 0.0, "fault duration must be positive");
    if (event.kind == FaultKind::VrDerated)
        TG_ASSERT(event.magnitude >= 1.0,
                  "a derated VR needs a loss multiplier >= 1, got ",
                  event.magnitude);
    if (event.kind == FaultKind::SensorNoisy)
        TG_ASSERT(event.magnitude >= 0.0,
                  "noise sigma must be non-negative");
    if (isAlertFault(event.kind))
        TG_ASSERT(event.magnitude <= 1.0,
                  "alert fault probability must be <= 1");
    list.push_back(event);
    // Keep the schedule sorted by onset (stable so the insertion
    // order breaks ties deterministically).
    std::stable_sort(list.begin(), list.end(),
                     [](const FaultEvent &a, const FaultEvent &b) {
                         return a.start < b.start;
                     });
    return *this;
}

std::vector<FaultEvent>
FaultScenario::eventsFor(FaultKind kind, int target) const
{
    std::vector<FaultEvent> out;
    for (const auto &e : list)
        if (e.kind == kind && e.target == target)
            out.push_back(e);
    return out;
}

FaultScenario
randomScenario(std::uint64_t seed, const RandomScenarioSpec &spec)
{
    TG_ASSERT(spec.horizon > 0.0, "scenario horizon must be positive");
    TG_ASSERT(spec.faultsPerSecond >= 0.0, "negative fault rate");

    FaultScenario scenario(seed);
    if (spec.faultsPerSecond <= 0.0)
        return scenario;
    TG_ASSERT(spec.sensors > 0 || spec.vrs > 0 || spec.domains > 0,
              "random scenario needs at least one target population");

    Rng rng(mixSeed(seed, 0xfa17ull));

    // Expected count lambda = rate * horizon, drawn as a small
    // Poisson via inversion (lambda is tiny for realistic rates).
    double lambda = spec.faultsPerSecond * spec.horizon;
    int count = 0;
    {
        double p = std::exp(-lambda);
        double cdf = p;
        double u = rng.uniform();
        while (u > cdf && count < 1000) {
            ++count;
            p *= lambda / count;
            cdf += p;
        }
    }

    static const FaultKind sensor_kinds[] = {
        FaultKind::SensorStuckAt, FaultKind::SensorFrozen,
        FaultKind::SensorDrift, FaultKind::SensorDropout,
        FaultKind::SensorNoisy,
    };
    static const FaultKind vr_kinds[] = {
        FaultKind::VrStuckOff, FaultKind::VrStuckOn,
        FaultKind::VrDerated,
    };
    static const FaultKind alert_kinds[] = {
        FaultKind::AlertMissed, FaultKind::AlertSpurious,
    };

    for (int i = 0; i < count; ++i) {
        FaultEvent e;
        // Category mix: 1/2 sensor, 1/3 regulator, 1/6 alert —
        // re-rolled into an available category when the preferred
        // one has no targets.
        double cat = rng.uniform();
        bool want_sensor = cat < 0.5 && spec.sensors > 0;
        bool want_vr = !want_sensor && cat < 5.0 / 6.0 && spec.vrs > 0;
        bool want_alert = !want_sensor && !want_vr && spec.domains > 0;
        if (!want_sensor && !want_vr && !want_alert) {
            want_sensor = spec.sensors > 0;
            want_vr = !want_sensor && spec.vrs > 0;
            want_alert = !want_sensor && !want_vr;
        }

        if (want_sensor) {
            e.kind = sensor_kinds[rng.uniformInt(0, 4)];
            e.target = rng.uniformInt(0, spec.sensors - 1);
        } else if (want_vr) {
            e.kind = vr_kinds[rng.uniformInt(0, 2)];
            e.target = rng.uniformInt(0, spec.vrs - 1);
        } else {
            e.kind = alert_kinds[rng.uniformInt(0, 1)];
            e.target = rng.uniformInt(0, spec.domains - 1);
        }

        e.start = rng.uniform(0.0, spec.horizon);
        // A third of the faults are permanent (hard failures); the
        // rest are transient with an exponential-ish duration.
        if (rng.uniform() < 1.0 / 3.0)
            e.duration = kForever;
        else
            e.duration = std::max(
                1e-6, -spec.meanDuration * std::log(rng.uniform(
                          std::numeric_limits<double>::min(), 1.0)));

        switch (e.kind) {
          case FaultKind::SensorStuckAt:
            e.magnitude = rng.uniform(20.0, 140.0);  // plausible degC
            break;
          case FaultKind::SensorDrift:
            e.magnitude = rng.uniform(-4e3, 4e3);  // degC/s at ms scale
            break;
          case FaultKind::SensorNoisy:
            e.magnitude = rng.uniform(1.0, 8.0);
            break;
          case FaultKind::VrDerated:
            e.magnitude = rng.uniform(1.2, 3.0);
            break;
          case FaultKind::AlertMissed:
          case FaultKind::AlertSpurious:
            e.magnitude = 1.0;
            break;
          default:
            break;  // frozen/dropout/stuck-off/stuck-on: no magnitude
        }
        scenario.add(e);
    }
    return scenario;
}

} // namespace fault
} // namespace tg
