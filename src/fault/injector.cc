#include "fault/injector.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"
#include "common/rng.hh"

namespace tg {
namespace fault {

FaultInjector::FaultInjector(const FaultScenario &scenario,
                             std::vector<int> vr_domain, int n_sensors,
                             std::uint64_t run_seed)
    : scen(scenario), vrDomain(std::move(vr_domain)),
      nSensors(n_sensors),
      noiseSeed(mixSeed(scenario.seed(), run_seed))
{
    TG_ASSERT(!vrDomain.empty(), "injector needs the VR population");
    TG_ASSERT(nSensors >= 1, "injector needs at least one sensor");
    nDomains = 1 + *std::max_element(vrDomain.begin(), vrDomain.end());

    for (const auto &e : scen.events()) {
        if (isSensorFault(e.kind))
            TG_ASSERT(e.target < nSensors, "sensor fault target ",
                      e.target, " outside [0, ", nSensors, ")");
        else if (isVrFault(e.kind))
            TG_ASSERT(e.target < static_cast<int>(vrDomain.size()),
                      "VR fault target ", e.target, " outside [0, ",
                      vrDomain.size(), ")");
        else
            TG_ASSERT(e.target < nDomains, "alert fault target ",
                      e.target, " outside [0, ", nDomains, ")");
    }

    activeEvent.assign(scen.events().size(), 0);
    frozenLatch.assign(scen.events().size(), 0.0);
    frozenValid.assign(scen.events().size(), 0);
    failedNow.assign(vrDomain.size(), 0);
    stuckOnNow.assign(vrDomain.size(), 0);
    lossMult.assign(vrDomain.size(), 1.0);
    sensorOnset.assign(static_cast<std::size_t>(nSensors), -1.0);
    survivorWarned.assign(static_cast<std::size_t>(nDomains), 0);
}

void
FaultInjector::advanceTo(Seconds now)
{
    TG_ASSERT(now >= clock, "injector time must be monotonic");
    clock = now;

    activeCount = 0;
    vrFaultCount = 0;
    std::fill(failedNow.begin(), failedNow.end(), 0);
    std::fill(stuckOnNow.begin(), stuckOnNow.end(), 0);
    std::fill(lossMult.begin(), lossMult.end(), 1.0);
    std::fill(sensorOnset.begin(), sensorOnset.end(), -1.0);

    const auto &events = scen.events();
    for (std::size_t i = 0; i < events.size(); ++i) {
        const FaultEvent &e = events[i];
        bool active = e.activeAt(now);
        activeEvent[i] = active ? 1 : 0;
        if (!active) {
            // A frozen fault that lapsed re-arms: a later window of
            // the same event latches afresh.
            frozenValid[i] = 0;
            continue;
        }
        ++activeCount;
        std::size_t t = static_cast<std::size_t>(e.target);
        switch (e.kind) {
          case FaultKind::VrStuckOff:
            failedNow[t] = 1;
            ++vrFaultCount;
            break;
          case FaultKind::VrStuckOn:
            stuckOnNow[t] = 1;
            ++vrFaultCount;
            break;
          case FaultKind::VrDerated:
            lossMult[t] = std::max(lossMult[t], e.magnitude);
            ++vrFaultCount;
            break;
          default:
            if (isSensorFault(e.kind) &&
                (sensorOnset[t] < 0.0 || e.start < sensorOnset[t]))
                sensorOnset[t] = e.start;
            break;
        }
    }

    // A VR cannot be both: a failed (stuck-off) regulator is dead, so
    // stuck-off wins over stuck-on and derating.
    for (std::size_t v = 0; v < failedNow.size(); ++v)
        if (failedNow[v]) {
            stuckOnNow[v] = 0;
            lossMult[v] = 1.0;
        }

    // Last-survivor rule: never let a whole domain go dark.
    for (int d = 0; d < nDomains; ++d) {
        int first = -1;
        bool any_alive = false;
        for (std::size_t v = 0; v < vrDomain.size(); ++v) {
            if (vrDomain[v] != d)
                continue;
            if (first < 0)
                first = static_cast<int>(v);
            if (!failedNow[v]) {
                any_alive = true;
                break;
            }
        }
        if (!any_alive && first >= 0) {
            failedNow[static_cast<std::size_t>(first)] = 0;
            if (!survivorWarned[static_cast<std::size_t>(d)]) {
                warn("fault scenario would kill every VR of domain ",
                     d, "; keeping VR ", first,
                     " alive (last-survivor rule)");
                survivorWarned[static_cast<std::size_t>(d)] = 1;
            }
        }
    }
}

void
FaultInjector::corruptSensors(Seconds now, long epoch,
                              std::vector<Celsius> &readings)
{
    TG_ASSERT(static_cast<int>(readings.size()) == nSensors,
              "sensor corruption size mismatch");
    const auto &events = scen.events();
    for (std::size_t i = 0; i < events.size(); ++i) {
        if (!activeEvent[i])
            continue;
        const FaultEvent &e = events[i];
        if (!isSensorFault(e.kind))
            continue;
        Celsius &r = readings[static_cast<std::size_t>(e.target)];
        switch (e.kind) {
          case FaultKind::SensorStuckAt:
            r = e.magnitude;
            break;
          case FaultKind::SensorFrozen:
            // Latch the first reading seen while active (the last
            // pre-fault value at decision granularity) and repeat it.
            if (!frozenValid[i]) {
                frozenLatch[i] = r;
                frozenValid[i] = 1;
            }
            r = frozenLatch[i];
            break;
          case FaultKind::SensorDrift:
            r += e.magnitude * (now - e.start);
            break;
          case FaultKind::SensorDropout:
            r = std::numeric_limits<double>::quiet_NaN();
            break;
          case FaultKind::SensorNoisy: {
            // Stream keyed by (scenario x run seed, epoch, event,
            // target): independent of call order and of every other
            // corruption.
            Rng rng(mixSeed(
                mixSeed(noiseSeed, static_cast<std::uint64_t>(epoch)),
                mixSeed(static_cast<std::uint64_t>(i),
                        static_cast<std::uint64_t>(e.target))));
            r += rng.gaussian(0.0, e.magnitude);
            break;
          }
          default:
            break;
        }
    }
}

bool
FaultInjector::perturbAlert(int domain, long decision, bool alert,
                            long *suppressed, long *injected) const
{
    const auto &events = scen.events();
    for (std::size_t i = 0; i < events.size(); ++i) {
        if (!activeEvent[i])
            continue;
        const FaultEvent &e = events[i];
        if (!isAlertFault(e.kind) || e.target != domain)
            continue;
        double p = e.magnitude <= 0.0 ? 1.0 : e.magnitude;
        bool fires = true;
        if (p < 1.0) {
            Rng rng(mixSeed(
                mixSeed(noiseSeed,
                        static_cast<std::uint64_t>(decision)),
                mixSeed(0xa1e7ull, static_cast<std::uint64_t>(i))));
            fires = rng.bernoulli(p);
        }
        if (!fires)
            continue;
        if (e.kind == FaultKind::AlertMissed && alert) {
            alert = false;
            if (suppressed)
                ++*suppressed;
        } else if (e.kind == FaultKind::AlertSpurious && !alert) {
            alert = true;
            if (injected)
                ++*injected;
        }
    }
    return alert;
}

} // namespace fault
} // namespace tg
