/**
 * @file
 * Deterministic fault scenarios.
 *
 * A FaultScenario is a schedule of timed fault events against the
 * hardware the control loop depends on: the thermal sensors the
 * practical policies steer on (paper Section 6.3), the population of
 * component regulators the governor gates, and the voltage-emergency
 * alert line behind the *VT policies. Scenarios are plain data — a
 * sorted list of (kind, target, start, duration, magnitude) events
 * plus a seed from which every stochastic corruption (inflated sensor
 * noise, probabilistic alert faults) forks — so a scenario replays
 * bit-identically at any worker count and batch width, and two runs
 * of the same (scenario, benchmark, policy) agree exactly.
 *
 * The FaultInjector (fault/injector.hh) interprets a scenario against
 * a live simulation; randomScenario() draws one from a rate
 * specification for the fault-rate sweeps.
 */

#ifndef TG_FAULT_SCENARIO_HH
#define TG_FAULT_SCENARIO_HH

#include <cstdint>
#include <limits>
#include <vector>

#include "common/units.hh"

namespace tg {
namespace fault {

/** The fault taxonomy (see DESIGN.md "Fault model"). */
enum class FaultKind
{
    // --- thermal-sensor faults (target = chip sensor/VR index) ----
    SensorStuckAt, //!< reads `magnitude` [degC] regardless of truth
    SensorFrozen,  //!< repeats the last pre-fault reading forever
    SensorDrift,   //!< offset growing at `magnitude` [degC/s]
    SensorDropout, //!< delivers no reading (NaN) while active
    SensorNoisy,   //!< adds gaussian noise, sigma = `magnitude` [degC]

    // --- regulator faults (target = chip VR index) -----------------
    VrStuckOff, //!< failed open: cannot be activated at all
    VrStuckOn,  //!< failed closed: cannot be gated off
    VrDerated,  //!< conversion loss multiplied by `magnitude` (> 1)

    // --- emergency-predictor faults (target = domain id) -----------
    AlertMissed,  //!< suppresses alerts with prob `magnitude` (0 -> 1)
    AlertSpurious, //!< injects alerts with prob `magnitude` (0 -> 1)
};

/** Display name of a fault kind ("sensor-stuck-at", ...). */
const char *faultKindName(FaultKind kind);

/** True for the thermal-sensor fault kinds. */
bool isSensorFault(FaultKind kind);
/** True for the regulator fault kinds. */
bool isVrFault(FaultKind kind);
/** True for the emergency-predictor fault kinds. */
bool isAlertFault(FaultKind kind);

/** Event duration meaning "until the end of the run". */
constexpr Seconds kForever = std::numeric_limits<double>::infinity();

/** One timed fault event. */
struct FaultEvent
{
    FaultKind kind = FaultKind::SensorStuckAt;
    /** Sensor index, chip VR index, or domain id (per kind). */
    int target = 0;
    Seconds start = 0.0;       //!< onset time [s]
    Seconds duration = kForever; //!< active span; kForever = permanent
    /**
     * Kind-specific magnitude: stuck-at value [degC], drift rate
     * [degC/s], noise sigma [degC], loss multiplier, or alert fault
     * probability (<= 0 means 1, i.e. every alert affected).
     */
    double magnitude = 0.0;

    /** One past the last active instant (kForever-safe). */
    Seconds end() const { return start + duration; }
    /** Whether the event is active at time `t`. */
    bool activeAt(Seconds t) const { return t >= start && t < end(); }
};

/**
 * A deterministic schedule of fault events.
 *
 * The scenario is immutable once handed to a run; the injector keeps
 * all mutable interpretation state (frozen-value latches, active
 * masks) on its side, so one scenario may back many concurrent runs.
 */
class FaultScenario
{
  public:
    /** @param seed fork point for the scenario's stochastic streams */
    explicit FaultScenario(std::uint64_t seed = 0x7fa17ull)
        : seedValue(seed)
    {
    }

    /** Append one event (validated); returns *this for chaining. */
    FaultScenario &add(const FaultEvent &event);

    const std::vector<FaultEvent> &events() const { return list; }
    bool empty() const { return list.empty(); }
    std::uint64_t seed() const { return seedValue; }

    /** Events of `kind` whose target equals `target`. */
    std::vector<FaultEvent> eventsFor(FaultKind kind, int target) const;

  private:
    std::uint64_t seedValue;
    std::vector<FaultEvent> list;
};

/** Rate specification for randomScenario(). */
struct RandomScenarioSpec
{
    /** Scenario horizon [s]: events start uniformly in [0, horizon). */
    Seconds horizon = 3e-3;
    /** Expected fault events per simulated second (all kinds). */
    double faultsPerSecond = 0.0;
    /** Mean event duration [s]; a third of the draws are permanent. */
    Seconds meanDuration = 1e-3;
    int sensors = 0;  //!< sensor count (sensor-fault targets)
    int vrs = 0;      //!< chip VR count (regulator-fault targets)
    int domains = 0;  //!< domain count (alert-fault targets)
};

/**
 * Draw a random scenario from a rate specification. Deterministic in
 * (seed, spec): the event count, kinds, targets, times and magnitudes
 * are all functions of the seed. Kind mix: half sensor faults, a
 * third regulator faults, the rest alert faults (skipping categories
 * whose target count is zero).
 */
FaultScenario randomScenario(std::uint64_t seed,
                             const RandomScenarioSpec &spec);

} // namespace fault
} // namespace tg

#endif // TG_FAULT_SCENARIO_HH
