/**
 * @file
 * Precomputed per-run dynamic-power trace.
 *
 * The governor loop needs every frame's dynamic power twice: once in
 * the per-frame thermal/efficiency accounting and once aggregated per
 * decision epoch (the provisioning input of the gating policies).
 * Recomputing density * area * activity per consumer doubles the
 * work and allocates a vector per frame; a PowerTrace instead maps
 * the whole activity trace through the power model ONCE into a flat
 * row-major `frames x blocks` buffer and reduces the per-epoch mean
 * and peak rows at build time. The run loop then only reads rows.
 *
 * Determinism: every stored value is produced by the exact
 * expressions the per-frame path used (PowerModel::dynamicFrameInto
 * and the mean/peak fold in frame order), so replacing on-the-fly
 * evaluation with trace reads is bit-identical.
 */

#ifndef TG_POWER_TRACE_HH
#define TG_POWER_TRACE_HH

#include <vector>

#include "common/units.hh"
#include "power/model.hh"
#include "uarch/activity.hh"

namespace tg {
namespace power {

/** Flat dynamic-power trace with per-epoch reductions. */
class PowerTrace
{
  public:
    PowerTrace() = default;

    /** Build for a whole activity trace; see rebuild(). */
    PowerTrace(const PowerModel &pm,
               const uarch::ActivityTrace &activity,
               int frames_per_epoch)
    {
        rebuild(pm, activity, frames_per_epoch);
    }

    /**
     * (Re)build from an activity trace, reusing the existing buffers
     * where possible (a Simulation keeps one PowerTrace across runs).
     *
     * @param frames_per_epoch frames per gating decision epoch; the
     *        last epoch may be partial and is reduced over the frames
     *        it actually has
     */
    void rebuild(const PowerModel &pm,
                 const uarch::ActivityTrace &activity,
                 int frames_per_epoch);

    std::size_t frames() const { return nFrames; }
    std::size_t blocks() const { return nBlocks; }
    long epochs() const { return nEpochs; }
    int framesPerEpoch() const { return fpe; }

    /** Per-block dynamic power of frame `f` [W] (row of `blocks()`). */
    const Watts *frame(std::size_t f) const
    {
        return dyn.data() + f * nBlocks;
    }

    /** Per-block mean dynamic power over epoch `e` [W]. */
    const Watts *epochMean(long e) const
    {
        return meanRows.data() +
               static_cast<std::size_t>(e) * nBlocks;
    }

    /** Per-block peak dynamic power over epoch `e` [W]. */
    const Watts *epochPeak(long e) const
    {
        return peakRows.data() +
               static_cast<std::size_t>(e) * nBlocks;
    }

    /**
     * Per-block provisioning row of epoch `e` [W]: the average of the
     * epoch mean and the epoch peak, so the gating policies provision
     * n_on for the epoch's demand excursions, not just its mean.
     */
    const Watts *epochDynamic(long e) const
    {
        return provisionRows.data() +
               static_cast<std::size_t>(e) * nBlocks;
    }

  private:
    std::size_t nFrames = 0;
    std::size_t nBlocks = 0;
    long nEpochs = 0;
    int fpe = 1;

    std::vector<Watts> dyn;           //!< nFrames x nBlocks row-major
    std::vector<Watts> meanRows;      //!< nEpochs x nBlocks
    std::vector<Watts> peakRows;      //!< nEpochs x nBlocks
    std::vector<Watts> provisionRows; //!< nEpochs x nBlocks
};

} // namespace power
} // namespace tg

#endif // TG_POWER_TRACE_HH
