#include "power/model.hh"

#include <cmath>

#include "common/logging.hh"

namespace tg {
namespace power {

using floorplan::UnitKind;

double
PowerModel::densityFor(UnitKind kind) const
{
    switch (kind) {
      case UnitKind::Ifu: return prm.densityIfu;
      case UnitKind::Isu: return prm.densityIsu;
      case UnitKind::Exu: return prm.densityExu;
      case UnitKind::Lsu: return prm.densityLsu;
      case UnitKind::L2: return prm.densityL2;
      case UnitKind::L3: return prm.densityL3;
      case UnitKind::Noc: return prm.densityNoc;
      case UnitKind::Mc: return prm.densityMc;
    }
    panic("unknown unit kind");
}

PowerModel::PowerModel(const floorplan::Chip &chip, PowerParams params)
    : chipRef(chip), prm(params)
{
    const auto &blocks = chip.plan.blocks();
    peakDyn.resize(blocks.size());
    leakRef.resize(blocks.size());

    for (std::size_t i = 0; i < blocks.size(); ++i) {
        peakDyn[i] = densityFor(blocks[i].kind) * blocks[i].rect.area();
        maxDynTotal += peakDyn[i];
    }

    // Calibrate leakage: at a uniform 80 degC the static share of
    // (full dynamic + static) equals staticShareAt80C.
    double share = prm.staticShareAt80C;
    TG_ASSERT(share > 0.0 && share < 1.0, "bad static share");
    Watts leak_total_80 = share / (1.0 - share) * maxDynTotal;

    // Distribute by area with a logic/memory weighting.
    double weighted_area = 0.0;
    for (const auto &b : blocks) {
        double w = floorplan::isLogicUnit(b.kind)
                       ? prm.logicLeakageBoost
                       : prm.memoryLeakageDerate;
        weighted_area += w * b.rect.area();
    }
    for (std::size_t i = 0; i < blocks.size(); ++i) {
        double w = floorplan::isLogicUnit(blocks[i].kind)
                       ? prm.logicLeakageBoost
                       : prm.memoryLeakageDerate;
        leakRef[i] = leak_total_80 * w * blocks[i].rect.area() /
                     weighted_area;
    }
}

std::vector<Watts>
PowerModel::dynamicFrame(const uarch::ActivityFrame &frame) const
{
    std::vector<Watts> out;
    dynamicFrameInto(frame, out);
    return out;
}

void
PowerModel::dynamicFrameInto(const uarch::ActivityFrame &frame,
                             std::vector<Watts> &out) const
{
    TG_ASSERT(frame.block.size() == peakDyn.size(),
              "activity frame block count mismatch");
    out.resize(peakDyn.size());
    for (std::size_t i = 0; i < peakDyn.size(); ++i)
        out[i] = peakDyn[i] * frame.block[i];
}

Watts
PowerModel::leakage(int b, Celsius t) const
{
    double e = (t - prm.leakageCalibTemp) / prm.leakageDoubling;
    return leakRef.at(b) * std::exp2(e);
}

std::vector<Watts>
PowerModel::leakageFrame(const std::vector<Celsius> &temps) const
{
    std::vector<Watts> out;
    leakageFrameInto(temps, out);
    return out;
}

void
PowerModel::leakageFrameInto(const std::vector<Celsius> &temps,
                             std::vector<Watts> &out) const
{
    TG_ASSERT(temps.size() == leakRef.size(),
              "temperature vector block count mismatch");
    out.resize(leakRef.size());
    for (std::size_t i = 0; i < leakRef.size(); ++i)
        out[i] = leakage(static_cast<int>(i), temps[i]);
}

Watts
PowerModel::uniformLeakage(Celsius t) const
{
    Watts sum = 0.0;
    for (std::size_t i = 0; i < leakRef.size(); ++i)
        sum += leakage(static_cast<int>(i), t);
    return sum;
}

Amperes
PowerModel::domainCurrent(const std::vector<Watts> &block_power,
                          int domain) const
{
    const auto &domains = chipRef.plan.domains();
    TG_ASSERT(domain >= 0 &&
                  domain < static_cast<int>(domains.size()),
              "bad domain id ", domain);
    Watts p = 0.0;
    for (int b : domains[static_cast<std::size_t>(domain)].blocks)
        p += block_power[static_cast<std::size_t>(b)];
    return p / chipRef.params.vdd;
}

} // namespace power
} // namespace tg
