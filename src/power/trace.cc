#include "power/trace.hh"

#include <algorithm>

#include "common/logging.hh"

namespace tg {
namespace power {

void
PowerTrace::rebuild(const PowerModel &pm,
                    const uarch::ActivityTrace &activity,
                    int frames_per_epoch)
{
    TG_ASSERT(!activity.frames.empty(), "empty activity trace");
    TG_ASSERT(frames_per_epoch >= 1, "need at least one frame/epoch");

    nFrames = activity.frames.size();
    nBlocks = activity.frames[0].block.size();
    fpe = frames_per_epoch;
    nEpochs = (static_cast<long>(nFrames) + fpe - 1) / fpe;

    dyn.resize(nFrames * nBlocks);
    std::size_t n_epoch_rows =
        static_cast<std::size_t>(nEpochs) * nBlocks;
    meanRows.assign(n_epoch_rows, 0.0);
    peakRows.assign(n_epoch_rows, 0.0);
    provisionRows.resize(n_epoch_rows);

    // One pass: map each frame through the power model into its row,
    // folding the epoch mean/peak as rows complete (in frame order,
    // so the reduction matches a per-frame reference fold exactly).
    for (std::size_t f = 0; f < nFrames; ++f) {
        const auto &frame = activity.frames[f];
        TG_ASSERT(frame.block.size() == nBlocks,
                  "activity frame block count mismatch");
        Watts *row = dyn.data() + f * nBlocks;
        for (std::size_t b = 0; b < nBlocks; ++b)
            row[b] = pm.peakDynamic(static_cast<int>(b)) *
                     frame.block[b];

        std::size_t e = f / static_cast<std::size_t>(fpe);
        Watts *mean = meanRows.data() + e * nBlocks;
        Watts *peak = peakRows.data() + e * nBlocks;
        for (std::size_t b = 0; b < nBlocks; ++b) {
            mean[b] += row[b];
            peak[b] = std::max(peak[b], row[b]);
        }
    }

    for (long e = 0; e < nEpochs; ++e) {
        std::size_t f0 = static_cast<std::size_t>(e) *
                         static_cast<std::size_t>(fpe);
        std::size_t f1 = std::min(
            nFrames, f0 + static_cast<std::size_t>(fpe));
        double inv = 1.0 / static_cast<double>(f1 - f0);
        std::size_t off = static_cast<std::size_t>(e) * nBlocks;
        for (std::size_t b = 0; b < nBlocks; ++b) {
            // Same expression (and evaluation order) as the run
            // loop's historical per-epoch fold: 0.5 * (mean + peak)
            // with mean = sum * inv.
            provisionRows[off + b] =
                0.5 * (meanRows[off + b] * inv + peakRows[off + b]);
            meanRows[off + b] *= inv;
        }
    }
}

} // namespace power
} // namespace tg
