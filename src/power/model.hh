/**
 * @file
 * Chip power model (the McPAT stand-in).
 *
 * Dynamic power: every unit kind has a peak power density [W/mm^2]
 * reached at activity 1.0; a block's dynamic power is
 * density * area * activity. The densities put the hotspots on the
 * EXUs and LSUs, matching the paper's heat maps (Fig. 12b).
 *
 * Static power: exponential in temperature with a doubling constant
 * of ~20 degC, calibrated (as the paper calibrates its MR2/McPAT
 * setup) so that the static share of total chip power does not exceed
 * 30% at 80 degC.
 */

#ifndef TG_POWER_MODEL_HH
#define TG_POWER_MODEL_HH

#include <vector>

#include "common/units.hh"
#include "floorplan/power8.hh"
#include "uarch/activity.hh"

namespace tg {
namespace power {

/** Tunable power-model parameters. */
struct PowerParams
{
    /** Peak dynamic power density per unit kind [W/mm^2]. */
    double densityIfu = 0.35;
    double densityIsu = 0.42;
    double densityExu = 0.58;
    double densityLsu = 0.52;
    double densityL2 = 0.12;
    double densityL3 = 0.10;
    double densityNoc = 0.36;
    double densityMc = 0.26;

    /** Static share of total chip power at the calibration point. */
    double staticShareAt80C = 0.28;
    /** Leakage calibration temperature [degC]. */
    Celsius leakageCalibTemp = 80.0;
    /** Temperature increase that doubles leakage [degC]. */
    Celsius leakageDoubling = 12.0;
    /** Leakage density multiplier for logic vs. memory blocks. */
    double logicLeakageBoost = 1.3;
    double memoryLeakageDerate = 0.85;
};

/**
 * Per-chip power model: converts activity frames to dynamic power and
 * block temperatures to leakage power.
 */
class PowerModel
{
  public:
    /**
     * Build and calibrate for `chip`. Leakage density is solved so
     * that uniform-80degC leakage equals
     * staticShareAt80C / (1 - staticShareAt80C) times the full-
     * activity dynamic power.
     */
    PowerModel(const floorplan::Chip &chip, PowerParams params = {});

    /** Peak dynamic power of block `b` (activity = 1) [W]. */
    Watts peakDynamic(int b) const { return peakDyn.at(b); }

    /** Chip dynamic power with every block at activity 1 [W]. */
    Watts maxDynamic() const { return maxDynTotal; }

    /** Dynamic power of every block for one activity frame [W]. */
    std::vector<Watts>
    dynamicFrame(const uarch::ActivityFrame &frame) const;

    /**
     * dynamicFrame() into a caller-owned buffer (resized to the block
     * count): the per-frame run loop and the PowerTrace builder reuse
     * one buffer instead of allocating per frame.
     */
    void dynamicFrameInto(const uarch::ActivityFrame &frame,
                          std::vector<Watts> &out) const;

    /** Leakage power of block `b` at temperature `t` [W]. */
    Watts leakage(int b, Celsius t) const;

    /** Leakage of every block given per-block temperatures [W]. */
    std::vector<Watts>
    leakageFrame(const std::vector<Celsius> &temps) const;

    /** leakageFrame() into a caller-owned (resized) buffer. */
    void leakageFrameInto(const std::vector<Celsius> &temps,
                          std::vector<Watts> &out) const;

    /** Chip-wide leakage at a uniform temperature [W]. */
    Watts uniformLeakage(Celsius t) const;

    /**
     * Load current a Vdd-domain draws from its regulators for the
     * given per-block total power [A] (I = P / Vdd).
     */
    Amperes domainCurrent(const std::vector<Watts> &block_power,
                          int domain) const;

    const PowerParams &params() const { return prm; }

  private:
    const floorplan::Chip &chipRef;
    PowerParams prm;
    std::vector<Watts> peakDyn;     //!< per-block peak dynamic power
    std::vector<Watts> leakRef;     //!< per-block leakage at 80 degC
    Watts maxDynTotal = 0.0;

    double densityFor(floorplan::UnitKind kind) const;
};

} // namespace power
} // namespace tg

#endif // TG_POWER_MODEL_HH
