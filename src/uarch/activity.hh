/**
 * @file
 * Chip-wide microarchitectural activity traces.
 *
 * An ActivityTrace holds, for every frame of a run, the activity
 * factor (0..1) of every floorplan block plus the achieved IPC of
 * every core. It is the interface between the workload/core models
 * and the power model: McPAT in the paper's toolchain consumes
 * exactly this kind of per-unit access-rate information.
 */

#ifndef TG_UARCH_ACTIVITY_HH
#define TG_UARCH_ACTIVITY_HH

#include <vector>

#include "common/units.hh"

namespace tg {
namespace uarch {

/** Activity of every block during one frame. */
struct ActivityFrame
{
    /** Per-block activity factor, indexed like Floorplan::blocks(). */
    std::vector<double> block;
    /** Per-core achieved instructions per cycle. */
    std::vector<double> ipc;
};

/** Fixed-interval activity trace for a whole run. */
struct ActivityTrace
{
    Seconds dt = 10e-6;
    std::vector<ActivityFrame> frames;

    /** Run duration [s]. */
    Seconds duration() const { return dt * frames.size(); }
};

} // namespace uarch
} // namespace tg

#endif // TG_UARCH_ACTIVITY_HH
