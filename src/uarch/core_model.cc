#include "uarch/core_model.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace tg {
namespace uarch {

using floorplan::UnitKind;

CoreModel::CoreModel(int issue_width) : issueWidth(issue_width)
{
    TG_ASSERT(issue_width >= 1, "issue width must be positive");
}

CoreActivity
CoreModel::evaluate(double u, const workload::BenchmarkProfile &p) const
{
    TG_ASSERT(u >= 0.0 && u <= 1.0, "utilisation outside [0, 1]");

    const auto &mix = p.mix;
    const auto &miss = p.misses;

    CoreActivity a;

    // Reference mix shares used to normalise each unit's weighting so
    // a "typical" mix at u = 1 drives every unit near full activity.
    const double ref_exu = 0.55;   // int + fp share
    const double ref_mem = 0.32;   // load + store share

    a.ifu = std::clamp(u * (0.80 + 0.8 * mix.fracBranch), 0.0, 1.0);
    a.isu = std::clamp(u * 0.95, 0.0, 1.0);
    a.exu = std::clamp(
        u * (mix.fracInt + 1.4 * mix.fracFp) / ref_exu, 0.0, 1.0);
    a.lsu = std::clamp(
        u * (mix.fracLoad + mix.fracStore) / ref_mem, 0.0, 1.0);

    // L2 activity follows L1-D miss traffic; 4% L1 misses with a
    // typical memory share saturate the L2 at full utilisation.
    double l1_traffic = u * (mix.fracLoad + mix.fracStore);
    double l2_traffic = l1_traffic * miss.l1 / (0.32 * 0.04);
    a.l2 = std::clamp(l2_traffic * (0.6 + 0.6 * p.memoryIntensity),
                      0.0, 1.0);

    // L2-miss (=> L3) traffic, normalised so a typical benchmark at
    // full utilisation produces ~1.0.
    a.l3TrafficPerCycle =
        l1_traffic * miss.l1 * miss.l2 / (0.32 * 0.04 * 0.30);

    // Stall-throttled IPC: each memory level adds latency weighted by
    // its miss traffic.
    double stall = 12.0 * miss.l1 +
                   40.0 * miss.l1 * miss.l2 +
                   150.0 * miss.l1 * miss.l2 * miss.l3;
    double mem_ops = mix.fracLoad + mix.fracStore;
    a.ipc = u * issueWidth / (1.0 + stall * mem_ops);

    return a;
}

ActivityTrace
buildActivityTrace(const floorplan::Chip &chip,
                   const workload::BenchmarkProfile &p,
                   std::uint64_t seed)
{
    auto demand =
        workload::generateDemandTrace(p, chip.params.cores, seed);
    return buildActivityTrace(chip, p, demand);
}

ActivityTrace
buildActivityTrace(const floorplan::Chip &chip,
                   const workload::BenchmarkProfile &p,
                   const workload::DemandTrace &demand)
{
    std::vector<const workload::BenchmarkProfile *> per_core(
        static_cast<std::size_t>(chip.params.cores), &p);
    return buildActivityTrace(chip, per_core, demand);
}

ActivityTrace
buildActivityTrace(
    const floorplan::Chip &chip,
    const std::vector<const workload::BenchmarkProfile *> &per_core,
    const workload::DemandTrace &demand)
{
    const auto &plan = chip.plan;
    const int n_cores = chip.params.cores;
    TG_ASSERT(static_cast<int>(per_core.size()) == n_cores,
              "need one profile per core");
    TG_ASSERT(!demand.frames.empty(), "empty demand trace");
    TG_ASSERT(static_cast<int>(demand.frames[0].coreUtil.size()) ==
                  n_cores,
              "demand trace core count mismatch");

    CoreModel core_model(chip.params.issueWidth);

    // Pre-resolve block indices per core and per L3 bank.
    struct CoreBlocks
    {
        int ifu = -1, isu = -1, exu = -1, lsu = -1, l2 = -1;
    };
    std::vector<CoreBlocks> cores(n_cores);
    std::vector<int> l3_banks;   // block index per bank, bank order
    std::vector<int> noc_blocks;
    std::vector<int> mc_blocks;

    const auto &blocks = plan.blocks();
    for (std::size_t i = 0; i < blocks.size(); ++i) {
        const auto &b = blocks[i];
        int idx = static_cast<int>(i);
        switch (b.kind) {
          case UnitKind::Ifu: cores.at(b.coreId).ifu = idx; break;
          case UnitKind::Isu: cores.at(b.coreId).isu = idx; break;
          case UnitKind::Exu: cores.at(b.coreId).exu = idx; break;
          case UnitKind::Lsu: cores.at(b.coreId).lsu = idx; break;
          case UnitKind::L2: cores.at(b.coreId).l2 = idx; break;
          case UnitKind::L3: l3_banks.push_back(idx); break;
          case UnitKind::Noc: noc_blocks.push_back(idx); break;
          case UnitKind::Mc: mc_blocks.push_back(idx); break;
        }
    }
    for (int c = 0; c < n_cores; ++c) {
        TG_ASSERT(cores[c].ifu >= 0 && cores[c].isu >= 0 &&
                      cores[c].exu >= 0 && cores[c].lsu >= 0 &&
                      cores[c].l2 >= 0,
                  "core ", c, " is missing blocks");
    }
    TG_ASSERT(!l3_banks.empty(), "chip has no L3 banks");

    ActivityTrace trace;
    trace.dt = demand.dt;
    trace.frames.resize(demand.frames.size());

    for (std::size_t f = 0; f < demand.frames.size(); ++f) {
        const auto &dframe = demand.frames[f];
        ActivityFrame &frame = trace.frames[f];
        frame.block.assign(blocks.size(), 0.0);
        frame.ipc.assign(n_cores, 0.0);

        double total_traffic = 0.0;
        std::vector<double> core_traffic(n_cores, 0.0);
        for (int c = 0; c < n_cores; ++c) {
            const auto &p = *per_core[static_cast<std::size_t>(c)];
            CoreActivity a = core_model.evaluate(dframe.coreUtil[c], p);
            frame.block[cores[c].ifu] = a.ifu;
            frame.block[cores[c].isu] = a.isu;
            frame.block[cores[c].exu] = a.exu;
            frame.block[cores[c].lsu] = a.lsu;
            frame.block[cores[c].l2] = a.l2;
            frame.ipc[c] = a.ipc;
            core_traffic[c] = a.l3TrafficPerCycle;
            total_traffic += a.l3TrafficPerCycle;
        }
        double avg_traffic = total_traffic / n_cores;

        // L3 banks: data homes on the bank paired with its core; the
        // NoC spreads the remainder chip-wide. With fewer banks than
        // cores (mini chips) the pairing wraps around.
        double avg_l3_miss = 0.0;
        for (int c = 0; c < n_cores; ++c)
            avg_l3_miss +=
                per_core[static_cast<std::size_t>(c)]->misses.l3;
        avg_l3_miss /= n_cores;
        for (std::size_t k = 0; k < l3_banks.size(); ++k) {
            std::size_t home_core =
                k % static_cast<std::size_t>(n_cores);
            double mem_scale =
                0.3 + 0.7 * per_core[home_core]->memoryIntensity;
            double traffic =
                0.7 * core_traffic[home_core] + 0.3 * avg_traffic;
            // Tag/queue clocking keeps a bank from idling below a
            // floor even with no traffic.
            frame.block[l3_banks[k]] =
                std::clamp(0.15 + traffic * mem_scale, 0.0, 1.0);
        }
        for (int idx : noc_blocks)
            frame.block[idx] =
                std::clamp(0.20 + avg_traffic * 0.7, 0.0, 1.0);
        for (int idx : mc_blocks)
            frame.block[idx] = std::clamp(
                0.15 + avg_traffic * avg_l3_miss / 0.20 * 0.5, 0.0,
                1.0);
    }
    return trace;
}

} // namespace uarch
} // namespace tg
