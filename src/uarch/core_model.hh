/**
 * @file
 * Simple analytic core activity model.
 *
 * Maps a core's utilisation plus its benchmark's instruction mix and
 * cache behaviour to per-functional-unit activity factors and an
 * achieved IPC. This stands in for the paper's Sniper simulation: the
 * governor only ever sees the per-block activity/power signal, so a
 * calibrated analytic mapping preserves everything the policies react
 * to (see DESIGN.md, substitution table).
 */

#ifndef TG_UARCH_CORE_MODEL_HH
#define TG_UARCH_CORE_MODEL_HH

#include <cstdint>
#include <vector>

#include "floorplan/power8.hh"
#include "uarch/activity.hh"
#include "workload/demand.hh"
#include "workload/profile.hh"

namespace tg {
namespace uarch {

/** Per-unit activity of one core at one instant. */
struct CoreActivity
{
    double ifu = 0.0;
    double isu = 0.0;
    double exu = 0.0;
    double lsu = 0.0;
    double l2 = 0.0;
    double ipc = 0.0;            //!< achieved instructions/cycle
    double l3TrafficPerCycle = 0.0; //!< L2-miss traffic (normalised)
};

/**
 * Analytic single-core model.
 *
 * Unit activities scale with utilisation, weighted by the share of
 * the instruction mix each unit serves; miss rates shift activity
 * from the core pipeline into the cache hierarchy and throttle the
 * achieved IPC through a simple stall model.
 */
class CoreModel
{
  public:
    /**
     * @param issue_width machine issue width (Table 1: 8)
     */
    explicit CoreModel(int issue_width = 8);

    /** Evaluate the model at utilisation `u` for a given workload. */
    CoreActivity evaluate(double u,
                          const workload::BenchmarkProfile &p) const;

  private:
    int issueWidth;
};

/**
 * Build the chip-wide activity trace of one benchmark run.
 *
 * Core blocks take their activity from the core model driven by the
 * demand trace; L3 banks see their home core's miss traffic blended
 * with chip-average traffic (data homes on the bank nearest its
 * core, the NoC spreads the rest); the NoC and MCs follow aggregate
 * traffic. Deterministic given (chip, profile, seed).
 */
ActivityTrace buildActivityTrace(const floorplan::Chip &chip,
                                 const workload::BenchmarkProfile &p,
                                 std::uint64_t seed);

/**
 * Same, from a caller-provided demand trace (used by tests and by
 * callers that want to share one demand realisation across designs).
 */
ActivityTrace buildActivityTrace(const floorplan::Chip &chip,
                                 const workload::BenchmarkProfile &p,
                                 const workload::DemandTrace &demand);

/**
 * Multi-programmed variant: each core's activity follows its own
 * program's instruction mix and miss behaviour (one profile per
 * core, matching the demand trace).
 */
ActivityTrace
buildActivityTrace(const floorplan::Chip &chip,
                   const std::vector<
                       const workload::BenchmarkProfile *> &per_core,
                   const workload::DemandTrace &demand);

} // namespace uarch
} // namespace tg

#endif // TG_UARCH_CORE_MODEL_HH
