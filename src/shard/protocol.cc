#include "shard/protocol.hh"

#include <cerrno>
#include <cstring>

#ifdef __unix__
#include <unistd.h>
#endif

#include "common/io.hh"

namespace tg {
namespace shard {

namespace {

using bytes::ByteReader;
using bytes::ByteWriter;

constexpr std::size_t kHeaderBytes = 4 + 4 + 8;
constexpr std::size_t kChecksumBytes = 8;

/** Cap on string/vector element counts inside messages. */
constexpr std::uint64_t kMaxListLen = 1ull << 24;

std::uint64_t readU64At(const std::uint8_t *q)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(q[i]) << (8 * i);
    return v;
}

std::uint32_t readU32At(const std::uint8_t *q)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(q[i]) << (8 * i);
    return v;
}

} // namespace

bool frameTypeValid(std::uint32_t t)
{
    return t >= static_cast<std::uint32_t>(FrameType::Hello) &&
           t <= static_cast<std::uint32_t>(FrameType::ServeCancel);
}

std::vector<std::uint8_t>
encodeFrame(FrameType type, const std::vector<std::uint8_t> &payload)
{
    ByteWriter w;
    w.u32(kFrameMagic);
    w.u32(static_cast<std::uint32_t>(type));
    w.u64(payload.size());
    std::vector<std::uint8_t> out = w.take();
    out.insert(out.end(), payload.begin(), payload.end());
    const std::uint64_t sum = bytes::fnv1a(out.data(), out.size());
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(sum >> (8 * i)));
    return out;
}

void FrameParser::feed(const std::uint8_t *data, std::size_t size)
{
    if (corruptFlag)
        return;
    buf.insert(buf.end(), data, data + size);
}

FrameParser::Status FrameParser::next(Frame &out)
{
    if (corruptFlag)
        return Status::Corrupt;
    const std::size_t avail = buf.size() - start;
    if (avail < kHeaderBytes)
        return Status::NeedMore;

    const std::uint8_t *h = buf.data() + start;
    const std::uint32_t magic = readU32At(h);
    const std::uint32_t type = readU32At(h + 4);
    const std::uint64_t len = readU64At(h + 8);
    if (magic != kFrameMagic || !frameTypeValid(type) ||
        len > kMaxFramePayload) {
        corruptFlag = true;
        return Status::Corrupt;
    }
    const std::size_t total =
        kHeaderBytes + static_cast<std::size_t>(len) + kChecksumBytes;
    if (avail < total)
        return Status::NeedMore;

    const std::uint64_t want =
        readU64At(h + kHeaderBytes + static_cast<std::size_t>(len));
    if (bytes::fnv1a(h, kHeaderBytes + static_cast<std::size_t>(len)) !=
        want) {
        corruptFlag = true;
        return Status::Corrupt;
    }

    out.type = static_cast<FrameType>(type);
    out.payload.assign(h + kHeaderBytes,
                       h + kHeaderBytes + static_cast<std::size_t>(len));
    start += total;
    // Compact once the consumed prefix dominates, so a long stream
    // does not grow the buffer without bound.
    if (start > 4096 && start * 2 > buf.size()) {
        buf.erase(buf.begin(),
                  buf.begin() + static_cast<std::ptrdiff_t>(start));
        start = 0;
    }
    return Status::Frame;
}

// --- connection plumbing ----------------------------------------------

bool writeFrameToFd(int fd, FrameType type,
                    const std::vector<std::uint8_t> &payload)
{
    const std::vector<std::uint8_t> frame = encodeFrame(type, payload);
    return io::writeAll(fd, frame.data(), frame.size());
}

#ifdef __unix__

PumpStatus pumpFrames(int fd, FrameParser &parser,
                      const std::function<bool(const Frame &)> &handle)
{
    std::uint8_t chunk[1 << 16];
    const long n = io::chaosRead(fd, chunk, sizeof chunk);
    if (n < 0) {
        if (errno == EINTR || errno == EAGAIN ||
            errno == EWOULDBLOCK)
            return PumpStatus::Ok;
        return PumpStatus::Error;
    }
    if (n == 0)
        return PumpStatus::Eof;
    parser.feed(chunk, static_cast<std::size_t>(n));

    Frame frame;
    FrameParser::Status st;
    while ((st = parser.next(frame)) == FrameParser::Status::Frame)
        if (!handle(frame))
            return PumpStatus::Rejected;
    if (st == FrameParser::Status::Corrupt)
        return PumpStatus::Corrupt;
    return PumpStatus::Ok;
}

#else // !__unix__

PumpStatus pumpFrames(int, FrameParser &,
                      const std::function<bool(const Frame &)> &)
{
    return PumpStatus::Error;
}

#endif // __unix__

// --- message payloads -------------------------------------------------

std::vector<std::uint8_t> encodeHello(const HelloMsg &m)
{
    ByteWriter w;
    w.u32(m.version);
    w.u64(m.pid);
    return w.take();
}

bool decodeHello(const std::vector<std::uint8_t> &p, HelloMsg &out)
{
    ByteReader r(p.data(), p.size());
    out.version = r.u32();
    out.pid = r.u64();
    return r.exhausted();
}

std::vector<std::uint8_t> encodeSweepRequest(const SweepRequestMsg &m)
{
    ByteWriter w;
    w.u32(m.workerId);
    w.u32(m.jobs);
    w.u32(m.heartbeatMs);
    w.blob(m.setup);
    w.u64(m.benchmarks.size());
    for (const auto &b : m.benchmarks)
        w.str(b);
    w.u64(m.policies.size());
    for (auto pk : m.policies)
        w.u32(pk);
    w.u8(m.timeSeries);
    w.u8(m.heatmap);
    w.u8(m.noiseTrace);
    w.i64(m.trackVr);
    w.i64(m.noiseSamplesOverride);
    return w.take();
}

bool decodeSweepRequest(const std::vector<std::uint8_t> &p,
                        SweepRequestMsg &out)
{
    ByteReader r(p.data(), p.size());
    out.workerId = r.u32();
    out.jobs = r.u32();
    out.heartbeatMs = r.u32();
    if (!r.blob(out.setup))
        return false;
    const std::uint64_t nb = r.u64();
    if (!r.ok() || nb > kMaxListLen)
        return false;
    out.benchmarks.resize(static_cast<std::size_t>(nb));
    for (auto &b : out.benchmarks)
        b = r.str();
    const std::uint64_t np = r.u64();
    if (!r.ok() || np > kMaxListLen)
        return false;
    out.policies.resize(static_cast<std::size_t>(np));
    for (auto &pk : out.policies)
        pk = r.u32();
    out.timeSeries = r.u8();
    out.heatmap = r.u8();
    out.noiseTrace = r.u8();
    out.trackVr = r.i64();
    out.noiseSamplesOverride = r.i64();
    return r.exhausted();
}

std::vector<std::uint8_t>
encodeShardAssignment(const ShardAssignmentMsg &m)
{
    ByteWriter w;
    w.u64(m.shard);
    w.u64(m.cells.size());
    for (auto c : m.cells)
        w.u64(c);
    return w.take();
}

bool decodeShardAssignment(const std::vector<std::uint8_t> &p,
                           ShardAssignmentMsg &out)
{
    ByteReader r(p.data(), p.size());
    out.shard = r.u64();
    const std::uint64_t n = r.u64();
    if (!r.ok() || n > kMaxListLen)
        return false;
    out.cells.resize(static_cast<std::size_t>(n));
    for (auto &c : out.cells)
        c = r.u64();
    return r.exhausted();
}

std::vector<std::uint8_t> encodeCellResult(const CellResultMsg &m)
{
    ByteWriter w;
    w.u64(m.shard);
    w.u64(m.cell);
    w.blob(m.result);
    return w.take();
}

bool decodeCellResult(const std::vector<std::uint8_t> &p,
                      CellResultMsg &out)
{
    ByteReader r(p.data(), p.size());
    out.shard = r.u64();
    out.cell = r.u64();
    if (!r.blob(out.result))
        return false;
    return r.exhausted();
}

std::vector<std::uint8_t> encodeShardDone(const ShardDoneMsg &m)
{
    ByteWriter w;
    w.u64(m.shard);
    return w.take();
}

bool decodeShardDone(const std::vector<std::uint8_t> &p,
                     ShardDoneMsg &out)
{
    ByteReader r(p.data(), p.size());
    out.shard = r.u64();
    return r.exhausted();
}

} // namespace shard
} // namespace tg
