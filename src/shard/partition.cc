#include "shard/partition.hh"

#include <algorithm>

namespace tg {
namespace shard {

std::vector<std::vector<std::uint64_t>>
partitionCells(std::size_t n_cells, int workers,
               std::size_t min_cells)
{
    const std::size_t w =
        static_cast<std::size_t>(std::max(1, workers));
    const std::size_t floor_cells = std::max<std::size_t>(1, min_cells);

    std::vector<std::vector<std::uint64_t>> shards;
    std::size_t next = 0;
    while (next < n_cells) {
        const std::size_t remaining = n_cells - next;
        std::size_t take = (remaining + 2 * w - 1) / (2 * w);
        take = std::max(take, floor_cells);
        take = std::min(take, remaining);
        std::vector<std::uint64_t> cells;
        cells.reserve(take);
        for (std::size_t i = 0; i < take; ++i)
            cells.push_back(static_cast<std::uint64_t>(next + i));
        shards.push_back(std::move(cells));
        next += take;
    }
    return shards;
}

} // namespace shard
} // namespace tg
