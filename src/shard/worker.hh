/**
 * @file
 * Worker side of the sharded multi-process sweep.
 *
 * The coordinator re-execs the *current binary* with a hidden
 * `--tg-worker` argument and two inherited pipe fds (requests on fd
 * 3, results on fd 4). A participating binary's main() therefore
 * starts with:
 *
 *     if (shard::isWorkerInvocation(argc, argv))
 *         return shard::workerMain(shard::basicSetupFactory());
 *
 * The worker reconstructs its Simulation from the SweepRequest's
 * opaque setup blob via a caller-supplied SetupFactory — the engine
 * never interprets the blob, so drivers with exotic chips or fault
 * scenarios encode whatever they need. basicSetupFactory() covers
 * the canned chips (POWER8 evaluation chip, mini test chip) plus the
 * top-level SimConfig scalars, which is all the in-tree drivers use.
 *
 * Cells execute on the shared runSweepCells() core (one Simulation,
 * or an intra-worker thread pool at jobs > 1) and every finished
 * cell streams back immediately as a CellResult frame; a side thread
 * emits Heartbeat frames so the coordinator can tell a long-running
 * cell from a hung process.
 *
 * Test hook: TG_SHARD_TEST_DIE="<workerId>:<afterCells>" makes
 * worker `workerId` _exit() right before sending its
 * (afterCells+1)-th cell result — the crash-reassignment tests kill
 * a worker mid-shard with it.
 */

#ifndef TG_SHARD_WORKER_HH
#define TG_SHARD_WORKER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "floorplan/power8.hh"
#include "sim/config.hh"
#include "sim/result.hh"

namespace tg {
namespace shard {

/** Request/result pipe fds of a worker process (set up by the
 *  coordinator before exec; deliberately past stdin/out/err). */
constexpr int kWorkerInFd = 3;
constexpr int kWorkerOutFd = 4;

/** The worker-mode argv marker. */
constexpr const char *kWorkerFlag = "--tg-worker";

/**
 * Everything a worker needs to rebuild its simulation context from a
 * SweepRequest. `keepAlive` owns any state `opts` points into (e.g.
 * a decoded fault scenario referenced by opts.faultScenario).
 */
struct WorkerSetup
{
    floorplan::Chip chip;
    sim::SimConfig cfg;
    sim::RecordOptions opts; //!< base; wire scalars overwrite fields
    std::shared_ptr<const void> keepAlive;
};

/** Decode an opaque setup blob into a WorkerSetup. Fatal on a blob
 *  the factory does not understand (the coordinator and worker are
 *  the same binary, so a mismatch is a bug, not an input error). */
using SetupFactory =
    std::function<WorkerSetup(const std::vector<std::uint8_t> &blob)>;

/** True when argv carries the hidden worker-mode flag. */
bool isWorkerInvocation(int argc, char **argv);

/**
 * Run the worker protocol loop on fds 3/4 until a Shutdown frame or
 * coordinator EOF. Returns the process exit code.
 */
int workerMain(const SetupFactory &factory);

// --- canned setup codec ----------------------------------------------

/** Chip selector of the basic setup blob. */
enum class ChipKind : std::uint32_t
{
    Power8 = 0, //!< floorplan::buildPower8Chip()
    Mini = 1,   //!< floorplan::buildMiniChip(arg)
};

/**
 * Encode (chip, config) for basicSetupFactory(). Covers the
 * top-level SimConfig scalars (regulator choice, timing, sampling,
 * batching, seed, cache knobs); the nested parameter structs stay at
 * their defaults — drivers that tune those need their own factory.
 */
std::vector<std::uint8_t> encodeBasicSetup(ChipKind kind, int chip_arg,
                                           const sim::SimConfig &cfg);

/**
 * Non-fatal decoder of encodeBasicSetup() blobs. Returns false on a
 * malformed blob or unknown chip kind instead of dying — the sweep
 * server uses this to turn a bad client request into an error reply
 * rather than a daemon abort.
 */
bool decodeBasicSetup(const std::vector<std::uint8_t> &blob,
                      ChipKind &kind, int &chip_arg,
                      sim::SimConfig &cfg);

/** The factory decoding encodeBasicSetup() blobs (fatal on a blob it
 *  does not understand — coordinator and worker are one binary, so a
 *  mismatch is a bug, not an input error). */
SetupFactory basicSetupFactory();

} // namespace shard
} // namespace tg

#endif // TG_SHARD_WORKER_HH
