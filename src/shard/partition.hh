/**
 * @file
 * Deterministic cell -> shard partitioning of a sweep grid.
 *
 * Shards are the dispatch unit of the multi-process sweep: the
 * coordinator hands one shard at a time to whichever worker is idle,
 * so *which worker* runs a shard is scheduling-dependent — but the
 * partition itself is a pure function of (cell count, worker count),
 * and every cell's result lands in its grid slot regardless, so the
 * merged sweep is bit-identical under any dispatch order.
 *
 * Sizing follows guided self-scheduling: the first shards take
 * ceil(remaining / (2 * workers)) cells and the tail decays to
 * single cells, so early shards amortise per-assignment overhead
 * while late ones keep fast workers from starving behind a straggler
 * holding one big final shard.
 */

#ifndef TG_SHARD_PARTITION_HH
#define TG_SHARD_PARTITION_HH

#include <cstdint>
#include <vector>

namespace tg {
namespace shard {

/**
 * Split cells [0, n_cells) into dispatch shards for `workers`
 * workers. Every cell appears in exactly one shard, shards are
 * contiguous, in cell order, with non-increasing sizes.
 *
 * @param n_cells   grid size (0 yields no shards)
 * @param workers   worker count (clamped to >= 1)
 * @param min_cells floor on shard size (clamped to >= 1); raise it
 *                  when per-cell work is tiny relative to dispatch
 *                  overhead
 */
std::vector<std::vector<std::uint64_t>>
partitionCells(std::size_t n_cells, int workers,
               std::size_t min_cells = 1);

} // namespace shard
} // namespace tg

#endif // TG_SHARD_PARTITION_HH
