#include "shard/worker.hh"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>

#ifdef __unix__
#include <unistd.h>
#endif

#include "cache/serialize.hh"
#include "common/logging.hh"
#include "shard/protocol.hh"
#include "sim/sweep.hh"

namespace tg {
namespace shard {

namespace {

/** Exit code of the TG_SHARD_TEST_DIE hook (distinguishable from
 *  protocol-error exits in coordinator logs). */
constexpr int kTestDieExit = 42;

constexpr std::uint32_t kBasicSetupMagic = 0x31424754; // "TGB1"

#ifdef __unix__

/**
 * Mutex-guarded frame writer: CellResults from concurrent sweep
 * workers and Heartbeats from the side thread interleave only at
 * frame granularity. write() loops over partial writes; a failed
 * write means the coordinator is gone, so the worker exits.
 */
class WriteChannel
{
  public:
    explicit WriteChannel(int fd) : fd(fd) {}

    void send(FrameType type, const std::vector<std::uint8_t> &payload)
    {
        std::lock_guard<std::mutex> lock(mu);
        if (!writeFrameToFd(fd, type, payload))
            ::_exit(1); // coordinator died; nothing useful left to do
    }

  private:
    int fd;
    std::mutex mu;
};

/** Periodic Heartbeat frames until stopped. */
class HeartbeatThread
{
  public:
    HeartbeatThread(WriteChannel &out, int period_ms)
        : out(out), periodMs(period_ms > 0 ? period_ms : 500),
          th([this] { loop(); })
    {
    }

    ~HeartbeatThread()
    {
        {
            std::lock_guard<std::mutex> lock(mu);
            stopping = true;
        }
        cv.notify_all();
        th.join();
    }

  private:
    void loop()
    {
        std::unique_lock<std::mutex> lock(mu);
        while (!stopping) {
            cv.wait_for(lock, std::chrono::milliseconds(periodMs));
            if (stopping)
                return;
            lock.unlock();
            out.send(FrameType::Heartbeat, {});
            lock.lock();
        }
    }

    WriteChannel &out;
    int periodMs;
    std::mutex mu;
    std::condition_variable cv;
    bool stopping = false;
    std::thread th;
};

/** Parsed TG_SHARD_TEST_DIE hook (see worker.hh). */
struct DieHook
{
    bool armed = false;
    std::uint32_t worker = 0;
    long afterCells = 0;
};

DieHook parseDieHook()
{
    DieHook hook;
    const char *env = std::getenv("TG_SHARD_TEST_DIE");
    if (!env || !*env)
        return hook;
    unsigned worker = 0;
    long after = 0;
    if (std::sscanf(env, "%u:%ld", &worker, &after) == 2) {
        hook.armed = true;
        hook.worker = worker;
        hook.afterCells = after;
    } else {
        warn("TG_SHARD_TEST_DIE value '", env,
             "' is not '<worker>:<afterCells>'; ignoring");
    }
    return hook;
}

#endif // __unix__

} // namespace

bool isWorkerInvocation(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i)
        if (!std::strcmp(argv[i], kWorkerFlag))
            return true;
    return false;
}

#ifdef __unix__

int workerMain(const SetupFactory &factory)
{
    // The coordinator may die while we write a result; surface that
    // as a failed write (handled in WriteChannel) rather than a
    // process-killing SIGPIPE.
    std::signal(SIGPIPE, SIG_IGN);

    WriteChannel out(kWorkerOutFd);
    {
        HelloMsg hello;
        hello.pid = static_cast<std::uint64_t>(::getpid());
        out.send(FrameType::Hello, encodeHello(hello));
    }

    FrameParser parser;
    SweepRequestMsg req;
    bool haveRequest = false;
    WorkerSetup setup;
    std::unique_ptr<sim::Simulation> simulation;
    sim::SweepContexts contexts;
    std::unique_ptr<HeartbeatThread> heartbeat;
    std::vector<core::PolicyKind> policies;
    sim::RecordOptions opts;
    DieHook die;
    std::atomic<long> cellsSent{0};

    // Exit code chosen by the frame handler when it stops the pump
    // (0 on a clean Shutdown, 2 on a protocol violation).
    int rc = 2;
    auto handleFrame = [&](const Frame &frame) -> bool {
        switch (frame.type) {
        case FrameType::SweepRequest: {
            if (!decodeSweepRequest(frame.payload, req)) {
                rc = 2;
                return false;
            }
            setup = factory(req.setup);
            policies.clear();
            policies.reserve(req.policies.size());
            for (auto pk : req.policies)
                policies.push_back(
                    static_cast<core::PolicyKind>(pk));
            opts = setup.opts;
            opts.timeSeries = req.timeSeries != 0;
            opts.heatmap = req.heatmap != 0;
            opts.noiseTrace = req.noiseTrace != 0;
            opts.trackVr = static_cast<int>(req.trackVr);
            opts.noiseSamplesOverride =
                static_cast<int>(req.noiseSamplesOverride);
            simulation = std::make_unique<sim::Simulation>(
                setup.chip, setup.cfg);
            die = parseDieHook();
            heartbeat = std::make_unique<HeartbeatThread>(
                out, static_cast<int>(req.heartbeatMs));
            haveRequest = true;
            return true;
        }
        case FrameType::ShardAssignment: {
            if (!haveRequest) {
                rc = 2;
                return false;
            }
            ShardAssignmentMsg assign;
            if (!decodeShardAssignment(frame.payload, assign)) {
                rc = 2;
                return false;
            }
            std::vector<std::size_t> cells(assign.cells.begin(),
                                           assign.cells.end());
            sim::runSweepCells(
                *simulation, req.benchmarks, policies, cells,
                static_cast<int>(req.jobs), opts,
                [&](std::size_t cell, sim::RunResult &&r) {
                    const long sent = cellsSent.fetch_add(1);
                    if (die.armed &&
                        die.worker == req.workerId &&
                        sent >= die.afterCells)
                        ::_exit(kTestDieExit);
                    CellResultMsg m;
                    m.shard = assign.shard;
                    m.cell = cell;
                    m.result = cache::encodeRunResult(r);
                    out.send(FrameType::CellResult,
                             encodeCellResult(m));
                },
                &contexts);
            ShardDoneMsg done;
            done.shard = assign.shard;
            out.send(FrameType::ShardDone, encodeShardDone(done));
            return true;
        }
        case FrameType::Shutdown:
            rc = 0;
            return false;
        default:
            // Unexpected direction (e.g. a Hello echoed back):
            // protocol violation.
            rc = 2;
            return false;
        }
    };

    for (;;) {
        switch (pumpFrames(kWorkerInFd, parser, handleFrame)) {
        case PumpStatus::Ok:
            break;
        case PumpStatus::Eof:
        case PumpStatus::Error:
            return 1; // coordinator gone without Shutdown
        case PumpStatus::Corrupt:
            return 2;
        case PumpStatus::Rejected:
            return rc;
        }
    }
}

#else // !__unix__

int workerMain(const SetupFactory &)
{
    fatal("sharded sweep workers require a POSIX host");
}

#endif // __unix__

std::vector<std::uint8_t> encodeBasicSetup(ChipKind kind, int chip_arg,
                                           const sim::SimConfig &cfg)
{
    bytes::ByteWriter w;
    w.u32(kBasicSetupMagic);
    w.u32(static_cast<std::uint32_t>(kind));
    w.i64(chip_arg);
    w.u32(static_cast<std::uint32_t>(cfg.regulator));
    w.f64(cfg.decisionInterval);
    w.i64(cfg.noiseSamples);
    w.i64(cfg.noiseCyclesTotal);
    w.i64(cfg.noiseWarmupCycles);
    w.i64(cfg.noiseBatchWidth);
    w.u8(cfg.coalesceNoiseEpochs ? 1 : 0);
    w.i64(cfg.profilingEpochs);
    w.f64(cfg.practicalDemandMargin);
    w.i64(cfg.practicalHeadroomVrs);
    w.u64(cfg.seed);
    w.str(cfg.cacheDir);
    w.u8(cfg.memoizeResults ? 1 : 0);
    return w.take();
}

bool decodeBasicSetup(const std::vector<std::uint8_t> &blob,
                      ChipKind &kind, int &chip_arg,
                      sim::SimConfig &cfg)
{
    bytes::ByteReader r(blob.data(), blob.size());
    if (r.u32() != kBasicSetupMagic)
        return false;
    kind = static_cast<ChipKind>(r.u32());
    chip_arg = static_cast<int>(r.i64());
    cfg = sim::SimConfig{};
    cfg.regulator = static_cast<sim::RegulatorChoice>(r.u32());
    cfg.decisionInterval = r.f64();
    cfg.noiseSamples = static_cast<int>(r.i64());
    cfg.noiseCyclesTotal = static_cast<int>(r.i64());
    cfg.noiseWarmupCycles = static_cast<int>(r.i64());
    cfg.noiseBatchWidth = static_cast<int>(r.i64());
    cfg.coalesceNoiseEpochs = r.u8() != 0;
    cfg.profilingEpochs = static_cast<int>(r.i64());
    cfg.practicalDemandMargin = r.f64();
    cfg.practicalHeadroomVrs = static_cast<int>(r.i64());
    cfg.seed = r.u64();
    cfg.cacheDir = r.str();
    cfg.memoizeResults = r.u8() != 0;
    if (!r.exhausted())
        return false;
    return kind == ChipKind::Power8 || kind == ChipKind::Mini;
}

SetupFactory basicSetupFactory()
{
    return [](const std::vector<std::uint8_t> &blob) -> WorkerSetup {
        ChipKind kind{};
        int chip_arg = 0;
        WorkerSetup setup;
        TG_ASSERT(decodeBasicSetup(blob, kind, chip_arg, setup.cfg),
                  "shard setup blob is not a well-formed basic setup");
        switch (kind) {
        case ChipKind::Power8:
            setup.chip = floorplan::buildPower8Chip();
            break;
        case ChipKind::Mini:
            setup.chip = floorplan::buildMiniChip(chip_arg);
            break;
        }
        return setup;
    };
}

} // namespace shard
} // namespace tg
