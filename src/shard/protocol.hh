/**
 * @file
 * Wire protocol of the sharded multi-process sweep engine.
 *
 * The coordinator and its workers speak length-prefixed binary
 * frames over pipes. Every frame is
 *
 *     u32 magic "TGS1" | u32 type | u64 payload length |
 *     payload bytes    | u64 FNV-1a checksum over everything before
 *
 * little-endian throughout, built on the same codec primitives as
 * the artifact cache's disk tier (common/bytes.hh). The format makes
 * no shared-memory assumption — frames could travel over a socket to
 * another host unchanged — and every decoder is bounds-checked,
 * rejects trailing garbage, and is versioned via kProtocolVersion in
 * the Hello handshake, mirroring the disk tier's corruption rules:
 * a frame that fails its checksum or a message that fails its decode
 * marks the peer corrupt rather than being half-trusted.
 *
 * Message flow:
 *
 *     worker -> coordinator : Hello (version handshake)
 *     coordinator -> worker : SweepRequest (grid + setup blob)
 *     coordinator -> worker : ShardAssignment (cell index list)*
 *     worker -> coordinator : CellResult (streamed per finished cell)*
 *     worker -> coordinator : ShardDone*
 *     worker -> coordinator : Heartbeat (periodic, from a side thread)
 *     coordinator -> worker : Shutdown
 */

#ifndef TG_SHARD_PROTOCOL_HH
#define TG_SHARD_PROTOCOL_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/bytes.hh"

namespace tg {
namespace shard {

/** Bump on any incompatible frame or message layout change.
 *  v2: serve-layer frame types appended (range extension only —
 *  every v1 message layout is unchanged).
 *  v3: ServeCancel appended; serve Run/Sweep messages gained
 *  deadlineMs, ServeDone a status/retryAfterMs pair, and the stats
 *  reply admission/cancellation counters. */
constexpr std::uint32_t kProtocolVersion = 3;

/** Leading tag of every frame ("TGS1" little-endian). */
constexpr std::uint32_t kFrameMagic = 0x31534754;

/** Upper bound on a frame payload (a full RunResult is ~100 KB). */
constexpr std::uint64_t kMaxFramePayload = 1ull << 30;

enum class FrameType : std::uint32_t
{
    Hello = 1,       //!< worker -> coordinator version handshake
    SweepRequest,    //!< coordinator -> worker grid + setup
    ShardAssignment, //!< coordinator -> worker cell list
    CellResult,      //!< worker -> coordinator one finished cell
    ShardDone,       //!< worker -> coordinator shard fully emitted
    Heartbeat,       //!< worker -> coordinator liveness
    Shutdown,        //!< coordinator/client clean exit request

    // Sweep-server extension (payload codecs in serve/protocol.hh;
    // the frame layer treats payloads as opaque bytes either way).
    ServeRun,        //!< client -> server single-run request
    ServeSweep,      //!< client -> server sweep request
    ServeCell,       //!< server -> client one finished cell
    ServeDone,       //!< server -> client request complete (ok/error)
    ServeStats,      //!< client -> server stats request (empty)
    ServeStatsReply, //!< server -> client counters snapshot
    Ping,            //!< client -> server liveness probe
    Pong,            //!< server -> client liveness echo
    ServeCancel,     //!< client -> server cancel an in-flight request
};

/** True when `t` is one of the FrameType enumerators. */
bool frameTypeValid(std::uint32_t t);

/** One decoded frame. */
struct Frame
{
    FrameType type{};
    std::vector<std::uint8_t> payload;
};

/** Frame a payload: header + payload + trailing checksum. */
std::vector<std::uint8_t> encodeFrame(FrameType type,
                                      const std::vector<std::uint8_t> &payload);

/**
 * Incremental frame extractor over a byte stream. feed() appends
 * received bytes; next() pops complete frames. Any malformed header
 * (bad magic, unknown type, absurd length) or checksum mismatch
 * makes the parser sticky-corrupt: the stream cannot be resynced, so
 * the peer must be treated as dead.
 */
class FrameParser
{
  public:
    enum class Status
    {
        Frame,    //!< one frame extracted into `out`
        NeedMore, //!< no complete frame buffered yet
        Corrupt,  //!< stream is malformed (sticky)
    };

    void feed(const std::uint8_t *data, std::size_t size);
    Status next(Frame &out);

    bool corrupt() const { return corruptFlag; }

  private:
    std::vector<std::uint8_t> buf;
    std::size_t start = 0; //!< consumed prefix (compacted lazily)
    bool corruptFlag = false;
};

// --- connection plumbing ----------------------------------------------
//
// The read/feed/drain loop around a framed descriptor is identical
// for every peer in the tree (shard coordinator, shard worker, sweep
// server, serve client), so it lives here once. Writes go through
// io::writeAll so a frame is either fully sent or the peer is dead.

/** Blocking full-frame write; false when the peer is gone. */
bool writeFrameToFd(int fd, FrameType type,
                    const std::vector<std::uint8_t> &payload);

/** Outcome of one pumpFrames() round. */
enum class PumpStatus
{
    Ok,       //!< progress (or EAGAIN/EINTR); connection healthy
    Eof,      //!< peer closed the descriptor
    Corrupt,  //!< stream malformed (parser is sticky-corrupt)
    Rejected, //!< `handle` refused a frame (protocol violation)
    Error,    //!< read() failed
};

/**
 * One pump round: read() once from `fd`, feed `parser`, and hand
 * every completed frame to `handle`. Returns after the buffered
 * frames drain — with a level-triggered poll() loop, remaining bytes
 * re-trigger readability, so one read per round is enough; blocking
 * callers (the shard worker) just call it in a loop. `handle`
 * returning false stops the drain and reports Rejected.
 */
PumpStatus pumpFrames(int fd, FrameParser &parser,
                      const std::function<bool(const Frame &)> &handle);

// --- message payloads -------------------------------------------------

/** Worker -> coordinator handshake. */
struct HelloMsg
{
    std::uint32_t version = kProtocolVersion;
    std::uint64_t pid = 0;
};

/**
 * Coordinator -> worker: the sweep grid and how to reconstruct the
 * simulation context. `setup` is an opaque blob interpreted by the
 * worker binary's SetupFactory (see worker.hh) — the engine never
 * looks inside, so any driver can ship whatever chip/config encoding
 * it wants. The RecordOptions scalars ride explicitly; a fault
 * scenario (a pointer on the native struct) must travel inside
 * `setup` instead.
 */
struct SweepRequestMsg
{
    std::uint32_t workerId = 0; //!< index among spawned workers
    std::uint32_t jobs = 1;     //!< intra-worker thread count
    std::uint32_t heartbeatMs = 500;
    std::vector<std::uint8_t> setup;
    std::vector<std::string> benchmarks;
    std::vector<std::uint32_t> policies;
    // RecordOptions scalars (see sim/result.hh).
    std::uint8_t timeSeries = 0;
    std::uint8_t heatmap = 0;
    std::uint8_t noiseTrace = 0;
    std::int64_t trackVr = -1;
    std::int64_t noiseSamplesOverride = -1;
};

/**
 * Coordinator -> worker: run these cells. A cell index addresses the
 * canonical (benchmark, policy) grid slot `b * policies.size() + p`
 * of the SweepRequest's lists — the same key the merge uses, so a
 * result is placement-independent by construction.
 */
struct ShardAssignmentMsg
{
    std::uint64_t shard = 0;
    std::vector<std::uint64_t> cells;
};

/** Worker -> coordinator: one finished cell (encoded RunResult). */
struct CellResultMsg
{
    std::uint64_t shard = 0;
    std::uint64_t cell = 0;
    std::vector<std::uint8_t> result; //!< cache::encodeRunResult bytes
};

/** Worker -> coordinator: every cell of `shard` has been emitted. */
struct ShardDoneMsg
{
    std::uint64_t shard = 0;
};

std::vector<std::uint8_t> encodeHello(const HelloMsg &m);
std::vector<std::uint8_t> encodeSweepRequest(const SweepRequestMsg &m);
std::vector<std::uint8_t> encodeShardAssignment(const ShardAssignmentMsg &m);
std::vector<std::uint8_t> encodeCellResult(const CellResultMsg &m);
std::vector<std::uint8_t> encodeShardDone(const ShardDoneMsg &m);

/** Decoders reject truncated, malformed and trailing-garbage input. */
bool decodeHello(const std::vector<std::uint8_t> &p, HelloMsg &out);
bool decodeSweepRequest(const std::vector<std::uint8_t> &p,
                        SweepRequestMsg &out);
bool decodeShardAssignment(const std::vector<std::uint8_t> &p,
                           ShardAssignmentMsg &out);
bool decodeCellResult(const std::vector<std::uint8_t> &p,
                      CellResultMsg &out);
bool decodeShardDone(const std::vector<std::uint8_t> &p,
                     ShardDoneMsg &out);

} // namespace shard
} // namespace tg

#endif // TG_SHARD_PROTOCOL_HH
