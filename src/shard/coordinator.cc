#include "shard/coordinator.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <deque>
#include <map>
#include <set>

#ifdef __unix__
#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include <cstdio>
#include <ctime>

#include "cache/serialize.hh"
#include "common/exec.hh"
#include "common/logging.hh"
#include "core/policy.hh"
#include "shard/partition.hh"
#include "shard/protocol.hh"
#include "shard/worker.hh"
#include "workload/profile.hh"

namespace tg {
namespace shard {

#ifdef __unix__

namespace {

using Clock = std::chrono::steady_clock;

/** Coordinator-side view of one worker process. */
struct Worker
{
    pid_t pid = -1;
    int toFd = -1;   //!< coordinator -> worker requests
    int fromFd = -1; //!< worker -> coordinator results
    FrameParser parser;
    Clock::time_point lastActivity;
    bool alive = false;
    bool busy = false;
    /** In-flight shards: id -> cells not yet received. */
    std::map<std::uint64_t, std::set<std::uint64_t>> outstanding;
};

std::string selfBinaryPath()
{
    char buf[4096];
    ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
    TG_ASSERT(n > 0, "cannot resolve /proc/self/exe; pass "
                     "ShardedSweepOptions::binaryPath explicitly");
    buf[n] = '\0';
    return std::string(buf);
}

} // namespace

sim::SweepResult runShardedSweep(const ShardedSweepOptions &options,
                                 ShardedSweepStats *stats_out)
{
    TG_ASSERT(options.opts.faultScenario == nullptr,
              "fault scenarios cannot travel as a pointer; encode "
              "the scenario in the worker setup blob instead");

    // Writing to a worker that just died must surface as a failed
    // write, not a process-killing SIGPIPE.
    std::signal(SIGPIPE, SIG_IGN);

    std::vector<std::string> benchmarks = options.benchmarks;
    std::vector<core::PolicyKind> policies = options.policies;
    if (benchmarks.empty())
        for (const auto &p : workload::splashProfiles())
            benchmarks.push_back(p.name);
    if (policies.empty())
        policies = core::allPolicyKinds();
    // Fail on unknown names before any process is spawned.
    for (const auto &name : benchmarks)
        workload::profileByName(name);

    sim::SweepResult sweep;
    sweep.benchmarks = benchmarks;
    sweep.policies = policies;
    sweep.results.assign(benchmarks.size(),
                         std::vector<sim::RunResult>(policies.size()));

    const std::size_t n_cells = benchmarks.size() * policies.size();
    const int processes = std::max(1, options.processes);

    ShardedSweepStats stats;
    stats.cellsTotal = n_cells;

    std::deque<std::vector<std::uint64_t>> queue;
    for (auto &shard :
         partitionCells(n_cells, processes, options.minShardCells))
        queue.push_back(std::move(shard));
    stats.shardsPlanned = static_cast<int>(queue.size());

    const std::string binary = options.binaryPath.empty()
                                   ? selfBinaryPath()
                                   : options.binaryPath;

    SweepRequestMsg req;
    req.jobs = static_cast<std::uint32_t>(
        std::max(0, options.jobsPerWorker));
    req.heartbeatMs = static_cast<std::uint32_t>(
        std::max(1, options.heartbeatMs));
    req.setup = options.setup;
    req.benchmarks = benchmarks;
    req.policies.reserve(policies.size());
    for (auto pk : policies)
        req.policies.push_back(static_cast<std::uint32_t>(pk));
    req.timeSeries = options.opts.timeSeries ? 1 : 0;
    req.heatmap = options.opts.heatmap ? 1 : 0;
    req.noiseTrace = options.opts.noiseTrace ? 1 : 0;
    req.trackVr = options.opts.trackVr;
    req.noiseSamplesOverride = options.opts.noiseSamplesOverride;

    std::vector<Worker> workers(
        static_cast<std::size_t>(processes));
    for (int i = 0; i < processes; ++i) {
        int to_pipe[2] = {-1, -1};   // coordinator -> worker
        int from_pipe[2] = {-1, -1}; // worker -> coordinator
        TG_ASSERT(::pipe(to_pipe) == 0 && ::pipe(from_pipe) == 0,
                  "pipe() failed spawning shard worker");
        pid_t pid = ::fork();
        TG_ASSERT(pid >= 0, "fork() failed spawning shard worker");
        if (pid == 0) {
            // Child: drop every sibling coordinator-side descriptor,
            // park this worker's two protocol ends on fds >= 10 (the
            // raw pipe fds may themselves be 3 or 4, so dup2-ing
            // directly could clobber an end we still need), then
            // move them to their fixed protocol fds.
            for (const Worker &w : workers) {
                if (w.toFd >= 0)
                    ::close(w.toFd);
                if (w.fromFd >= 0)
                    ::close(w.fromFd);
            }
            int in_tmp = ::fcntl(to_pipe[0], F_DUPFD, 10);
            int out_tmp = ::fcntl(from_pipe[1], F_DUPFD, 10);
            ::close(to_pipe[0]);
            ::close(to_pipe[1]);
            ::close(from_pipe[0]);
            ::close(from_pipe[1]);
            if (in_tmp < 0 || out_tmp < 0 ||
                ::dup2(in_tmp, kWorkerInFd) < 0 ||
                ::dup2(out_tmp, kWorkerOutFd) < 0)
                ::_exit(126);
            ::close(in_tmp);
            ::close(out_tmp);
            char *argv[] = {const_cast<char *>(binary.c_str()),
                            const_cast<char *>(kWorkerFlag), nullptr};
            ::execv(binary.c_str(), argv);
            std::fprintf(stderr, "shard worker: exec %s failed: %s\n",
                         binary.c_str(), std::strerror(errno));
            ::_exit(127);
        }
        ::close(to_pipe[0]);
        ::close(from_pipe[1]);
        Worker &w = workers[static_cast<std::size_t>(i)];
        w.pid = pid;
        w.toFd = to_pipe[1];
        w.fromFd = from_pipe[0];
        w.alive = true;
        w.lastActivity = Clock::now();
        ++stats.workersSpawned;
    }

    std::vector<bool> received(n_cells, false);
    std::size_t receivedCount = 0;
    std::uint64_t nextShardId = 0;
    exec::ProgressSink sink(options.progress, n_cells);

    auto reap = [](Worker &w) {
        if (w.toFd >= 0)
            ::close(w.toFd);
        if (w.fromFd >= 0)
            ::close(w.fromFd);
        w.toFd = w.fromFd = -1;
        if (w.pid > 0) {
            ::kill(w.pid, SIGKILL);
            ::waitpid(w.pid, nullptr, 0);
            w.pid = -1;
        }
    };

    // Death handling: reap the process and re-queue every cell it
    // was assigned but never delivered. The remnants go to the front
    // of the queue — they are the oldest work and likely block sweep
    // completion.
    auto onDeath = [&](Worker &w) {
        if (!w.alive)
            return;
        w.alive = false;
        ++stats.workerDeaths;
        reap(w);
        for (auto &entry : w.outstanding) {
            std::vector<std::uint64_t> remnant(entry.second.begin(),
                                               entry.second.end());
            if (remnant.empty())
                continue;
            queue.push_front(std::move(remnant));
            ++stats.shardsReassigned;
        }
        w.outstanding.clear();
    };

    auto dispatch = [&](Worker &w) {
        if (!w.alive || w.busy || queue.empty())
            return;
        ShardAssignmentMsg assign;
        assign.shard = nextShardId++;
        assign.cells = std::move(queue.front());
        queue.pop_front();
        w.outstanding[assign.shard] = std::set<std::uint64_t>(
            assign.cells.begin(), assign.cells.end());
        if (!writeFrameToFd(w.toFd, FrameType::ShardAssignment,
                        encodeShardAssignment(assign))) {
            onDeath(w);
            return;
        }
        w.busy = true;
        ++stats.shardsDispatched;
    };

    for (std::size_t i = 0; i < workers.size(); ++i) {
        Worker &w = workers[i];
        req.workerId = static_cast<std::uint32_t>(i);
        if (!writeFrameToFd(w.toFd, FrameType::SweepRequest,
                        encodeSweepRequest(req)))
            onDeath(w);
    }

    auto handleFrame = [&](Worker &w, const Frame &frame) -> bool {
        w.lastActivity = Clock::now();
        switch (frame.type) {
        case FrameType::Hello: {
            HelloMsg hello;
            if (!decodeHello(frame.payload, hello) ||
                hello.version != kProtocolVersion)
                return false;
            return true;
        }
        case FrameType::Heartbeat:
            return true;
        case FrameType::CellResult: {
            CellResultMsg m;
            if (!decodeCellResult(frame.payload, m) ||
                m.cell >= n_cells)
                return false;
            sim::RunResult r;
            if (!cache::decodeRunResult(m.result.data(),
                                        m.result.size(), r))
                return false;
            const std::size_t b = m.cell / policies.size();
            const std::size_t p = m.cell % policies.size();
            // The payload must describe the cell it claims to be —
            // a worker answering the wrong cell would silently skew
            // the merge otherwise.
            if (r.benchmark != benchmarks[b] ||
                r.policy != policies[p])
                return false;
            auto shardIt = w.outstanding.find(m.shard);
            if (shardIt != w.outstanding.end())
                shardIt->second.erase(m.cell);
            if (received[m.cell]) {
                // A reassigned shard overlapped with results the
                // dead worker managed to flush first: determinism
                // makes both copies bit-identical, keep either.
                ++stats.duplicateCells;
            } else {
                received[m.cell] = true;
                ++receivedCount;
                sink.completed(sim::progressLine(r));
            }
            sweep.results[b][p] = std::move(r);
            return true;
        }
        case FrameType::ShardDone: {
            ShardDoneMsg done;
            if (!decodeShardDone(frame.payload, done))
                return false;
            auto it = w.outstanding.find(done.shard);
            if (it == w.outstanding.end() || !it->second.empty())
                return false; // done without delivering every cell
            w.outstanding.erase(it);
            w.busy = false;
            return true;
        }
        default:
            return false; // coordinator-bound streams carry nothing else
        }
    };

    while (receivedCount < n_cells) {
        bool anyAlive = false;
        for (auto &w : workers) {
            dispatch(w);
            anyAlive = anyAlive || w.alive;
        }
        if (!anyAlive)
            fatal("sharded sweep: every worker died with ",
                  n_cells - receivedCount, " of ", n_cells,
                  " cells outstanding");

        std::vector<pollfd> fds;
        std::vector<std::size_t> fdWorker;
        for (std::size_t i = 0; i < workers.size(); ++i) {
            if (!workers[i].alive)
                continue;
            fds.push_back({workers[i].fromFd, POLLIN, 0});
            fdWorker.push_back(i);
        }
        int rv = ::poll(fds.data(),
                        static_cast<nfds_t>(fds.size()), 100);
        if (rv < 0 && errno != EINTR)
            fatal("sharded sweep: poll() failed: ",
                  std::strerror(errno));

        for (std::size_t k = 0; k < fds.size(); ++k) {
            Worker &w = workers[fdWorker[k]];
            if (!w.alive ||
                !(fds[k].revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            switch (pumpFrames(w.fromFd, w.parser,
                               [&](const Frame &frame) {
                                   return handleFrame(w, frame);
                               })) {
            case PumpStatus::Ok:
                break;
            case PumpStatus::Eof:
            case PumpStatus::Error:
                onDeath(w);
                break;
            case PumpStatus::Corrupt:
            case PumpStatus::Rejected:
                warn("sharded sweep: worker ", fdWorker[k],
                     " sent a malformed stream; reassigning its "
                     "shards");
                onDeath(w);
                break;
            }
        }

        if (options.timeoutMs > 0) {
            const auto now = Clock::now();
            for (std::size_t i = 0; i < workers.size(); ++i) {
                Worker &w = workers[i];
                if (!w.alive || !w.busy)
                    continue;
                const auto silent =
                    std::chrono::duration_cast<
                        std::chrono::milliseconds>(
                        now - w.lastActivity)
                        .count();
                if (silent > options.timeoutMs) {
                    warn("sharded sweep: worker ", i, " silent for ",
                         silent, " ms; killing and reassigning");
                    onDeath(w);
                }
            }
        }
    }

    // Clean shutdown: ask nicely, then reap. A worker ignoring the
    // request is killed by reap()'s SIGKILL before waitpid.
    for (auto &w : workers) {
        if (!w.alive)
            continue;
        writeFrameToFd(w.toFd, FrameType::Shutdown, {});
        ::close(w.toFd);
        w.toFd = -1;
        // Give the worker a moment to exit on its own so the common
        // path reaps a clean exit status rather than a SIGKILL.
        for (int spin = 0; spin < 200; ++spin) {
            pid_t got = ::waitpid(w.pid, nullptr, WNOHANG);
            if (got == w.pid) {
                w.pid = -1;
                break;
            }
            struct timespec ts = {0, 5 * 1000 * 1000};
            ::nanosleep(&ts, nullptr);
        }
        reap(w);
        w.alive = false;
    }

    if (stats_out)
        *stats_out = stats;
    return sweep;
}

#else // !__unix__

sim::SweepResult runShardedSweep(const ShardedSweepOptions &,
                                 ShardedSweepStats *)
{
    fatal("the sharded sweep coordinator requires a POSIX host");
}

#endif // __unix__

} // namespace shard
} // namespace tg
