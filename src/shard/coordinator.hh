/**
 * @file
 * Coordinator of the sharded multi-process sweep.
 *
 * runShardedSweep() partitions the (benchmark x policy) grid into
 * guided-size shards (shard/partition.hh), spawns N worker processes
 * by re-execing the current binary in `--tg-worker` mode, dispatches
 * shards dynamically to idle workers over the length-prefixed frame
 * protocol (shard/protocol.hh), and merges the streamed per-cell
 * results by their canonical grid key.
 *
 * Determinism contract (the process-level extension of the PR 1/3/6
 * thread contract): every cell's RunResult is a deterministic
 * function of (chip, config, benchmark, policy, opts) alone and the
 * codec is bit-exact, so the merged SweepResult is bit-identical to
 * a single-process runSweep() — regardless of worker count, shard
 * sizing, arrival order, or which worker ran which shard.
 *
 * Fault handling: a worker that exits, closes its pipe, corrupts its
 * stream, or goes silent past the heartbeat timeout is killed and
 * its *unacknowledged* cells (assigned minus already received) are
 * re-queued for the survivors. Per-cell idempotency is free — a cell
 * computed twice yields the same bits, and the merge keys by cell,
 * so reassignment can never skew the result. When the last worker
 * dies with work outstanding the sweep fatals rather than returning
 * a partial grid.
 */

#ifndef TG_SHARD_COORDINATOR_HH
#define TG_SHARD_COORDINATOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/sweep.hh"

namespace tg {
namespace shard {

/** Knobs of one sharded sweep. */
struct ShardedSweepOptions
{
    /** Grid; empty defaults match runSweep (all 14 SPLASH-2x
     *  profiles x the paper's full policy set). */
    std::vector<std::string> benchmarks;
    std::vector<core::PolicyKind> policies;

    /** Opaque context blob for the worker's SetupFactory (see
     *  worker.hh; encodeBasicSetup covers the canned chips). */
    std::vector<std::uint8_t> setup;

    /** Worker process count (clamped to >= 1). */
    int processes = 2;

    /** Threads inside each worker (runSweepCells jobs); 0 defers to
     *  the worker-side TG_JOBS / hardware ladder. */
    int jobsPerWorker = 1;

    /** RecordOptions forwarded to every cell. Scalar fields travel
     *  on the wire; a fault scenario must be encoded in `setup`
     *  instead (faultScenario here must stay null). */
    sim::RecordOptions opts;

    /** Print one progress line per merged cell (same format as
     *  runSweep's). */
    bool progress = false;

    /** Worker heartbeat period [ms]. */
    int heartbeatMs = 200;

    /** Kill a worker silent for this long [ms]; 0 disables the
     *  timeout (exit/EOF detection still applies). */
    int timeoutMs = 30000;

    /** Partitioner shard-size floor (see partitionCells). */
    std::size_t minShardCells = 1;

    /** Worker binary; empty resolves /proc/self/exe. */
    std::string binaryPath;
};

/** Observable outcomes of a sharded sweep (tests, logs). */
struct ShardedSweepStats
{
    int workersSpawned = 0;
    int workerDeaths = 0;    //!< exits, EOFs, corruption, timeouts
    int shardsPlanned = 0;   //!< initial partition size
    int shardsDispatched = 0;
    int shardsReassigned = 0; //!< re-queued remnants of dead workers
    std::size_t cellsTotal = 0;
    std::size_t duplicateCells = 0; //!< re-received after reassignment
};

/**
 * Run the grid across worker processes and merge. Blocks until every
 * cell has been received (or fatals when no worker survives).
 */
sim::SweepResult runShardedSweep(const ShardedSweepOptions &options,
                                 ShardedSweepStats *stats = nullptr);

} // namespace shard
} // namespace tg

#endif // TG_SHARD_COORDINATOR_HH
