#include "core/aging.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace tg {
namespace core {

AgingModel::AgingModel(int n_vrs, AgingParams params)
    : prm(params), acc(static_cast<std::size_t>(n_vrs), 0.0)
{
    TG_ASSERT(n_vrs >= 1, "aging model needs regulators");
    TG_ASSERT(prm.activationDelta > 0.0,
              "activation delta must be positive");
    TG_ASSERT(prm.idleStressFraction >= 0.0 &&
                  prm.idleStressFraction <= 1.0,
              "idle stress fraction outside [0, 1]");
}

void
AgingModel::accumulate(int vr, Celsius t, bool active, Seconds dt)
{
    TG_ASSERT(dt >= 0.0, "negative time step");
    double thermal =
        std::exp2((t - prm.refTemp) / prm.activationDelta);
    double stress = active ? 1.0 : prm.idleStressFraction;
    acc.at(static_cast<std::size_t>(vr)) += dt * stress * thermal;
}

double
AgingModel::damage(int vr) const
{
    return acc.at(static_cast<std::size_t>(vr));
}

double
AgingModel::maxDamage() const
{
    return *std::max_element(acc.begin(), acc.end());
}

double
AgingModel::meanDamage() const
{
    double sum = 0.0;
    for (double d : acc)
        sum += d;
    return sum / static_cast<double>(acc.size());
}

double
AgingModel::imbalance() const
{
    double mean = meanDamage();
    return mean > 0.0 ? maxDamage() / mean : 1.0;
}

} // namespace core
} // namespace tg
