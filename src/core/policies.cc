/**
 * @file
 * Implementations of the gating policies (paper Sections 6.2 and 6.3).
 */

#include "core/policy.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"

namespace tg {
namespace core {

const char *
policyName(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::OffChip: return "off-chip";
      case PolicyKind::AllOn: return "all-on";
      case PolicyKind::Naive: return "Naive";
      case PolicyKind::OracT: return "OracT";
      case PolicyKind::OracV: return "OracV";
      case PolicyKind::OracVT: return "OracVT";
      case PolicyKind::PracT: return "PracT";
      case PolicyKind::PracVT: return "PracVT";
    }
    panic("unknown policy kind");
}

bool
isOracular(PolicyKind kind)
{
    return kind == PolicyKind::OracT || kind == PolicyKind::OracV ||
           kind == PolicyKind::OracVT;
}

bool
hasEmergencyOverride(PolicyKind kind)
{
    return kind == PolicyKind::OracVT || kind == PolicyKind::PracVT;
}

bool
isThermallyAware(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::Naive:
      case PolicyKind::OracT:
      case PolicyKind::OracVT:
      case PolicyKind::PracT:
      case PolicyKind::PracVT:
        return true;
      default:
        return false;
    }
}

const std::vector<PolicyKind> &
allPolicyKinds()
{
    static const std::vector<PolicyKind> kinds = {
        PolicyKind::Naive,  PolicyKind::OracT,  PolicyKind::OracV,
        PolicyKind::OracVT, PolicyKind::PracT,  PolicyKind::PracVT,
        PolicyKind::AllOn,  PolicyKind::OffChip,
    };
    return kinds;
}

namespace {

/** Indices 0..n-1 sorted ascending by the given key. */
std::vector<int>
sortedByKey(const std::vector<double> &key)
{
    std::vector<int> idx(key.size());
    std::iota(idx.begin(), idx.end(), 0);
    std::stable_sort(idx.begin(), idx.end(), [&](int a, int b) {
        return key[static_cast<std::size_t>(a)] <
               key[static_cast<std::size_t>(b)];
    });
    return idx;
}

/** Number of VRs a policy may choose from (all, when no faults). */
int
selectableCount(const DomainState &state)
{
    int n = 0;
    for (std::size_t i = 0; i < state.vrTemps.size(); ++i)
        if (state.selectable(i))
            ++n;
    return n;
}

/** First `non` selectable entries of a ranked index list. */
std::vector<int>
takeSelectable(const DomainState &state, const std::vector<int> &order,
               int non)
{
    std::vector<int> out;
    out.reserve(static_cast<std::size_t>(non));
    for (int i : order) {
        if (!state.selectable(static_cast<std::size_t>(i)))
            continue;
        out.push_back(i);
        if (static_cast<int>(out.size()) == non)
            break;
    }
    TG_ASSERT(static_cast<int>(out.size()) == non,
              "policy asked for ", non, " VRs but only ", out.size(),
              " are selectable");
    return out;
}

/** Baseline: every regulator stays on all the time. */
class AllOnPolicy : public GatingPolicy
{
  public:
    std::vector<int>
    select(const DomainState &state, int, const PolicyToolkit &) override
    {
        // Every VR that still works is on; a failed (stuck-off) one
        // cannot be. vrUnavailable is empty on the healthy path.
        std::vector<int> all;
        all.reserve(state.vrTemps.size());
        for (std::size_t i = 0; i < state.vrTemps.size(); ++i)
            if (i >= state.vrUnavailable.size() ||
                !state.vrUnavailable[i])
                all.push_back(static_cast<int>(i));
        return all;
    }

    PolicyKind kind() const override { return PolicyKind::AllOn; }
};

/** Baseline: no on-chip regulation; selection is never consulted. */
class OffChipPolicy : public GatingPolicy
{
  public:
    std::vector<int>
    select(const DomainState &, int, const PolicyToolkit &) override
    {
        return {};
    }

    PolicyKind kind() const override { return PolicyKind::OffChip; }
};

/**
 * Naive thermally-aware gating (Section 6.2.1): keep the n_on
 * *instantaneously* coolest regulators on, letting the hottest ones
 * cool until the next decision point. The paper shows this
 * back-fires: a just-gated (cool) regulator overshoots once it takes
 * the load back, because the decision ignores the heating its
 * activation causes.
 */
class NaivePolicy : public GatingPolicy
{
  public:
    std::vector<int>
    select(const DomainState &state, int non,
           const PolicyToolkit &) override
    {
        TG_ASSERT(non >= 1 && non <= selectableCount(state),
                  "bad n_on");
        return takeSelectable(state, sortedByKey(state.vrTemps), non);
    }

    PolicyKind kind() const override { return PolicyKind::Naive; }
};

/**
 * Predictive thermally-aware gating (Sections 6.2.2 and 6.3): rank
 * regulators by *anticipated* temperature — the temperature each one
 * would reach by the next decision point if kept active — and keep
 * the n_on coolest-to-be. The anticipated temperature follows the
 * linear model of Eqn. 2, deltaT_i = theta_i * deltaP_i, where
 * deltaP_i is the change in the regulator's dissipated loss implied
 * by the (known or forecast) demand change. OracT and PracT share
 * this logic; they differ in the fidelity of the inputs the driver
 * provides (exact vs. sensor temperatures, true future vs. WMA
 * demand).
 */
class AnticipatedTempPolicy : public GatingPolicy
{
  public:
    explicit AnticipatedTempPolicy(PolicyKind k) : myKind(k) {}

    std::vector<int>
    select(const DomainState &state, int non,
           const PolicyToolkit &kit) override
    {
        std::size_t n = state.vrTemps.size();
        TG_ASSERT(non >= 1 && non <= selectableCount(state),
                  "bad n_on");
        TG_ASSERT(kit.thetas && kit.thetas->size() == n,
                  "anticipated-temperature policy needs thetas");
        TG_ASSERT(state.vrLossNow.size() == n,
                  "need per-VR loss for anticipation");

        std::vector<double> anticipated(n);
        for (std::size_t i = 0; i < n; ++i) {
            double d_p =
                state.vrLossNextPerActive - state.vrLossNow[i];
            anticipated[i] =
                state.vrTemps[i] + (*kit.thetas)[i] * d_p;
        }
        return takeSelectable(state, sortedByKey(anticipated), non);
    }

    PolicyKind kind() const override { return myKind; }

  private:
    PolicyKind myKind;
};

/**
 * Voltage-noise-aware gating (Section 6.2.3): thermally oblivious;
 * keeps the regulators physically closest to where the voltage noise
 * peaks (the highest-current region, i.e. the logic units) active,
 * exactly as the paper describes. The selection finds the node with
 * the worst estimated droop under the anticipated load map and ranks
 * regulators by their transfer resistance to it — which clusters the
 * active set around the noise hot spot and is precisely what wrecks
 * the thermal profile (Section 6.2.3, Fig. 12d).
 */
class NoiseAwarePolicy : public GatingPolicy
{
  public:
    std::vector<int>
    select(const DomainState &state, int non,
           const PolicyToolkit &kit) override
    {
        int n = static_cast<int>(state.vrTemps.size());
        TG_ASSERT(non >= 1 && non <= selectableCount(state),
                  "bad n_on");
        TG_ASSERT(kit.pdn, "noise-aware policy needs the domain PDN");
        TG_ASSERT(static_cast<int>(state.nodeCurrents.size()) ==
                      kit.pdn->nodeCount(),
                  "node currents mismatch");

        // Locate the noise peak: the node with the worst droop when
        // every path matters equally (all-VR parallel estimate).
        std::vector<int> all(static_cast<std::size_t>(n));
        std::iota(all.begin(), all.end(), 0);
        int worst_node = 0;
        double worst = -1.0;
        for (int j = 0; j < kit.pdn->nodeCount(); ++j) {
            double inv = 0.0;
            for (int k = 0; k < n; ++k)
                inv += 1.0 / kit.pdn->transferResistance(j, k);
            double droop =
                state.nodeCurrents[static_cast<std::size_t>(j)] / inv;
            if (droop > worst) {
                worst = droop;
                worst_node = j;
            }
        }

        // Keep the n_on regulators best coupled to the peak.
        std::vector<double> key(static_cast<std::size_t>(n));
        for (int k = 0; k < n; ++k)
            key[static_cast<std::size_t>(k)] =
                kit.pdn->transferResistance(worst_node, k);
        auto order = takeSelectable(state, sortedByKey(key), non);
        std::sort(order.begin(), order.end());
        return order;
    }

    PolicyKind kind() const override { return PolicyKind::OracV; }
};

} // namespace

std::unique_ptr<GatingPolicy>
makePolicy(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::OffChip:
        return std::make_unique<OffChipPolicy>();
      case PolicyKind::AllOn:
        return std::make_unique<AllOnPolicy>();
      case PolicyKind::Naive:
        return std::make_unique<NaivePolicy>();
      case PolicyKind::OracT:
      case PolicyKind::OracVT:
      case PolicyKind::PracT:
      case PolicyKind::PracVT:
        // The VT variants select like their T counterparts; the
        // emergency override is applied by the governor on top.
        return std::make_unique<AnticipatedTempPolicy>(kind);
      case PolicyKind::OracV:
        return std::make_unique<NoiseAwarePolicy>();
    }
    panic("unknown policy kind");
}

} // namespace core
} // namespace tg
