/**
 * @file
 * Gating-policy interface and the policy kinds evaluated in the paper.
 *
 * Every policy answers the same question once per decision interval
 * and per Vdd-domain: given that n_on regulators must be active to
 * sustain peak conversion efficiency (paper Section 6.1), *which*
 * n_on of the domain's regulators should they be (Section 6.2)?
 *
 * The oracular and practical variants of a policy share selection
 * logic and differ only in input fidelity: Orac* receive exact
 * temperatures and the true upcoming demand, Prac* receive stale
 * sensor readings and a WMA forecast. The simulation driver prepares
 * the inputs accordingly; the policy sees only a DomainState.
 */

#ifndef TG_CORE_POLICY_HH
#define TG_CORE_POLICY_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/units.hh"
#include "pdn/domain_pdn.hh"
#include "vreg/network.hh"

namespace tg {
namespace core {

/** The eight schemes of the paper's evaluation. */
enum class PolicyKind
{
    OffChip, //!< baseline: no on-chip regulation at all
    AllOn,   //!< baseline: all 96 VRs always active
    Naive,   //!< thermally-aware greedy: n_on instantaneous-coolest
    OracT,   //!< oracular predictive thermal-only (hottest-to-be off)
    OracV,   //!< oracular voltage-noise-only (thermally oblivious)
    OracVT,  //!< OracT + all-on override on (oracular) emergencies
    PracT,   //!< practical OracT: sensors + WMA + theta model
    PracVT,  //!< PracT + predictor-driven all-on override
};

/** Display name used in figures ("Naive", "OracT", ...). */
const char *policyName(PolicyKind kind);

/** True for the policies with perfect-information inputs. */
bool isOracular(PolicyKind kind);

/** True for the policies that react to voltage emergencies. */
bool hasEmergencyOverride(PolicyKind kind);

/** True when the policy needs the per-VR thermal inputs. */
bool isThermallyAware(PolicyKind kind);

/**
 * Everything a policy may inspect when selecting regulators for one
 * domain at one decision point. The driver fills the fields at the
 * fidelity matching the policy kind.
 */
struct DomainState
{
    int domain = -1;         //!< Vdd-domain id
    long decision = 0;       //!< decision-point index
    Amperes demandNow = 0.0; //!< instantaneous load current [A]
    Amperes demandNext = 0.0; //!< anticipated next-interval load [A]

    /** Per local VR: temperature available to the policy [degC]. */
    std::vector<Celsius> vrTemps;
    /** Per local VR: conversion loss it dissipates right now [W]. */
    std::vector<Watts> vrLossNow;
    /** Anticipated per-VR loss if active next interval [W]. */
    Watts vrLossNextPerActive = 0.0;

    /** Extra active regulators beyond the efficiency optimum
     *  (practical-policy headroom; 0 for oracular policies). */
    int headroomVrs = 0;

    /** Per-PDN-node load currents for noise estimation [A]. */
    std::vector<Amperes> nodeCurrents;
    /** Workload di/dt intensity in [0, 1]. */
    double didt = 0.0;

    /**
     * Graceful-degradation inputs (fault injection). Empty means
     * every VR is healthy — the common path; when non-empty they are
     * sized like vrTemps. An unavailable (failed stuck-off) VR must
     * never appear in a selection; a forced-on (failed stuck-on,
     * ungateable) VR is added to the active set by the governor and
     * must not be selected by the policy either.
     */
    std::vector<std::uint8_t> vrUnavailable;
    std::vector<std::uint8_t> vrForcedOn;

    /** Whether local VR `i` may be chosen by a selection policy. */
    bool
    selectable(std::size_t i) const
    {
        if (i < vrUnavailable.size() && vrUnavailable[i])
            return false;
        if (i < vrForcedOn.size() && vrForcedOn[i])
            return false;
        return true;
    }
};

/** Read-only helpers a policy may use. */
struct PolicyToolkit
{
    const pdn::DomainPdn *pdn = nullptr;
    const vreg::RegulatorNetwork *network = nullptr;
    /** Fitted theta_i per local VR (Eqn. 2); empty when unused. */
    const std::vector<double> *thetas = nullptr;
};

/**
 * A regulator-selection policy (paper Section 6.2/6.3).
 *
 * select() returns exactly `non` local VR indices unless the policy
 * is a baseline that ignores n_on (AllOn returns every VR).
 */
class GatingPolicy
{
  public:
    virtual ~GatingPolicy() = default;

    /** Select the active set for one domain at one decision point. */
    virtual std::vector<int> select(const DomainState &state, int non,
                                    const PolicyToolkit &kit) = 0;

    /** The policy kind this instance implements. */
    virtual PolicyKind kind() const = 0;

    /** Figure label. */
    std::string name() const { return policyName(kind()); }
};

/** Instantiate the selection logic for a policy kind. */
std::unique_ptr<GatingPolicy> makePolicy(PolicyKind kind);

/** All kinds in the paper's figure order. */
const std::vector<PolicyKind> &allPolicyKinds();

} // namespace core
} // namespace tg

#endif // TG_CORE_POLICY_HH
