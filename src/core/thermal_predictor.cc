#include "core/thermal_predictor.hh"

#include "common/logging.hh"
#include "common/stats.hh"

namespace tg {
namespace core {

ThermalPredictor::ThermalPredictor(int n_vrs)
    : thetas(static_cast<std::size_t>(n_vrs), 0.0),
      sampleDp(static_cast<std::size_t>(n_vrs)),
      sampleDt(static_cast<std::size_t>(n_vrs))
{
    TG_ASSERT(n_vrs >= 1, "predictor needs at least one regulator");
}

void
ThermalPredictor::addSample(int vr, Watts d_p, Celsius d_t)
{
    sampleDp.at(static_cast<std::size_t>(vr)).push_back(d_p);
    sampleDt.at(static_cast<std::size_t>(vr)).push_back(d_t);
}

void
ThermalPredictor::fit()
{
    for (std::size_t i = 0; i < thetas.size(); ++i) {
        if (sampleDp[i].empty()) {
            warn("no profiling samples for regulator ", i,
                 "; theta left at ", thetas[i]);
            continue;
        }
        thetas[i] = fitSlopeThroughOrigin(sampleDp[i], sampleDt[i]);
    }
    fitted = true;
}

double
ThermalPredictor::theta(int vr) const
{
    return thetas.at(static_cast<std::size_t>(vr));
}

void
ThermalPredictor::setTheta(int vr, double theta)
{
    thetas.at(static_cast<std::size_t>(vr)) = theta;
    fitted = true;
}

double
ThermalPredictor::rSquared() const
{
    TG_ASSERT(fitted, "fit() must run before validation");
    std::vector<double> reference;
    std::vector<double> predicted;
    for (std::size_t i = 0; i < thetas.size(); ++i) {
        for (std::size_t s = 0; s < sampleDp[i].size(); ++s) {
            reference.push_back(sampleDt[i][s]);
            predicted.push_back(thetas[i] * sampleDp[i][s]);
        }
    }
    if (reference.empty())
        return 0.0;
    return ::tg::rSquared(reference, predicted);
}

} // namespace core
} // namespace tg
