/**
 * @file
 * Regulator wear-out (aging) accounting.
 *
 * The paper's discussion (Section 7) argues ThermoGater policies
 * affect aging because per-regulator utilisation is not uniform —
 * and that PracVT's tendency to park highly-utilised regulators in
 * cooler regions may *balance* aging under wear-out mechanisms whose
 * rate grows exponentially with temperature. This model makes that
 * argument measurable: each regulator accumulates damage at a rate
 * exponential in temperature (Arrhenius-style, doubling every
 * `activationDelta` degC) and weighted by whether it is conducting
 * (electromigration/BTI stress mostly under load). Damage is
 * expressed in equivalent stress-seconds at the reference
 * temperature, so a regulator held at refTemp, always on, ages by
 * 1.0 per second.
 */

#ifndef TG_CORE_AGING_HH
#define TG_CORE_AGING_HH

#include <vector>

#include "common/units.hh"

namespace tg {
namespace core {

/** Wear-out rate parameters. */
struct AgingParams
{
    Celsius refTemp = 55.0;        //!< rate = 1 at this temperature
    Celsius activationDelta = 12.0; //!< degC per rate doubling
    /** Stress rate of a gated (non-conducting) regulator relative
     *  to an active one: BTI relaxes and EM stops without current,
     *  but thermal cycling still contributes. */
    double idleStressFraction = 0.2;
};

/** Per-regulator damage accumulator. */
class AgingModel
{
  public:
    explicit AgingModel(int n_vrs, AgingParams params = {});

    /** Integrate `dt` seconds of stress for regulator `vr`. */
    void accumulate(int vr, Celsius t, bool active, Seconds dt);

    /** Accumulated damage of `vr` [equivalent seconds at refTemp]. */
    double damage(int vr) const;

    /** All damages, indexed like the regulator list. */
    const std::vector<double> &damages() const { return acc; }

    double maxDamage() const;
    double meanDamage() const;

    /**
     * Aging imbalance: max over mean damage. 1.0 means perfectly
     * balanced wear; large values mean a few regulators age much
     * faster than the rest and bound the network's lifetime.
     */
    double imbalance() const;

    const AgingParams &params() const { return prm; }

  private:
    AgingParams prm;
    std::vector<double> acc;
};

} // namespace core
} // namespace tg

#endif // TG_CORE_AGING_HH
