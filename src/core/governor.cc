#include "core/governor.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"

namespace tg {
namespace core {

Governor::Governor(PolicyKind kind, int n_domains)
    : policyKind(kind), policy(makePolicy(kind)),
      onTime(static_cast<std::size_t>(n_domains)),
      accounted(static_cast<std::size_t>(n_domains), 0.0)
{
    TG_ASSERT(n_domains >= 1, "need at least one domain");
}

Decision
Governor::decide(const DomainState &state, const PolicyToolkit &kit,
                 bool emergency_alert)
{
    ++decisions;
    Decision d;
    int n_vrs = static_cast<int>(state.vrTemps.size());

    if (policyKind == PolicyKind::OffChip) {
        d.non = 0;
        return d;  // no on-chip regulators at all
    }

    TG_ASSERT(kit.network, "governor needs the regulator network");
    d.non = std::min(kit.network->size(),
                     kit.network->requiredActive(state.demandNext) +
                         state.headroomVrs);

    if (policyKind == PolicyKind::AllOn) {
        d.active.resize(static_cast<std::size_t>(n_vrs));
        std::iota(d.active.begin(), d.active.end(), 0);
        return d;
    }

    if (hasEmergencyOverride(policyKind) && emergency_alert) {
        // Voltage emergency ahead: this domain goes all-on until the
        // next decision point (Section 6.2.4). Efficiency degrades
        // for the interval, but emergencies are rare (Table 2).
        d.active.resize(static_cast<std::size_t>(n_vrs));
        std::iota(d.active.begin(), d.active.end(), 0);
        d.overridden = true;
        ++overrides;
        return d;
    }

    d.active = policy->select(state, d.non, kit);
    TG_ASSERT(static_cast<int>(d.active.size()) == d.non,
              "policy returned ", d.active.size(),
              " regulators, expected ", d.non);
    return d;
}

void
Governor::recordActivity(int domain, const std::vector<int> &active,
                         int n_vrs, Seconds span)
{
    auto &dom = onTime.at(static_cast<std::size_t>(domain));
    if (dom.empty())
        dom.assign(static_cast<std::size_t>(n_vrs), 0.0);
    TG_ASSERT(static_cast<int>(dom.size()) == n_vrs,
              "inconsistent VR count for domain ", domain);
    for (int vr : active)
        dom.at(static_cast<std::size_t>(vr)) += span;
    accounted.at(static_cast<std::size_t>(domain)) += span;
}

double
Governor::activityRate(int domain, int vr) const
{
    const auto &dom = onTime.at(static_cast<std::size_t>(domain));
    double total = accounted.at(static_cast<std::size_t>(domain));
    if (dom.empty() || total <= 0.0)
        return 0.0;
    return dom.at(static_cast<std::size_t>(vr)) / total;
}

} // namespace core
} // namespace tg
