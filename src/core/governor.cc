#include "core/governor.hh"

#include <algorithm>
#include <numeric>
#include <utility>

#include "common/logging.hh"

namespace tg {
namespace core {

Governor::Governor(PolicyKind kind, int n_domains)
    : policyKind(kind), policy(makePolicy(kind)),
      onTime(static_cast<std::size_t>(n_domains)),
      accounted(static_cast<std::size_t>(n_domains), 0.0)
{
    TG_ASSERT(n_domains >= 1, "need at least one domain");
}

Decision
Governor::decide(const DomainState &state, const PolicyToolkit &kit,
                 bool emergency_alert)
{
    ++decisions;
    Decision d;
    int n_vrs = static_cast<int>(state.vrTemps.size());

    if (policyKind == PolicyKind::OffChip) {
        d.non = 0;
        return d;  // no on-chip regulators at all
    }

    TG_ASSERT(kit.network, "governor needs the regulator network");
    d.non = std::min(kit.network->size(),
                     kit.network->requiredActive(state.demandNext) +
                         state.headroomVrs);

    if (!state.vrUnavailable.empty() || !state.vrForcedOn.empty())
        return decideDegraded(state, kit, emergency_alert,
                              std::move(d));

    if (policyKind == PolicyKind::AllOn) {
        d.active.resize(static_cast<std::size_t>(n_vrs));
        std::iota(d.active.begin(), d.active.end(), 0);
        return d;
    }

    if (hasEmergencyOverride(policyKind) && emergency_alert) {
        // Voltage emergency ahead: this domain goes all-on until the
        // next decision point (Section 6.2.4). Efficiency degrades
        // for the interval, but emergencies are rare (Table 2).
        d.active.resize(static_cast<std::size_t>(n_vrs));
        std::iota(d.active.begin(), d.active.end(), 0);
        d.overridden = true;
        ++overrides;
        return d;
    }

    d.active = policy->select(state, d.non, kit);
    TG_ASSERT(static_cast<int>(d.active.size()) == d.non,
              "policy returned ", d.active.size(),
              " regulators, expected ", d.non);
    return d;
}

Decision
Governor::decideDegraded(const DomainState &state,
                         const PolicyToolkit &kit, bool emergency_alert,
                         Decision d)
{
    int n_vrs = static_cast<int>(state.vrTemps.size());
    auto unavailable = [&](int i) {
        return static_cast<std::size_t>(i) <
                   state.vrUnavailable.size() &&
               state.vrUnavailable[static_cast<std::size_t>(i)];
    };
    auto forcedOn = [&](int i) {
        // Stuck-off wins over stuck-on: a VR cannot be both.
        return !unavailable(i) &&
               static_cast<std::size_t>(i) < state.vrForcedOn.size() &&
               state.vrForcedOn[static_cast<std::size_t>(i)];
    };

    std::vector<int> avail, forced;
    avail.reserve(static_cast<std::size_t>(n_vrs));
    for (int i = 0; i < n_vrs; ++i) {
        if (unavailable(i))
            continue;
        avail.push_back(i);
        if (forcedOn(i))
            forced.push_back(i);
    }
    int n_avail = static_cast<int>(avail.size());

    if (n_avail < n_vrs || !forced.empty())
        ++degradedDecisions;

    if (n_avail == 0) {
        // Unreachable through the injector (last-survivor rule) but a
        // hand-built scenario can get here: the domain is dark.
        ++underSupplied;
        d.non = 0;
        d.active.clear();
        return d;
    }

    // Minimum-supply floor. Under degradation the governor does not
    // trust the forecast below present demand: it provisions for the
    // worse of now/next so a shrunken population cannot ride a
    // falling forecast into a silent under-supply.
    int floor_need = kit.network->minFeasibleActive(
        std::max(state.demandNow, state.demandNext));
    if (n_avail < floor_need)
        ++underSupplied;  // even all-survivors-on runs overloaded

    if (policyKind == PolicyKind::AllOn ||
        (hasEmergencyOverride(policyKind) && emergency_alert)) {
        // All-on means every VR that still works (stuck-on VRs are
        // part of that set by construction).
        d.active = std::move(avail);
        if (policyKind != PolicyKind::AllOn) {
            d.overridden = true;
            ++overrides;
        }
        return d;
    }

    int target = std::min(d.non, n_avail);
    int floor_cap = std::min(floor_need, n_avail);
    if (target < floor_cap) {
        target = floor_cap;
        ++floorEngagements;
    }
    d.non = target;

    // Stuck-on regulators are active whether selected or not; the
    // policy only picks the remainder, from VRs that are neither
    // failed nor forced. target <= n_avail guarantees the remainder
    // fits in the selectable population.
    int extra = target - static_cast<int>(forced.size());
    d.active = std::move(forced);
    if (extra > 0) {
        auto sel = policy->select(state, extra, kit);
        TG_ASSERT(static_cast<int>(sel.size()) == extra,
                  "policy returned ", sel.size(),
                  " regulators, expected ", extra);
        d.active.insert(d.active.end(), sel.begin(), sel.end());
    }
    std::sort(d.active.begin(), d.active.end());
    return d;
}

void
Governor::recordActivity(int domain, const std::vector<int> &active,
                         int n_vrs, Seconds span)
{
    auto &dom = onTime.at(static_cast<std::size_t>(domain));
    if (dom.empty())
        dom.assign(static_cast<std::size_t>(n_vrs), 0.0);
    TG_ASSERT(static_cast<int>(dom.size()) == n_vrs,
              "inconsistent VR count for domain ", domain);
    for (int vr : active)
        dom.at(static_cast<std::size_t>(vr)) += span;
    accounted.at(static_cast<std::size_t>(domain)) += span;
}

double
Governor::activityRate(int domain, int vr) const
{
    const auto &dom = onTime.at(static_cast<std::size_t>(domain));
    double total = accounted.at(static_cast<std::size_t>(domain));
    if (dom.empty() || total <= 0.0)
        return 0.0;
    return dom.at(static_cast<std::size_t>(vr)) / total;
}

} // namespace core
} // namespace tg
