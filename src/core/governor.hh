/**
 * @file
 * The ThermoGater governor (paper Fig. 3).
 *
 * Once per decision interval and per Vdd-domain the governor:
 *  1. computes n_on, the active-regulator count that sustains peak
 *     conversion efficiency for the anticipated demand (factor I of
 *     Section 4);
 *  2. asks the configured policy which n_on regulators to keep on
 *     (factor II, thermal emergencies);
 *  3. applies the voltage-emergency override for the *VT policies:
 *     upon an (oracular or predicted) emergency alert the affected
 *     domain switches to all-on until the next decision point,
 *     trading a negligible efficiency loss for the best-case noise
 *     profile (factor III, Section 6.2.4/6.3).
 *
 * It also keeps the per-regulator activity accounting behind Fig. 13.
 */

#ifndef TG_CORE_GOVERNOR_HH
#define TG_CORE_GOVERNOR_HH

#include <memory>
#include <vector>

#include "core/policy.hh"

namespace tg {
namespace core {

/** Outcome of one per-domain gating decision. */
struct Decision
{
    std::vector<int> active; //!< local VR indices kept on
    int non = 0;             //!< efficiency-optimal active count
    bool overridden = false; //!< all-on emergency override applied
};

/** Chip-level governor: one policy, per-domain decisions. */
class Governor
{
  public:
    /**
     * @param kind      policy to govern with
     * @param n_domains number of Vdd-domains on the chip
     */
    Governor(PolicyKind kind, int n_domains);

    PolicyKind kind() const { return policyKind; }

    /**
     * Draw the gating decision for one domain.
     *
     * @param state           policy inputs (fidelity per policy kind)
     * @param kit             domain handles (PDN, network, thetas)
     * @param emergency_alert emergency expected in the next interval
     *                        (only honoured by the *VT policies)
     */
    Decision decide(const DomainState &state, const PolicyToolkit &kit,
                    bool emergency_alert);

    /**
     * Account `span` seconds of the given active set for Fig. 13's
     * per-regulator activity rates.
     */
    void recordActivity(int domain, const std::vector<int> &active,
                        int n_vrs, Seconds span);

    /** Fraction of accounted time VR `vr` of `domain` was active. */
    double activityRate(int domain, int vr) const;

    /** Count of decisions that ended in an all-on override. */
    long overrideCount() const { return overrides; }
    /** Total decisions drawn. */
    long decisionCount() const { return decisions; }

    /** Decisions taken with at least one faulted regulator. */
    long degradedDecisionCount() const { return degradedDecisions; }
    /** Decisions where the minimum-supply floor raised the target. */
    long floorEngagementCount() const { return floorEngagements; }
    /** Decisions where even every surviving VR could not meet the
     *  floor (the domain ran overloaded for the interval). */
    long underSuppliedCount() const { return underSupplied; }

  private:
    PolicyKind policyKind;
    std::unique_ptr<GatingPolicy> policy;
    std::vector<std::vector<Seconds>> onTime;  //!< [domain][vr]
    std::vector<Seconds> accounted;            //!< [domain]
    long overrides = 0;
    long decisions = 0;
    long degradedDecisions = 0;
    long floorEngagements = 0;
    long underSupplied = 0;

    /** decide() under regulator faults (vrUnavailable/vrForcedOn
     *  non-empty). `d` arrives with d.non = the healthy target. */
    Decision decideDegraded(const DomainState &state,
                            const PolicyToolkit &kit,
                            bool emergency_alert, Decision d);
};

} // namespace core
} // namespace tg

#endif // TG_CORE_GOVERNOR_HH
