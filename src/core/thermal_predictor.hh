/**
 * @file
 * Linear per-regulator thermal predictor (paper Eqn. 2).
 *
 * PracT predicts the temperature a regulator would reach by the next
 * decision point as T + theta_i * deltaP_i, with one proportionality
 * constant theta_i per regulator extracted from a profiling pass.
 * The paper notes such linear models are generally poor for whole-
 * chip thermal prediction (Skadron et al.) but highly accurate when
 * confined to the tiny, fast-settling regulator nodes; it calibrates
 * the thetas to keep the coefficient of determination R^2 (Eqn. 3)
 * around 0.99, which the tests here reproduce against the full RC
 * model.
 */

#ifndef TG_CORE_THERMAL_PREDICTOR_HH
#define TG_CORE_THERMAL_PREDICTOR_HH

#include <vector>

#include "common/units.hh"

namespace tg {
namespace core {

/** Fitted deltaT = theta * deltaP model, one theta per regulator. */
class ThermalPredictor
{
  public:
    /** @param n_vrs number of regulators covered */
    explicit ThermalPredictor(int n_vrs);

    /** Record one profiling observation for regulator `vr`. */
    void addSample(int vr, Watts d_p, Celsius d_t);

    /** Least-squares fit of theta_i from the recorded samples. */
    void fit();

    /** Fitted (or explicitly set) theta of regulator `vr` [degC/W]. */
    double theta(int vr) const;

    /** Override a theta (used by tests and calibration studies). */
    void setTheta(int vr, double theta);

    /** Anticipated temperature: t_now + theta_vr * d_p. */
    Celsius
    anticipate(int vr, Celsius t_now, Watts d_p) const
    {
        return t_now + theta(vr) * d_p;
    }

    /**
     * Coefficient of determination (Eqn. 3) of the fitted model over
     * the recorded profiling samples: compares predicted against
     * observed next-point temperatures pooled across regulators,
     * using a common baseline of 0 for the deltas' reference
     * temperature (the samples are temperature *changes*, so the
     * pooled R^2 is computed on the deltas).
     */
    double rSquared() const;

    int size() const { return static_cast<int>(thetas.size()); }

  private:
    std::vector<double> thetas;
    std::vector<std::vector<Watts>> sampleDp;
    std::vector<std::vector<Celsius>> sampleDt;
    bool fitted = false;
};

} // namespace core
} // namespace tg

#endif // TG_CORE_THERMAL_PREDICTOR_HH
