/**
 * @file
 * On-chip thermal sensor bank with realistic staleness.
 *
 * The paper's practical policies read digital thermal sensors placed
 * next to every regulator. Sensors of the assumed class deliver up to
 * 10K readings/s, so at a decision point the freshest available
 * reading is up to 100 us old; gathering and sorting adds a
 * comparable firmware latency (Section 6.3). The bank models this by
 * buffering samples and serving the newest one older than the
 * configured delay, quantised to the sensor resolution with optional
 * gaussian read noise.
 */

#ifndef TG_SENSORS_THERMAL_SENSOR_HH
#define TG_SENSORS_THERMAL_SENSOR_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/units.hh"

namespace tg {
namespace sensors {

/** Configuration of a thermal sensor bank. */
struct SensorParams
{
    Seconds delay = 100e-6;     //!< reading staleness [s]
    Celsius quantization = 0.25; //!< reading resolution [degC]
    Celsius noiseSigma = 0.05;  //!< gaussian read noise [degC]
};

/** A bank of identical thermal sensors, one per monitored spot. */
class ThermalSensorBank
{
  public:
    /**
     * @param n_sensors number of monitored spots (e.g. one per VR)
     * @param seed      read-noise stream seed
     */
    ThermalSensorBank(int n_sensors, SensorParams params,
                      std::uint64_t seed);

    /** Record the true temperatures at simulation time `now` [s]. */
    void record(Seconds now, const std::vector<Celsius> &temps);

    /**
     * Read every sensor at time `now`: returns the newest recorded
     * sample no younger than the delay, quantised and noised. Before
     * any sufficiently old sample exists, serves the oldest recorded
     * one (start-up transient).
     */
    std::vector<Celsius> read(Seconds now);

    /** read() into a caller-owned (resized) buffer. */
    void readInto(Seconds now, std::vector<Celsius> &out);

    /** Drop all buffered samples (e.g. between runs). */
    void reset();

    int size() const { return nSensors; }

  private:
    int nSensors;
    SensorParams prm;
    Rng rng;

    struct Sample
    {
        Seconds time = 0.0;
        std::vector<Celsius> temps;
    };

    /**
     * Recycling ring of buffered samples: the i-th oldest sample is
     * ring[(head + i) % ring.size()]. Evicted slots keep their temps
     * vector, so the per-frame record() path stops allocating once
     * the ring has grown to the steady-state depth.
     */
    std::vector<Sample> ring;
    std::size_t head = 0;  //!< index of the oldest buffered sample
    std::size_t used = 0;  //!< buffered sample count

    Sample &at(std::size_t i) { return ring[(head + i) % ring.size()]; }
    const Sample &at(std::size_t i) const
    {
        return ring[(head + i) % ring.size()];
    }
};

} // namespace sensors
} // namespace tg

#endif // TG_SENSORS_THERMAL_SENSOR_HH
