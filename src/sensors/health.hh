/**
 * @file
 * Sensor-health monitoring and graceful degradation.
 *
 * Closed-loop thermal control is sensitive to sensor error: a lying
 * sensor steers the governor into gating the wrong regulators (and a
 * frozen one hides an emerging hot spot entirely). The monitor
 * screens every decision-time reading with cheap plausibility checks
 * — finite, inside the physical range, rate-of-change bounded, not
 * frozen while its neighbourhood moves — quarantines sensors that
 * fail them, and substitutes the nearest healthy neighbour's reading
 * (VR thermal fields are spatially smooth at the mm scale, so the
 * neighbour estimate is the best cheap stand-in). A quarantined
 * sensor is re-admitted after its raw readings re-agree with the
 * neighbour estimate for a probation period.
 *
 * The monitor is deterministic (no RNG) and pure in its input
 * sequence, so faulted runs replay bit-identically.
 */

#ifndef TG_SENSORS_HEALTH_HH
#define TG_SENSORS_HEALTH_HH

#include <utility>
#include <vector>

#include "common/units.hh"

namespace tg {
namespace sensors {

/** Quarantine heuristics (see DESIGN.md "Fault model"). */
struct HealthParams
{
    Celsius minPlausible = 0.0;    //!< below = implausible [degC]
    Celsius maxPlausible = 150.0;  //!< above = implausible [degC]
    /** Largest credible change between consecutive reads [degC]. */
    Celsius maxStep = 25.0;
    /** Reads with |delta| below this count towards a freeze. */
    Celsius freezeEps = 1e-9;
    /** Consecutive frozen reads before quarantine. */
    int freezeReads = 3;
    /** A freeze only quarantines once the neighbour estimate has
     *  moved by more than this since the freeze began (a genuinely
     *  steady thermal field keeps every sensor static). [degC] */
    Celsius freezeNeighbourMove = 1.0;
    /** Largest credible deviation from the neighbour estimate
     *  [degC]; beyond it the sensor is quarantined (stuck-at). */
    Celsius neighbourTolerance = 30.0;
    /** Agreement band for re-admission [degC]. */
    Celsius readmitTolerance = 5.0;
    /** Consecutive in-band reads before re-admission. */
    int readmitReads = 3;
};

/**
 * Health monitor over a bank of spatially distributed sensors.
 *
 * filter() is called once per decision epoch with the (possibly
 * corrupted) readings; it sanitises them in place and maintains the
 * per-sensor quarantine state the resilience accounting reports.
 */
class SensorHealthMonitor
{
  public:
    /**
     * @param positions sensor coordinates [mm] (e.g. VR site
     *                  centres) for the nearest-neighbour ordering
     */
    SensorHealthMonitor(std::vector<std::pair<double, double>> positions,
                        HealthParams params = {});

    /**
     * Screen and sanitise one epoch's readings in place: quarantined
     * (or newly implausible) entries are replaced by the nearest
     * healthy neighbour's accepted reading (or the sensor's last
     * accepted value when every neighbour is unhealthy).
     */
    void filter(Seconds now, std::vector<Celsius> &readings);

    /** Whether sensor `i` is currently quarantined. */
    bool quarantined(int i) const
    {
        return state[static_cast<std::size_t>(i)].quarantined;
    }

    /** Currently quarantined sensor count. */
    int quarantinedCount() const;

    /** Quarantine entries so far (re-quarantines count again). */
    long quarantineEvents() const { return events; }

    int size() const { return static_cast<int>(state.size()); }

    const HealthParams &params() const { return prm; }

  private:
    struct SensorState
    {
        bool quarantined = false;
        bool hasAccepted = false;
        Celsius lastAccepted = 0.0;  //!< last healthy (or substituted)
        Celsius lastRaw = 0.0;       //!< last raw reading seen
        bool hasRaw = false;
        int frozenStreak = 0;   //!< consecutive unchanged raw reads
        Celsius freezeEstRef = 0.0; //!< neighbour est. at freeze start
        int agreeStreak = 0;    //!< consecutive in-band reads (readmit)
    };

    HealthParams prm;
    std::vector<SensorState> state;
    /** Per sensor: every other sensor ordered by distance. */
    std::vector<std::vector<int>> neighbourOrder;
    long events = 0;

    /** Nearest healthy neighbour's accepted value, else fallback. */
    Celsius neighbourEstimate(std::size_t i, Celsius fallback) const;
};

} // namespace sensors
} // namespace tg

#endif // TG_SENSORS_HEALTH_HH
