/**
 * @file
 * Voltage-emergency predictor.
 *
 * PracVT needs advance warning of voltage emergencies to switch the
 * affected domain to all-on before the droop lands. The literature
 * the paper builds on ([30], Reddi et al.) demonstrates predictors
 * with better than 90% accuracy from recurring program/uarch event
 * activity. This model reproduces that *behaviour*: given the ground
 * truth of whether the upcoming interval would contain an emergency
 * (which the simulation knows), it fires with the configured
 * sensitivity and adds false alarms at the configured rate,
 * deterministically per (seed, domain, decision index).
 */

#ifndef TG_SENSORS_EMERGENCY_PREDICTOR_HH
#define TG_SENSORS_EMERGENCY_PREDICTOR_HH

#include <cstdint>

#include "common/rng.hh"

namespace tg {
namespace sensors {

/** Accuracy characteristics of the predictor. */
struct PredictorParams
{
    double sensitivity = 0.90;    //!< P(alert | emergency ahead)
    double falseAlarmRate = 0.02; //!< P(alert | no emergency ahead)
};

/** Per-chip emergency predictor, one logical instance per domain. */
class EmergencyPredictor
{
  public:
    EmergencyPredictor(PredictorParams params, std::uint64_t seed);

    /**
     * Predict whether the next interval of `domain` holds a voltage
     * emergency. `truth` is the simulation's ground truth for that
     * interval; `decision` indexes the decision point so repeated
     * queries are reproducible.
     */
    bool predict(int domain, long decision, bool truth);

    const PredictorParams &params() const { return prm; }

  private:
    PredictorParams prm;
    std::uint64_t seed;
};

} // namespace sensors
} // namespace tg

#endif // TG_SENSORS_EMERGENCY_PREDICTOR_HH
