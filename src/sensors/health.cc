#include "sensors/health.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace tg {
namespace sensors {

SensorHealthMonitor::SensorHealthMonitor(
    std::vector<std::pair<double, double>> positions,
    HealthParams params)
    : prm(params), state(positions.size())
{
    TG_ASSERT(!positions.empty(), "health monitor needs sensors");
    TG_ASSERT(prm.maxPlausible > prm.minPlausible,
              "empty plausible temperature range");
    TG_ASSERT(prm.freezeReads >= 1 && prm.readmitReads >= 1,
              "streak lengths must be >= 1");

    // Precompute each sensor's neighbour ordering by distance, with
    // the index as a deterministic tie-break.
    std::size_t n = positions.size();
    neighbourOrder.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        auto &order = neighbourOrder[i];
        order.reserve(n - 1);
        for (std::size_t j = 0; j < n; ++j)
            if (j != i)
                order.push_back(static_cast<int>(j));
        auto dist2 = [&](int j) {
            double dx = positions[static_cast<std::size_t>(j)].first -
                        positions[i].first;
            double dy = positions[static_cast<std::size_t>(j)].second -
                        positions[i].second;
            return dx * dx + dy * dy;
        };
        std::stable_sort(order.begin(), order.end(),
                         [&](int a, int b) {
                             double da = dist2(a), db = dist2(b);
                             if (da != db)
                                 return da < db;
                             return a < b;
                         });
    }
}

Celsius
SensorHealthMonitor::neighbourEstimate(std::size_t i,
                                       Celsius fallback) const
{
    for (int j : neighbourOrder[i]) {
        const SensorState &s = state[static_cast<std::size_t>(j)];
        if (!s.quarantined && s.hasAccepted)
            return s.lastAccepted;
    }
    return fallback;
}

int
SensorHealthMonitor::quarantinedCount() const
{
    int n = 0;
    for (const auto &s : state)
        if (s.quarantined)
            ++n;
    return n;
}

void
SensorHealthMonitor::filter(Seconds, std::vector<Celsius> &readings)
{
    TG_ASSERT(readings.size() == state.size(),
              "health filter size mismatch");
    std::size_t n = state.size();

    // Neighbour estimates are computed against the PREVIOUS epoch's
    // accepted values for every sensor before any state updates, so
    // the result does not depend on the sensor iteration order.
    std::vector<Celsius> estimate(n);
    for (std::size_t i = 0; i < n; ++i) {
        const SensorState &s = state[i];
        Celsius fb = s.hasAccepted
                         ? s.lastAccepted
                         : 0.5 * (prm.minPlausible + prm.maxPlausible);
        estimate[i] = neighbourEstimate(i, fb);
    }

    for (std::size_t i = 0; i < n; ++i) {
        SensorState &s = state[i];
        Celsius raw = readings[i];
        bool finite = std::isfinite(raw);

        // Freeze tracking runs on the raw stream regardless of
        // quarantine state (a frozen sensor stays frozen inside
        // quarantine, which keeps it there).
        if (finite && s.hasRaw &&
            std::abs(raw - s.lastRaw) <= prm.freezeEps) {
            if (s.frozenStreak == 0)
                s.freezeEstRef = estimate[i];
            ++s.frozenStreak;
        } else {
            s.frozenStreak = 0;
        }
        s.lastRaw = finite ? raw : s.lastRaw;
        s.hasRaw = s.hasRaw || finite;

        bool implausible = !finite || raw < prm.minPlausible ||
                           raw > prm.maxPlausible;
        // Rate-of-change: a physical VR temperature cannot jump this
        // far between consecutive decisions.
        if (!implausible && s.hasAccepted &&
            std::abs(raw - s.lastAccepted) > prm.maxStep)
            implausible = true;
        // Spatial coherence: far off every healthy neighbour.
        if (!implausible && s.hasAccepted &&
            std::abs(raw - estimate[i]) > prm.neighbourTolerance)
            implausible = true;
        // Frozen while the neighbourhood moved.
        if (!implausible && s.frozenStreak >= prm.freezeReads &&
            std::abs(estimate[i] - s.freezeEstRef) >
                prm.freezeNeighbourMove)
            implausible = true;

        if (!s.quarantined) {
            if (implausible) {
                s.quarantined = true;
                s.agreeStreak = 0;
                ++events;
            } else {
                s.lastAccepted = raw;
                s.hasAccepted = true;
                continue;  // healthy: reading passes through
            }
        } else {
            // Probation: release after sustained agreement with the
            // neighbourhood on plausible raw readings. The jump
            // check deliberately does not apply here: the sensor's
            // last accepted value is the substitute, which a healthy
            // reading may legitimately be far from.
            bool agrees = finite && raw >= prm.minPlausible &&
                          raw <= prm.maxPlausible &&
                          std::abs(raw - estimate[i]) <=
                              prm.readmitTolerance;
            s.agreeStreak = agrees ? s.agreeStreak + 1 : 0;
            if (s.agreeStreak >= prm.readmitReads) {
                s.quarantined = false;
                s.frozenStreak = 0;
                s.lastAccepted = raw;
                s.hasAccepted = true;
                continue;
            }
        }

        // Quarantined (or just quarantined): serve the substitute.
        readings[i] = estimate[i];
        s.lastAccepted = estimate[i];
        s.hasAccepted = true;
    }
}

} // namespace sensors
} // namespace tg
