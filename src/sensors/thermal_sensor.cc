#include "sensors/thermal_sensor.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace tg {
namespace sensors {

namespace {

/** Tolerance for time comparisons (absorbs FP rounding). */
constexpr Seconds kTimeEps = 1e-12;

} // namespace

ThermalSensorBank::ThermalSensorBank(int n_sensors, SensorParams params,
                                     std::uint64_t seed)
    : nSensors(n_sensors), prm(params), rng(seed)
{
    TG_ASSERT(n_sensors >= 1, "sensor bank needs at least one sensor");
    TG_ASSERT(prm.delay >= 0.0, "negative sensor delay");
    TG_ASSERT(prm.quantization > 0.0, "quantisation must be positive");
}

void
ThermalSensorBank::record(Seconds now, const std::vector<Celsius> &temps)
{
    TG_ASSERT(static_cast<int>(temps.size()) == nSensors,
              "sensor record size mismatch");
    TG_ASSERT(used == 0 || now >= at(used - 1).time,
              "sensor samples must be recorded in time order");
    if (used == ring.size()) {
        // Grow the ring (warm-up only: once the depth covers the
        // staleness horizon, eviction below balances insertion and
        // the recycled slots make record() allocation-free).
        std::rotate(ring.begin(),
                    ring.begin() + static_cast<std::ptrdiff_t>(head),
                    ring.end());
        head = 0;
        ring.emplace_back();
    }
    Sample &slot = ring[(head + used) % ring.size()];
    slot.time = now;
    slot.temps.assign(temps.begin(), temps.end());
    ++used;
    // Keep only what could still be served: one sample older than the
    // horizon suffices as the fallback. The epsilon absorbs the
    // floating-point error of repeated time arithmetic.
    while (used >= 2 && at(1).time <= now - prm.delay + kTimeEps) {
        head = (head + 1) % ring.size();
        --used;
    }
}

std::vector<Celsius>
ThermalSensorBank::read(Seconds now)
{
    std::vector<Celsius> out;
    readInto(now, out);
    return out;
}

void
ThermalSensorBank::readInto(Seconds now, std::vector<Celsius> &out)
{
    TG_ASSERT(used > 0, "reading an empty sensor bank");

    // Newest sample at least `delay` old; otherwise the oldest one.
    const Sample *chosen = &at(0);
    for (std::size_t i = 0; i < used; ++i) {
        const Sample &s = at(i);
        if (s.time <= now - prm.delay + kTimeEps)
            chosen = &s;
        else
            break;
    }

    out.assign(chosen->temps.begin(), chosen->temps.end());
    for (auto &t : out) {
        if (prm.noiseSigma > 0.0)
            t += rng.gaussian(0.0, prm.noiseSigma);
        t = std::round(t / prm.quantization) * prm.quantization;
    }
}

void
ThermalSensorBank::reset()
{
    ring.clear();
    head = 0;
    used = 0;
}

} // namespace sensors
} // namespace tg
