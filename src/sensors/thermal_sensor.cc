#include "sensors/thermal_sensor.hh"

#include <cmath>

#include "common/logging.hh"

namespace tg {
namespace sensors {

namespace {

/** Tolerance for time comparisons (absorbs FP rounding). */
constexpr Seconds kTimeEps = 1e-12;

} // namespace

ThermalSensorBank::ThermalSensorBank(int n_sensors, SensorParams params,
                                     std::uint64_t seed)
    : nSensors(n_sensors), prm(params), rng(seed)
{
    TG_ASSERT(n_sensors >= 1, "sensor bank needs at least one sensor");
    TG_ASSERT(prm.delay >= 0.0, "negative sensor delay");
    TG_ASSERT(prm.quantization > 0.0, "quantisation must be positive");
}

void
ThermalSensorBank::record(Seconds now, const std::vector<Celsius> &temps)
{
    TG_ASSERT(static_cast<int>(temps.size()) == nSensors,
              "sensor record size mismatch");
    TG_ASSERT(buffer.empty() || now >= buffer.back().time,
              "sensor samples must be recorded in time order");
    buffer.push_back({now, temps});
    // Keep only what could still be served: one sample older than the
    // horizon suffices as the fallback. The epsilon absorbs the
    // floating-point error of repeated time arithmetic.
    while (buffer.size() >= 2 &&
           buffer[1].time <= now - prm.delay + kTimeEps)
        buffer.pop_front();
}

std::vector<Celsius>
ThermalSensorBank::read(Seconds now)
{
    TG_ASSERT(!buffer.empty(), "reading an empty sensor bank");

    // Newest sample at least `delay` old; otherwise the oldest one.
    const Sample *chosen = &buffer.front();
    for (const auto &s : buffer) {
        if (s.time <= now - prm.delay + kTimeEps)
            chosen = &s;
        else
            break;
    }

    std::vector<Celsius> out(chosen->temps);
    for (auto &t : out) {
        if (prm.noiseSigma > 0.0)
            t += rng.gaussian(0.0, prm.noiseSigma);
        t = std::round(t / prm.quantization) * prm.quantization;
    }
    return out;
}

void
ThermalSensorBank::reset()
{
    buffer.clear();
}

} // namespace sensors
} // namespace tg
