#include "sensors/emergency_predictor.hh"

#include "common/logging.hh"

namespace tg {
namespace sensors {

EmergencyPredictor::EmergencyPredictor(PredictorParams params,
                                       std::uint64_t seed)
    : prm(params), seed(seed)
{
    TG_ASSERT(prm.sensitivity >= 0.0 && prm.sensitivity <= 1.0,
              "sensitivity outside [0, 1]");
    TG_ASSERT(prm.falseAlarmRate >= 0.0 && prm.falseAlarmRate <= 1.0,
              "false alarm rate outside [0, 1]");
}

bool
EmergencyPredictor::predict(int domain, long decision, bool truth)
{
    // A dedicated generator per (domain, decision) keeps predictions
    // independent of query order and of other domains' queries.
    std::uint64_t mix = seed;
    mix ^= static_cast<std::uint64_t>(domain + 1) * 0x9e3779b97f4a7c15ull;
    mix ^= static_cast<std::uint64_t>(decision + 1) *
           0xbf58476d1ce4e5b9ull;
    Rng rng(mix);
    double p = truth ? prm.sensitivity : prm.falseAlarmRate;
    return rng.bernoulli(p);
}

} // namespace sensors
} // namespace tg
