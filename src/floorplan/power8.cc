#include "floorplan/power8.hh"

#include <string>

#include "common/logging.hh"

namespace tg {
namespace floorplan {

namespace {

constexpr double kVrEdge = 0.2;  // VR site edge [mm] => 0.04 mm^2

/**
 * Place one core's internal blocks (Fig. 4a) at origin (ox, oy) with
 * extent (w, h): L2 across the bottom, IFU/LSU in the middle row,
 * ISU/EXU on top.
 */
void
addCoreBlocks(FloorplanBuilder &b, const std::string &prefix, double ox,
              double oy, double w, double h, int domain, int core_id)
{
    double l2_h = 0.40 * h;
    double mid_h = 0.30 * h;
    double top_h = h - l2_h - mid_h;
    double half_w = 0.5 * w;

    b.addBlock(prefix + ".l2", UnitKind::L2, {ox, oy, w, l2_h}, domain,
               core_id);
    b.addBlock(prefix + ".ifu", UnitKind::Ifu,
               {ox, oy + l2_h, half_w, mid_h}, domain, core_id);
    b.addBlock(prefix + ".lsu", UnitKind::Lsu,
               {ox + half_w, oy + l2_h, half_w, mid_h}, domain, core_id);
    b.addBlock(prefix + ".isu", UnitKind::Isu,
               {ox, oy + l2_h + mid_h, half_w, top_h}, domain, core_id);
    b.addBlock(prefix + ".exu", UnitKind::Exu,
               {ox + half_w, oy + l2_h + mid_h, half_w, top_h}, domain,
               core_id);
}

/**
 * Place `count` VR sites over a core's footprint on a near-square
 * lattice (3x3 for the default 9).
 */
void
addCoreVrs(FloorplanBuilder &b, const std::string &prefix, double ox,
           double oy, double w, double h, int domain, int count = 9)
{
    int cols = 1;
    while (cols * cols < count)
        ++cols;
    int rows = (count + cols - 1) / cols;
    int id = 0;
    for (int ry = 0; ry < rows && id < count; ++ry) {
        int in_row = std::min(cols, count - ry * cols);
        for (int rx = 0; rx < in_row; ++rx) {
            double cx = ox + w * (2 * rx + 1) / (2.0 * in_row);
            double cy = oy + h * (2 * ry + 1) / (2.0 * rows);
            b.addVr(prefix + ".vr" + std::to_string(id++),
                    {cx - 0.5 * kVrEdge, cy - 0.5 * kVrEdge, kVrEdge,
                     kVrEdge},
                    domain);
        }
    }
}

/** Place a row of `count` VR sites across an L3 bank. */
void
addL3Vrs(FloorplanBuilder &b, const std::string &prefix, double ox,
         double oy, double w, double h, int domain, int count = 3)
{
    for (int rx = 0; rx < count; ++rx) {
        double cx = ox + w * (2 * rx + 1) / (2.0 * count);
        double cy = oy + 0.5 * h;
        b.addVr(prefix + ".vr" + std::to_string(rx),
                {cx - 0.5 * kVrEdge, cy - 0.5 * kVrEdge, kVrEdge,
                 kVrEdge},
                domain);
    }
}

} // namespace

Chip
buildPower8Chip()
{
    Chip chip = buildPower8ChipVariant(9, 3);
    TG_ASSERT(chip.plan.vrs().size() == 96, "expected 96 VR sites");
    TG_ASSERT(chip.plan.domains().size() == 16, "expected 16 domains");
    return chip;
}

Chip
buildPower8ChipVariant(int vrs_per_core, int vrs_per_l3)
{
    if (vrs_per_core < 1 || vrs_per_l3 < 1)
        fatal("need at least one VR per domain");
    const double die = 21.0;      // 21 x 21 mm = 441 mm^2
    const double core_w = die / 4.0;
    const double core_h = 7.0;
    const double mc_w = 1.5;
    const double noc_h = 0.5;
    const double band_y = core_h;            // middle band: [7, 14)
    const double band_h = die - 2 * core_h;  // 7 mm
    const double l3_h = 0.5 * (band_h - noc_h);
    const double l3_w = (die - 2 * mc_w) / 4.0;

    FloorplanBuilder b(die, die);

    // Declare the 16 Vdd-domains: 8 core + 8 L3 (paper Section 5).
    for (int c = 0; c < 8; ++c)
        b.addDomain("core" + std::to_string(c), DomainKind::Core);
    for (int k = 0; k < 8; ++k)
        b.addDomain("l3b" + std::to_string(k), DomainKind::L3);

    // Cores: 4 along the bottom edge, 4 along the top edge.
    for (int c = 0; c < 8; ++c) {
        bool top = c >= 4;
        double ox = core_w * (c % 4);
        double oy = top ? die - core_h : 0.0;
        std::string prefix = "core" + std::to_string(c);
        addCoreBlocks(b, prefix, ox, oy, core_w, core_h, c, c);
        addCoreVrs(b, prefix, ox, oy, core_w, core_h, c,
                   vrs_per_core);
    }

    // Middle band: MCs at the die edges, L3 banks in two rows with the
    // NoC spine between them.
    b.addBlock("mc0", UnitKind::Mc, {0.0, band_y, mc_w, band_h}, -1);
    b.addBlock("mc1", UnitKind::Mc, {die - mc_w, band_y, mc_w, band_h},
               -1);
    b.addBlock("noc", UnitKind::Noc,
               {mc_w, band_y + l3_h, die - 2 * mc_w, noc_h}, -1);

    for (int k = 0; k < 8; ++k) {
        bool upper = k >= 4;
        double ox = mc_w + l3_w * (k % 4);
        double oy = upper ? band_y + l3_h + noc_h : band_y;
        std::string prefix = "l3b" + std::to_string(k);
        int domain = 8 + k;
        b.addBlock(prefix, UnitKind::L3, {ox, oy, l3_w, l3_h}, domain);
        addL3Vrs(b, prefix, ox, oy, l3_w, l3_h, domain, vrs_per_l3);
    }

    Chip chip;
    chip.plan = b.build();
    chip.params = ChipParams{};
    return chip;
}

Chip
buildMiniChip(int n_cores)
{
    if (n_cores < 1 || n_cores > 4)
        fatal("buildMiniChip supports 1..4 cores, got ", n_cores);

    const double core_w = 5.25;
    const double core_h = 7.0;
    const double l3_h = 3.0;
    const double die_w = core_w * n_cores;
    const double die_h = core_h + l3_h;

    FloorplanBuilder b(die_w, die_h);
    for (int c = 0; c < n_cores; ++c)
        b.addDomain("core" + std::to_string(c), DomainKind::Core);
    for (int k = 0; k < n_cores; ++k)
        b.addDomain("l3b" + std::to_string(k), DomainKind::L3);

    for (int c = 0; c < n_cores; ++c) {
        double ox = core_w * c;
        std::string prefix = "core" + std::to_string(c);
        addCoreBlocks(b, prefix, ox, l3_h, core_w, core_h, c, c);
        addCoreVrs(b, prefix, ox, l3_h, core_w, core_h, c);
        std::string l3p = "l3b" + std::to_string(c);
        b.addBlock(l3p, UnitKind::L3, {ox, 0.0, core_w, l3_h},
                   n_cores + c);
        addL3Vrs(b, l3p, ox, 0.0, core_w, l3_h, n_cores + c);
    }

    Chip chip;
    chip.plan = b.build();
    chip.params = ChipParams{};
    chip.params.cores = n_cores;
    chip.params.areaMm2 = die_w * die_h;
    chip.params.tdp = 150.0 * chip.params.areaMm2 / 441.0;
    return chip;
}

} // namespace floorplan
} // namespace tg
