#include "floorplan/floorplan.hh"

#include <cmath>

#include "common/logging.hh"

namespace tg {
namespace floorplan {

const char *
unitKindName(UnitKind kind)
{
    switch (kind) {
      case UnitKind::Ifu: return "IFU";
      case UnitKind::Isu: return "ISU";
      case UnitKind::Exu: return "EXU";
      case UnitKind::Lsu: return "LSU";
      case UnitKind::L2: return "L2";
      case UnitKind::L3: return "L3";
      case UnitKind::Noc: return "NOC";
      case UnitKind::Mc: return "MC";
    }
    panic("unknown unit kind");
}

bool
isLogicUnit(UnitKind kind)
{
    switch (kind) {
      case UnitKind::Ifu:
      case UnitKind::Isu:
      case UnitKind::Exu:
      case UnitKind::Lsu:
        return true;
      case UnitKind::L2:
      case UnitKind::L3:
      case UnitKind::Noc:
      case UnitKind::Mc:
        return false;
    }
    panic("unknown unit kind");
}

int
Floorplan::blockIndex(const std::string &name) const
{
    for (std::size_t i = 0; i < blockList.size(); ++i)
        if (blockList[i].name == name)
            return static_cast<int>(i);
    fatal("no block named '", name, "' in floorplan");
}

int
Floorplan::blockAt(double x, double y) const
{
    for (std::size_t i = 0; i < blockList.size(); ++i)
        if (blockList[i].rect.contains(x, y))
            return static_cast<int>(i);
    return -1;
}

std::vector<int>
Floorplan::blocksOfKind(UnitKind kind) const
{
    std::vector<int> out;
    for (std::size_t i = 0; i < blockList.size(); ++i)
        if (blockList[i].kind == kind)
            out.push_back(static_cast<int>(i));
    return out;
}

double
Floorplan::blockArea() const
{
    double a = 0.0;
    for (const auto &b : blockList)
        a += b.rect.area();
    return a;
}

FloorplanBuilder::FloorplanBuilder(double width, double height)
{
    TG_ASSERT(width > 0.0 && height > 0.0, "die must have positive area");
    fp.dieW = width;
    fp.dieH = height;
}

int
FloorplanBuilder::addBlock(const std::string &name, UnitKind kind,
                           Rect rect, int domain, int core_id)
{
    Block b;
    b.name = name;
    b.kind = kind;
    b.rect = rect;
    b.domain = domain;
    b.coreId = core_id;
    fp.blockList.push_back(std::move(b));
    return static_cast<int>(fp.blockList.size() - 1);
}

int
FloorplanBuilder::addVr(const std::string &name, Rect rect, int domain)
{
    VrSite vr;
    vr.name = name;
    vr.rect = rect;
    vr.domain = domain;
    fp.vrList.push_back(std::move(vr));
    return static_cast<int>(fp.vrList.size() - 1);
}

int
FloorplanBuilder::addDomain(const std::string &name, DomainKind kind)
{
    VddDomain d;
    d.id = static_cast<int>(fp.domainList.size());
    d.kind = kind;
    d.name = name;
    fp.domainList.push_back(std::move(d));
    return fp.domainList.back().id;
}

Floorplan
FloorplanBuilder::build()
{
    auto inside = [&](const Rect &r) {
        const double eps = 1e-9;
        return r.x >= -eps && r.y >= -eps &&
               r.x + r.w <= fp.dieW + eps && r.y + r.h <= fp.dieH + eps;
    };

    for (const auto &b : fp.blockList) {
        if (!inside(b.rect))
            fatal("block '", b.name, "' extends beyond the die");
        if (b.rect.area() <= 0.0)
            fatal("block '", b.name, "' has non-positive area");
    }
    for (std::size_t i = 0; i < fp.blockList.size(); ++i) {
        for (std::size_t j = i + 1; j < fp.blockList.size(); ++j) {
            if (fp.blockList[i].rect.overlaps(fp.blockList[j].rect))
                fatal("blocks '", fp.blockList[i].name, "' and '",
                      fp.blockList[j].name, "' overlap");
        }
    }

    // Resolve VR host blocks and side classification.
    for (auto &vr : fp.vrList) {
        if (!inside(vr.rect))
            fatal("VR '", vr.name, "' extends beyond the die");
        int host = fp.blockAt(vr.rect.cx(), vr.rect.cy());
        if (host < 0)
            fatal("VR '", vr.name, "' sits on no block");
        const Block &hb = fp.blockList[static_cast<std::size_t>(host)];
        if (vr.domain >= 0 && hb.domain != vr.domain)
            fatal("VR '", vr.name, "' sits over block '", hb.name,
                  "' of a different Vdd-domain");
        vr.hostBlock = host;
        vr.memorySide = !isLogicUnit(hb.kind);
    }

    // Derive domain membership.
    for (auto &d : fp.domainList) {
        d.blocks.clear();
        d.vrs.clear();
    }
    auto domain_ok = [&](int dom, const std::string &who) {
        if (dom < 0)
            return false;  // unregulated
        if (dom >= static_cast<int>(fp.domainList.size()))
            fatal("'", who, "' references undeclared domain ", dom);
        return true;
    };
    for (std::size_t i = 0; i < fp.blockList.size(); ++i) {
        const Block &b = fp.blockList[i];
        if (domain_ok(b.domain, b.name))
            fp.domainList[static_cast<std::size_t>(b.domain)]
                .blocks.push_back(static_cast<int>(i));
    }
    for (std::size_t i = 0; i < fp.vrList.size(); ++i) {
        const VrSite &vr = fp.vrList[i];
        if (domain_ok(vr.domain, vr.name))
            fp.domainList[static_cast<std::size_t>(vr.domain)]
                .vrs.push_back(static_cast<int>(i));
    }
    for (const auto &d : fp.domainList) {
        if (d.blocks.empty())
            fatal("Vdd-domain '", d.name, "' has no blocks");
        if (d.vrs.empty())
            fatal("Vdd-domain '", d.name, "' has no regulators");
    }

    return std::move(fp);
}

} // namespace floorplan
} // namespace tg
