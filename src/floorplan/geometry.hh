/**
 * @file
 * Planar geometry primitives for floorplans. All coordinates are in
 * millimetres with the origin at the chip's lower-left corner.
 */

#ifndef TG_FLOORPLAN_GEOMETRY_HH
#define TG_FLOORPLAN_GEOMETRY_HH

namespace tg {
namespace floorplan {

/** Axis-aligned rectangle: lower-left corner plus extent, in mm. */
struct Rect
{
    double x = 0.0;  //!< lower-left x [mm]
    double y = 0.0;  //!< lower-left y [mm]
    double w = 0.0;  //!< width [mm]
    double h = 0.0;  //!< height [mm]

    /** Area in mm^2. */
    double area() const { return w * h; }

    /** Centre x coordinate. */
    double cx() const { return x + 0.5 * w; }
    /** Centre y coordinate. */
    double cy() const { return y + 0.5 * h; }

    /** True when the point (px, py) lies inside (closed lower/left). */
    bool
    contains(double px, double py) const
    {
        return px >= x && px < x + w && py >= y && py < y + h;
    }

    /** True when the two rectangles overlap with positive area. */
    bool
    overlaps(const Rect &o) const
    {
        return x < o.x + o.w && o.x < x + w && y < o.y + o.h &&
               o.y < y + h;
    }

    /** Euclidean distance between rectangle centres [mm]. */
    double centreDistance(const Rect &o) const;
};

} // namespace floorplan
} // namespace tg

#endif // TG_FLOORPLAN_GEOMETRY_HH
