/**
 * @file
 * Canned chip models. buildPower8Chip() reproduces the evaluation
 * platform of the paper (Table 1 + Fig. 4): an 8-core POWER8-like die,
 * 441 mm^2 at 22 nm, 16 Vdd-domains (one per core + private L2, one
 * per L3 bank) and 96 distributed VR sites (9 per core domain, 3 per
 * L3 domain), uniformly placed. buildMiniChip() is a scaled-down
 * variant used by fast unit tests.
 */

#ifndef TG_FLOORPLAN_POWER8_HH
#define TG_FLOORPLAN_POWER8_HH

#include "common/units.hh"
#include "floorplan/floorplan.hh"

namespace tg {
namespace floorplan {

/** Technology / chip-level parameters (paper Table 1). */
struct ChipParams
{
    double technologyNm = 22.0;   //!< technology node [nm]
    double frequencyHz = 4.0e9;   //!< clock frequency [Hz]
    Watts tdp = 150.0;            //!< thermal design power [W]
    Volts vdd = 1.03;             //!< nominal supply voltage [V]
    double areaMm2 = 441.0;       //!< die area [mm^2]
    int cores = 8;                //!< core count
    int issueWidth = 8;           //!< per-core issue width
};

/** A floorplan together with its chip-level parameters. */
struct Chip
{
    Floorplan plan;
    ChipParams params;
};

/**
 * Build the paper's 8-core evaluation chip.
 *
 * 21 x 21 mm die; four cores along the top edge, four along the
 * bottom; the middle band holds two memory controllers at the die
 * edges, a horizontal NoC spine, and eight L3 banks. Each core domain
 * carries a 3 x 3 grid of VR sites (the bottom row sits over the L2
 * => memory-side); each L3 domain carries 3 VR sites. NoC and MCs
 * are supplied off-chip (unregulated, domain -1).
 */
Chip buildPower8Chip();

/**
 * Variant of the evaluation chip with a different regulator count
 * per domain (used by the regulator-count ablation; the paper's
 * footnote 2 argues a lower component-regulator count worsens both
 * the thermal and the voltage-noise profile). Core-domain VRs are
 * placed on a near-square lattice, L3-domain VRs in a row.
 *
 * @param vrs_per_core component VRs per core domain (>= 1)
 * @param vrs_per_l3   component VRs per L3-bank domain (>= 1)
 */
Chip buildPower8ChipVariant(int vrs_per_core, int vrs_per_l3);

/**
 * Build a reduced chip for fast tests: `n_cores` cores (1..4) in one
 * row plus one L3 bank per core below it, same per-domain VR counts
 * as the full chip.
 */
Chip buildMiniChip(int n_cores);

} // namespace floorplan
} // namespace tg

#endif // TG_FLOORPLAN_POWER8_HH
