#include "floorplan/geometry.hh"

#include <cmath>

namespace tg {
namespace floorplan {

double
Rect::centreDistance(const Rect &o) const
{
    double dx = cx() - o.cx();
    double dy = cy() - o.cy();
    return std::sqrt(dx * dx + dy * dy);
}

} // namespace floorplan
} // namespace tg
