/**
 * @file
 * Chip floorplan model: functional blocks, on-chip voltage-regulator
 * (VR) sites, and Vdd-domain membership (paper Fig. 4).
 *
 * Functional blocks tile the die without overlap. VR sites are tiny
 * (0.04 mm^2) overlay squares that sit on top of whatever block owns
 * the silicon underneath them; the thermal model gives each VR its own
 * low-mass node attached to the die cell below it, so the overlay does
 * not double-count area.
 */

#ifndef TG_FLOORPLAN_FLOORPLAN_HH
#define TG_FLOORPLAN_FLOORPLAN_HH

#include <string>
#include <vector>

#include "floorplan/geometry.hh"

namespace tg {
namespace floorplan {

/** Functional unit categories appearing on the die. */
enum class UnitKind
{
    Ifu,  //!< instruction fetch unit (incl. L1-I)
    Isu,  //!< instruction scheduling unit
    Exu,  //!< execution unit
    Lsu,  //!< load/store unit (incl. L1-D)
    L2,   //!< private L2 cache
    L3,   //!< shared L3 bank
    Noc,  //!< network-on-chip
    Mc,   //!< memory controller
};

/** Human-readable name for a unit kind. */
const char *unitKindName(UnitKind kind);

/** True for power-hungry logic units, false for memory/uncore. */
bool isLogicUnit(UnitKind kind);

/** A functional block occupying die area. */
struct Block
{
    std::string name;   //!< unique name, e.g. "core3.exu"
    UnitKind kind;      //!< functional category
    Rect rect;          //!< placement [mm]
    int domain = -1;    //!< Vdd-domain id, -1 if unregulated
    int coreId = -1;    //!< owning core, -1 for uncore blocks
};

/** An on-chip voltage regulator site. */
struct VrSite
{
    std::string name;      //!< unique name, e.g. "core3.vr5"
    Rect rect;             //!< placement [mm], 0.2 x 0.2 by default
    int domain = -1;       //!< Vdd-domain this VR supplies
    int hostBlock = -1;    //!< index of the block underneath the site
    bool memorySide = false; //!< true when the site sits over memory
};

/** Category of a Vdd-domain (paper Section 5). */
enum class DomainKind
{
    Core,  //!< one core plus its private L2 (9 VRs)
    L3,    //!< one L3 bank (3 VRs)
};

/** A Vdd-domain: the blocks it feeds and the VRs that feed it. */
struct VddDomain
{
    int id = -1;
    DomainKind kind = DomainKind::Core;
    std::string name;
    std::vector<int> blocks;  //!< indices into Floorplan::blocks()
    std::vector<int> vrs;     //!< indices into Floorplan::vrs()
};

/**
 * Immutable floorplan: die outline, blocks, VR sites, domains.
 *
 * Built via FloorplanBuilder (or the canned buildPower8Chip()), then
 * validated: blocks must tile the die without overlap, every VR must
 * sit on a block of its own domain's silicon, and every domain must
 * have at least one VR.
 */
class Floorplan
{
  public:
    /** Die width [mm]. */
    double width() const { return dieW; }
    /** Die height [mm]. */
    double height() const { return dieH; }
    /** Die area [mm^2]. */
    double area() const { return dieW * dieH; }

    const std::vector<Block> &blocks() const { return blockList; }
    const std::vector<VrSite> &vrs() const { return vrList; }
    const std::vector<VddDomain> &domains() const { return domainList; }

    /** Index of the named block; fatals when absent. */
    int blockIndex(const std::string &name) const;

    /** Index of the block containing the point, or -1. */
    int blockAt(double x, double y) const;

    /** Indices of all blocks with the given kind. */
    std::vector<int> blocksOfKind(UnitKind kind) const;

    /** Sum of block areas [mm^2] (excludes VR overlay). */
    double blockArea() const;

  private:
    friend class FloorplanBuilder;

    double dieW = 0.0;
    double dieH = 0.0;
    std::vector<Block> blockList;
    std::vector<VrSite> vrList;
    std::vector<VddDomain> domainList;
};

/** Incremental construction + validation of a Floorplan. */
class FloorplanBuilder
{
  public:
    /** @param width/height die extent [mm] */
    FloorplanBuilder(double width, double height);

    /** Add a functional block; returns its index. */
    int addBlock(const std::string &name, UnitKind kind, Rect rect,
                 int domain, int core_id = -1);

    /** Add a VR site; host block and memory-side flag are derived. */
    int addVr(const std::string &name, Rect rect, int domain);

    /** Declare a Vdd-domain; block/VR membership is derived. */
    int addDomain(const std::string &name, DomainKind kind);

    /**
     * Validate and return the finished floorplan. Fatals on block
     * overlap, out-of-die placement, VRs over foreign domains, or
     * empty domains.
     */
    Floorplan build();

  private:
    Floorplan fp;
};

} // namespace floorplan
} // namespace tg

#endif // TG_FLOORPLAN_FLOORPLAN_HH
