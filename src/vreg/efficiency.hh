/**
 * @file
 * Regulator power-conversion-efficiency modelling.
 *
 * A component regulator's efficiency eta is a strong function of its
 * output load current I_out (paper Fig. 1): it climbs over decades of
 * light load, peaks at eta_peak near the regulator's design point
 * I_peak, and droops past it. The curve is represented piecewise-
 * linearly against log10 of the normalised load i = I_out / I_peak so
 * one shape can be re-scaled across designs (paper Section 5
 * calibrates all 96 VRs to the Haswell FIVR curve family of Fig. 5).
 */

#ifndef TG_VREG_EFFICIENCY_HH
#define TG_VREG_EFFICIENCY_HH

#include <utility>
#include <vector>

#include "common/interp.hh"
#include "common/units.hh"

namespace tg {
namespace vreg {

/**
 * eta(I_out) curve of one component regulator.
 *
 * Shapes are defined on the normalised axis i = I_out / I_peak and
 * scaled by (I_peak, eta_peak), so the same calibrated family serves
 * the FIVR and LDO designs (paper Section 6.4 calibrates both to the
 * same curves).
 */
class EfficiencyCurve
{
  public:
    /**
     * @param i_peak    load current of peak efficiency [A]
     * @param eta_peak  peak conversion efficiency in (0, 1]
     * @param shape     (i/I_peak, eta/eta_peak) control points; pass
     *                  an empty vector to use the FIVR-calibrated
     *                  default shape
     */
    EfficiencyCurve(Amperes i_peak, double eta_peak,
                    std::vector<std::pair<double, double>> shape = {});

    /** Conversion efficiency at the given output load current. */
    double etaAt(Amperes i_out) const;

    /** Load current at which the curve peaks [A]. */
    Amperes peakCurrent() const { return iPeak; }

    /** Peak conversion efficiency. */
    double peakEta() const { return etaPeak; }

    /**
     * Conversion loss power at the given operating point (Eqn. 1):
     * P_loss = P_out * (1/eta - 1) with P_out = v_out * i_out.
     */
    Watts plossAt(Volts v_out, Amperes i_out) const;

    /** The default FIVR-calibrated normalised shape. */
    static std::vector<std::pair<double, double>> defaultShape();

  private:
    Amperes iPeak;
    double etaPeak;
    PiecewiseLinear shape;
};

} // namespace vreg
} // namespace tg

#endif // TG_VREG_EFFICIENCY_HH
