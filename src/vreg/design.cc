#include "vreg/design.hh"

namespace tg {
namespace vreg {

VrDesign
fivrDesign()
{
    VrDesign d;
    d.name = "fivr";
    d.topology = Topology::Buck;
    d.curve = EfficiencyCurve(1.5, 0.90);
    d.areaMm2 = 0.04;
    d.iMax = 2.0;
    d.responseTime = 5e-9;
    d.outputResistance = 14e-3;
    // A buck phase feeds its load through the phase inductor
    // (~1.5 nH for FIVR). The fast control loop compensates most of
    // it; what the load observes is the closed-loop effective output
    // inductance, which is what drives the droop on load steps and
    // is the dominant transient-noise mechanism of the buck design.
    d.outputInductance = 0.5e-9;
    return d;
}

VrDesign
ldoDesign()
{
    VrDesign d;
    d.name = "ldo";
    d.topology = Topology::Ldo;
    // Calibrated to the same curve family for an apples-to-apples
    // comparison; eta_peak = 90.5% (POWER8 reports 90.5%, 34.5 W/mm^2).
    d.curve = EfficiencyCurve(1.5, 0.905);
    d.areaMm2 = 0.04;
    d.iMax = 2.0;
    // A digital LDO has no phase inductor, but its sampled control
    // loop still limits how fast the pass device tracks a load step;
    // the effective output inductance is modestly below the buck's
    // closed-loop value, giving the small noise advantage of Fig. 15.
    d.responseTime = 1e-9;
    d.outputResistance = 12e-3;
    d.outputInductance = 0.35e-9;
    return d;
}

VrDesign
intel16PhaseDesign()
{
    VrDesign d;
    d.name = "intel16p";
    d.topology = Topology::Buck;
    // Fig. 2: 16 phases deliver up to ~16 A, so each phase peaks near
    // 1 A with the ~90% FIVR peak efficiency.
    d.curve = EfficiencyCurve(1.0, 0.90);
    d.areaMm2 = 0.04;
    d.iMax = 1.4;
    d.responseTime = 5e-9;
    d.outputResistance = 15e-3;
    d.outputInductance = 0.5e-9;
    return d;
}

std::vector<SurveyEntry>
isscc2015Survey()
{
    // Approximate digitisations of Fig. 1. Each entry lists
    // (I_out [A], eta [%(0..1)]) control points over the current range
    // the corresponding ISSCC'15 paper characterises.
    std::vector<SurveyEntry> s;

    s.push_back({"[15] Kim",
                 "4-phase time-based buck",
                 PiecewiseLinear({{0.01, 0.62}, {0.03, 0.74},
                                  {0.1, 0.83}, {0.3, 0.87},
                                  {0.6, 0.85}, {1.0, 0.80}},
                                 true)});
    s.push_back({"[29] Park",
                 "PWM buck, analog-digital hybrid",
                 PiecewiseLinear({{4.5e-5, 0.66}, {2e-4, 0.76},
                                  {1e-3, 0.82}, {4e-3, 0.80}},
                                 true)});
    s.push_back({"[37] Su",
                 "single-inductor multiple-output buck",
                 PiecewiseLinear({{0.02, 0.70}, {0.08, 0.82},
                                  {0.3, 0.90}, {0.8, 0.86},
                                  {1.5, 0.78}},
                                 true)});
    s.push_back({"[36] Song",
                 "4-phase GaN buck",
                 PiecewiseLinear({{0.1, 0.72}, {0.4, 0.84},
                                  {1.0, 0.905}, {3.0, 0.88},
                                  {8.0, 0.83}},
                                 true)});
    s.push_back({"[31] Schaef",
                 "3-phase resonant switched-capacitor",
                 PiecewiseLinear({{0.05, 0.68}, {0.2, 0.80},
                                  {0.7, 0.85}, {2.0, 0.82},
                                  {4.0, 0.75}},
                                 true)});
    s.push_back({"[1] Andersen",
                 "feedforward switched-capacitor",
                 PiecewiseLinear({{0.3, 0.74}, {1.0, 0.83},
                                  {3.0, 0.86}, {8.0, 0.84},
                                  {10.0, 0.80}},
                                 true)});
    s.push_back({"[26] Lu",
                 "123-phase converter-ring",
                 PiecewiseLinear({{0.01, 0.55}, {0.05, 0.70},
                                  {0.2, 0.80}, {0.5, 0.83},
                                  {1.0, 0.78}},
                                 true)});
    s.push_back({"[14] Jiang",
                 "2/3-phase switched-capacitor",
                 PiecewiseLinear({{1e-4, 0.48}, {1e-3, 0.62},
                                  {5e-3, 0.72}, {2e-2, 0.73},
                                  {5e-2, 0.68}},
                                 true)});
    return s;
}

} // namespace vreg
} // namespace tg
