/**
 * @file
 * Per-Vdd-domain network of parallel component regulators.
 *
 * Connected in parallel, N identical component VRs share the domain's
 * load current. Regulator gating modulates how many stay active so
 * that each active VR operates at (or near) its peak-efficiency load
 * (paper Sections 3.2 and 6.1): n_on(I) is the active count that
 * maximises conversion efficiency for demand I, and the resulting
 * effective eta(I) envelope is nearly flat at eta_peak over the whole
 * current range (the dotted trend line of Figs. 2 and 5).
 */

#ifndef TG_VREG_NETWORK_HH
#define TG_VREG_NETWORK_HH

#include "common/units.hh"
#include "vreg/design.hh"

namespace tg {
namespace vreg {

/** Operating point of a regulator network at one instant. */
struct OperatingPoint
{
    int active = 0;        //!< number of active component VRs
    Amperes perVr = 0.0;   //!< load current per active VR [A]
    double eta = 0.0;      //!< effective conversion efficiency
    Watts plossTotal = 0.0; //!< total conversion loss [W] (Eqn. 1)
    bool overloaded = false; //!< true when demand exceeds N * iMax
};

/**
 * N parallel component regulators of one design feeding one domain.
 */
class RegulatorNetwork
{
  public:
    /**
     * @param design component regulator design (copied)
     * @param n_vrs  number of parallel component VRs in the domain
     */
    RegulatorNetwork(VrDesign design, int n_vrs);

    /** Number of component regulators in the network. */
    int size() const { return nVrs; }

    /** The component design. */
    const VrDesign &design() const { return vrDesign; }

    /** Largest current the fully-active network may carry [A]. */
    Amperes maxCurrent() const { return nVrs * vrDesign.iMax; }

    /**
     * Number of active regulators required to supply `demand` at the
     * best achievable efficiency (paper Section 6.1). Always >= 1:
     * the domain is never left unsupplied. Counts whose per-VR share
     * would exceed iMax are infeasible; if every count is infeasible
     * the network returns N (fully on, overloaded).
     */
    int requiredActive(Amperes demand) const;

    /**
     * Minimum-supply floor: the smallest active count whose per-VR
     * share of `demand` stays within the iMax limit, i.e.
     * ceil(demand / iMax), clamped to [1, N]. Always <=
     * requiredActive(demand). The governor never provisions below
     * this, so a shrunken (faulted) regulator population cannot
     * silently under-supply a domain into a voltage emergency; when
     * even N is below the floor the domain is overloaded and
     * everything available must be on.
     */
    int minFeasibleActive(Amperes demand) const;

    /**
     * Evaluate the network with `active` regulators sharing `demand`
     * equally (component VRs are electrically identical, so parallel
     * operation splits the current evenly).
     */
    OperatingPoint evaluate(Amperes demand, int active) const;

    /** Shorthand: evaluate at the gating-optimal active count. */
    OperatingPoint
    evaluateGated(Amperes demand) const
    {
        return evaluate(demand, requiredActive(demand));
    }

    /** Nominal output voltage used for P_loss arithmetic [V]. */
    Volts vout() const { return voutNominal; }
    /** Set the nominal output voltage [V]. */
    void setVout(Volts v) { voutNominal = v; }

  private:
    VrDesign vrDesign;
    int nVrs;
    Volts voutNominal = 1.03;
};

} // namespace vreg
} // namespace tg

#endif // TG_VREG_NETWORK_HH
