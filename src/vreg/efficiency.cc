#include "vreg/efficiency.hh"

#include "common/logging.hh"

namespace tg {
namespace vreg {

std::vector<std::pair<double, double>>
EfficiencyCurve::defaultShape()
{
    // Normalised (i / I_peak, eta / eta_peak) control points calibrated
    // so that the per-core-domain curve family reproduces Fig. 5 and
    // the P_loss savings of Fig. 7: a long light-load climb over two
    // decades, a knee approaching the peak, and a mild droop past it.
    return {
        {0.002, 0.40 / 0.90}, {0.005, 0.445 / 0.90},
        {0.010, 0.50 / 0.90}, {0.020, 0.555 / 0.90},
        {0.050, 0.645 / 0.90}, {0.100, 0.705 / 0.90},
        {0.150, 0.762 / 0.90}, {0.250, 0.818 / 0.90},
        {0.350, 0.838 / 0.90}, {0.500, 0.840 / 0.90},
        {0.620, 0.856 / 0.90}, {0.740, 0.884 / 0.90},
        {0.850, 0.893 / 0.90}, {1.000, 1.000},
        {1.150, 0.893 / 0.90}, {1.300, 0.878 / 0.90},
        {1.500, 0.855 / 0.90}, {1.800, 0.810 / 0.90},
        {2.200, 0.750 / 0.90},
    };
}

EfficiencyCurve::EfficiencyCurve(
    Amperes i_peak, double eta_peak,
    std::vector<std::pair<double, double>> shape_pts)
    : iPeak(i_peak), etaPeak(eta_peak),
      shape(shape_pts.empty() ? defaultShape() : std::move(shape_pts),
            /*log_x=*/true)
{
    TG_ASSERT(iPeak > 0.0, "peak current must be positive");
    TG_ASSERT(etaPeak > 0.0 && etaPeak <= 1.0,
              "peak efficiency must be in (0, 1]");
}

double
EfficiencyCurve::etaAt(Amperes i_out) const
{
    if (i_out <= 0.0)
        return 0.0;
    double eta = etaPeak * shape(i_out / iPeak);
    return eta < 0.0 ? 0.0 : (eta > 1.0 ? 1.0 : eta);
}

Watts
EfficiencyCurve::plossAt(Volts v_out, Amperes i_out) const
{
    if (i_out <= 0.0)
        return 0.0;
    double eta = etaAt(i_out);
    TG_ASSERT(eta > 0.0, "zero efficiency at positive load");
    return v_out * i_out * (1.0 / eta - 1.0);
}

} // namespace vreg
} // namespace tg
