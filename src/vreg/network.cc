#include "vreg/network.hh"

#include <cmath>

#include "common/logging.hh"

namespace tg {
namespace vreg {

RegulatorNetwork::RegulatorNetwork(VrDesign design, int n_vrs)
    : vrDesign(std::move(design)), nVrs(n_vrs)
{
    if (nVrs < 1)
        fatal("regulator network needs at least one VR, got ", n_vrs);
}

int
RegulatorNetwork::requiredActive(Amperes demand) const
{
    if (demand <= 0.0)
        return 1;

    int best = -1;
    double best_eta = -1.0;
    for (int k = 1; k <= nVrs; ++k) {
        Amperes per_vr = demand / k;
        if (per_vr > vrDesign.iMax)
            continue;  // would exceed the per-VR current limit
        double eta = vrDesign.curve.etaAt(per_vr);
        // Strictly-better comparison ties towards fewer active VRs,
        // which is the gating-friendly choice.
        if (eta > best_eta + 1e-12) {
            best_eta = eta;
            best = k;
        }
    }
    if (best < 0)
        return nVrs;  // overloaded: everything on is the best we can do
    return best;
}

int
RegulatorNetwork::minFeasibleActive(Amperes demand) const
{
    if (demand <= 0.0)
        return 1;
    // Smallest k with demand / k <= iMax; the epsilon-free ceil is
    // safe because iMax is strictly positive.
    double k = std::ceil(demand / vrDesign.iMax);
    if (k < 1.0)
        return 1;
    if (k > static_cast<double>(nVrs))
        return nVrs;
    return static_cast<int>(k);
}

OperatingPoint
RegulatorNetwork::evaluate(Amperes demand, int active) const
{
    TG_ASSERT(active >= 1 && active <= nVrs,
              "active count ", active, " outside [1, ", nVrs, "]");

    OperatingPoint op;
    op.active = active;
    if (demand <= 0.0) {
        // Active but unloaded regulators idle at negligible loss.
        op.eta = vrDesign.curve.peakEta();
        return op;
    }
    op.perVr = demand / active;
    op.overloaded = op.perVr > vrDesign.iMax;
    op.eta = vrDesign.curve.etaAt(op.perVr);
    op.plossTotal =
        active * vrDesign.curve.plossAt(voutNominal, op.perVr);
    return op;
}

} // namespace vreg
} // namespace tg
