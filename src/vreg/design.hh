/**
 * @file
 * Regulator design database: the two evaluated integrated designs
 * (Intel-FIVR-like buck phases and IBM-POWER8-like digital LDO
 * microregulators, paper Sections 5 and 6.4), the 16-phase Intel
 * regulator of Fig. 2, and the ISSCC 2015 survey of Fig. 1.
 */

#ifndef TG_VREG_DESIGN_HH
#define TG_VREG_DESIGN_HH

#include <string>
#include <vector>

#include "common/interp.hh"
#include "common/units.hh"
#include "vreg/efficiency.hh"

namespace tg {
namespace vreg {

/** Regulator topology families deployed on modern processors. */
enum class Topology
{
    Buck,              //!< inductive buck (e.g. Haswell FIVR phases)
    SwitchedCapacitor, //!< switched-capacitor converter
    Ldo,               //!< linear low-dropout microregulator
};

/**
 * Electrical/physical description of one component regulator design.
 *
 * responseTime and output impedance feed the PDN noise model: an LDO
 * reacts faster than a buck phase and therefore leaves a smaller
 * transient residue (paper Section 6.4 / Fig. 15).
 */
struct VrDesign
{
    std::string name;
    Topology topology = Topology::Buck;
    EfficiencyCurve curve{1.0, 0.9};
    double areaMm2 = 0.04;        //!< on-chip footprint [mm^2]
    Amperes iMax = 2.0;           //!< hard per-VR current limit [A]
    Seconds responseTime = 5e-9;  //!< control-loop response time [s]
    double outputResistance = 8e-3; //!< R_out behind the source [ohm]
    double outputInductance = 8e-12; //!< L_out behind the source [H]
};

/**
 * The FIVR-like buck-phase design used as the main calibration
 * target: eta_peak = 90% at I_peak ~ 1.5 A per component VR, 0.04 mm^2
 * (paper Section 5, Fig. 5).
 */
VrDesign fivrDesign();

/**
 * The POWER8-like digital LDO microregulator: eta_peak = 90.5%,
 * identical curve calibration (apples-to-apples, paper Section 6.4)
 * but a faster response and lower output inductance.
 */
VrDesign ldoDesign();

/** The 16-phase Intel buck regulator of Fig. 2 (1 A per phase). */
VrDesign intel16PhaseDesign();

/** One design from the ISSCC 2015 survey of Fig. 1. */
struct SurveyEntry
{
    std::string label;      //!< citation tag used in the figure
    std::string topology;   //!< short topology description
    /** Absolute-axis efficiency curve eta(I_out [A]). */
    PiecewiseLinear curve;
};

/**
 * Approximate digitisation of the eight ISSCC 2015 regulator curves
 * of Fig. 1. Currents span 10 uA .. 10 A across entries; peak
 * efficiencies span ~73%..92%.
 */
std::vector<SurveyEntry> isscc2015Survey();

} // namespace vreg
} // namespace tg

#endif // TG_VREG_DESIGN_HH
