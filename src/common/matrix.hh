/**
 * @file
 * Dense linear algebra for the thermal RC and power-delivery RLC
 * solvers: a row-major matrix type and an LU factorisation with
 * partial pivoting that is computed once per system matrix and then
 * back-solved every simulation step.
 */

#ifndef TG_COMMON_MATRIX_HH
#define TG_COMMON_MATRIX_HH

#include <cstddef>
#include <vector>

namespace tg {

/** Row-major dense matrix of doubles. */
class Matrix
{
  public:
    Matrix() = default;

    /** Construct a rows x cols matrix filled with `fill`. */
    Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

    /** Construct a square identity matrix of dimension n. */
    static Matrix identity(std::size_t n);

    std::size_t rows() const { return nRows; }
    std::size_t cols() const { return nCols; }

    /** Element access (bounds checked via TG_ASSERT in debug paths). */
    double &at(std::size_t r, std::size_t c);
    double at(std::size_t r, std::size_t c) const;

    /** Unchecked element access for hot loops. */
    double &operator()(std::size_t r, std::size_t c)
    {
        return data[r * nCols + c];
    }
    double operator()(std::size_t r, std::size_t c) const
    {
        return data[r * nCols + c];
    }

    /** Pointer to the start of row r (row-major layout). */
    double *row(std::size_t r) { return data.data() + r * nCols; }
    const double *row(std::size_t r) const
    {
        return data.data() + r * nCols;
    }

    /** y = this * x for a square or rectangular matrix. */
    std::vector<double> multiply(const std::vector<double> &x) const;

    /** Frobenius-norm of (this - other); matrices must match shape. */
    double maxAbsDiff(const Matrix &other) const;

  private:
    std::size_t nRows = 0;
    std::size_t nCols = 0;
    std::vector<double> data;
};

/**
 * LU factorisation with partial pivoting of a square matrix.
 *
 * The factorisation is performed once at construction; solve() then
 * costs O(n^2) per right-hand side. This is the workhorse of both the
 * thermal transient solver (fixed step => fixed system matrix) and the
 * PDN transient solver.
 */
class LuSolver
{
  public:
    /** Factor `a`; fatals if `a` is not square, panics if singular. */
    explicit LuSolver(const Matrix &a);

    /** Solve A x = b, returning x. */
    std::vector<double> solve(const std::vector<double> &b) const;

    /**
     * Solve in place: `bx` holds b on entry and x on return. Reuses
     * an internal scratch vector, so repeated solves perform no heap
     * allocation — which also means a single LuSolver must not serve
     * concurrent solves from multiple threads.
     */
    void solveInPlace(std::vector<double> &bx) const;

    /** Dimension of the factored system. */
    std::size_t size() const { return n; }

  private:
    std::size_t n = 0;
    Matrix lu;                 //!< packed L (unit diag) and U factors
    std::vector<std::size_t> perm; //!< row permutation from pivoting
    mutable std::vector<double> scratch; //!< permuted solve workspace
};

} // namespace tg

#endif // TG_COMMON_MATRIX_HH
