#include "common/stats.hh"

#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace tg {

void
RunningStats::add(double x)
{
    if (n == 0) {
        lo = hi = x;
    } else {
        if (x < lo) lo = x;
        if (x > hi) hi = x;
    }
    ++n;
    double delta = x - mu;
    mu += delta / static_cast<double>(n);
    m2 += delta * (x - mu);
}

double
RunningStats::min() const
{
    return n ? lo : std::numeric_limits<double>::infinity();
}

double
RunningStats::max() const
{
    return n ? hi : -std::numeric_limits<double>::infinity();
}

double
RunningStats::variance() const
{
    return n > 1 ? m2 / static_cast<double>(n) : 0.0;
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
rSquared(const std::vector<double> &reference,
         const std::vector<double> &predicted)
{
    TG_ASSERT(reference.size() == predicted.size(),
              "R^2 needs equal-length series");
    TG_ASSERT(!reference.empty(), "R^2 of empty series");

    double mean = 0.0;
    for (double r : reference)
        mean += r;
    mean /= static_cast<double>(reference.size());

    double ss_res = 0.0;
    double ss_tot = 0.0;
    for (std::size_t i = 0; i < reference.size(); ++i) {
        double e = reference[i] - predicted[i];
        double d = reference[i] - mean;
        ss_res += e * e;
        ss_tot += d * d;
    }
    if (ss_tot == 0.0)
        return ss_res == 0.0 ? 1.0 : 0.0;
    return 1.0 - ss_res / ss_tot;
}

double
fitSlopeThroughOrigin(const std::vector<double> &x,
                      const std::vector<double> &y)
{
    TG_ASSERT(x.size() == y.size(), "slope fit needs equal-length series");
    double sxy = 0.0;
    double sxx = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        sxy += x[i] * y[i];
        sxx += x[i] * x[i];
    }
    if (sxx == 0.0)
        return 0.0;
    return sxy / sxx;
}

WmaForecaster::WmaForecaster(std::size_t depth) : depth(depth)
{
    TG_ASSERT(depth >= 1, "WMA window must be non-empty");
}

void
WmaForecaster::observe(double x)
{
    history.push_back(x);
    while (history.size() > depth)
        history.pop_front();
}

double
WmaForecaster::predict() const
{
    if (history.empty())
        return 0.0;
    // Most recent sample (back of the deque) gets the largest weight.
    double num = 0.0;
    double den = 0.0;
    double w = 1.0;
    for (double x : history) {
        num += w * x;
        den += w;
        w += 1.0;
    }
    return num / den;
}

} // namespace tg
