/**
 * @file
 * Sparse linear algebra for the thermal RC and PDN hot paths.
 *
 * Both physics substrates assemble 5-point-stencil grid matrices with
 * a handful of bordered branches: symmetric, positive definite, and
 * over 99% zero at the default sizes. This header provides
 *
 *  - SparseMatrix: immutable CSR storage built from (row, col, value)
 *    triplets (duplicates are summed, as with stamp-style assembly);
 *  - rcmOrdering(): a reverse Cuthill-McKee fill-reducing permutation
 *    over the matrix graph (deterministic: ties break on node index);
 *  - SparseLdltSolver: an envelope (skyline) LDL^T factorisation.
 *    Under the RCM ordering all factor fill is confined to a narrow
 *    variable band, so factorisation costs O(n b^2) and each solve
 *    O(n b) for envelope bandwidth b — versus O(n^3)/O(n^2) for the
 *    dense LU these systems used before. Ordering::Natural keeps the
 *    caller's numbering and degrades to a plain banded solver, the
 *    fallback for matrices that are already banded by construction.
 *
 * Solvers keep a reusable scratch vector so solveInPlace() performs
 * no heap allocation after the first call; a given solver instance
 * must therefore not be shared by concurrent solves (the sweep engine
 * runs one Simulation — hence one solver set — per worker).
 */

#ifndef TG_COMMON_SPARSE_HH
#define TG_COMMON_SPARSE_HH

#include <cstddef>
#include <vector>

#include "common/matrix.hh"

namespace tg {

/** One assembly stamp: a(row, col) += value. */
struct Triplet
{
    std::size_t row = 0;
    std::size_t col = 0;
    double value = 0.0;
};

/** Immutable compressed-sparse-row matrix of doubles. */
class SparseMatrix
{
  public:
    SparseMatrix() = default;

    /**
     * Build from assembly triplets; duplicate (row, col) entries are
     * summed. Entries that cancel to exactly 0.0 are kept (structure
     * is what matters for the solvers downstream).
     */
    static SparseMatrix fromTriplets(std::size_t rows,
                                     std::size_t cols,
                                     std::vector<Triplet> entries);

    std::size_t rows() const { return nRows; }
    std::size_t cols() const { return nCols; }
    std::size_t nonZeros() const { return vals.size(); }

    /** Value at (r, c); 0.0 when the entry is not stored. */
    double at(std::size_t r, std::size_t c) const;

    /** y = this * x. */
    std::vector<double> multiply(const std::vector<double> &x) const;

    /** Max |r - c| over stored entries (structural bandwidth). */
    std::size_t bandwidth() const;

    /** Dense copy (tests and reference comparisons only). */
    Matrix toDense() const;

    /** Raw CSR access for solvers and orderings. */
    const std::vector<std::size_t> &rowPtr() const { return rowStart; }
    const std::vector<std::size_t> &colIdx() const { return colOf; }
    const std::vector<double> &values() const { return vals; }

  private:
    std::size_t nRows = 0;
    std::size_t nCols = 0;
    std::vector<std::size_t> rowStart; //!< size nRows + 1
    std::vector<std::size_t> colOf;    //!< column per stored entry
    std::vector<double> vals;          //!< value per stored entry
};

/**
 * Reverse Cuthill-McKee ordering of a structurally-symmetric square
 * matrix: returns perm with perm[new_index] = old_index. BFS roots
 * are pseudo-peripheral nodes; neighbours enqueue by (degree, index)
 * so the result is deterministic. Disconnected components are ordered
 * one after another.
 */
std::vector<std::size_t> rcmOrdering(const SparseMatrix &a);

/**
 * Envelope (skyline) LDL^T factorisation of a symmetric positive
 * definite sparse matrix, factored once at construction and
 * back-substituted per solve.
 *
 * With Ordering::Rcm (default) the matrix is permuted by reverse
 * Cuthill-McKee first, which confines the envelope of a grid matrix
 * to a band of roughly the grid's smaller edge. Ordering::Natural is
 * the banded fallback: no permutation, envelope as assembled.
 *
 * Panics when a pivot is not strictly positive (matrix not SPD).
 */
class SparseLdltSolver
{
  public:
    enum class Ordering
    {
        Rcm,     //!< reverse Cuthill-McKee fill-reducing permutation
        Natural, //!< keep the caller's numbering (banded fallback)
    };

    explicit SparseLdltSolver(const SparseMatrix &a,
                              Ordering ordering = Ordering::Rcm);

    /** Solve A x = b, returning x. */
    std::vector<double> solve(const std::vector<double> &b) const;

    /**
     * Solve in place: `bx` holds b on entry and x on return. Performs
     * no heap allocation after the first call (reuses scratch).
     */
    void solveInPlace(std::vector<double> &bx) const;

    /** solveInPlace() over a raw buffer of size() doubles. */
    void solveInPlace(double *bx) const;

    /**
     * Multi-RHS solve: `bx` is a size() x k row-major matrix whose k
     * columns are independent right-hand sides, solved in one
     * envelope traversal (the L structure's index/pointer traffic is
     * amortised across all columns). Column j of the result is
     * bit-identical to a scalar solveInPlace() of column j: each
     * lane executes the same floating-point ops in the same order.
     */
    void solveInPlace(Matrix &bx) const;

    /**
     * Batched solve over `width` interleaved right-hand sides: lane
     * l of row i lives at bx[i * width + l] (a row-major n x width
     * buffer). One envelope traversal advances every lane in
     * lockstep; per-lane results are bit-identical to scalar
     * solveInPlace(). Widths 2/4/8 dispatch to fixed-width SIMD
     * kernels; other widths use a runtime-width loop. No heap
     * allocation after the first call at a given width.
     */
    void solveBatchInPlace(double *bx, std::size_t width) const;

    /** Dimension of the factored system. */
    std::size_t size() const { return n; }

    /** Strictly-lower entries stored in the factor envelope. */
    std::size_t profileNonZeros() const { return low.size(); }

    /** Max row envelope width (factor bandwidth after ordering). */
    std::size_t envelopeBandwidth() const;

  private:
    template <int W>
    void solveBatchFixed(double *bx) const;
    void solveBatchGeneric(double *bx, std::size_t width) const;

    std::size_t n = 0;
    std::vector<std::size_t> perm;  //!< perm[new] = old
    std::vector<std::size_t> first; //!< leftmost column of row's envelope
    std::vector<std::size_t> rowStart; //!< packed offsets, size n + 1
    std::vector<double> low;        //!< packed strictly-lower L entries
    std::vector<double> diag;       //!< D of the LDL^T factorisation
    mutable std::vector<double> scratch; //!< permuted solve workspace
    mutable std::vector<double> batchScratch; //!< n x width workspace
};

} // namespace tg

#endif // TG_COMMON_SPARSE_HH
