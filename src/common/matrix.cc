#include "common/matrix.hh"

#include <cmath>

#include "common/logging.hh"

namespace tg {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : nRows(rows), nCols(cols), data(rows * cols, fill)
{
}

Matrix
Matrix::identity(std::size_t n)
{
    Matrix m(n, n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        m(i, i) = 1.0;
    return m;
}

double &
Matrix::at(std::size_t r, std::size_t c)
{
    TG_ASSERT(r < nRows && c < nCols, "matrix index out of range");
    return data[r * nCols + c];
}

double
Matrix::at(std::size_t r, std::size_t c) const
{
    TG_ASSERT(r < nRows && c < nCols, "matrix index out of range");
    return data[r * nCols + c];
}

std::vector<double>
Matrix::multiply(const std::vector<double> &x) const
{
    TG_ASSERT(x.size() == nCols, "matrix-vector shape mismatch");
    std::vector<double> y(nRows, 0.0);
    for (std::size_t r = 0; r < nRows; ++r) {
        const double *rp = row(r);
        double acc = 0.0;
        for (std::size_t c = 0; c < nCols; ++c)
            acc += rp[c] * x[c];
        y[r] = acc;
    }
    return y;
}

double
Matrix::maxAbsDiff(const Matrix &other) const
{
    TG_ASSERT(nRows == other.nRows && nCols == other.nCols,
              "matrix shape mismatch");
    double m = 0.0;
    for (std::size_t i = 0; i < data.size(); ++i)
        m = std::max(m, std::fabs(data[i] - other.data[i]));
    return m;
}

LuSolver::LuSolver(const Matrix &a) : n(a.rows()), lu(a), perm(n)
{
    if (a.rows() != a.cols())
        fatal("LU factorisation requires a square matrix, got ",
              a.rows(), "x", a.cols());

    for (std::size_t i = 0; i < n; ++i)
        perm[i] = i;

    for (std::size_t k = 0; k < n; ++k) {
        // Partial pivoting: bring the largest |entry| of column k into
        // the pivot position.
        std::size_t piv = k;
        double best = std::fabs(lu(k, k));
        for (std::size_t r = k + 1; r < n; ++r) {
            double v = std::fabs(lu(r, k));
            if (v > best) {
                best = v;
                piv = r;
            }
        }
        if (best == 0.0)
            panic("singular matrix in LU factorisation at column ", k);
        if (piv != k) {
            std::swap(perm[piv], perm[k]);
            for (std::size_t c = 0; c < n; ++c)
                std::swap(lu(piv, c), lu(k, c));
        }
        double pivot = lu(k, k);
        for (std::size_t r = k + 1; r < n; ++r) {
            double f = lu(r, k) / pivot;
            lu(r, k) = f;
            if (f == 0.0)
                continue;
            double *rr = lu.row(r);
            const double *kr = lu.row(k);
            for (std::size_t c = k + 1; c < n; ++c)
                rr[c] -= f * kr[c];
        }
    }
}

std::vector<double>
LuSolver::solve(const std::vector<double> &b) const
{
    std::vector<double> x(b);
    solveInPlace(x);
    return x;
}

void
LuSolver::solveInPlace(std::vector<double> &bx) const
{
    TG_ASSERT(bx.size() == n, "rhs size mismatch in LU solve");

    // Apply the row permutation.
    scratch.resize(n);
    std::vector<double> &y = scratch;
    for (std::size_t i = 0; i < n; ++i)
        y[i] = bx[perm[i]];

    // Forward substitution with the unit-diagonal L factor.
    for (std::size_t r = 1; r < n; ++r) {
        const double *rr = lu.row(r);
        double acc = y[r];
        for (std::size_t c = 0; c < r; ++c)
            acc -= rr[c] * y[c];
        y[r] = acc;
    }

    // Back substitution with U.
    for (std::size_t r = n; r-- > 0;) {
        const double *rr = lu.row(r);
        double acc = y[r];
        for (std::size_t c = r + 1; c < n; ++c)
            acc -= rr[c] * y[c];
        y[r] = acc / rr[r];
    }
    bx.assign(y.begin(), y.end());
}

} // namespace tg
