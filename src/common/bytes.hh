/**
 * @file
 * Little-endian byte codec primitives shared by every binary format
 * in the tree (the artifact cache's disk tier, the shard engine's
 * wire protocol).
 *
 * The encodings are bit-exact: doubles travel as their raw 64-bit
 * patterns, never through text formatting, so a decoded value stands
 * in for the original down to the last bit. Readers are
 * bounds-checked with a sticky failure flag — truncated or malformed
 * input decodes to `ok() == false`, never to UB — and expose an
 * exhausted() check so callers can reject trailing garbage.
 */

#ifndef TG_COMMON_BYTES_HH
#define TG_COMMON_BYTES_HH

#include <cstdint>
#include <string>
#include <vector>

namespace tg {
namespace bytes {

/**
 * Sanity cap on decoded string/vector lengths (the largest real
 * series is the per-frame data of a full run, well under a million
 * entries). A length field above this decodes to failure even when
 * the buffer could, in principle, satisfy it — a 2^60-element vector
 * in a header is corruption, not data.
 */
constexpr std::uint64_t kMaxDecodedLen = 1ull << 28;

/** FNV-1a 64-bit hash (checksums of framed/persisted payloads). */
std::uint64_t fnv1a(const std::uint8_t *data, std::size_t size);

/** Append-only little-endian byte sink. */
class ByteWriter
{
  public:
    void u8(std::uint8_t v) { buf.push_back(v); }
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void i64(long long v) { u64(static_cast<std::uint64_t>(v)); }
    void f64(double v);
    void str(const std::string &s);
    void f64vec(const std::vector<double> &v);
    void i32vec(const std::vector<int> &v);
    void blob(const std::vector<std::uint8_t> &v);

    const std::vector<std::uint8_t> &bytes() const { return buf; }
    std::vector<std::uint8_t> take() { return std::move(buf); }

  private:
    std::vector<std::uint8_t> buf;
};

/**
 * Bounds-checked reader over a byte span. Every accessor sets the
 * sticky failure flag instead of reading past the end, so a
 * truncated payload decodes to `ok() == false`, never to UB.
 */
class ByteReader
{
  public:
    ByteReader(const std::uint8_t *data, std::size_t size)
        : p(data), n(size)
    {
    }

    std::uint8_t u8();
    std::uint32_t u32();
    std::uint64_t u64();
    long long i64() { return static_cast<long long>(u64()); }
    double f64();
    std::string str();
    bool f64vec(std::vector<double> &out);
    bool i32vec(std::vector<int> &out);
    bool blob(std::vector<std::uint8_t> &out);

    bool ok() const { return !failed; }
    /** True when every byte was consumed (trailing garbage check). */
    bool exhausted() const { return ok() && pos == n; }

  private:
    bool take(std::size_t count, const std::uint8_t **out);

    const std::uint8_t *p;
    std::size_t n;
    std::size_t pos = 0;
    bool failed = false;
};

} // namespace bytes
} // namespace tg

#endif // TG_COMMON_BYTES_HH
