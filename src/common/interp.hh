/**
 * @file
 * Piecewise-linear interpolation over (x, y) sample points, with an
 * optional log10-x mode used for regulator efficiency curves whose
 * natural axis is decades of output current (paper Figs. 1/2/5).
 */

#ifndef TG_COMMON_INTERP_HH
#define TG_COMMON_INTERP_HH

#include <utility>
#include <vector>

namespace tg {

/**
 * Piecewise-linear curve y(x) through a fixed set of sample points.
 *
 * Queries outside the sampled domain clamp to the end values, which is
 * the right behaviour for efficiency curves (a regulator loaded below
 * the lightest characterised point is no better than that point).
 */
class PiecewiseLinear
{
  public:
    /**
     * @param points   (x, y) samples; sorted by x internally
     * @param log_x    interpolate against log10(x) instead of x
     *                 (requires all x > 0)
     */
    explicit PiecewiseLinear(std::vector<std::pair<double, double>> points,
                             bool log_x = false);

    /** Evaluate the curve at x. */
    double operator()(double x) const;

    /** x of the sample with the largest y value. */
    double argmax() const;

    /** Largest sampled y value. */
    double maxValue() const;

    /** Sampled domain endpoints. */
    double minX() const { return pts.front().first; }
    double maxX() const { return pts.back().first; }

  private:
    std::vector<std::pair<double, double>> pts;
    bool logX;

    double axis(double x) const;
};

} // namespace tg

#endif // TG_COMMON_INTERP_HH
