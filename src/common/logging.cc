#include "common/logging.hh"

#include <cstdio>

namespace tg {
namespace detail {

void
emitLog(const char *level, const std::string &msg)
{
    std::fprintf(stderr, "[%s] %s\n", level, msg.c_str());
    std::fflush(stderr);
}

} // namespace detail
} // namespace tg
