#include "common/exec.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "common/logging.hh"
#include "common/rng.hh"

namespace tg {
namespace exec {

namespace {

thread_local int tlWorkerIndex = -1;
thread_local const void *tlPool = nullptr;

/** Upper bound on TG_JOBS: far beyond any sane machine, but keeps a
 *  fat-fingered value (or a strtol overflow) from trying to spawn
 *  hundreds of thousands of threads. */
constexpr long kMaxJobs = 1 << 12;

} // namespace

int
hardwareThreads()
{
    unsigned n = std::thread::hardware_concurrency();
    return n > 0 ? static_cast<int>(n) : 1;
}

int
resolveJobs(int requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("TG_JOBS")) {
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (end == env || *end != '\0') {
            warn("TG_JOBS value '", env, "' is not a number; using ",
                 "the hardware thread count");
        } else if (v <= 0) {
            warn("TG_JOBS value ", v, " is not positive; using the ",
                 "hardware thread count");
        } else if (v > kMaxJobs) {
            warn("TG_JOBS value '", env, "' is absurdly large; ",
                 "clamping to ", kMaxJobs);
            return static_cast<int>(kMaxJobs);
        } else {
            return static_cast<int>(v);
        }
    }
    return hardwareThreads();
}

std::uint64_t
taskSeed(std::uint64_t base, std::uint64_t task)
{
    // One extra round so task 0 does not collapse onto the base seed.
    return mixSeed(mixSeed(base, 0x7461736bull), task);
}

ThreadPool::ThreadPool(int threads, std::size_t queue_capacity)
{
    int n = std::max(1, threads);
    capacity = queue_capacity > 0
                   ? queue_capacity
                   : 2 * static_cast<std::size_t>(n);
    workers.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        workers.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mu);
        cvIdle.wait(lock, [this] { return inFlight == 0; });
        stopping = true;
    }
    cvWork.notify_all();
    for (auto &w : workers)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    TG_ASSERT(task, "null task submitted");
    TG_ASSERT(tlPool != this,
              "pool workers must not submit into their own pool");
    {
        std::unique_lock<std::mutex> lock(mu);
        cvSpace.wait(lock,
                     [this] { return queue.size() < capacity; });
        queue.push_back(std::move(task));
        ++inFlight;
    }
    cvWork.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mu);
    cvIdle.wait(lock, [this] { return inFlight == 0; });
    if (firstError) {
        auto err = std::exchange(firstError, nullptr);
        lock.unlock();
        std::rethrow_exception(err);
    }
}

int
ThreadPool::workerIndex()
{
    return tlWorkerIndex;
}

void
ThreadPool::workerLoop(int index)
{
    tlWorkerIndex = index;
    tlPool = this;
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mu);
            cvWork.wait(lock, [this] {
                return stopping || !queue.empty();
            });
            if (queue.empty())
                return; // stopping with nothing left to do
            task = std::move(queue.front());
            queue.pop_front();
        }
        cvSpace.notify_one();
        try {
            task();
        } catch (...) {
            std::lock_guard<std::mutex> lock(mu);
            if (!firstError)
                firstError = std::current_exception();
        }
        bool idle;
        {
            std::lock_guard<std::mutex> lock(mu);
            idle = --inFlight == 0;
        }
        if (idle)
            cvIdle.notify_all();
    }
}

void
parallelFor(std::size_t n, int jobs,
            const std::function<void(int worker, std::size_t index)> &fn)
{
    if (n == 0)
        return;
    std::size_t want = static_cast<std::size_t>(resolveJobs(jobs));
    int threads = static_cast<int>(std::min(want, n));
    if (threads <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(0, i);
        return;
    }
    ThreadPool pool(threads);
    for (std::size_t i = 0; i < n; ++i)
        pool.submit([&fn, i] { fn(ThreadPool::workerIndex(), i); });
    pool.wait();
}

void
parallelForOn(ThreadPool &pool, std::size_t n,
              const std::function<void(int worker, std::size_t index)> &fn)
{
    if (n == 0)
        return;
    for (std::size_t i = 0; i < n; ++i)
        pool.submit([&fn, i] { fn(ThreadPool::workerIndex(), i); });
    pool.wait();
}

ProgressSink::ProgressSink(bool enabled_in, std::size_t total_in)
    : enabled(enabled_in), total(total_in)
{
}

void
ProgressSink::completed(const std::string &line)
{
    std::lock_guard<std::mutex> lock(mu);
    ++count;
    if (enabled)
        std::fprintf(stderr, "  [%zu/%zu] %s\n", count, total,
                     line.c_str());
}

std::size_t
ProgressSink::done() const
{
    std::lock_guard<std::mutex> lock(mu);
    return count;
}

void
StatsSink::add(double x)
{
    std::lock_guard<std::mutex> lock(mu);
    stats.add(x);
}

RunningStats
StatsSink::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu);
    return stats;
}

} // namespace exec
} // namespace tg
