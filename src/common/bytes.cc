#include "common/bytes.hh"

#include <cstring>

namespace tg {
namespace bytes {

namespace {

/** Local alias of the public cap (see bytes.hh). */
constexpr std::uint64_t kMaxVecLen = kMaxDecodedLen;

} // namespace

std::uint64_t fnv1a(const std::uint8_t *data, std::size_t size)
{
    std::uint64_t h = 1469598103934665603ull;
    for (std::size_t i = 0; i < size; ++i) {
        h ^= data[i];
        h *= 1099511628211ull;
    }
    return h;
}

void ByteWriter::u32(std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::u64(std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::f64(double v)
{
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
}

void ByteWriter::str(const std::string &s)
{
    u64(s.size());
    buf.insert(buf.end(), s.begin(), s.end());
}

void ByteWriter::f64vec(const std::vector<double> &v)
{
    u64(v.size());
    for (double x : v)
        f64(x);
}

void ByteWriter::i32vec(const std::vector<int> &v)
{
    u64(v.size());
    for (int x : v)
        i64(x);
}

void ByteWriter::blob(const std::vector<std::uint8_t> &v)
{
    u64(v.size());
    buf.insert(buf.end(), v.begin(), v.end());
}

bool ByteReader::take(std::size_t count, const std::uint8_t **out)
{
    if (failed || count > n - pos) {
        failed = true;
        return false;
    }
    *out = p + pos;
    pos += count;
    return true;
}

std::uint8_t ByteReader::u8()
{
    const std::uint8_t *q = nullptr;
    return take(1, &q) ? *q : 0;
}

std::uint32_t ByteReader::u32()
{
    const std::uint8_t *q = nullptr;
    if (!take(4, &q))
        return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(q[i]) << (8 * i);
    return v;
}

std::uint64_t ByteReader::u64()
{
    const std::uint8_t *q = nullptr;
    if (!take(8, &q))
        return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(q[i]) << (8 * i);
    return v;
}

double ByteReader::f64()
{
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof v);
    return v;
}

std::string ByteReader::str()
{
    const std::uint64_t len = u64();
    if (len > kMaxVecLen) {
        failed = true;
        return {};
    }
    const std::uint8_t *q = nullptr;
    if (!take(static_cast<std::size_t>(len), &q))
        return {};
    return std::string(reinterpret_cast<const char *>(q),
                       static_cast<std::size_t>(len));
}

bool ByteReader::f64vec(std::vector<double> &out)
{
    const std::uint64_t len = u64();
    if (failed || len > kMaxVecLen || len * 8 > n - pos) {
        failed = true;
        return false;
    }
    out.resize(static_cast<std::size_t>(len));
    for (double &x : out)
        x = f64();
    return ok();
}

bool ByteReader::i32vec(std::vector<int> &out)
{
    const std::uint64_t len = u64();
    if (failed || len > kMaxVecLen || len * 8 > n - pos) {
        failed = true;
        return false;
    }
    out.resize(static_cast<std::size_t>(len));
    for (int &x : out)
        x = static_cast<int>(i64());
    return ok();
}

bool ByteReader::blob(std::vector<std::uint8_t> &out)
{
    const std::uint64_t len = u64();
    if (failed || len > kMaxVecLen) {
        failed = true;
        return false;
    }
    const std::uint8_t *q = nullptr;
    if (!take(static_cast<std::size_t>(len), &q))
        return false;
    out.assign(q, q + static_cast<std::size_t>(len));
    return ok();
}

} // namespace bytes
} // namespace tg
