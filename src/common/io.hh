/**
 * @file
 * Low-level POSIX descriptor helpers shared by every process- and
 * socket-speaking layer (the shard engine's pipes, the sweep server's
 * Unix-domain sockets).
 *
 * Everything here is a thin, EINTR-hardened wrapper: policy (framing,
 * corruption handling, event-loop structure) stays with the callers.
 * On non-POSIX hosts the functions exist but fail, mirroring the
 * shard engine's platform gating.
 *
 * Chaos harness: every read/write in the service stack routes through
 * chaosRead()/chaosWrite(), a deterministic fault shim that injects
 * short transfers, EINTR, ECONNRESET and ENOSPC according to the
 * TG_IO_FAULTS spec (or a programmatic ChaosConfig). Decisions are a
 * pure function of (seed, per-process operation index), so a failing
 * sequence replays exactly; when no spec is configured the shim is a
 * single relaxed atomic load on top of the raw syscall.
 */

#ifndef TG_COMMON_IO_HH
#define TG_COMMON_IO_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace tg {
namespace io {

/**
 * Write the whole buffer, looping over partial writes and EINTR.
 * Returns false when the peer is gone (EPIPE/ECONNRESET/...); callers
 * treat that as a dead connection, never as a partial frame.
 */
bool writeAll(int fd, const std::uint8_t *data, std::size_t size);

/** Toggle O_NONBLOCK; returns false when fcntl fails. */
bool setNonBlocking(int fd, bool on);

/**
 * Create, bind and listen on a Unix-domain stream socket at `path`.
 * A stale socket file (left by a crashed server: nothing accepts
 * connections on it) is unlinked and the bind retried; a *live*
 * server on the path is an error. Returns the listening fd, or -1
 * with a human-readable reason in `err`.
 */
int listenUnix(const std::string &path, int backlog, std::string *err);

/**
 * Connect to a Unix-domain stream socket. Returns the connected fd or
 * -1 (no server, refused, path too long).
 */
int connectUnix(const std::string &path);

// --- deterministic I/O chaos ------------------------------------------
//
// TG_IO_FAULTS grammar (comma-separated key=value, no spaces):
//
//     seed=N           base of the per-operation decision hash
//     short-read=P     probability a read is truncated to <=16 bytes
//     short-write=P    probability a write transfers <=16 bytes
//     eintr=P          probability an op fails with EINTR (no data)
//     reset=P          probability an op fails with ECONNRESET
//     enospc=P         probability a disk-tier save fails with ENOSPC
//
// Probabilities are decimals in [0, 1]. Each chaos-wrapped operation
// consumes one index of a process-global counter; the decision for
// index i is fnv1a(seed, i) mapped to [0, 1) and compared against the
// cumulative rates — deterministic for a fixed seed and op sequence.
// Short transfers and EINTR are recoverable by the retry loops they
// exercise; reset kills the connection (drop-and-recover paths);
// enospc makes DiskTier::save fail (reject-and-recompute path).

/** Chaos fault rates; a default-constructed config is disabled. */
struct ChaosConfig
{
    bool enabled = false;
    std::uint64_t seed = 0;
    double shortRead = 0.0;
    double shortWrite = 0.0;
    double eintr = 0.0;
    double reset = 0.0;
    double enospc = 0.0;
};

/** Injection counters (relaxed; advisory like StoreStats). */
struct ChaosCounters
{
    std::uint64_t ops = 0;        //!< chaos-wrapped operations seen
    std::uint64_t shortReads = 0;
    std::uint64_t shortWrites = 0;
    std::uint64_t eintrs = 0;
    std::uint64_t resets = 0;
    std::uint64_t enospcs = 0;
};

/**
 * Parse a TG_IO_FAULTS spec. False (with a reason in *err) on an
 * unknown key, a malformed number or a rate outside [0, 1]; `out` is
 * then untouched. The empty string parses as "disabled".
 */
bool chaosParse(const std::string &spec, ChaosConfig &out,
                std::string *err);

/**
 * Install a config programmatically (tests), replacing TG_IO_FAULTS.
 * Resets the operation counter so a fixed seed replays the same
 * decision sequence. Not safe against concurrent in-flight chaos I/O:
 * configure before the threads that perform it start (or after they
 * stop).
 */
void chaosConfigure(const ChaosConfig &cfg);

/** The active config (env-parsed on first use, else programmatic). */
ChaosConfig chaosConfig();

/** Whether any fault injection is active. */
bool chaosEnabled();

ChaosCounters chaosCounters();

/** Reset counters and the op index (deterministic test replays). */
void chaosResetCounters();

/**
 * read(2)/write(2) with fault injection. With chaos disabled these
 * are the raw syscalls; enabled, they may instead fail with EINTR or
 * ECONNRESET, or truncate the transfer (never to zero bytes, so
 * retry loops always make progress). Returns the transfer count or
 * -1 with errno set, exactly like the syscalls.
 */
long chaosRead(int fd, void *buf, std::size_t count);
long chaosWrite(int fd, const void *buf, std::size_t count);

/**
 * Disk-tier write gate: false simulates ENOSPC (errno is set). The
 * cache's save path checks this once per artifact and converts a
 * false into its ordinary "write failed" fallback.
 */
bool chaosDiskWriteAllowed();

} // namespace io
} // namespace tg

#endif // TG_COMMON_IO_HH
