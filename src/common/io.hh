/**
 * @file
 * Low-level POSIX descriptor helpers shared by every process- and
 * socket-speaking layer (the shard engine's pipes, the sweep server's
 * Unix-domain sockets).
 *
 * Everything here is a thin, EINTR-hardened wrapper: policy (framing,
 * corruption handling, event-loop structure) stays with the callers.
 * On non-POSIX hosts the functions exist but fail, mirroring the
 * shard engine's platform gating.
 */

#ifndef TG_COMMON_IO_HH
#define TG_COMMON_IO_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace tg {
namespace io {

/**
 * Write the whole buffer, looping over partial writes and EINTR.
 * Returns false when the peer is gone (EPIPE/ECONNRESET/...); callers
 * treat that as a dead connection, never as a partial frame.
 */
bool writeAll(int fd, const std::uint8_t *data, std::size_t size);

/** Toggle O_NONBLOCK; returns false when fcntl fails. */
bool setNonBlocking(int fd, bool on);

/**
 * Create, bind and listen on a Unix-domain stream socket at `path`.
 * A stale socket file (left by a crashed server: nothing accepts
 * connections on it) is unlinked and the bind retried; a *live*
 * server on the path is an error. Returns the listening fd, or -1
 * with a human-readable reason in `err`.
 */
int listenUnix(const std::string &path, int backlog, std::string *err);

/**
 * Connect to a Unix-domain stream socket. Returns the connected fd or
 * -1 (no server, refused, path too long).
 */
int connectUnix(const std::string &path);

} // namespace io
} // namespace tg

#endif // TG_COMMON_IO_HH
