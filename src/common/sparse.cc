#include "common/sparse.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"
#include "common/simd.hh"

namespace tg {

SparseMatrix
SparseMatrix::fromTriplets(std::size_t rows, std::size_t cols,
                           std::vector<Triplet> entries)
{
    for (const auto &t : entries)
        TG_ASSERT(t.row < rows && t.col < cols,
                  "triplet out of range");
    std::sort(entries.begin(), entries.end(),
              [](const Triplet &a, const Triplet &b) {
                  return a.row != b.row ? a.row < b.row
                                        : a.col < b.col;
              });

    SparseMatrix m;
    m.nRows = rows;
    m.nCols = cols;
    m.rowStart.assign(rows + 1, 0);
    m.colOf.reserve(entries.size());
    m.vals.reserve(entries.size());
    for (std::size_t i = 0; i < entries.size();) {
        std::size_t j = i;
        double sum = 0.0;
        while (j < entries.size() && entries[j].row == entries[i].row &&
               entries[j].col == entries[i].col)
            sum += entries[j++].value;
        m.colOf.push_back(entries[i].col);
        m.vals.push_back(sum);
        m.rowStart[entries[i].row + 1] = m.colOf.size();
        i = j;
    }
    // Rows without entries inherit the previous row's end offset.
    for (std::size_t r = 1; r <= rows; ++r)
        m.rowStart[r] = std::max(m.rowStart[r], m.rowStart[r - 1]);
    return m;
}

double
SparseMatrix::at(std::size_t r, std::size_t c) const
{
    TG_ASSERT(r < nRows && c < nCols, "sparse index out of range");
    auto begin = colOf.begin() + static_cast<long>(rowStart[r]);
    auto end = colOf.begin() + static_cast<long>(rowStart[r + 1]);
    auto it = std::lower_bound(begin, end, c);
    if (it == end || *it != c)
        return 0.0;
    return vals[static_cast<std::size_t>(it - colOf.begin())];
}

std::vector<double>
SparseMatrix::multiply(const std::vector<double> &x) const
{
    TG_ASSERT(x.size() == nCols, "sparse mat-vec shape mismatch");
    std::vector<double> y(nRows, 0.0);
    for (std::size_t r = 0; r < nRows; ++r) {
        double acc = 0.0;
        for (std::size_t k = rowStart[r]; k < rowStart[r + 1]; ++k)
            acc += vals[k] * x[colOf[k]];
        y[r] = acc;
    }
    return y;
}

std::size_t
SparseMatrix::bandwidth() const
{
    std::size_t b = 0;
    for (std::size_t r = 0; r < nRows; ++r)
        for (std::size_t k = rowStart[r]; k < rowStart[r + 1]; ++k) {
            std::size_t c = colOf[k];
            b = std::max(b, r > c ? r - c : c - r);
        }
    return b;
}

Matrix
SparseMatrix::toDense() const
{
    Matrix m(nRows, nCols, 0.0);
    for (std::size_t r = 0; r < nRows; ++r)
        for (std::size_t k = rowStart[r]; k < rowStart[r + 1]; ++k)
            m(r, colOf[k]) += vals[k];
    return m;
}

namespace {

/**
 * Breadth-first level structure from `root` over the matrix graph;
 * returns the nodes of the last level (candidates for a
 * pseudo-peripheral root) and the eccentricity.
 */
struct LevelResult
{
    std::vector<std::size_t> lastLevel;
    std::size_t depth = 0;
};

LevelResult
bfsLevels(const SparseMatrix &a, std::size_t root,
          std::vector<int> &mark, int stamp)
{
    const auto &row_ptr = a.rowPtr();
    const auto &col = a.colIdx();
    LevelResult res;
    std::vector<std::size_t> level = {root};
    mark[root] = stamp;
    while (!level.empty()) {
        res.lastLevel = level;
        ++res.depth;
        std::vector<std::size_t> next;
        for (std::size_t u : level) {
            for (std::size_t k = row_ptr[u]; k < row_ptr[u + 1];
                 ++k) {
                std::size_t v = col[k];
                if (v == u || mark[v] == stamp)
                    continue;
                mark[v] = stamp;
                next.push_back(v);
            }
        }
        level = std::move(next);
    }
    return res;
}

} // namespace

std::vector<std::size_t>
rcmOrdering(const SparseMatrix &a)
{
    TG_ASSERT(a.rows() == a.cols(),
              "RCM ordering needs a square matrix");
    const std::size_t n = a.rows();
    const auto &row_ptr = a.rowPtr();
    const auto &col = a.colIdx();

    std::vector<std::size_t> degree(n, 0);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k)
            if (col[k] != r)
                ++degree[r];

    std::vector<std::size_t> order;
    order.reserve(n);
    std::vector<int> visited(n, 0);
    std::vector<int> mark(n, 0);
    int stamp = 0;

    for (std::size_t seed = 0; seed < n; ++seed) {
        if (visited[seed])
            continue;

        // Pick the component's minimum-degree unvisited node as the
        // starting candidate, then walk to a pseudo-peripheral node
        // (George-Liu): re-root at a minimum-degree node of the last
        // BFS level while the eccentricity keeps growing.
        std::size_t root = seed;
        {
            LevelResult lv = bfsLevels(a, root, mark, ++stamp);
            for (int iter = 0; iter < 8; ++iter) {
                std::size_t best = lv.lastLevel[0];
                for (std::size_t u : lv.lastLevel)
                    if (degree[u] < degree[best] ||
                        (degree[u] == degree[best] && u < best))
                        best = u;
                if (best == root)
                    break;
                LevelResult next = bfsLevels(a, best, mark, ++stamp);
                if (next.depth <= lv.depth)
                    break;
                root = best;
                lv = std::move(next);
            }
        }

        // Cuthill-McKee: BFS from the root, neighbours appended in
        // (degree, index) order.
        std::size_t head = order.size();
        order.push_back(root);
        visited[root] = 1;
        while (head < order.size()) {
            std::size_t u = order[head++];
            std::vector<std::size_t> nbrs;
            for (std::size_t k = row_ptr[u]; k < row_ptr[u + 1]; ++k) {
                std::size_t v = col[k];
                if (v != u && !visited[v]) {
                    visited[v] = 1;
                    nbrs.push_back(v);
                }
            }
            std::sort(nbrs.begin(), nbrs.end(),
                      [&](std::size_t x, std::size_t y) {
                          return degree[x] != degree[y]
                                     ? degree[x] < degree[y]
                                     : x < y;
                      });
            order.insert(order.end(), nbrs.begin(), nbrs.end());
        }
    }

    std::reverse(order.begin(), order.end());
    return order;
}

SparseLdltSolver::SparseLdltSolver(const SparseMatrix &a,
                                   Ordering ordering)
    : n(a.rows())
{
    if (a.rows() != a.cols())
        fatal("LDL^T factorisation requires a square matrix, got ",
              a.rows(), "x", a.cols());

    if (ordering == Ordering::Rcm) {
        perm = rcmOrdering(a);
    } else {
        perm.resize(n);
        for (std::size_t i = 0; i < n; ++i)
            perm[i] = i;
    }
    std::vector<std::size_t> iperm(n);
    for (std::size_t i = 0; i < n; ++i)
        iperm[perm[i]] = i;

    // Row envelopes of the permuted matrix: the factor fills the full
    // interval [first[i], i), so only the leftmost structural column
    // per row matters.
    const auto &row_ptr = a.rowPtr();
    const auto &col = a.colIdx();
    first.assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
        std::size_t lo = i;
        std::size_t old = perm[i];
        for (std::size_t k = row_ptr[old]; k < row_ptr[old + 1]; ++k) {
            std::size_t j = iperm[col[k]];
            if (j < lo)
                lo = j;
        }
        first[i] = lo;
    }

    rowStart.assign(n + 1, 0);
    for (std::size_t i = 0; i < n; ++i)
        rowStart[i + 1] = rowStart[i] + (i - first[i]);
    low.assign(rowStart[n], 0.0);
    diag.assign(n, 0.0);

    // Scatter the permuted lower triangle into the envelope. The
    // matrix is required to be symmetric; only j <= i entries are
    // read.
    for (std::size_t i = 0; i < n; ++i) {
        std::size_t old = perm[i];
        for (std::size_t k = row_ptr[old]; k < row_ptr[old + 1]; ++k) {
            std::size_t j = iperm[col[k]];
            if (j > i)
                continue;
            if (j == i)
                diag[i] += a.values()[k];
            else
                low[rowStart[i] + (j - first[i])] += a.values()[k];
        }
    }

    // In-envelope LDL^T: for each row i and column j in the envelope,
    //   L(i,j) = (A(i,j) - sum_k L(i,k) D(k) L(j,k)) / D(j)
    //   D(i)   = A(i,i) - sum_k L(i,k)^2 D(k)
    for (std::size_t i = 0; i < n; ++i) {
        double *li = low.data() + rowStart[i];
        std::size_t fi = first[i];
        for (std::size_t j = fi; j < i; ++j) {
            const double *lj = low.data() + rowStart[j];
            std::size_t fj = first[j];
            std::size_t k0 = std::max(fi, fj);
            double s = li[j - fi];
            for (std::size_t k = k0; k < j; ++k)
                s -= li[k - fi] * diag[k] * lj[k - fj];
            li[j - fi] = s / diag[j];
        }
        double d = diag[i];
        for (std::size_t k = fi; k < i; ++k)
            d -= li[k - fi] * li[k - fi] * diag[k];
        if (!(d > 0.0) || !std::isfinite(d))
            panic("matrix not positive definite in LDL^T "
                  "factorisation at row ", i, " (pivot ", d, ")");
        diag[i] = d;
    }
}

std::vector<double>
SparseLdltSolver::solve(const std::vector<double> &b) const
{
    std::vector<double> x(b);
    solveInPlace(x);
    return x;
}

void
SparseLdltSolver::solveInPlace(std::vector<double> &bx) const
{
    TG_ASSERT(bx.size() == n, "rhs size mismatch in LDL^T solve");
    solveInPlace(bx.data());
}

void
SparseLdltSolver::solveInPlace(double *bx) const
{
    scratch.resize(n);
    std::vector<double> &y = scratch;
    for (std::size_t i = 0; i < n; ++i)
        y[i] = bx[perm[i]];

    // Forward substitution with unit-diagonal L.
    for (std::size_t i = 0; i < n; ++i) {
        const double *li = low.data() + rowStart[i];
        std::size_t fi = first[i];
        double acc = y[i];
        for (std::size_t j = fi; j < i; ++j)
            acc -= li[j - fi] * y[j];
        y[i] = acc;
    }

    // Diagonal scaling, then back substitution with L^T: the stored
    // rows of L are the columns of L^T, so sweep rows from the bottom
    // and scatter each solved component into the rows above it.
    for (std::size_t i = 0; i < n; ++i)
        y[i] /= diag[i];
    for (std::size_t i = n; i-- > 0;) {
        const double *li = low.data() + rowStart[i];
        std::size_t fi = first[i];
        for (std::size_t j = fi; j < i; ++j)
            y[j] -= li[j - fi] * y[i];
    }

    for (std::size_t i = 0; i < n; ++i)
        bx[perm[i]] = y[i];

#ifdef TG_DEBUG_CHECKS
    for (std::size_t i = 0; i < n; ++i)
        TG_DEBUG_ASSERT(std::isfinite(bx[i]),
                        "non-finite LDL^T solution at row ", i);
#endif
}

/**
 * Fixed-width lockstep solve: identical substitution loops to the
 * scalar solveInPlace(), with every row operation applied to all W
 * lanes before moving on. Lane l therefore sees the scalar op
 * sequence exactly, and the W-wide inner loops auto-vectorise.
 */
template <int W>
void
SparseLdltSolver::solveBatchFixed(double *bx) const
{
    using B = DoubleBatch<W>;
    batchScratch.resize(n * W);
    double *y = batchScratch.data();
    for (std::size_t i = 0; i < n; ++i)
        B::load(bx + perm[i] * W).store(y + i * W);

    // Forward substitution with unit-diagonal L.
    for (std::size_t i = 0; i < n; ++i) {
        const double *li = low.data() + rowStart[i];
        std::size_t fi = first[i];
        B acc = B::load(y + i * W);
        for (std::size_t j = fi; j < i; ++j)
            acc -= B::load(y + j * W) * li[j - fi];
        acc.store(y + i * W);
    }

    // Diagonal scaling, then back substitution with L^T.
    for (std::size_t i = 0; i < n; ++i)
        (B::load(y + i * W) / diag[i]).store(y + i * W);
    for (std::size_t i = n; i-- > 0;) {
        const double *li = low.data() + rowStart[i];
        std::size_t fi = first[i];
        B yi = B::load(y + i * W);
        for (std::size_t j = fi; j < i; ++j)
            (B::load(y + j * W) - yi * li[j - fi]).store(y + j * W);
    }

    for (std::size_t i = 0; i < n; ++i)
        B::load(y + i * W).store(bx + perm[i] * W);
}

/** Runtime-width fallback with the same per-lane operation order. */
void
SparseLdltSolver::solveBatchGeneric(double *bx, std::size_t width) const
{
    const std::size_t w = width;
    batchScratch.resize(n * w);
    double *y = batchScratch.data();
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t l = 0; l < w; ++l)
            y[i * w + l] = bx[perm[i] * w + l];

    for (std::size_t i = 0; i < n; ++i) {
        const double *li = low.data() + rowStart[i];
        std::size_t fi = first[i];
        double *yi = y + i * w;
        for (std::size_t j = fi; j < i; ++j) {
            const double c = li[j - fi];
            const double *yj = y + j * w;
            for (std::size_t l = 0; l < w; ++l)
                yi[l] -= c * yj[l];
        }
    }

    for (std::size_t i = 0; i < n; ++i) {
        const double d = diag[i];
        for (std::size_t l = 0; l < w; ++l)
            y[i * w + l] /= d;
    }
    for (std::size_t i = n; i-- > 0;) {
        const double *li = low.data() + rowStart[i];
        std::size_t fi = first[i];
        const double *yi = y + i * w;
        for (std::size_t j = fi; j < i; ++j) {
            const double c = li[j - fi];
            double *yj = y + j * w;
            for (std::size_t l = 0; l < w; ++l)
                yj[l] -= c * yi[l];
        }
    }

    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t l = 0; l < w; ++l)
            bx[perm[i] * w + l] = y[i * w + l];
}

void
SparseLdltSolver::solveBatchInPlace(double *bx, std::size_t width) const
{
    TG_ASSERT(width > 0, "batched solve needs at least one lane");
    switch (width) {
      case 1: solveInPlace(bx); break;
      case 2: solveBatchFixed<2>(bx); break;
      case 4: solveBatchFixed<4>(bx); break;
      case 8: solveBatchFixed<8>(bx); break;
      default: solveBatchGeneric(bx, width); break;
    }

#ifdef TG_DEBUG_CHECKS
    for (std::size_t i = 0; i < n * width; ++i)
        TG_DEBUG_ASSERT(std::isfinite(bx[i]),
                        "non-finite LDL^T batch solution at element ",
                        i, " (width ", width, ")");
#endif
}

void
SparseLdltSolver::solveInPlace(Matrix &bx) const
{
    TG_ASSERT(bx.rows() == n, "multi-RHS rows mismatch in LDL^T solve");
    TG_ASSERT(bx.cols() > 0, "multi-RHS solve needs columns");
    // Row-major n x k storage IS the interleaved lane layout.
    solveBatchInPlace(bx.row(0), bx.cols());
}

std::size_t
SparseLdltSolver::envelopeBandwidth() const
{
    std::size_t b = 0;
    for (std::size_t i = 0; i < n; ++i)
        b = std::max(b, i - first[i]);
    return b;
}

} // namespace tg
