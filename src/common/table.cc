#include "common/table.hh"

#include <iomanip>
#include <sstream>

#include "common/logging.hh"

namespace tg {

TextTable::TextTable(std::vector<std::string> header)
    : head(std::move(header))
{
    TG_ASSERT(!head.empty(), "table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> row)
{
    TG_ASSERT(row.size() == head.size(),
              "row width ", row.size(), " != header width ", head.size());
    rows.push_back(std::move(row));
}

std::string
TextTable::num(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> width(head.size());
    for (std::size_t c = 0; c < head.size(); ++c)
        width[c] = head[c].size();
    for (const auto &row : rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::setw(static_cast<int>(width[c])) << row[c];
            os << (c + 1 == row.size() ? "\n" : "  ");
        }
    };
    emit(head);
    std::size_t total = 2 * (head.size() - 1);
    for (std::size_t w : width)
        total += w;
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows)
        emit(row);
}

void
TextTable::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            os << row[c] << (c + 1 == row.size() ? "\n" : ",");
    };
    emit(head);
    for (const auto &row : rows)
        emit(row);
}

} // namespace tg
