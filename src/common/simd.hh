/**
 * @file
 * Portable width-W lane batch for lockstep execution.
 *
 * DoubleBatch<W> is a plain W-lane double value type with lane-wise
 * arithmetic: every operator applies the identical scalar operation
 * to each lane independently, in lane order, with no cross-lane
 * reduction and no reassociation. That is the property the batched
 * solver and transient kernels rely on for bit-identity — lane l of
 * a batched computation executes exactly the floating-point op
 * sequence the scalar code would execute for that problem, so
 * extracting lane l reproduces the scalar result bit for bit.
 *
 * Storage is chosen for the register allocator, not just the
 * vector units. On GCC/Clang, power-of-two widths are built
 * recursively from named lo/hi halves that bottom out in a two-lane
 * generic vector (`vector_size(16)`), one SSE2/NEON register. Both
 * the obvious alternatives defeat scalar replacement in GCC and cost
 * the batched envelope solver stack round-trips per matrix entry:
 * a `double[W]` array member is never promoted, and a single wide
 * 32/64-byte generic vector is legalised through stack slots on
 * 128-bit baselines. The nested-struct form keeps every half in a
 * register. Non-power-of-two widths (and other compilers) fall back
 * to a plain array with fixed trip-count loops — identical results
 * by construction.
 *
 * When the target has 256-bit registers (`__AVX__`, e.g. a
 * -DTG_ARCH=x86-64-v3 build) the four-lane base case is a single
 * `vector_size(32)` vector instead of two 16-byte halves, so width-4
 * batches occupy one YMM register and width-8 batches two. The lane
 * values are unchanged — only the register carve-up differs — and
 * bit-identity with the portable build is preserved because the
 * whole project compiles with -ffp-contract=off: no a*b+c is ever
 * contracted into an FMA, on either tier, in either the batched or
 * the scalar path. No intrinsics and no std::fma anywhere; every
 * lane executes the exact scalar op sequence.
 */

#ifndef TG_COMMON_SIMD_HH
#define TG_COMMON_SIMD_HH

#include <algorithm>
#include <cstddef>
#include <cstring>

#if defined(__clang__) || (defined(__GNUC__) && __GNUC__ >= 8)
#define TG_SIMD_VECTOR_EXT 1
#else
#define TG_SIMD_VECTOR_EXT 0
#endif

namespace tg {

/** Default lockstep width: 4 doubles = one AVX2 register. */
inline constexpr int kDefaultBatchWidth = 4;

/** Widest lockstep kernel instantiated by the solvers. */
inline constexpr int kMaxBatchWidth = 8;

namespace detail {

constexpr bool
isPow2(int w)
{
    return w > 0 && (w & (w - 1)) == 0;
}

/**
 * Portable lane storage: a plain array, operated on by fixed
 * trip-count loops. All LaneStore variants expose the same
 * member-function vocabulary so DoubleBatch is layout-agnostic.
 */
template <int W, bool Native>
struct LaneStore
{
    double v[W];

    double get(int l) const { return v[l]; }
    void loadFrom(const double *p) { std::memcpy(v, p, sizeof v); }
    void storeTo(double *p) const { std::memcpy(p, v, sizeof v); }
    void fill(double s)
    {
        for (int l = 0; l < W; ++l)
            v[l] = s;
    }
    void add(const LaneStore &o)
    {
        for (int l = 0; l < W; ++l)
            v[l] += o.v[l];
    }
    void sub(const LaneStore &o)
    {
        for (int l = 0; l < W; ++l)
            v[l] -= o.v[l];
    }
    void mul(const LaneStore &o)
    {
        for (int l = 0; l < W; ++l)
            v[l] *= o.v[l];
    }
    void div(const LaneStore &o)
    {
        for (int l = 0; l < W; ++l)
            v[l] /= o.v[l];
    }
    void muls(double s)
    {
        for (int l = 0; l < W; ++l)
            v[l] *= s;
    }
    void divs(double s)
    {
        for (int l = 0; l < W; ++l)
            v[l] /= s;
    }
    void maxOf(const LaneStore &a, const LaneStore &b)
    {
        for (int l = 0; l < W; ++l)
            v[l] = std::max(a.v[l], b.v[l]);
    }
};

#if TG_SIMD_VECTOR_EXT

/** Base case: two lanes in one native 16-byte vector register. */
template <>
struct LaneStore<2, true>
{
    typedef double Vec2 __attribute__((vector_size(16)));
    /**
     * Unaligned-view twin of Vec2 for memory traffic: element
     * alignment only, plus may_alias so dereferencing a cast
     * double* is sanctioned under TBAA. A plain memcpy here baits
     * GCC into staging wide batches through 16-byte stack copies
     * (a store-forwarding stall per matrix entry on AVX builds);
     * the unaligned vector type compiles to one movupd/vmovupd.
     */
    typedef double Vec2U
        __attribute__((vector_size(16), aligned(8), may_alias));
    Vec2 v;

    double get(int l) const { return v[l]; }
    void loadFrom(const double *p)
    {
        v = *reinterpret_cast<const Vec2U *>(p);
    }
    void storeTo(double *p) const
    {
        *reinterpret_cast<Vec2U *>(p) = v;
    }
    void fill(double s)
    {
        v[0] = s;
        v[1] = s;
    }
    void add(const LaneStore &o) { v += o.v; }
    void sub(const LaneStore &o) { v -= o.v; }
    void mul(const LaneStore &o) { v *= o.v; }
    void div(const LaneStore &o) { v /= o.v; }
    void muls(double s) { v *= s; }
    void divs(double s) { v /= s; }
    /** std::max per lane: exactly (a < b ? b : a). */
    void maxOf(const LaneStore &a, const LaneStore &b)
    {
        v = (a.v < b.v) ? b.v : a.v;
    }
};

#if defined(__AVX__)

/**
 * Four lanes in one native 32-byte vector register. This full
 * specialization outranks the recursive partial below, so on AVX
 * targets the lo/hi recursion for W >= 8 bottoms out here instead
 * of at the two-lane case: width 8 becomes two YMM registers.
 * Exists only when the target really has 256-bit registers —
 * on 128-bit baselines GCC would legalise it through stack slots.
 */
template <>
struct LaneStore<4, true>
{
    typedef double Vec4 __attribute__((vector_size(32)));
    /** Unaligned view for loads/stores — see LaneStore<2>::Vec2U. */
    typedef double Vec4U
        __attribute__((vector_size(32), aligned(8), may_alias));
    Vec4 v;

    double get(int l) const { return v[l]; }
    void loadFrom(const double *p)
    {
        v = *reinterpret_cast<const Vec4U *>(p);
    }
    void storeTo(double *p) const
    {
        *reinterpret_cast<Vec4U *>(p) = v;
    }
    void fill(double s)
    {
        v[0] = s;
        v[1] = s;
        v[2] = s;
        v[3] = s;
    }
    void add(const LaneStore &o) { v += o.v; }
    void sub(const LaneStore &o) { v -= o.v; }
    void mul(const LaneStore &o) { v *= o.v; }
    void div(const LaneStore &o) { v /= o.v; }
    void muls(double s) { v *= s; }
    void divs(double s) { v /= s; }
    /** std::max per lane: exactly (a < b ? b : a). */
    void maxOf(const LaneStore &a, const LaneStore &b)
    {
        v = (a.v < b.v) ? b.v : a.v;
    }
};

#endif // __AVX__

/**
 * Wider powers of two recurse into named halves: `lo` holds lanes
 * [0, W/2), `hi` the rest, contiguous in memory. Named members —
 * unlike an array of halves or one wide generic vector — survive
 * GCC's scalar replacement, so accumulators of any width live
 * entirely in registers.
 */
template <int W>
struct LaneStore<W, true>
{
    static_assert(W >= 4 && isPow2(W), "recursive storage width");
    LaneStore<W / 2, true> lo, hi;

    double get(int l) const
    {
        return l < W / 2 ? lo.get(l) : hi.get(l - W / 2);
    }
    void loadFrom(const double *p)
    {
        lo.loadFrom(p);
        hi.loadFrom(p + W / 2);
    }
    void storeTo(double *p) const
    {
        lo.storeTo(p);
        hi.storeTo(p + W / 2);
    }
    void fill(double s)
    {
        lo.fill(s);
        hi.fill(s);
    }
    void add(const LaneStore &o)
    {
        lo.add(o.lo);
        hi.add(o.hi);
    }
    void sub(const LaneStore &o)
    {
        lo.sub(o.lo);
        hi.sub(o.hi);
    }
    void mul(const LaneStore &o)
    {
        lo.mul(o.lo);
        hi.mul(o.hi);
    }
    void div(const LaneStore &o)
    {
        lo.div(o.lo);
        hi.div(o.hi);
    }
    void muls(double s)
    {
        lo.muls(s);
        hi.muls(s);
    }
    void divs(double s)
    {
        lo.divs(s);
        hi.divs(s);
    }
    void maxOf(const LaneStore &a, const LaneStore &b)
    {
        lo.maxOf(a.lo, b.lo);
        hi.maxOf(a.hi, b.hi);
    }
};

#endif // TG_SIMD_VECTOR_EXT

} // namespace detail

template <int W>
struct DoubleBatch
{
    static_assert(W >= 1 && W <= 16, "unsupported batch width");

    static constexpr bool kNative =
        TG_SIMD_VECTOR_EXT && W >= 2 && detail::isPow2(W);

    detail::LaneStore<W, kNative> s;

    static constexpr int width() { return W; }

    /** All lanes set to `v`. */
    static DoubleBatch broadcast(double v)
    {
        DoubleBatch b;
        b.s.fill(v);
        return b;
    }

    /** Load W contiguous doubles from `p` (no alignment assumed). */
    static DoubleBatch load(const double *p)
    {
        DoubleBatch b;
        b.s.loadFrom(p);
        return b;
    }

    /** Store W contiguous doubles to `p` (no alignment assumed). */
    void store(double *p) const
    {
        s.storeTo(p);
    }

    /**
     * Per-lane extract (by value: vector-extension elements are not
     * addressable on Clang, so there is no mutable reference form —
     * mutate lanes through load/store or whole-batch operators).
     */
    double operator[](int l) const { return s.get(l); }

    DoubleBatch &operator+=(const DoubleBatch &o)
    {
        s.add(o.s);
        return *this;
    }
    DoubleBatch &operator-=(const DoubleBatch &o)
    {
        s.sub(o.s);
        return *this;
    }
    DoubleBatch &operator*=(const DoubleBatch &o)
    {
        s.mul(o.s);
        return *this;
    }
    DoubleBatch &operator/=(const DoubleBatch &o)
    {
        s.div(o.s);
        return *this;
    }

    friend DoubleBatch operator+(DoubleBatch a, const DoubleBatch &b)
    {
        return a += b;
    }
    friend DoubleBatch operator-(DoubleBatch a, const DoubleBatch &b)
    {
        return a -= b;
    }
    friend DoubleBatch operator*(DoubleBatch a, const DoubleBatch &b)
    {
        return a *= b;
    }
    friend DoubleBatch operator/(DoubleBatch a, const DoubleBatch &b)
    {
        return a /= b;
    }

    /** Lane-wise a*s (scalar broadcast on the right). */
    friend DoubleBatch operator*(DoubleBatch a, double s)
    {
        a.s.muls(s);
        return a;
    }
    friend DoubleBatch operator*(double s, DoubleBatch a)
    {
        return a * s;
    }

    /** Lane-wise a/s. */
    friend DoubleBatch operator/(DoubleBatch a, double s)
    {
        a.s.divs(s);
        return a;
    }

    /**
     * Lane-wise std::max — exactly (a < b ? b : a) per lane, the
     * accumulation step of the scalar droop scans (including the
     * NaN and signed-zero behaviour of that exact ternary).
     */
    static DoubleBatch max(const DoubleBatch &a, const DoubleBatch &b)
    {
        DoubleBatch r;
        r.s.maxOf(a.s, b.s);
        return r;
    }
};

} // namespace tg

#endif // TG_COMMON_SIMD_HH
