/**
 * @file
 * Seeded random number generation.
 *
 * Every stochastic component in the library draws from an explicitly
 * seeded Rng so that simulations are reproducible bit-for-bit. Wall
 * clock and std::random_device are never used.
 */

#ifndef TG_COMMON_RNG_HH
#define TG_COMMON_RNG_HH

#include <cstdint>
#include <random>
#include <string>

namespace tg {

/**
 * Order-sensitive 64-bit seed mixer: combines two seeds into one with
 * good avalanche behaviour. mixSeed(a, b) != mixSeed(b, a), which is
 * what lets callers build distinct per-subsystem streams from a
 * master seed and a salt.
 */
inline std::uint64_t
mixSeed(std::uint64_t a, std::uint64_t b)
{
    return (a ^ (b + 0x9e3779b97f4a7c15ull + (a << 6) + (a >> 2))) *
           0xbf58476d1ce4e5b9ull;
}

/** FNV-1a hash of a string, for seeding per-benchmark streams. */
inline std::uint64_t
hashString(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

/**
 * Deterministic random source wrapping std::mt19937_64.
 *
 * Provides the handful of distributions the simulator needs. A child
 * generator can be forked deterministically with fork() so independent
 * subsystems do not perturb each other's streams.
 */
class Rng
{
  public:
    /** Construct from an explicit 64-bit seed. */
    explicit Rng(std::uint64_t seed) : engine(seed) {}

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return std::uniform_real_distribution<double>(0.0, 1.0)(engine);
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return std::uniform_real_distribution<double>(lo, hi)(engine);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int
    uniformInt(int lo, int hi)
    {
        return std::uniform_int_distribution<int>(lo, hi)(engine);
    }

    /** Normal deviate with the given mean and standard deviation. */
    double
    gaussian(double mean, double sigma)
    {
        return std::normal_distribution<double>(mean, sigma)(engine);
    }

    /** Bernoulli trial with probability p of returning true. */
    bool
    bernoulli(double p)
    {
        return std::bernoulli_distribution(p)(engine);
    }

    /**
     * Fork a child generator whose stream is independent of the
     * parent's future draws. The child seed mixes the parent's next
     * output with a caller-supplied salt, so forking the same salt
     * twice in sequence yields distinct children.
     */
    Rng
    fork(std::uint64_t salt)
    {
        std::uint64_t s = engine() ^ (salt * 0x9e3779b97f4a7c15ull);
        return Rng(s);
    }

    /** Expose the engine for std distributions not wrapped above. */
    std::mt19937_64 &raw() { return engine; }

  private:
    std::mt19937_64 engine;
};

} // namespace tg

#endif // TG_COMMON_RNG_HH
