#include "common/io.hh"

#ifdef __unix__
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace tg {
namespace io {

#ifdef __unix__

bool writeAll(int fd, const std::uint8_t *data, std::size_t size)
{
    std::size_t off = 0;
    while (off < size) {
        ssize_t n = ::write(fd, data + off, size - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

bool setNonBlocking(int fd, bool on)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0)
        return false;
    if (on)
        flags |= O_NONBLOCK;
    else
        flags &= ~O_NONBLOCK;
    return ::fcntl(fd, F_SETFL, flags) == 0;
}

namespace {

/** Fill a sockaddr_un; false when `path` overflows sun_path. */
bool unixAddress(const std::string &path, sockaddr_un &addr)
{
    if (path.empty() || path.size() >= sizeof addr.sun_path)
        return false;
    std::memset(&addr, 0, sizeof addr);
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return true;
}

} // namespace

int listenUnix(const std::string &path, int backlog, std::string *err)
{
    auto fail = [&](const std::string &why) {
        if (err)
            *err = why;
        return -1;
    };

    sockaddr_un addr;
    if (!unixAddress(path, addr))
        return fail("socket path '" + path +
                    "' is empty or too long for sun_path");

    int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        return fail(std::string("socket(): ") + std::strerror(errno));

    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0) {
        if (errno != EADDRINUSE) {
            ::close(fd);
            return fail(std::string("bind(") + path +
                        "): " + std::strerror(errno));
        }
        // The path exists. A live server accepts connections on it; a
        // stale file from a crashed server refuses them and is safe
        // to reclaim.
        int probe = connectUnix(path);
        if (probe >= 0) {
            ::close(probe);
            ::close(fd);
            return fail("a server is already listening on " + path);
        }
        if (::unlink(path.c_str()) != 0 ||
            ::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof addr) != 0) {
            ::close(fd);
            return fail("cannot reclaim stale socket " + path + ": " +
                        std::strerror(errno));
        }
    }

    if (::listen(fd, backlog > 0 ? backlog : 16) != 0) {
        ::close(fd);
        return fail(std::string("listen(") + path +
                    "): " + std::strerror(errno));
    }
    return fd;
}

int connectUnix(const std::string &path)
{
    sockaddr_un addr;
    if (!unixAddress(path, addr))
        return -1;
    int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        return -1;
    int rv;
    do {
        rv = ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                       sizeof addr);
    } while (rv != 0 && errno == EINTR);
    if (rv != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

#else // !__unix__

bool writeAll(int, const std::uint8_t *, std::size_t) { return false; }
bool setNonBlocking(int, bool) { return false; }

int listenUnix(const std::string &, int, std::string *err)
{
    if (err)
        *err = "Unix-domain sockets require a POSIX host";
    return -1;
}

int connectUnix(const std::string &) { return -1; }

#endif // __unix__

} // namespace io
} // namespace tg
