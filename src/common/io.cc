#include "common/io.hh"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <mutex>

#include "common/bytes.hh"

#ifdef __unix__
#include <cstring>
#include <fcntl.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace tg {
namespace io {

// --- deterministic I/O chaos ------------------------------------------

namespace {

/** 0 = uninitialised, 1 = disabled, 2 = enabled. The fast path is a
 *  single relaxed load of this word. */
std::atomic<int> g_chaosState{0};
std::mutex g_chaosMu;
ChaosConfig g_chaosCfg;

std::atomic<std::uint64_t> g_chaosOp{0};
std::atomic<std::uint64_t> g_chaosShortReads{0};
std::atomic<std::uint64_t> g_chaosShortWrites{0};
std::atomic<std::uint64_t> g_chaosEintrs{0};
std::atomic<std::uint64_t> g_chaosResets{0};
std::atomic<std::uint64_t> g_chaosEnospcs{0};

/** Which fault (if any) operation index `op` draws. */
enum class ChaosDraw
{
    None,
    Eintr,
    Reset,
    Short,
    Enospc, // only consulted by the disk gate
};

/** The uniform [0, 1) variate of operation `op` under `seed`. */
double chaosUnit(std::uint64_t seed, std::uint64_t op)
{
    std::uint8_t key[16];
    for (int i = 0; i < 8; ++i) {
        key[i] = static_cast<std::uint8_t>(seed >> (8 * i));
        key[8 + i] = static_cast<std::uint8_t>(op >> (8 * i));
    }
    const std::uint64_t h = bytes::fnv1a(key, sizeof key);
    // 53 bits of the hash -> [0, 1) exactly representable.
    return static_cast<double>(h >> 11) /
           static_cast<double>(1ull << 53);
}

/** Draw for a read/write op: cumulative rate comparison, EINTR
 *  first, then reset, then short transfer. */
ChaosDraw drawFor(const ChaosConfig &cfg, std::uint64_t op,
                  bool isRead)
{
    const double u = chaosUnit(cfg.seed, op);
    double edge = cfg.eintr;
    if (u < edge)
        return ChaosDraw::Eintr;
    edge += cfg.reset;
    if (u < edge)
        return ChaosDraw::Reset;
    edge += isRead ? cfg.shortRead : cfg.shortWrite;
    if (u < edge)
        return ChaosDraw::Short;
    return ChaosDraw::None;
}

void chaosInitFromEnv()
{
    std::lock_guard<std::mutex> lock(g_chaosMu);
    if (g_chaosState.load(std::memory_order_relaxed) != 0)
        return;
    ChaosConfig cfg;
    if (const char *env = std::getenv("TG_IO_FAULTS")) {
        std::string err;
        if (!chaosParse(env, cfg, &err)) {
            // A malformed spec disables injection instead of
            // changing runtime behaviour on a typo; the parse error
            // is surfaced by tools that validate specs up front.
            cfg = ChaosConfig{};
        }
    }
    g_chaosCfg = cfg;
    g_chaosState.store(cfg.enabled ? 2 : 1,
                       std::memory_order_release);
}

/** Truncated length of a short transfer: 1..16 bytes, keyed off the
 *  same op so replays agree. */
std::size_t shortLen(const ChaosConfig &cfg, std::uint64_t op,
                     std::size_t want)
{
    const std::uint64_t h =
        bytes::fnv1a(reinterpret_cast<const std::uint8_t *>(&op),
                     sizeof op) ^
        cfg.seed;
    const std::size_t cap = 1 + static_cast<std::size_t>(h % 16);
    return want < cap ? want : cap;
}

} // namespace

bool chaosParse(const std::string &spec, ChaosConfig &out,
                std::string *err)
{
    auto fail = [&](const std::string &why) {
        if (err)
            *err = why;
        return false;
    };
    ChaosConfig cfg;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t end = spec.find(',', pos);
        if (end == std::string::npos)
            end = spec.size();
        const std::string item = spec.substr(pos, end - pos);
        pos = end + 1;
        if (item.empty())
            continue;
        const std::size_t eq = item.find('=');
        if (eq == std::string::npos)
            return fail("chaos spec item '" + item +
                        "' is not key=value");
        const std::string key = item.substr(0, eq);
        const std::string val = item.substr(eq + 1);
        char *parse_end = nullptr;
        if (key == "seed") {
            const unsigned long long v =
                std::strtoull(val.c_str(), &parse_end, 10);
            if (parse_end == val.c_str() || *parse_end != '\0')
                return fail("chaos seed '" + val +
                            "' is not a number");
            cfg.seed = v;
            continue;
        }
        const double p = std::strtod(val.c_str(), &parse_end);
        if (parse_end == val.c_str() || *parse_end != '\0')
            return fail("chaos rate '" + val + "' for '" + key +
                        "' is not a number");
        if (p < 0.0 || p > 1.0)
            return fail("chaos rate for '" + key +
                        "' must be in [0, 1]");
        if (key == "short-read")
            cfg.shortRead = p;
        else if (key == "short-write")
            cfg.shortWrite = p;
        else if (key == "eintr")
            cfg.eintr = p;
        else if (key == "reset")
            cfg.reset = p;
        else if (key == "enospc")
            cfg.enospc = p;
        else
            return fail("unknown chaos key '" + key + "'");
    }
    cfg.enabled = cfg.shortRead > 0.0 || cfg.shortWrite > 0.0 ||
                  cfg.eintr > 0.0 || cfg.reset > 0.0 ||
                  cfg.enospc > 0.0;
    out = cfg;
    return true;
}

void chaosConfigure(const ChaosConfig &cfg)
{
    std::lock_guard<std::mutex> lock(g_chaosMu);
    g_chaosCfg = cfg;
    g_chaosOp.store(0, std::memory_order_relaxed);
    g_chaosState.store(cfg.enabled ? 2 : 1,
                       std::memory_order_release);
}

ChaosConfig chaosConfig()
{
    if (g_chaosState.load(std::memory_order_acquire) == 0)
        chaosInitFromEnv();
    std::lock_guard<std::mutex> lock(g_chaosMu);
    return g_chaosCfg;
}

bool chaosEnabled()
{
    int st = g_chaosState.load(std::memory_order_acquire);
    if (st == 0) {
        chaosInitFromEnv();
        st = g_chaosState.load(std::memory_order_acquire);
    }
    return st == 2;
}

ChaosCounters chaosCounters()
{
    ChaosCounters c;
    c.ops = g_chaosOp.load(std::memory_order_relaxed);
    c.shortReads = g_chaosShortReads.load(std::memory_order_relaxed);
    c.shortWrites = g_chaosShortWrites.load(std::memory_order_relaxed);
    c.eintrs = g_chaosEintrs.load(std::memory_order_relaxed);
    c.resets = g_chaosResets.load(std::memory_order_relaxed);
    c.enospcs = g_chaosEnospcs.load(std::memory_order_relaxed);
    return c;
}

void chaosResetCounters()
{
    g_chaosOp.store(0, std::memory_order_relaxed);
    g_chaosShortReads.store(0, std::memory_order_relaxed);
    g_chaosShortWrites.store(0, std::memory_order_relaxed);
    g_chaosEintrs.store(0, std::memory_order_relaxed);
    g_chaosResets.store(0, std::memory_order_relaxed);
    g_chaosEnospcs.store(0, std::memory_order_relaxed);
}

#ifdef __unix__

long chaosRead(int fd, void *buf, std::size_t count)
{
    if (chaosEnabled() && count > 0) {
        const ChaosConfig cfg = chaosConfig();
        const std::uint64_t op =
            g_chaosOp.fetch_add(1, std::memory_order_relaxed);
        switch (drawFor(cfg, op, /*isRead=*/true)) {
        case ChaosDraw::Eintr:
            g_chaosEintrs.fetch_add(1, std::memory_order_relaxed);
            errno = EINTR;
            return -1;
        case ChaosDraw::Reset:
            g_chaosResets.fetch_add(1, std::memory_order_relaxed);
            errno = ECONNRESET;
            return -1;
        case ChaosDraw::Short:
            g_chaosShortReads.fetch_add(1,
                                        std::memory_order_relaxed);
            count = shortLen(cfg, op, count);
            break;
        default:
            break;
        }
    }
    return static_cast<long>(::read(fd, buf, count));
}

long chaosWrite(int fd, const void *buf, std::size_t count)
{
    if (chaosEnabled() && count > 0) {
        const ChaosConfig cfg = chaosConfig();
        const std::uint64_t op =
            g_chaosOp.fetch_add(1, std::memory_order_relaxed);
        switch (drawFor(cfg, op, /*isRead=*/false)) {
        case ChaosDraw::Eintr:
            g_chaosEintrs.fetch_add(1, std::memory_order_relaxed);
            errno = EINTR;
            return -1;
        case ChaosDraw::Reset:
            g_chaosResets.fetch_add(1, std::memory_order_relaxed);
            errno = ECONNRESET;
            return -1;
        case ChaosDraw::Short:
            g_chaosShortWrites.fetch_add(1,
                                         std::memory_order_relaxed);
            count = shortLen(cfg, op, count);
            break;
        default:
            break;
        }
    }
    return static_cast<long>(::write(fd, buf, count));
}

#else // !__unix__

long chaosRead(int, void *, std::size_t)
{
    return -1;
}

long chaosWrite(int, const void *, std::size_t)
{
    return -1;
}

#endif // __unix__

bool chaosDiskWriteAllowed()
{
    if (!chaosEnabled())
        return true;
    const ChaosConfig cfg = chaosConfig();
    if (cfg.enospc <= 0.0)
        return true;
    const std::uint64_t op =
        g_chaosOp.fetch_add(1, std::memory_order_relaxed);
    if (chaosUnit(cfg.seed, op) < cfg.enospc) {
        g_chaosEnospcs.fetch_add(1, std::memory_order_relaxed);
        errno = ENOSPC;
        return false;
    }
    return true;
}

#ifdef __unix__

bool writeAll(int fd, const std::uint8_t *data, std::size_t size)
{
    std::size_t off = 0;
    while (off < size) {
        const long n = chaosWrite(fd, data + off, size - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

bool setNonBlocking(int fd, bool on)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0)
        return false;
    if (on)
        flags |= O_NONBLOCK;
    else
        flags &= ~O_NONBLOCK;
    return ::fcntl(fd, F_SETFL, flags) == 0;
}

namespace {

/** Fill a sockaddr_un; false when `path` overflows sun_path. */
bool unixAddress(const std::string &path, sockaddr_un &addr)
{
    if (path.empty() || path.size() >= sizeof addr.sun_path)
        return false;
    std::memset(&addr, 0, sizeof addr);
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return true;
}

} // namespace

int listenUnix(const std::string &path, int backlog, std::string *err)
{
    auto fail = [&](const std::string &why) {
        if (err)
            *err = why;
        return -1;
    };

    sockaddr_un addr;
    if (!unixAddress(path, addr))
        return fail("socket path '" + path +
                    "' is empty or too long for sun_path");

    int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        return fail(std::string("socket(): ") + std::strerror(errno));

    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0) {
        if (errno != EADDRINUSE) {
            ::close(fd);
            return fail(std::string("bind(") + path +
                        "): " + std::strerror(errno));
        }
        // The path exists. A live server accepts connections on it; a
        // stale file from a crashed server refuses them and is safe
        // to reclaim.
        int probe = connectUnix(path);
        if (probe >= 0) {
            ::close(probe);
            ::close(fd);
            return fail("a server is already listening on " + path);
        }
        if (::unlink(path.c_str()) != 0 ||
            ::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof addr) != 0) {
            ::close(fd);
            return fail("cannot reclaim stale socket " + path + ": " +
                        std::strerror(errno));
        }
    }

    if (::listen(fd, backlog > 0 ? backlog : 16) != 0) {
        ::close(fd);
        return fail(std::string("listen(") + path +
                    "): " + std::strerror(errno));
    }
    return fd;
}

int connectUnix(const std::string &path)
{
    sockaddr_un addr;
    if (!unixAddress(path, addr))
        return -1;
    int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        return -1;
    int rv;
    do {
        rv = ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                       sizeof addr);
    } while (rv != 0 && errno == EINTR);
    if (rv != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

#else // !__unix__

bool writeAll(int, const std::uint8_t *, std::size_t) { return false; }
bool setNonBlocking(int, bool) { return false; }

int listenUnix(const std::string &, int, std::string *err)
{
    if (err)
        *err = "Unix-domain sockets require a POSIX host";
    return -1;
}

int connectUnix(const std::string &) { return -1; }

#endif // __unix__

} // namespace io
} // namespace tg
