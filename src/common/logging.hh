/**
 * @file
 * Logging and error-reporting helpers in the gem5 idiom.
 *
 * panic() is for internal invariant violations (simulator bugs); it
 * aborts. fatal() is for user errors (bad configuration, impossible
 * parameters); it exits with an error code. warn() and inform() print
 * status without stopping the simulation.
 */

#ifndef TG_COMMON_LOGGING_HH
#define TG_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace tg {

namespace detail {

/** Compose the final log line and emit it on stderr. */
void emitLog(const char *level, const std::string &msg);

/** Stream-concatenate an arbitrary argument pack into a string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/**
 * Report an internal invariant violation and abort.
 *
 * Call when something happens that should never happen regardless of
 * user input, i.e. an actual bug in this library.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::emitLog("panic", detail::concat(std::forward<Args>(args)...));
    std::abort();
}

/**
 * Report an unrecoverable user error and exit(1).
 *
 * Call when the simulation cannot continue due to a condition that is
 * the caller's fault (invalid configuration, inconsistent parameters).
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::emitLog("fatal", detail::concat(std::forward<Args>(args)...));
    std::exit(1);
}

/** Warn about questionable but survivable conditions. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::emitLog("warn", detail::concat(std::forward<Args>(args)...));
}

/** Print an informational status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::emitLog("info", detail::concat(std::forward<Args>(args)...));
}

/**
 * Check a library invariant; panics with location info when violated.
 *
 * Unlike assert(), stays active in release builds: the solvers here are
 * numerical and silent corruption is worse than an abort.
 */
#define TG_ASSERT(cond, ...)                                            \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::tg::panic("assertion '", #cond, "' failed at ",           \
                        __FILE__, ":", __LINE__, ": ", ##__VA_ARGS__);  \
        }                                                               \
    } while (0)

/**
 * Debug-only invariant check for per-element sweeps on solver hot
 * paths (e.g. "every solve output is finite"). Compiled out unless
 * the build enables -DTG_DEBUG_CHECKS (CMake option TG_DEBUG_CHECKS),
 * so release benchmarks pay nothing for it.
 */
#ifdef TG_DEBUG_CHECKS
#define TG_DEBUG_ASSERT(cond, ...) TG_ASSERT(cond, ##__VA_ARGS__)
#else
#define TG_DEBUG_ASSERT(cond, ...)                                      \
    do {                                                                \
    } while (0)
#endif

} // namespace tg

#endif // TG_COMMON_LOGGING_HH
