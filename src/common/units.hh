/**
 * @file
 * Unit conventions and physical constants used throughout the library.
 *
 * All quantities are SI unless a suffix says otherwise: seconds, watts,
 * amperes, volts, metres, kelvin-equivalent degrees Celsius for
 * temperatures (the solvers only ever use temperature differences plus
 * a Celsius ambient, so Celsius is safe).
 */

#ifndef TG_COMMON_UNITS_HH
#define TG_COMMON_UNITS_HH

namespace tg {

using Seconds = double;  //!< time [s]
using Watts = double;    //!< power [W]
using Amperes = double;  //!< current [A]
using Volts = double;    //!< voltage [V]
using Metres = double;   //!< length [m]
using Celsius = double;  //!< temperature [deg C]

/** Scale helpers for readability at call sites. */
constexpr double kMilli = 1e-3;
constexpr double kMicro = 1e-6;
constexpr double kNano = 1e-9;
constexpr double kKilo = 1e3;
constexpr double kMega = 1e6;
constexpr double kGiga = 1e9;

/** Square millimetres to square metres. */
constexpr double mm2ToM2(double mm2) { return mm2 * 1e-6; }
/** Millimetres to metres. */
constexpr double mmToM(double mm) { return mm * 1e-3; }

} // namespace tg

#endif // TG_COMMON_UNITS_HH
