/**
 * @file
 * Small statistics helpers shared across the simulator: running
 * accumulators, coefficient of determination (paper Eqn. 3), weighted
 * moving average forecasting (used by PracT), and least-squares slope
 * fitting (used to extract the theta_i of paper Eqn. 2).
 */

#ifndef TG_COMMON_STATS_HH
#define TG_COMMON_STATS_HH

#include <cstddef>
#include <deque>
#include <vector>

namespace tg {

/**
 * Running scalar accumulator: count, mean, min, max, variance
 * (Welford's algorithm, numerically stable).
 */
class RunningStats
{
  public:
    /** Fold one sample into the accumulator. */
    void add(double x);

    /** Number of samples folded in so far. */
    std::size_t count() const { return n; }
    /** Mean of the samples; 0 when empty. */
    double mean() const { return n ? mu : 0.0; }
    /** Smallest sample; +inf when empty. */
    double min() const;
    /** Largest sample; -inf when empty. */
    double max() const;
    /** Population variance; 0 with fewer than two samples. */
    double variance() const;
    /** Population standard deviation. */
    double stddev() const;

  private:
    std::size_t n = 0;
    double mu = 0.0;
    double m2 = 0.0;
    double lo = 0.0;
    double hi = 0.0;
};

/**
 * Coefficient of determination R^2 between a reference series and a
 * prediction of it (paper Eqn. 3). Returns 1.0 for a perfect
 * prediction; can be negative for predictions worse than the mean.
 *
 * @param reference ground-truth values (T_i,HotSpot in the paper)
 * @param predicted model outputs (T_i,Prediction in the paper)
 */
double rSquared(const std::vector<double> &reference,
                const std::vector<double> &predicted);

/**
 * Ordinary least-squares slope through the origin: finds theta
 * minimising sum (y_i - theta * x_i)^2. Used to fit the per-regulator
 * deltaT = theta * deltaP model of paper Eqn. 2.
 */
double fitSlopeThroughOrigin(const std::vector<double> &x,
                             const std::vector<double> &y);

/**
 * Weighted moving average forecaster over a short history window.
 *
 * PracT uses a WMA over the last three decision points to anticipate
 * the next power demand (paper Section 6.3, after [3]). Weights decay
 * linearly: the most recent sample has weight `depth`, the oldest has
 * weight 1.
 */
class WmaForecaster
{
  public:
    /** @param depth history window length (the paper uses 3) */
    explicit WmaForecaster(std::size_t depth = 3);

    /** Record an observed value at the latest decision point. */
    void observe(double x);

    /**
     * Forecast the next value. With no history returns 0; with a
     * partial window uses whatever history exists.
     */
    double predict() const;

    /** Drop all history. */
    void reset() { history.clear(); }

  private:
    std::size_t depth;
    std::deque<double> history;
};

} // namespace tg

#endif // TG_COMMON_STATS_HH
