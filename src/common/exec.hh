/**
 * @file
 * Work-scheduling primitives for parallel sweeps and ablations.
 *
 * The simulator's evaluation grids (benchmark x policy sweeps,
 * parameter ablations) are embarrassingly parallel: every task reads
 * shared immutable models and writes its own result slot. This layer
 * provides the scheduling glue:
 *
 *  - ThreadPool: a fixed set of workers fed from a bounded task
 *    queue (submission blocks while the queue is full, so producers
 *    cannot run unboundedly ahead of execution);
 *  - parallelFor(): fan an index range across a pool with a stable
 *    worker id per thread, so callers can keep one heavyweight
 *    context (e.g. a sim::Simulation) per worker;
 *  - resolveJobs(): the --jobs / TG_JOBS / hardware-concurrency
 *    resolution ladder shared by every driver;
 *  - taskSeed(): deterministic per-task RNG seed derivation, so a
 *    task's stochastic streams depend on its identity, never on
 *    which worker runs it or in what order;
 *  - ProgressSink / StatsSink: mutex-guarded progress lines and
 *    statistics accumulation for concurrent producers.
 *
 * Determinism contract: none of these primitives make results depend
 * on scheduling. A parallelFor() body that derives everything from
 * its index produces bit-identical output at any worker count.
 */

#ifndef TG_COMMON_EXEC_HH
#define TG_COMMON_EXEC_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.hh"

namespace tg {
namespace exec {

/** Hardware thread count; always at least 1. */
int hardwareThreads();

/**
 * Resolve a worker count request: a positive `requested` wins;
 * otherwise the TG_JOBS environment variable (when set to a positive
 * integer); otherwise every hardware thread. Always at least 1.
 */
int resolveJobs(int requested);

/**
 * Deterministic per-task seed: mixes a base seed with the task
 * identity so forked streams are independent of scheduling order.
 */
std::uint64_t taskSeed(std::uint64_t base, std::uint64_t task);

/**
 * Thrown by cancellation points when their CancelToken has tripped.
 * what() distinguishes an explicit cancel ("cancelled") from a missed
 * deadline ("deadline exceeded") so callers can report the class.
 */
class CancelledError : public std::runtime_error
{
  public:
    explicit CancelledError(bool deadline)
        : std::runtime_error(deadline ? "deadline exceeded"
                                      : "cancelled"),
          deadlineFlag(deadline)
    {
    }

    /** True when the trip came from a deadline, not an explicit
     *  cancel(). */
    bool deadlineExpired() const { return deadlineFlag; }

  private:
    bool deadlineFlag;
};

/**
 * Cooperative cancellation with an optional deadline.
 *
 * A token is shared between a controller (who calls cancel() or arms
 * a deadline) and workers (who poll cancelled() / throwIfCancelled()
 * at their natural checkpoints — the sweep engine checks per cell and
 * Simulation::run per epoch). Both sides may live on different
 * threads: the flag is atomic and cancel() is async-signal-safe.
 *
 * Cancellation is sticky — once tripped (explicitly or by the
 * deadline passing) the token stays cancelled. deadlineExpired()
 * records *why* it tripped; an explicit cancel() wins over a deadline
 * that passes later, because the first observation latches.
 */
class CancelToken
{
  public:
    using Clock = std::chrono::steady_clock;

    /** Trip the token (sticky, thread-safe, async-signal-safe). */
    void cancel() { flag.store(true, std::memory_order_relaxed); }

    /** Arm an absolute deadline; tokens without one never expire. */
    void setDeadline(Clock::time_point when)
    {
        deadlineNs.store(
            when.time_since_epoch().count(),
            std::memory_order_relaxed);
    }

    /** Arm a deadline `ms` milliseconds from now. */
    void setDeadlineIn(std::uint64_t ms)
    {
        setDeadline(Clock::now() + std::chrono::milliseconds(ms));
    }

    /** Whether the token has tripped (checks the deadline too). */
    bool cancelled() const
    {
        if (flag.load(std::memory_order_relaxed))
            return true;
        const auto armed = deadlineNs.load(std::memory_order_relaxed);
        if (armed != 0 &&
            Clock::now().time_since_epoch().count() >= armed) {
            deadlineHit.store(true, std::memory_order_relaxed);
            flag.store(true, std::memory_order_relaxed);
            return true;
        }
        return false;
    }

    /** Whether the trip came from the deadline (false until
     *  cancelled() first observes it). */
    bool deadlineExpired() const
    {
        return deadlineHit.load(std::memory_order_relaxed);
    }

    /** Cancellation point: throws CancelledError once tripped. */
    void throwIfCancelled() const
    {
        if (cancelled())
            throw CancelledError(deadlineExpired());
    }

  private:
    mutable std::atomic<bool> flag{false};
    mutable std::atomic<bool> deadlineHit{false};
    /** Deadline as steady-clock ticks since epoch; 0 = none. */
    std::atomic<Clock::rep> deadlineNs{0};
};

/**
 * Fixed-size worker pool fed from a bounded FIFO task queue.
 *
 * submit() blocks while the queue is at capacity; wait() blocks until
 * every submitted task has finished and rethrows the first exception
 * any task raised. The destructor drains outstanding work before
 * joining. Tasks may not submit() into their own pool (the bounded
 * queue could deadlock); fan-out happens at the call site.
 */
class ThreadPool
{
  public:
    /**
     * @param threads        worker count (clamped to >= 1)
     * @param queue_capacity bound of the pending-task queue;
     *                       0 picks 2x the worker count
     */
    explicit ThreadPool(int threads, std::size_t queue_capacity = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a task; blocks while the queue is full. */
    void submit(std::function<void()> task);

    /**
     * Block until every submitted task has completed, then rethrow
     * the first exception a task raised (if any). The pool remains
     * usable for further submissions afterwards.
     */
    void wait();

    int threadCount() const { return static_cast<int>(workers.size()); }

    /**
     * Index of the calling pool worker in [0, threadCount()), or -1
     * on threads that do not belong to a pool. Stable for the
     * lifetime of the pool, which lets callers keep per-worker
     * contexts without locking.
     */
    static int workerIndex();

  private:
    void workerLoop(int index);

    std::vector<std::thread> workers;
    std::deque<std::function<void()>> queue;
    std::mutex mu;
    std::condition_variable cvSpace; //!< producers: queue has room
    std::condition_variable cvWork;  //!< workers: queue has tasks
    std::condition_variable cvIdle;  //!< wait(): everything finished
    std::size_t capacity;
    std::size_t inFlight = 0; //!< queued plus currently executing
    bool stopping = false;
    std::exception_ptr firstError;
};

/**
 * Run fn(worker, index) for every index in [0, n), fanning across
 * resolveJobs(jobs) pool workers (never more than n). `worker` is a
 * stable id in [0, workers): keep per-worker heavyweight state in a
 * caller-owned array indexed by it. With one worker the calls happen
 * inline, in index order, with worker id 0.
 *
 * Exceptions from the body abort the fan-out and are rethrown.
 */
void parallelFor(std::size_t n, int jobs,
                 const std::function<void(int worker, std::size_t index)> &fn);

/**
 * parallelFor() over an existing pool: run fn(worker, index) for
 * every index in [0, n) on `pool`'s workers and wait for completion.
 * Callers with a per-frame or per-sample fan-out keep one long-lived
 * pool instead of paying thread creation on every call. The usual
 * pool rules apply: must not be called from one of `pool`'s own
 * workers, and `worker` is the pool's stable workerIndex().
 */
void parallelForOn(ThreadPool &pool, std::size_t n,
                   const std::function<void(int worker, std::size_t index)> &fn);

/**
 * Thread-safe progress reporter: one stderr line per completed task,
 * prefixed with a [done/total] counter. Lines from concurrent
 * workers never interleave mid-line.
 */
class ProgressSink
{
  public:
    /**
     * @param enabled when false, lines are counted but not printed
     * @param total   expected task count (for the [done/total] prefix)
     */
    ProgressSink(bool enabled, std::size_t total);

    /** Record one completed task and (when enabled) print `line`. */
    void completed(const std::string &line);

    /** Tasks recorded so far. */
    std::size_t done() const;

  private:
    bool enabled;
    std::size_t total;
    mutable std::mutex mu;
    std::size_t count = 0;
};

/** Mutex-guarded RunningStats for accumulation from many threads. */
class StatsSink
{
  public:
    /** Fold one sample in; safe from any thread. */
    void add(double x);

    /** Consistent copy of the accumulated statistics. */
    RunningStats snapshot() const;

  private:
    mutable std::mutex mu;
    RunningStats stats;
};

} // namespace exec
} // namespace tg

#endif // TG_COMMON_EXEC_HH
