/**
 * @file
 * Aligned text tables and CSV emission for the figure/table benches.
 *
 * Every bench binary reproduces one figure or table of the paper by
 * printing its rows/series; TextTable keeps that output readable and
 * uniform, and writeCsv() optionally persists the data for plotting.
 */

#ifndef TG_COMMON_TABLE_HH
#define TG_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace tg {

/** Simple aligned text table with a header row. */
class TextTable
{
  public:
    /** @param header column titles */
    explicit TextTable(std::vector<std::string> header);

    /** Append a row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /** Convenience: format doubles with fixed precision. */
    static std::string num(double v, int precision = 2);

    /** Render with aligned columns to the stream. */
    void print(std::ostream &os) const;

    /** Render as comma-separated values to the stream. */
    void printCsv(std::ostream &os) const;

    /** Number of data rows. */
    std::size_t size() const { return rows.size(); }

  private:
    std::vector<std::string> head;
    std::vector<std::vector<std::string>> rows;
};

} // namespace tg

#endif // TG_COMMON_TABLE_HH
