#include "common/interp.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace tg {

PiecewiseLinear::PiecewiseLinear(
    std::vector<std::pair<double, double>> points, bool log_x)
    : pts(std::move(points)), logX(log_x)
{
    TG_ASSERT(pts.size() >= 2, "curve needs at least two points");
    std::sort(pts.begin(), pts.end());
    if (logX) {
        for (const auto &p : pts)
            TG_ASSERT(p.first > 0.0, "log-x curve requires positive x");
    }
    for (std::size_t i = 1; i < pts.size(); ++i)
        TG_ASSERT(pts[i].first > pts[i - 1].first,
                  "curve x values must be distinct");
}

double
PiecewiseLinear::axis(double x) const
{
    return logX ? std::log10(x) : x;
}

double
PiecewiseLinear::operator()(double x) const
{
    if (x <= pts.front().first)
        return pts.front().second;
    if (x >= pts.back().first)
        return pts.back().second;

    auto it = std::lower_bound(
        pts.begin(), pts.end(), x,
        [](const auto &p, double v) { return p.first < v; });
    const auto &hi = *it;
    const auto &lo = *(it - 1);
    double t = (axis(x) - axis(lo.first)) / (axis(hi.first) - axis(lo.first));
    return lo.second + t * (hi.second - lo.second);
}

double
PiecewiseLinear::argmax() const
{
    auto it = std::max_element(
        pts.begin(), pts.end(),
        [](const auto &a, const auto &b) { return a.second < b.second; });
    return it->first;
}

double
PiecewiseLinear::maxValue() const
{
    auto it = std::max_element(
        pts.begin(), pts.end(),
        [](const auto &a, const auto &b) { return a.second < b.second; });
    return it->second;
}

} // namespace tg
