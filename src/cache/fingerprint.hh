/**
 * @file
 * Canonical content fingerprints for the artifact cache.
 *
 * Every cacheable artifact (activity/power traces, thermal-predictor
 * fits, PDN base factorisations, whole RunResults) is a deterministic
 * function of plain-data inputs: chip geometry, SimConfig, workload
 * profile, policy, record options and seed. A Fingerprint is a stable
 * 128-bit content hash over exactly those inputs, so equal
 * fingerprints imply bit-identical artifacts (the determinism
 * contract PRs 1-6 pinned) and the cache may substitute a stored
 * artifact for a recompute.
 *
 * Stability contract: the hash never depends on std::hash, pointer
 * values, iteration order of unordered containers, or the host; the
 * golden-value tests in tests/test_cache.cc pin the exact digests so
 * any accidental drift of the key derivation fails loudly instead of
 * silently splitting (or worse, aliasing) the cache namespace.
 *
 * Bit-invisible knobs are EXCLUDED from configFingerprint(): worker
 * count (jobs), noiseBatchWidth, coalesceNoiseEpochs, the PDN
 * factor-cache capacity, and the cache settings themselves
 * (cacheDir/memoizeResults) are proven not to change any result bit
 * (tests/test_run_determinism.cc, test_epoch_coalescing.cc), so runs
 * that differ only in them share cache entries — a warm cache
 * answers `--jobs 4` queries recorded at `--jobs 1`.
 */

#ifndef TG_CACHE_FINGERPRINT_HH
#define TG_CACHE_FINGERPRINT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace tg {

namespace floorplan {
struct Chip;
}
namespace power {
struct PowerParams;
}
namespace workload {
struct BenchmarkProfile;
}
namespace fault {
class FaultScenario;
}
namespace sim {
struct SimConfig;
struct RecordOptions;
}

namespace cache {

/** Stable 128-bit content hash. */
struct Fingerprint
{
    std::uint64_t hi = 0;
    std::uint64_t lo = 0;

    bool operator==(const Fingerprint &o) const
    {
        return hi == o.hi && lo == o.lo;
    }
    bool operator!=(const Fingerprint &o) const { return !(*this == o); }

    /** 32 lowercase hex digits (hi then lo), for file names/goldens. */
    std::string hex() const;
};

/**
 * Incremental 128-bit mixer with typed absorb methods. Each field
 * kind feeds a distinct domain-separation tag before its payload, so
 * e.g. the empty string and the integer 0 never collide, and field
 * boundaries cannot alias (str("ab")+str("c") != str("a")+str("bc")).
 */
class Hasher
{
  public:
    Hasher &u64(std::uint64_t v);
    Hasher &i64(long long v) { return u64(static_cast<std::uint64_t>(v)); }
    Hasher &u32(std::uint32_t v) { return u64(v); }
    /** Doubles hash by bit pattern: bit-equal inputs, equal hashes. */
    Hasher &f64(double v);
    Hasher &boolean(bool v) { return u64(v ? 1 : 2); }
    Hasher &str(const std::string &s);
    /** Fold a finished fingerprint in (for hierarchical keys). */
    Hasher &fp(const Fingerprint &f);

    /** Finalize (the Hasher may keep absorbing afterwards). */
    Fingerprint digest() const;

  private:
    void absorb(std::uint64_t word);

    std::uint64_t a = 0x6c62272e07bb0142ull; //!< lane A state
    std::uint64_t b = 0x62b821756295c58dull; //!< lane B state
    std::uint64_t n = 0;                     //!< words absorbed
};

/** Chip geometry + parameters: blocks, VR sites, domains, die. */
Fingerprint chipFingerprint(const floorplan::Chip &chip);

/**
 * Every SimConfig field that can influence a result bit (see header
 * note for the excluded bit-invisible knobs).
 */
Fingerprint configFingerprint(const sim::SimConfig &cfg);

/**
 * Power-model parameters alone — the fine-grained key component of
 * the power-trace artifact, so trace entries survive config changes
 * that cannot touch the trace (sensor, PDN, health knobs, ...).
 */
Fingerprint powerParamsFingerprint(const power::PowerParams &p);

/** Full benchmark-profile contents (not just the name). */
Fingerprint profileFingerprint(const workload::BenchmarkProfile &p);

/** Fault-scenario seed + every scheduled event. */
Fingerprint scenarioFingerprint(const fault::FaultScenario &scenario);

/**
 * RecordOptions incl. the referenced fault scenario (empty/null
 * scenarios hash alike, matching the run loop's clean-path rule).
 */
Fingerprint
recordOptionsFingerprint(const sim::RecordOptions &opts);

} // namespace cache
} // namespace tg

#endif // TG_CACHE_FINGERPRINT_HH
