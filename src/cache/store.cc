#include "cache/store.hh"

#include <cstdio>
#include <cstdlib>

namespace tg {
namespace cache {

const char *artifactKindName(ArtifactKind kind)
{
    switch (kind) {
    case ArtifactKind::PowerTrace:
        return "power-trace";
    case ArtifactKind::Predictor:
        return "predictor";
    case ArtifactKind::PdnBase:
        return "pdn-base";
    case ArtifactKind::RunResult:
        return "run-result";
    }
    return "unknown";
}

std::uint64_t StoreStats::hitsTotal() const
{
    std::uint64_t t = 0;
    for (const PerKind &k : kind)
        t += k.hits;
    return t;
}

std::uint64_t StoreStats::missesTotal() const
{
    std::uint64_t t = 0;
    for (const PerKind &k : kind)
        t += k.misses;
    return t;
}

std::uint64_t StoreStats::bytesTotal() const
{
    std::uint64_t t = 0;
    for (const PerKind &k : kind)
        t += k.bytes;
    return t;
}

std::string StoreStats::describe() const
{
    char line[512];
    std::snprintf(
        line, sizeof line,
        "cache: hits=%llu misses=%llu resident=%.1fMiB evictions=%llu "
        "[trace %llu/%llu, predictor %llu/%llu, pdn-base %llu/%llu, "
        "run-result %llu/%llu] disk hits=%llu misses=%llu writes=%llu "
        "rejects=%llu tmp-swept=%llu",
        static_cast<unsigned long long>(hitsTotal()),
        static_cast<unsigned long long>(missesTotal()),
        static_cast<double>(bytesTotal()) / (1024.0 * 1024.0),
        static_cast<unsigned long long>(evictions),
        static_cast<unsigned long long>(kind[0].hits),
        static_cast<unsigned long long>(kind[0].misses),
        static_cast<unsigned long long>(kind[1].hits),
        static_cast<unsigned long long>(kind[1].misses),
        static_cast<unsigned long long>(kind[2].hits),
        static_cast<unsigned long long>(kind[2].misses),
        static_cast<unsigned long long>(kind[3].hits),
        static_cast<unsigned long long>(kind[3].misses),
        static_cast<unsigned long long>(diskHits),
        static_cast<unsigned long long>(diskMisses),
        static_cast<unsigned long long>(diskWrites),
        static_cast<unsigned long long>(diskRejects),
        static_cast<unsigned long long>(diskTmpSwept));
    return std::string(line);
}

ArtifactStore::ArtifactStore(std::size_t capacity_bytes)
    : capacity(capacity_bytes)
{
}

std::shared_ptr<const void> ArtifactStore::getRaw(ArtifactKind kind,
                                                  const Fingerprint &key)
{
    KindCounters &kc = counters[static_cast<int>(kind)];
    if (!enabledFlag.load(std::memory_order_relaxed)) {
        kc.misses.fetch_add(1, std::memory_order_relaxed);
        return nullptr;
    }
    Shard &s = shardFor(key);
    const Key k{kind, key};
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.map.find(k);
    if (it == s.map.end()) {
        kc.misses.fetch_add(1, std::memory_order_relaxed);
        return nullptr;
    }
    s.lru.splice(s.lru.begin(), s.lru, it->second); // bump to front
    kc.hits.fetch_add(1, std::memory_order_relaxed);
    return it->second->value;
}

void ArtifactStore::putRaw(ArtifactKind kind, const Fingerprint &key,
                           std::shared_ptr<const void> value,
                           std::size_t bytes)
{
    if (!enabledFlag.load(std::memory_order_relaxed) || !value)
        return;
    Shard &s = shardFor(key);
    const Key k{kind, key};
    KindCounters &kc = counters[static_cast<int>(kind)];
    std::lock_guard<std::mutex> lock(s.mu);
    if (s.map.find(k) != s.map.end())
        return; // first write wins (identical by determinism)
    s.lru.push_front(Entry{k, std::move(value), bytes});
    s.map.emplace(k, s.lru.begin());
    s.bytes += bytes;
    kc.inserts.fetch_add(1, std::memory_order_relaxed);
    kc.bytes.fetch_add(bytes, std::memory_order_relaxed);
    evictLocked(s, capacity.load(std::memory_order_relaxed) / kShards);
}

void ArtifactStore::evictLocked(Shard &s, std::size_t shard_budget)
{
    while (s.bytes > shard_budget && s.lru.size() > 1) {
        const Entry &victim = s.lru.back();
        KindCounters &kc = counters[static_cast<int>(victim.key.kind)];
        kc.bytes.fetch_sub(victim.bytes, std::memory_order_relaxed);
        kc.evictions.fetch_add(1, std::memory_order_relaxed);
        s.bytes -= victim.bytes;
        s.map.erase(victim.key);
        s.lru.pop_back();
        evictionCount.fetch_add(1, std::memory_order_relaxed);
    }
}

void ArtifactStore::clear()
{
    for (Shard &s : shards) {
        std::lock_guard<std::mutex> lock(s.mu);
        for (const Entry &e : s.lru)
            counters[static_cast<int>(e.key.kind)].bytes.fetch_sub(
                e.bytes, std::memory_order_relaxed);
        s.lru.clear();
        s.map.clear();
        s.bytes = 0;
    }
}

void ArtifactStore::setCapacityBytes(std::size_t bytes)
{
    capacity.store(bytes);
    for (Shard &s : shards) {
        std::lock_guard<std::mutex> lock(s.mu);
        evictLocked(s, bytes / kShards);
    }
}

StoreStats ArtifactStore::stats() const
{
    StoreStats out;
    for (int i = 0; i < kArtifactKinds; ++i) {
        out.kind[static_cast<std::size_t>(i)] = StoreStats::PerKind{
            counters[static_cast<std::size_t>(i)].hits.load(),
            counters[static_cast<std::size_t>(i)].misses.load(),
            counters[static_cast<std::size_t>(i)].inserts.load(),
            counters[static_cast<std::size_t>(i)].bytes.load(),
            counters[static_cast<std::size_t>(i)].evictions.load()};
    }
    out.evictions = evictionCount.load();
    out.diskHits = diskHitCount.load();
    out.diskMisses = diskMissCount.load();
    out.diskWrites = diskWriteCount.load();
    out.diskRejects = diskRejectCount.load();
    out.diskTmpSwept = diskTmpSweptCount.load();
    return out;
}

void ArtifactStore::resetStats()
{
    for (KindCounters &kc : counters) {
        kc.hits.store(0);
        kc.misses.store(0);
        kc.inserts.store(0);
        kc.evictions.store(0);
        // bytes tracks residency, not a rate — leave it.
    }
    evictionCount.store(0);
    diskHitCount.store(0);
    diskMissCount.store(0);
    diskWriteCount.store(0);
    diskRejectCount.store(0);
    diskTmpSweptCount.store(0);
}

ArtifactStore &store()
{
    static ArtifactStore *instance = [] {
        std::size_t cap = ArtifactStore::kDefaultCapacity;
        if (const char *mb = std::getenv("TG_CACHE_MEM_MB")) {
            const long v = std::strtol(mb, nullptr, 10);
            if (v > 0)
                cap = static_cast<std::size_t>(v) << 20;
        }
        auto *s = new ArtifactStore(cap);
        if (const char *e = std::getenv("TG_CACHE")) {
            if (e[0] == '0' && e[1] == '\0')
                s->setEnabled(false);
        }
        return s;
    }();
    return *instance;
}

} // namespace cache
} // namespace tg
